type t = {
  metric : Simnet.Metric.t;
  n : int;
  k : int;
  pivots : int array array; (* pivots.(v).(i) = p_i(v), or -1 above the top level *)
  pivot_dist : float array array;
  bunches : int list array; (* B(v) *)
  registry : (int, (int * int) list) Hashtbl.t array;
      (* per node: guid key -> (key, server addr) registrations *)
  cost : Simnet.Cost.t;
}

let build ?(seed = 42) ?k metric =
  let n = Simnet.Metric.size metric in
  if n < 2 then invalid_arg "Thorup_zwick.build: need at least 2 points";
  let rng = Simnet.Rng.create seed in
  let k =
    match k with
    | Some k when k >= 1 -> k
    | Some _ -> invalid_arg "Thorup_zwick.build: k must be >= 1"
    | None -> max 2 (int_of_float (ceil (log (float_of_int n) /. log 2.)))
  in
  (* A_0 superset A_1 superset ... A_{k-1}; A_k = empty *)
  let p_keep = exp (-.log (float_of_int n) /. float_of_int k) in
  let levels = Array.make_matrix k n false in
  for v = 0 to n - 1 do
    levels.(0).(v) <- true
  done;
  for i = 1 to k - 1 do
    for v = 0 to n - 1 do
      levels.(i).(v) <- levels.(i - 1).(v) && Simnet.Rng.float rng 1.0 < p_keep
    done
  done;
  (* guarantee A_{k-1} is non-empty so every pivot chain is defined *)
  if not (Array.exists (fun b -> b) levels.(k - 1)) then begin
    let v = Simnet.Rng.int rng n in
    for i = 0 to k - 1 do
      levels.(i).(v) <- true
    done
  end;
  let pivots = Array.make_matrix n k (-1) in
  let pivot_dist = Array.make_matrix n k infinity in
  for v = 0 to n - 1 do
    for i = 0 to k - 1 do
      for w = 0 to n - 1 do
        if levels.(i).(w) then begin
          let d = Simnet.Metric.dist metric v w in
          if d < pivot_dist.(v).(i) then begin
            pivot_dist.(v).(i) <- d;
            pivots.(v).(i) <- w
          end
        end
      done
    done
  done;
  (* bunches: w in A_i \ A_{i+1} joins B(v) iff d(v,w) < d(v, p_{i+1}(v));
     members of the top level join every bunch *)
  let bunches =
    Array.init n (fun v ->
        let acc = ref [] in
        for w = 0 to n - 1 do
          if w <> v then begin
            let rec level_of i = if i < k && levels.(i).(w) then level_of (i + 1) else i - 1 in
            let i = level_of 0 in
            let joins =
              if i = k - 1 then true
              else Simnet.Metric.dist metric v w < pivot_dist.(v).(i + 1)
            in
            if joins then acc := w :: !acc
          end
        done;
        !acc)
  in
  {
    metric;
    n;
    k;
    pivots;
    pivot_dist;
    bunches;
    registry = Array.init n (fun _ -> Hashtbl.create 4);
    cost = Simnet.Cost.make ();
  }

let cost t = t.cost

let k t = t.k

let space_per_node t =
  let pivot_entries = t.n * t.k in
  let bunch_entries = Array.fold_left (fun a b -> a + List.length b) 0 t.bunches in
  let reg_entries =
    Array.fold_left (fun a h -> a + Hashtbl.length h) 0 t.registry
  in
  float_of_int (pivot_entries + bunch_entries + reg_entries) /. float_of_int t.n

(* The classic ascending query: w = p_i(u); swap sides until w in B(v). *)
let approx_distance t u v =
  let dist = Simnet.Metric.dist t.metric in
  let in_bunch w v = List.exists (Int.equal w) t.bunches.(v) in
  let rec go u v i w =
    if w = v || in_bunch w v then dist u w +. dist w v
    else begin
      let i = i + 1 in
      if i >= t.k then dist u v (* defensive; cannot happen with A_{k-1} <> {} *)
      else begin
        let u, v = (v, u) in
        let w = t.pivots.(u).(i) in
        go u v i w
      end
    end
  in
  if u = v then 0. else go u v 0 t.pivots.(u).(0)

(* contact points of a node: its pivots and its bunch *)
let contacts t v =
  let acc = Hashtbl.create 16 in
  Array.iter (fun p -> if p >= 0 then Hashtbl.replace acc p ()) t.pivots.(v);
  List.iter (fun w -> Hashtbl.replace acc w ()) t.bunches.(v);
  Hashtbl.fold (fun w () l -> w :: l) acc []

let publish t ~server_addr ~guid_key =
  List.iter
    (fun w ->
      Simnet.Cost.message t.cost ~dist:(Simnet.Metric.dist t.metric server_addr w);
      let cur = Option.value ~default:[] (Hashtbl.find_opt t.registry.(w) guid_key) in
      if
        not
          (List.exists
             (fun (g, s) -> Int.equal g guid_key && Int.equal s server_addr)
             cur)
      then
        Hashtbl.replace t.registry.(w) guid_key ((guid_key, server_addr) :: cur))
    (server_addr :: contacts t server_addr)

let locate t ~client_addr ~guid_key =
  (* probe own contacts, nearest first (parallelizable; latency counts every
     round trip, as in the Section 7 scheme) *)
  let probes =
    (client_addr :: contacts t client_addr)
    |> List.map (fun w -> (Simnet.Metric.dist t.metric client_addr w, w))
    |> List.sort (fun (d1, _) (d2, _) -> Float.compare d1 d2)
  in
  let rec go = function
    | [] -> None
    | (d, w) :: rest -> (
        Simnet.Cost.send t.cost ~dist:(2. *. d);
        match Hashtbl.find_opt t.registry.(w) guid_key with
        | Some ((_, server) :: _) ->
            Simnet.Cost.send t.cost
              ~dist:(Simnet.Metric.dist t.metric client_addr server);
            Some server
        | _ -> go rest)
  in
  go probes
