type t = {
  metric : Simnet.Metric.t;
  n : int;
  levels : int;
  samples : int array array array; (* samples.(v).(i) = point sample of v's 2^i-ball *)
  sample_size : int;
}

let build ?(seed = 42) ?sample_size metric =
  let n = Simnet.Metric.size metric in
  if n < 2 then invalid_arg "Karger_ruhl.build: need at least 2 points";
  let rng = Simnet.Rng.create seed in
  let levels = int_of_float (ceil (log (float_of_int n) /. log 2.)) in
  let sample_size =
    match sample_size with Some s -> s | None -> 3 * levels
  in
  (* For each node: order all others by distance; level i's ball is the
     2^i closest; store a uniform sample of it. *)
  let samples =
    Array.init n (fun v ->
        let others =
          Array.init n (fun u -> (Simnet.Metric.dist metric v u, u))
        in
        Array.sort
          (fun (d1, u1) (d2, u2) ->
            match Float.compare d1 d2 with 0 -> Int.compare u1 u2 | c -> c)
          others;
        Array.init (levels + 1) (fun i ->
            let ball = min n (1 lsl i) in
            if ball <= sample_size then
              (* small balls are stored exactly (KR keep their smallest
                 scales complete) *)
              Array.init ball (fun j -> snd others.(j))
            else Array.init sample_size (fun _ -> snd others.(Simnet.Rng.int rng ball))))
  in
  { metric; n; levels; samples; sample_size }

let space_per_node t =
  let total =
    Array.fold_left
      (fun acc per_node ->
        acc + Array.fold_left (fun a s -> a + Array.length s) 0 per_node)
      0 t.samples
  in
  float_of_int total /. float_of_int t.n

type answer = { nearest : int; hops : int; messages : int; distance : float }

let query t ~start ~target =
  let dist = Simnet.Metric.dist t.metric in
  (* level whose ball around v is big enough to contain B_v(3 d(v,target));
     estimated by scanning the sample radii, as a distributed node would *)
  let level_for v r =
    let rec go i =
      if i >= t.levels then t.levels
      else begin
        let sample = t.samples.(v).(i) in
        let radius =
          Array.fold_left (fun m u -> max m (dist v u)) 0. sample
        in
        if radius >= 3. *. r && Array.length sample > 0 then min t.levels (i + 1)
        else go (i + 1)
      end
    in
    go 0
  in
  let rec halve v best best_d hops messages traveled stuck =
    let r = dist v target in
    let best, best_d = if r < best_d && v <> target then (v, r) else (best, best_d) in
    if stuck >= 3 || best_d = 0. then begin
      (* final refinement: the best node's neighborhood sample covering a
         3 best_d ball contains the true nearest neighbor w.h.p. *)
      let lvl = level_for best best_d in
      let messages = ref messages in
      let traveled = ref traveled in
      let final = ref best in
      for i = 0 to lvl do
        let sample = t.samples.(best).(i) in
        messages := !messages + (2 * Array.length sample);
        Array.iter
          (fun u ->
            traveled := !traveled +. (2. *. (dist best u +. dist u target));
            if u <> target && dist u target < dist !final target then final := u)
          sample
      done;
      { nearest = !final; hops; messages = !messages; distance = !traveled }
    end
    else begin
      let lvl = level_for v r in
      let sample = t.samples.(v).(lvl) in
      let messages = messages + (2 * Array.length sample) in
      (* each probe is a round trip that must also measure the sampled
         node's distance to the target *)
      let traveled =
        Array.fold_left
          (fun acc u -> acc +. (2. *. (dist v u +. dist u target)))
          traveled sample
      in
      (* pick the sampled node closest to the target, excluding target *)
      let cand =
        Array.fold_left
          (fun acc u ->
            if u = target then acc
            else
              match acc with
              | Some c when dist c target <= dist u target -> acc
              | _ -> Some u)
          None sample
      in
      match cand with
      | Some u when dist u target < best_d ->
          (* genuine progress past the best node seen so far *)
          halve u best best_d (hops + 1) messages (traveled +. dist v u) 0
      | Some u when u <> v ->
          (* no improvement this round; allow one more attempt from u *)
          halve u best best_d (hops + 1) messages (traveled +. dist v u) (stuck + 1)
      | _ -> { nearest = best; hops; messages; distance = traveled }
    end
  in
  if start = target then
    (* enter from the target itself: sample its smallest levels directly *)
    let sample = t.samples.(target).(1) in
    let best =
      Array.fold_left
        (fun acc u ->
          if u = target then acc
          else
            match acc with
            | Some c when dist c target <= dist u target -> acc
            | _ -> Some u)
        None sample
    in
    let b = match best with Some u -> u | None -> (target + 1) mod t.n in
    { nearest = b; hops = 0; messages = 2 * Array.length sample; distance = 0. }
  else halve start start (dist start target) 0 0 0. 0
