type t = {
  metric : Simnet.Metric.t;
  dir : int;
  entries : (int, int list) Hashtbl.t; (* guid key -> server addrs *)
  cost : Simnet.Cost.t;
}

let create ?seed:_ ~directory_addr metric =
  { metric; dir = directory_addr; entries = Hashtbl.create 64; cost = Simnet.Cost.make () }

let cost t = t.cost

let directory_addr t = t.dir

let publish t ~server_addr ~guid_key =
  Simnet.Cost.send t.cost ~dist:(Simnet.Metric.dist t.metric server_addr t.dir);
  let cur = Option.value ~default:[] (Hashtbl.find_opt t.entries guid_key) in
  if not (List.exists (Int.equal server_addr) cur) then
    Hashtbl.replace t.entries guid_key (server_addr :: cur)

let unpublish t ~server_addr ~guid_key =
  Simnet.Cost.send t.cost ~dist:(Simnet.Metric.dist t.metric server_addr t.dir);
  match Hashtbl.find_opt t.entries guid_key with
  | None -> ()
  | Some cur -> (
      match List.filter (fun a -> a <> server_addr) cur with
      | [] -> Hashtbl.remove t.entries guid_key
      | rest -> Hashtbl.replace t.entries guid_key rest)

let locate t ~client_addr ~guid_key =
  Simnet.Cost.send t.cost ~dist:(Simnet.Metric.dist t.metric client_addr t.dir);
  match Hashtbl.find_opt t.entries guid_key with
  | None | Some [] -> None
  | Some addrs ->
      (* the directory forwards to the replica closest to the client *)
      let best =
        List.fold_left
          (fun acc a ->
            let d = Simnet.Metric.dist t.metric client_addr a in
            match acc with Some (_, bd) when bd <= d -> acc | _ -> Some (a, d))
          None addrs
      in
      let addr = Option.get best |> fst in
      Simnet.Cost.send t.cost ~dist:(Simnet.Metric.dist t.metric t.dir addr);
      Some addr

let directory_entries t =
  Hashtbl.fold (fun _ servers acc -> acc + List.length servers) t.entries 0
