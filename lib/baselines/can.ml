type node = {
  addr : int;
  lo : float array; (* zone bounds, per dimension: [lo, hi) *)
  hi : float array;
  mutable neighbors : node list;
  pointers : (int, int list) Hashtbl.t; (* guid key -> server addrs *)
  mutable alive : bool;
  mutable split_depth : int;
}

type t = {
  dims : int;
  metric : Simnet.Metric.t;
  mutable members : node list;
  rng : Simnet.Rng.t;
  cost : Simnet.Cost.t;
}

let create ?(seed = 42) ?(dims = 2) metric =
  if dims < 1 || dims > 6 then invalid_arg "Can.create: dims out of range";
  {
    dims;
    metric;
    members = [];
    rng = Simnet.Rng.create seed;
    cost = Simnet.Cost.make ();
  }

let cost t = t.cost

let nodes t = List.filter (fun n -> n.alive) t.members

let random_node t = Simnet.Rng.pick_list t.rng (nodes t)

let node_addr n = n.addr

let net_dist t a b = Simnet.Metric.dist t.metric a.addr b.addr

let charge t a b = Simnet.Cost.send t.cost ~dist:(net_dist t a b)

let contains n p =
  let ok = ref true in
  Array.iteri (fun i x -> if x < n.lo.(i) || x >= n.hi.(i) then ok := false) p;
  !ok

(* per-dimension torus distance from coordinate x to interval [lo, hi) *)
let coord_dist x lo hi =
  if x >= lo && x < hi then 0.
  else begin
    let d1 = abs_float (x -. lo) and d2 = abs_float (x -. hi) in
    let plain = min d1 d2 in
    let wrapped = min (abs_float (x +. 1. -. hi)) (abs_float (lo +. 1. -. x)) in
    min plain wrapped
  end

let zone_dist t n p =
  let acc = ref 0. in
  for i = 0 to t.dims - 1 do
    let d = coord_dist p.(i) n.lo.(i) n.hi.(i) in
    acc := !acc +. (d *. d)
  done;
  sqrt !acc

(* intervals abut (torus-aware: 0 and 1 identify) *)
let abuts lo1 hi1 lo2 hi2 =
  let eq a b = abs_float (a -. b) < 1e-12 in
  eq hi1 lo2 || eq hi2 lo1
  || (eq hi1 1.0 && eq lo2 0.0)
  || (eq hi2 1.0 && eq lo1 0.0)

let overlaps lo1 hi1 lo2 hi2 = lo1 < hi2 -. 1e-12 && lo2 < hi1 -. 1e-12

let adjacent t a b =
  (* neighbors share a (d-1)-dimensional face: abutting in exactly one
     dimension and overlapping in all the others *)
  let abutting = ref 0 and overlapping = ref 0 in
  for i = 0 to t.dims - 1 do
    if abuts a.lo.(i) a.hi.(i) b.lo.(i) b.hi.(i) then incr abutting
    else if overlaps a.lo.(i) a.hi.(i) b.lo.(i) b.hi.(i) then incr overlapping
  done;
  !abutting >= 1 && !abutting + !overlapping = t.dims

let refresh_neighbors t n =
  n.neighbors <- List.filter (fun m -> m.alive && m != n && adjacent t n m) t.members

let bootstrap t ~addr =
  let n =
    {
      addr;
      lo = Array.make t.dims 0.;
      hi = Array.make t.dims 1.;
      neighbors = [];
      pointers = Hashtbl.create 8;
      alive = true;
      split_depth = 0;
    }
  in
  t.members <- n :: t.members;
  n

let owner_of t p =
  match List.find_opt (fun n -> contains n p) (nodes t) with
  | Some n -> n
  | None -> invalid_arg "Can.owner_of: zones do not cover the point"

let route t ~from p =
  let max_hops = 8 * List.length t.members in
  let rec go x hops =
    if contains x p || hops > max_hops then (x, hops)
    else begin
      let best =
        List.fold_left
          (fun acc m ->
            match acc with
            | Some b when zone_dist t b p <= zone_dist t m p -> acc
            | _ -> Some m)
          None x.neighbors
      in
      match best with
      | Some next when zone_dist t next p < zone_dist t x p ->
          charge t x next;
          go next (hops + 1)
      | _ -> (x, hops) (* stalled: shouldn't happen on a proper tiling *)
    end
  in
  go from 0

let point_of_key t k =
  (* splitmix-style hash per dimension *)
  let rng = Simnet.Rng.create (k * 2654435761) in
  Array.init t.dims (fun _ -> Simnet.Rng.float rng 1.0)

let join t ~gateway ~addr =
  let p = Array.init t.dims (fun _ -> Simnet.Rng.float t.rng 1.0) in
  Simnet.Cost.send t.cost ~dist:(Simnet.Metric.dist t.metric addr gateway.addr);
  let owner, _ = route t ~from:gateway p in
  (* split the owner's zone along the round-robin dimension *)
  let dim = owner.split_depth mod t.dims in
  let mid = (owner.lo.(dim) +. owner.hi.(dim)) /. 2. in
  let n =
    {
      addr;
      lo = Array.copy owner.lo;
      hi = Array.copy owner.hi;
      neighbors = [];
      pointers = Hashtbl.create 8;
      alive = true;
      split_depth = owner.split_depth + 1;
    }
  in
  (* the new node takes the upper half *)
  n.lo.(dim) <- mid;
  owner.hi.(dim) <- mid;
  owner.split_depth <- owner.split_depth + 1;
  t.members <- n :: t.members;
  (* pointer handover for keys now in the new half *)
  let moving =
    Hashtbl.fold
      (fun k v acc -> (k, v) :: acc)
      owner.pointers []
  in
  List.iter
    (fun (k, v) ->
      let kp = point_of_key t k in
      if contains n kp then begin
        Hashtbl.remove owner.pointers k;
        Hashtbl.replace n.pointers k v;
        Simnet.Cost.message t.cost ~dist:(net_dist t owner n)
      end)
    moving;
  (* neighbor updates: the new node, the split owner, and everyone around *)
  let affected = n :: owner :: owner.neighbors in
  List.iter
    (fun m ->
      charge t n m;
      refresh_neighbors t m)
    affected;
  n

let publish t ~server ~guid_key =
  let p = point_of_key t guid_key in
  let owner, _ = route t ~from:server p in
  let cur = Option.value ~default:[] (Hashtbl.find_opt owner.pointers guid_key) in
  Hashtbl.replace owner.pointers guid_key (server.addr :: cur)

let locate t ~from ~guid_key =
  let p = point_of_key t guid_key in
  let owner, _ = route t ~from p in
  match Hashtbl.find_opt owner.pointers guid_key with
  | Some (_ :: _ as addrs) ->
      let best =
        List.fold_left
          (fun acc a ->
            let d = Simnet.Metric.dist t.metric owner.addr a in
            match acc with Some (_, bd) when bd <= d -> acc | _ -> Some (a, d))
          None addrs
      in
      let addr, d = Option.get best in
      Simnet.Cost.send t.cost ~dist:d;
      List.find_opt (fun n -> n.addr = addr && n.alive) t.members
  | _ -> None

let table_size n = List.length n.neighbors

let check_zones_partition t ~samples =
  let ok = ref true in
  for _ = 1 to samples do
    let p = Array.init t.dims (fun _ -> Simnet.Rng.float t.rng 1.0) in
    let owners = List.filter (fun n -> contains n p) (nodes t) in
    if List.length owners <> 1 then ok := false
  done;
  !ok
