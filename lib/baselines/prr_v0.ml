type t = {
  metric : Simnet.Metric.t;
  n : int;
  levels : int; (* log2 n *)
  width : int; (* c log2 n trials per level *)
  reps : int array array array; (* reps.(v).(i).(j) = closest member of S_{i,j} to v *)
  member_objects : (int, (int * int) list) Hashtbl.t array;
      (* per node: guid key -> (guid key, server addr) — objects of nodes pointing here *)
  cost : Simnet.Cost.t;
}

let build ?(seed = 42) ?(c = 3) metric =
  let n = Simnet.Metric.size metric in
  if n < 2 then invalid_arg "Prr_v0.build: need at least 2 points";
  let rng = Simnet.Rng.create seed in
  let levels = int_of_float (ceil (log (float_of_int n) /. log 2.)) in
  let width = max 1 (c * levels) in
  (* Nested sampling: draw u ~ U[0,1) per (node, trial); node is in S_{i,j}
     iff u < 2^i / n, which gives S_{i,j} subseteq S_{i+1,j}. *)
  let draws = Array.init n (fun _ -> Array.init width (fun _ -> Simnet.Rng.float rng 1.0)) in
  let in_set v ~i ~j =
    let p = float_of_int (1 lsl i) /. float_of_int n in
    draws.(v).(j) < p
  in
  let root = Simnet.Rng.int rng n in
  (* Representative tables: for each (i, j) collect members, then give every
     node its closest member. Level 0 trial 0 is the single root. *)
  let reps =
    Array.init n (fun _ -> Array.make_matrix (levels + 1) width (-1))
  in
  for i = 0 to levels do
    for j = 0 to width - 1 do
      let members =
        if i = 0 then if j = 0 then [ root ] else []
        else
          List.filter (fun v -> in_set v ~i ~j) (List.init n (fun v -> v))
      in
      match members with
      | [] -> ()
      | members ->
          for v = 0 to n - 1 do
            let best =
              List.fold_left
                (fun acc m ->
                  let d = Simnet.Metric.dist metric v m in
                  match acc with Some (_, bd) when bd <= d -> acc | _ -> Some (m, d))
                None members
            in
            reps.(v).(i).(j) <- fst (Option.get best)
          done
    done
  done;
  {
    metric;
    n;
    levels;
    width;
    reps;
    member_objects = Array.init n (fun _ -> Hashtbl.create 4);
    cost = Simnet.Cost.make ();
  }

let cost t = t.cost

let levels t = t.levels

let width t = t.width

let publish t ~server_addr ~guid_key =
  (* Every representative of the server learns about the object. *)
  for i = 0 to t.levels do
    for j = 0 to t.width - 1 do
      let rep = t.reps.(server_addr).(i).(j) in
      if rep >= 0 then begin
        Simnet.Cost.message t.cost
          ~dist:(Simnet.Metric.dist t.metric server_addr rep);
        let tbl = t.member_objects.(rep) in
        let cur = Option.value ~default:[] (Hashtbl.find_opt tbl guid_key) in
        if
          not
            (List.exists
               (fun (g, s) -> Int.equal g guid_key && Int.equal s server_addr)
               cur)
        then
          Hashtbl.replace tbl guid_key ((guid_key, server_addr) :: cur)
      end
    done
  done

let locate t ~client_addr ~guid_key =
  (* Probe representatives from the densest level down; all j of one level
     are queried in parallel (latency counts the round trip per probe). *)
  let rec try_level i =
    if i < 0 then None
    else begin
      let found = ref None in
      for j = 0 to t.width - 1 do
        let rep = t.reps.(client_addr).(i).(j) in
        if rep >= 0 then begin
          let d = Simnet.Metric.dist t.metric client_addr rep in
          Simnet.Cost.send t.cost ~dist:(2. *. d);
          if !found = None then
            match Hashtbl.find_opt t.member_objects.(rep) guid_key with
            | Some ((_, server) :: _) -> found := Some server
            | _ -> ()
        end
      done;
      match !found with Some s -> Some s | None -> try_level (i - 1)
    end
  in
  match try_level t.levels with
  | None -> None
  | Some server ->
      Simnet.Cost.send t.cost ~dist:(Simnet.Metric.dist t.metric client_addr server);
      Some server

let space_per_node t =
  let rep_entries =
    Array.fold_left
      (fun acc per_node ->
        acc
        + Array.fold_left
            (fun a row ->
              a + Array.fold_left (fun b r -> if r >= 0 then b + 1 else b) 0 row)
            0 per_node)
      0 t.reps
  in
  let obj_entries =
    Array.fold_left (fun acc tbl -> acc + Hashtbl.length tbl) 0 t.member_objects
  in
  float_of_int (rep_entries + obj_entries) /. float_of_int t.n
