type t = {
  n : int;
  metric : Simnet.Metric.t;
  replicas : (int, int list) Hashtbl.t; (* guid key -> server addrs *)
  cost : Simnet.Cost.t;
}

let create ~n metric = { n; metric; replicas = Hashtbl.create 64; cost = Simnet.Cost.make () }

let cost t = t.cost

let publish t ~server_addr ~guid_key =
  (* one message per participant; latency approximated by the mean link *)
  for other = 0 to t.n - 1 do
    if other <> server_addr then
      Simnet.Cost.message t.cost
        ~dist:(Simnet.Metric.dist t.metric server_addr other)
  done;
  let cur = Option.value ~default:[] (Hashtbl.find_opt t.replicas guid_key) in
  if not (List.exists (Int.equal server_addr) cur) then
    Hashtbl.replace t.replicas guid_key (server_addr :: cur)

let locate t ~client_addr ~guid_key =
  match Hashtbl.find_opt t.replicas guid_key with
  | None | Some [] -> None
  | Some addrs ->
      let best =
        List.fold_left
          (fun acc a ->
            let d = Simnet.Metric.dist t.metric client_addr a in
            match acc with Some (_, bd) when bd <= d -> acc | _ -> Some (a, d))
          None addrs
      in
      let addr, d = Option.get best in
      Simnet.Cost.send t.cost ~dist:d;
      Some addr

let state_per_node t = Hashtbl.length t.replicas
