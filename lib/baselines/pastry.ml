module Node_id = Tapestry.Node_id
module Config = Tapestry.Config

type node = {
  id : Node_id.t;
  key : int;
  addr : int;
  table : node option array array; (* table.(level).(digit), proximity-chosen *)
  mutable leaves : node list; (* the leaf_set circularly closest others *)
  pointers : (Node_id.t * int, unit) Hashtbl.t; (* (guid, server addr) *)
  mutable alive : bool;
}

type t = {
  cfg : Config.t;
  keyspace : int;
  leaf_set : int;
  metric : Simnet.Metric.t;
  mutable members : node list;
  rng : Simnet.Rng.t;
  cost : Simnet.Cost.t;
}

let create ?(seed = 42) ?(leaf_set = 8) (cfg : Config.t) metric =
  let bits = ref 1 in
  for _ = 1 to cfg.Config.id_digits do
    bits := !bits * cfg.Config.base
  done;
  {
    cfg;
    keyspace = !bits;
    leaf_set;
    metric;
    members = [];
    rng = Simnet.Rng.create seed;
    cost = Simnet.Cost.make ();
  }

let cost t = t.cost

let nodes t = List.filter (fun n -> n.alive) t.members

let random_node t = Simnet.Rng.pick_list t.rng (nodes t)

let node_id n = n.id

let node_addr n = n.addr

let net_dist t a b = Simnet.Metric.dist t.metric a.addr b.addr

let charge t a b = Simnet.Cost.send t.cost ~dist:(net_dist t a b)

(* circular numeric distance on the key ring *)
let ring_dist t a b =
  let d = abs (a - b) in
  min d (t.keyspace - d)

let key_of t id = Node_id.to_int ~base:t.cfg.Config.base id

let fresh_id t =
  let rec go tries =
    if tries > 10000 then failwith "Pastry.fresh_id: exhausted";
    let id =
      Node_id.random ~base:t.cfg.Config.base ~len:t.cfg.Config.id_digits t.rng
    in
    if List.exists (fun n -> Node_id.equal n.id id) t.members then go (tries + 1)
    else id
  in
  go 0

let make_node t ~addr =
  let id = fresh_id t in
  let n =
    {
      id;
      key = key_of t id;
      addr;
      table =
        Array.init t.cfg.Config.id_digits (fun _ ->
            Array.make t.cfg.Config.base None);
      leaves = [];
      pointers = Hashtbl.create 8;
      alive = true;
    }
  in
  t.members <- n :: t.members;
  n

(* --- state maintenance --- *)

let consider_table t owner cand =
  if cand != owner && cand.alive then begin
    let l = Node_id.common_prefix_len owner.id cand.id in
    if l < t.cfg.Config.id_digits then begin
      let digit = Node_id.digit cand.id l in
      match owner.table.(l).(digit) with
      | Some cur when cur.alive && net_dist t owner cur <= net_dist t owner cand -> ()
      | _ -> owner.table.(l).(digit) <- Some cand
    end
  end

(* clockwise offset from a to b on the ring *)
let cw_offset t a b = ((b - a) mod t.keyspace + t.keyspace) mod t.keyspace

let consider_leaf t owner cand =
  if cand != owner && cand.alive
     && not (List.exists (fun x -> x == cand) owner.leaves)
  then begin
    (* proper Pastry leaf set: half the entries clockwise, half counter-
       clockwise, so the covered span is symmetric around the owner *)
    let all = cand :: owner.leaves in
    let cw =
      List.filter (fun x -> cw_offset t owner.key x.key <= t.keyspace / 2) all
      |> List.sort (fun a b ->
             Int.compare (cw_offset t owner.key a.key) (cw_offset t owner.key b.key))
    in
    let ccw =
      List.filter (fun x -> cw_offset t owner.key x.key > t.keyspace / 2) all
      |> List.sort (fun a b ->
             Int.compare (cw_offset t a.key owner.key) (cw_offset t b.key owner.key))
    in
    let rec take i = function
      | [] -> []
      | x :: rest -> if i = 0 then [] else x :: take (i - 1) rest
    in
    owner.leaves <- take (t.leaf_set / 2) cw @ take (t.leaf_set / 2) ccw
  end

let learn t owner cand =
  consider_table t owner cand;
  consider_leaf t owner cand

let known owner =
  let acc = ref [] in
  Array.iter
    (Array.iter (function Some n when n.alive -> acc := n :: !acc | _ -> ()))
    owner.table;
  List.iter (fun n -> if n.alive then acc := n :: !acc) owner.leaves;
  !acc

(* --- routing --- *)

let numerically_closer t key a b = ring_dist t key a.key < ring_dist t key b.key

let route_next t (x : node) target_id target_key =
  (* 1. leaf-set case: if the key lies within the leaf-set span, jump to the
     numerically closest member (or stop at self) *)
  let candidates = x :: x.leaves in
  let best_leaf =
    List.fold_left
      (fun acc c -> if numerically_closer t target_key c acc then c else acc)
      x candidates
  in
  let span_covers =
    (* per-side span: the leaf set covers the key iff it lies between the
       furthest counter-clockwise and furthest clockwise leaf *)
    match x.leaves with
    | [] -> true
    | leaves ->
        let cw_max =
          List.fold_left
            (fun m l ->
              let off = cw_offset t x.key l.key in
              if off <= t.keyspace / 2 then max m off else m)
            0 leaves
        in
        let ccw_max =
          List.fold_left
            (fun m l ->
              let off = cw_offset t l.key x.key in
              if off <= t.keyspace / 2 then max m off else m)
            0 leaves
        in
        let off = cw_offset t x.key target_key in
        off <= cw_max || t.keyspace - off <= ccw_max
  in
  if span_covers then if best_leaf == x then None else Some best_leaf
  else begin
    (* 2. prefix case *)
    let l = Node_id.common_prefix_len x.id target_id in
    let entry =
      if l < t.cfg.Config.id_digits then
        match x.table.(l).(Node_id.digit target_id l) with
        | Some e when e.alive -> Some e
        | _ -> None
      else None
    in
    match entry with
    | Some e -> Some e
    | None ->
        (* 3. rare case: any known node with >= l shared digits that is
           numerically closer than x *)
        let better =
          List.filter
            (fun c ->
              Node_id.common_prefix_len c.id target_id >= l
              && numerically_closer t target_key c x)
            (known x)
        in
        (match better with
        | [] -> if best_leaf == x then None else Some best_leaf
        | c :: rest ->
            Some (List.fold_left (fun acc d -> if numerically_closer t target_key d acc then d else acc) c rest))
  end

let route t ~from target_id =
  let target_key = key_of t target_id in
  let max_hops = 4 * t.cfg.Config.id_digits in
  let rec go x hops =
    if hops > max_hops then (x, hops)
    else
      match route_next t x target_id target_key with
      | None -> (x, hops)
      | Some next ->
          charge t x next;
          go next (hops + 1)
  in
  go from 0

(* --- membership --- *)

let bootstrap t ~addr =
  let n = make_node t ~addr in
  n

let join t ~gateway ~addr =
  let n = make_node t ~addr in
  charge t n gateway;
  (* route toward the new ID, learning from every hop (the Pastry join copies
     row i of the i-th node on the path; offering everything each hop knows
     subsumes that and stays proximity-aware) *)
  let target_key = n.key in
  let rec walk x hops acc =
    learn t n x;
    List.iter (learn t n) (known x);
    if hops > 4 * t.cfg.Config.id_digits then (x, acc)
    else
      match route_next t x n.id target_key with
      | None -> (x, acc)
      | Some next ->
          charge t x next;
          walk next (hops + 1) (x :: acc)
  in
  let root, _path = walk gateway 0 [] in
  (* adopt the numeric neighbor's leaf set *)
  List.iter (learn t n) (root :: root.leaves);
  (* announce: everyone the new node knows considers it back *)
  List.iter
    (fun peer ->
      charge t n peer;
      learn t peer n)
    (known n);
  (* pointer handover from the previous numeric root *)
  let moving =
    Hashtbl.fold
      (fun (guid, server) () acc ->
        if ring_dist t (key_of t guid) n.key < ring_dist t (key_of t guid) root.key
        then (guid, server) :: acc
        else acc)
      root.pointers []
  in
  List.iter
    (fun kv ->
      Hashtbl.remove root.pointers kv;
      Hashtbl.replace n.pointers kv ();
      Simnet.Cost.message t.cost ~dist:(net_dist t root n))
    moving;
  n

(* --- objects --- *)

let publish t ~server guid =
  let root, _ = route t ~from:server guid in
  Hashtbl.replace root.pointers (guid, server.addr) ()

let locate t ~from guid =
  let root, _ = route t ~from guid in
  let servers =
    Hashtbl.fold
      (fun (g, addr) () acc -> if Node_id.equal g guid then addr :: acc else acc)
      root.pointers []
  in
  match servers with
  | [] -> None
  | addrs ->
      let best =
        List.fold_left
          (fun acc a ->
            let d = Simnet.Metric.dist t.metric root.addr a in
            match acc with Some (_, bd) when bd <= d -> acc | _ -> Some (a, d))
          None addrs
      in
      let addr, d = Option.get best in
      Simnet.Cost.send t.cost ~dist:d;
      List.find_opt (fun n -> n.addr = addr && n.alive) t.members

let table_size n =
  let entries = ref 0 in
  Array.iter
    (Array.iter (function Some _ -> incr entries | None -> ()))
    n.table;
  !entries + List.length n.leaves

let check_routes_converge t ~samples =
  let ok = ref true in
  for _ = 1 to samples do
    let guid =
      Node_id.random ~base:t.cfg.Config.base ~len:t.cfg.Config.id_digits t.rng
    in
    (* oracle: the alive node with minimal ring distance *)
    let oracle =
      List.fold_left
        (fun acc n -> if numerically_closer t (key_of t guid) n acc then n else acc)
        (List.hd (nodes t))
        (nodes t)
    in
    for _ = 1 to 8 do
      let from = random_node t in
      let got, _ = route t ~from guid in
      if got != oracle then ok := false
    done
  done;
  !ok
