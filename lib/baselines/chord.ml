type node = {
  key : int;
  addr : int;
  mutable succs : node list; (* successor list, ascending ring distance *)
  mutable pred : node option;
  fingers : node option array;
  pointers : (int, int list) Hashtbl.t; (* guid key -> server addrs *)
  mutable alive : bool;
}

type t = {
  m : int;
  space : int; (* 2^m *)
  succ_list : int;
  metric : Simnet.Metric.t;
  mutable members : node list; (* oracle bookkeeping, not protocol state *)
  keys : (int, node) Hashtbl.t;
  rng : Simnet.Rng.t;
  cost : Simnet.Cost.t;
}

let create ?(seed = 42) ~m ~succ_list metric =
  if m < 3 || m > 30 then invalid_arg "Chord.create: m out of range";
  {
    m;
    space = 1 lsl m;
    succ_list = max 1 succ_list;
    metric;
    members = [];
    keys = Hashtbl.create 64;
    rng = Simnet.Rng.create seed;
    cost = Simnet.Cost.make ();
  }

let cost t = t.cost

let node_key n = n.key

let node_addr n = n.addr

let nodes t = List.filter (fun n -> n.alive) t.members

let random_node t = Simnet.Rng.pick_list t.rng (nodes t)

let dist t a b = Simnet.Metric.dist t.metric a.addr b.addr

let charge t a b = Simnet.Cost.send t.cost ~dist:(dist t a b)

(* Is x in the half-open ring interval (a, b]? *)
let in_interval t ~a ~b x =
  let norm v = ((v - a) mod t.space + t.space) mod t.space in
  let nb = norm b and nx = norm x in
  nb <> 0 && nx <> 0 && nx <= nb

let fresh_key t =
  let rec go tries =
    if tries > 10000 then failwith "Chord.fresh_key: key space exhausted";
    let k = Simnet.Rng.int t.rng t.space in
    if Hashtbl.mem t.keys k then go (tries + 1) else k
  in
  go 0

let make_node t ~addr =
  let key = fresh_key t in
  let n =
    {
      key;
      addr;
      succs = [];
      pred = None;
      fingers = Array.make t.m None;
      pointers = Hashtbl.create 8;
      alive = true;
    }
  in
  Hashtbl.replace t.keys key n;
  t.members <- n :: t.members;
  n

let successor n = match n.succs with s :: _ -> s | [] -> n

(* Closest finger (or successor) strictly inside (n.key, key). *)
let closest_preceding n t key =
  let best = ref None in
  let consider c =
    if c.alive && c != n && in_interval t ~a:n.key ~b:key c.key && c.key <> key
    then begin
      (* keep the candidate farthest around the ring toward key *)
      let better =
        match !best with
        | None -> true
        | Some b -> in_interval t ~a:b.key ~b:key c.key
      in
      if better then best := Some c
    end
  in
  Array.iter (function Some f -> consider f | None -> ()) n.fingers;
  List.iter consider n.succs;
  !best

(* Recursive lookup for successor(key), charging each forwarding hop. *)
let find_successor t ~from key =
  let rec go n hops =
    if hops > 4 * t.m then (successor n, hops) (* safety valve *)
    else begin
      let succ = successor n in
      match n.succs with
      | [] -> (n, hops)
      | _ :: _ ->
          if in_interval t ~a:n.key ~b:succ.key key then begin
            charge t n succ;
            (succ, hops + 1)
          end
          else begin
            match closest_preceding n t key with
            | Some next when next != n ->
                charge t n next;
                go next (hops + 1)
            | _ ->
                charge t n succ;
                go succ (hops + 1)
          end
    end
  in
  go from 0

let lookup t ~from key = find_successor t ~from key

let truncate_succs t l =
  let rec take i = function
    | [] -> []
    | x :: rest -> if i = 0 then [] else x :: take (i - 1) rest
  in
  take t.succ_list l

let bootstrap t ~addr =
  let n = make_node t ~addr in
  n.succs <- [ n ];
  n.pred <- Some n;
  Array.fill n.fingers 0 t.m (Some n);
  n

let init_fingers t n =
  for i = 0 to t.m - 1 do
    let start = (n.key + (1 lsl i)) mod t.space in
    let s, _ = find_successor t ~from:n start in
    n.fingers.(i) <- Some s
  done

let splice t n succ =
  (* insert n between succ.pred and succ *)
  let pred = match succ.pred with Some p when p.alive -> p | _ -> succ in
  n.succs <- truncate_succs t (succ :: List.filter (fun x -> x != n) succ.succs);
  n.pred <- Some pred;
  succ.pred <- Some n;
  if pred != n then begin
    pred.succs <- truncate_succs t (n :: List.filter (fun x -> x != pred) pred.succs);
    charge t n pred;
    charge t n succ
  end;
  (* take over pointers now owned by n: keys in (pred.key, n.key] *)
  let moving =
    Hashtbl.fold
      (fun k v acc ->
        if in_interval t ~a:pred.key ~b:n.key k || pred == succ then (k, v) :: acc
        else acc)
      succ.pointers []
  in
  List.iter
    (fun (k, v) ->
      if in_interval t ~a:pred.key ~b:n.key k then begin
        Hashtbl.remove succ.pointers k;
        Hashtbl.replace n.pointers k v;
        Simnet.Cost.message t.cost ~dist:(dist t succ n)
      end)
    moving

let join t ~gateway ~addr =
  let n = make_node t ~addr in
  charge t n gateway;
  let succ, _ = find_successor t ~from:gateway n.key in
  splice t n succ;
  init_fingers t n;
  n

let stabilize node t =
  if node.alive then begin
    let succ = successor node in
    (* adopt succ.pred if it sits between us and succ *)
    (match succ.pred with
    | Some p
      when p.alive && p != node && in_interval t ~a:node.key ~b:succ.key p.key
           && p.key <> succ.key ->
        charge t node p;
        node.succs <- truncate_succs t (p :: node.succs)
    | _ -> ());
    let succ = successor node in
    charge t node succ;
    (match succ.pred with
    | Some p when p.alive && in_interval t ~a:p.key ~b:succ.key node.key ->
        succ.pred <- Some node
    | None -> succ.pred <- Some node
    | Some p when not p.alive -> succ.pred <- Some node
    | Some _ -> ());
    (* refresh successor list from successor's list *)
    node.succs <-
      truncate_succs t
        (successor node :: List.filter (fun x -> x.alive) (successor node).succs)
  end

let fix_fingers node t =
  if node.alive then
    for i = 0 to t.m - 1 do
      let start = (node.key + (1 lsl i)) mod t.space in
      let s, _ = find_successor t ~from:node start in
      node.fingers.(i) <- Some s
    done

let stabilize_all t ~rounds =
  for _ = 1 to rounds do
    List.iter (fun n -> stabilize n t) (nodes t);
    List.iter (fun n -> fix_fingers n t) (nodes t)
  done

let publish t ~server ~guid_key =
  let owner, _ = find_successor t ~from:server guid_key in
  let existing = Option.value ~default:[] (Hashtbl.find_opt owner.pointers guid_key) in
  Hashtbl.replace owner.pointers guid_key (server.addr :: existing)

let locate t ~from ~guid_key =
  let owner, _ = find_successor t ~from guid_key in
  match Hashtbl.find_opt owner.pointers guid_key with
  | Some (addr :: _ as addrs) ->
      (* forward to the replica closest to the owner *)
      let best =
        List.fold_left
          (fun acc a ->
            let d = Simnet.Metric.dist t.metric owner.addr a in
            match acc with Some (_, bd) when bd <= d -> acc | _ -> Some (a, d))
          None addrs
      in
      let addr, d = match best with Some (a, d) -> (a, d) | None -> (addr, 0.) in
      Simnet.Cost.send t.cost ~dist:d;
      List.find_opt (fun n -> n.addr = addr && n.alive) t.members
  | _ -> None

let table_size n =
  (* distinct routing entries: in a small ring most fingers coincide, so the
     meaningful space figure is the number of distinct neighbors known *)
  let seen = Hashtbl.create 16 in
  Array.iter
    (function Some f -> Hashtbl.replace seen f.key () | None -> ())
    n.fingers;
  List.iter (fun s -> Hashtbl.replace seen s.key ()) n.succs;
  (match n.pred with Some p -> Hashtbl.replace seen p.key () | None -> ());
  Hashtbl.length seen

let check_ring t =
  match nodes t with
  | [] -> true
  | first :: _ as all ->
      let count = List.length all in
      (* follow successors from [first]; the ring is whole iff we see every
         node before returning to the start *)
      let rec walk n visited =
        let s = successor n in
        if s == first then visited
        else if visited > count then visited
        else walk s (visited + 1)
      in
      walk first 1 = count
