open Tapestry

type placed_object = { guid : Node_id.t; servers : Node.t list }

let distinct_servers net rng k =
  let all = Array.of_list (Network.alive_nodes net) in
  Simnet.Rng.shuffle rng all;
  Array.to_list (Array.sub all 0 (min k (Array.length all)))

let place_objects ?(on_secondaries = false) net ~count ~replicas =
  let cfg = net.Network.config in
  List.init count (fun _ ->
      let guid =
        Node_id.random ~base:cfg.Config.base ~len:cfg.Config.id_digits
          net.Network.rng
      in
      let servers = distinct_servers net net.Network.rng replicas in
      List.iter
        (fun server -> ignore (Publish.publish ~on_secondaries net ~server guid))
        servers;
      { guid; servers })

let optimal_distance net ~client obj =
  List.fold_left
    (fun acc s -> min acc (Network.dist net client s))
    infinity obj.servers

type query = { client : Node.t; obj : placed_object }

let uniform_queries net ~objects ~count =
  List.init count (fun _ ->
      {
        client = Network.random_alive net;
        obj = Simnet.Rng.pick_list net.Network.rng objects;
      })

let stratified_queries net ~objects ~per_bucket ~buckets =
  (* Band queries by optimal distance relative to the largest optimal
     distance seen in a calibration sample. *)
  let rng = net.Network.rng in
  let sample () =
    { client = Network.random_alive net; obj = Simnet.Rng.pick_list rng objects }
  in
  let max_d =
    let worst = ref 0. in
    for _ = 1 to 200 do
      let q = sample () in
      worst := max !worst (optimal_distance net ~client:q.client q.obj)
    done;
    max !worst epsilon_float
  in
  let bucket_of q =
    let d = optimal_distance net ~client:q.client q.obj in
    min (buckets - 1) (int_of_float (d /. max_d *. float_of_int buckets))
  in
  let bins = Array.make buckets [] in
  let filled = Array.make buckets 0 in
  let attempts = ref 0 in
  let budget = per_bucket * buckets * 200 in
  while Array.exists (fun c -> c < per_bucket) filled && !attempts < budget do
    incr attempts;
    let q = sample () in
    let b = bucket_of q in
    if filled.(b) < per_bucket then begin
      bins.(b) <- q :: bins.(b);
      filled.(b) <- filled.(b) + 1
    end
  done;
  List.init buckets (fun b -> (b, bins.(b)))

type zipf = { cum : float array }

let zipf ~s ~n =
  if n <= 0 then invalid_arg "Workload.zipf: n must be positive";
  let cum = Array.make n 0. in
  let acc = ref 0. in
  for i = 0 to n - 1 do
    acc := !acc +. (1. /. Float.pow (float_of_int (i + 1)) s);
    cum.(i) <- !acc
  done;
  let total = !acc in
  for i = 0 to n - 1 do
    cum.(i) <- cum.(i) /. total
  done;
  (* guard against rounding: the last cumulative weight must catch any
     draw in [cum.(n-2), 1) *)
  cum.(n - 1) <- 1.;
  { cum }

let zipf_sample z rng =
  let u = Simnet.Rng.float rng 1.0 in
  (* first index whose cumulative weight covers u *)
  let lo = ref 0 and hi = ref (Array.length z.cum - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if z.cum.(mid) > u then hi := mid else lo := mid + 1
  done;
  !lo

type churn_event = Join | Leave_voluntary | Fail

let churn_trace ~rng ~steps ~p_join ~p_leave =
  List.init steps (fun _ ->
      let u = Simnet.Rng.float rng 1.0 in
      if u < p_join then Join
      else if u < p_join +. p_leave then Leave_voluntary
      else Fail)
