(** The experiment harness: one entry per reproduced table/figure.

    Each function builds its own networks, runs the workload and returns
    rendered {!Simnet.Stats.Table.t}s whose rows mirror what the paper
    reports (see DESIGN.md section 4 for the experiment index and
    EXPERIMENTS.md for paper-vs-measured).  [quick] shrinks sizes for test
    and smoke use; experiments are deterministic given [seed].

    Experiments whose iterations are independent (one per size or
    configuration) take [?domains] and spread iterations over that many
    stdlib domains via {!Simnet.Parallel}; results are joined in iteration
    order, so output is bit-identical whatever [domains] is (default 1). *)

type mode = Quick | Full

val table1 : ?seed:int -> ?domains:int -> mode -> Simnet.Stats.Table.t list
(** E1 — Table 1 empirically: per scheme and size, insert cost (messages),
    space per node (table entries), lookup hops, and pointer-load balance. *)

val stretch : ?seed:int -> mode -> Simnet.Stats.Table.t list
(** E2 — stretch vs distance-to-object for Tapestry (both routing variants),
    Chord, central directory and broadcast on a growth-restricted metric. *)

val nn_k : ?seed:int -> mode -> Simnet.Stats.Table.t list
(** E3 — Lemma 1/Theorem 3: nearest-neighbor success and Property-1 backfill
    pressure as the list width k sweeps. *)

val insert_scaling : ?seed:int -> ?domains:int -> mode -> Simnet.Stats.Table.t list
(** E4 — insertion cost scaling: messages vs n with the log^2 n normalizer,
    latency vs network diameter. *)

val multicast : ?seed:int -> mode -> Simnet.Stats.Table.t list
(** E5 — Theorem 5: coverage and spanning-tree economy of acknowledged
    multicast. *)

val surrogate : ?seed:int -> mode -> Simnet.Stats.Table.t list
(** E6 — Theorem 2: root uniqueness for both localized routing variants and
    the <2 expected surrogate-hop overhead. *)

val availability : ?seed:int -> mode -> Simnet.Stats.Table.t list
(** E7 — object availability under churn (joins, voluntary leaves, silent
    failures) with lazy repair and periodic republish. *)

val concurrent_insert : ?seed:int -> mode -> Simnet.Stats.Table.t list
(** E8 — Theorem 6: batches of simultaneous insertions interleaved on the
    fiber scheduler keep Property 1. *)

val prr_v0 : ?seed:int -> ?domains:int -> mode -> Simnet.Stats.Table.t list
(** E9 — Theorem 7: PRR v.0 stretch and space on general (expansion-free)
    metrics, next to Tapestry on the same spaces. *)

val stub_locality : ?seed:int -> mode -> Simnet.Stats.Table.t list
(** E10 — Section 6.3: intra-stub query latency with and without the
    local-branch optimization on transit-stub topologies. *)

val table_quality : ?seed:int -> ?domains:int -> mode -> Simnet.Stats.Table.t list
(** E11 — incremental construction vs the static oracle: Property-2 slot
    optimality and primary-distance quality. *)

val delete : ?seed:int -> mode -> Simnet.Stats.Table.t list
(** E12 — deletion: consistency and availability through voluntary sweeps
    and involuntary failures, plus Figure 9 pointer-path optimality. *)

val nn_vs_kr : ?seed:int -> mode -> Simnet.Stats.Table.t list
(** E13 — Section 3's comparison: the level-list descent vs a Karger-Ruhl
    style sampling search — exactness, messages, network distance, space. *)

val continual_optimization : ?seed:int -> mode -> Simnet.Stats.Table.t list
(** E14 — Section 6.4: stretch/locality decay under drifting distances and
    recovery by each optimization heuristic, with maintenance cost. *)

val redundancy : ?seed:int -> ?domains:int -> mode -> Simnet.Stats.Table.t list
(** E15 — ablation of R (secondaries per slot) and root-set size
    (Observation 1): availability through silent mass failure. *)

val async_recovery : ?seed:int -> mode -> Simnet.Stats.Table.t list
(** E16 — fully asynchronous timeline: mass silent failure under running
    heartbeat and republish daemons (Sections 5.2/6.5); availability per
    virtual-time bucket shows the dip and the soft-state recovery. *)

val all : ?seed:int -> ?domains:int -> mode -> (string * Simnet.Stats.Table.t list) list
(** Every experiment in paper order, tagged with its id.  Runs everything —
    use {!by_name} to run one. *)

val by_name : ?seed:int -> ?domains:int -> mode -> string -> Simnet.Stats.Table.t list
(** Run one experiment; [domains] is ignored by experiments that don't
    parallelize. @raise Invalid_argument on an unknown name. *)

val run_and_print : ?seed:int -> ?domains:int -> mode -> string list -> unit
(** Print the named experiments (or all of them for [[]]) to stdout. *)

val names : string list

(** {2 Scale tier}

    Re-measures the paper's headline claims — E1 insertion cost (fit
    against c·log² n), E2 locate hop counts, E4 stretch — at
    10^5–10^6 nodes via {!Tapestry.Static_build.build_streamed}, with
    resident-size accounting.  Kept out of {!all}/{!names}: a point takes
    minutes to hours, and the output schema (wall-clock, RSS) is
    machine-dependent, unlike the deterministic experiment tables. *)

type scale_point = {
  sp_n : int;
  sp_build_wall_s : float;  (** construction wall-clock (via [now]) *)
  sp_wall_s : float;  (** whole point incl. sampling (via [now]) *)
  sp_stats : Tapestry.Static_build.stream_stats;
  sp_insert_fit_c : float;
      (** late-join mean messages / log2(n)² — the E1 constant; flat
          across sizes confirms the Θ(log² n) insertion bound *)
  sp_locate_hops : float;  (** E2: mean locate hops over the sample *)
  sp_locate_success : float;  (** fraction of sampled locates that hit *)
  sp_stretch_mean : float;  (** E4: mean latency / optimal over sample *)
  sp_stretch_p95 : float;
  sp_bytes_per_node : float;
      (** {!Tapestry.Network.memory_footprint} total / n *)
  sp_peak_rss_kb : int;  (** VmHWM of the process, kB; 0 if unreadable *)
  sp_gc_top_heap_words : int;
  sp_minor_words : float;
  sp_audit_violations : int option;  (** [Some 0] = audit-clean *)
}

val scale_point :
  ?seed:int ->
  ?domains:int ->
  ?now:(unit -> float) ->
  ?objects:int ->
  ?queries:int ->
  ?audit:bool ->
  ?progress:(string -> unit) ->
  n:int ->
  unit ->
  Tapestry.Network.t * scale_point
(** One size: generate a uniform-square topology, build streamed, sample
    [queries] locates over [objects] published objects, optionally audit.
    [now] injects wall-clock (the default returns 0, zeroing the wall
    fields but nothing else); everything except the wall/RSS/GC fields is
    deterministic in [seed] and independent of [domains]. *)

val scale :
  ?seed:int ->
  ?domains:int ->
  ?now:(unit -> float) ->
  ?objects:int ->
  ?queries:int ->
  ?audit:bool ->
  ?progress:(string -> unit) ->
  sizes:int list ->
  unit ->
  scale_point list * Simnet.Stats.Table.t
(** Run the sizes sequentially (each network dropped before the next, so
    peak residency is one mesh) and render the summary table. *)
