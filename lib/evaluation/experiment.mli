(** The experiment harness: one entry per reproduced table/figure.

    Each function builds its own networks, runs the workload and returns
    rendered {!Simnet.Stats.Table.t}s whose rows mirror what the paper
    reports (see DESIGN.md section 4 for the experiment index and
    EXPERIMENTS.md for paper-vs-measured).  [quick] shrinks sizes for test
    and smoke use; experiments are deterministic given [seed].

    Experiments whose iterations are independent (one per size or
    configuration) take [?domains] and spread iterations over that many
    stdlib domains via {!Simnet.Parallel}; results are joined in iteration
    order, so output is bit-identical whatever [domains] is (default 1). *)

type mode = Quick | Full

val table1 : ?seed:int -> ?domains:int -> mode -> Simnet.Stats.Table.t list
(** E1 — Table 1 empirically: per scheme and size, insert cost (messages),
    space per node (table entries), lookup hops, and pointer-load balance. *)

val stretch : ?seed:int -> mode -> Simnet.Stats.Table.t list
(** E2 — stretch vs distance-to-object for Tapestry (both routing variants),
    Chord, central directory and broadcast on a growth-restricted metric. *)

val nn_k : ?seed:int -> mode -> Simnet.Stats.Table.t list
(** E3 — Lemma 1/Theorem 3: nearest-neighbor success and Property-1 backfill
    pressure as the list width k sweeps. *)

val insert_scaling : ?seed:int -> ?domains:int -> mode -> Simnet.Stats.Table.t list
(** E4 — insertion cost scaling: messages vs n with the log^2 n normalizer,
    latency vs network diameter. *)

val multicast : ?seed:int -> mode -> Simnet.Stats.Table.t list
(** E5 — Theorem 5: coverage and spanning-tree economy of acknowledged
    multicast. *)

val surrogate : ?seed:int -> mode -> Simnet.Stats.Table.t list
(** E6 — Theorem 2: root uniqueness for both localized routing variants and
    the <2 expected surrogate-hop overhead. *)

val availability : ?seed:int -> mode -> Simnet.Stats.Table.t list
(** E7 — object availability under churn (joins, voluntary leaves, silent
    failures) with lazy repair and periodic republish. *)

val concurrent_insert : ?seed:int -> mode -> Simnet.Stats.Table.t list
(** E8 — Theorem 6: batches of simultaneous insertions interleaved on the
    fiber scheduler keep Property 1. *)

val prr_v0 : ?seed:int -> ?domains:int -> mode -> Simnet.Stats.Table.t list
(** E9 — Theorem 7: PRR v.0 stretch and space on general (expansion-free)
    metrics, next to Tapestry on the same spaces. *)

val stub_locality : ?seed:int -> mode -> Simnet.Stats.Table.t list
(** E10 — Section 6.3: intra-stub query latency with and without the
    local-branch optimization on transit-stub topologies. *)

val table_quality : ?seed:int -> ?domains:int -> mode -> Simnet.Stats.Table.t list
(** E11 — incremental construction vs the static oracle: Property-2 slot
    optimality and primary-distance quality. *)

val delete : ?seed:int -> mode -> Simnet.Stats.Table.t list
(** E12 — deletion: consistency and availability through voluntary sweeps
    and involuntary failures, plus Figure 9 pointer-path optimality. *)

val nn_vs_kr : ?seed:int -> mode -> Simnet.Stats.Table.t list
(** E13 — Section 3's comparison: the level-list descent vs a Karger-Ruhl
    style sampling search — exactness, messages, network distance, space. *)

val continual_optimization : ?seed:int -> mode -> Simnet.Stats.Table.t list
(** E14 — Section 6.4: stretch/locality decay under drifting distances and
    recovery by each optimization heuristic, with maintenance cost. *)

val redundancy : ?seed:int -> ?domains:int -> mode -> Simnet.Stats.Table.t list
(** E15 — ablation of R (secondaries per slot) and root-set size
    (Observation 1): availability through silent mass failure. *)

val async_recovery : ?seed:int -> mode -> Simnet.Stats.Table.t list
(** E16 — fully asynchronous timeline: mass silent failure under running
    heartbeat and republish daemons (Sections 5.2/6.5); availability per
    virtual-time bucket shows the dip and the soft-state recovery. *)

val all : ?seed:int -> ?domains:int -> mode -> (string * Simnet.Stats.Table.t list) list
(** Every experiment in paper order, tagged with its id.  Runs everything —
    use {!by_name} to run one. *)

val by_name : ?seed:int -> ?domains:int -> mode -> string -> Simnet.Stats.Table.t list
(** Run one experiment; [domains] is ignored by experiments that don't
    parallelize. @raise Invalid_argument on an unknown name. *)

val run_and_print : ?seed:int -> ?domains:int -> mode -> string list -> unit
(** Print the named experiments (or all of them for [[]]) to stdout. *)

val names : string list
