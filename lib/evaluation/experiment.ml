open Tapestry
module Stats = Simnet.Stats
module Cost = Simnet.Cost
module Rng = Simnet.Rng
module Topology = Simnet.Topology
module Metric = Simnet.Metric
module Parallel = Simnet.Parallel

type mode = Quick | Full

let pick mode ~quick ~full = match mode with Quick -> quick | Full -> full

let f = Stats.fmt_float

let log2 x = log (float_of_int (max 2 x)) /. log 2.

(* Build a Tapestry network incrementally on a fresh topology. *)
let build_tapestry ?(cfg = Config.default) ~seed ~kind ~n () =
  let rng = Rng.create seed in
  let metric = Topology.generate kind ~n ~rng in
  let addrs = List.init n (fun i -> i) in
  let net, reports = Insert.build_incremental ~seed:(seed + 1) cfg metric ~addrs in
  (net, metric, reports)

(* Mean over the later joins, where the network is at its final scale. *)
let late_mean reports extract =
  let arr = Array.of_list reports in
  let n = Array.length arr in
  let from = n / 2 in
  let vals = ref [] in
  for i = from to n - 1 do
    vals := extract arr.(i) :: !vals
  done;
  Stats.mean !vals

(* Measured stretch of one Tapestry locate. *)
let tapestry_stretch ?variant net (q : Workload.query) =
  let opt = Workload.optimal_distance net ~client:q.client q.obj in
  let res, cost =
    Network.measure net (fun () -> Locate.locate ?variant net ~client:q.client q.obj.guid)
  in
  match res.Locate.server with
  | Some _ when opt > 1e-12 -> Some (cost.Cost.latency /. opt)
  | Some _ -> Some 1.0
  | None -> None

(* ------------------------------------------------------------------ *)
(* E1: Table 1, measured                                               *)
(* ------------------------------------------------------------------ *)

let table1 ?(seed = 42) ?(domains = 1) mode =
  let sizes = pick mode ~quick:[ 64; 128 ] ~full:[ 64; 128; 256; 512; 1024 ] in
  let t =
    Stats.Table.create ~title:"E1 / Table 1 (measured): object location systems"
      ~columns:
        [ "scheme"; "n"; "insert msgs"; "space/node"; "lookup hops"; "load gini" ]
  in
  (* Sizes are independent (each builds its own networks and rngs), so they
     run as parallel tasks; rows join back in size order, keeping the table
     identical whatever [domains] is. *)
  let row_groups =
    Parallel.map_list ~domains sizes ~f:(fun _ n ->
      let rows = ref [] in
      let emit r = rows := r :: !rows in
      (* --- Tapestry --- *)
      let net, metric, reports = build_tapestry ~seed ~kind:Uniform_square ~n () in
      let insert_msgs = late_mean reports (fun r -> float_of_int r.Insert.cost.Cost.messages) in
      let space =
        Network.alive_nodes net
        |> List.map (fun (nd : Node.t) ->
               float_of_int (Routing_table.entry_count nd.Node.table))
        |> Stats.mean
      in
      let objects = Workload.place_objects net ~count:n ~replicas:1 in
      let queries = Workload.uniform_queries net ~objects ~count:200 in
      let hops =
        List.filter_map
          (fun (q : Workload.query) ->
            let res, cost =
              Network.measure net (fun () ->
                  Locate.locate net ~client:q.client q.obj.guid)
            in
            if Option.is_some res.Locate.server then Some (float_of_int cost.Cost.hops)
            else None)
          queries
        |> Stats.mean
      in
      let pointer_loads =
        Network.alive_nodes net
        |> List.map (fun (nd : Node.t) -> float_of_int (Pointer_store.size nd.Node.pointers))
      in
      emit
        [ "tapestry"; string_of_int n; f insert_msgs; f space; f hops;
          f (Stats.gini pointer_loads) ];
      (* --- Chord on the same metric --- *)
      let ch = Baselines.Chord.create ~seed:(seed + 2) ~m:24 ~succ_list:4 metric in
      let rng = Rng.create (seed + 3) in
      let join_costs = ref [] in
      ignore (Baselines.Chord.bootstrap ch ~addr:0);
      for addr = 1 to n - 1 do
        let gw = Baselines.Chord.random_node ch in
        let before = Cost.snapshot (Baselines.Chord.cost ch) in
        ignore (Baselines.Chord.join ch ~gateway:gw ~addr);
        let d = Cost.diff (Cost.snapshot (Baselines.Chord.cost ch)) before in
        if addr > n / 2 then join_costs := float_of_int d.Cost.messages :: !join_costs
      done;
      Baselines.Chord.stabilize_all ch ~rounds:2;
      let chord_keys =
        List.init n (fun i -> (i * 7919) + Rng.int rng 1000)
      in
      List.iter
        (fun k ->
          let server = Baselines.Chord.random_node ch in
          Baselines.Chord.publish ch ~server ~guid_key:(k land ((1 lsl 24) - 1)))
        chord_keys;
      let chord_hops =
        List.filteri (fun i _ -> i < 200) chord_keys
        |> List.map (fun k ->
               let from = Baselines.Chord.random_node ch in
               let _, hops =
                 Baselines.Chord.lookup ch ~from (k land ((1 lsl 24) - 1))
               in
               float_of_int hops)
        |> Stats.mean
      in
      let chord_space =
        Baselines.Chord.nodes ch
        |> List.map (fun nd -> float_of_int (Baselines.Chord.table_size nd))
        |> Stats.mean
      in
      emit
        [ "chord"; string_of_int n; f (Stats.mean !join_costs); f chord_space;
          f chord_hops; "-" ];
      (* --- Pastry on the same metric --- *)
      let pa = Baselines.Pastry.create ~seed:(seed + 4) Config.default metric in
      let pastry_join = ref [] in
      ignore (Baselines.Pastry.bootstrap pa ~addr:0);
      for addr = 1 to n - 1 do
        let gw = Baselines.Pastry.random_node pa in
        let before = Cost.snapshot (Baselines.Pastry.cost pa) in
        ignore (Baselines.Pastry.join pa ~gateway:gw ~addr);
        let d = Cost.diff (Cost.snapshot (Baselines.Pastry.cost pa)) before in
        if addr > n / 2 then pastry_join := float_of_int d.Cost.messages :: !pastry_join
      done;
      let pastry_hops =
        List.init 200 (fun _ ->
            let from = Baselines.Pastry.random_node pa in
            let guid =
              Node_id.random ~base:Config.default.Config.base
                ~len:Config.default.Config.id_digits net.Network.rng
            in
            let _, h = Baselines.Pastry.route pa ~from guid in
            float_of_int h)
        |> Stats.mean
      in
      let pastry_space =
        Baselines.Pastry.nodes pa
        |> List.map (fun nd -> float_of_int (Baselines.Pastry.table_size nd))
        |> Stats.mean
      in
      emit
        [ "pastry"; string_of_int n; f (Stats.mean !pastry_join); f pastry_space;
          f pastry_hops; "-" ];
      (* --- CAN on the same metric --- *)
      let ca = Baselines.Can.create ~seed:(seed + 5) metric in
      let can_join = ref [] in
      ignore (Baselines.Can.bootstrap ca ~addr:0);
      for addr = 1 to n - 1 do
        let gw = Baselines.Can.random_node ca in
        let before = Cost.snapshot (Baselines.Can.cost ca) in
        ignore (Baselines.Can.join ca ~gateway:gw ~addr);
        let d = Cost.diff (Cost.snapshot (Baselines.Can.cost ca)) before in
        if addr > n / 2 then can_join := float_of_int d.Cost.messages :: !can_join
      done;
      let can_hops =
        List.init 200 (fun i ->
            let from = Baselines.Can.random_node ca in
            let _, h = Baselines.Can.route ca ~from (Baselines.Can.point_of_key ca (i * 37)) in
            float_of_int h)
        |> Stats.mean
      in
      let can_space =
        Baselines.Can.nodes ca
        |> List.map (fun nd -> float_of_int (Baselines.Can.table_size nd))
        |> Stats.mean
      in
      emit
        [ "can (d=2)"; string_of_int n; f (Stats.mean !can_join); f can_space;
          f can_hops; "-" ];
      (* --- Central directory --- *)
      let dir =
        Baselines.Central_directory.create ~directory_addr:(n / 2) metric
      in
      List.iteri
        (fun i _ -> Baselines.Central_directory.publish dir ~server_addr:(i mod n) ~guid_key:i)
        (List.init n (fun i -> i));
      emit
        [ "central-dir"; string_of_int n; "1";
          Printf.sprintf "%d@dir" (Baselines.Central_directory.directory_entries dir);
          "2"; "1.0" ];
      (* --- Broadcast --- *)
      let bc = Baselines.Broadcast.create ~n metric in
      Baselines.Broadcast.publish bc ~server_addr:0 ~guid_key:1;
      emit
        [ "broadcast"; string_of_int n; string_of_int (n - 1);
          Printf.sprintf "%d*objs" 1; "1"; "0.0" ];
      List.rev !rows)
  in
  List.iter (List.iter (Stats.Table.add_row t)) row_groups;
  [ t ]

(* ------------------------------------------------------------------ *)
(* E2: stretch vs distance                                             *)
(* ------------------------------------------------------------------ *)

let stretch ?(seed = 42) mode =
  let n = pick mode ~quick:128 ~full:512 in
  let objects_n = pick mode ~quick:30 ~full:100 in
  let per_bucket = pick mode ~quick:20 ~full:60 in
  let net, metric, _ = build_tapestry ~seed ~kind:Uniform_square ~n () in
  let objects = Workload.place_objects net ~count:objects_n ~replicas:4 in
  (* mirror the same placement for the baselines *)
  let ch = Baselines.Chord.create ~seed:(seed + 2) ~m:24 ~succ_list:4 metric in
  ignore (Baselines.Chord.bootstrap ch ~addr:0);
  for addr = 1 to n - 1 do
    ignore (Baselines.Chord.join ch ~gateway:(Baselines.Chord.random_node ch) ~addr)
  done;
  Baselines.Chord.stabilize_all ch ~rounds:2;
  let chord_by_addr = Hashtbl.create n in
  List.iter
    (fun nd -> Hashtbl.replace chord_by_addr (Baselines.Chord.node_addr nd) nd)
    (Baselines.Chord.nodes ch);
  let pa = Baselines.Pastry.create ~seed:(seed + 6) Config.default metric in
  ignore (Baselines.Pastry.bootstrap pa ~addr:0);
  for addr = 1 to n - 1 do
    ignore (Baselines.Pastry.join pa ~gateway:(Baselines.Pastry.random_node pa) ~addr)
  done;
  let pastry_by_addr = Hashtbl.create n in
  List.iter
    (fun nd -> Hashtbl.replace pastry_by_addr (Baselines.Pastry.node_addr nd) nd)
    (Baselines.Pastry.nodes pa);
  let dir = Baselines.Central_directory.create ~directory_addr:(n / 2) metric in
  let chord_key_of (obj : Workload.placed_object) =
    Node_id.to_int ~base:Config.default.Config.base obj.Workload.guid
    land ((1 lsl 24) - 1)
  in
  List.iter
    (fun (obj : Workload.placed_object) ->
      List.iter
        (fun (s : Node.t) ->
          (match Hashtbl.find_opt chord_by_addr s.Node.addr with
          | Some nd -> Baselines.Chord.publish ch ~server:nd ~guid_key:(chord_key_of obj)
          | None -> ());
          (match Hashtbl.find_opt pastry_by_addr s.Node.addr with
          | Some nd -> Baselines.Pastry.publish pa ~server:nd obj.Workload.guid
          | None -> ());
          Baselines.Central_directory.publish dir ~server_addr:s.Node.addr
            ~guid_key:(chord_key_of obj))
        obj.Workload.servers)
    objects;
  let buckets = 5 in
  let strata = Workload.stratified_queries net ~objects ~per_bucket ~buckets in
  let t =
    Stats.Table.create
      ~title:"E2: stretch vs client-object distance (uniform-square metric)"
      ~columns:
        [ "dist bucket"; "queries"; "tapestry"; "tapestry-prr"; "chord"; "pastry";
          "central-dir"; "broadcast" ]
  in
  List.iter
    (fun (b, queries) ->
      let tap =
        List.filter_map (tapestry_stretch net) queries |> Stats.mean
      in
      let tap_prr =
        List.filter_map (tapestry_stretch ~variant:Route.Prr_like net) queries
        |> Stats.mean
      in
      let chord_stretch =
        List.filter_map
          (fun (q : Workload.query) ->
            let opt = Workload.optimal_distance net ~client:q.client q.obj in
            match Hashtbl.find_opt chord_by_addr q.client.Node.addr with
            | None -> None
            | Some from ->
                let before = Cost.snapshot (Baselines.Chord.cost ch) in
                let res = Baselines.Chord.locate ch ~from ~guid_key:(chord_key_of q.obj) in
                let d = Cost.diff (Cost.snapshot (Baselines.Chord.cost ch)) before in
                if Option.is_some res && opt > 1e-12 then Some (d.Cost.latency /. opt)
                else None)
          queries
        |> Stats.mean
      in
      let pastry_stretch =
        List.filter_map
          (fun (q : Workload.query) ->
            let opt = Workload.optimal_distance net ~client:q.client q.obj in
            match Hashtbl.find_opt pastry_by_addr q.client.Node.addr with
            | None -> None
            | Some from ->
                let before = Cost.snapshot (Baselines.Pastry.cost pa) in
                let res = Baselines.Pastry.locate pa ~from q.obj.Workload.guid in
                let d = Cost.diff (Cost.snapshot (Baselines.Pastry.cost pa)) before in
                if Option.is_some res && opt > 1e-12 then Some (d.Cost.latency /. opt)
                else None)
          queries
        |> Stats.mean
      in
      let dir_stretch =
        List.filter_map
          (fun (q : Workload.query) ->
            let opt = Workload.optimal_distance net ~client:q.client q.obj in
            let before = Cost.snapshot (Baselines.Central_directory.cost dir) in
            let res =
              Baselines.Central_directory.locate dir ~client_addr:q.client.Node.addr
                ~guid_key:(chord_key_of q.obj)
            in
            let d =
              Cost.diff (Cost.snapshot (Baselines.Central_directory.cost dir)) before
            in
            if Option.is_some res && opt > 1e-12 then Some (d.Cost.latency /. opt) else None)
          queries
        |> Stats.mean
      in
      Stats.Table.add_row t
        [ Printf.sprintf "%d/%d" (b + 1) buckets;
          string_of_int (List.length queries); f tap; f tap_prr; f chord_stretch;
          f pastry_stretch; f dir_stretch; "1.000" ])
    strata;
  [ t ]

(* ------------------------------------------------------------------ *)
(* E3: nearest-neighbor success vs k                                   *)
(* ------------------------------------------------------------------ *)

let nn_k ?(seed = 42) mode =
  let n = pick mode ~quick:128 ~full:400 in
  let trials = pick mode ~quick:20 ~full:60 in
  let ks = pick mode ~quick:[ 1; 2; 4; 8; 16 ] ~full:[ 1; 2; 4; 8; 16; 32; 48 ] in
  (* Isolate Lemma 1: run the level-list descent standalone for unregistered
     probe points, seeded with the oracle's k closest alpha-nodes, with
     Theorem-4 table updates disabled, and check each produced list against
     the true k closest level-i nodes. *)
  let rng = Rng.create seed in
  let metric = Topology.generate Uniform_square ~n:(n + trials) ~rng in
  let addrs = List.init n (fun i -> i) in
  let net, _ = Insert.build_incremental ~seed:(seed + 7) Config.default metric ~addrs in
  let cfg = net.Network.config in
  let alive = Network.alive_nodes net in
  let k_closest_level_i (probe : Node.t) ~level ~k =
    alive
    |> List.filter (fun (m : Node.t) ->
           Node_id.common_prefix_len m.Node.id probe.Node.id >= level)
    |> List.map (fun m -> (Network.dist net probe m, m))
    |> List.sort (fun (d1, _) (d2, _) -> Float.compare d1 d2)
    |> List.filteri (fun i _ -> i < k)
    |> List.map snd
  in
  let t =
    Stats.Table.create
      ~title:
        (Printf.sprintf
           "E3 / Lemma 1: level-list descent vs list width k (n=%d, theory k=O(log n), 4ceil(log2 n)=%d)"
           n
           (4 * int_of_float (ceil (log2 n))))
      ~columns:
        [ "k"; "NN found"; "all levels exact"; "level lists exact"; "contacts/query" ]
  in
  List.iter
    (fun k ->
      let nn_ok = ref 0 and all_exact = ref 0 in
      let level_total = ref 0 and level_exact = ref 0 in
      let contacts = ref 0 in
      for trial = 0 to trials - 1 do
        let probe =
          Node.create cfg ~id:(Network.fresh_id net) ~addr:(n + trial)
        in
        (* alpha = longest existing prefix: take it from the oracle *)
        let surrogate =
          Network.without_charging net (fun () ->
              Network.surrogate_oracle net probe.Node.id)
        in
        let max_level =
          Node_id.common_prefix_len probe.Node.id surrogate.Node.id
        in
        let current = ref (k_closest_level_i probe ~level:max_level ~k) in
        let exact_here = ref true in
        Network.without_charging net (fun () ->
            for level = max_level - 1 downto 0 do
              contacts := !contacts + List.length !current;
              let next =
                Nearest_neighbor.get_next_list ~update_tables:false net
                  ~new_node:probe ~level !current ~k
              in
              let oracle = k_closest_level_i probe ~level ~k in
              incr level_total;
              let same =
                List.length next = List.length oracle
                && List.for_all2
                     (fun (a : Node.t) (b : Node.t) -> Node_id.equal a.Node.id b.Node.id)
                     next oracle
              in
              if same then incr level_exact else exact_here := false;
              current := next
            done);
        if !exact_here then incr all_exact;
        (match (!current, Network.true_nearest_neighbor net probe) with
        | best :: _, Some truth when Node_id.equal best.Node.id truth.Node.id ->
            incr nn_ok
        | _ -> ())
      done;
      Stats.Table.add_row t
        [ string_of_int k;
          Printf.sprintf "%d/%d" !nn_ok trials;
          Printf.sprintf "%d/%d" !all_exact trials;
          Printf.sprintf "%d/%d" !level_exact !level_total;
          f (float_of_int !contacts /. float_of_int trials) ])
    ks;
  (* E3b: the dynamic-k variant ([14], Sec. 6.2) on an expansion-hostile
     metric, where fixed k underperforms. *)
  let n2 = pick mode ~quick:100 ~full:200 in
  let trials2 = pick mode ~quick:15 ~full:40 in
  let t2 =
    Stats.Table.create
      ~title:
        (Printf.sprintf
           "E3b: fixed vs adaptive k, full joins on a clustered metric (n=%d; the multicast + backfill backstops mask small-k descent misses, at cost)"
           n2)
      ~columns:[ "variant"; "NN found"; "contacts/join" ]
  in
  List.iter
    (fun (name, adaptive, k_small) ->
      let rng2 = Rng.create (seed + 777) in
      let metric2 = Topology.generate Clustered ~n:(n2 + trials2) ~rng:rng2 in
      let addrs2 = List.init n2 (fun i -> i) in
      let cfg2 =
        if k_small then { Config.default with Config.k_list = 4; k_fixed = true }
        else Config.default
      in
      let net2, _ =
        Insert.build_incremental ~seed:(seed + 11) cfg2 metric2 ~addrs:addrs2
      in
      let ok = ref 0 and contacts = ref 0 in
      for trial = 0 to trials2 - 1 do
        let gw = Network.random_alive net2 in
        let report = Insert.insert ~adaptive net2 ~gateway:gw ~addr:(n2 + trial) in
        let probe = report.Insert.node in
        (match
           ( Nearest_neighbor.nearest_neighbor net2 ~from:probe,
             Network.true_nearest_neighbor net2 probe )
         with
        | Some a, Some b when Node_id.equal a.Node.id b.Node.id -> incr ok
        | _ -> ());
        contacts := !contacts + report.Insert.nn_trace.Nearest_neighbor.nodes_contacted;
        ignore (Tapestry.Delete.voluntary net2 probe)
      done;
      Stats.Table.add_row t2
        [ name;
          Printf.sprintf "%d/%d" !ok trials2;
          f (float_of_int !contacts /. float_of_int trials2) ])
    [ ("fixed k=4", false, true); ("adaptive from k=4", true, true);
      ("fixed k=O(log n)", false, false) ];
  [ t; t2 ]

(* ------------------------------------------------------------------ *)
(* E4: insertion scaling                                               *)
(* ------------------------------------------------------------------ *)

let insert_scaling ?(seed = 42) ?(domains = 1) mode =
  let sizes = pick mode ~quick:[ 32; 64; 128 ] ~full:[ 32; 64; 128; 256; 512; 1024 ] in
  let t =
    Stats.Table.create
      ~title:"E4: insertion cost scaling (messages ~ O(log^2 n), latency ~ O(d log n))"
      ~columns:
        [ "n"; "insert msgs"; "msgs/log2(n)^2"; "insert latency"; "latency/diam";
          "mcast reached" ]
  in
  (* One task per size, joined in size order; the log-log fit is computed
     after the join so the table is independent of [domains]. *)
  let results =
    Parallel.map_list ~domains sizes ~f:(fun _ n ->
        let net, metric, reports = build_tapestry ~seed ~kind:Uniform_square ~n () in
        ignore net;
        let msgs = late_mean reports (fun r -> float_of_int r.Insert.cost.Cost.messages) in
        let lat = late_mean reports (fun r -> r.Insert.cost.Cost.latency) in
        let reached = late_mean reports (fun r -> float_of_int r.Insert.multicast_reached) in
        let rng = Rng.create (seed + 5) in
        let diam = Metric.diameter metric ~sample:2000 ~rng in
        ( (log (float_of_int n), log msgs),
          [ string_of_int n; f msgs; f (msgs /. (log2 n ** 2.)); f lat;
            f (lat /. diam); f reached ] ))
  in
  List.iter (fun (_, row) -> Stats.Table.add_row t row) results;
  let slope, _ = Stats.linear_fit (List.map fst results) in
  Stats.Table.add_row t
    [ "log-log slope"; f slope; "-"; "-"; "-"; "-" ];
  [ t ]

(* ------------------------------------------------------------------ *)
(* E5: acknowledged multicast                                          *)
(* ------------------------------------------------------------------ *)

let multicast ?(seed = 42) mode =
  let n = pick mode ~quick:128 ~full:512 in
  let probes = pick mode ~quick:40 ~full:200 in
  let net, _, _ = build_tapestry ~seed ~kind:Uniform_square ~n () in
  let rng = Rng.create (seed + 9) in
  let cfg = net.Network.config in
  let t =
    Stats.Table.create
      ~title:(Printf.sprintf "E5: acknowledged multicast coverage (n=%d)" n)
      ~columns:
        [ "prefix len"; "probes"; "full coverage"; "edges = reached-1"; "mean reached" ]
  in
  List.iter
    (fun plen ->
      let full = ref 0 and tree = ref 0 and reached_tot = ref 0 and runs = ref 0 in
      for _ = 1 to probes do
        let anchor = Network.random_alive net in
        let prefix = Node_id.digits anchor.Node.id in
        ignore (Rng.int rng 2);
        let oracle =
          Network.alive_nodes net
          |> List.filter (fun (m : Node.t) ->
                 Node_id.has_prefix m.Node.id ~prefix ~len:plen)
        in
        if List.length oracle >= 1 then begin
          incr runs;
          let res =
            Network.without_charging net (fun () ->
                Multicast.run net ~start:anchor ~prefix ~len:plen ~apply:ignore)
          in
          let reached = List.length res.Multicast.reached in
          reached_tot := !reached_tot + reached;
          if reached = List.length oracle then incr full;
          if res.Multicast.tree_edges = reached - 1 then incr tree
        end
      done;
      if !runs > 0 then
        Stats.Table.add_row t
          [ string_of_int plen; string_of_int !runs;
            Printf.sprintf "%d/%d" !full !runs;
            Printf.sprintf "%d/%d" !tree !runs;
            f (float_of_int !reached_tot /. float_of_int !runs) ])
    [ 1; 2; 3 ];
  ignore cfg;
  [ t ]

(* ------------------------------------------------------------------ *)
(* E6: surrogate routing                                               *)
(* ------------------------------------------------------------------ *)

let surrogate ?(seed = 42) mode =
  let n = pick mode ~quick:128 ~full:512 in
  let guids = pick mode ~quick:40 ~full:200 in
  let sources = pick mode ~quick:10 ~full:25 in
  let net, _, _ = build_tapestry ~seed ~kind:Uniform_square ~n () in
  let cfg = net.Network.config in
  let t =
    Stats.Table.create
      ~title:(Printf.sprintf "E6: surrogate routing (n=%d)" n)
      ~columns:
        [ "variant"; "unique root"; "matches oracle"; "mean surrogate hops";
          "p99 surrogate hops" ]
  in
  List.iter
    (fun (name, variant) ->
      let unique = ref 0 and oracle_ok = ref 0 and hops = ref [] in
      for _ = 1 to guids do
        let guid =
          Node_id.random ~base:cfg.Config.base ~len:cfg.Config.id_digits
            net.Network.rng
        in
        let roots =
          Network.without_charging net (fun () ->
              List.init sources (fun _ ->
                  let from = Network.random_alive net in
                  let info = Route.route_to_root ~variant net ~from guid in
                  hops := float_of_int info.Route.surrogate_hops :: !hops;
                  info.Route.root.Node.id))
        in
        let first = List.hd roots in
        if List.for_all (Node_id.equal first) roots then begin
          incr unique;
          if
            Route.equal_variant variant Route.Native
            && Node_id.equal first (Network.surrogate_oracle net guid).Node.id
          then incr oracle_ok
        end
      done;
      let s = Stats.summarize !hops in
      Stats.Table.add_row t
        [ name;
          Printf.sprintf "%d/%d" !unique guids;
          (if Route.equal_variant variant Route.Native then
             Printf.sprintf "%d/%d" !oracle_ok guids
           else "n/a");
          f s.Stats.mean; f s.Stats.p99 ])
    [ ("native", Route.Native); ("prr-like", Route.Prr_like) ];
  [ t ]

(* ------------------------------------------------------------------ *)
(* E7: availability under churn                                        *)
(* ------------------------------------------------------------------ *)

let availability ?(seed = 42) mode =
  let n = pick mode ~quick:96 ~full:256 in
  let steps = pick mode ~quick:40 ~full:150 in
  let probes_per_step = pick mode ~quick:10 ~full:25 in
  let net, metric, _ = build_tapestry ~seed ~kind:Uniform_square ~n:(n * 2) () in
  ignore metric;
  (* start with half the address space; churn uses the rest *)
  let objects = Workload.place_objects net ~count:(n / 2) ~replicas:2 in
  let guids = List.map (fun (o : Workload.placed_object) -> o.Workload.guid) objects in
  let rng = Rng.create (seed + 13) in
  let trace = Workload.churn_trace ~rng ~steps ~p_join:0.4 ~p_leave:0.3 in
  let t =
    Stats.Table.create
      ~title:
        (Printf.sprintf
           "E7: availability under churn (start n=%d, %d events, lazy repair + republish)"
           (2 * n) steps)
      ~columns:[ "phase"; "events"; "locate success"; "alive nodes" ]
  in
  let free_addrs = ref [] in
  let next_addr = ref (Metric.size net.Network.metric) in
  let take_addr () =
    match !free_addrs with
    | a :: rest ->
        free_addrs := rest;
        a
    | [] ->
        decr next_addr;
        !next_addr
  in
  (* replicas live on servers; churn victims are non-servers to keep the
     denominator meaningful (server loss is legitimate unavailability,
     measured separately in E12) *)
  let server_ids =
    List.concat_map
      (fun (o : Workload.placed_object) ->
        List.map (fun (s : Node.t) -> s.Node.id) o.Workload.servers)
      objects
    |> List.fold_left (fun acc id -> Node_id.Set.add id acc) Node_id.Set.empty
  in
  let victim () =
    let rec go tries =
      if tries > 50 then None
      else begin
        let v = Network.random_alive net in
        if Node.is_core v && not (Node_id.Set.mem v.Node.id server_ids) then Some v
        else go (tries + 1)
      end
    in
    go 0
  in
  let measure_phase name events =
    let ok = ref 0 and total = ref 0 in
    List.iter
      (fun ev ->
        (match ev with
        | Workload.Join ->
            let gw = Network.random_alive net in
            ignore (Insert.insert net ~gateway:gw ~addr:(take_addr ()))
        | Workload.Leave_voluntary -> (
            match victim () with
            | Some v ->
                free_addrs := v.Node.addr :: !free_addrs;
                ignore (Delete.voluntary net v)
            | None -> ())
        | Workload.Fail -> (
            match victim () with
            | Some v ->
                free_addrs := v.Node.addr :: !free_addrs;
                Delete.fail net v
            | None -> ()));
        for _ = 1 to probes_per_step do
          incr total;
          let client = Network.random_alive net in
          let guid = Rng.pick_list net.Network.rng guids in
          let res =
            Locate.locate ~variant:Route.Native net ~client guid
          in
          if Option.is_some res.Locate.server then incr ok
        done;
        Maintenance.tick net ~dt:10.)
      events;
    Stats.Table.add_row t
      [ name; string_of_int (List.length events);
        Printf.sprintf "%.4f" (float_of_int !ok /. float_of_int (max 1 !total));
        string_of_int (List.length (Network.alive_nodes net)) ]
  in
  let half = steps / 2 in
  let rec split i acc = function
    | [] -> (List.rev acc, [])
    | x :: rest -> if i = 0 then (List.rev acc, x :: rest) else split (i - 1) (x :: acc) rest
  in
  let first_half, second_half = split half [] trace in
  measure_phase "churn 1st half" first_half;
  measure_phase "churn 2nd half" second_half;
  [ t ]

(* ------------------------------------------------------------------ *)
(* E8: simultaneous insertion on the fiber scheduler                   *)
(* ------------------------------------------------------------------ *)

let concurrent_insert ?(seed = 42) mode =
  let n = pick mode ~quick:64 ~full:192 in
  let batches = pick mode ~quick:4 ~full:10 in
  let batch_size = pick mode ~quick:4 ~full:8 in
  let total_addrs = n + (batches * batch_size) in
  let rng = Rng.create seed in
  let metric = Topology.generate Uniform_square ~n:total_addrs ~rng in
  let addrs = List.init n (fun i -> i) in
  let net, _ = Insert.build_incremental ~seed:(seed + 1) Config.default metric ~addrs in
  let t =
    Stats.Table.create
      ~title:
        (Printf.sprintf
           "E8: simultaneous insertions, %d batches of %d interleaved at stage boundaries"
           batches batch_size)
      ~columns:
        [ "batch"; "joined"; "P1 violations after"; "stalled fibers"; "roots unique" ]
  in
  let next_addr = ref n in
  for batch = 1 to batches do
    let sched = Simnet.Fiber.create () in
    let batch_rng = Rng.create (seed + (batch * 31)) in
    for _ = 1 to batch_size do
      let addr = !next_addr in
      incr next_addr;
      let jitter0 = Rng.float batch_rng 1.0 in
      let jitter1 = Rng.float batch_rng 1.0 in
      let jitter2 = Rng.float batch_rng 1.0 in
      Simnet.Fiber.spawn sched (fun () ->
          Simnet.Fiber.sleep sched jitter0;
          let gw = Network.random_alive net in
          let staged = Insert.stage_surrogate net ~gateway:gw ~addr in
          Simnet.Fiber.sleep sched jitter1;
          Insert.stage_multicast net staged;
          Simnet.Fiber.sleep sched jitter2;
          ignore (Insert.stage_acquire net staged))
    done;
    Simnet.Fiber.run sched;
    let v1 = Network.check_property1 net in
    let guid =
      Node_id.random ~base:Config.default.Config.base
        ~len:Config.default.Config.id_digits net.Network.rng
    in
    let unique = Verify.roots_agree net guid ~samples:15 in
    Stats.Table.add_row t
      [ string_of_int batch; string_of_int batch_size;
        string_of_int (List.length v1);
        string_of_int (Simnet.Fiber.stalled_fibers sched);
        string_of_bool unique ]
  done;
  [ t ]

(* ------------------------------------------------------------------ *)
(* E9: PRR v.0 on general metrics                                      *)
(* ------------------------------------------------------------------ *)

let prr_v0 ?(seed = 42) ?(domains = 1) mode =
  let n = pick mode ~quick:100 ~full:300 in
  let queries = pick mode ~quick:100 ~full:400 in
  let t =
    Stats.Table.create
      ~title:
        (Printf.sprintf
           "E9: general metric spaces — PRR v.0 / Thorup-Zwick / Tapestry (n=%d, log2(n)^2=%.0f)"
           n (log2 n ** 2.))
      ~columns:
        [ "metric"; "scheme"; "mean stretch"; "p90 stretch"; "space/node"; "found" ]
  in
  (* Each metric kind builds its own topologies and rngs: one task per kind. *)
  let row_groups =
    Parallel.map_list ~domains
      [ Topology.Random_metric; Topology.Star; Topology.Clustered ]
      ~f:(fun _ kind ->
      let rows = ref [] in
      let emit r = rows := r :: !rows in
      let rng = Rng.create (seed + 17) in
      let metric = Topology.generate kind ~n ~rng in
      let kind_name = Topology.kind_name kind in
      (* PRR v.0 *)
      let p = Baselines.Prr_v0.build ~seed:(seed + 19) metric in
      let stretches = ref [] and found = ref 0 and attempted = ref 0 in
      let qrng = Rng.create (seed + 23) in
      for q = 1 to queries do
        let server = Rng.int qrng n in
        Baselines.Prr_v0.publish p ~server_addr:server ~guid_key:q;
        let client = Rng.int qrng n in
        if client <> server then begin
          incr attempted;
          let before = Cost.snapshot (Baselines.Prr_v0.cost p) in
          match Baselines.Prr_v0.locate p ~client_addr:client ~guid_key:q with
          | Some s when s = server ->
              incr found;
              let d = Cost.diff (Cost.snapshot (Baselines.Prr_v0.cost p)) before in
              let opt = Metric.dist metric client server in
              if opt > 1e-12 then stretches := (d.Cost.latency /. opt) :: !stretches
          | _ -> ()
        end
      done;
      let s = Stats.summarize !stretches in
      emit
        [ kind_name; "prr-v0"; f s.Stats.mean; f s.Stats.p90;
          f (Baselines.Prr_v0.space_per_node p);
          Printf.sprintf "%d/%d" !found !attempted ];
      (* Thorup-Zwick adaptation: the space improvement the paper cites *)
      let tz = Baselines.Thorup_zwick.build ~seed:(seed + 21) metric in
      let stretches = ref [] and found = ref 0 and attempted = ref 0 in
      let qrng = Rng.create (seed + 24) in
      for q = 1 to queries do
        let server = Rng.int qrng n in
        Baselines.Thorup_zwick.publish tz ~server_addr:server ~guid_key:q;
        let client = Rng.int qrng n in
        if client <> server then begin
          incr attempted;
          let before = Cost.snapshot (Baselines.Thorup_zwick.cost tz) in
          match Baselines.Thorup_zwick.locate tz ~client_addr:client ~guid_key:q with
          | Some s when s = server ->
              incr found;
              let d = Cost.diff (Cost.snapshot (Baselines.Thorup_zwick.cost tz)) before in
              let opt = Metric.dist metric client server in
              if opt > 1e-12 then stretches := (d.Cost.latency /. opt) :: !stretches
          | _ -> ()
        end
      done;
      let s = Stats.summarize !stretches in
      emit
        [ kind_name; "thorup-zwick"; f s.Stats.mean; f s.Stats.p90;
          f (Baselines.Thorup_zwick.space_per_node tz);
          Printf.sprintf "%d/%d" !found !attempted ];
      (* Tapestry on the same space: guarantees lapse, system still works *)
      let addrs = List.init n (fun i -> i) in
      let net, _ =
        Insert.build_incremental ~seed:(seed + 29) Config.default metric ~addrs
      in
      let objects = Workload.place_objects net ~count:(queries / 4) ~replicas:1 in
      let qs = Workload.uniform_queries net ~objects ~count:queries in
      let tap = List.filter_map (tapestry_stretch net) qs in
      let space =
        Network.alive_nodes net
        |> List.map (fun (nd : Node.t) ->
               float_of_int (Routing_table.entry_count nd.Node.table))
        |> Stats.mean
      in
      let s = Stats.summarize tap in
      emit
        [ kind_name; "tapestry"; f s.Stats.mean; f s.Stats.p90; f space;
          Printf.sprintf "%d/%d" (List.length tap) queries ];
      List.rev !rows)
  in
  List.iter (List.iter (Stats.Table.add_row t)) row_groups;
  [ t ]

(* ------------------------------------------------------------------ *)
(* E10: stub locality                                                  *)
(* ------------------------------------------------------------------ *)

let stub_locality ?(seed = 42) mode =
  let params =
    match mode with
    | Quick -> { Simnet.Transit_stub.default_params with stub_size = 6 }
    | Full ->
        { Simnet.Transit_stub.default_params with stubs_per_transit = 4; stub_size = 10 }
  in
  let rng = Rng.create seed in
  let ts = Simnet.Transit_stub.generate params ~rng in
  let metric = Simnet.Transit_stub.metric ts in
  let hosts = Simnet.Transit_stub.hosts ts in
  let net, _ =
    Insert.build_incremental ~seed:(seed + 1) Config.default metric ~addrs:hosts
  in
  let same_stub = Simnet.Transit_stub.same_stub ts in
  (* Each object gets one replica; queries come from the same stub as the
     replica (the case Section 6.3 optimizes). *)
  let count = pick mode ~quick:30 ~full:80 in
  let cfg = net.Network.config in
  let make_objs with_local =
    List.init count (fun i ->
        ignore i;
        let server = Network.random_alive net in
        let guid =
          Node_id.random ~base:cfg.Config.base ~len:cfg.Config.id_digits
            net.Network.rng
        in
        if with_local then Locality.publish net ~same_stub ~server guid
        else ignore (Publish.publish net ~server guid);
        (server, guid))
  in
  let same_stub_clients (server : Node.t) =
    Network.alive_nodes net
    |> List.filter (fun (c : Node.t) ->
           same_stub c.Node.addr server.Node.addr
           && not (Node_id.equal c.Node.id server.Node.id))
  in
  let run with_local locate_fn =
    let objs = make_objs with_local in
    let lats = ref [] and crossings = ref 0 and total = ref 0 in
    List.iter
      (fun ((server : Node.t), guid) ->
        List.iter
          (fun client ->
            incr total;
            let res, cost = Network.measure net (fun () -> locate_fn ~client guid) in
            if Option.is_some (res : Locate.result).Locate.server then begin
              lats := cost.Cost.latency :: !lats;
              (* did the walk leave the stub? *)
              let left =
                List.exists
                  (fun (hop : Node.t) -> not (same_stub hop.Node.addr server.Node.addr))
                  res.Locate.walk
              in
              if left then incr crossings
            end)
          (same_stub_clients server))
      objs;
    (Stats.summarize !lats, !crossings, !total)
  in
  let base_s, base_cross, base_total = run false (fun ~client guid -> Locate.locate net ~client guid) in
  let opt_s, opt_cross, opt_total =
    run true (fun ~client guid -> Locality.locate net ~same_stub ~client guid)
  in
  let t =
    Stats.Table.create
      ~title:
        (Printf.sprintf
           "E10: transit-stub locality (hosts=%d, stubs=%d, intra/inter latency %.0f/%.0f)"
           (List.length hosts)
           (Simnet.Transit_stub.stub_count ts)
           params.Simnet.Transit_stub.intra_stub_latency
           params.Simnet.Transit_stub.transit_latency)
      ~columns:
        [ "mode"; "mean latency"; "p90 latency"; "stub escapes"; "queries" ]
  in
  Stats.Table.add_row t
    [ "wide-area only"; f base_s.Stats.mean; f base_s.Stats.p90;
      Printf.sprintf "%d/%d" base_cross base_total; string_of_int base_total ];
  Stats.Table.add_row t
    [ "with local branch"; f opt_s.Stats.mean; f opt_s.Stats.p90;
      Printf.sprintf "%d/%d" opt_cross opt_total; string_of_int opt_total ];
  [ t ]

(* ------------------------------------------------------------------ *)
(* E11: table quality vs static oracle                                 *)
(* ------------------------------------------------------------------ *)

let table_quality ?(seed = 42) ?(domains = 1) mode =
  let sizes = pick mode ~quick:[ 64; 128 ] ~full:[ 64; 128; 256; 512 ] in
  let t =
    Stats.Table.create
      ~title:"E11: incremental construction vs static oracle (Property 2 quality)"
      ~columns:
        [ "n"; "P1 violations"; "optimal primaries"; "oracle-matched dist"; "NN correct" ]
  in
  (* One task per size: both the incremental network and its static oracle
     are local to the task. *)
  let rows =
    Parallel.map_list ~domains sizes ~f:(fun _ n ->
      let rng = Rng.create (seed + n) in
      let metric = Topology.generate Uniform_square ~n ~rng in
      let addrs = List.init n (fun i -> i) in
      let net, _ = Insert.build_incremental ~seed:(seed + 3) Config.default metric ~addrs in
      let v1 = List.length (Network.check_property1 net) in
      let total = ref 0 and optimal = ref 0 in
      Network.check_property2 net ~total ~optimal;
      (* mirror-id oracle network *)
      let oracle = Network.create ~seed:(seed + 3) Config.default metric in
      List.iter
        (fun (nd : Node.t) ->
          let copy = Node.create Config.default ~id:nd.Node.id ~addr:nd.Node.addr in
          copy.Node.status <- Node.Active;
          Network.register oracle copy)
        (Network.alive_nodes net);
      Network.without_charging oracle (fun () -> Static_build.populate_links oracle);
      let quality = Static_build.table_quality net ~oracle in
      let nn_ok = ref 0 and nn_tot = ref 0 in
      List.iter
        (fun (nd : Node.t) ->
          incr nn_tot;
          match
            ( Nearest_neighbor.nearest_neighbor net ~from:nd,
              Network.true_nearest_neighbor net nd )
          with
          | Some a, Some b when Node_id.equal a.Node.id b.Node.id -> incr nn_ok
          | _ -> ())
        (Network.alive_nodes net);
      [ string_of_int n; string_of_int v1;
        Printf.sprintf "%d/%d" !optimal !total;
        Printf.sprintf "%.3f" quality;
        Printf.sprintf "%d/%d" !nn_ok !nn_tot ])
  in
  List.iter (Stats.Table.add_row t) rows;
  [ t ]

(* ------------------------------------------------------------------ *)
(* E12: deletion                                                       *)
(* ------------------------------------------------------------------ *)

let delete ?(seed = 42) mode =
  let n = pick mode ~quick:96 ~full:256 in
  let net, _, _ = build_tapestry ~seed ~kind:Uniform_square ~n () in
  let objects = Workload.place_objects net ~count:(n / 4) ~replicas:2 in
  let guids = List.map (fun (o : Workload.placed_object) -> o.Workload.guid) objects in
  let server_ids =
    List.concat_map
      (fun (o : Workload.placed_object) ->
        List.map (fun (s : Node.t) -> s.Node.id) o.Workload.servers)
      objects
    |> List.fold_left (fun acc id -> Node_id.Set.add id acc) Node_id.Set.empty
  in
  let t =
    Stats.Table.create
      ~title:(Printf.sprintf "E12: deletion (n=%d, %d objects x2 replicas)" n (n / 4))
      ~columns:[ "phase"; "nodes"; "P1 violations"; "P4 gaps"; "availability" ]
  in
  let snapshot phase =
    let v1 = List.length (Network.check_property1 net) in
    let p4 = List.length (Verify.check_property4 net) in
    let avail = Verify.availability net ~guids ~samples:(pick mode ~quick:150 ~full:400) in
    Stats.Table.add_row t
      [ phase; string_of_int (List.length (Network.alive_nodes net));
        string_of_int v1; string_of_int p4; Printf.sprintf "%.4f" avail ]
  in
  snapshot "initial";
  (* voluntary sweep: 20% of non-server nodes *)
  let victims =
    Network.alive_nodes net
    |> List.filter (fun (v : Node.t) -> not (Node_id.Set.mem v.Node.id server_ids))
  in
  let n_vol = List.length victims / 5 in
  List.iteri
    (fun i v -> if i < n_vol then ignore (Delete.voluntary net v))
    victims;
  snapshot (Printf.sprintf "after %d voluntary" n_vol);
  (* involuntary: fail 10%, route with lazy repair, then soft-state recovery *)
  let victims2 =
    Network.alive_nodes net
    |> List.filter (fun (v : Node.t) -> not (Node_id.Set.mem v.Node.id server_ids))
  in
  let n_fail = List.length victims2 / 10 in
  List.iteri (fun i v -> if i < n_fail then Delete.fail net v) victims2;
  (* exercise lazy repair: a wave of queries with the repairing handler *)
  let repair_queries = pick mode ~quick:200 ~full:600 in
  for _ = 1 to repair_queries do
    let client = Network.random_alive net in
    let guid = Rng.pick_list net.Network.rng guids in
    let _, _, _ =
      Route.fold_path ~on_dead:Delete.on_dead_repair net ~from:client guid
        ~init:() ~f:(fun () _ -> `Continue ())
    in
    ()
  done;
  snapshot (Printf.sprintf "after %d failures + lazy repair" n_fail);
  Maintenance.tick net ~dt:Config.default.Config.republish_interval;
  ignore (Maintenance.republish_all net);
  snapshot "after republish";
  [ t ]


(* ------------------------------------------------------------------ *)
(* E13: Section 3 NN algorithm vs Karger-Ruhl sampling                 *)
(* ------------------------------------------------------------------ *)

let nn_vs_kr ?(seed = 42) mode =
  let n = pick mode ~quick:150 ~full:400 in
  let queries = pick mode ~quick:60 ~full:200 in
  let rng = Rng.create seed in
  let metric = Topology.generate Uniform_torus ~n:(n + queries) ~rng in
  let t =
    Stats.Table.create
      ~title:
        (Printf.sprintf
           "E13: nearest-neighbor — level-list descent (Sec. 3) vs Karger-Ruhl sampling (n=%d)"
           n)
      ~columns:[ "scheme"; "exact NN"; "msgs/query"; "net dist/query"; "space/node" ]
  in
  (* --- this paper: the descent, run through real insertions --- *)
  let addrs = List.init n (fun i -> i) in
  let net, _ = Insert.build_incremental ~seed:(seed + 1) Config.default metric ~addrs in
  let ok = ref 0 and msgs = ref 0 and distd = ref 0. in
  for q = 0 to queries - 1 do
    let gw = Network.random_alive net in
    let (report : Tapestry.Insert.report), cost =
      Network.measure net (fun () -> Insert.insert net ~gateway:gw ~addr:(n + q))
    in
    ignore cost;
    let probe = report.Insert.node in
    (match
       ( Nearest_neighbor.nearest_neighbor net ~from:probe,
         Network.true_nearest_neighbor net probe )
     with
    | Some a, Some b when Node_id.equal a.Node.id b.Node.id -> incr ok
    | _ -> ());
    msgs := !msgs + report.Insert.cost.Cost.messages;
    distd := !distd +. report.Insert.cost.Cost.latency;
    ignore (Network.without_charging net (fun () -> Tapestry.Delete.voluntary net probe))
  done;
  let space =
    Network.alive_nodes net
    |> List.map (fun (nd : Node.t) ->
           float_of_int (Routing_table.entry_count nd.Node.table))
    |> Stats.mean
  in
  Stats.Table.add_row t
    [ "full join (all levels)";
      Printf.sprintf "%d/%d" !ok queries;
      f (float_of_int !msgs /. float_of_int queries);
      f (!distd /. float_of_int queries);
      f space ];
  (* --- the descent alone, as a single NN query --- *)
  let cfg = net.Network.config in
  let k = Config.scaled_k cfg ~n in
  let alive = Network.alive_nodes net in
  let ok = ref 0 and msgs = ref 0 and distd = ref 0. in
  for q = 0 to queries - 1 do
    let probe = Node.create cfg ~id:(Network.fresh_id net) ~addr:(n + q) in
    let surrogate =
      Network.without_charging net (fun () ->
          Network.surrogate_oracle net probe.Node.id)
    in
    let max_level = Node_id.common_prefix_len probe.Node.id surrogate.Node.id in
    let seed_list =
      alive
      |> List.filter (fun (m : Node.t) ->
             Node_id.common_prefix_len m.Node.id probe.Node.id >= max_level)
      |> List.map (fun m -> (Network.dist net probe m, m))
      |> List.sort (fun (d1, _) (d2, _) -> Float.compare d1 d2)
      |> List.filteri (fun i _ -> i < k)
      |> List.map snd
    in
    let (), cost =
      Network.measure net (fun () ->
          let current = ref seed_list in
          for level = max_level - 1 downto 0 do
            current :=
              Nearest_neighbor.get_next_list ~update_tables:false net
                ~new_node:probe ~level !current ~k
          done;
          match (!current, Network.true_nearest_neighbor net probe) with
          | best :: _, Some truth when Node_id.equal best.Node.id truth.Node.id ->
              incr ok
          | _ -> ())
    in
    msgs := !msgs + cost.Cost.messages;
    distd := !distd +. cost.Cost.latency
  done;
  Stats.Table.add_row t
    [ "descent only (one query)";
      Printf.sprintf "%d/%d" !ok queries;
      f (float_of_int !msgs /. float_of_int queries);
      f (!distd /. float_of_int queries);
      "0 (reuses mesh)" ];
  (* --- Karger-Ruhl, over the same points, at two sample sizes --- *)
  List.iter
    (fun s ->
      let kr = Baselines.Karger_ruhl.build ~seed:(seed + 2) ~sample_size:s metric in
      let ok = ref 0 and msgs = ref 0 and distd = ref 0. in
      let qrng = Rng.create (seed + 3) in
      for _ = 1 to queries do
        let target = Rng.int qrng n in
        let start = Rng.int qrng n in
        let a = Baselines.Karger_ruhl.query kr ~start ~target in
        (match Simnet.Metric.nearest_other metric target with
        | Some truth
          when Simnet.Metric.dist metric target a.Baselines.Karger_ruhl.nearest
               <= Simnet.Metric.dist metric target truth +. 1e-12 ->
            incr ok
        | _ -> ());
        msgs := !msgs + a.Baselines.Karger_ruhl.messages;
        distd := !distd +. a.Baselines.Karger_ruhl.distance
      done;
      Stats.Table.add_row t
        [ Printf.sprintf "karger-ruhl (s=%d)" s;
          Printf.sprintf "%d/%d" !ok queries;
          f (float_of_int !msgs /. float_of_int queries);
          f (!distd /. float_of_int queries);
          f (Baselines.Karger_ruhl.space_per_node kr) ])
    (pick mode ~quick:[ 24; 96 ] ~full:[ 24; 48; 96 ]);
  [ t ]

(* ------------------------------------------------------------------ *)
(* E14: Section 6.4 continual optimization under drifting distances    *)
(* ------------------------------------------------------------------ *)

let continual_optimization ?(seed = 42) mode =
  let n = pick mode ~quick:120 ~full:256 in
  let probes = pick mode ~quick:200 ~full:500 in
  let rng = Rng.create seed in
  let drift = Simnet.Drift.create ~n ~rng in
  let metric = Simnet.Drift.metric drift in
  let addrs = List.init n (fun i -> i) in
  let net, _ = Insert.build_incremental ~seed:(seed + 1) Config.default metric ~addrs in
  let objects = Workload.place_objects net ~count:(n / 4) ~replicas:2 in
  let stretch () =
    Network.without_charging net (fun () ->
        let qs = Workload.uniform_queries net ~objects ~count:probes in
        List.filter_map (tapestry_stretch net) qs |> Stats.mean)
  in
  let p2 () =
    let total = ref 0 and optimal = ref 0 in
    Network.check_property2 net ~total ~optimal;
    float_of_int !optimal /. float_of_int (max 1 !total)
  in
  let t =
    Stats.Table.create
      ~title:
        (Printf.sprintf
           "E14: continual optimization after distance drift (n=%d, Sec. 6.4 heuristics)"
           n)
      ~columns:[ "state"; "mean stretch"; "P2 quality"; "maint. msgs"; "ptrs moved" ]
  in
  let row name stats =
    let msgs, moved =
      match stats with
      | Some (s : Tapestry.Optimizer.stats) ->
          (string_of_int s.Tapestry.Optimizer.cost.Cost.messages,
           string_of_int s.Tapestry.Optimizer.pointers_moved)
      | None -> ("-", "-")
    in
    Stats.Table.add_row t [ name; f (stretch ()); Printf.sprintf "%.3f" (p2 ()); msgs; moved ]
  in
  row "built (fresh)" None;
  Simnet.Drift.advance drift ~rng ~magnitude:0.2;
  row "after drift" None;
  row "rotate_primaries" (Some (Optimizer.rotate_primaries net));
  Simnet.Drift.advance drift ~rng ~magnitude:0.2;
  row "after drift #2" None;
  row "share_tables" (Some (Optimizer.share_tables net));
  Simnet.Drift.advance drift ~rng ~magnitude:0.2;
  row "after drift #3" None;
  row "full_rebuild" (Some (Optimizer.full_rebuild net));
  [ t ]

(* ------------------------------------------------------------------ *)
(* E15: redundancy ablation — R, root-set size, fault tolerance        *)
(* ------------------------------------------------------------------ *)

let redundancy ?(seed = 42) ?(domains = 1) mode =
  let n = pick mode ~quick:120 ~full:256 in
  let kill_frac = 0.15 in
  let probes = pick mode ~quick:200 ~full:500 in
  let t =
    Stats.Table.create
      ~title:
        (Printf.sprintf
           "E15: redundancy ablation (n=%d, %.0f%%%% silent failures, no repair or republish)"
           n (100. *. kill_frac))
      ~columns:
        [ "R"; "roots"; "space/node"; "avail before"; "avail after kill";
          "after + repair" ]
  in
  (* One task per (R, roots, placement) configuration. *)
  let rows =
    Parallel.map_list ~domains
      [ (1, 1, false); (2, 1, false); (3, 1, false); (4, 1, false);
        (3, 1, true); (3, 2, false); (3, 3, false) ]
      ~f:(fun _ (r, roots, on_secondaries) ->
      let cfg = { Config.default with Config.redundancy = r; root_set_size = roots } in
      let rng = Rng.create (seed + r + (7 * roots)) in
      let metric = Topology.generate Uniform_square ~n ~rng in
      let addrs = List.init n (fun i -> i) in
      let net, _ = Insert.build_incremental ~seed:(seed + 2) cfg metric ~addrs in
      let objects =
        Workload.place_objects ~on_secondaries net ~count:(n / 4) ~replicas:1
      in
      let guids = List.map (fun (o : Workload.placed_object) -> o.Workload.guid) objects in
      let server_ids =
        List.concat_map
          (fun (o : Workload.placed_object) ->
            List.map (fun (s : Node.t) -> s.Node.id) o.Workload.servers)
          objects
        |> List.fold_left (fun acc id -> Node_id.Set.add id acc) Node_id.Set.empty
      in
      let space =
        Network.alive_nodes net
        |> List.map (fun (nd : Node.t) ->
               float_of_int (Routing_table.entry_count nd.Node.table))
        |> Stats.mean
      in
      let before = Verify.availability net ~guids ~samples:probes in
      (* silent mass failure of non-servers *)
      let victims =
        Network.alive_nodes net
        |> List.filter (fun (v : Node.t) -> not (Node_id.Set.mem v.Node.id server_ids))
      in
      let n_kill = int_of_float (kill_frac *. float_of_int (List.length victims)) in
      List.iteri (fun i v -> if i < n_kill then Tapestry.Delete.fail net v) victims;
      let after = Verify.availability net ~guids ~samples:probes in
      (* lazy repair via routed probes, then re-measure *)
      Network.without_charging net (fun () ->
          for _ = 1 to probes do
            let client = Network.random_alive net in
            let guid = Rng.pick_list net.Network.rng guids in
            let _, _, _ =
              Route.fold_path ~on_dead:Tapestry.Delete.on_dead_repair net
                ~from:client guid ~init:() ~f:(fun () _ -> `Continue ())
            in
            ()
          done);
      let repaired = Verify.availability net ~guids ~samples:probes in
      [ (string_of_int r ^ if on_secondaries then "+sec" else "");
        string_of_int roots; f space;
        Printf.sprintf "%.4f" before; Printf.sprintf "%.4f" after;
        Printf.sprintf "%.4f" repaired ])
  in
  List.iter (Stats.Table.add_row t) rows;
  [ t ]


(* ------------------------------------------------------------------ *)
(* E16: asynchronous failure recovery timeline                         *)
(* ------------------------------------------------------------------ *)

let async_recovery ?(seed = 42) mode =
  let n = pick mode ~quick:120 ~full:256 in
  let kill_at = 10.0 in
  let horizon = 80.0 in
  let bucket_len = 10.0 in
  let probes_per_tick = pick mode ~quick:8 ~full:20 in
  let rng = Rng.create seed in
  let metric = Topology.generate Uniform_square ~n ~rng in
  let addrs = List.init n (fun i -> i) in
  let net, _ = Insert.build_incremental ~seed:(seed + 1) Config.default metric ~addrs in
  let objects = Workload.place_objects net ~count:(n / 4) ~replicas:1 in
  let guids = List.map (fun (o : Workload.placed_object) -> o.Workload.guid) objects in
  let server_ids =
    List.concat_map
      (fun (o : Workload.placed_object) ->
        List.map (fun (s : Node.t) -> s.Node.id) o.Workload.servers)
      objects
    |> List.fold_left (fun acc id -> Node_id.Set.add id acc) Node_id.Set.empty
  in
  let sched = Simnet.Fiber.create () in
  let env = Tapestry.Async_ops.make_env ~latency_scale:0.5 sched net in
  (* the soft-state daemons of Sections 5.2/6.5 *)
  Simnet.Fiber.spawn sched (fun () ->
      Tapestry.Async_ops.heartbeat_daemon env ~period:8.0
        ~rounds:(int_of_float (horizon /. 8.0)));
  Simnet.Fiber.spawn sched (fun () ->
      Tapestry.Async_ops.republish_daemon env ~period:12.0
        ~rounds:(int_of_float (horizon /. 12.0)));
  (* mass silent failure at kill_at *)
  Simnet.Fiber.spawn_at sched kill_at (fun () ->
      let victims =
        Network.alive_nodes net
        |> List.filter (fun (v : Node.t) -> not (Node_id.Set.mem v.Node.id server_ids))
        |> List.filteri (fun i _ -> i mod 6 = 0)
      in
      List.iter (fun v -> Tapestry.Delete.fail net v) victims);
  (* probing fiber: instantaneous availability once per virtual second *)
  let buckets = int_of_float (horizon /. bucket_len) in
  let hits = Array.make buckets 0 and totals = Array.make buckets 0 in
  Simnet.Fiber.spawn sched (fun () ->
      let prng = Rng.create (seed + 5) in
      for tick = 0 to int_of_float horizon - 1 do
        Simnet.Fiber.sleep sched 1.0;
        let b = min (buckets - 1) (tick / int_of_float bucket_len) in
        Network.without_charging net (fun () ->
            for _ = 1 to probes_per_tick do
              totals.(b) <- totals.(b) + 1;
              let client = Network.random_alive net in
              let guid = Rng.pick_list prng guids in
              (* probe with plain routing: no repair side effects, so the
                 daemons alone drive recovery *)
              let res =
                Locate.locate
                  ~variant:Route.Native net ~client guid
              in
              if Option.is_some res.Locate.server then hits.(b) <- hits.(b) + 1
            done)
      done);
  Simnet.Fiber.run sched;
  let t =
    Stats.Table.create
      ~title:
        (Printf.sprintf
           "E16: asynchronous recovery after mass failure at t=%.0f (n=%d, heartbeat 8s, republish 12s)"
           kill_at n)
      ~columns:[ "virtual time"; "availability"; "P1 violations at end" ]
  in
  let v1_end = string_of_int (List.length (Network.check_property1 net)) in
  for b = 0 to buckets - 1 do
    Stats.Table.add_row t
      [ Printf.sprintf "[%.0f, %.0f)" (float_of_int b *. bucket_len)
          (float_of_int (b + 1) *. bucket_len);
        Printf.sprintf "%.4f"
          (float_of_int hits.(b) /. float_of_int (max 1 totals.(b)));
        (if b = buckets - 1 then v1_end else "-") ]
  done;
  [ t ]

(* ------------------------------------------------------------------ *)

(* ------------------------------------------------------------------ *)
(* Scale tier: the E1/E2/E4 claims re-measured at 10^5..10^6 nodes     *)
(* ------------------------------------------------------------------ *)

type scale_point = {
  sp_n : int;
  sp_build_wall_s : float;
  sp_wall_s : float;
  sp_stats : Static_build.stream_stats;
  sp_insert_fit_c : float;
  sp_locate_hops : float;
  sp_locate_success : float;
  sp_stretch_mean : float;
  sp_stretch_p95 : float;
  sp_bytes_per_node : float;
  sp_peak_rss_kb : int;
  sp_gc_top_heap_words : int;
  sp_minor_words : float;
  sp_audit_violations : int option;
}

(* Peak resident set (VmHWM) of this process in kB, from
   /proc/self/status; 0 when the file or the field is unavailable. *)
let peak_rss_kb () =
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> 0
  | ic ->
      let rec go acc =
        match input_line ic with
        | exception End_of_file -> acc
        | line ->
            if String.length line > 6 && String.sub line 0 6 = "VmHWM:" then begin
              let digits =
                String.to_seq line
                |> Seq.filter (fun c -> c >= '0' && c <= '9')
                |> String.of_seq
              in
              go (match int_of_string_opt digits with Some v -> v | None -> acc)
            end
            else go acc
      in
      let r = go 0 in
      close_in ic;
      r

(* One scale-tier size: streamed construction, then E2-style locate
   sampling (hop counts) and E4-style stretch sampling over published
   objects.  [now] injects wall-clock from the CLI (the library itself
   stays clock-free for deterministic replay); with the default it reports
   zeros for the wall fields and everything else is unaffected. *)
let scale_point ?(seed = 42) ?(domains = 1) ?(now = fun () -> 0.)
    ?(objects = 1000) ?(queries = 2000) ?(audit = false)
    ?(progress = fun (_ : string) -> ()) ~n () =
  progress (Printf.sprintf "n=%d: generating topology" n);
  let t0 = now () in
  let rng = Rng.create seed in
  let metric = Topology.generate Uniform_square ~n ~rng in
  (* the grid index was built under the generator's density assumption;
     rebuild it if that drifted (no-op for a fresh full-population index) *)
  ignore (Metric.rescale_index metric);
  let net, stats =
    Static_build.build_streamed ~seed:(seed + 1) ~domains
      ~progress:(fun ~inserted ~total ->
        if inserted mod 65536 = 0 || inserted = total then
          progress (Printf.sprintf "n=%d: %d/%d joined" n inserted total))
      Config.default metric ~n
  in
  let t_build = now () in
  progress (Printf.sprintf "n=%d: sampling locate/stretch" n);
  let objs = Workload.place_objects net ~count:(min objects n) ~replicas:1 in
  let qs = Workload.uniform_queries net ~objects:objs ~count:queries in
  let hops = ref [] and stretches = ref [] in
  let ok = ref 0 and total = ref 0 in
  List.iter
    (fun (q : Workload.query) ->
      incr total;
      let opt = Workload.optimal_distance net ~client:q.client q.obj in
      let res, cost =
        Network.measure net (fun () ->
            Locate.locate net ~client:q.client q.obj.guid)
      in
      match res.Locate.server with
      | Some _ ->
          incr ok;
          hops := float_of_int cost.Cost.hops :: !hops;
          stretches :=
            (if opt > 1e-12 then cost.Cost.latency /. opt else 1.0)
            :: !stretches
      | None -> ())
    qs;
  let audit_violations =
    if audit then begin
      progress (Printf.sprintf "n=%d: auditing" n);
      Some (List.length (Audit.run net).Audit.violations)
    end
    else None
  in
  let wall = now () -. t0 in
  let gc = Gc.quick_stat () in
  let fit = stats.Static_build.msgs_late.Static_build.mean /. (log2 n ** 2.) in
  ( net,
    {
      sp_n = n;
      sp_build_wall_s = t_build -. t0;
      sp_wall_s = wall;
      sp_stats = stats;
      sp_insert_fit_c = fit;
      sp_locate_hops = Stats.mean !hops;
      sp_locate_success = float_of_int !ok /. float_of_int (max 1 !total);
      sp_stretch_mean = Stats.mean !stretches;
      sp_stretch_p95 = Stats.percentile !stretches 0.95;
      sp_bytes_per_node =
        float_of_int stats.Static_build.footprint.Network.total_bytes
        /. float_of_int n;
      sp_peak_rss_kb = peak_rss_kb ();
      sp_gc_top_heap_words = gc.Gc.top_heap_words;
      sp_minor_words = gc.Gc.minor_words;
      sp_audit_violations = audit_violations;
    } )

let scale ?seed ?domains ?now ?objects ?queries ?audit ?progress ~sizes () =
  (* Sizes run sequentially, largest last, each network dropped before the
     next so peak residency is one mesh, not the sum. *)
  let points =
    List.map
      (fun n ->
        let _net, p =
          scale_point ?seed ?domains ?now ?objects ?queries ?audit ?progress
            ~n ()
        in
        p)
      sizes
  in
  let t =
    Stats.Table.create ~title:"Scale: streamed construction + E1/E2/E4 claims"
      ~columns:
        [ "n"; "build s"; "msgs(late)"; "c=msgs/log2^2 n"; "hops"; "stretch";
          "B/node"; "peak RSS MB"; "entries/node" ]
  in
  List.iter
    (fun p ->
      Stats.Table.add_row t
        [
          string_of_int p.sp_n;
          f p.sp_build_wall_s;
          f p.sp_stats.Static_build.msgs_late.Static_build.mean;
          f p.sp_insert_fit_c;
          f p.sp_locate_hops;
          f p.sp_stretch_mean;
          f p.sp_bytes_per_node;
          f (float_of_int p.sp_peak_rss_kb /. 1024.);
          f p.sp_stats.Static_build.entries.Static_build.mean;
        ])
    points;
  (points, t)

let all ?(seed = 42) ?(domains = 1) mode =
  [
    ("table1", table1 ~seed ~domains mode);
    ("stretch", stretch ~seed mode);
    ("nn_k", nn_k ~seed mode);
    ("insert_scaling", insert_scaling ~seed ~domains mode);
    ("multicast", multicast ~seed mode);
    ("surrogate", surrogate ~seed mode);
    ("availability", availability ~seed mode);
    ("concurrent_insert", concurrent_insert ~seed mode);
    ("prr_v0", prr_v0 ~seed ~domains mode);
    ("stub_locality", stub_locality ~seed mode);
    ("table_quality", table_quality ~seed ~domains mode);
    ("delete", delete ~seed mode);
    ("nn_vs_kr", nn_vs_kr ~seed mode);
    ("continual_optimization", continual_optimization ~seed mode);
    ("redundancy", redundancy ~seed ~domains mode);
    ("async_recovery", async_recovery ~seed mode);
  ]

let names =
  [
    "table1"; "stretch"; "nn_k"; "insert_scaling"; "multicast"; "surrogate";
    "availability"; "concurrent_insert"; "prr_v0"; "stub_locality";
    "table_quality"; "delete"; "nn_vs_kr"; "continual_optimization"; "redundancy";
    "async_recovery";
  ]

let by_name ?(seed = 42) ?(domains = 1) mode name =
  match name with
  | "table1" -> table1 ~seed ~domains mode
  | "stretch" -> stretch ~seed mode
  | "nn_k" -> nn_k ~seed mode
  | "insert_scaling" -> insert_scaling ~seed ~domains mode
  | "multicast" -> multicast ~seed mode
  | "surrogate" -> surrogate ~seed mode
  | "availability" -> availability ~seed mode
  | "concurrent_insert" -> concurrent_insert ~seed mode
  | "prr_v0" -> prr_v0 ~seed ~domains mode
  | "stub_locality" -> stub_locality ~seed mode
  | "table_quality" -> table_quality ~seed ~domains mode
  | "delete" -> delete ~seed mode
  | "nn_vs_kr" -> nn_vs_kr ~seed mode
  | "continual_optimization" -> continual_optimization ~seed mode
  | "redundancy" -> redundancy ~seed ~domains mode
  | "async_recovery" -> async_recovery ~seed mode
  | other -> invalid_arg ("Experiment.by_name: unknown experiment " ^ other)

let run_and_print ?(seed = 42) ?(domains = 1) mode which =
  let which = match which with [] -> names | _ :: _ -> which in
  List.iter
    (fun name ->
      let tables = by_name ~seed ~domains mode name in
      List.iter Stats.Table.print tables;
      print_newline ())
    which
