(** Workload generation shared by the experiments.

    Objects are placed on random servers with a configurable replica count;
    queries are drawn either uniformly or stratified by the distance from
    the client to its nearest replica (the variable the stretch claims are
    about). *)

type placed_object = {
  guid : Tapestry.Node_id.t;
  servers : Tapestry.Node.t list;  (** replica servers, in publish order *)
}

val place_objects :
  ?on_secondaries:bool ->
  Tapestry.Network.t ->
  count:int ->
  replicas:int ->
  placed_object list
(** Publish [count] objects, each on [replicas] distinct random servers.
    [on_secondaries] uses the PRR-style publication that also deposits
    pointers on each hop's secondary neighbors (Section 2.4). *)

val optimal_distance : Tapestry.Network.t -> client:Tapestry.Node.t -> placed_object -> float
(** Distance from the client to its closest replica (stretch denominator). *)

type query = { client : Tapestry.Node.t; obj : placed_object }

val uniform_queries :
  Tapestry.Network.t -> objects:placed_object list -> count:int -> query list

val stratified_queries :
  Tapestry.Network.t ->
  objects:placed_object list ->
  per_bucket:int ->
  buckets:int ->
  (int * query list) list
(** Queries grouped into [buckets] equal-width bands of optimal distance
    (bucket 0 = nearest); rejection-samples uniform pairs, so sparse bands
    may come back short. *)

(** {2 Zipf popularity}

    The serve tier draws object popularity from Zipf(s): rank [i]
    (0-based) has probability proportional to [1/(i+1)^s]. *)

type zipf

val zipf : s:float -> n:int -> zipf
(** Precompute the normalized harmonic weights for [n] ranks; O(n) once,
    after which sampling is an O(log n) binary search and allocates
    nothing.  @raise Invalid_argument if [n <= 0]. *)

val zipf_sample : zipf -> Simnet.Rng.t -> int
(** Inverse-CDF draw of a rank in [0, n): seeded entirely by the given
    RNG stream, no ambient randomness. *)

(** Churn traces for the availability experiments. *)
type churn_event =
  | Join
  | Leave_voluntary
  | Fail

val churn_trace :
  rng:Simnet.Rng.t -> steps:int -> p_join:float -> p_leave:float -> churn_event list
(** [steps] events: joins with probability [p_join], voluntary leaves with
    [p_leave], silent failures otherwise. *)
