(* Deterministic parallel map over stdlib domains.

   Tasks are split into [domains] contiguous chunks; chunk 0 runs on the
   calling domain, the rest on freshly spawned domains, and results are
   joined back in task-index order.  Because every task writes only its own
   result slot and derives any randomness from its task index (see
   {!task_rng}), the output is a pure function of the inputs: running with
   [domains = 1] and [domains = N] produces identical results, which is the
   replay property the experiment driver and its tests rely on. *)

let recommended () = Domain.recommended_domain_count ()

(* Distinct per-task seeds pushed through splitmix64's finalizer (inside
   Rng.create) give decorrelated streams; the odd multiplier keeps
   (seed, task) collisions from aliasing nearby tasks. *)
let task_rng ~seed ~task = Rng.create (seed + ((task + 1) * 0x3C6EF373))

let map ?(domains = 1) n ~f =
  if n < 0 then invalid_arg "Parallel.map: negative task count";
  if n = 0 then [||]
  else begin
    let domains = max 1 (min domains n) in
    if domains = 1 then Array.init n f
    else begin
      let results = Array.make n None in
      let run_chunk lo hi =
        for i = lo to hi do
          results.(i) <- Some (f i)
        done
      in
      let per = (n + domains - 1) / domains in
      let spawned =
        List.init (domains - 1) (fun d ->
            let lo = (d + 1) * per in
            let hi = min n ((d + 2) * per) - 1 in
            Domain.spawn (fun () -> if lo <= hi then run_chunk lo hi))
      in
      run_chunk 0 (min per n - 1);
      List.iter Domain.join spawned;
      Array.map
        (function
          | Some v -> v
          | None -> invalid_arg "Parallel.map: task produced no result")
        results
    end
  end

let map_list ?domains xs ~f =
  let arr = Array.of_list xs in
  map ?domains (Array.length arr) ~f:(fun i -> f i arr.(i)) |> Array.to_list
