(** Summary statistics and plain-text table rendering for experiments. *)

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

val summarize : float list -> summary
(** Summary of a non-empty sample; all-zero summary for an empty one. *)

val mean : float list -> float

val percentile : float list -> float -> float
(** [percentile xs p] with [p] in [\[0,1\]], nearest-rank on sorted data. *)

val gini : float list -> float
(** Gini coefficient of a non-negative sample; 0 = perfectly balanced.
    Used for the "Balanced?" column of Table 1. *)

val linear_fit : (float * float) list -> float * float
(** [linear_fit pts] returns [(slope, intercept)] of the least-squares line.
    Used on log-log data to estimate asymptotic exponents. *)

val pp_summary : Format.formatter -> summary -> unit

(** Fixed-width table rendering used by the bench harness and the CLI. *)
module Table : sig
  type t

  val create : title:string -> columns:string list -> t

  val add_row : t -> string list -> unit

  val render : t -> string

  val print : t -> unit

  val title : t -> string

  val to_csv : t -> string
  (** Comma-separated rendering (quoted cells), header row first. *)
end

val fmt_float : float -> string
(** Compact float formatting for table cells. *)

(** Object-cache counters (PR 9).  One record per accounting domain —
    the sync locate path keeps one inside the cache itself, the serve
    engine keeps one per shard context and merges them in fixed shard
    order at the end of a run, so the totals are bit-identical for any
    [--domains].  All fields are plain mutable ints: bumping one on the
    hot path allocates nothing. *)
module Tally : sig
  type t = {
    mutable hits : int;  (** cache probe named a currently valid server *)
    mutable misses : int;  (** no entry for the key at the probed node *)
    mutable stale : int;
        (** entry found but epoch/generation/liveness check failed *)
    mutable fills : int;  (** entries written (or refreshed) into a cache *)
    mutable evicts : int;
        (** entries removed by invalidation (not capacity replacement) *)
    mutable recoveries : int;
        (** requests that survived a stale redirect by re-climbing *)
    mutable hint_fills : int;
        (** entries written by cooperative hint exchange (PR 10), a
            subset of {!field-fills} accounting, kept separate so
            [--coop off] signatures stay byte-identical to PR 9 *)
    mutable hint_hits : int;
        (** hits served from an entry the node imported as a hint
            rather than learned from its own fetch unwind *)
  }

  val create : unit -> t

  val reset : t -> unit
  (** Zero every counter in place (mesh-reuse replay support). *)

  val merge : into:t -> t -> unit
  (** Element-wise addition. *)

  val lookups : t -> int
  (** [hits + misses + stale]: denominator of {!hit_rate}. *)

  val hit_rate : t -> float
  (** [hits / lookups]; 0 when no lookups happened. *)
end

(** HDR-style log-bucketed histogram for the serve tier's latency tails.

    Fixed 2048 int buckets (64 binary octaves x 32 mantissa strips), so
    {!Hist.add} allocates nothing and any quantile is within 1/64
    relative error.  {!Hist.merge} is element-wise addition — per-shard
    histograms merged in a fixed order are bit-identical whatever the
    domain count — and {!Hist.counts} is the determinism signature the
    serve tests compare. *)
module Hist : sig
  type h

  val create : unit -> h

  val add : h -> float -> unit
  (** Record one sample (non-positive values clamp to the first bucket). *)

  val merge : into:h -> h -> unit

  val total : h -> int

  val mean : h -> float

  val min_value : h -> float

  val max_value : h -> float

  val quantile : h -> float -> float
  (** [quantile t p] with [p] in [\[0,1\]]: nearest-rank over the bucket
      cumulative counts, answering the bucket's lower edge (conservative
      to within one 1/64-wide bucket).  0 on an empty histogram. *)

  val counts : h -> int array
  (** Copy of the raw bucket counters. *)

  val equal : h -> h -> bool
  (** Same total and identical bucket counters. *)
end
