(* Point metrics carry a uniform-grid spatial index so that ball queries
   cost O(|ball|) instead of O(n): points are bucketed into ~sqrt(n) x
   sqrt(n) cells, and a query visits only the cells intersecting the query
   disc.  Matrix/closure metrics have no geometry to index and keep the
   brute-force scans; the [*_brute] variants stay exported as oracles for
   the grid paths (test/test_scale.ml checks exact agreement, including
   tie-breaks).

   The index is packed CSR-style — one offsets array plus one flat
   point-index array — instead of an [int list array]: at 10^6 points the
   per-cell cons cells alone were ~24 MB and a cache miss per candidate.
   Coordinates live in the same unboxed float arrays the [dist] closure
   reads, so the index adds ~2 ints per point, nothing more. *)

type spatial = {
  xs : float array;  (* shared with the [dist] closure, never copied *)
  ys : float array;
  torus : float option;  (* [Some side]: coordinates wrap modulo [side] *)
  nx : int;
  ny : int;
  cellw : float;
  cellh : float;
  minx : float;
  miny : float;
  cover : float;  (* radius at which a ball certainly spans every point *)
  cell_off : int array;  (* CSR offsets, row-major, length nx*ny + 1 *)
  cell_pts : int array;  (* point indices grouped by cell, ascending within *)
}

type t = {
  size : int;
  desc : string;
  dist : int -> int -> float;
  mutable spatial : spatial option;
      (* mutable so the index can be rebuilt when its density assumption
         goes stale ({!rescale_index}); queries never mutate it *)
}

(* --- grid construction --- *)

let clamp lo hi v = if v < lo then lo else if v > hi then hi else v

let cell_ix s x = clamp 0 (s.nx - 1) (int_of_float (floor ((x -. s.minx) /. s.cellw)))

let cell_iy s y = clamp 0 (s.ny - 1) (int_of_float (floor ((y -. s.miny) /. s.cellh)))

(* Grid sized for ~[occupancy] points per cell; the default (1) matches the
   classic sqrt(n) x sqrt(n) layout. *)
let ideal_per_axis ?(occupancy = 1.) n =
  max 1 (int_of_float (sqrt (float_of_int n /. max occupancy 1e-9)))

let build_spatial ?torus ?per_axis ~xs ~ys () =
  let n = Array.length xs in
  if n = 0 then None
  else begin
    let minx, miny, maxx, maxy =
      match torus with
      | Some side -> (0., 0., side, side)
      | None ->
          let x0 = ref infinity and y0 = ref infinity in
          let x1 = ref neg_infinity and y1 = ref neg_infinity in
          for p = 0 to n - 1 do
            if xs.(p) < !x0 then x0 := xs.(p);
            if xs.(p) > !x1 then x1 := xs.(p);
            if ys.(p) < !y0 then y0 := ys.(p);
            if ys.(p) > !y1 then y1 := ys.(p)
          done;
          (!x0, !y0, !x1, !y1)
    in
    let per_axis =
      match per_axis with Some k -> max 1 k | None -> ideal_per_axis n
    in
    let extent lo hi = max (hi -. lo) 1e-9 in
    let w = extent minx maxx and h = extent miny maxy in
    let ncells = per_axis * per_axis in
    let s =
      {
        xs;
        ys;
        torus;
        nx = per_axis;
        ny = per_axis;
        cellw = w /. float_of_int per_axis;
        cellh = h /. float_of_int per_axis;
        minx;
        miny;
        (* torus distances never exceed side (even side/sqrt(2) would do);
           planar distances never exceed the bounding-box semi-perimeter *)
        cover = (match torus with Some side -> side | None -> w +. h);
        cell_off = Array.make (ncells + 1) 0;
        cell_pts = Array.make n 0;
      }
    in
    (* counting sort into CSR: count, prefix-sum, then fill in ascending
       point order so each cell's slice ends ascending *)
    let counts = Array.make ncells 0 in
    for p = 0 to n - 1 do
      let c = (cell_iy s ys.(p) * s.nx) + cell_ix s xs.(p) in
      counts.(c) <- counts.(c) + 1
    done;
    let off = ref 0 in
    for c = 0 to ncells - 1 do
      s.cell_off.(c) <- !off;
      off := !off + counts.(c)
    done;
    s.cell_off.(ncells) <- !off;
    let cursor = Array.copy s.cell_off in
    for p = 0 to n - 1 do
      let c = (cell_iy s ys.(p) * s.nx) + cell_ix s xs.(p) in
      s.cell_pts.(cursor.(c)) <- p;
      cursor.(c) <- cursor.(c) + 1
    done;
    Some s
  end

(* Cell indices along one axis covering the coordinate interval
   [c - r, c + r]; wraps on the torus, clamps on the plane.  The count is
   capped at the axis size so no cell is visited twice. *)
let axis_range ~torus ~lo:axis_min ~cellsz ~ncells c r =
  let i0f = floor ((c -. r -. axis_min) /. cellsz) in
  let i1f = floor ((c +. r -. axis_min) /. cellsz) in
  match torus with
  | None ->
      let i0 = clamp 0 (ncells - 1) (int_of_float i0f) in
      let i1 = clamp 0 (ncells - 1) (int_of_float i1f) in
      List.init (i1 - i0 + 1) (fun k -> i0 + k)
  | Some _ ->
      let i0 = int_of_float i0f in
      let span = int_of_float i1f - i0 + 1 in
      let count = min ncells (max 1 span) in
      List.init count (fun k ->
          let i = (i0 + k) mod ncells in
          if i < 0 then i + ncells else i)

(* Visit every point index whose cell intersects the axis-aligned square of
   half-width [r] around point [p]: a superset of the ball of radius [r] in
   both the planar and wrapped metrics.  Cells are visited at most once
   (axis ranges are duplicate-free), so each point is seen at most once. *)
let iter_candidates s p r f =
  let x = s.xs.(p) and y = s.ys.(p) in
  let xrange =
    axis_range ~torus:s.torus ~lo:s.minx ~cellsz:s.cellw ~ncells:s.nx x r
  in
  let yrange =
    axis_range ~torus:s.torus ~lo:s.miny ~cellsz:s.cellh ~ncells:s.ny y r
  in
  List.iter
    (fun iy ->
      List.iter
        (fun ix ->
          let c = (iy * s.nx) + ix in
          for i = s.cell_off.(c) to s.cell_off.(c + 1) - 1 do
            f s.cell_pts.(i)
          done)
        xrange)
    yrange

(* --- constructors --- *)

let make ~size ~desc ~dist = { size; desc; dist; spatial = None }

(* Coordinates live in flat float arrays (unboxed) rather than the tuple
   array: [dist] sits under every hop charge, and four boxed-float derefs
   per call show up.  Same subtractions in the same order — bit-identical
   results. *)
let of_points pts =
  let xs = Array.map fst pts and ys = Array.map snd pts in
  let dist i j =
    let dx = xs.(i) -. xs.(j) and dy = ys.(i) -. ys.(j) in
    sqrt ((dx *. dx) +. (dy *. dy))
  in
  {
    size = Array.length pts;
    desc = "euclidean-2d";
    dist;
    spatial = build_spatial ~xs ~ys ();
  }

let of_points_torus ~side pts =
  let wrap d =
    let d = abs_float d in
    min d (side -. d)
  in
  let xs = Array.map fst pts and ys = Array.map snd pts in
  let dist i j =
    let dx = wrap (xs.(i) -. xs.(j)) and dy = wrap (ys.(i) -. ys.(j)) in
    sqrt ((dx *. dx) +. (dy *. dy))
  in
  {
    size = Array.length pts;
    desc = "euclidean-torus";
    dist;
    spatial = build_spatial ~torus:side ~xs ~ys ();
  }

let of_matrix m =
  let dist i j = m.(i).(j) in
  { size = Array.length m; desc = "matrix"; dist; spatial = None }

let size m = m.size

let desc m = m.desc

let dist m i j = m.dist i j

let indexed m = Option.is_some m.spatial

(* --- index maintenance --- *)

let index_granularity m =
  match m.spatial with None -> None | Some s -> Some s.nx

let set_index_granularity m ~per_axis =
  match m.spatial with
  | None -> ()
  | Some s ->
      m.spatial <- build_spatial ?torus:s.torus ~per_axis ~xs:s.xs ~ys:s.ys ()

let rescale_index m =
  match m.spatial with
  | None -> false
  | Some s ->
      let ideal = ideal_per_axis m.size in
      (* A 2x-off axis count means 4x-off cell occupancy: candidate scans
         degrade toward linear (too coarse) or cell walks dominate (too
         fine).  Within 2x the grid is fine — rebuilding on every call
         would thrash. *)
      if s.nx * 2 <= ideal || s.nx >= ideal * 2 then begin
        m.spatial <-
          build_spatial ?torus:s.torus ~per_axis:ideal ~xs:s.xs ~ys:s.ys ();
        true
      end
      else false

(* --- brute-force oracles (also the fallback for non-point metrics) --- *)

let ball_brute m p r =
  let acc = ref [] in
  for q = m.size - 1 downto 0 do
    if m.dist p q <= r then acc := q :: !acc
  done;
  !acc

let ball_count_brute m p r =
  let c = ref 0 in
  for q = 0 to m.size - 1 do
    if m.dist p q <= r then incr c
  done;
  !c

let nearest_other_brute m p =
  let best = ref None in
  let best_d = ref infinity in
  for q = 0 to m.size - 1 do
    if q <> p then begin
      let d = m.dist p q in
      if d < !best_d then begin
        best := Some q;
        best_d := d
      end
    end
  done;
  !best

let k_closest m p ~k ~candidates =
  let arr = Array.of_list candidates in
  let keyed = Array.map (fun q -> (m.dist p q, q)) arr in
  Array.sort
    (fun (d1, q1) (d2, q2) ->
      match Float.compare d1 d2 with 0 -> Int.compare q1 q2 | c -> c)
    keyed;
  let n = min k (Array.length keyed) in
  Array.to_list (Array.map snd (Array.sub keyed 0 n))

let k_nearest_brute m p ~k =
  k_closest m p ~k ~candidates:(List.init m.size (fun q -> q))

(* --- grid-accelerated queries --- *)

let ball m p r =
  match m.spatial with
  | None -> ball_brute m p r
  | Some s ->
      let acc = ref [] in
      iter_candidates s p r (fun q -> if m.dist p q <= r then acc := q :: !acc);
      (* candidates are unique (one cell per point); sort for the
         ascending-order contract *)
      List.sort Int.compare !acc

let ball_count m p r =
  match m.spatial with
  | None -> ball_count_brute m p r
  | Some s ->
      let c = ref 0 in
      iter_candidates s p r (fun q -> if m.dist p q <= r then incr c);
      !c

(* Radius-doubling around the grid cell size: once a ball is non-empty it
   contains the true nearest point, so total work is O(|final ball|). *)
let nearest_other m p =
  match m.spatial with
  | None -> nearest_other_brute m p
  | Some s ->
      if m.size <= 1 then None
      else begin
        let pick r =
          (* lexicographic (distance, index) minimum = the brute scan's
             ascending-index strict-< tie-break *)
          let best = ref (-1) and best_d = ref infinity in
          iter_candidates s p r (fun q ->
              if q <> p then begin
                let d = m.dist p q in
                if d <= r then
                  if d < !best_d || (d = !best_d && q < !best) then begin
                    best := q;
                    best_d := d
                  end
              end);
          if !best < 0 then None else Some !best
        in
        let rec go r =
          if r >= s.cover then pick s.cover
          else match pick r with Some q -> Some q | None -> go (2. *. r)
        in
        go (0.5 *. min s.cellw s.cellh)
      end

let k_nearest m p ~k =
  match m.spatial with
  | None -> k_nearest_brute m p ~k
  | Some s ->
      if k <= 0 then []
      else begin
        let want = min k m.size in
        let rec grow r =
          let within = ball m p r in
          if List.length within >= want || r >= s.cover then within
          else grow (2. *. r)
        in
        (* a ball holding >= k points contains the k nearest, so sorting the
           candidates matches the full-space oracle exactly *)
        k_closest m p ~k ~candidates:(grow (min s.cellw s.cellh))
      end

let diameter m ~sample ~rng =
  if m.size <= 1 then 0.
  else if m.size <= 256 then begin
    let d = ref 0. in
    for i = 0 to m.size - 1 do
      for j = i + 1 to m.size - 1 do
        d := max !d (m.dist i j)
      done
    done;
    !d
  end
  else begin
    let d = ref 0. in
    for _ = 1 to sample do
      let i = Rng.int rng m.size and j = Rng.int rng m.size in
      d := max !d (m.dist i j)
    done;
    !d
  end

let expansion_estimate m ~samples ~rng =
  let worst = ref 1. in
  for _ = 1 to samples do
    let p = Rng.int rng m.size in
    let q = Rng.int rng m.size in
    let r = m.dist p q in
    if r > 0. then begin
      let big = ball_count m p (2. *. r) in
      let small = ball_count m p r in
      (* Equation 1 exempts balls already covering the whole space. *)
      if big < m.size && small > 0 then
        worst := max !worst (float_of_int big /. float_of_int small)
    end
  done;
  !worst

let word = 8

(* Resident-size estimate: coordinate arrays (shared with the dist
   closure) plus the CSR index.  Matrix metrics count their full matrix. *)
let approx_bytes m =
  match m.spatial with
  | None ->
      if m.desc = "matrix" then
        (* n rows of n unboxed floats plus the spine *)
        (m.size * (m.size + 1) * word) + ((m.size + 1) * word) + (4 * word)
      else 4 * word
  | Some s ->
      (4 * word)
      + (2 * (Array.length s.xs + 1) * word)
      + ((Array.length s.cell_off + 1) * word)
      + ((Array.length s.cell_pts + 1) * word)
      + (13 * word)
