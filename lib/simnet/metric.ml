type t = { size : int; desc : string; dist : int -> int -> float }

let make ~size ~desc ~dist = { size; desc; dist }

let of_points pts =
  let dist i j =
    let xi, yi = pts.(i) and xj, yj = pts.(j) in
    let dx = xi -. xj and dy = yi -. yj in
    sqrt ((dx *. dx) +. (dy *. dy))
  in
  { size = Array.length pts; desc = "euclidean-2d"; dist }

let of_points_torus ~side pts =
  let wrap d =
    let d = abs_float d in
    min d (side -. d)
  in
  let dist i j =
    let xi, yi = pts.(i) and xj, yj = pts.(j) in
    let dx = wrap (xi -. xj) and dy = wrap (yi -. yj) in
    sqrt ((dx *. dx) +. (dy *. dy))
  in
  { size = Array.length pts; desc = "euclidean-torus"; dist }

let of_matrix m =
  let dist i j = m.(i).(j) in
  { size = Array.length m; desc = "matrix"; dist }

let size m = m.size

let desc m = m.desc

let dist m i j = m.dist i j

let ball m p r =
  let acc = ref [] in
  for q = m.size - 1 downto 0 do
    if m.dist p q <= r then acc := q :: !acc
  done;
  !acc

let ball_count m p r =
  let c = ref 0 in
  for q = 0 to m.size - 1 do
    if m.dist p q <= r then incr c
  done;
  !c

let k_closest m p ~k ~candidates =
  let arr = Array.of_list candidates in
  let keyed = Array.map (fun q -> (m.dist p q, q)) arr in
  Array.sort
    (fun (d1, q1) (d2, q2) ->
      match Float.compare d1 d2 with 0 -> Int.compare q1 q2 | c -> c)
    keyed;
  let n = min k (Array.length keyed) in
  Array.to_list (Array.map snd (Array.sub keyed 0 n))

let nearest_other m p =
  let best = ref None in
  for q = 0 to m.size - 1 do
    if q <> p then
      match !best with
      | None -> best := Some q
      | Some b -> if m.dist p q < m.dist p b then best := Some q
  done;
  !best

let diameter m ~sample ~rng =
  if m.size <= 1 then 0.
  else if m.size <= 256 then begin
    let d = ref 0. in
    for i = 0 to m.size - 1 do
      for j = i + 1 to m.size - 1 do
        d := max !d (m.dist i j)
      done
    done;
    !d
  end
  else begin
    let d = ref 0. in
    for _ = 1 to sample do
      let i = Rng.int rng m.size and j = Rng.int rng m.size in
      d := max !d (m.dist i j)
    done;
    !d
  end

let expansion_estimate m ~samples ~rng =
  let worst = ref 1. in
  for _ = 1 to samples do
    let p = Rng.int rng m.size in
    let q = Rng.int rng m.size in
    let r = m.dist p q in
    if r > 0. then begin
      let big = ball_count m p (2. *. r) in
      let small = ball_count m p r in
      (* Equation 1 exempts balls already covering the whole space. *)
      if big < m.size && small > 0 then
        worst := max !worst (float_of_int big /. float_of_int small)
    end
  done;
  !worst
