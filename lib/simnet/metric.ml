(* Point metrics carry a uniform-grid spatial index so that ball queries
   cost O(|ball|) instead of O(n): points are bucketed into ~sqrt(n) x
   sqrt(n) cells, and a query visits only the cells intersecting the query
   disc.  Matrix/closure metrics have no geometry to index and keep the
   brute-force scans; the [*_brute] variants stay exported as oracles for
   the grid paths (test/test_scale.ml checks exact agreement, including
   tie-breaks). *)

type spatial = {
  pts : (float * float) array;
  torus : float option;  (* [Some side]: coordinates wrap modulo [side] *)
  nx : int;
  ny : int;
  cellw : float;
  cellh : float;
  minx : float;
  miny : float;
  cover : float;  (* radius at which a ball certainly spans every point *)
  cells : int list array;  (* per-cell point indices, ascending; row-major *)
}

type t = {
  size : int;
  desc : string;
  dist : int -> int -> float;
  spatial : spatial option;
}

(* --- grid construction --- *)

let clamp lo hi v = if v < lo then lo else if v > hi then hi else v

let cell_of s x y =
  let ix = clamp 0 (s.nx - 1) (int_of_float (floor ((x -. s.minx) /. s.cellw))) in
  let iy = clamp 0 (s.ny - 1) (int_of_float (floor ((y -. s.miny) /. s.cellh))) in
  (ix, iy)

let build_spatial ?torus pts =
  let n = Array.length pts in
  if n = 0 then None
  else begin
    let minx, miny, maxx, maxy =
      match torus with
      | Some side -> (0., 0., side, side)
      | None ->
          Array.fold_left
            (fun (x0, y0, x1, y1) (x, y) ->
              (min x0 x, min y0 y, max x1 x, max y1 y))
            (infinity, infinity, neg_infinity, neg_infinity)
            pts
    in
    let per_axis = max 1 (int_of_float (sqrt (float_of_int n))) in
    let extent lo hi = max (hi -. lo) 1e-9 in
    let w = extent minx maxx and h = extent miny maxy in
    let s =
      {
        pts;
        torus;
        nx = per_axis;
        ny = per_axis;
        cellw = w /. float_of_int per_axis;
        cellh = h /. float_of_int per_axis;
        minx;
        miny;
        (* torus distances never exceed side (even side/sqrt(2) would do);
           planar distances never exceed the bounding-box semi-perimeter *)
        cover = (match torus with Some side -> side | None -> w +. h);
        cells = Array.make (per_axis * per_axis) [];
      }
    in
    (* bucket in descending index order so each cell list ends ascending *)
    for p = n - 1 downto 0 do
      let x, y = pts.(p) in
      let ix, iy = cell_of s x y in
      let c = (iy * s.nx) + ix in
      s.cells.(c) <- p :: s.cells.(c)
    done;
    Some s
  end

(* Cell indices along one axis covering the coordinate interval
   [c - r, c + r]; wraps on the torus, clamps on the plane.  The count is
   capped at the axis size so no cell is visited twice. *)
let axis_range ~torus ~lo:axis_min ~cellsz ~ncells c r =
  let i0f = floor ((c -. r -. axis_min) /. cellsz) in
  let i1f = floor ((c +. r -. axis_min) /. cellsz) in
  match torus with
  | None ->
      let i0 = clamp 0 (ncells - 1) (int_of_float i0f) in
      let i1 = clamp 0 (ncells - 1) (int_of_float i1f) in
      List.init (i1 - i0 + 1) (fun k -> i0 + k)
  | Some _ ->
      let i0 = int_of_float i0f in
      let span = int_of_float i1f - i0 + 1 in
      let count = min ncells (max 1 span) in
      List.init count (fun k ->
          let i = (i0 + k) mod ncells in
          if i < 0 then i + ncells else i)

(* Every point index whose cell intersects the axis-aligned square of
   half-width [r] around point [p]: a superset of the ball of radius [r]
   in both the planar and wrapped metrics. *)
let candidates s p r =
  let x, y = s.pts.(p) in
  let xs = axis_range ~torus:s.torus ~lo:s.minx ~cellsz:s.cellw ~ncells:s.nx x r in
  let ys = axis_range ~torus:s.torus ~lo:s.miny ~cellsz:s.cellh ~ncells:s.ny y r in
  List.concat_map
    (fun iy -> List.concat_map (fun ix -> s.cells.((iy * s.nx) + ix)) xs)
    ys

(* --- constructors --- *)

let make ~size ~desc ~dist = { size; desc; dist; spatial = None }

(* Coordinates live in flat float arrays (unboxed) rather than the tuple
   array: [dist] sits under every hop charge, and four boxed-float derefs
   per call show up.  Same subtractions in the same order — bit-identical
   results. *)
let of_points pts =
  let xs = Array.map fst pts and ys = Array.map snd pts in
  let dist i j =
    let dx = xs.(i) -. xs.(j) and dy = ys.(i) -. ys.(j) in
    sqrt ((dx *. dx) +. (dy *. dy))
  in
  {
    size = Array.length pts;
    desc = "euclidean-2d";
    dist;
    spatial = build_spatial pts;
  }

let of_points_torus ~side pts =
  let wrap d =
    let d = abs_float d in
    min d (side -. d)
  in
  let xs = Array.map fst pts and ys = Array.map snd pts in
  let dist i j =
    let dx = wrap (xs.(i) -. xs.(j)) and dy = wrap (ys.(i) -. ys.(j)) in
    sqrt ((dx *. dx) +. (dy *. dy))
  in
  {
    size = Array.length pts;
    desc = "euclidean-torus";
    dist;
    spatial = build_spatial ~torus:side pts;
  }

let of_matrix m =
  let dist i j = m.(i).(j) in
  { size = Array.length m; desc = "matrix"; dist; spatial = None }

let size m = m.size

let desc m = m.desc

let dist m i j = m.dist i j

let indexed m = Option.is_some m.spatial

(* --- brute-force oracles (also the fallback for non-point metrics) --- *)

let ball_brute m p r =
  let acc = ref [] in
  for q = m.size - 1 downto 0 do
    if m.dist p q <= r then acc := q :: !acc
  done;
  !acc

let ball_count_brute m p r =
  let c = ref 0 in
  for q = 0 to m.size - 1 do
    if m.dist p q <= r then incr c
  done;
  !c

let nearest_other_brute m p =
  let best = ref None in
  let best_d = ref infinity in
  for q = 0 to m.size - 1 do
    if q <> p then begin
      let d = m.dist p q in
      if d < !best_d then begin
        best := Some q;
        best_d := d
      end
    end
  done;
  !best

let k_closest m p ~k ~candidates =
  let arr = Array.of_list candidates in
  let keyed = Array.map (fun q -> (m.dist p q, q)) arr in
  Array.sort
    (fun (d1, q1) (d2, q2) ->
      match Float.compare d1 d2 with 0 -> Int.compare q1 q2 | c -> c)
    keyed;
  let n = min k (Array.length keyed) in
  Array.to_list (Array.map snd (Array.sub keyed 0 n))

let k_nearest_brute m p ~k =
  k_closest m p ~k ~candidates:(List.init m.size (fun q -> q))

(* --- grid-accelerated queries --- *)

let ball m p r =
  match m.spatial with
  | None -> ball_brute m p r
  | Some s ->
      candidates s p r
      |> List.filter (fun q -> m.dist p q <= r)
      |> List.sort_uniq Int.compare

let ball_count m p r =
  match m.spatial with
  | None -> ball_count_brute m p r
  | Some s ->
      List.fold_left
        (fun acc q -> if m.dist p q <= r then acc + 1 else acc)
        0
        (List.sort_uniq Int.compare (candidates s p r))

(* Radius-doubling around the grid cell size: once a ball is non-empty it
   contains the true nearest point, so total work is O(|final ball|). *)
let nearest_other m p =
  match m.spatial with
  | None -> nearest_other_brute m p
  | Some s ->
      if m.size <= 1 then None
      else begin
        let pick within =
          (* ascending index + strict < reproduces the brute tie-break *)
          let best = ref None and best_d = ref infinity in
          List.iter
            (fun q ->
              if q <> p then begin
                let d = m.dist p q in
                if d < !best_d then begin
                  best := Some q;
                  best_d := d
                end
              end)
            within;
          !best
        in
        let rec go r =
          if r >= s.cover then pick (ball m p s.cover)
          else
            match pick (ball m p r) with
            | Some q -> Some q
            | None -> go (2. *. r)
        in
        go (0.5 *. min s.cellw s.cellh)
      end

let k_nearest m p ~k =
  match m.spatial with
  | None -> k_nearest_brute m p ~k
  | Some s ->
      if k <= 0 then []
      else begin
        let want = min k m.size in
        let rec grow r =
          let within = ball m p r in
          if List.length within >= want || r >= s.cover then within
          else grow (2. *. r)
        in
        (* a ball holding >= k points contains the k nearest, so sorting the
           candidates matches the full-space oracle exactly *)
        k_closest m p ~k ~candidates:(grow (min s.cellw s.cellh))
      end

let diameter m ~sample ~rng =
  if m.size <= 1 then 0.
  else if m.size <= 256 then begin
    let d = ref 0. in
    for i = 0 to m.size - 1 do
      for j = i + 1 to m.size - 1 do
        d := max !d (m.dist i j)
      done
    done;
    !d
  end
  else begin
    let d = ref 0. in
    for _ = 1 to sample do
      let i = Rng.int rng m.size and j = Rng.int rng m.size in
      d := max !d (m.dist i j)
    done;
    !d
  end

let expansion_estimate m ~samples ~rng =
  let worst = ref 1. in
  for _ = 1 to samples do
    let p = Rng.int rng m.size in
    let q = Rng.int rng m.size in
    let r = m.dist p q in
    if r > 0. then begin
      let big = ball_count m p (2. *. r) in
      let small = ball_count m p r in
      (* Equation 1 exempts balls already covering the whole space. *)
      if big < m.size && small > 0 then
        worst := max !worst (float_of_int big /. float_of_int small)
    end
  done;
  !worst
