(** Minimal dependency-free JSON: values, a pretty-printer and a strict
    parser.  Used by the bench harness to emit [BENCH_results.json] and by
    the [@bench-smoke] alias to round-trip it. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Pretty-printed JSON text with a trailing newline.  NaN/infinite floats
    render as [null]. *)

val parse : string -> (t, string) result
(** Parse one JSON document; rejects trailing garbage.  Escapes beyond the
    ASCII range are preserved literally (enough to round-trip {!to_string}
    output). *)

val member : string -> t -> t option
(** First field of that name when the value is an object. *)
