(** Cooperative fibers over simulated time, built on OCaml 5 effect handlers.

    The synchronous cost-accounting mode (see {!Cost}) measures message and
    latency totals but cannot interleave operations.  Experiments E7/E8
    (availability during insertion, simultaneous insertions — Sections 4.3
    and 4.4 of the paper) need real interleavings, which this scheduler
    provides: fibers perform {!sleep} to model link latency and {!Ivar.read}
    to await replies, and the discrete-event loop advances a virtual clock.

    Single-domain and deterministic: runs with equal seeds replay exactly. *)

type t
(** A scheduler instance. *)

val create : unit -> t

val now : t -> float
(** Current virtual time. *)

val spawn : t -> (unit -> unit) -> unit
(** Queue a new fiber to start at the current virtual time. *)

val spawn_at : t -> float -> (unit -> unit) -> unit
(** Queue a fiber to start at an absolute virtual time (>= now). *)

val sleep : t -> float -> unit
(** Suspend the calling fiber for the given virtual duration.  Must be
    called from inside a fiber. *)

val run : t -> unit
(** Run until no runnable fiber remains.  Fibers still blocked on empty
    ivars at that point are stalled (see {!stalled_fibers}). *)

val run_until : t -> float -> unit
(** Run events scheduled strictly up to the given virtual time. *)

val next_event_time : t -> float
(** Virtual time of the earliest queued event, [infinity] when the queue
    is empty.  The serve tier's shard pump interleaves fiber events with
    its own transport heap by comparing heads, which needs this peek. *)

val stalled_fibers : t -> int
(** Number of fibers that started but neither finished nor are queued —
    i.e. blocked forever on ivars.  0 after a clean [run]. *)

(** Single-assignment synchronization cells, bound to a scheduler. *)
module Ivar : sig
  type 'a ivar

  val create : t -> 'a ivar

  val fill : 'a ivar -> 'a -> unit
  (** Wake all readers at the current virtual time.
      @raise Invalid_argument if already filled. *)

  val read : 'a ivar -> 'a
  (** Block the calling fiber until the ivar is filled.  Must be called from
      inside a fiber of the same scheduler. *)

  val is_full : 'a ivar -> bool

  val peek : 'a ivar -> 'a option
end
