open Effect
open Effect.Deep

type t = {
  mutable clock : float;
  queue : (float, unit -> unit) Heap.t;
  mutable started : int;
  mutable finished : int;
}

type 'a ivar_state = Empty of ('a -> unit) list | Full of 'a

type 'a ivar_cell = { mutable st : 'a ivar_state }

type _ Effect.t += Sleep : t * float -> unit Effect.t
type _ Effect.t += Await : t * 'a ivar_cell -> 'a Effect.t

let create () =
  { clock = 0.; queue = Heap.create ~cmp:Float.compare; started = 0; finished = 0 }

let now sched = sched.clock

let sleep sched d = perform (Sleep (sched, max 0. d))

(* Each fiber runs under a deep handler: Sleep re-queues the continuation in
   the event heap; Await either resumes immediately or parks the continuation
   as a waiter closure in the ivar. *)
let run_fiber sched f =
  sched.started <- sched.started + 1;
  match_with f ()
    {
      retc = (fun () -> sched.finished <- sched.finished + 1);
      exnc = raise;
      effc =
        (fun (type b) (eff : b Effect.t) ->
          match eff with
          | Sleep (s, d) ->
              Some
                (fun (k : (b, unit) continuation) ->
                  Heap.push s.queue (s.clock +. d) (fun () -> continue k ()))
          | Await (s, iv) ->
              Some
                (fun (k : (b, unit) continuation) ->
                  match iv.st with
                  | Full v -> continue k v
                  | Empty ws ->
                      let waiter v =
                        Heap.push s.queue s.clock (fun () -> continue k v)
                      in
                      iv.st <- Empty (waiter :: ws))
          | _ -> None);
    }

let spawn_at sched time f =
  let time = max time sched.clock in
  Heap.push sched.queue time (fun () -> run_fiber sched f)

let spawn sched f = spawn_at sched sched.clock f

let run sched =
  let rec loop () =
    match Heap.pop sched.queue with
    | None -> ()
    | Some (time, thunk) ->
        if time > sched.clock then sched.clock <- time;
        thunk ();
        loop ()
  in
  loop ()

let run_until sched limit =
  let rec loop () =
    match Heap.peek sched.queue with
    | Some (time, _) when time <= limit ->
        let time, thunk = Heap.pop_exn sched.queue in
        if time > sched.clock then sched.clock <- time;
        thunk ();
        loop ()
    | _ -> sched.clock <- max sched.clock limit
  in
  loop ()

let next_event_time sched =
  match Heap.peek sched.queue with
  | Some (time, _) -> time
  | None -> infinity

let stalled_fibers sched =
  sched.started - sched.finished - Heap.length sched.queue

module Ivar = struct
  type 'a ivar = { sched : t; cell : 'a ivar_cell }

  let create sched = { sched; cell = { st = Empty [] } }

  let fill iv v =
    match iv.cell.st with
    | Full _ -> invalid_arg "Fiber.Ivar.fill: already filled"
    | Empty ws ->
        iv.cell.st <- Full v;
        List.iter (fun w -> w v) (List.rev ws)

  let read iv =
    match iv.cell.st with
    | Full v -> v
    | Empty _ -> perform (Await (iv.sched, iv.cell))

  let is_full iv = match iv.cell.st with Full _ -> true | Empty _ -> false

  let peek iv = match iv.cell.st with Full v -> Some v | Empty _ -> None
end
