type t = { n : int; adj : (int * float) list array }

let create n = { n; adj = Array.make n [] }

let size g = g.n

let add_edge g u v w =
  if u < 0 || u >= g.n || v < 0 || v >= g.n then invalid_arg "Graph.add_edge";
  if u <> v then begin
    let replace node other =
      let rest = List.filter (fun (x, _) -> x <> other) g.adj.(node) in
      let keep =
        match
          Option.map snd
            (List.find_opt (fun (x, _) -> Int.equal x other) g.adj.(node))
        with
        | Some w0 -> min w0 w
        | None -> w
      in
      g.adj.(node) <- (other, keep) :: rest
    in
    replace u v;
    replace v u
  end

let neighbors g u = g.adj.(u)

let dijkstra g src =
  let dist = Array.make g.n infinity in
  let visited = Array.make g.n false in
  let pq = Heap.create ~cmp:Float.compare in
  dist.(src) <- 0.;
  Heap.push pq 0. src;
  let rec loop () =
    match Heap.pop pq with
    | None -> ()
    | Some (d, u) ->
        if not visited.(u) then begin
          visited.(u) <- true;
          List.iter
            (fun (v, w) ->
              let nd = d +. w in
              if nd < dist.(v) then begin
                dist.(v) <- nd;
                Heap.push pq nd v
              end)
            g.adj.(u)
        end;
        loop ()
  in
  loop ();
  dist

let all_pairs g = Array.init g.n (fun src -> dijkstra g src)

let connected g =
  if g.n = 0 then true
  else begin
    let d = dijkstra g 0 in
    Array.for_all (fun x -> x < infinity) d
  end

let to_metric g =
  let m = all_pairs g in
  Array.iter
    (fun row ->
      Array.iter (fun d -> if d = infinity then failwith "Graph.to_metric: disconnected graph") row)
    m;
  Metric.of_matrix m
