(** Finite metric spaces over points addressed by dense integer indices.

    Every protocol in this reproduction consumes distances only through this
    interface, mirroring the paper's model: a network topology induces a
    metric space satisfying the triangle inequality (Section 3).  The
    expansion property of Equation 1 ([|B(2r)| <= c |B(r)|]) holds or fails
    depending on the generator; {!expansion_estimate} measures it.

    Point-based constructors ({!of_points}, {!of_points_torus}) additionally
    build a uniform-grid spatial index, making {!ball}, {!ball_count},
    {!nearest_other} and {!k_nearest} cost O(|answer|) rather than O(size).
    The [*_brute] variants are the always-available full scans, kept as
    oracles; grid and brute paths agree exactly, including tie-breaks. *)

type t

val make : size:int -> desc:string -> dist:(int -> int -> float) -> t
(** A metric over points [0 .. size-1]. [dist] must be symmetric, and zero
    exactly on the diagonal.  No spatial index (queries fall back to the
    brute scans). *)

val of_points : (float * float) array -> t
(** Euclidean metric over points in the plane, with a grid index. *)

val of_points_torus : side:float -> (float * float) array -> t
(** Euclidean metric with wrap-around on a [side] x [side] torus (the
    cleanest growth-restricted space: expansion constant 4 everywhere),
    with a wrap-aware grid index. *)

val of_matrix : float array array -> t
(** Explicit distance matrix (used for graph-induced metrics). *)

val size : t -> int

val desc : t -> string

val dist : t -> int -> int -> float

val indexed : t -> bool
(** Does this metric carry a spatial index (point-based constructors)? *)

val index_granularity : t -> int option
(** Cells per axis of the current grid index, [None] when unindexed. *)

val set_index_granularity : t -> per_axis:int -> unit
(** Rebuild the grid index at an explicit granularity (no-op when
    unindexed).  Query results are granularity-independent — only the
    constant factors move; tests use this to fabricate a mis-sized grid. *)

val rescale_index : t -> bool
(** Rebuild the grid index if its cell occupancy has drifted at least 2x
    from the sqrt(n)-cells-per-axis ideal — the guard callers run before a
    query-heavy phase when the index may have been built under a different
    density assumption.  Returns whether a rebuild happened.  Queries are
    exact either way; an oversized cell population only costs time.  Not
    safe concurrently with queries (it swaps the index in place). *)

val ball : t -> int -> float -> int list
(** [ball m p r] is every point within distance [r] of [p] (including [p]),
    in ascending index order.  O(|ball|) on indexed metrics, O(size)
    otherwise. *)

val ball_count : t -> int -> float -> int

val k_closest : t -> int -> k:int -> candidates:int list -> int list
(** The [k] candidates closest to the given point, ascending by distance
    (ties by index).  O(|candidates| log |candidates|). *)

val k_nearest : t -> int -> k:int -> int list
(** The [k] points of the whole space closest to the given point (itself
    included, at distance 0), ascending by distance with ties by index —
    exactly [k_closest] over every point, but O(|answer|)-ish on indexed
    metrics. *)

val nearest_other : t -> int -> int option
(** Closest point distinct from the argument (lowest index on ties). *)

val ball_brute : t -> int -> float -> int list
(** Full-scan oracle for {!ball}; always O(size). *)

val ball_count_brute : t -> int -> float -> int

val k_nearest_brute : t -> int -> k:int -> int list

val nearest_other_brute : t -> int -> int option

val diameter : t -> sample:int -> rng:Rng.t -> float
(** Estimated diameter from [sample] random pairs (exact scan if the space
    is small). *)

val expansion_estimate : t -> samples:int -> rng:Rng.t -> float
(** Empirical expansion constant: max over sampled (point, radius) pairs of
    [|B(2r)|/|B(r)|], ignoring balls that already cover the space. *)

val approx_bytes : t -> int
(** Estimated resident bytes of the metric (coordinate arrays + CSR grid
    index, or the full matrix).  Feeds the scale-tier memory gauge. *)
