(** Deterministic parallel map over stdlib domains.

    The experiment driver uses this to run independent trials/sizes on
    multiple cores without giving up replay: tasks are chunked contiguously,
    results are joined in task-index order, and each task derives its own
    random stream from its index via {!task_rng}.  Outputs are therefore
    bit-identical whatever the domain count (and [domains = 1] degrades to a
    plain sequential loop with no domain spawned).

    Tasks must not share mutable state: each should build its own networks,
    rngs and accumulators and return plain data. *)

val recommended : unit -> int
(** [Domain.recommended_domain_count ()] — a sensible upper bound for
    [domains] on this machine. *)

val task_rng : seed:int -> task:int -> Rng.t
(** An independent stream for one task, a pure function of [(seed, task)]. *)

val map : ?domains:int -> int -> f:(int -> 'a) -> 'a array
(** [map ~domains n ~f] is [[| f 0; ...; f (n-1) |]], with tasks spread over
    at most [domains] domains (default 1).  [f] must be safe to run on a
    non-main domain and independent across indices. *)

val map_list : ?domains:int -> 'a list -> f:(int -> 'a -> 'b) -> 'b list
(** List version of {!map}; [f] receives the element's index and value. *)
