type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

let empty_summary =
  { n = 0; mean = 0.; stddev = 0.; min = 0.; max = 0.; p50 = 0.; p90 = 0.; p99 = 0. }

let mean = function
  | [] -> 0.
  | xs -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let percentile xs p =
  match xs with
  | [] -> 0.
  | xs ->
      let a = Array.of_list xs in
      Array.sort Float.compare a;
      let n = Array.length a in
      let idx = int_of_float (ceil (p *. float_of_int n)) - 1 in
      let idx = max 0 (min (n - 1) idx) in
      a.(idx)

let summarize xs =
  match xs with
  | [] -> empty_summary
  | xs ->
      let n = List.length xs in
      let m = mean xs in
      let var =
        List.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0. xs
        /. float_of_int n
      in
      {
        n;
        mean = m;
        stddev = sqrt var;
        min = List.fold_left min infinity xs;
        max = List.fold_left max neg_infinity xs;
        p50 = percentile xs 0.5;
        p90 = percentile xs 0.9;
        p99 = percentile xs 0.99;
      }

let gini xs =
  match xs with
  | [] -> 0.
  | xs ->
      let a = Array.of_list xs in
      Array.sort Float.compare a;
      let n = Array.length a in
      let total = Array.fold_left ( +. ) 0. a in
      if total <= 0. then 0.
      else begin
        let weighted = ref 0. in
        for i = 0 to n - 1 do
          weighted := !weighted +. (float_of_int (i + 1) *. a.(i))
        done;
        let nf = float_of_int n in
        ((2. *. !weighted) /. (nf *. total)) -. ((nf +. 1.) /. nf)
      end

let linear_fit pts =
  let n = float_of_int (List.length pts) in
  if n < 2. then (0., 0.)
  else begin
    let sx = List.fold_left (fun a (x, _) -> a +. x) 0. pts in
    let sy = List.fold_left (fun a (_, y) -> a +. y) 0. pts in
    let sxx = List.fold_left (fun a (x, _) -> a +. (x *. x)) 0. pts in
    let sxy = List.fold_left (fun a (x, y) -> a +. (x *. y)) 0. pts in
    let denom = (n *. sxx) -. (sx *. sx) in
    if abs_float denom < 1e-12 then (0., sy /. n)
    else begin
      let slope = ((n *. sxy) -. (sx *. sy)) /. denom in
      (slope, (sy -. (slope *. sx)) /. n)
    end
  end

let fmt_float x =
  if Float.is_integer x && abs_float x < 1e7 then Printf.sprintf "%.0f" x
  else if abs_float x >= 1000. then Printf.sprintf "%.0f" x
  else if abs_float x >= 10. then Printf.sprintf "%.1f" x
  else Printf.sprintf "%.3f" x

let pp_summary ppf s =
  Format.fprintf ppf "n=%d mean=%s sd=%s min=%s p50=%s p90=%s p99=%s max=%s"
    s.n (fmt_float s.mean) (fmt_float s.stddev) (fmt_float s.min)
    (fmt_float s.p50) (fmt_float s.p90) (fmt_float s.p99) (fmt_float s.max)

module Table = struct
  type t = {
    title : string;
    columns : string list;
    mutable rows : string list list; (* stored reversed *)
  }

  let create ~title ~columns = { title; columns; rows = [] }

  let add_row t row =
    if List.length row <> List.length t.columns then
      invalid_arg "Stats.Table.add_row: wrong arity";
    t.rows <- row :: t.rows

  let render t =
    let rows = List.rev t.rows in
    let all = t.columns :: rows in
    let ncols = List.length t.columns in
    let widths = Array.make ncols 0 in
    let note_widths row =
      List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row
    in
    List.iter note_widths all;
    let buf = Buffer.create 256 in
    let pad i s = s ^ String.make (widths.(i) - String.length s) ' ' in
    let emit_row row =
      Buffer.add_string buf "| ";
      List.iteri
        (fun i cell ->
          Buffer.add_string buf (pad i cell);
          Buffer.add_string buf " | ")
        row;
      (* trim trailing space *)
      let len = Buffer.length buf in
      Buffer.truncate buf (len - 1);
      Buffer.add_char buf '\n'
    in
    let rule () =
      Buffer.add_char buf '+';
      Array.iter (fun w -> Buffer.add_string buf (String.make (w + 2) '-'); Buffer.add_char buf '+') widths;
      Buffer.add_char buf '\n'
    in
    Buffer.add_string buf ("== " ^ t.title ^ " ==\n");
    rule ();
    emit_row t.columns;
    rule ();
    List.iter emit_row rows;
    rule ();
    Buffer.contents buf

  let print t = print_string (render t)

  let title t = t.title

  let to_csv t =
    let quote cell =
      if String.exists (fun c -> c = ',' || c = '"' || c = '\n') cell then
        "\"" ^ String.concat "\"\"" (String.split_on_char '"' cell) ^ "\""
      else cell
    in
    let line row = String.concat "," (List.map quote row) in
    String.concat "\n" (line t.columns :: List.map line (List.rev t.rows)) ^ "\n"
end

module Tally = struct
  type t = {
    mutable hits : int;
    mutable misses : int;
    mutable stale : int;
    mutable fills : int;
    mutable evicts : int;
    mutable recoveries : int;
    mutable hint_fills : int;
    mutable hint_hits : int;
  }

  let create () =
    { hits = 0; misses = 0; stale = 0; fills = 0; evicts = 0; recoveries = 0;
      hint_fills = 0; hint_hits = 0 }

  let reset t =
    t.hits <- 0;
    t.misses <- 0;
    t.stale <- 0;
    t.fills <- 0;
    t.evicts <- 0;
    t.recoveries <- 0;
    t.hint_fills <- 0;
    t.hint_hits <- 0

  let merge ~into t =
    into.hits <- into.hits + t.hits;
    into.misses <- into.misses + t.misses;
    into.stale <- into.stale + t.stale;
    into.fills <- into.fills + t.fills;
    into.evicts <- into.evicts + t.evicts;
    into.recoveries <- into.recoveries + t.recoveries;
    into.hint_fills <- into.hint_fills + t.hint_fills;
    into.hint_hits <- into.hint_hits + t.hint_hits

  let lookups t = t.hits + t.misses + t.stale

  let hit_rate t =
    let l = lookups t in
    if l = 0 then 0. else float_of_int t.hits /. float_of_int l
end

(* HDR-style log-bucketed latency histogram (serve tier).

   Values are hashed to a bucket by [frexp]: the exponent selects an
   octave, the top 5 mantissa bits select one of 32 sub-buckets, so the
   relative quantile error is bounded by 1/64 (~1.6%) at any magnitude.
   Everything is plain int counters over a fixed 2048-slot array:
   [add] allocates nothing, [merge] is element-wise addition (assoc-
   commutative, so per-shard histograms merged in a fixed shard order
   are bit-identical whatever the domain count), and [counts] is the
   whole determinism signature. *)
module Hist = struct
  let sub_bits = 5
  let sub = 1 lsl sub_bits (* 32 sub-buckets per octave *)
  let e_min = -32 (* values below ~2.3e-10 clamp to bucket 0 *)
  let e_max = 31 (* values >= 2^31 clamp to the last bucket *)
  let buckets = (e_max - e_min + 1) * sub

  type h = {
    counts : int array;
    mutable total : int;
    mutable sum : float;
    mutable vmin : float;
    mutable vmax : float;
  }

  let create () =
    { counts = Array.make buckets 0; total = 0; sum = 0.; vmin = infinity;
      vmax = neg_infinity }

  let bucket_of v =
    if v <= 0. then 0
    else begin
      let m, e = Float.frexp v in
      (* m in [0.5, 1): 32 equal mantissa strips *)
      let si = int_of_float ((m -. 0.5) *. float_of_int (2 * sub)) in
      let si = if si >= sub then sub - 1 else if si < 0 then 0 else si in
      if e < e_min then 0
      else if e > e_max then buckets - 1
      else ((e - e_min) * sub) + si
    end

  (* lower edge of a bucket: the conservative quantile representative *)
  let value_of b =
    let e = (b / sub) + e_min and si = b mod sub in
    Float.ldexp (0.5 +. (float_of_int si /. float_of_int (2 * sub))) e

  let add t v =
    let b = bucket_of v in
    t.counts.(b) <- t.counts.(b) + 1;
    t.total <- t.total + 1;
    t.sum <- t.sum +. v;
    if v < t.vmin then t.vmin <- v;
    if v > t.vmax then t.vmax <- v

  let merge ~into t =
    for b = 0 to buckets - 1 do
      into.counts.(b) <- into.counts.(b) + t.counts.(b)
    done;
    into.total <- into.total + t.total;
    into.sum <- into.sum +. t.sum;
    if t.vmin < into.vmin then into.vmin <- t.vmin;
    if t.vmax > into.vmax then into.vmax <- t.vmax

  let total t = t.total

  let mean t = if t.total = 0 then 0. else t.sum /. float_of_int t.total

  let min_value t = if t.total = 0 then 0. else t.vmin

  let max_value t = if t.total = 0 then 0. else t.vmax

  (* nearest-rank on the cumulative bucket counts *)
  let quantile t p =
    if t.total = 0 then 0.
    else begin
      let target = int_of_float (ceil (p *. float_of_int t.total)) in
      let target = if target < 1 then 1 else target in
      let rec walk b seen =
        if b >= buckets then t.vmax
        else
          let seen = seen + t.counts.(b) in
          if seen >= target then value_of b else walk (b + 1) seen
      in
      walk 0 0
    end

  let counts t = Array.copy t.counts

  let equal a b =
    a.total = b.total
    && (let rec eq b' =
          b' >= buckets || (a.counts.(b') = b.counts.(b') && eq (b' + 1))
        in
        eq 0)
end
