(* Minimal JSON values, printer and recursive-descent parser — just enough
   for the bench harness to emit BENCH_results.json and round-trip it in
   the @bench-smoke check without growing a dependency. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* --- printing --- *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_literal x =
  match Float.classify_float x with
  | FP_nan | FP_infinite -> "null" (* nan/inf are not JSON *)
  | FP_zero | FP_subnormal | FP_normal ->
      if Float.is_integer x && abs_float x < 1e15 then Printf.sprintf "%.1f" x
      else Printf.sprintf "%.17g" x

let rec write buf ~indent v =
  let pad n = String.make n ' ' in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float x -> Buffer.add_string buf (float_literal x)
  | String s -> escape_to buf s
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
      Buffer.add_string buf "[\n";
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf (pad (indent + 2));
          write buf ~indent:(indent + 2) item)
        items;
      Buffer.add_char buf '\n';
      Buffer.add_string buf (pad indent);
      Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
      Buffer.add_string buf "{\n";
      List.iteri
        (fun i (k, item) ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf (pad (indent + 2));
          escape_to buf k;
          Buffer.add_string buf ": ";
          write buf ~indent:(indent + 2) item)
        fields;
      Buffer.add_char buf '\n';
      Buffer.add_string buf (pad indent);
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 1024 in
  write buf ~indent:0 v;
  Buffer.add_char buf '\n';
  Buffer.contents buf

(* --- parsing --- *)

exception Parse_error of string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some x when Char.equal x c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.equal (String.sub s !pos l) word then begin
      pos := !pos + l;
      v
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else begin
        let c = s.[!pos] in
        advance ();
        match c with
        | '"' -> Buffer.contents buf
        | '\\' ->
            (if !pos >= n then fail "unterminated escape"
             else begin
               let e = s.[!pos] in
               advance ();
               match e with
               | '"' -> Buffer.add_char buf '"'
               | '\\' -> Buffer.add_char buf '\\'
               | '/' -> Buffer.add_char buf '/'
               | 'n' -> Buffer.add_char buf '\n'
               | 'r' -> Buffer.add_char buf '\r'
               | 't' -> Buffer.add_char buf '\t'
               | 'b' -> Buffer.add_char buf '\b'
               | 'f' -> Buffer.add_char buf '\012'
               | 'u' ->
                   if !pos + 4 > n then fail "truncated \\u escape";
                   let hex = String.sub s !pos 4 in
                   pos := !pos + 4;
                   let code =
                     try int_of_string ("0x" ^ hex)
                     with Failure _ -> fail "bad \\u escape"
                   in
                   (* BMP only; enough to round-trip our own output *)
                   if code < 0x80 then Buffer.add_char buf (Char.chr code)
                   else Buffer.add_string buf (Printf.sprintf "\\u%04x" code)
               | _ -> fail "unknown escape"
             end);
            go ()
        | c -> Buffer.add_char buf c; go ()
      end
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    let span = String.sub s start (!pos - start) in
    if String.length span = 0 then fail "expected number";
    let looks_int =
      not (String.exists (fun c -> c = '.' || c = 'e' || c = 'E') span)
    in
    if looks_int then
      match int_of_string_opt span with
      | Some i -> Int i
      | None -> (
          match float_of_string_opt span with
          | Some f -> Float f
          | None -> fail "bad number")
    else
      match float_of_string_opt span with
      | Some f -> Float f
      | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
        advance ();
        skip_ws ();
        if (match peek () with Some ']' -> true | _ -> false) then begin
          advance ();
          List []
        end
        else begin
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          List (items [])
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if (match peek () with Some '}' -> true | _ -> false) then begin
          advance ();
          Obj []
        end
        else begin
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let rec fields acc =
            let kv = field () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields (kv :: acc)
            | Some '}' ->
                advance ();
                List.rev (kv :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (fields [])
        end
    | Some _ -> parse_number ()
  in
  match parse_value () with
  | v ->
      skip_ws ();
      if !pos <> n then Error (Printf.sprintf "trailing input at offset %d" !pos)
      else Ok v
  | exception Parse_error msg -> Error msg

let member key = function
  | Obj fields ->
      List.find_map
        (fun (k, v) -> if String.equal k key then Some v else None)
        fields
  | _ -> None
