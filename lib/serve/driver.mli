(** Open-loop load generator for the serving runtime (DESIGN.md
    section 9): per-shard Poisson injectors over a Zipf(s) object
    popularity, a locate/publish/unpublish mix, and optional
    barrier-time churn.  Everything is seeded from [params.seed], so a
    run's {!signature} is bit-identical for every domain count. *)

open Tapestry
module Hist = Simnet.Stats.Hist

type params = {
  seed : int;
  requests : int;  (** total requests, split evenly over the shards *)
  rate : float;  (** aggregate arrivals per virtual second *)
  zipf_s : float;  (** popularity skew; 0 = uniform *)
  objects : int;
  p_publish : float;  (** fraction of requests that publish a replica *)
  p_unpublish : float;  (** fraction that retract an earlier publish *)
  latency : float;  (** virtual seconds per unit of metric distance *)
  service : float;  (** virtual seconds of actor work per message *)
  ttl : float;  (** serve-time pointer expiry horizon *)
  window : float;  (** barrier window width, virtual seconds *)
  mailbox_cap : int;
  kill_rate : float;  (** node failures per virtual second *)
  join_rate : float;  (** churn joins per virtual second *)
  domains : int;  (** OS domains; [<= 0] uses [Parallel.recommended] *)
  cache_size : int;
      (** {!Obj_cache} ways per node; [0] (the default) disables caching
          and reproduces the uncached engine's counters bit-identically *)
  cache_policy : Obj_cache.policy;
  coop : bool;
      (** cooperative hint exchange (PR 10, DESIGN.md section 11):
          unwind seeding budget, per-window neighbor hint digests, and
          the extra surrogate-climb retry before failing a fetch.
          Requires [cache_size > 0]; [false] (the default) reproduces
          PR 9's cached counters exactly *)
  hint_k : int;  (** top-k digest entries a shard offers per barrier *)
  hint_budget : int;
      (** max hints one node line accepts per exchange event, and the
          unwind's seeding cap under coop *)
}

val default : params
(** seed 42, 10^5 requests at 5.10^4/s, Zipf 0.9 over 10^3 objects,
    5% publish / 1% unpublish, no churn, coop off (hint_k 16 /
    hint_budget 12 when enabled). *)

type result = {
  engine : Shard.t;
  hist_v : Hist.h;  (** merged virtual-latency histogram (completed) *)
  hist_w : Hist.h;  (** merged wall-latency histogram (info only) *)
  injected : int;
  completed : int;
  failed : int;  (** all non-ok terminals, [dropped] and [dead_letter] included *)
  dropped : int;  (** mailbox-overflow backpressure drops *)
  dead_letter : int;  (** messages for nodes that died in flight *)
  delivered : int;
  kills : int;
  joins : int;
  duration_v : float;  (** virtual time of the last barrier *)
  wall_s : float;
  barriers : int;
  tally : Simnet.Stats.Tally.t;
      (** merged cache counters, all-zero at [cache_size = 0] *)
}

val run : net:Network.t -> params -> now:(unit -> float) -> result
(** Serve [params.requests] over [net].  The network should be built
    with a [pointer_ttl] comfortably above the expected virtual
    duration, or the initial placement expires mid-run.  [now] supplies
    wall stamps (monotonic seconds); it is called only at barriers and
    never influences results.
    @raise Invalid_argument on non-positive [objects] or [rate]. *)

val signature : result -> string
(** Deterministic fingerprint: counters plus the virtual histogram,
    excluding every wall-derived quantity.  Equal strings across
    [--domains] values is the serve determinism guarantee. *)
