(** Windowed barrier-synchronous shard engine for the serving runtime
    (DESIGN.md section 9).

    Handles are partitioned over a fixed grid of {!shard_count} logical
    shards; the domain count only folds the grid onto OS domains, so a
    run's results are bit-identical for every [--domains] value.  Within
    a window each shard pumps its private transport heap and fiber
    scheduler independently; outbox exchange, churn and dead-entry
    repair happen sequentially at the barriers, in shard index order. *)

open Tapestry

val shard_count : int
(** Fixed at 64, like the streamed-build shard sweep. *)

val shard_of : int -> int
(** Owning shard of an arena handle. *)

type t = {
  sh : Actor.shared;
  ctxs : Actor.ctx array;  (** length {!shard_count} *)
  window : float;
  mutable barriers : int;  (** barriers executed so far *)
  b1_cnt : int array;
      (** digit buckets (coop only, else empty): digest rows grouped by
          the first one ([b1]) / two ([b2]) digits of their object's
          root guid, as (key, srv, gen, epoch) quadruples rebuilt at
          every barrier — the walk geometry says those are the nodes a
          future climb for that object funnels through *)
  b1_rows : int array;
  b2_cnt : int array;
  b2_rows : int array;
}

val create :
  net:Network.t -> guids:Node_id.t array -> roots:int -> ttl:float ->
  latency:float -> service:float -> requests:int -> mailbox_cap:int ->
  seed:int -> window:float -> cache:Obj_cache.t option -> coop:bool ->
  hint_k:int -> hint_budget:int -> t
(** Build the engine: one mailbox arena sized to the network, one
    {!Actor.ctx} per shard with an independent [Parallel.task_rng]
    stream.  [cache] attaches the per-node object caches (fills, evicts
    and epoch bumps buffered per shard are applied at each barrier in
    shard order, bumps first, then evicts, then fills).  [coop] (with
    [hint_k]/[hint_budget], see DESIGN.md section 11) adds the
    barrier-ordered neighbor hint exchange after the intent pass; it is
    forced off without a cache.
    @raise Invalid_argument if [window <= 0]. *)

val run :
  t -> domains:int -> now:(unit -> float) ->
  on_barrier:(t -> float -> unit) -> unit
(** Run windows until no shard has pending work.  [domains <= 1] runs
    the grid sequentially on the calling domain.  [now] supplies wall
    stamps (written into [sh.wall.(0)] at each barrier, info only).
    [on_barrier t barrier] runs sequentially at every barrier after
    outbox exchange and repair — churn injection goes here. *)

val kill_node : t -> Node.t -> unit
(** Barrier-only node failure: dead-letter the queued requests, clear
    the mailbox, bump its generation, then [Delete.fail]. *)

val sync_capacity : t -> unit
(** Barrier-only: grow the mailbox arena and dirty set after joins
    ({!run} calls it after every [on_barrier]). *)

val next_work_time : t -> float
(** Earliest pending event across all shards, [infinity] if idle. *)

val quiesce : t -> clock:float -> unit
(** Drive the mesh to an auditable quiescent point: set the virtual
    clock, repair dead links and holes, drop backpointers with dead
    sources, expire stale pointers.  [Audit.run] must be clean after
    this, churn or not. *)
