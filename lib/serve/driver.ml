(* Open-loop load generator for the serving runtime (DESIGN.md
   section 9).

   Each shard owns an injector fiber drawing exponential inter-arrival
   gaps at [rate / shard_count] from its private RNG stream, so the
   aggregate arrival process is open-loop Poisson at [rate] and
   injection is deterministic per shard regardless of the domain count.
   Object popularity is Zipf(s): rank 0 is the hottest object, and with
   a hot enough head the per-actor service time turns the popular roots
   into real queueing bottlenecks — which is the point of the tier.

   The request mix is locate / publish / unpublish; unpublish draws a
   victim from the shard's own publish log so it always retracts
   something that was actually published (falling back to locate when
   the log is empty).  Churn, when enabled, fires at barriers from a
   dedicated RNG: failures pick a live victim and [Shard.kill_node] it;
   joins re-use the metric address of an earlier victim (the metric has
   no spare points), inserting through a random live gateway. *)

open Tapestry
module Fiber = Simnet.Fiber
module Rng = Simnet.Rng
module Hist = Simnet.Stats.Hist
module Workload = Evaluation.Workload

type params = {
  seed : int;
  requests : int;
  rate : float;  (* aggregate arrivals per virtual second *)
  zipf_s : float;
  objects : int;
  p_publish : float;
  p_unpublish : float;
  latency : float;  (* virtual seconds per unit of metric distance *)
  service : float;  (* virtual seconds of actor work per message *)
  ttl : float;  (* serve-time pointer expiry horizon *)
  window : float;
  mailbox_cap : int;
  kill_rate : float;  (* node failures per virtual second *)
  join_rate : float;  (* churn joins per virtual second *)
  domains : int;  (* <= 0: Parallel.recommended () *)
  cache_size : int;  (* object-cache ways per node; 0 disables *)
  cache_policy : Obj_cache.policy;
  coop : bool;  (* cooperative hint exchange (needs cache_size > 0) *)
  hint_k : int;  (* top-k digest entries offered per barrier *)
  hint_budget : int;  (* max hints one node line accepts per exchange *)
}

let default =
  {
    seed = 42;
    requests = 100_000;
    rate = 50_000.;
    zipf_s = 0.9;
    objects = 1_000;
    p_publish = 0.05;
    p_unpublish = 0.01;
    latency = 1e-5;
    service = 1e-4;
    ttl = 1e6;
    window = 0.02;
    mailbox_cap = 64;
    kill_rate = 0.;
    join_rate = 0.;
    domains = 0;
    cache_size = 0;
    cache_policy = Obj_cache.Clock;
    coop = false;
    hint_k = 16;
    hint_budget = 12;
  }

type result = {
  engine : Shard.t;
  hist_v : Hist.h;  (* merged completed-request virtual latency *)
  hist_w : Hist.h;  (* merged wall latency (info only) *)
  injected : int;
  completed : int;
  failed : int;
  dropped : int;
  dead_letter : int;
  delivered : int;
  kills : int;
  joins : int;
  duration_v : float;
  wall_s : float;
  barriers : int;
  tally : Simnet.Stats.Tally.t;  (* merged cache counters (zeros at --cache 0) *)
}

(* Per-shard log of (server handle, object) publishes, the unpublish
   victim pool. *)
type publog = {
  mutable ps : int array;
  mutable po : int array;
  mutable plen : int;
}

let publog_push l ~srv ~obj =
  if l.plen >= Array.length l.ps then begin
    let c = max 16 (2 * Array.length l.ps) in
    let ps = Array.make c 0 and po = Array.make c 0 in
    Array.blit l.ps 0 ps 0 l.plen;
    Array.blit l.po 0 po 0 l.plen;
    l.ps <- ps;
    l.po <- po
  end;
  l.ps.(l.plen) <- srv;
  l.po.(l.plen) <- obj;
  l.plen <- l.plen + 1

let make_guids net ~objects ~roots =
  let a = Array.make (objects * roots) (Network.fresh_id net) in
  for o = 0 to objects - 1 do
    let g = Network.fresh_id net in
    for r = 0 to roots - 1 do
      a.((o * roots) + r) <- Network.salted net g r
    done
  done;
  a

let spawn_injector t params z ctx log ~reqbase ~count ~mean_gap =
  let sh = t.Shard.sh in
  let net = sh.Actor.net in
  let sched = ctx.Actor.sched in
  let rng = ctx.Actor.rng in
  let roots = sh.Actor.roots in
  let pick_alive () =
    net.Network.alive_arr.(Rng.int rng net.Network.alive_len)
  in
  (* one chain per root; the request id rides chain 0, the others are
     fire-and-forget so replica/pointer state stays root-symmetric *)
  let send_chains ~now ~kind ~req ~obj ~srv_h =
    for r = 0 to roots - 1 do
      Actor.send ctx ~time:now ~h:srv_h ~kind
        ~req:(if r = 0 then req else -1)
        ~oi:((obj * roots) + r)
        ~level:0 ~prev:(-1) ~src:srv_h
    done
  in
  let rec loop k =
    if k < count then begin
      Fiber.sleep sched (Rng.exponential rng ~mean:mean_gap);
      let now = Fiber.now sched in
      let req = reqbase + k in
      sh.Actor.req_t0.(req) <- now;
      sh.Actor.req_w0.(req) <- sh.Actor.wall.(0);
      ctx.Actor.injected <- ctx.Actor.injected + 1;
      let u = Rng.float rng 1.0 in
      let obj = Workload.zipf_sample z rng in
      if u < params.p_publish then begin
        let srv = pick_alive () in
        publog_push log ~srv:srv.Node.handle ~obj;
        send_chains ~now ~kind:Actor.op_publish ~req ~obj
          ~srv_h:srv.Node.handle
      end
      else if u < params.p_publish +. params.p_unpublish && log.plen > 0
      then begin
        let i = Rng.int rng log.plen in
        let srv_h = log.ps.(i) and obj' = log.po.(i) in
        log.ps.(i) <- log.ps.(log.plen - 1);
        log.po.(i) <- log.po.(log.plen - 1);
        log.plen <- log.plen - 1;
        send_chains ~now ~kind:Actor.op_unpublish ~req ~obj:obj' ~srv_h
      end
      else begin
        let c = pick_alive () in
        let r = if roots = 1 then 0 else Rng.int rng roots in
        Actor.send ctx ~time:now ~h:c.Node.handle ~kind:Actor.op_locate
          ~req
          ~oi:((obj * roots) + r)
          ~level:0 ~prev:(-1) ~src:c.Node.handle
      end;
      loop (k + 1)
    end
  in
  if count > 0 then Fiber.spawn sched (fun () -> loop 0)

(* Barrier-time churn bookkeeping (all driven by one dedicated RNG so
   the injector streams stay untouched by churn settings). *)
type churn_state = {
  crng : Rng.t;
  mutable kill_acc : float;
  mutable join_acc : float;
  mutable last_barrier : float;
  mutable freed_addrs : int list;
  mutable kills : int;
  mutable joins : int;
}

let churn_barrier params st t barrier =
  let net = t.Shard.sh.Actor.net in
  let dt = barrier -. st.last_barrier in
  st.last_barrier <- barrier;
  st.kill_acc <- st.kill_acc +. (params.kill_rate *. dt);
  st.join_acc <- st.join_acc +. (params.join_rate *. dt);
  while st.kill_acc >= 1. do
    st.kill_acc <- st.kill_acc -. 1.;
    if net.Network.alive_len > 8 then begin
      let victim = net.Network.alive_arr.(Rng.int st.crng net.Network.alive_len) in
      st.freed_addrs <- victim.Node.addr :: st.freed_addrs;
      Shard.kill_node t victim;
      st.kills <- st.kills + 1
    end
  done;
  while st.join_acc >= 1. do
    st.join_acc <- st.join_acc -. 1.;
    match st.freed_addrs with
    | [] -> ()  (* no reusable metric point yet *)
    | addr :: rest ->
        st.freed_addrs <- rest;
        let gw = net.Network.alive_arr.(Rng.int st.crng net.Network.alive_len) in
        ignore (Insert.insert net ~gateway:gw ~addr : Insert.report);
        st.joins <- st.joins + 1
  done

let run ~net params ~now =
  if params.objects <= 0 then invalid_arg "Driver.run: objects <= 0";
  if params.rate <= 0. then invalid_arg "Driver.run: rate <= 0";
  if params.requests < 0 then invalid_arg "Driver.run: requests < 0";
  let wall0 = now () in
  let roots = net.Network.config.Config.root_set_size in
  let guids = make_guids net ~objects:params.objects ~roots in
  (* initial placement: every object published once from a random live
     server, sequentially, so locates have something to find *)
  let srng = Rng.create ((params.seed * 2) + 1) in
  for o = 0 to params.objects - 1 do
    let server = net.Network.alive_arr.(Rng.int srng net.Network.alive_len) in
    ignore
      (Publish.publish net ~server guids.(o * roots) : Publish.outcome)
  done;
  (* object cache (PR 9): keys are interned in object order up front, so
     key o = oi / roots for every message and no hot-path interning is
     needed; the cache is attached to the network so the quiescent-point
     [Audit.run] sees it *)
  let cache =
    if params.cache_size <= 0 then begin
      (* defensive: a cache left attached by an earlier run on this
         mesh must not leak into an uncached row *)
      net.Network.obj_cache <- None;
      None
    end
    else begin
      let c =
        Obj_cache.create ~ways:params.cache_size ~policy:params.cache_policy
          ~nodes:net.Network.arena_len
      in
      for o = 0 to params.objects - 1 do
        ignore (Obj_cache.intern c guids.(o * roots) : int)
      done;
      if params.coop then
        Obj_cache.set_coop c ~hint_k:params.hint_k
          ~hint_budget:params.hint_budget;
      net.Network.obj_cache <- Some c;
      Some c
    end
  in
  let t =
    Shard.create ~net ~guids ~roots ~ttl:params.ttl ~latency:params.latency
      ~service:params.service ~requests:params.requests
      ~mailbox_cap:params.mailbox_cap ~seed:params.seed
      ~window:params.window ~cache ~coop:params.coop ~hint_k:params.hint_k
      ~hint_budget:params.hint_budget
  in
  let z = Workload.zipf ~s:params.zipf_s ~n:params.objects in
  let per = params.requests / Shard.shard_count in
  let extra = params.requests mod Shard.shard_count in
  let mean_gap = float_of_int Shard.shard_count /. params.rate in
  for s = 0 to Shard.shard_count - 1 do
    let count = per + (if s < extra then 1 else 0) in
    let reqbase = (s * per) + min s extra in
    let log = { ps = [||]; po = [||]; plen = 0 } in
    spawn_injector t params z t.Shard.ctxs.(s) log ~reqbase ~count ~mean_gap
  done;
  let st =
    {
      crng = Rng.create ((params.seed * 2) + 2);
      kill_acc = 0.;
      join_acc = 0.;
      last_barrier = 0.;
      freed_addrs = [];
      kills = 0;
      joins = 0;
    }
  in
  let domains =
    if params.domains <= 0 then Simnet.Parallel.recommended ()
    else params.domains
  in
  Shard.run t ~domains ~now ~on_barrier:(churn_barrier params st);
  let hist_v = Hist.create () and hist_w = Hist.create () in
  let tally = Simnet.Stats.Tally.create () in
  let injected = ref 0
  and completed = ref 0
  and failed = ref 0
  and dropped = ref 0
  and dead_letter = ref 0
  and delivered = ref 0 in
  Array.iter
    (fun (ctx : Actor.ctx) ->
      Hist.merge ~into:hist_v ctx.Actor.hist_v;
      Hist.merge ~into:hist_w ctx.Actor.hist_w;
      Simnet.Stats.Tally.merge ~into:tally ctx.Actor.tally;
      injected := !injected + ctx.Actor.injected;
      completed := !completed + ctx.Actor.completed;
      failed := !failed + ctx.Actor.failed;
      dropped := !dropped + ctx.Actor.dropped;
      dead_letter := !dead_letter + ctx.Actor.dead_letter;
      delivered := !delivered + ctx.Actor.delivered)
    t.Shard.ctxs;
  {
    engine = t;
    hist_v;
    hist_w;
    injected = !injected;
    completed = !completed;
    failed = !failed;
    dropped = !dropped;
    dead_letter = !dead_letter;
    delivered = !delivered;
    kills = st.kills;
    joins = st.joins;
    duration_v = st.last_barrier;
    wall_s = now () -. wall0;
    barriers = t.Shard.barriers;
    tally;
  }

(* Deterministic fingerprint of a run: merged virtual histogram plus the
   integer counters.  Excludes every wall-clock-derived quantity, so it
   must be bit-identical across domain counts.  Cache counters are
   appended only when the cache saw traffic, so cache-off signatures
   match the pre-cache engine's byte for byte. *)
let signature r =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "inj=%d comp=%d fail=%d drop=%d dead=%d del=%d k=%d j=%d b=%d dur=%.9f;"
       r.injected r.completed r.failed r.dropped r.dead_letter r.delivered
       r.kills r.joins r.barriers r.duration_v);
  let tl = r.tally in
  if Simnet.Stats.Tally.lookups tl + tl.Simnet.Stats.Tally.fills > 0 then
    Buffer.add_string b
      (Printf.sprintf "ch=%d cm=%d cs=%d cf=%d ce=%d cr=%d;"
         tl.Simnet.Stats.Tally.hits tl.Simnet.Stats.Tally.misses
         tl.Simnet.Stats.Tally.stale tl.Simnet.Stats.Tally.fills
         tl.Simnet.Stats.Tally.evicts tl.Simnet.Stats.Tally.recoveries);
  (* hint counters follow the same pattern: only appended when the
     cooperative layer actually moved hints, so coop-off signatures are
     byte-identical to PR 9's *)
  if tl.Simnet.Stats.Tally.hint_fills + tl.Simnet.Stats.Tally.hint_hits > 0
  then
    Buffer.add_string b
      (Printf.sprintf "hf=%d hh=%d;" tl.Simnet.Stats.Tally.hint_fills
         tl.Simnet.Stats.Tally.hint_hits);
  Array.iteri
    (fun i c -> if c > 0 then Buffer.add_string b (Printf.sprintf "%d:%d," i c))
    (Hist.counts r.hist_v);
  Buffer.contents b
