(** Message plumbing for the actor runtime: bounded per-node mailbox
    rings, the per-shard in-flight transport heap, and the cross-shard
    outbox (DESIGN.md section 9).

    A message is six ints — [kind] (Actor opcode), [req] (global request
    id, [-1] for fire-and-forget), [oi] (object x root index into the
    driver's salted-guid table), [level] (walk level, packed with the
    root index for secondary chains), [prev] (previous publish hop's
    arena handle, [-1] at the server), [src] (origin server's handle).
    Transport/outbox entries also carry the target handle and the
    target's mailbox generation captured at send time; a generation
    mismatch at delivery is a dead letter.

    All structures are struct-of-arrays read in place instead of
    through returned records, so steady-state operations allocate
    nothing; the record types are exposed transparently for exactly
    that field access.  Concurrency: rings are partitioned by
    [handle mod shard count] and only ever touched by the owning shard
    during a window; transports and outboxes are shard-private; growth
    and {!kill} happen only at barriers.  The shared mailbox arena
    deliberately has no out-param scratch — concurrent pops go through
    {!msg_index} + {!advance} so each shard reads only its own ring
    slots (a shared scratch field would be a cross-domain data race,
    and was: see DESIGN.md section 9.5). *)

type t = {
  cap : int;
  mutable handles : int;
  mutable r_kind : int array;
  mutable r_req : int array;
  mutable r_oi : int array;
  mutable r_level : int array;
  mutable r_prev : int array;
  mutable r_src : int array;
  mutable head : int array;
  mutable len : int array;
  mutable gen : int array;
  mutable busy : int array;
}

val create : cap:int -> handles:int -> t
(** Rings of capacity [cap] for handles [0 .. handles-1].
    @raise Invalid_argument if [cap <= 0]. *)

val ensure : t -> handles:int -> unit
(** Grow (amortized doubling) so [handles-1] is addressable.  Barrier
    only: never call while shard windows are running. *)

val capacity : t -> int

val generation : t -> int -> int
(** Current generation stamp of a handle's mailbox. *)

val length : t -> int -> int

val is_busy : t -> int -> bool
(** Is a drain fiber scheduled or running for this handle? *)

val set_busy : t -> int -> bool -> unit

val push :
  t -> int -> kind:int -> req:int -> oi:int -> level:int -> prev:int ->
  src:int -> bool
(** FIFO append; [false] when the ring is full (bounded backpressure:
    the newcomer is dropped and the caller accounts it). *)

val msg_index : t -> int -> int
(** Flat index of handle [h]'s FIFO head in the [r_*] rings (only
    meaningful while [length t h > 0]).  Read the message fields
    directly, then {!advance} — pops never touch shared scratch. *)

val advance : t -> int -> unit
(** Consume handle [h]'s FIFO head (after reading it via {!msg_index}).
    Owner-shard only. *)

val kill : t -> int -> unit
(** Node death: clear the ring, reset busy, bump the generation (drain
    any queued requests first — see the shard barrier's churn step). *)

(** Per-shard heap of in-flight messages keyed by (delivery time, send
    sequence) — the stable tie-break replay depends on.  Payloads live
    in a free-listed pool so a sift swap moves three words. *)
module Transport : sig
  type tr = {
    mutable tt : float array;
    mutable ts : int array;
    mutable tp : int array;
    mutable tlen : int;
    mutable seq : int;
    mutable p_h : int array;
    mutable p_g : int array;
    mutable p_kind : int array;
    mutable p_req : int array;
    mutable p_oi : int array;
    mutable p_level : int array;
    mutable p_prev : int array;
    mutable p_src : int array;
    mutable free : int array;
    mutable free_len : int;
    mutable pcap : int;
    mutable o_time : float;  (** filled by {!pop_into} *)
    mutable o_h : int;
    mutable o_g : int;
    mutable o_kind : int;
    mutable o_req : int;
    mutable o_oi : int;
    mutable o_level : int;
    mutable o_prev : int;
    mutable o_src : int;
  }

  val create : unit -> tr

  val length : tr -> int

  val peek_time : tr -> float
  (** Earliest delivery time, [infinity] when empty. *)

  val push :
    tr -> time:float -> h:int -> g:int -> kind:int -> req:int -> oi:int ->
    level:int -> prev:int -> src:int -> unit

  val pop_into : tr -> bool
  (** Pop the earliest message into the [o_*] fields. *)
end

(** Cross-shard sends buffered during a window; drained at the barrier
    in shard index order so target-side sequence assignment is
    independent of the domain count. *)
module Outbox : sig
  type ob = {
    mutable b_time : float array;
    mutable b_h : int array;
    mutable b_g : int array;
    mutable b_kind : int array;
    mutable b_req : int array;
    mutable b_oi : int array;
    mutable b_level : int array;
    mutable b_prev : int array;
    mutable b_src : int array;
    mutable blen : int;
  }

  val create : unit -> ob

  val length : ob -> int

  val push :
    ob -> time:float -> h:int -> g:int -> kind:int -> req:int -> oi:int ->
    level:int -> prev:int -> src:int -> unit

  val clear : ob -> unit

  val flush_into : ob -> Transport.tr -> floor:float -> unit
  (** Push every buffered entry into a transport, raising delivery times
      below [floor] (the barrier) to [floor]: a cross-shard message may
      not land inside a window the target already executed. *)
end
