(** Fiber-per-node actors: mailbox drain loops and the per-message
    protocol state machine of the serving runtime (DESIGN.md section 9).

    Opcodes: LOCATE walks toward the object's root, redirecting to the
    closest live server as soon as it meets a usable pointer (the
    closest-replica rule of Section 2.4); FETCH completes at the server
    iff it still stores the replica; PUBLISH deposits soft-state
    pointers along the walk with the previous-hop backlink; UNPUBLISH
    retracts along the same walk; LOCATE_NC is the cache-free fallback
    climb a request switches to after exhausting its redirect budget.

    With an {!Tapestry.Obj_cache} attached (PR 9, DESIGN.md section 10),
    LOCATE probes the hop's own cache line before the pointer store and
    a valid entry redirects the FETCH immediately.  Cross-node cache
    mutations (fills from successful fetches, evicts of entries caught
    lying, epoch bumps at unpublish origins) are logged in per-shard
    intent buffers and applied at the barrier in shard order, keeping
    the engine bit-identical for any [--domains].  At [cache = None]
    every message is byte-identical to the uncached engine (redirect
    counts pack into LOCATE's level high bits and are then always 0).

    Every function here runs on the shard owning the target node and
    touches only that shard's state plus the partitioned per-node
    stores; dead routing entries seen mid-scan are queued for the
    barrier, never purged in place. *)

open Tapestry
module Fiber = Simnet.Fiber
module Hist = Simnet.Stats.Hist

val op_locate : int
val op_fetch : int
val op_publish : int
val op_unpublish : int
val op_locate_nc : int

val rc_shift : int
(** LOCATE packs [walk_level lor (redirect_count lsl rc_shift)]. *)

val rc_max : int
val path_cap : int
(** Recorded locate hops per request (fill-intent targets). *)

val st_pending : char
val st_ok : char
val st_failed : char
val st_dropped : char
val st_dead_letter : char

(** Run-global immutable tables plus the few cross-shard cells written
    only at barriers ([wall], [dirty]) or at disjoint indices
    ([req_*], partitioned by per-shard request-id ranges). *)
type shared = {
  net : Network.t;
  mb : Mailbox.t;
  shards : int;  (** fixed partition count, independent of [--domains] *)
  guids : Node_id.t array;  (** [oi = obj * roots + r] -> salted guid *)
  roots : int;
  ttl : float;  (** expiry horizon of serve-time pointer deposits *)
  latency : float;  (** virtual seconds per unit of metric distance *)
  service : float;  (** virtual seconds an actor spends per message *)
  digits : int;
  base : int;
  req_t0 : float array;  (** per request: virtual injection time *)
  req_w0 : float array;  (** per request: wall stamp of injection window *)
  req_status : Bytes.t;
  wall : float array;  (** [wall.(0)]: stamp of the window, barrier-written *)
  mutable dirty : Bytes.t;  (** per handle: queued for dead-entry repair? *)
  cache : Obj_cache.t option;
      (** per-node object caches; probes and touches stay own-line
          (shard-confined), cross-node mutations ride the ctx intent
          buffers to the barrier *)
  req_path : int array;
      (** [requests * path_cap] recorded locate hops; a request's hops
          are causally ordered across shards, so the disjoint-slice
          writes are race-free.  Empty at [--cache 0]. *)
  req_plen : Bytes.t;  (** per request: hops recorded (saturates) *)
  coop : bool;
      (** cooperative hint exchange on (PR 10, DESIGN.md section 11);
          [false] keeps the engine byte-identical to PR 9 *)
  hint_k : int;  (** top-k digest entries a shard offers its neighbors *)
  hint_budget : int;  (** max hints one node line accepts per barrier *)
  mutable want_stamp : int array;
      (** per handle: window of the last logged want (owner-shard
          written, so disjoint); empty when coop is off *)
  win : int array;  (** [win.(0)]: window counter, barrier-written *)
}

(** Per-shard private world: scheduler, transport, outbox, RNG, cost and
    latency accounting, plus mutable scratch so the hot dispatch path
    allocates nothing. *)
type ctx = {
  sh : shared;
  shard : int;
  sched : Fiber.t;
  tr : Mailbox.Transport.tr;
  out : Mailbox.Outbox.ob;
  rng : Simnet.Rng.t;
  cost : Simnet.Cost.t;
  hist_v : Hist.h;
  hist_w : Hist.h;
  mutable injected : int;
  mutable completed : int;
  mutable failed : int;
  mutable dropped : int;
  mutable dead_letter : int;
  mutable delivered : int;
  mutable dirty_h : int array;
  mutable dirty_len : int;
  mutable scan_h : int;
  mutable scan_level : int;
  mutable best_h : int;
  mutable best_d : float;
  mutable pred_now : float;
  mutable cur : Node.t;
  mutable sel : Pointer_store.record -> unit;
  tally : Simnet.Stats.Tally.t;  (** cache hit/miss/stale/... counters *)
  mutable fi_h : int array;  (** fill intents: target cache line *)
  mutable fi_key : int array;
  mutable fi_srv : int array;
  mutable fi_gen : int array;
  mutable fi_epoch : int array;  (** epoch snapshot at intent-log time *)
  mutable fi_len : int;
  mutable ev_h : int array;  (** evict intents: holder line *)
  mutable ev_key : int array;
  mutable ev_srv : int array;  (** retract only if still naming this *)
  mutable ev_len : int;
  mutable ep_key : int array;  (** epoch bumps (unpublish origins) *)
  mutable ep_srv : int array;  (** ... of this retracting server *)
  mutable ep_len : int;
  mutable hd_key : int array;
      (** hint digest: this window's cache hits as (key, srv, gen,
          epoch, count) rows, at most {!digest_cap} distinct pairs *)
  mutable hd_srv : int array;
  mutable hd_gen : int array;
  mutable hd_epoch : int array;
  mutable hd_cnt : int array;
  mutable hd_len : int;
  mutable wt_h : int array;
      (** want ring: this shard's nodes that missed this window, one
          entry per node per window *)
  mutable wt_len : int;
  mutable sweep_cursor : int;
      (** rotating position of the barrier's proactive hint sweep over
          this shard's handles *)
}

val digest_cap : int
(** Distinct (key, server) pairs a shard's per-window digest tracks. *)

val make_shared :
  net:Network.t -> mb:Mailbox.t -> shards:int -> guids:Node_id.t array ->
  roots:int -> ttl:float -> latency:float -> service:float ->
  requests:int -> cache:Obj_cache.t option -> coop:bool -> hint_k:int ->
  hint_budget:int -> shared
(** [coop] is forced off when [cache = None] or either hint parameter
    is [<= 0]. *)

val make_ctx : shared -> shard:int -> rng:Simnet.Rng.t -> ctx

val send :
  ctx -> time:float -> h:int -> kind:int -> req:int -> oi:int ->
  level:int -> prev:int -> src:int -> unit
(** Route a message to handle [h]: same-shard straight into this shard's
    transport, cross-shard into the outbox for the barrier.  Captures
    the target's mailbox generation at send time. *)

val complete_failed : ctx -> req:int -> unit

val deliver : ctx -> time:float -> unit
(** Deliver the transport message just popped into [ctx.tr]'s out
    fields: generation mismatches and dead targets are dead letters,
    ring overflow drops the newcomer, otherwise the message is enqueued
    and a drain fiber is spawned if none is active. *)
