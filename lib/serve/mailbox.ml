(* Message plumbing for the actor runtime (DESIGN.md section 9).

   Three flat, allocation-free structures:

   - [t]: the system-wide mailbox array — one bounded FIFO ring per
     arena handle over struct-of-arrays int payloads, generation-
     stamped like [Scratch] so a dead node's queue can be invalidated
     in O(1) and in-flight messages addressed to the old incarnation
     are recognized as dead letters;
   - [Transport]: a per-shard binary min-heap of in-flight messages
     keyed by (delivery time, send sequence) — the stable tie-break
     that makes replay exact — with payloads parked in a free-listed
     side pool so sift swaps move three words, not ten;
   - [Outbox]: a per-shard append log of cross-shard sends, drained
     into the target shards' transports at window barriers.

   A message is six ints: [kind] (the Actor opcode), [req] (global
   request id, -1 for fire-and-forget chains), [oi] (object x root_set
   index into the driver's salted-guid table), [level] (walk level,
   also carrying the root index for secondary chains), [prev] (arena
   handle of the previous publish hop, -1 at the server), [src] (arena
   handle of the origin server).  Transport entries add the target
   handle and the target's mailbox generation at send time.

   Results are read in place (ring slots via [msg_index], transport
   heads via per-shard [o_*] scratch) rather than returned records, so
   the per-message path allocates nothing (this file is on the typed
   lint's hot-path list).  Scratch fields live only on per-shard
   structures; the shared mailbox arena has none. *)

type t = {
  cap : int;  (* ring capacity per handle; overflow drops the newcomer *)
  mutable handles : int;  (* handles covered by the arrays below *)
  (* rings, indexed [h * cap + k] *)
  mutable r_kind : int array;
  mutable r_req : int array;
  mutable r_oi : int array;
  mutable r_level : int array;
  mutable r_prev : int array;
  mutable r_src : int array;
  (* per-handle ring state *)
  mutable head : int array;
  mutable len : int array;
  mutable gen : int array;
  mutable busy : int array;  (* 1 while a drain fiber is scheduled/running *)
}

(* [@alloc_ok]: setup-time constructor, one allocation per run. *)
let[@alloc_ok] create ~cap ~handles =
  if cap <= 0 then invalid_arg "Mailbox.create: cap must be positive";
  let handles = max handles 1 in
  {
    cap;
    handles;
    r_kind = Array.make (handles * cap) 0;
    r_req = Array.make (handles * cap) 0;
    r_oi = Array.make (handles * cap) 0;
    r_level = Array.make (handles * cap) 0;
    r_prev = Array.make (handles * cap) 0;
    r_src = Array.make (handles * cap) 0;
    head = Array.make handles 0;
    len = Array.make handles 0;
    gen = Array.make handles 0;
    busy = Array.make handles 0;
  }

(* [@alloc_ok]: barrier-only growth after churn joins; doubles so the
   amortized cost over a run is O(final size). *)
let[@alloc_ok] ensure t ~handles =
  if handles > t.handles then begin
    let nh = max handles (t.handles * 2) in
    let grow_ring old =
      let a = Array.make (nh * t.cap) 0 in
      Array.blit old 0 a 0 (t.handles * t.cap);
      a
    in
    let grow old fill =
      let a = Array.make nh fill in
      Array.blit old 0 a 0 t.handles;
      a
    in
    t.r_kind <- grow_ring t.r_kind;
    t.r_req <- grow_ring t.r_req;
    t.r_oi <- grow_ring t.r_oi;
    t.r_level <- grow_ring t.r_level;
    t.r_prev <- grow_ring t.r_prev;
    t.r_src <- grow_ring t.r_src;
    t.head <- grow t.head 0;
    t.len <- grow t.len 0;
    t.gen <- grow t.gen 0;
    t.busy <- grow t.busy 0;
    t.handles <- nh
  end

let capacity t = t.cap

let generation t h = t.gen.(h)

let length t h = t.len.(h)

let is_busy t h = t.busy.(h) <> 0

let set_busy t h b = t.busy.(h) <- (if b then 1 else 0)

let push t h ~kind ~req ~oi ~level ~prev ~src =
  if t.len.(h) >= t.cap then false
  else begin
    let k = t.head.(h) + t.len.(h) in
    let k = if k >= t.cap then k - t.cap else k in
    let i = (h * t.cap) + k in
    t.r_kind.(i) <- kind;
    t.r_req.(i) <- req;
    t.r_oi.(i) <- oi;
    t.r_level.(i) <- level;
    t.r_prev.(i) <- prev;
    t.r_src.(i) <- src;
    t.len.(h) <- t.len.(h) + 1;
    true
  end

(* Readers consume the FIFO head in place — [msg_index] to locate the
   slot, direct [r_*] reads, then [advance].  The mailbox arena is
   shared by every shard, so there is deliberately NO out-param scratch
   on [t]: shard-local reads of the owner's ring slots are the only
   race-free way to pop concurrently (a shared scratch field would be a
   cross-domain write on every pop). *)
let msg_index t h = (h * t.cap) + t.head.(h)

let advance t h =
  let k = t.head.(h) + 1 in
  t.head.(h) <- (if k >= t.cap then 0 else k);
  t.len.(h) <- t.len.(h) - 1

(* Invalidate a dead node's mailbox: queued requests are the caller's
   to account (iterate with [msg_index]/[advance] first), then the
   generation bump turns any message still in flight toward the old
   incarnation into a recognizable dead letter. *)
let kill t h =
  t.head.(h) <- 0;
  t.len.(h) <- 0;
  t.busy.(h) <- 0;
  t.gen.(h) <- t.gen.(h) + 1

(* In-flight messages of one shard, ordered by (delivery time, send
   seq).  The heap triple (time, seq, pool slot) lives in three parallel
   arrays; payloads stay put in the pool while sifting. *)
module Transport = struct
  type tr = {
    mutable tt : float array;  (* delivery time *)
    mutable ts : int array;  (* send sequence: stable ties *)
    mutable tp : int array;  (* payload pool slot *)
    mutable tlen : int;
    mutable seq : int;
    (* payload pool + free list *)
    mutable p_h : int array;
    mutable p_g : int array;
    mutable p_kind : int array;
    mutable p_req : int array;
    mutable p_oi : int array;
    mutable p_level : int array;
    mutable p_prev : int array;
    mutable p_src : int array;
    mutable free : int array;
    mutable free_len : int;
    mutable pcap : int;
    (* out-params of [pop_into] *)
    mutable o_time : float;
    mutable o_h : int;
    mutable o_g : int;
    mutable o_kind : int;
    mutable o_req : int;
    mutable o_oi : int;
    mutable o_level : int;
    mutable o_prev : int;
    mutable o_src : int;
  }

  (* [@alloc_ok]: per-shard constructor, once per run. *)
  let[@alloc_ok] create () =
    let cap = 64 in
    {
      tt = Array.make cap 0.;
      ts = Array.make cap 0;
      tp = Array.make cap 0;
      tlen = 0;
      seq = 0;
      p_h = Array.make cap 0;
      p_g = Array.make cap 0;
      p_kind = Array.make cap 0;
      p_req = Array.make cap 0;
      p_oi = Array.make cap 0;
      p_level = Array.make cap 0;
      p_prev = Array.make cap 0;
      p_src = Array.make cap 0;
      free = Array.make cap 0;
      free_len = 0;
      pcap = 0;
      o_time = 0.;
      o_h = 0;
      o_g = 0;
      o_kind = 0;
      o_req = 0;
      o_oi = 0;
      o_level = 0;
      o_prev = 0;
      o_src = 0;
    }

  let length t = t.tlen

  let peek_time t = if t.tlen = 0 then infinity else t.tt.(0)

  (* [@alloc_ok]: amortized doubling, off the steady-state path. *)
  let[@alloc_ok] grow_heap t =
    let cap = Array.length t.tt * 2 in
    let gf a fill =
      let b = Array.make cap fill in
      Array.blit a 0 b 0 t.tlen;
      b
    in
    t.tt <- gf t.tt 0.;
    t.ts <- gf t.ts 0;
    t.tp <- gf t.tp 0

  let[@alloc_ok] grow_pool t =
    let cap = Array.length t.p_h * 2 in
    let gi a =
      let b = Array.make cap 0 in
      Array.blit a 0 b 0 (Array.length a);
      b
    in
    t.p_h <- gi t.p_h;
    t.p_g <- gi t.p_g;
    t.p_kind <- gi t.p_kind;
    t.p_req <- gi t.p_req;
    t.p_oi <- gi t.p_oi;
    t.p_level <- gi t.p_level;
    t.p_prev <- gi t.p_prev;
    t.p_src <- gi t.p_src;
    t.free <- gi t.free

  let before t i j =
    t.tt.(i) < t.tt.(j) || (t.tt.(i) = t.tt.(j) && t.ts.(i) < t.ts.(j))

  let swap t i j =
    let ft = t.tt.(i) in
    t.tt.(i) <- t.tt.(j);
    t.tt.(j) <- ft;
    let s = t.ts.(i) in
    t.ts.(i) <- t.ts.(j);
    t.ts.(j) <- s;
    let p = t.tp.(i) in
    t.tp.(i) <- t.tp.(j);
    t.tp.(j) <- p

  let rec sift_up t i =
    if i > 0 then begin
      let parent = (i - 1) / 2 in
      if before t i parent then begin
        swap t i parent;
        sift_up t parent
      end
    end

  let rec sift_down t i =
    let l = (2 * i) + 1 in
    if l < t.tlen then begin
      let r = l + 1 in
      let m = if r < t.tlen && before t r l then r else l in
      if before t m i then begin
        swap t i m;
        sift_down t m
      end
    end

  let push t ~time ~h ~g ~kind ~req ~oi ~level ~prev ~src =
    (* take a pool slot *)
    let slot =
      if t.free_len > 0 then begin
        t.free_len <- t.free_len - 1;
        t.free.(t.free_len)
      end
      else begin
        if t.pcap >= Array.length t.p_h then grow_pool t;
        let s = t.pcap in
        t.pcap <- t.pcap + 1;
        s
      end
    in
    t.p_h.(slot) <- h;
    t.p_g.(slot) <- g;
    t.p_kind.(slot) <- kind;
    t.p_req.(slot) <- req;
    t.p_oi.(slot) <- oi;
    t.p_level.(slot) <- level;
    t.p_prev.(slot) <- prev;
    t.p_src.(slot) <- src;
    if t.tlen >= Array.length t.tt then grow_heap t;
    let i = t.tlen in
    t.tt.(i) <- time;
    t.ts.(i) <- t.seq;
    t.tp.(i) <- slot;
    t.seq <- t.seq + 1;
    t.tlen <- t.tlen + 1;
    sift_up t i

  let pop_into t =
    if t.tlen = 0 then false
    else begin
      let slot = t.tp.(0) in
      t.o_time <- t.tt.(0);
      t.o_h <- t.p_h.(slot);
      t.o_g <- t.p_g.(slot);
      t.o_kind <- t.p_kind.(slot);
      t.o_req <- t.p_req.(slot);
      t.o_oi <- t.p_oi.(slot);
      t.o_level <- t.p_level.(slot);
      t.o_prev <- t.p_prev.(slot);
      t.o_src <- t.p_src.(slot);
      t.free.(t.free_len) <- slot;
      t.free_len <- t.free_len + 1;
      t.tlen <- t.tlen - 1;
      if t.tlen > 0 then begin
        swap t 0 t.tlen;
        (* entry at tlen is now garbage; fix the root *)
        sift_down t 0
      end;
      true
    end
end

(* Cross-shard sends buffered during a window, drained sequentially at
   the barrier.  Append order is the shard's deterministic execution
   order, and barriers drain shards in index order, so the target
   transport's sequence assignment — and therefore same-time delivery
   order — is independent of the domain count. *)
module Outbox = struct
  type ob = {
    mutable b_time : float array;
    mutable b_h : int array;
    mutable b_g : int array;
    mutable b_kind : int array;
    mutable b_req : int array;
    mutable b_oi : int array;
    mutable b_level : int array;
    mutable b_prev : int array;
    mutable b_src : int array;
    mutable blen : int;
  }

  (* [@alloc_ok]: per-shard constructor, once per run. *)
  let[@alloc_ok] create () =
    let cap = 64 in
    {
      b_time = Array.make cap 0.;
      b_h = Array.make cap 0;
      b_g = Array.make cap 0;
      b_kind = Array.make cap 0;
      b_req = Array.make cap 0;
      b_oi = Array.make cap 0;
      b_level = Array.make cap 0;
      b_prev = Array.make cap 0;
      b_src = Array.make cap 0;
      blen = 0;
    }

  let[@alloc_ok] grow t =
    let cap = Array.length t.b_h * 2 in
    let gi a =
      let b = Array.make cap 0 in
      Array.blit a 0 b 0 t.blen;
      b
    in
    let gtf =
      let b = Array.make cap 0. in
      Array.blit t.b_time 0 b 0 t.blen;
      b
    in
    t.b_time <- gtf;
    t.b_h <- gi t.b_h;
    t.b_g <- gi t.b_g;
    t.b_kind <- gi t.b_kind;
    t.b_req <- gi t.b_req;
    t.b_oi <- gi t.b_oi;
    t.b_level <- gi t.b_level;
    t.b_prev <- gi t.b_prev;
    t.b_src <- gi t.b_src

  let length t = t.blen

  let push t ~time ~h ~g ~kind ~req ~oi ~level ~prev ~src =
    if t.blen >= Array.length t.b_h then grow t;
    let i = t.blen in
    t.b_time.(i) <- time;
    t.b_h.(i) <- h;
    t.b_g.(i) <- g;
    t.b_kind.(i) <- kind;
    t.b_req.(i) <- req;
    t.b_oi.(i) <- oi;
    t.b_level.(i) <- level;
    t.b_prev.(i) <- prev;
    t.b_src.(i) <- src;
    t.blen <- t.blen + 1

  let clear t = t.blen <- 0

  (* Barrier-side drain: push entry [i] of [ob] into [tr], bumping the
     delivery time to [floor] (the window barrier) when the natural
     arrival would land inside the already-executed window. *)
  let flush_into t (tr : Transport.tr) ~floor =
    for i = 0 to t.blen - 1 do
      let time = if t.b_time.(i) < floor then floor else t.b_time.(i) in
      Transport.push tr ~time ~h:t.b_h.(i) ~g:t.b_g.(i) ~kind:t.b_kind.(i)
        ~req:t.b_req.(i) ~oi:t.b_oi.(i) ~level:t.b_level.(i)
        ~prev:t.b_prev.(i) ~src:t.b_src.(i)
    done;
    t.blen <- 0
end
