(* The windowed barrier-synchronous shard engine (DESIGN.md section 9).

   Handles are partitioned over a FIXED grid of [shard_count] logical
   shards ([handle mod shard_count]); [--domains] only decides how many
   OS domains the grid is folded onto, exactly like
   [Static_build.build_streamed]'s fixed-64-shard sweep — so results are
   bit-identical for every domain count.

   Virtual time advances in windows of width [window].  Within a window
   every shard runs independently: it pumps its private transport heap
   and fiber scheduler (interleaved by head time) up to the barrier.
   Cross-shard messages buffered in outboxes during the window are
   exchanged sequentially at the barrier in shard index order, with
   delivery times floored to the barrier (a message may not land inside
   a window its target already executed).  Churn and dead-entry repair
   also happen only at barriers, in shard order, so every mutation of
   shared state is sequential and deterministically ordered. *)

open Tapestry
module Fiber = Simnet.Fiber
module Transport = Mailbox.Transport

let shard_count = 64
let shard_of h = h mod shard_count

(* Handles per shard the proactive hint sweep visits each barrier (see
   [apply_hint_digest]): at n=65536 (1024 handles/shard, ~1081 barriers
   per 10⁶ requests) every node is first visited within ~6% of the run
   and revisited ~16 times after — a client injecting ~15 requests
   total must hear about the hot head before most of them are spent.
   Doubling the quota moves delivered/req by < 0.3% while costing ~30%
   of the serve-phase wall rate: 16 is past the knee. *)
let sweep_quota = 16

(* Digit-bucket capacities: rows per first-digit bucket (b1) and per
   two-digit bucket (b2).  See [apply_hint_digest]. *)
let b1_cap = 32
let b2_cap = 16

type t = {
  sh : Actor.shared;
  ctxs : Actor.ctx array;  (* length [shard_count] *)
  window : float;
  mutable barriers : int;  (* barriers executed so far *)
  b1_cnt : int array;  (* digit buckets: digest rows grouped by the *)
  b1_rows : int array;  (* first 1 (b1) / 2 (b2) digits of the row's *)
  b2_cnt : int array;  (* object root guid; (key,srv,gen,epoch) *)
  b2_rows : int array;  (* quadruples, rebuilt at every barrier *)
}

let create ~net ~guids ~roots ~ttl ~latency ~service ~requests ~mailbox_cap
    ~seed ~window ~cache ~coop ~hint_k ~hint_budget =
  if window <= 0. then invalid_arg "Shard.create: window <= 0";
  let mb =
    Mailbox.create ~cap:mailbox_cap ~handles:(max net.Network.arena_len 1)
  in
  let sh =
    Actor.make_shared ~net ~mb ~shards:shard_count ~guids ~roots ~ttl
      ~latency ~service ~requests ~cache ~coop ~hint_k ~hint_budget
  in
  let ctxs =
    Array.init shard_count (fun s ->
        Actor.make_ctx sh ~shard:s
          ~rng:(Simnet.Parallel.task_rng ~seed ~task:s))
  in
  let base = sh.Actor.base in
  let coop_on = sh.Actor.coop in
  {
    sh;
    ctxs;
    window;
    barriers = 0;
    b1_cnt = Array.make (if coop_on then base else 0) 0;
    b1_rows = Array.make (if coop_on then base * b1_cap * 4 else 0) 0;
    b2_cnt = Array.make (if coop_on then base * base else 0) 0;
    b2_rows = Array.make (if coop_on then base * base * b2_cap * 4 else 0) 0;
  }

(* Interleave the shard's two event sources by head time until both are
   past [limit]: fiber events first on ties (arbitrary but fixed). *)
let rec pump ctx ~limit =
  let ft = Fiber.next_event_time ctx.Actor.sched in
  let tt = Transport.peek_time ctx.Actor.tr in
  if ft <= tt then begin
    if ft <= limit then begin
      Fiber.run_until ctx.Actor.sched ft;
      pump ctx ~limit
    end
  end
  else if tt <= limit then begin
    ignore (Transport.pop_into ctx.Actor.tr : bool);
    Actor.deliver ctx ~time:ctx.Actor.tr.Transport.o_time;
    pump ctx ~limit
  end

let run_shard_window ctx ~limit =
  pump ctx ~limit;
  (* no events remain at or before the barrier: normalize the clock *)
  Fiber.run_until ctx.Actor.sched limit

(* The ONLY binding that touches [Domain]: everything transitively
   callable from here runs concurrently on sibling domains and must obey
   the shard-confinement discipline (see lint allowlist).  Shard [s]
   always lands on domain [s / per], so a fiber suspended across a
   barrier resumes on the domain that created it. *)
let run_windows_parallel t ~domains ~limit =
  let nd =
    let d = min domains shard_count in
    if d < 1 then 1 else d
  in
  if nd = 1 then
    for s = 0 to shard_count - 1 do
      run_shard_window t.ctxs.(s) ~limit
    done
  else begin
    let per = (shard_count + nd - 1) / nd in
    let doms =
      Array.init (nd - 1) (fun k ->
          Domain.spawn (fun () ->
              let lo = (k + 1) * per in
              let hi = min shard_count ((k + 2) * per) - 1 in
              for s = lo to hi do
                run_shard_window t.ctxs.(s) ~limit
              done))
    in
    for s = 0 to min shard_count per - 1 do
      run_shard_window t.ctxs.(s) ~limit
    done;
    Array.iter Domain.join doms
  end

(* ---- barrier steps: sequential, shard-order, deterministic ---- *)

let flush_outboxes t ~barrier =
  for s = 0 to shard_count - 1 do
    let ob = t.ctxs.(s).Actor.out in
    for i = 0 to ob.Mailbox.Outbox.blen - 1 do
      let h = ob.Mailbox.Outbox.b_h.(i) in
      let time = ob.Mailbox.Outbox.b_time.(i) in
      let time = if time < barrier then barrier else time in
      Transport.push
        t.ctxs.(shard_of h).Actor.tr
        ~time ~h
        ~g:ob.Mailbox.Outbox.b_g.(i)
        ~kind:ob.Mailbox.Outbox.b_kind.(i)
        ~req:ob.Mailbox.Outbox.b_req.(i)
        ~oi:ob.Mailbox.Outbox.b_oi.(i)
        ~level:ob.Mailbox.Outbox.b_level.(i)
        ~prev:ob.Mailbox.Outbox.b_prev.(i)
        ~src:ob.Mailbox.Outbox.b_src.(i)
    done;
    Mailbox.Outbox.clear ob
  done

(* Lazy repair of one owner's dead routing entries, Section 5.2 style:
   collect the distinct dead neighbors, then run the rich on_dead
   handler for each (drop link, promote secondary, fill holes, re-push
   pointers). *)
let repair_owner net (owner : Node.t) =
  if Node.is_alive owner then begin
    let dead = ref [] in
    Routing_table.iter_entries owner.Node.table
      (fun ~level:_ ~digit:_ (e : Routing_table.entry) ->
        match Network.find net e.Routing_table.id with
        | Some n when Node.is_alive n -> ()
        | _ ->
            if
              not
                (List.exists
                   (fun d -> Node_id.equal d e.Routing_table.id)
                   !dead)
            then dead := e.Routing_table.id :: !dead);
    List.iter
      (fun d -> Delete.on_dead_repair net ~owner ~dead:d)
      (List.rev !dead)
  end

let apply_repairs t =
  let net = t.sh.Actor.net in
  for s = 0 to shard_count - 1 do
    let ctx = t.ctxs.(s) in
    for i = 0 to ctx.Actor.dirty_len - 1 do
      let h = ctx.Actor.dirty_h.(i) in
      Bytes.set t.sh.Actor.dirty h '\000';
      repair_owner net (Network.node_of_handle net h)
    done;
    ctx.Actor.dirty_len <- 0
  done

(* Apply the windows' buffered cache intents sequentially, in shard
   order, bumps -> evicts -> fills: a fill whose epoch snapshot predates
   a same-window unpublish lands already-stale, and an evict cannot be
   undone by a same-window fill of the entry it just retracted. *)
let apply_cache_intents t =
  match t.sh.Actor.cache with
  | None -> ()
  | Some c ->
      for s = 0 to shard_count - 1 do
        let ctx = t.ctxs.(s) in
        for i = 0 to ctx.Actor.ep_len - 1 do
          Obj_cache.bump_epoch c ~key:ctx.Actor.ep_key.(i)
            ~srv:ctx.Actor.ep_srv.(i)
        done;
        ctx.Actor.ep_len <- 0
      done;
      for s = 0 to shard_count - 1 do
        let ctx = t.ctxs.(s) in
        for i = 0 to ctx.Actor.ev_len - 1 do
          Obj_cache.evict c ~h:ctx.Actor.ev_h.(i) ~key:ctx.Actor.ev_key.(i)
            ~server:ctx.Actor.ev_srv.(i)
        done;
        ctx.Actor.ev_len <- 0
      done;
      for s = 0 to shard_count - 1 do
        let ctx = t.ctxs.(s) in
        for i = 0 to ctx.Actor.fi_len - 1 do
          Obj_cache.insert_snap c ~h:ctx.Actor.fi_h.(i)
            ~key:ctx.Actor.fi_key.(i) ~server:ctx.Actor.fi_srv.(i)
            ~gen:ctx.Actor.fi_gen.(i) ~epoch:ctx.Actor.fi_epoch.(i)
        done;
        ctx.Actor.fi_len <- 0
      done

(* Cooperative hint exchange (PR 10, DESIGN.md section 11), running
   after [apply_cache_intents] so every same-window epoch bump has
   already landed.

   Step 1 reduces each shard's per-window hit digest to its top
   [hint_k] rows in place (count descending, first-hit order on ties).
   Step 2 walks the shards in index order and offers every node that
   missed this window the digests of its own shard and its two ring
   neighbors — own shard first, so local hotness wins the budget.  A
   line accepts at most [hint_budget] imports, each doorkeeper-gated
   and declined if the node already holds the key; a hint whose
   (key, srv) epoch snapshot is no longer current is dropped here — a
   hint racing its object's unpublish dies at the barrier instead of
   occupying a way.  Every read and write is sequential in a fixed
   order, so the exchange is bit-identical for any [--domains]. *)
let select_top_hints ctx ~k =
  let len = ctx.Actor.hd_len in
  let keep = min k len in
  let swap a i j =
    let v = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- v
  in
  for i = 0 to keep - 1 do
    let best = ref i in
    for j = i + 1 to len - 1 do
      if ctx.Actor.hd_cnt.(j) > ctx.Actor.hd_cnt.(!best) then best := j
    done;
    if !best <> i then begin
      swap ctx.Actor.hd_key i !best;
      swap ctx.Actor.hd_srv i !best;
      swap ctx.Actor.hd_gen i !best;
      swap ctx.Actor.hd_epoch i !best;
      swap ctx.Actor.hd_cnt i !best
    end
  done
  (* rows past [keep] stay in place: the generic offer loops only read
     the sorted head, but the digit buckets and the cross-window carry
     (below) work the full digest *)

let apply_hint_digest t =
  match t.sh.Actor.cache with
  | Some c when t.sh.Actor.coop ->
      let sh = t.sh in
      for s = 0 to shard_count - 1 do
        (* pair epochs are fixed for the rest of this barrier phase
           (bumps already applied), so each row is validated once here
           instead of per offer below *)
        let ctx = t.ctxs.(s) in
        let m = ref 0 in
        for j = 0 to ctx.Actor.hd_len - 1 do
          if
            Obj_cache.epoch_of c ~key:ctx.Actor.hd_key.(j)
              ~srv:ctx.Actor.hd_srv.(j)
            = ctx.Actor.hd_epoch.(j)
          then begin
            if !m < j then begin
              ctx.Actor.hd_key.(!m) <- ctx.Actor.hd_key.(j);
              ctx.Actor.hd_srv.(!m) <- ctx.Actor.hd_srv.(j);
              ctx.Actor.hd_gen.(!m) <- ctx.Actor.hd_gen.(j);
              ctx.Actor.hd_epoch.(!m) <- ctx.Actor.hd_epoch.(j);
              ctx.Actor.hd_cnt.(!m) <- ctx.Actor.hd_cnt.(j)
            end;
            incr m
          end
        done;
        ctx.Actor.hd_len <- !m;
        select_top_hints ctx ~k:sh.Actor.hint_k
      done;
      (* digit buckets: group every digest row by the first one and two
         digits of its object's root guid.  A walk for guid g standing
         at level l matches g's first l digits, so a hint for g is
         worth the most at exactly the nodes whose OWN id shares g's
         leading digits — they are the aggregation points every future
         climb for g funnels through.  The generic digests spread the
         global head; the buckets aim the mid-tail (whose hits enter
         digests with low counts) at the few nodes fan-in actually
         routes toward them. *)
      let base = sh.Actor.base in
      Array.fill t.b1_cnt 0 (Array.length t.b1_cnt) 0;
      Array.fill t.b2_cnt 0 (Array.length t.b2_cnt) 0;
      let bucket_add (cnt : int array) (rows : int array) cap b ~key ~srv
          ~gen ~epoch =
        let n = cnt.(b) in
        let o0 = b * cap * 4 in
        let rec dup j =
          if j >= n then false
          else
            rows.(o0 + (j * 4)) = key
            && rows.(o0 + (j * 4) + 1) = srv
            || dup (j + 1)
        in
        if n < cap && not (dup 0) then begin
          let o = o0 + (n * 4) in
          rows.(o) <- key;
          rows.(o + 1) <- srv;
          rows.(o + 2) <- gen;
          rows.(o + 3) <- epoch;
          cnt.(b) <- n + 1
        end
      in
      for s = 0 to shard_count - 1 do
        let ctx = t.ctxs.(s) in
        for j = 0 to ctx.Actor.hd_len - 1 do
          let key = ctx.Actor.hd_key.(j)
          and srv = ctx.Actor.hd_srv.(j)
          and gen = ctx.Actor.hd_gen.(j)
          and epoch = ctx.Actor.hd_epoch.(j) in
          for r = 0 to sh.Actor.roots - 1 do
            let g = sh.Actor.guids.((key * sh.Actor.roots) + r) in
            let d0 = Node_id.digit g 0 and d1 = Node_id.digit g 1 in
            bucket_add t.b1_cnt t.b1_rows b1_cap d0 ~key ~srv ~gen ~epoch;
            bucket_add t.b2_cnt t.b2_rows b2_cap
              ((d0 * base) + d1)
              ~key ~srv ~gen ~epoch
          done
        done
      done;
      let offer_node s (tl : Simnet.Stats.Tally.t) h =
        let node = Network.node_of_handle sh.Actor.net h in
        if Node.is_alive node then begin
          if Obj_cache.has_empty_way c ~h then begin
          let budget = ref sh.Actor.hint_budget in
          let offer_bucket cnt rows cap b =
            let n = cnt.(b) in
            let o0 = b * cap * 4 in
            let misses = ref 0 in
            let j = ref 0 in
            while !j < n && !budget > 0 && !misses < 4 do
              let o = o0 + (!j * 4) in
              if
                Obj_cache.import_hint c ~h ~key:rows.(o) ~server:rows.(o + 1)
                  ~gen:rows.(o + 2) ~epoch:rows.(o + 3)
              then begin
                decr budget;
                misses := 0;
                tl.Simnet.Stats.Tally.hint_fills <- tl.hint_fills + 1;
                tl.fills <- tl.fills + 1
              end
              else incr misses;
              incr j
            done
          in
          let offer d =
            let dctx = t.ctxs.(d) in
            (* digests are hottest-first: once a few leading offers
               fail (already held or no spare way), the rest will
               too, so bail instead of scanning the whole digest —
               this caps the steady-state barrier cost once a node's
               hint ways have converged on the hot set *)
            let lim = min dctx.Actor.hd_len sh.Actor.hint_k in
            let misses = ref 0 in
            let j = ref 0 in
            while !j < lim && !budget > 0 && !misses < 4 do
              let key = dctx.Actor.hd_key.(!j)
              and srv = dctx.Actor.hd_srv.(!j)
              and gen = dctx.Actor.hd_gen.(!j)
              and epoch = dctx.Actor.hd_epoch.(!j) in
              if Obj_cache.import_hint c ~h ~key ~server:srv ~gen ~epoch
              then begin
                decr budget;
                misses := 0;
                tl.Simnet.Stats.Tally.hint_fills <- tl.hint_fills + 1;
                tl.fills <- tl.fills + 1
              end
              else incr misses;
              incr j
            done
          in
          (* strongest geometry first: two-digit matches, then
             one-digit, then the generic shard-neighborhood head *)
          let v0 = Node_id.digit node.Node.id 0
          and v1 = Node_id.digit node.Node.id 1 in
          offer_bucket t.b2_cnt t.b2_rows b2_cap ((v0 * base) + v1);
          offer_bucket t.b1_cnt t.b1_rows b1_cap v0;
          offer s;
          offer ((s + shard_count - 1) mod shard_count);
          offer ((s + 1) mod shard_count)
          end
          else begin
            (* full line: the early hints that filled the spare ways may
               have gone stale in value as the observed head sharpened.
               Recycle at most ONE idle hint (imported, never probe-hit)
               per barrier for a two-digit bucket row — the strongest
               geometric match — and only if the idle hint is not itself
               a row of that bucket, so the steady state (spare ways
               holding exactly this aggregation point's hot set) is a
               fixed point, not a rotation. *)
            let iw = Obj_cache.idle_hint_way c ~h in
            if iw >= 0 then begin
              let v0 = Node_id.digit node.Node.id 0
              and v1 = Node_id.digit node.Node.id 1 in
              let b = (v0 * base) + v1 in
              let n = t.b2_cnt.(b) in
              let o0 = b * b2_cap * 4 in
              let vkey = Obj_cache.probe_key c iw in
              let rec bucket_hot j =
                j < n && (t.b2_rows.(o0 + (j * 4)) = vkey || bucket_hot (j + 1))
              in
              if not (bucket_hot 0) then begin
                let rec go j =
                  if j < n then begin
                    let o = o0 + (j * 4) in
                    let key = t.b2_rows.(o) in
                    if Obj_cache.holds c ~h ~key then go (j + 1)
                    else begin
                      Obj_cache.set_hint_at c iw ~key
                        ~server:t.b2_rows.(o + 1)
                        ~gen:t.b2_rows.(o + 2) ~epoch:t.b2_rows.(o + 3);
                      tl.Simnet.Stats.Tally.hint_fills <- tl.hint_fills + 1;
                      tl.fills <- tl.fills + 1
                    end
                  end
                in
                go 0
              end
            end
          end
        end
      in
      for s = 0 to shard_count - 1 do
        let ctx = t.ctxs.(s) in
        let tl = ctx.Actor.tally in
        for w = 0 to ctx.Actor.wt_len - 1 do
          offer_node s tl ctx.Actor.wt_h.(w)
        done;
        (* proactive sweep: also offer a rotating slice of the shard's
           own handles, wants or not.  At large n a client injects a
           handful of requests total — if it only hears about the hot
           head after its own first miss, most of the hint's useful
           life is already gone.  The slice bound keeps the barrier
           cost flat; repeat visits refresh what epoch bumps and
           organic replacement have consumed. *)
        let n = sh.Actor.net.Network.arena_len in
        let cnt = if n > s then 1 + ((n - 1 - s) / shard_count) else 0 in
        if cnt > 0 then begin
          let q = min sweep_quota cnt in
          for j = 0 to q - 1 do
            let idx = (ctx.Actor.sweep_cursor + j) mod cnt in
            offer_node s tl (s + (idx * shard_count))
          done;
          ctx.Actor.sweep_cursor <- (ctx.Actor.sweep_cursor + q) mod cnt
        end
      done;
      for s = 0 to shard_count - 1 do
        (* carry the digest across windows under unit decay instead of
           resetting it: one window's digest at large n is a ~dozen-row
           sample of the head (a shard sees only a handful of hits per
           window), far too noisy to rank by.  A row earns +1 per hit
           and pays -1 per window, so persistently hot pairs accumulate
           count and survive while one-window wonders drain and free
           their slot — the exported top-k converges on the true head. *)
        let ctx = t.ctxs.(s) in
        let m = ref 0 in
        for j = 0 to ctx.Actor.hd_len - 1 do
          let cnt = ctx.Actor.hd_cnt.(j) - 1 in
          if cnt > 0 then begin
            if !m < j then begin
              ctx.Actor.hd_key.(!m) <- ctx.Actor.hd_key.(j);
              ctx.Actor.hd_srv.(!m) <- ctx.Actor.hd_srv.(j);
              ctx.Actor.hd_gen.(!m) <- ctx.Actor.hd_gen.(j);
              ctx.Actor.hd_epoch.(!m) <- ctx.Actor.hd_epoch.(j)
            end;
            ctx.Actor.hd_cnt.(!m) <- cnt;
            incr m
          end
        done;
        ctx.Actor.hd_len <- !m;
        ctx.Actor.wt_len <- 0
      done;
      sh.Actor.win.(0) <- sh.Actor.win.(0) + 1
  | _ -> ()

(* Grow barrier-resized structures after churn joins. *)
let sync_capacity t =
  let sh = t.sh in
  let n = sh.Actor.net.Network.arena_len in
  Mailbox.ensure sh.Actor.mb ~handles:n;
  (match sh.Actor.cache with
  | Some c -> Obj_cache.ensure_nodes c n
  | None -> ());
  if sh.Actor.coop && Array.length sh.Actor.want_stamp < n then begin
    let a = Array.make (max n (2 * Array.length sh.Actor.want_stamp)) (-1) in
    Array.blit sh.Actor.want_stamp 0 a 0 (Array.length sh.Actor.want_stamp);
    sh.Actor.want_stamp <- a
  end;
  if Bytes.length sh.Actor.dirty < n then begin
    let b = Bytes.make (max n (2 * Bytes.length sh.Actor.dirty)) '\000' in
    Bytes.blit sh.Actor.dirty 0 b 0 (Bytes.length sh.Actor.dirty);
    sh.Actor.dirty <- b
  end

(* Node failure at a barrier: queued requests die with the mailbox, the
   generation bump turns in-flight messages into dead letters, then the
   node silently fails (repair stays lazy). *)
let kill_node t (node : Node.t) =
  let sh = t.sh in
  let h = node.Node.handle in
  let ctx = t.ctxs.(shard_of h) in
  let mb = sh.Actor.mb in
  while Mailbox.length mb h > 0 do
    let req = mb.Mailbox.r_req.(Mailbox.msg_index mb h) in
    Mailbox.advance mb h;
    ctx.Actor.dead_letter <- ctx.Actor.dead_letter + 1;
    if req >= 0 then begin
      Bytes.set sh.Actor.req_status req Actor.st_dead_letter;
      ctx.Actor.failed <- ctx.Actor.failed + 1
    end
  done;
  Mailbox.kill mb h;
  Delete.fail sh.Actor.net node

let next_work_time t =
  let e = ref infinity in
  for s = 0 to shard_count - 1 do
    let ctx = t.ctxs.(s) in
    let ft = Fiber.next_event_time ctx.Actor.sched in
    let tt = Transport.peek_time ctx.Actor.tr in
    if ft < !e then e := ft;
    if tt < !e then e := tt
  done;
  !e

(* First window boundary strictly after [e]. *)
let next_barrier t e =
  let k = Float.of_int (int_of_float (Float.floor (e /. t.window))) in
  let b = (k +. 1.) *. t.window in
  if b <= e then b +. t.window else b

let run t ~domains ~now ~on_barrier =
  let rec loop barrier =
    run_windows_parallel t ~domains ~limit:barrier;
    t.barriers <- t.barriers + 1;
    t.sh.Actor.wall.(0) <- now ();
    flush_outboxes t ~barrier;
    apply_repairs t;
    apply_cache_intents t;
    apply_hint_digest t;
    on_barrier t barrier;
    sync_capacity t;
    let e = next_work_time t in
    if e < infinity then loop (next_barrier t e)
  in
  t.sh.Actor.wall.(0) <- now ();
  let e = next_work_time t in
  if e < infinity then loop (next_barrier t e)

(* Drive the mesh to an auditable quiescent point: advance the virtual
   clock, repair every dead link and hole, drop backpointers whose
   source died, and expire stale soft state.  After this [Audit.run]
   must be clean even for a churned run. *)
let quiesce t ~clock =
  let net = t.sh.Actor.net in
  net.Network.clock <- clock;
  Network.iter_alive net (fun owner -> repair_owner net owner);
  ignore (Delete.repair_all_holes net : int);
  Network.iter_alive net (fun n ->
      List.iter
        (fun (level, src) ->
          match Network.find net src with
          | Some s when Node.is_alive s -> ()
          | _ -> Routing_table.remove_backpointer n.Node.table ~level src)
        (Routing_table.all_backpointers n.Node.table));
  ignore (Maintenance.expire_all net : int)
