(* The windowed barrier-synchronous shard engine (DESIGN.md section 9).

   Handles are partitioned over a FIXED grid of [shard_count] logical
   shards ([handle mod shard_count]); [--domains] only decides how many
   OS domains the grid is folded onto, exactly like
   [Static_build.build_streamed]'s fixed-64-shard sweep — so results are
   bit-identical for every domain count.

   Virtual time advances in windows of width [window].  Within a window
   every shard runs independently: it pumps its private transport heap
   and fiber scheduler (interleaved by head time) up to the barrier.
   Cross-shard messages buffered in outboxes during the window are
   exchanged sequentially at the barrier in shard index order, with
   delivery times floored to the barrier (a message may not land inside
   a window its target already executed).  Churn and dead-entry repair
   also happen only at barriers, in shard order, so every mutation of
   shared state is sequential and deterministically ordered. *)

open Tapestry
module Fiber = Simnet.Fiber
module Transport = Mailbox.Transport

let shard_count = 64
let shard_of h = h mod shard_count

type t = {
  sh : Actor.shared;
  ctxs : Actor.ctx array;  (* length [shard_count] *)
  window : float;
  mutable barriers : int;  (* barriers executed so far *)
}

let create ~net ~guids ~roots ~ttl ~latency ~service ~requests ~mailbox_cap
    ~seed ~window ~cache =
  if window <= 0. then invalid_arg "Shard.create: window <= 0";
  let mb =
    Mailbox.create ~cap:mailbox_cap ~handles:(max net.Network.arena_len 1)
  in
  let sh =
    Actor.make_shared ~net ~mb ~shards:shard_count ~guids ~roots ~ttl
      ~latency ~service ~requests ~cache
  in
  let ctxs =
    Array.init shard_count (fun s ->
        Actor.make_ctx sh ~shard:s
          ~rng:(Simnet.Parallel.task_rng ~seed ~task:s))
  in
  { sh; ctxs; window; barriers = 0 }

(* Interleave the shard's two event sources by head time until both are
   past [limit]: fiber events first on ties (arbitrary but fixed). *)
let rec pump ctx ~limit =
  let ft = Fiber.next_event_time ctx.Actor.sched in
  let tt = Transport.peek_time ctx.Actor.tr in
  if ft <= tt then begin
    if ft <= limit then begin
      Fiber.run_until ctx.Actor.sched ft;
      pump ctx ~limit
    end
  end
  else if tt <= limit then begin
    ignore (Transport.pop_into ctx.Actor.tr : bool);
    Actor.deliver ctx ~time:ctx.Actor.tr.Transport.o_time;
    pump ctx ~limit
  end

let run_shard_window ctx ~limit =
  pump ctx ~limit;
  (* no events remain at or before the barrier: normalize the clock *)
  Fiber.run_until ctx.Actor.sched limit

(* The ONLY binding that touches [Domain]: everything transitively
   callable from here runs concurrently on sibling domains and must obey
   the shard-confinement discipline (see lint allowlist).  Shard [s]
   always lands on domain [s / per], so a fiber suspended across a
   barrier resumes on the domain that created it. *)
let run_windows_parallel t ~domains ~limit =
  let nd =
    let d = min domains shard_count in
    if d < 1 then 1 else d
  in
  if nd = 1 then
    for s = 0 to shard_count - 1 do
      run_shard_window t.ctxs.(s) ~limit
    done
  else begin
    let per = (shard_count + nd - 1) / nd in
    let doms =
      Array.init (nd - 1) (fun k ->
          Domain.spawn (fun () ->
              let lo = (k + 1) * per in
              let hi = min shard_count ((k + 2) * per) - 1 in
              for s = lo to hi do
                run_shard_window t.ctxs.(s) ~limit
              done))
    in
    for s = 0 to min shard_count per - 1 do
      run_shard_window t.ctxs.(s) ~limit
    done;
    Array.iter Domain.join doms
  end

(* ---- barrier steps: sequential, shard-order, deterministic ---- *)

let flush_outboxes t ~barrier =
  for s = 0 to shard_count - 1 do
    let ob = t.ctxs.(s).Actor.out in
    for i = 0 to ob.Mailbox.Outbox.blen - 1 do
      let h = ob.Mailbox.Outbox.b_h.(i) in
      let time = ob.Mailbox.Outbox.b_time.(i) in
      let time = if time < barrier then barrier else time in
      Transport.push
        t.ctxs.(shard_of h).Actor.tr
        ~time ~h
        ~g:ob.Mailbox.Outbox.b_g.(i)
        ~kind:ob.Mailbox.Outbox.b_kind.(i)
        ~req:ob.Mailbox.Outbox.b_req.(i)
        ~oi:ob.Mailbox.Outbox.b_oi.(i)
        ~level:ob.Mailbox.Outbox.b_level.(i)
        ~prev:ob.Mailbox.Outbox.b_prev.(i)
        ~src:ob.Mailbox.Outbox.b_src.(i)
    done;
    Mailbox.Outbox.clear ob
  done

(* Lazy repair of one owner's dead routing entries, Section 5.2 style:
   collect the distinct dead neighbors, then run the rich on_dead
   handler for each (drop link, promote secondary, fill holes, re-push
   pointers). *)
let repair_owner net (owner : Node.t) =
  if Node.is_alive owner then begin
    let dead = ref [] in
    Routing_table.iter_entries owner.Node.table
      (fun ~level:_ ~digit:_ (e : Routing_table.entry) ->
        match Network.find net e.Routing_table.id with
        | Some n when Node.is_alive n -> ()
        | _ ->
            if
              not
                (List.exists
                   (fun d -> Node_id.equal d e.Routing_table.id)
                   !dead)
            then dead := e.Routing_table.id :: !dead);
    List.iter
      (fun d -> Delete.on_dead_repair net ~owner ~dead:d)
      (List.rev !dead)
  end

let apply_repairs t =
  let net = t.sh.Actor.net in
  for s = 0 to shard_count - 1 do
    let ctx = t.ctxs.(s) in
    for i = 0 to ctx.Actor.dirty_len - 1 do
      let h = ctx.Actor.dirty_h.(i) in
      Bytes.set t.sh.Actor.dirty h '\000';
      repair_owner net (Network.node_of_handle net h)
    done;
    ctx.Actor.dirty_len <- 0
  done

(* Apply the windows' buffered cache intents sequentially, in shard
   order, bumps -> evicts -> fills: a fill whose epoch snapshot predates
   a same-window unpublish lands already-stale, and an evict cannot be
   undone by a same-window fill of the entry it just retracted. *)
let apply_cache_intents t =
  match t.sh.Actor.cache with
  | None -> ()
  | Some c ->
      for s = 0 to shard_count - 1 do
        let ctx = t.ctxs.(s) in
        for i = 0 to ctx.Actor.ep_len - 1 do
          Obj_cache.bump_epoch c ~key:ctx.Actor.ep_key.(i)
            ~srv:ctx.Actor.ep_srv.(i)
        done;
        ctx.Actor.ep_len <- 0
      done;
      for s = 0 to shard_count - 1 do
        let ctx = t.ctxs.(s) in
        for i = 0 to ctx.Actor.ev_len - 1 do
          Obj_cache.evict c ~h:ctx.Actor.ev_h.(i) ~key:ctx.Actor.ev_key.(i)
            ~server:ctx.Actor.ev_srv.(i)
        done;
        ctx.Actor.ev_len <- 0
      done;
      for s = 0 to shard_count - 1 do
        let ctx = t.ctxs.(s) in
        for i = 0 to ctx.Actor.fi_len - 1 do
          Obj_cache.insert_snap c ~h:ctx.Actor.fi_h.(i)
            ~key:ctx.Actor.fi_key.(i) ~server:ctx.Actor.fi_srv.(i)
            ~gen:ctx.Actor.fi_gen.(i) ~epoch:ctx.Actor.fi_epoch.(i)
        done;
        ctx.Actor.fi_len <- 0
      done

(* Grow barrier-resized structures after churn joins. *)
let sync_capacity t =
  let sh = t.sh in
  let n = sh.Actor.net.Network.arena_len in
  Mailbox.ensure sh.Actor.mb ~handles:n;
  (match sh.Actor.cache with
  | Some c -> Obj_cache.ensure_nodes c n
  | None -> ());
  if Bytes.length sh.Actor.dirty < n then begin
    let b = Bytes.make (max n (2 * Bytes.length sh.Actor.dirty)) '\000' in
    Bytes.blit sh.Actor.dirty 0 b 0 (Bytes.length sh.Actor.dirty);
    sh.Actor.dirty <- b
  end

(* Node failure at a barrier: queued requests die with the mailbox, the
   generation bump turns in-flight messages into dead letters, then the
   node silently fails (repair stays lazy). *)
let kill_node t (node : Node.t) =
  let sh = t.sh in
  let h = node.Node.handle in
  let ctx = t.ctxs.(shard_of h) in
  let mb = sh.Actor.mb in
  while Mailbox.length mb h > 0 do
    let req = mb.Mailbox.r_req.(Mailbox.msg_index mb h) in
    Mailbox.advance mb h;
    ctx.Actor.dead_letter <- ctx.Actor.dead_letter + 1;
    if req >= 0 then begin
      Bytes.set sh.Actor.req_status req Actor.st_dead_letter;
      ctx.Actor.failed <- ctx.Actor.failed + 1
    end
  done;
  Mailbox.kill mb h;
  Delete.fail sh.Actor.net node

let next_work_time t =
  let e = ref infinity in
  for s = 0 to shard_count - 1 do
    let ctx = t.ctxs.(s) in
    let ft = Fiber.next_event_time ctx.Actor.sched in
    let tt = Transport.peek_time ctx.Actor.tr in
    if ft < !e then e := ft;
    if tt < !e then e := tt
  done;
  !e

(* First window boundary strictly after [e]. *)
let next_barrier t e =
  let k = Float.of_int (int_of_float (Float.floor (e /. t.window))) in
  let b = (k +. 1.) *. t.window in
  if b <= e then b +. t.window else b

let run t ~domains ~now ~on_barrier =
  let rec loop barrier =
    run_windows_parallel t ~domains ~limit:barrier;
    t.barriers <- t.barriers + 1;
    t.sh.Actor.wall.(0) <- now ();
    flush_outboxes t ~barrier;
    apply_repairs t;
    apply_cache_intents t;
    on_barrier t barrier;
    sync_capacity t;
    let e = next_work_time t in
    if e < infinity then loop (next_barrier t e)
  in
  t.sh.Actor.wall.(0) <- now ();
  let e = next_work_time t in
  if e < infinity then loop (next_barrier t e)

(* Drive the mesh to an auditable quiescent point: advance the virtual
   clock, repair every dead link and hole, drop backpointers whose
   source died, and expire stale soft state.  After this [Audit.run]
   must be clean even for a churned run. *)
let quiesce t ~clock =
  let net = t.sh.Actor.net in
  net.Network.clock <- clock;
  Network.iter_alive net (fun owner -> repair_owner net owner);
  ignore (Delete.repair_all_holes net : int);
  Network.iter_alive net (fun n ->
      List.iter
        (fun (level, src) ->
          match Network.find net src with
          | Some s when Node.is_alive s -> ()
          | _ -> Routing_table.remove_backpointer n.Node.table ~level src)
        (Routing_table.all_backpointers n.Node.table));
  ignore (Maintenance.expire_all net : int)
