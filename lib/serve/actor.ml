(* Fiber-per-node actors: mailbox drain loops and the per-message
   protocol state machine (DESIGN.md section 9).

   Each alive node is a latent actor: when a message lands in its
   mailbox and no drain fiber is active, one is spawned on the owning
   shard's scheduler.  The fiber pops messages FIFO, models [service]
   virtual seconds of local processing per message, executes the hop
   (pointer probe, deposit, removal, or replica check), and sends the
   follow-up message — so a request's hop sequence is real inter-actor
   traffic, each hop charged [latency * metric distance] like
   [Async_ops.hop].

   Opcodes: 0 LOCATE walks toward the object's root until a usable
   pointer redirects it (FETCH to the closest live server, Section 2.4's
   closest-replica rule); 1 FETCH completes at the server iff it still
   stores the replica; 2 PUBLISH deposits a pointer per hop with the
   previous-hop backlink (Figure 2 / Figure 9's "previous"), completing
   at the root; 3 UNPUBLISH retracts along the same walk; 4 LOCATE_NC is
   the cache-free locate a request falls back to after exhausting its
   stale-redirect budget.

   Object caching (PR 9, DESIGN.md section 10).  With [cache = Some _],
   every LOCATE hop records itself in the request's path slice and
   probes its own node's cache line before the pointer store; a valid
   entry (matching object epoch, matching server mailbox generation,
   alive server) redirects a FETCH immediately.  A successful FETCH logs
   fill intents for every recorded path node — applied at the next
   barrier in shard order, so cross-node cache state stays bit-identical
   for any [--domains].  Fills are ONLY sourced from successful fetches:
   the server is authoritative for its own replica set, so an
   epoch-current cache entry can name a replica-less server only within
   the window of the racing unpublish (whose epoch bump lands at that
   same barrier), never at a quiescent audit point.  A FETCH that
   arrives after the replica left retracts the offending entry (evict
   intent) and resumes the climb from the server with its redirect
   count bumped; after [rc_max] such redirects it switches to LOCATE_NC.
   LOCATE packs that redirect count into the level field's high bits —
   zero at [--cache 0], keeping every message byte-identical to the
   uncached engine.

   The same recovery makes zero-churn serving loss-free: the uncached
   engine fails a request whose pointer-redirected FETCH races an
   in-flight unpublish retraction (BENCH_serve.json's `failed` at
   kill_rate=0); with caching on, that fetch re-climbs from the server
   instead of failing.

   Shard confinement: a dispatch only mutates state owned by the shard
   it runs on (the target node's pointer store / replica set — nodes are
   partitioned by handle), reads the frozen routing mesh, and writes its
   own shard's counters, histograms, transport and outbox.  Dead
   neighbors noticed during digit scans are not purged mid-window (that
   would mutate shared tables and the global cost accumulator the way
   [Route.purge] does); the owner is recorded in the dirty set and the
   shard barrier runs [Delete.on_dead_repair] sequentially.

   This file is on the typed lint's hot-path list: the per-message path
   allocates nothing but the option values the pointer-store API
   returns; scratch results travel through mutable ctx fields. *)

open Tapestry
module Fiber = Simnet.Fiber
module Cost = Simnet.Cost
module Hist = Simnet.Stats.Hist

let op_locate = 0
let op_fetch = 1
let op_publish = 2
let op_unpublish = 3
let op_locate_nc = 4

(* LOCATE level packing: low bits walk level, high bits redirect count.
   FETCH reuses the level field for the redirect count alone. *)
let rc_shift = 8
let level_mask = (1 lsl rc_shift) - 1
let rc_max = 2

(* Recorded locate hops per request (fill-intent targets).  Walks are
   O(log n) = [digits]; the slack covers recovery re-climbs. *)
let path_cap = 12

(* request_status values (one byte per request) *)
let st_pending = '\000'
let st_ok = '\001'
let st_failed = '\002'
let st_dropped = '\003'
let st_dead_letter = '\004'

type shared = {
  net : Network.t;
  mb : Mailbox.t;
  shards : int;  (* fixed partition count, independent of --domains *)
  guids : Node_id.t array;  (* oi = obj * roots + r -> salted guid psi_r *)
  roots : int;  (* config root_set_size *)
  ttl : float;  (* pointer expiry horizon for serve-time deposits *)
  latency : float;  (* virtual seconds per unit of metric distance *)
  service : float;  (* virtual seconds an actor spends per message *)
  digits : int;
  base : int;
  req_t0 : float array;  (* per request: virtual injection time *)
  req_w0 : float array;  (* per request: wall stamp of injection window *)
  req_status : Bytes.t;
  wall : float array;  (* wall.(0): stamp of the current window, barrier-written *)
  mutable dirty : Bytes.t;  (* per handle: 1 if queued for dead-entry repair *)
  cache : Obj_cache.t option;
      (* per-node object caches; probes/touches are own-line (shard-
         confined), cross-node fills/evicts/epoch bumps ride the ctx
         intent buffers to the barrier *)
  req_path : int array;
      (* requests * path_cap recorded locate hops; a request's hops are
         causally ordered across shards (cross-shard delivery waits for
         the barrier), so these disjoint-slice writes are race-free.
         Empty at --cache 0. *)
  req_plen : Bytes.t;  (* per request: hops recorded (saturates at path_cap) *)
  (* ---- cooperative hint exchange (PR 10); every field below is inert
     when [coop = false], keeping the engine byte-identical to PR 9 ---- *)
  coop : bool;
  hint_k : int;  (* top-k digest entries a shard offers its neighbors *)
  hint_budget : int;  (* max hints one node line accepts per barrier *)
  mutable want_stamp : int array;
      (* per handle: window index of the node's last logged want; a
         node's dispatches run on its owner shard, so writes are
         disjoint by construction.  Empty when coop is off. *)
  win : int array;  (* win.(0): window counter, barrier-written *)
}

type ctx = {
  sh : shared;
  shard : int;
  sched : Fiber.t;
  tr : Mailbox.Transport.tr;
  out : Mailbox.Outbox.ob;
  rng : Simnet.Rng.t;  (* injector stream; dispatch never draws from it *)
  cost : Cost.t;
  hist_v : Hist.h;  (* virtual-time latency of completed requests *)
  hist_w : Hist.h;  (* wall-time latency (info only, machine-dependent) *)
  mutable injected : int;
  mutable completed : int;
  mutable failed : int;
  mutable dropped : int;
  mutable dead_letter : int;
  mutable delivered : int;
  mutable dirty_h : int array;  (* owners with dead table entries, barrier-drained *)
  mutable dirty_len : int;
  (* allocation-free scan scratch *)
  mutable scan_h : int;
  mutable scan_level : int;
  mutable best_h : int;
  mutable best_d : float;
  mutable pred_now : float;
  mutable cur : Node.t;  (* node whose dispatch is running *)
  mutable sel : Pointer_store.record -> unit;
      (* preallocated best-server folder; assigned once in [make_ctx] *)
  tally : Simnet.Stats.Tally.t;  (* cache hit/miss/stale/... counters *)
  (* barrier-applied cache intent buffers (parallel arrays) *)
  mutable fi_h : int array;  (* fill: target cache line *)
  mutable fi_key : int array;
  mutable fi_srv : int array;
  mutable fi_gen : int array;
  mutable fi_epoch : int array;  (* epoch snapshot at intent-log time *)
  mutable fi_len : int;
  mutable ev_h : int array;  (* evict: holder line *)
  mutable ev_key : int array;
  mutable ev_srv : int array;  (* only retract if still naming this server *)
  mutable ev_len : int;
  mutable ep_key : int array;  (* epoch bumps (unpublish origins) *)
  mutable ep_srv : int array;  (* ... of this retracting server *)
  mutable ep_len : int;
  (* cooperative hint digest: per-window (key, srv, gen, epoch, count)
     accumulator of this shard's cache hits, bounded at [digest_cap]
     distinct pairs; the top [hint_k] by count are what neighbor shards
     read at the barrier *)
  mutable hd_key : int array;
  mutable hd_srv : int array;
  mutable hd_gen : int array;
  mutable hd_epoch : int array;
  mutable hd_cnt : int array;
  mutable hd_len : int;
  (* want ring: nodes of this shard that missed this window (one entry
     per node per window via [want_stamp]) — the barrier offers each
     the neighbor digests' hottest hints *)
  mutable wt_h : int array;
  mutable wt_len : int;
  (* proactive-sweep cursor: each barrier also offers the digests to a
     rotating slice of the shard's own handles, so client-edge nodes go
     warm for the global head BEFORE their first miss — at large n a
     client injects so few requests that waiting for a miss to want
     forfeits most of a hint's useful life *)
  mutable sweep_cursor : int;
}

(* Distinct (key, server) pairs a shard's digest tracks per window.
   Windows are short (tens of requests per shard), so collisions with
   the cap are rare; overflow drops the coldest tail by construction —
   entries are appended on first hit, and only the top [hint_k] are
   ever exported. *)
let digest_cap = 64

(* [@alloc_ok]: one shared record per run. *)
let[@alloc_ok] make_shared ~net ~mb ~shards ~guids ~roots ~ttl ~latency
    ~service ~requests ~cache ~coop ~hint_k ~hint_budget =
  let cfg = net.Network.config in
  let coop = coop && Option.is_some cache && hint_k > 0 && hint_budget > 0 in
  {
    net;
    mb;
    shards;
    guids;
    roots;
    ttl;
    latency;
    service;
    digits = cfg.Config.id_digits;
    base = cfg.Config.base;
    req_t0 = Array.make (max requests 1) 0.;
    req_w0 = Array.make (max requests 1) 0.;
    req_status = Bytes.make (max requests 1) st_pending;
    wall = Array.make 1 0.;
    dirty = Bytes.make (max net.Network.arena_len 1) '\000';
    cache;
    req_path =
      (match cache with
      | Some _ -> Array.make (max requests 1 * path_cap) 0
      | None -> [||]);
    req_plen =
      Bytes.make (match cache with Some _ -> max requests 1 | None -> 1) '\000';
    coop;
    hint_k;
    hint_budget;
    want_stamp =
      (if coop then Array.make (max net.Network.arena_len 1) (-1) else [||]);
    win = Array.make 1 0;
  }

(* [@alloc_ok]: one ctx record (plus its selector closure) per shard per
   run; the closure reads/writes only ctx scratch fields, so dispatches
   reuse it without allocating. *)
let[@alloc_ok] make_ctx sh ~shard ~rng =
  let ctx =
    {
      sh;
      shard;
      sched = Fiber.create ();
      tr = Mailbox.Transport.create ();
      out = Mailbox.Outbox.create ();
      rng;
      cost = Cost.make ();
      hist_v = Hist.create ();
      hist_w = Hist.create ();
      injected = 0;
      completed = 0;
      failed = 0;
      dropped = 0;
      dead_letter = 0;
      delivered = 0;
      dirty_h = Array.make 16 0;
      dirty_len = 0;
      scan_h = -1;
      scan_level = 0;
      best_h = -1;
      best_d = infinity;
      pred_now = 0.;
      cur = Network.node_of_handle sh.net 0;
      sel = (fun _ -> ());
      tally = Simnet.Stats.Tally.create ();
      fi_h = [||];
      fi_key = [||];
      fi_srv = [||];
      fi_gen = [||];
      fi_epoch = [||];
      fi_len = 0;
      ev_h = [||];
      ev_key = [||];
      ev_srv = [||];
      ev_len = 0;
      ep_key = [||];
      ep_srv = [||];
      ep_len = 0;
      hd_key = [||];
      hd_srv = [||];
      hd_gen = [||];
      hd_epoch = [||];
      hd_cnt = [||];
      hd_len = 0;
      wt_h = [||];
      wt_len = 0;
      sweep_cursor = 0;
    }
  in
  (ctx.sel <-
     (fun (r : Pointer_store.record) ->
       if r.Pointer_store.expires >= ctx.pred_now then begin
         match Network.find sh.net r.Pointer_store.server with
         | Some srv when Node.is_alive srv ->
             let d = Network.dist sh.net ctx.cur srv in
             if d < ctx.best_d then begin
               ctx.best_d <- d;
               ctx.best_h <- srv.Node.handle
             end
         | _ -> ()
       end));
  ctx

(* Count trailing zeros of a non-zero mask, de Bruijn multiply — same
   table as Route's digit scan (not exported there; 32 small ints). *)
let ntz_table =
  [|
    0; 1; 28; 2; 29; 14; 24; 3; 30; 22; 20; 15; 25; 17; 4; 8; 31; 27; 13; 23;
    21; 19; 16; 7; 26; 12; 18; 6; 11; 5; 10; 9;
  |]

let ntz x = ntz_table.((((x land -x) * 0x077CB531) land 0xFFFFFFFF) lsr 27)

(* [@alloc_ok]: the dirty list doubles rarely; everything else is int
   stores. *)
let[@alloc_ok] note_dirty ctx (owner : Node.t) =
  let h = owner.Node.handle in
  if h >= 0 && Bytes.get ctx.sh.dirty h = '\000' then begin
    Bytes.set ctx.sh.dirty h '\001';
    if ctx.dirty_len >= Array.length ctx.dirty_h then begin
      let a = Array.make (Array.length ctx.dirty_h * 2) 0 in
      Array.blit ctx.dirty_h 0 a 0 ctx.dirty_len;
      ctx.dirty_h <- a
    end;
    ctx.dirty_h.(ctx.dirty_len) <- h;
    ctx.dirty_len <- ctx.dirty_len + 1
  end

(* First alive entry of a slot, read-only: dead entries are skipped (and
   the owner queued for barrier repair) instead of purged in place. *)
let rec slot_first_alive ctx (node : Node.t) ~level ~digit ~len k =
  if k >= len then -1
  else begin
    let table = node.Node.table in
    let h = Routing_table.slot_handle table ~level ~digit ~k in
    if h >= 0 then begin
      let n = Network.node_of_handle ctx.sh.net h in
      if Node.is_alive n then h
      else begin
        note_dirty ctx node;
        slot_first_alive ctx node ~level ~digit ~len (k + 1)
      end
    end
    else begin
      (* entries without a handle exist only in test-injected tables *)
      let id = Routing_table.slot_id table ~level ~digit ~k in
      match Network.find ctx.sh.net id with
      | Some n when Node.is_alive n -> n.Node.handle
      | _ ->
          note_dirty ctx node;
          slot_first_alive ctx node ~level ~digit ~len (k + 1)
    end
  end

(* Wrap-order digit scan over the filled mask — [Route.native_scan]'s
   order exactly, minus purging. *)
let rec scan_digit ctx (node : Node.t) ~level ~want tries =
  let base = ctx.sh.base in
  if tries >= base then -1
  else begin
    let m = Routing_table.filled_mask node.Node.table ~level in
    let start = want + tries in
    let start = if start >= base then start - base else start in
    let m = ((m lsr start) lor (m lsl (base - start))) land ((1 lsl base) - 1) in
    if m = 0 then -1
    else begin
      let tries = tries + ntz m in
      if tries >= base then -1
      else begin
        let j = want + tries in
        let j = if j >= base then j - base else j in
        let len = Routing_table.slot_len node.Node.table ~level ~digit:j in
        let h = slot_first_alive ctx node ~level ~digit:j ~len 0 in
        if h >= 0 then h else scan_digit ctx node ~level ~want (tries + 1)
      end
    end
  end

(* Next hop of the walk toward [guid] starting at [level]: sets
   [scan_h] to the next node's handle and [scan_level] to the level the
   walk resumes at there, or [scan_h = -1] when [node] is the walk's
   endpoint (its surrogate root). *)
let rec next_hop ctx (node : Node.t) guid level =
  if level >= ctx.sh.digits then ctx.scan_h <- -1
  else begin
    let want = Node_id.digit guid level in
    let h = scan_digit ctx node ~level ~want 0 in
    if h < 0 then ctx.scan_h <- -1
    else if h = node.Node.handle then next_hop ctx node guid (level + 1)
    else begin
      ctx.scan_h <- h;
      ctx.scan_level <- level + 1
    end
  end

(* Send: same-shard targets go straight into this shard's transport;
   cross-shard targets are buffered in the outbox until the barrier.
   The target's mailbox generation is captured now — churn at a later
   barrier turns the message into a dead letter. *)
let send ctx ~time ~h ~kind ~req ~oi ~level ~prev ~src =
  let sh = ctx.sh in
  let g = Mailbox.generation sh.mb h in
  if h mod sh.shards = ctx.shard then
    Mailbox.Transport.push ctx.tr ~time ~h ~g ~kind ~req ~oi ~level ~prev ~src
  else Mailbox.Outbox.push ctx.out ~time ~h ~g ~kind ~req ~oi ~level ~prev ~src

let complete_ok ctx ~now ~req =
  if req >= 0 then begin
    let sh = ctx.sh in
    Bytes.set sh.req_status req st_ok;
    Hist.add ctx.hist_v (now -. sh.req_t0.(req));
    Hist.add ctx.hist_w (sh.wall.(0) -. sh.req_w0.(req));
    ctx.completed <- ctx.completed + 1
  end

let complete_failed ctx ~req =
  if req >= 0 then begin
    Bytes.set ctx.sh.req_status req st_failed;
    ctx.failed <- ctx.failed + 1
  end

(* One hop of distance [d] from [node] to handle [h]: charge the shard
   cost and schedule delivery after the virtual link latency. *)
let hop ctx (node : Node.t) ~now ~h ~kind ~req ~oi ~level ~prev ~src =
  let sh = ctx.sh in
  let d = Network.dist sh.net node (Network.node_of_handle sh.net h) in
  Cost.send ctx.cost ~dist:d;
  send ctx ~time:(now +. (sh.latency *. d)) ~h ~kind ~req ~oi ~level ~prev ~src

(* ---- cache intent buffers: logged mid-window, applied at the barrier
   in shard order (Shard.apply_cache_intents) ---- *)

(* [@alloc_ok]: the buffers double rarely; pushes are int stores. *)
let[@alloc_ok] grow_int a len =
  if len >= Array.length a then begin
    let b = Array.make (max 16 (2 * Array.length a)) 0 in
    Array.blit a 0 b 0 len;
    b
  end
  else a

let push_fill ctx ~h ~key ~srv ~gen ~epoch =
  ctx.fi_h <- grow_int ctx.fi_h ctx.fi_len;
  ctx.fi_key <- grow_int ctx.fi_key ctx.fi_len;
  ctx.fi_srv <- grow_int ctx.fi_srv ctx.fi_len;
  ctx.fi_gen <- grow_int ctx.fi_gen ctx.fi_len;
  ctx.fi_epoch <- grow_int ctx.fi_epoch ctx.fi_len;
  ctx.fi_h.(ctx.fi_len) <- h;
  ctx.fi_key.(ctx.fi_len) <- key;
  ctx.fi_srv.(ctx.fi_len) <- srv;
  ctx.fi_gen.(ctx.fi_len) <- gen;
  ctx.fi_epoch.(ctx.fi_len) <- epoch;
  ctx.fi_len <- ctx.fi_len + 1

let push_evict ctx ~h ~key ~srv =
  ctx.ev_h <- grow_int ctx.ev_h ctx.ev_len;
  ctx.ev_key <- grow_int ctx.ev_key ctx.ev_len;
  ctx.ev_srv <- grow_int ctx.ev_srv ctx.ev_len;
  ctx.ev_h.(ctx.ev_len) <- h;
  ctx.ev_key.(ctx.ev_len) <- key;
  ctx.ev_srv.(ctx.ev_len) <- srv;
  ctx.ev_len <- ctx.ev_len + 1

let push_epoch ctx ~key ~srv =
  ctx.ep_key <- grow_int ctx.ep_key ctx.ep_len;
  ctx.ep_srv <- grow_int ctx.ep_srv ctx.ep_len;
  ctx.ep_key.(ctx.ep_len) <- key;
  ctx.ep_srv.(ctx.ep_len) <- srv;
  ctx.ep_len <- ctx.ep_len + 1

(* Digest a cache hit: bump the (key, srv) pair's window count, or
   append it while the window's table has room.  Linear scan over at
   most [digest_cap] entries, shard-confined. *)
let rec digest_scan ctx ~key ~srv j =
  if j >= ctx.hd_len then -1
  else if ctx.hd_key.(j) = key && ctx.hd_srv.(j) = srv then j
  else digest_scan ctx ~key ~srv (j + 1)

let log_digest ctx ~key ~srv ~gen ~epoch =
  let j = digest_scan ctx ~key ~srv 0 in
  if j >= 0 then ctx.hd_cnt.(j) <- ctx.hd_cnt.(j) + 1
  else if ctx.hd_len < digest_cap then begin
    ctx.hd_key <- grow_int ctx.hd_key ctx.hd_len;
    ctx.hd_srv <- grow_int ctx.hd_srv ctx.hd_len;
    ctx.hd_gen <- grow_int ctx.hd_gen ctx.hd_len;
    ctx.hd_epoch <- grow_int ctx.hd_epoch ctx.hd_len;
    ctx.hd_cnt <- grow_int ctx.hd_cnt ctx.hd_len;
    ctx.hd_key.(ctx.hd_len) <- key;
    ctx.hd_srv.(ctx.hd_len) <- srv;
    ctx.hd_gen.(ctx.hd_len) <- gen;
    ctx.hd_epoch.(ctx.hd_len) <- epoch;
    ctx.hd_cnt.(ctx.hd_len) <- 1;
    ctx.hd_len <- ctx.hd_len + 1
  end

(* A cache miss marks the node as wanting hints — once per window per
   node ([want_stamp] dedup), so the want ring is bounded by the
   shard's active node set. *)
let log_want ctx (node : Node.t) =
  let sh = ctx.sh in
  let h = node.Node.handle in
  let w = sh.win.(0) in
  if sh.want_stamp.(h) <> w then begin
    sh.want_stamp.(h) <- w;
    ctx.wt_h <- grow_int ctx.wt_h ctx.wt_len;
    ctx.wt_h.(ctx.wt_len) <- h;
    ctx.wt_len <- ctx.wt_len + 1
  end

(* Pointer probe + surrogate climb, shared by LOCATE (after a cache miss)
   and LOCATE_NC.  [wl] is the walk level, [rc] the request's redirect
   count (re-packed into outgoing locate levels; 0 when cache is off, so
   the uncached message stream is untouched). *)
let locate_climb ctx (node : Node.t) ~now ~req ~oi ~wl ~rc ~src ~base_guid ~nc =
  let sh = ctx.sh in
  (* a usable pointer redirects the walk to the closest live server *)
  ctx.pred_now <- now;
  ctx.cur <- node;
  ctx.best_h <- -1;
  ctx.best_d <- infinity;
  Pointer_store.iter_guid node.Node.pointers base_guid ~f:ctx.sel;
  if ctx.best_h >= 0 then
    hop ctx node ~now ~h:ctx.best_h ~kind:op_fetch ~req ~oi ~level:rc
      ~prev:(-1) ~src:ctx.best_h
  else begin
    next_hop ctx node sh.guids.(oi) wl;
    if ctx.scan_h >= 0 then
      hop ctx node ~now ~h:ctx.scan_h
        ~kind:(if nc then op_locate_nc else op_locate)
        ~req ~oi
        ~level:
          (if nc then
             (* cooperative mode threads the redirect count through
                LOCATE_NC levels too, so the S1 retry (rc_max + 1) is
                distinguishable from the first cache-free climb; with
                coop off the high bits stay zero, as in PR 9 *)
             if sh.coop then ctx.scan_level lor (rc lsl rc_shift)
             else ctx.scan_level
           else ctx.scan_level lor (rc lsl rc_shift))
        ~prev:(-1) ~src
    else
      (* reached the root without intersecting a publish path *)
      complete_failed ctx ~req
  end

let rec dispatch ctx (node : Node.t) ~now ~kind ~req ~oi ~level ~prev ~src =
  let sh = ctx.sh in
  let base_oi = oi - (oi mod sh.roots) in
  let base_guid = sh.guids.(base_oi) in
  if kind = op_locate then begin
    let wl = level land level_mask in
    let rc = level lsr rc_shift in
    match sh.cache with
    | None -> locate_climb ctx node ~now ~req ~oi ~wl ~rc ~src ~base_guid ~nc:false
    | Some c ->
        (* record this hop for the fill unwind *)
        if req >= 0 then begin
          let plen = Char.code (Bytes.get sh.req_plen req) in
          if plen < path_cap then begin
            sh.req_path.((req * path_cap) + plen) <- node.Node.handle;
            Bytes.set sh.req_plen req (Char.chr (plen + 1))
          end
        end;
        let key = base_oi / sh.roots in
        let i = Obj_cache.probe c ~h:node.Node.handle ~key in
        if i >= 0 then begin
          let srv = Obj_cache.probe_srv c i in
          if
            Mailbox.generation sh.mb srv = Obj_cache.probe_gen c i
            && Node.is_alive (Network.node_of_handle sh.net srv)
          then begin
            (* epoch, generation and liveness all current: redirect.
               [prev] carries this holder so a lying entry can be
               retracted by the fetch. *)
            ctx.tally.hits <- ctx.tally.hits + 1;
            if sh.coop then begin
              if Obj_cache.probe_is_hint c i then
                ctx.tally.hint_hits <- ctx.tally.hint_hits + 1;
              log_digest ctx ~key ~srv ~gen:(Obj_cache.probe_gen c i)
                ~epoch:(Obj_cache.probe_epoch c i)
            end;
            hop ctx node ~now ~h:srv ~kind:op_fetch ~req ~oi ~level:rc
              ~prev:node.Node.handle ~src:srv
          end
          else begin
            (* the server died (handles are never reused, so a
               generation mismatch means the same): own-line evict *)
            Obj_cache.evict_at c i;
            ctx.tally.stale <- ctx.tally.stale + 1;
            ctx.tally.evicts <- ctx.tally.evicts + 1;
            if sh.coop then log_want ctx node;
            locate_climb ctx node ~now ~req ~oi ~wl ~rc ~src ~base_guid
              ~nc:false
          end
        end
        else begin
          if i = -2 then begin
            (* epoch-stale entry self-evicted by the probe *)
            ctx.tally.stale <- ctx.tally.stale + 1;
            ctx.tally.evicts <- ctx.tally.evicts + 1
          end
          else ctx.tally.misses <- ctx.tally.misses + 1;
          if sh.coop then log_want ctx node;
          locate_climb ctx node ~now ~req ~oi ~wl ~rc ~src ~base_guid ~nc:false
        end
  end
  else if kind = op_fetch then begin
    if Node.stores_replica node base_guid then begin
      complete_ok ctx ~now ~req;
      (* unwind: offer this server to every recorded hop of the path.
         The epoch snapshot is taken NOW — a racing unpublish's bump is
         applied before fills at the barrier, so such a fill lands
         already-stale instead of masking the retraction. *)
      match sh.cache with
      | Some c when req >= 0 ->
          let key = base_oi / sh.roots in
          let self = node.Node.handle in
          let ep = Obj_cache.epoch_of c ~key ~srv:self in
          let gen = Mailbox.generation sh.mb self in
          let plen = Char.code (Bytes.get sh.req_plen req) in
          (* coop bounds the unwind to [hint_budget] deposits; keeping
             the FIRST recorded hops prefers the client side of the
             walk, whose warmth shortens the next climb the most *)
          let plen = if sh.coop then min plen sh.hint_budget else plen in
          for k = 0 to plen - 1 do
            let tgt = sh.req_path.((req * path_cap) + k) in
            if tgt <> self then begin
              push_fill ctx ~h:tgt ~key ~srv:self ~gen ~epoch:ep;
              ctx.tally.fills <- ctx.tally.fills + 1
            end
          done
      | _ -> ()
    end
    else begin
      (* the replica left between redirect and arrival (cached shortcut
         gone stale, or a pointer racing its unpublish retraction) *)
      let rc = level in
      match sh.cache with
      | Some _ when rc < rc_max ->
          if prev >= 0 then begin
            (* retract the lying entry at its holder *)
            push_evict ctx ~h:prev ~key:(base_oi / sh.roots)
              ~srv:node.Node.handle;
            ctx.tally.stale <- ctx.tally.stale + 1;
            ctx.tally.evicts <- ctx.tally.evicts + 1
          end;
          (* recover: resume the search from this server instead of
             failing the request; after rc_max redirects, cache-free *)
          ctx.tally.recoveries <- ctx.tally.recoveries + 1;
          let rc = rc + 1 in
          if rc >= rc_max then
            dispatch ctx node ~now ~kind:op_locate_nc ~req ~oi ~level:0
              ~prev:(-1) ~src
          else
            dispatch ctx node ~now ~kind:op_locate ~req ~oi
              ~level:(rc lsl rc_shift) ~prev:(-1) ~src
      | Some _ when sh.coop && rc = rc_max ->
          (* S1: even the cache-free climb can land its FETCH just as
             the replica's unpublish retraction passes it.  Retry the
             surrogate climb once more from this server (rc_max + 1
             marks the chain as already-retried) before giving up. *)
          ctx.tally.recoveries <- ctx.tally.recoveries + 1;
          dispatch ctx node ~now ~kind:op_locate_nc ~req ~oi
            ~level:((rc_max + 1) lsl rc_shift) ~prev:(-1) ~src
      | _ -> complete_failed ctx ~req
    end
  end
  else if kind = op_publish then begin
    if prev < 0 then Node.add_replica node base_guid;
    let server_id = (Network.node_of_handle sh.net src).Node.id in
    let previous =
      if prev < 0 then None
      else Some (Network.node_of_handle sh.net prev).Node.id
    in
    ignore
      (Pointer_store.store node.Node.pointers ~guid:base_guid
         ~server:server_id ~root_idx:(oi - base_oi) ~previous
         ~expires:(now +. sh.ttl));
    next_hop ctx node sh.guids.(oi) level;
    if ctx.scan_h >= 0 then
      hop ctx node ~now ~h:ctx.scan_h ~kind:op_publish ~req ~oi
        ~level:ctx.scan_level ~prev:node.Node.handle ~src
    else complete_ok ctx ~now ~req
  end
  else if kind = op_unpublish then begin
    if prev < 0 then begin
      Node.remove_replica node base_guid;
      (* origin of the retraction: invalidate cached shortcuts naming
         this (object, server) pair — the origin node IS the server
         (logged on the base oi only; root walks oi > base_oi share the
         same key) *)
      match sh.cache with
      | Some _ when oi = base_oi ->
          push_epoch ctx ~key:(base_oi / sh.roots) ~srv:node.Node.handle
      | _ -> ()
    end;
    let server_id = (Network.node_of_handle sh.net src).Node.id in
    ignore
      (Pointer_store.remove node.Node.pointers ~guid:base_guid
         ~server:server_id ~root_idx:(oi - base_oi));
    next_hop ctx node sh.guids.(oi) level;
    if ctx.scan_h >= 0 then
      hop ctx node ~now ~h:ctx.scan_h ~kind:op_unpublish ~req ~oi
        ~level:ctx.scan_level ~prev:node.Node.handle ~src
    else complete_ok ctx ~now ~req
  end
  else begin
    (* op_locate_nc: the cache-free fallback climb.  Its FETCH carries
       the redirect count ([rc_max], or [rc_max + 1] on the coop S1
       retry), so a further stale arrival fails plainly.  With coop off
       the level's high bits are always zero and this reduces to PR 9's
       [~wl:level ~rc:rc_max]. *)
    let rc = level lsr rc_shift in
    locate_climb ctx node ~now ~req ~oi ~wl:(level land level_mask)
      ~rc:(if rc > rc_max then rc else rc_max)
      ~src ~base_guid ~nc:true
  end

(* The drain fiber: FIFO over the mailbox, [service] virtual seconds per
   message, until the ring is empty.  The generation is re-checked after
   every sleep — the node may have been killed at a barrier while the
   fiber slept; the message it popped dies with it. *)
let rec drain_loop ctx h gen =
  let sh = ctx.sh in
  let mb = sh.mb in
  if Mailbox.generation mb h <> gen then ()
  else if Mailbox.length mb h = 0 then Mailbox.set_busy mb h false
  else begin
    let i = Mailbox.msg_index mb h in
    let kind = mb.Mailbox.r_kind.(i)
    and req = mb.Mailbox.r_req.(i)
    and oi = mb.Mailbox.r_oi.(i)
    and level = mb.Mailbox.r_level.(i)
    and prev = mb.Mailbox.r_prev.(i)
    and src = mb.Mailbox.r_src.(i) in
    Mailbox.advance mb h;
    if sh.service > 0. then Fiber.sleep ctx.sched sh.service;
    if Mailbox.generation mb h <> gen then begin
      (* killed mid-service: the in-hand message is a dead letter *)
      ctx.dead_letter <- ctx.dead_letter + 1;
      if req >= 0 then begin
        Bytes.set sh.req_status req st_dead_letter;
        ctx.failed <- ctx.failed + 1
      end
    end
    else begin
      let node = Network.node_of_handle sh.net h in
      dispatch ctx node ~now:(Fiber.now ctx.sched) ~kind ~req ~oi ~level
        ~prev ~src;
      drain_loop ctx h gen
    end
  end

(* Deliver one transport message (already popped into [tr.o_*]): dead
   letters and ring overflow are terminal for the request; otherwise
   enqueue and make sure a drain fiber is up.  [@alloc_ok]: the spawn
   closure is one allocation per actor busy-period, not per message. *)
let[@alloc_ok] deliver ctx ~time =
  let sh = ctx.sh in
  let tr = ctx.tr in
  let h = tr.Mailbox.Transport.o_h in
  let req = tr.Mailbox.Transport.o_req in
  ctx.delivered <- ctx.delivered + 1;
  if
    Mailbox.generation sh.mb h <> tr.Mailbox.Transport.o_g
    || not (Node.is_alive (Network.node_of_handle sh.net h))
  then begin
    ctx.dead_letter <- ctx.dead_letter + 1;
    if req >= 0 then begin
      Bytes.set sh.req_status req st_dead_letter;
      ctx.failed <- ctx.failed + 1
    end
  end
  else if
    not
      (Mailbox.push sh.mb h ~kind:tr.Mailbox.Transport.o_kind ~req
         ~oi:tr.Mailbox.Transport.o_oi ~level:tr.Mailbox.Transport.o_level
         ~prev:tr.Mailbox.Transport.o_prev ~src:tr.Mailbox.Transport.o_src)
  then begin
    let kind = tr.Mailbox.Transport.o_kind in
    let prev = tr.Mailbox.Transport.o_prev in
    if
      sh.coop && kind = op_fetch && req >= 0
      && tr.Mailbox.Transport.o_level <= rc_max
      && prev >= 0 && prev <> h
      && Node.is_alive (Network.node_of_handle sh.net prev)
    then begin
      (* coop overflow relief: hint-hit FETCHes are issued at injection
         time, so same-window injection bursts land on a hot server as
         one batch and overflow its ring.  Instead of failing, re-climb
         cache-free once from the hint's holder ([prev]) — the walk
         spreads the retry over later windows.  The resulting FETCH
         carries rc_max + 1, so a second overflow is terminal. *)
      ctx.tally.recoveries <- ctx.tally.recoveries + 1;
      send ctx ~time ~h:prev ~kind:op_locate_nc ~req
        ~oi:tr.Mailbox.Transport.o_oi
        ~level:((rc_max + 1) lsl rc_shift) ~prev:(-1)
        ~src:tr.Mailbox.Transport.o_src
    end
    else begin
      (* bounded mailbox full: drop the newcomer (backpressure policy) *)
      ctx.dropped <- ctx.dropped + 1;
      if req >= 0 then begin
        Bytes.set sh.req_status req st_dropped;
        ctx.failed <- ctx.failed + 1
      end
    end
  end
  else if not (Mailbox.is_busy sh.mb h) then begin
    Mailbox.set_busy sh.mb h true;
    let gen = Mailbox.generation sh.mb h in
    Fiber.spawn_at ctx.sched time (fun () -> drain_loop ctx h gen)
  end
