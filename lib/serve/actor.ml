(* Fiber-per-node actors: mailbox drain loops and the per-message
   protocol state machine (DESIGN.md section 9).

   Each alive node is a latent actor: when a message lands in its
   mailbox and no drain fiber is active, one is spawned on the owning
   shard's scheduler.  The fiber pops messages FIFO, models [service]
   virtual seconds of local processing per message, executes the hop
   (pointer probe, deposit, removal, or replica check), and sends the
   follow-up message — so a request's hop sequence is real inter-actor
   traffic, each hop charged [latency * metric distance] like
   [Async_ops.hop].

   Opcodes: 0 LOCATE walks toward the object's root until a usable
   pointer redirects it (FETCH to the closest live server, Section 2.4's
   closest-replica rule); 1 FETCH completes at the server iff it still
   stores the replica; 2 PUBLISH deposits a pointer per hop with the
   previous-hop backlink (Figure 2 / Figure 9's "previous"), completing
   at the root; 3 UNPUBLISH retracts along the same walk.

   Shard confinement: a dispatch only mutates state owned by the shard
   it runs on (the target node's pointer store / replica set — nodes are
   partitioned by handle), reads the frozen routing mesh, and writes its
   own shard's counters, histograms, transport and outbox.  Dead
   neighbors noticed during digit scans are not purged mid-window (that
   would mutate shared tables and the global cost accumulator the way
   [Route.purge] does); the owner is recorded in the dirty set and the
   shard barrier runs [Delete.on_dead_repair] sequentially.

   This file is on the typed lint's hot-path list: the per-message path
   allocates nothing but the option values the pointer-store API
   returns; scratch results travel through mutable ctx fields. *)

open Tapestry
module Fiber = Simnet.Fiber
module Cost = Simnet.Cost
module Hist = Simnet.Stats.Hist

let op_locate = 0
let op_fetch = 1
let op_publish = 2
let op_unpublish = 3

(* request_status values (one byte per request) *)
let st_pending = '\000'
let st_ok = '\001'
let st_failed = '\002'
let st_dropped = '\003'
let st_dead_letter = '\004'

type shared = {
  net : Network.t;
  mb : Mailbox.t;
  shards : int;  (* fixed partition count, independent of --domains *)
  guids : Node_id.t array;  (* oi = obj * roots + r -> salted guid psi_r *)
  roots : int;  (* config root_set_size *)
  ttl : float;  (* pointer expiry horizon for serve-time deposits *)
  latency : float;  (* virtual seconds per unit of metric distance *)
  service : float;  (* virtual seconds an actor spends per message *)
  digits : int;
  base : int;
  req_t0 : float array;  (* per request: virtual injection time *)
  req_w0 : float array;  (* per request: wall stamp of injection window *)
  req_status : Bytes.t;
  wall : float array;  (* wall.(0): stamp of the current window, barrier-written *)
  mutable dirty : Bytes.t;  (* per handle: 1 if queued for dead-entry repair *)
}

type ctx = {
  sh : shared;
  shard : int;
  sched : Fiber.t;
  tr : Mailbox.Transport.tr;
  out : Mailbox.Outbox.ob;
  rng : Simnet.Rng.t;  (* injector stream; dispatch never draws from it *)
  cost : Cost.t;
  hist_v : Hist.h;  (* virtual-time latency of completed requests *)
  hist_w : Hist.h;  (* wall-time latency (info only, machine-dependent) *)
  mutable injected : int;
  mutable completed : int;
  mutable failed : int;
  mutable dropped : int;
  mutable dead_letter : int;
  mutable delivered : int;
  mutable dirty_h : int array;  (* owners with dead table entries, barrier-drained *)
  mutable dirty_len : int;
  (* allocation-free scan scratch *)
  mutable scan_h : int;
  mutable scan_level : int;
  mutable best_h : int;
  mutable best_d : float;
  mutable pred_now : float;
  mutable cur : Node.t;  (* node whose dispatch is running *)
  mutable sel : Pointer_store.record -> unit;
      (* preallocated best-server folder; assigned once in [make_ctx] *)
}

(* [@alloc_ok]: one shared record per run. *)
let[@alloc_ok] make_shared ~net ~mb ~shards ~guids ~roots ~ttl ~latency
    ~service ~requests =
  let cfg = net.Network.config in
  {
    net;
    mb;
    shards;
    guids;
    roots;
    ttl;
    latency;
    service;
    digits = cfg.Config.id_digits;
    base = cfg.Config.base;
    req_t0 = Array.make (max requests 1) 0.;
    req_w0 = Array.make (max requests 1) 0.;
    req_status = Bytes.make (max requests 1) st_pending;
    wall = Array.make 1 0.;
    dirty = Bytes.make (max net.Network.arena_len 1) '\000';
  }

(* [@alloc_ok]: one ctx record (plus its selector closure) per shard per
   run; the closure reads/writes only ctx scratch fields, so dispatches
   reuse it without allocating. *)
let[@alloc_ok] make_ctx sh ~shard ~rng =
  let ctx =
    {
      sh;
      shard;
      sched = Fiber.create ();
      tr = Mailbox.Transport.create ();
      out = Mailbox.Outbox.create ();
      rng;
      cost = Cost.make ();
      hist_v = Hist.create ();
      hist_w = Hist.create ();
      injected = 0;
      completed = 0;
      failed = 0;
      dropped = 0;
      dead_letter = 0;
      delivered = 0;
      dirty_h = Array.make 16 0;
      dirty_len = 0;
      scan_h = -1;
      scan_level = 0;
      best_h = -1;
      best_d = infinity;
      pred_now = 0.;
      cur = Network.node_of_handle sh.net 0;
      sel = (fun _ -> ());
    }
  in
  (ctx.sel <-
     (fun (r : Pointer_store.record) ->
       if r.Pointer_store.expires >= ctx.pred_now then begin
         match Network.find sh.net r.Pointer_store.server with
         | Some srv when Node.is_alive srv ->
             let d = Network.dist sh.net ctx.cur srv in
             if d < ctx.best_d then begin
               ctx.best_d <- d;
               ctx.best_h <- srv.Node.handle
             end
         | _ -> ()
       end));
  ctx

(* Count trailing zeros of a non-zero mask, de Bruijn multiply — same
   table as Route's digit scan (not exported there; 32 small ints). *)
let ntz_table =
  [|
    0; 1; 28; 2; 29; 14; 24; 3; 30; 22; 20; 15; 25; 17; 4; 8; 31; 27; 13; 23;
    21; 19; 16; 7; 26; 12; 18; 6; 11; 5; 10; 9;
  |]

let ntz x = ntz_table.((((x land -x) * 0x077CB531) land 0xFFFFFFFF) lsr 27)

(* [@alloc_ok]: the dirty list doubles rarely; everything else is int
   stores. *)
let[@alloc_ok] note_dirty ctx (owner : Node.t) =
  let h = owner.Node.handle in
  if h >= 0 && Bytes.get ctx.sh.dirty h = '\000' then begin
    Bytes.set ctx.sh.dirty h '\001';
    if ctx.dirty_len >= Array.length ctx.dirty_h then begin
      let a = Array.make (Array.length ctx.dirty_h * 2) 0 in
      Array.blit ctx.dirty_h 0 a 0 ctx.dirty_len;
      ctx.dirty_h <- a
    end;
    ctx.dirty_h.(ctx.dirty_len) <- h;
    ctx.dirty_len <- ctx.dirty_len + 1
  end

(* First alive entry of a slot, read-only: dead entries are skipped (and
   the owner queued for barrier repair) instead of purged in place. *)
let rec slot_first_alive ctx (node : Node.t) ~level ~digit ~len k =
  if k >= len then -1
  else begin
    let table = node.Node.table in
    let h = Routing_table.slot_handle table ~level ~digit ~k in
    if h >= 0 then begin
      let n = Network.node_of_handle ctx.sh.net h in
      if Node.is_alive n then h
      else begin
        note_dirty ctx node;
        slot_first_alive ctx node ~level ~digit ~len (k + 1)
      end
    end
    else begin
      (* entries without a handle exist only in test-injected tables *)
      let id = Routing_table.slot_id table ~level ~digit ~k in
      match Network.find ctx.sh.net id with
      | Some n when Node.is_alive n -> n.Node.handle
      | _ ->
          note_dirty ctx node;
          slot_first_alive ctx node ~level ~digit ~len (k + 1)
    end
  end

(* Wrap-order digit scan over the filled mask — [Route.native_scan]'s
   order exactly, minus purging. *)
let rec scan_digit ctx (node : Node.t) ~level ~want tries =
  let base = ctx.sh.base in
  if tries >= base then -1
  else begin
    let m = Routing_table.filled_mask node.Node.table ~level in
    let start = want + tries in
    let start = if start >= base then start - base else start in
    let m = ((m lsr start) lor (m lsl (base - start))) land ((1 lsl base) - 1) in
    if m = 0 then -1
    else begin
      let tries = tries + ntz m in
      if tries >= base then -1
      else begin
        let j = want + tries in
        let j = if j >= base then j - base else j in
        let len = Routing_table.slot_len node.Node.table ~level ~digit:j in
        let h = slot_first_alive ctx node ~level ~digit:j ~len 0 in
        if h >= 0 then h else scan_digit ctx node ~level ~want (tries + 1)
      end
    end
  end

(* Next hop of the walk toward [guid] starting at [level]: sets
   [scan_h] to the next node's handle and [scan_level] to the level the
   walk resumes at there, or [scan_h = -1] when [node] is the walk's
   endpoint (its surrogate root). *)
let rec next_hop ctx (node : Node.t) guid level =
  if level >= ctx.sh.digits then ctx.scan_h <- -1
  else begin
    let want = Node_id.digit guid level in
    let h = scan_digit ctx node ~level ~want 0 in
    if h < 0 then ctx.scan_h <- -1
    else if h = node.Node.handle then next_hop ctx node guid (level + 1)
    else begin
      ctx.scan_h <- h;
      ctx.scan_level <- level + 1
    end
  end

(* Send: same-shard targets go straight into this shard's transport;
   cross-shard targets are buffered in the outbox until the barrier.
   The target's mailbox generation is captured now — churn at a later
   barrier turns the message into a dead letter. *)
let send ctx ~time ~h ~kind ~req ~oi ~level ~prev ~src =
  let sh = ctx.sh in
  let g = Mailbox.generation sh.mb h in
  if h mod sh.shards = ctx.shard then
    Mailbox.Transport.push ctx.tr ~time ~h ~g ~kind ~req ~oi ~level ~prev ~src
  else Mailbox.Outbox.push ctx.out ~time ~h ~g ~kind ~req ~oi ~level ~prev ~src

let complete_ok ctx ~now ~req =
  if req >= 0 then begin
    let sh = ctx.sh in
    Bytes.set sh.req_status req st_ok;
    Hist.add ctx.hist_v (now -. sh.req_t0.(req));
    Hist.add ctx.hist_w (sh.wall.(0) -. sh.req_w0.(req));
    ctx.completed <- ctx.completed + 1
  end

let complete_failed ctx ~req =
  if req >= 0 then begin
    Bytes.set ctx.sh.req_status req st_failed;
    ctx.failed <- ctx.failed + 1
  end

(* One hop of distance [d] from [node] to handle [h]: charge the shard
   cost and schedule delivery after the virtual link latency. *)
let hop ctx (node : Node.t) ~now ~h ~kind ~req ~oi ~level ~prev ~src =
  let sh = ctx.sh in
  let d = Network.dist sh.net node (Network.node_of_handle sh.net h) in
  Cost.send ctx.cost ~dist:d;
  send ctx ~time:(now +. (sh.latency *. d)) ~h ~kind ~req ~oi ~level ~prev ~src

let dispatch ctx (node : Node.t) ~now ~kind ~req ~oi ~level ~prev ~src =
  let sh = ctx.sh in
  let base_oi = oi - (oi mod sh.roots) in
  let base_guid = sh.guids.(base_oi) in
  if kind = op_locate then begin
    (* a usable pointer redirects the walk to the closest live server *)
    ctx.pred_now <- now;
    ctx.cur <- node;
    ctx.best_h <- -1;
    ctx.best_d <- infinity;
    Pointer_store.iter_guid node.Node.pointers base_guid ~f:ctx.sel;
    if ctx.best_h >= 0 then
      hop ctx node ~now ~h:ctx.best_h ~kind:op_fetch ~req ~oi ~level:0
        ~prev:(-1) ~src:ctx.best_h
    else begin
      next_hop ctx node sh.guids.(oi) level;
      if ctx.scan_h >= 0 then
        hop ctx node ~now ~h:ctx.scan_h ~kind:op_locate ~req ~oi
          ~level:ctx.scan_level ~prev:(-1) ~src
      else
        (* reached the root without intersecting a publish path *)
        complete_failed ctx ~req
    end
  end
  else if kind = op_fetch then begin
    if Node.stores_replica node base_guid then complete_ok ctx ~now ~req
    else complete_failed ctx ~req
  end
  else if kind = op_publish then begin
    if prev < 0 then Node.add_replica node base_guid;
    let server_id = (Network.node_of_handle sh.net src).Node.id in
    let previous =
      if prev < 0 then None
      else Some (Network.node_of_handle sh.net prev).Node.id
    in
    ignore
      (Pointer_store.store node.Node.pointers ~guid:base_guid
         ~server:server_id ~root_idx:(oi - base_oi) ~previous
         ~expires:(now +. sh.ttl));
    next_hop ctx node sh.guids.(oi) level;
    if ctx.scan_h >= 0 then
      hop ctx node ~now ~h:ctx.scan_h ~kind:op_publish ~req ~oi
        ~level:ctx.scan_level ~prev:node.Node.handle ~src
    else complete_ok ctx ~now ~req
  end
  else begin
    (* op_unpublish *)
    if prev < 0 then Node.remove_replica node base_guid;
    let server_id = (Network.node_of_handle sh.net src).Node.id in
    ignore
      (Pointer_store.remove node.Node.pointers ~guid:base_guid
         ~server:server_id ~root_idx:(oi - base_oi));
    next_hop ctx node sh.guids.(oi) level;
    if ctx.scan_h >= 0 then
      hop ctx node ~now ~h:ctx.scan_h ~kind:op_unpublish ~req ~oi
        ~level:ctx.scan_level ~prev:node.Node.handle ~src
    else complete_ok ctx ~now ~req
  end

(* The drain fiber: FIFO over the mailbox, [service] virtual seconds per
   message, until the ring is empty.  The generation is re-checked after
   every sleep — the node may have been killed at a barrier while the
   fiber slept; the message it popped dies with it. *)
let rec drain_loop ctx h gen =
  let sh = ctx.sh in
  let mb = sh.mb in
  if Mailbox.generation mb h <> gen then ()
  else if Mailbox.length mb h = 0 then Mailbox.set_busy mb h false
  else begin
    let i = Mailbox.msg_index mb h in
    let kind = mb.Mailbox.r_kind.(i)
    and req = mb.Mailbox.r_req.(i)
    and oi = mb.Mailbox.r_oi.(i)
    and level = mb.Mailbox.r_level.(i)
    and prev = mb.Mailbox.r_prev.(i)
    and src = mb.Mailbox.r_src.(i) in
    Mailbox.advance mb h;
    if sh.service > 0. then Fiber.sleep ctx.sched sh.service;
    if Mailbox.generation mb h <> gen then begin
      (* killed mid-service: the in-hand message is a dead letter *)
      ctx.dead_letter <- ctx.dead_letter + 1;
      if req >= 0 then begin
        Bytes.set sh.req_status req st_dead_letter;
        ctx.failed <- ctx.failed + 1
      end
    end
    else begin
      let node = Network.node_of_handle sh.net h in
      dispatch ctx node ~now:(Fiber.now ctx.sched) ~kind ~req ~oi ~level
        ~prev ~src;
      drain_loop ctx h gen
    end
  end

(* Deliver one transport message (already popped into [tr.o_*]): dead
   letters and ring overflow are terminal for the request; otherwise
   enqueue and make sure a drain fiber is up.  [@alloc_ok]: the spawn
   closure is one allocation per actor busy-period, not per message. *)
let[@alloc_ok] deliver ctx ~time =
  let sh = ctx.sh in
  let tr = ctx.tr in
  let h = tr.Mailbox.Transport.o_h in
  let req = tr.Mailbox.Transport.o_req in
  ctx.delivered <- ctx.delivered + 1;
  if
    Mailbox.generation sh.mb h <> tr.Mailbox.Transport.o_g
    || not (Node.is_alive (Network.node_of_handle sh.net h))
  then begin
    ctx.dead_letter <- ctx.dead_letter + 1;
    if req >= 0 then begin
      Bytes.set sh.req_status req st_dead_letter;
      ctx.failed <- ctx.failed + 1
    end
  end
  else if
    not
      (Mailbox.push sh.mb h ~kind:tr.Mailbox.Transport.o_kind ~req
         ~oi:tr.Mailbox.Transport.o_oi ~level:tr.Mailbox.Transport.o_level
         ~prev:tr.Mailbox.Transport.o_prev ~src:tr.Mailbox.Transport.o_src)
  then begin
    (* bounded mailbox full: drop the newcomer (backpressure policy) *)
    ctx.dropped <- ctx.dropped + 1;
    if req >= 0 then begin
      Bytes.set sh.req_status req st_dropped;
      ctx.failed <- ctx.failed + 1
    end
  end
  else if not (Mailbox.is_busy sh.mb h) then begin
    Mailbox.set_busy sh.mb h true;
    let gen = Mailbox.generation sh.mb h in
    Fiber.spawn_at ctx.sched time (fun () -> drain_loop ctx h gen)
  end
