(** Bounded per-node object-pointer caches (PR 9).

    Under Zipf traffic every locate for a popular object re-pays nearly
    the full surrogate climb.  This module gives each node a small
    set-associative cache of [object -> server] mappings, learned as
    successful locates unwind: later requests that pass through a warm
    node jump straight to the server instead of climbing on.

    {b Layout.}  One structure serves the whole network, in the arena
    style of the routing tables: node [h]'s cache is the slice
    [h*ways .. h*ways+ways-1] of five parallel flat int arrays (key,
    server handle, server generation, object-epoch snapshot, replacement
    stamp).  Probing and inserting are plain int scans over [ways]
    entries — no per-entry boxing, no allocation on the hot path.

    {b Keys.}  Object GUIDs are interned once (cold path) to dense int
    keys; the serve driver interns its object universe up front, the
    sync locate path interns on first touch.  Key [-1] marks an empty
    way.

    {b Invalidation} is epoch-based and deterministic, at
    [(object, server)] granularity: unpublishing one replica bumps the
    epoch of that pair only, so cached shortcuts naming the object's
    {e other} servers — still perfectly valid — survive.  (A per-object
    epoch was measured to wipe a hot object's entire cached footprint on
    every retraction, capping the hit rate under Zipf traffic.)  An
    entry snapshots its pair's epoch at fill time and a probe whose
    snapshot mismatches self-evicts and reports stale.  Entries also
    carry the server's mailbox generation (serve tier) so a server
    killed and resurrected by churn is detected without any global
    flush.  A stale hit therefore degrades to a redirect-and-reclimb,
    never a wrong answer — see DESIGN.md §10.

    {b Concurrency.}  In the serve engine all mutation happens either
    shard-confined (a node probing/filling its own cache line) or at
    barriers in fixed shard order (cross-node fill/evict intents, epoch
    bumps), so results are bit-identical for any [--domains].  The
    embedded {!tally} is for the synchronous path only; the serve tier
    keeps per-shard {!Simnet.Stats.Tally.t} records and merges them in
    shard order. *)

type policy =
  | Clock  (** second-chance clock sweep per node line *)
  | Two_random
      (** power-of-two-choices LRU: evict the older-stamped of two
          deterministically hashed ways *)

val policy_of_string : string -> policy option
(** ["clock"] / ["2random"] (also accepts ["two-random"]). *)

val policy_to_string : policy -> string

type t = private {
  ways : int;  (** associativity: entries per node, > 0 *)
  policy : policy;
  mutable nodes : int;  (** arena-handle capacity *)
  mutable e_key : int array;  (** [nodes*ways]; -1 = empty way *)
  mutable e_srv : int array;  (** server arena handle *)
  mutable e_gen : int array;  (** server mailbox generation at fill (0 sync) *)
  mutable e_epoch : int array;  (** object epoch snapshot at fill *)
  mutable e_stamp : int array;  (** clock ref bit / LRU tick *)
  mutable e_hits : int array;
      (** frequency sketch: saturating per-entry hit count (PR 10);
          orders a line's entries by warmth for {!export_hints} *)
  mutable e_src : Bytes.t;
      (** ['\001'] = entry arrived as a cooperative hint, ['\000'] =
          learned from the node's own fetch unwind *)
  mutable hand : int array;
      (** per node: clock hand position, or the LRU tick counter *)
  mutable dk : Bytes.t;
      (** doorkeeper admission bits, [ways] bytes (= 8*ways bits) per
          node; see {!insert} *)
  mutable dk_fill : int array;
      (** per node: declined first-touch fills since the last
          doorkeeper reset *)
  ep_tbl : (int, int) Hashtbl.t;
      (** retraction count per packed [(key, server-handle)] pair;
          absent = 0.  Written only on unpublish (sync: inline; serve:
          at barriers) — sparse, bounded by retractions ever issued *)
  mutable guid_of : Node_id.t array;  (** key -> GUID (audit / tests) *)
  mutable keys : int;  (** number of interned keys *)
  key_tbl : int Node_id.Tbl.t;
  tally : Simnet.Stats.Tally.t;  (** sync-path accounting only *)
  mutable hint_k : int;
      (** cooperative caching: top-k hottest entries exported per
          exchange event; 0 (the default) disables cooperation *)
  mutable hint_budget : int;
      (** max hints a single line accepts from one exchange event
          (publish hop, fetch unwind, or barrier digest) *)
}

val create : ways:int -> policy:policy -> nodes:int -> t
(** @raise Invalid_argument if [ways <= 0] or [nodes < 0].  Created
    with cooperation off ([hint_k = 0]); see {!set_coop}. *)

val set_coop : t -> hint_k:int -> hint_budget:int -> unit
(** Configure cooperative hint exchange (the record is private, so
    this is the only way to flip it).  [hint_k = 0] turns every
    cooperative path off, reproducing PR 9 behavior exactly.
    @raise Invalid_argument on negative arguments. *)

val coop_on : t -> bool
(** [hint_k > 0]. *)

val ensure_nodes : t -> int -> unit
(** Grow the per-node lines to cover handles [< n] (amortized doubling;
    existing entries are preserved).  Serve tier: barrier-only. *)

val intern : t -> Node_id.t -> int
(** Dense key for a GUID, allocating one on first sight (cold path). *)

val find_key : t -> Node_id.t -> int
(** Like {!intern} but [-1] if the GUID was never interned — used where
    creating a key would be a side effect (sync unpublish). *)

val guid_of_key : t -> int -> Node_id.t

val epoch_of : t -> key:int -> srv:int -> int
(** Current retraction count of the [(key, srv)] pair (0 if never
    retracted).  Allocation-free. *)

val bump_epoch : t -> key:int -> srv:int -> unit
(** Invalidate every cached entry mapping [key] to server [srv] (lazily:
    their snapshots no longer match); entries naming other servers are
    untouched.  Serve tier: barrier-only. *)

val probe : t -> h:int -> key:int -> int
(** Look up [key] in node [h]'s line.  Returns the flat entry index
    ([>= 0]) on an epoch-current entry (touching its replacement stamp);
    [-1] on a miss; [-2] when the only entry was epoch-stale (the entry
    is evicted as a side effect).  The caller still validates the named
    server (alive + generation) before trusting a hit: liveness is
    runtime-specific.  Allocation-free. *)

val probe_srv : t -> int -> int
(** Server handle of entry [i] (a [probe] result [>= 0]). *)

val probe_gen : t -> int -> int
(** Fill-time server generation of entry [i]. *)

val probe_epoch : t -> int -> int
(** Epoch snapshot of entry [i] (a [probe] result [>= 0]) — what the
    serve digest forwards, so a hint is never fresher than the hit it
    was distilled from. *)

val probe_is_hint : t -> int -> bool
(** Whether entry [i] arrived via {!import_hint} rather than a learned
    fill (drives the [hint_hits] counter). *)

val probe_key : t -> int -> int
(** Object key of entry [i] ([-1] for an empty way). *)

val holds : t -> h:int -> key:int -> bool
(** Whether node [h]'s line holds [key] in any way (no touch, no
    epoch check — a pure membership scan for the offer paths). *)

val idle_hint_way : t -> h:int -> int
(** First hint-sourced way of node [h]'s line that has never been
    probe-hit since it was imported (sketch count still 1), or [-1].
    The digit-bucket offer path may recycle exactly this entry when
    the line has no empty way: see {!set_hint_at}. *)

val set_hint_at : t -> int -> key:int -> server:int -> gen:int -> epoch:int -> unit
(** Overwrite way [i] with a hint entry (cold sketch count, marked
    hint-sourced).  Only the bucket-offer replacement path calls this,
    with [i] from {!idle_hint_way} and after checking {!holds} is
    [false] for the key — resident organic entries are never touched. *)

val insert : t -> h:int -> key:int -> server:int -> gen:int -> unit
(** Fill (or refresh) node [h]'s line with [key -> server], snapshotting
    the pair's current epoch; evicts per {!policy} when the line is
    full.  Eviction is doorkeeper-gated: a fill that would displace a
    resident entry is declined on the key's first touch (a per-node bit
    array remembers it) and admitted on the second, so the Zipf tail
    cannot thrash the hot head out of a line.  Refreshes and empty-way
    fills always land.  Deterministic and allocation-free. *)

val insert_snap :
  t -> h:int -> key:int -> server:int -> gen:int -> epoch:int -> unit
(** {!insert} with an explicit epoch snapshot — the serve tier records
    the epoch when the fill intent is logged, so a fill racing an
    unpublish in the same window lands already-stale instead of masking
    the bump. *)

val has_empty_way : t -> h:int -> bool
(** Whether node [h]'s line has a free way.  {!import_hint} only ever
    fills empty ways, so a [false] here lets a caller skip a whole
    digest of offers with a single scan. *)

val import_hint :
  t -> h:int -> key:int -> server:int -> gen:int -> epoch:int -> bool
(** Offer node [h] a cooperative hint [key -> server] with the
    exporter's generation/epoch snapshot.  Declined (returns [false])
    when the line already holds the key in any way — the node's own
    learning always wins — or when no way is empty: a hint never
    displaces a resident entry (organic or hint), so cooperation adds
    to local learning instead of trading against it.  A landed hint is
    marked hint-sourced and starts with a cold sketch count, so it must
    earn local hits before the node re-exports it.  Deterministic and
    allocation-free. *)

val export_hints :
  t ->
  h:int ->
  k:int ->
  f:(key:int -> server:int -> gen:int -> epoch:int -> unit) ->
  unit
(** Visit the top-[k] hottest epoch-current entries of node [h]'s line,
    hottest first.  Entries with fewer than 2 recorded hits are never
    exported (a hint certifies repeated demand), and each export halves
    the entry's sketch count so propagated warmth decays unless renewed
    by fresh local hits.  Deterministic and allocation-free. *)

val evict_at : t -> int -> unit
(** Clear entry [i] (a [probe] result). *)

val evict : t -> h:int -> key:int -> server:int -> unit
(** Clear node [h]'s entry for [key], but only if it still names
    [server] — a later fill for a different server is left alone. *)

val reset : t -> unit
(** Clear all soft state — lines, sketch, hint marks, doorkeeper,
    replacement state, pair epochs, and the sync tally — keeping the
    GUID interning and coop configuration.  Called by
    [Network.clear_soft_state] so multi-row sweeps replayed on a shared
    mesh stay independent. *)

val entries : t -> int
(** Occupied ways, O(nodes*ways) — diagnostics only. *)

val iter :
  t -> f:(h:int -> key:int -> server:int -> gen:int -> epoch:int -> unit) -> unit
(** Visit every occupied entry in flat-index order (audit). *)

val approx_bytes : t -> int
(** Resident-size estimate in the {!Network.memory_footprint} style. *)
