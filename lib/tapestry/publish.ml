type outcome = { roots : Node.t list; path_lengths : int list }

let deposit net (node : Node.t) ~guid ~server_id ~root_idx ~previous =
  let expires = net.Network.clock +. net.Network.config.Config.pointer_ttl in
  ignore
    (Pointer_store.store node.Node.pointers ~guid ~server:server_id ~root_idx
       ~previous ~expires)

let walk_one_root ?variant ?(on_secondaries = false) net ~(server : Node.t) guid
    ~root_idx =
  let cfg = net.Network.config in
  let salted = Network.salted net guid root_idx in
  (* Cooperative piggyback (PR 10): each publish/republish hop also
     carries the previous node's top-k hottest cache entries, so hints
     ride traffic the protocol already pays for — no extra messages,
     no extra charge.  Budget-capped here, doorkeeper-gated at the
     importer, and the exporter only offers epoch-current entries, so
     a propagated hint is never fresher than the entry it came from. *)
  let piggyback (prev : Node.t) (node : Node.t) =
    match net.Network.obj_cache with
    | Some c when Obj_cache.coop_on c && prev.Node.handle <> node.Node.handle ->
        let bk = min c.Obj_cache.hint_k c.Obj_cache.hint_budget in
        let budget = ref bk in
        Obj_cache.export_hints c ~h:prev.Node.handle ~k:bk
          ~f:(fun ~key ~server ~gen ~epoch ->
            if
              !budget > 0
              && Obj_cache.import_hint c ~h:node.Node.handle ~key ~server ~gen
                   ~epoch
            then begin
              decr budget;
              let tl = c.Obj_cache.tally in
              tl.Simnet.Stats.Tally.hint_fills <- tl.hint_fills + 1;
              tl.fills <- tl.fills + 1
            end)
    | _ -> ()
  in
  (* Fold along the root path, depositing a pointer at every node. *)
  let root, (_, hops), _ =
    Route.fold_path ?variant net ~from:server salted ~init:(None, 0)
      ~f:(fun (prev, hops) node ->
        deposit net node ~guid ~server_id:server.Node.id ~root_idx
          ~previous:(match prev with
            | Some (p : Node.t) -> Some p.Node.id
            | None -> None);
        (match prev with Some p -> piggyback p node | None -> ());
        if on_secondaries then begin
          (* PRR-style: the pointer also lands on the secondaries of the slot
             about to be crossed; approximate by offering to every secondary
             this node knows at the level just resolved. *)
          let level = min (hops) (cfg.Config.id_digits - 1) in
          let digit = Node_id.digit salted level in
          let table = node.Node.table in
          for k = 0 to Routing_table.slot_len table ~level ~digit - 1 do
            let h = Routing_table.slot_handle table ~level ~digit ~k in
            let sec =
              if h >= 0 then Some (Network.node_of_handle net h)
              else Network.find net (Routing_table.slot_id table ~level ~digit ~k)
            in
            match sec with
            | Some sec
              when Node.is_alive sec
                   && not (Node_id.equal sec.Node.id node.Node.id) ->
                Network.charge_aside net node sec;
                deposit net sec ~guid ~server_id:server.Node.id ~root_idx
                  ~previous:(Some node.Node.id)
            | _ -> ()
          done
        end;
        `Continue (Some node, hops + 1))
  in
  (root, hops - 1)

let publish ?variant ?on_secondaries net ~server guid =
  Node.add_replica server guid;
  let cfg = net.Network.config in
  let results =
    List.init cfg.Config.root_set_size (fun root_idx ->
        walk_one_root ?variant ?on_secondaries net ~server guid ~root_idx)
  in
  { roots = List.map fst results; path_lengths = List.map snd results }

let republish ?variant net ~server guid =
  let cfg = net.Network.config in
  let results =
    List.init cfg.Config.root_set_size (fun root_idx ->
        walk_one_root ?variant net ~server guid ~root_idx)
  in
  { roots = List.map fst results; path_lengths = List.map snd results }

let unpublish ?variant net ~(server : Node.t) guid =
  let cfg = net.Network.config in
  Node.remove_replica server guid;
  (* Retract cached shortcuts: bumping the (object, server) pair epoch
     lazily invalidates every cache entry naming THIS server for the
     object (Obj_cache / DESIGN.md §10); entries for the object's other
     replicas stay valid.  [find_key] rather than [intern]: never
     create a key here. *)
  (match net.Network.obj_cache with
  | Some c ->
      let key = Obj_cache.find_key c guid in
      if key >= 0 then Obj_cache.bump_epoch c ~key ~srv:server.Node.handle
  | None -> ());
  for root_idx = 0 to cfg.Config.root_set_size - 1 do
    let salted = Network.salted net guid root_idx in
    let _, _, _ =
      Route.fold_path ?variant net ~from:server salted ~init:()
        ~f:(fun () node ->
          ignore
            (Pointer_store.remove node.Node.pointers ~guid ~server:server.Node.id
               ~root_idx);
          `Continue ())
    in
    ()
  done
