type trace = {
  levels_walked : int;
  nodes_contacted : int;
  tables_updated : int;
  holes_backfilled : int;
}

(* Theorem 4's update rule: every contacted node checks whether the joining
   node improves its own table. *)
let add_to_table_if_closer net ~(contacted : Node.t) ~(new_node : Node.t) =
  Network.offer_link_all_levels net ~owner:contacted ~candidate:new_node > 0

let get_next_list ?(update_tables = true) net ~(new_node : Node.t) ~level list ~k =
  let candidates = Node_id.Tbl.create 64 in
  let note (n : Node.t) =
    if
      Node.is_alive n
      && (not (Node_id.equal n.Node.id new_node.Node.id))
      && Node_id.common_prefix_len n.Node.id new_node.Node.id >= level
    then Node_id.Tbl.replace candidates n.Node.id n
  in
  List.iter
    (fun (n : Node.t) ->
      (* round trip: ask n for its forward and backward pointers at [level] *)
      Network.charge_aside net new_node n;
      Network.charge_aside net n new_node;
      if update_tables then
        ignore (add_to_table_if_closer net ~contacted:n ~new_node);
      note n;
      Routing_table.known_at_level n.Node.table ~level
      |> List.iter (fun id ->
             match Network.find net id with Some m -> note m | None -> ());
      Routing_table.backpointers n.Node.table ~level
      |> List.iter (fun id ->
             match Network.find net id with Some m -> note m | None -> ()))
    list;
  let all = Node_id.Tbl.fold (fun _ n acc -> n :: acc) candidates [] in
  let keyed =
    List.map (fun (n : Node.t) -> (Network.dist net new_node n, n)) all
    |> List.sort (fun (d1, _) (d2, _) -> Float.compare d1 d2)
  in
  let rec take i = function
    | [] -> []
    | (_, n) :: rest -> if i = 0 then [] else n :: take (i - 1) rest
  in
  take k keyed

(* Lemma 2: fill table levels >= [level] from a level list. *)
let build_table_from_list net ~(new_node : Node.t) list =
  List.iter
    (fun (m : Node.t) ->
      ignore (Network.offer_link_all_levels net ~owner:new_node ~candidate:m))
    list

(* Deterministic backstop for Property 1: probe every still-empty slot at
   levels up to the surrogate prefix via surrogate routing, which finds a
   matching node iff one exists (Theorem 2's maximal-prefix property). *)
let fill_holes net ~(new_node : Node.t) ~(surrogate : Node.t) ~max_level =
  let cfg = net.Network.config in
  let filled = ref 0 in
  for level = 0 to min max_level (cfg.Config.id_digits - 1) do
    for digit = 0 to cfg.Config.base - 1 do
      if Routing_table.is_hole new_node.Node.table ~level ~digit then begin
        let target_digits = Node_id.digits new_node.Node.id in
        target_digits.(level) <- digit;
        let target = Node_id.make target_digits in
        let info = Route.route_to_root net ~from:surrogate target in
        let root = info.Route.root in
        if
          (not (Node_id.equal root.Node.id new_node.Node.id))
          && Node_id.common_prefix_len root.Node.id target >= level + 1
        then begin
          if Network.offer_link net ~owner:new_node ~level ~candidate:root then
            incr filled;
          ignore (add_to_table_if_closer net ~contacted:root ~new_node)
        end
      end
    done
  done;
  !filled

(* One complete descent at width [k]; returns the trace pieces and the
   closest node of the final (level 0) list. *)
let run_descent net ~(new_node : Node.t) ~max_level ~initial_list ~k ~contacted
    ~updated =
  let list =
    initial_list
    |> List.filter (fun (m : Node.t) ->
           Node.is_alive m && not (Node_id.equal m.Node.id new_node.Node.id))
    |> List.map (fun (m : Node.t) -> (Network.dist net new_node m, m))
    |> List.sort (fun (d1, _) (d2, _) -> Float.compare d1 d2)
    |> List.filteri (fun i _ -> i < k)
    |> List.map snd
  in
  build_table_from_list net ~new_node list;
  List.iter
    (fun m -> if add_to_table_if_closer net ~contacted:m ~new_node then incr updated)
    list;
  let levels = ref 0 in
  let current = ref list in
  for level = max_level - 1 downto 0 do
    incr levels;
    let next = get_next_list net ~new_node ~level !current ~k in
    contacted := !contacted + List.length !current;
    List.iter
      (fun m -> if add_to_table_if_closer net ~contacted:m ~new_node then incr updated)
      next;
    build_table_from_list net ~new_node next;
    current := next
  done;
  (!levels, match !current with m :: _ -> Some m | [] -> None)

let acquire_neighbor_table ?(adaptive = false) net ~(new_node : Node.t)
    ~(surrogate : Node.t) ~initial_list =
  let n = Network.node_count net in
  let base_k = Config.scaled_k net.Network.config ~n in
  let max_level = Node_id.common_prefix_len new_node.Node.id surrogate.Node.id in
  let contacted = ref 0 in
  let updated = ref 0 in
  let levels = ref 0 in
  if not adaptive then begin
    let l, _ =
      run_descent net ~new_node ~max_level ~initial_list ~k:base_k ~contacted
        ~updated
    in
    levels := l
  end
  else begin
    (* The dynamic-k variant the paper cites ([14], Section 6.2): start
       narrow and double the width until the reported nearest neighbor is
       stable across consecutive widths — robust when the expansion
       constant is larger than b supports. *)
    let rec stabilize k prev tries =
      let l, head =
        run_descent net ~new_node ~max_level ~initial_list ~k ~contacted ~updated
      in
      levels := !levels + l;
      match (prev, head) with
      | Some (a : Node.t), Some b when Node_id.equal a.Node.id b.Node.id -> ()
      | _, head when tries > 0 && 2 * k <= Network.node_count net ->
          stabilize (2 * k) head (tries - 1)
      | _ -> ()
    in
    stabilize (max 4 (base_k / 4)) None 5
  end;
  let holes = fill_holes net ~new_node ~surrogate ~max_level in
  {
    levels_walked = !levels;
    nodes_contacted = !contacted;
    tables_updated = !updated;
    holes_backfilled = holes;
  }

let nearest_neighbor net ~(from : Node.t) =
  (* Property 2's static solution: the closest entry among the level-0
     neighbor sets. *)
  let table = from.Node.table in
  let best = ref None in
  for digit = 0 to Routing_table.base table - 1 do
    for k = 0 to Routing_table.slot_len table ~level:0 ~digit - 1 do
      let id = Routing_table.slot_id table ~level:0 ~digit ~k in
      if not (Node_id.equal id from.Node.id) then begin
        let h = Routing_table.slot_handle table ~level:0 ~digit ~k in
        let n =
          if h >= 0 then Some (Network.node_of_handle net h)
          else Network.find net id
        in
        match n with
        | Some n when Node.is_alive n -> (
            let d = Network.dist net from n in
            match !best with
            | Some (_, bd) when bd <= d -> ()
            | _ -> best := Some (n, d))
        | _ -> ()
      end
    done
  done;
  Option.map fst !best
