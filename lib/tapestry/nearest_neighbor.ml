type trace = {
  levels_walked : int;
  nodes_contacted : int;
  tables_updated : int;
  holes_backfilled : int;
}

(* Theorem 4's update rule: every contacted node checks whether the joining
   node improves its own table. *)
let add_to_table_if_closer net ~(contacted : Node.t) ~(new_node : Node.t) =
  Network.offer_link_all_levels net ~owner:contacted ~candidate:new_node > 0

(* --- reference oracle: the original list-and-hashtable descent --- *)

module Oracle = struct
  let get_next_list ?(update_tables = true) net ~(new_node : Node.t) ~level
      list ~k =
    let candidates = Node_id.Tbl.create 64 in
    let note (n : Node.t) =
      if
        Node.is_alive n
        && (not (Node_id.equal n.Node.id new_node.Node.id))
        && Node_id.common_prefix_len n.Node.id new_node.Node.id >= level
      then Node_id.Tbl.replace candidates n.Node.id n
    in
    List.iter
      (fun (n : Node.t) ->
        (* round trip: ask n for its forward and backward pointers *)
        Network.charge_aside net new_node n;
        Network.charge_aside net n new_node;
        if update_tables then
          ignore (add_to_table_if_closer net ~contacted:n ~new_node);
        note n;
        Routing_table.known_at_level n.Node.table ~level
        |> List.iter (fun id ->
               match Network.find net id with Some m -> note m | None -> ());
        Routing_table.backpointers n.Node.table ~level
        |> List.iter (fun id ->
               match Network.find net id with Some m -> note m | None -> ()))
      list;
    let all = Node_id.Tbl.fold (fun _ n acc -> n :: acc) candidates [] in
    let keyed =
      List.map (fun (n : Node.t) -> (Network.dist net new_node n, n)) all
      |> List.sort (fun (d1, _) (d2, _) -> Float.compare d1 d2)
    in
    let rec take i = function
      | [] -> []
      | (_, n) :: rest -> if i = 0 then [] else n :: take (i - 1) rest
    in
    take k keyed

  (* Lemma 2: fill table levels >= [level] from a level list. *)
  let build_table_from_list net ~(new_node : Node.t) list =
    List.iter
      (fun (m : Node.t) ->
        ignore (Network.offer_link_all_levels net ~owner:new_node ~candidate:m))
      list

  let fill_holes net ~(new_node : Node.t) ~(surrogate : Node.t) ~max_level =
    let cfg = net.Network.config in
    let filled = ref 0 in
    for level = 0 to min max_level (cfg.Config.id_digits - 1) do
      for digit = 0 to cfg.Config.base - 1 do
        if Routing_table.is_hole new_node.Node.table ~level ~digit then begin
          let target_digits = Node_id.digits new_node.Node.id in
          target_digits.(level) <- digit;
          let target = Node_id.make target_digits in
          let info = Route.route_to_root net ~from:surrogate target in
          let root = info.Route.root in
          if
            (not (Node_id.equal root.Node.id new_node.Node.id))
            && Node_id.common_prefix_len root.Node.id target >= level + 1
          then begin
            if Network.offer_link net ~owner:new_node ~level ~candidate:root
            then incr filled;
            ignore (add_to_table_if_closer net ~contacted:root ~new_node)
          end
        end
      done
    done;
    !filled

  (* One complete descent at width [k]; returns the trace pieces and the
     closest node of the final (level 0) list. *)
  let run_descent net ~(new_node : Node.t) ~max_level ~initial_list ~k
      ~contacted ~updated =
    let list =
      initial_list
      |> List.filter (fun (m : Node.t) ->
             Node.is_alive m && not (Node_id.equal m.Node.id new_node.Node.id))
      |> List.map (fun (m : Node.t) -> (Network.dist net new_node m, m))
      |> List.sort (fun (d1, _) (d2, _) -> Float.compare d1 d2)
      |> List.filteri (fun i _ -> i < k)
      |> List.map snd
    in
    build_table_from_list net ~new_node list;
    List.iter
      (fun m ->
        if add_to_table_if_closer net ~contacted:m ~new_node then incr updated)
      list;
    let levels = ref 0 in
    let current = ref list in
    for level = max_level - 1 downto 0 do
      incr levels;
      let next = get_next_list net ~new_node ~level !current ~k in
      contacted := !contacted + List.length !current;
      List.iter
        (fun m ->
          if add_to_table_if_closer net ~contacted:m ~new_node then
            incr updated)
        next;
      build_table_from_list net ~new_node next;
      current := next
    done;
    (!levels, match !current with m :: _ -> Some m | [] -> None)

  let acquire_neighbor_table ?(adaptive = false) net ~(new_node : Node.t)
      ~(surrogate : Node.t) ~initial_list =
    let n = Network.node_count net in
    let base_k = Config.scaled_k net.Network.config ~n in
    let max_level =
      Node_id.common_prefix_len new_node.Node.id surrogate.Node.id
    in
    let contacted = ref 0 in
    let updated = ref 0 in
    let levels = ref 0 in
    if not adaptive then begin
      let l, _ =
        run_descent net ~new_node ~max_level ~initial_list ~k:base_k ~contacted
          ~updated
      in
      levels := l
    end
    else begin
      let rec stabilize k prev tries =
        let l, head =
          run_descent net ~new_node ~max_level ~initial_list ~k ~contacted
            ~updated
        in
        levels := !levels + l;
        match (prev, head) with
        | Some (a : Node.t), Some b when Node_id.equal a.Node.id b.Node.id -> ()
        | _, head when tries > 0 && 2 * k <= Network.node_count net ->
            stabilize (2 * k) head (tries - 1)
        | _ -> ()
      in
      stabilize (max 4 (base_k / 4)) None 5
    end;
    let holes = fill_holes net ~new_node ~surrogate ~max_level in
    {
      levels_walked = !levels;
      nodes_contacted = !contacted;
      tables_updated = !updated;
      holes_backfilled = holes;
    }
end

(* --- packed descent: the same algorithm on the network scratch struct ---

   All per-step state lives in Network.scratch (DESIGN.md §8.7): the
   candidate set is deduplicated with a generation stamp over arena handles
   instead of a hashtable, distances to the joiner are memoized per handle
   for the whole descent, and the k closest are chosen by an in-place
   bounded max-heap over the candidate buffer instead of sorting a fresh
   keyed list.  Charge order, table-update order and the selected sets are
   identical to [Oracle] (ties between exactly-equal distances may order
   differently; distances are jittered floats, and the differential suite
   checks equality empirically). *)

(* Select the [k] candidates closest to the joiner from [s.cand], leaving
   them in ascending distance order in [s.sel]; returns how many.  Bounded
   max-heap: the root is the worst of the current best-k, so a beaten
   candidate costs one comparison and a winner one sift. *)
let heap_swap (sel : int array) i j =
  let t = sel.(i) in
  sel.(i) <- sel.(j);
  sel.(j) <- t

let rec heap_up (dist : float array) sel i =
  if i > 0 then begin
    let p = (i - 1) / 2 in
    if dist.(sel.(p)) < dist.(sel.(i)) then begin
      heap_swap sel p i;
      heap_up dist sel p
    end
  end

let rec heap_down (dist : float array) sel i n =
  let l = (2 * i) + 1 in
  if l < n then begin
    let c =
      if l + 1 < n && dist.(sel.(l + 1)) > dist.(sel.(l)) then l + 1 else l
    in
    if dist.(sel.(c)) > dist.(sel.(i)) then begin
      heap_swap sel c i;
      heap_down dist sel c n
    end
  end

let select_k_closest (s : Scratch.t) ~k =
  Scratch.ensure_sel s ~k;
  let sel = s.Scratch.sel in
  let dist = s.Scratch.dist in
  (* [@alloc_ok]: one counter cell per selection call *)
  let[@alloc_ok] m = ref 0 in
  let cand = s.Scratch.cand in
  for idx = 0 to s.Scratch.cand_len - 1 do
    let h = cand.(idx) in
    if !m < k then begin
      sel.(!m) <- h;
      incr m;
      heap_up dist sel (!m - 1)
    end
    else if k > 0 && dist.(h) < dist.(sel.(0)) then begin
      sel.(0) <- h;
      heap_down dist sel 0 k
    end
  done;
  (* heapsort the survivors: extract the max to the end repeatedly *)
  for i = !m - 1 downto 1 do
    heap_swap sel 0 i;
    heap_down dist sel 0 i
  done;
  !m

(* One GETNEXTLIST step over the handles in [s.cur]: collect forward and
   backward pointers at [level] (handle reads, directory fallback only for
   entries injected without one), stamp-dedup, memoize distances under
   [dgen], and leave the k closest in [s.sel] (ascending).  Returns the
   selection size. *)
let step net ~(new_node : Node.t) ~level ~update_tables ~k ~dgen =
  let s = net.Network.scratch in
  Scratch.ensure_handles s ~n:net.Network.arena_len;
  let vgen = Scratch.bump_visit s in
  s.Scratch.cand_len <- 0;
  (* [@alloc_ok]: [note] and [note_bp] close over the step's stamps; two
     closures per GETNEXTLIST step (one network round-trip each), not per
     candidate. *)
  let[@alloc_ok] note (n : Node.t) =
    let h = n.Node.handle in
    if s.Scratch.stamp.(h) <> vgen then begin
      s.Scratch.stamp.(h) <- vgen;
      if
        Node.is_alive n
        && (not (Node_id.equal n.Node.id new_node.Node.id))
        && Node_id.common_prefix_len n.Node.id new_node.Node.id >= level
      then begin
        if s.Scratch.dist_stamp.(h) <> dgen then begin
          s.Scratch.dist.(h) <- Network.dist net new_node n;
          s.Scratch.dist_stamp.(h) <- dgen
        end;
        Scratch.push_cand s h
      end
    end
  in
  let[@alloc_ok] note_bp id h =
    if h >= 0 then note (Network.node_of_handle net h)
    else match Network.find net id with Some m -> note m | None -> ()
  in
  for i = 0 to s.Scratch.cur_len - 1 do
    let n = Network.node_of_handle net s.Scratch.cur.(i) in
    (* round trip: ask n for its forward and backward pointers *)
    Network.charge_aside net new_node n;
    Network.charge_aside net n new_node;
    if update_tables then
      ignore (add_to_table_if_closer net ~contacted:n ~new_node);
    note n;
    let table = n.Node.table in
    for digit = 0 to Routing_table.base table - 1 do
      for kk = 0 to Routing_table.slot_len table ~level ~digit - 1 do
        let h = Routing_table.slot_handle table ~level ~digit ~k:kk in
        if h >= 0 then note (Network.node_of_handle net h)
        else
          match
            Network.find net (Routing_table.slot_id table ~level ~digit ~k:kk)
          with
          | Some m -> note m
          | None -> ()
      done
    done;
    Routing_table.iter_backpointers table ~level note_bp
  done;
  select_k_closest s ~k

(* [@alloc_ok]: one index cell and one closure per descent seeding. *)
let[@alloc_ok] load_cur (s : Scratch.t) list =
  let len = List.length list in
  if len > Array.length s.Scratch.cur then
    s.Scratch.cur <- Array.make (max len 64) 0;
  let i = ref 0 in
  List.iter
    (fun (n : Node.t) ->
      s.Scratch.cur.(!i) <- n.Node.handle;
      incr i)
    list;
  s.Scratch.cur_len <- len

(* [@alloc_ok]: the result list is the API contract; everything between
   [load_cur] and the cons-out loop runs on scratch buffers. *)
let[@alloc_ok] get_next_list ?(update_tables = true) net ~(new_node : Node.t)
    ~level list ~k =
  if List.exists (fun (n : Node.t) -> n.Node.handle < 0) list then
    (* unregistered nodes carry no handle to index the scratch by *)
    Oracle.get_next_list ~update_tables net ~new_node ~level list ~k
  else begin
    let s = net.Network.scratch in
    Scratch.ensure_handles s ~n:net.Network.arena_len;
    load_cur s list;
    let dgen = Scratch.bump_dist s in
    let m = step net ~new_node ~level ~update_tables ~k ~dgen in
    let res = ref [] in
    for i = m - 1 downto 0 do
      res := Network.node_of_handle net s.Scratch.sel.(i) :: !res
    done;
    !res
  end

(* Deterministic backstop for Property 1: probe every still-empty slot at
   levels up to the surrogate prefix via surrogate routing, which finds a
   matching node iff one exists (Theorem 2's maximal-prefix property).
   [Route.fold_path] with a unit accumulator keeps the probe's charges
   identical to a full walk without materializing the path. *)
(* The probe's fold callback and its `Continue are static: a hole probe
   walks the mesh without allocating per hop. *)
let probe_continue = `Continue ()
let probe_step () _ = probe_continue

let fill_holes net ~(new_node : Node.t) ~(surrogate : Node.t) ~max_level =
  let cfg = net.Network.config in
  (* [@alloc_ok]: one counter cell per backstop pass *)
  let[@alloc_ok] filled = ref 0 in
  for level = 0 to min max_level (cfg.Config.id_digits - 1) do
    for digit = 0 to cfg.Config.base - 1 do
      if Routing_table.is_hole new_node.Node.table ~level ~digit then begin
        let target_digits = Node_id.digits new_node.Node.id in
        target_digits.(level) <- digit;
        let target = Node_id.make target_digits in
        let root, (), _ =
          Route.fold_path net ~from:surrogate target ~init:() ~f:probe_step
        in
        if
          (not (Node_id.equal root.Node.id new_node.Node.id))
          && Node_id.common_prefix_len root.Node.id target >= level + 1
        then begin
          if Network.offer_link net ~owner:new_node ~level ~candidate:root then
            incr filled;
          ignore (add_to_table_if_closer net ~contacted:root ~new_node)
        end
      end
    done
  done;
  !filled

(* One complete descent at width [k]; returns the trace pieces and the
   closest node of the final (level 0) list.  The level list lives in
   [s.cur] between steps; the distance memo is valid for the whole descent
   (one [dgen]) because the metric is static and the joiner is fixed. *)
(* [@alloc_ok]: per-descent seeding (one closure over the distance memo)
   and the trace pieces in the result; the level steps run on scratch. *)
let[@alloc_ok] run_descent net ~(new_node : Node.t) ~max_level ~initial_list ~k
    ~contacted ~updated =
  let s = net.Network.scratch in
  Scratch.ensure_handles s ~n:net.Network.arena_len;
  let dgen = Scratch.bump_dist s in
  s.Scratch.cand_len <- 0;
  List.iter
    (fun (m : Node.t) ->
      if Node.is_alive m && not (Node_id.equal m.Node.id new_node.Node.id)
      then begin
        let h = m.Node.handle in
        if s.Scratch.dist_stamp.(h) <> dgen then begin
          s.Scratch.dist.(h) <- Network.dist net new_node m;
          s.Scratch.dist_stamp.(h) <- dgen
        end;
        Scratch.push_cand s h
      end)
    initial_list;
  let m0 = select_k_closest s ~k in
  Scratch.set_cur s s.Scratch.sel m0;
  for i = 0 to s.Scratch.cur_len - 1 do
    ignore
      (Network.offer_link_all_levels net ~owner:new_node
         ~candidate:(Network.node_of_handle net s.Scratch.cur.(i)))
  done;
  for i = 0 to s.Scratch.cur_len - 1 do
    if
      add_to_table_if_closer net
        ~contacted:(Network.node_of_handle net s.Scratch.cur.(i))
        ~new_node
    then incr updated
  done;
  let levels = ref 0 in
  for level = max_level - 1 downto 0 do
    incr levels;
    let m = step net ~new_node ~level ~update_tables:true ~k ~dgen in
    contacted := !contacted + s.Scratch.cur_len;
    for i = 0 to m - 1 do
      if
        add_to_table_if_closer net
          ~contacted:(Network.node_of_handle net s.Scratch.sel.(i))
          ~new_node
      then incr updated
    done;
    for i = 0 to m - 1 do
      ignore
        (Network.offer_link_all_levels net ~owner:new_node
           ~candidate:(Network.node_of_handle net s.Scratch.sel.(i)))
    done;
    Scratch.set_cur s s.Scratch.sel m
  done;
  ( !levels,
    if s.Scratch.cur_len > 0 then
      Some (Network.node_of_handle net s.Scratch.cur.(0))
    else None )

(* [@alloc_ok]: per-join trace accumulation (counter cells, the result
   record, the adaptive-k driver's closure). *)
let[@alloc_ok] acquire_neighbor_table ?(adaptive = false) net
    ~(new_node : Node.t) ~(surrogate : Node.t) ~initial_list =
  if List.exists (fun (n : Node.t) -> n.Node.handle < 0) initial_list then
    Oracle.acquire_neighbor_table ~adaptive net ~new_node ~surrogate
      ~initial_list
  else begin
    let n = Network.node_count net in
    let base_k = Config.scaled_k net.Network.config ~n in
    let max_level =
      Node_id.common_prefix_len new_node.Node.id surrogate.Node.id
    in
    let contacted = ref 0 in
    let updated = ref 0 in
    let levels = ref 0 in
    if not adaptive then begin
      let l, _ =
        run_descent net ~new_node ~max_level ~initial_list ~k:base_k ~contacted
          ~updated
      in
      levels := l
    end
    else begin
      (* The dynamic-k variant the paper cites ([14], Section 6.2): start
         narrow and double the width until the reported nearest neighbor is
         stable across consecutive widths — robust when the expansion
         constant is larger than b supports. *)
      let rec stabilize k prev tries =
        let l, head =
          run_descent net ~new_node ~max_level ~initial_list ~k ~contacted
            ~updated
        in
        levels := !levels + l;
        match (prev, head) with
        | Some (a : Node.t), Some b when Node_id.equal a.Node.id b.Node.id -> ()
        | _, head when tries > 0 && 2 * k <= Network.node_count net ->
            stabilize (2 * k) head (tries - 1)
        | _ -> ()
      in
      stabilize (max 4 (base_k / 4)) None 5
    end;
    let holes = fill_holes net ~new_node ~surrogate ~max_level in
    {
      levels_walked = !levels;
      nodes_contacted = !contacted;
      tables_updated = !updated;
      holes_backfilled = holes;
    }
  end

(* [@alloc_ok]: a maintenance-time query; one best-so-far cell and a pair
   per improvement. *)
let[@alloc_ok] nearest_neighbor net ~(from : Node.t) =
  (* Property 2's static solution: the closest entry among the level-0
     neighbor sets. *)
  let table = from.Node.table in
  let best = ref None in
  for digit = 0 to Routing_table.base table - 1 do
    for k = 0 to Routing_table.slot_len table ~level:0 ~digit - 1 do
      let id = Routing_table.slot_id table ~level:0 ~digit ~k in
      if not (Node_id.equal id from.Node.id) then begin
        let h = Routing_table.slot_handle table ~level:0 ~digit ~k in
        let n =
          if h >= 0 then Some (Network.node_of_handle net h)
          else Network.find net id
        in
        match n with
        | Some n when Node.is_alive n -> (
            let d = Network.dist net from n in
            match !best with
            | Some (_, bd) when bd <= d -> ()
            | _ -> best := Some (n, d))
        | _ -> ()
      end
    done
  done;
  Option.map fst !best
