type env = {
  sched : Simnet.Fiber.t;
  net : Network.t;
  latency_scale : float;
  timeout : float;
}

let make_env ?(latency_scale = 1.0) ?(timeout = 2.0) sched net =
  { sched; net; latency_scale; timeout }

let sync_clock env = env.net.Network.clock <- Simnet.Fiber.now env.sched

(* A hop: charge the cost accounting AND advance virtual time. *)
let hop env (a : Node.t) (b : Node.t) =
  Network.charge env.net a b;
  Simnet.Fiber.sleep env.sched (env.latency_scale *. Network.dist env.net a b);
  sync_clock env

let dead_probe env =
  Simnet.Cost.message env.net.Network.cost ~dist:0.;
  Simnet.Fiber.sleep env.sched env.timeout;
  sync_clock env

(* Asynchronous surrogate walk: the routing decision at each node is taken
   against the state present on arrival. *)
let walk ?(variant = Route.Native) env ~(from : Node.t) guid ~visit =
  let digits = env.net.Network.config.Config.id_digits in
  let rec go (node : Node.t) level path surrogate_hops =
    if level >= digits then (node, path, surrogate_hops)
    else begin
      (* reuse the synchronous chooser for one step: peek, then travel *)
      let next =
        Route.peek_first_hop ~variant
          ~on_dead:(fun net ~owner ~dead ->
            dead_probe env;
            Delete.on_dead_repair net ~owner ~dead)
          env.net node guid
      in
      match next with
      | None -> (node, path, surrogate_hops)
      | Some next ->
          hop env node next;
          let cpl = Node_id.common_prefix_len next.Node.id guid in
          let detour = if cpl <= level then 1 else 0 in
          if not (Node.is_alive next) then
            (* it died while the message was in flight: bounce back *)
            go node (level + 1) path surrogate_hops
          else if visit next then (next, next :: path, surrogate_hops)
          else go next (level + 1) (next :: path) (surrogate_hops + detour)
    end
  in
  if visit from then (from, [ from ], 0)
  else begin
    let final, rev_path, hops = go from 0 [ from ] 0 in
    (final, rev_path, hops)
  end

let route_to_root ?variant env ~from guid =
  let final, rev_path, surrogate_hops =
    walk ?variant env ~from guid ~visit:(fun _ -> false)
  in
  { Route.root = final; path = List.rev rev_path; surrogate_hops }

let usable env (node : Node.t) guid =
  Pointer_store.find_guid node.Node.pointers guid
  |> List.filter (fun (r : Pointer_store.record) ->
         r.Pointer_store.expires >= env.net.Network.clock
         &&
         match Network.find env.net r.Pointer_store.server with
         | Some s -> Node.is_alive s && Node.stores_replica s guid
         | None -> false)

let locate env ~client guid =
  sync_clock env;
  let salted = Network.salted env.net guid 0 in
  let found = ref None in
  let final, rev_path, _ =
    walk env ~from:client salted ~visit:(fun node ->
        match usable env node guid with
        | [] -> false
        | records ->
            found := Some (node, records);
            true)
  in
  ignore final;
  match !found with
  | None ->
      { Locate.server = None; pointer_node = None; walk = List.rev rev_path; redirects = 0 }
  | Some (pointer_node, records) -> (
      let best =
        List.fold_left
          (fun acc (r : Pointer_store.record) ->
            match Network.find env.net r.Pointer_store.server with
            | None -> acc
            | Some s -> (
                let d = Network.dist env.net pointer_node s in
                match acc with
                | Some (_, bd) when bd <= d -> acc
                | _ -> Some (s, d)))
          None records
      in
      match best with
      | None ->
          { Locate.server = None; pointer_node = None; walk = List.rev rev_path; redirects = 0 }
      | Some (server, _) ->
          (* travel to the replica *)
          hop env pointer_node server;
          let server = if Node.is_alive server then Some server else None in
          {
            Locate.server;
            pointer_node = Some pointer_node;
            walk = List.rev rev_path;
            redirects = 0;
          })

let publish env ~server guid =
  sync_clock env;
  Node.add_replica server guid;
  let cfg = env.net.Network.config in
  let expires () = env.net.Network.clock +. cfg.Config.pointer_ttl in
  for root_idx = 0 to cfg.Config.root_set_size - 1 do
    let salted = Network.salted env.net guid root_idx in
    let prev = ref None in
    (* the visitor deposits at every node the walk arrives at (the source
       first) and never stops the walk *)
    let deposit (node : Node.t) =
      ignore
        (Pointer_store.store node.Node.pointers ~guid ~server:server.Node.id
           ~root_idx ~previous:!prev ~expires:(expires ()));
      prev := Some node.Node.id;
      false
    in
    let _, _, _ = walk env ~from:server salted ~visit:deposit in
    ()
  done

let heartbeat_daemon env ~period ~rounds =
  for _ = 1 to rounds do
    Simnet.Fiber.sleep env.sched period;
    sync_clock env;
    let saw_failure = ref false in
    List.iter
      (fun (node : Node.t) ->
        if Node.is_alive node then begin
          let stale = ref [] in
          Routing_table.iter_entries node.Node.table (fun ~level:_ ~digit:_ e ->
              match Network.find env.net e.Routing_table.id with
              | Some peer when Node.is_alive peer ->
                  (* beacon + ack *)
                  Network.charge_aside env.net node peer;
                  Network.charge_aside env.net peer node
              | _ ->
                  saw_failure := true;
                  stale := e.Routing_table.id :: !stale);
          (* each node's timeouts run concurrently, so the sweep round
             costs one timeout of virtual time overall, not one per probe *)
          List.iter
            (fun dead ->
              Simnet.Cost.message env.net.Network.cost ~dist:0.;
              Delete.on_dead_repair env.net ~owner:node ~dead)
            (List.sort_uniq Node_id.compare !stale)
        end)
      (Network.alive_nodes env.net);
    if !saw_failure then begin
      Simnet.Fiber.sleep env.sched env.timeout;
      sync_clock env
    end
  done

let republish_daemon env ~period ~rounds =
  for _ = 1 to rounds do
    Simnet.Fiber.sleep env.sched period;
    sync_clock env;
    ignore (Maintenance.expire_all env.net);
    List.iter
      (fun (server : Node.t) ->
        let replicas =
          Node_id.Tbl.fold (fun g () acc -> g :: acc) server.Node.replicas []
        in
        List.iter (fun guid -> ignore (Publish.republish env.net ~server guid)) replicas)
      (Network.alive_nodes env.net)
  done
