let populate_links net =
  let nodes = Array.of_list (Network.alive_nodes net) in
  let n = Array.length nodes in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j then
        ignore
          (Network.offer_link_all_levels net ~owner:nodes.(i) ~candidate:nodes.(j))
    done
  done

let build ?seed cfg metric ~addrs =
  let net = Network.create ?seed cfg metric in
  List.iter
    (fun addr ->
      let id = Network.fresh_id net in
      let node = Node.create cfg ~id ~addr in
      node.Node.status <- Node.Active;
      Network.register net node)
    addrs;
  Network.without_charging net (fun () -> populate_links net);
  net

(* --- streamed construction (the scale tier's builder) --- *)

type dist_summary = { mean : float; sd : float; max : float }

type stream_stats = {
  n : int;
  msgs : dist_summary;
  msgs_late : dist_summary;
  hops : dist_summary;
  latency : dist_summary;
  multicast_reached : dist_summary;
  pointers_transferred : int;
  entries : dist_summary;
  backpointers : dist_summary;
  footprint : Network.footprint;
}

(* Streaming moment accumulator: sum/sumsq/max, folded insert by insert so
   nothing per-node outlives its report. *)
type acc = {
  mutable cnt : int;
  mutable sum : float;
  mutable sumsq : float;
  mutable mx : float;
}

let acc_make () = { cnt = 0; sum = 0.; sumsq = 0.; mx = 0. }

let acc_add a v =
  a.cnt <- a.cnt + 1;
  a.sum <- a.sum +. v;
  a.sumsq <- a.sumsq +. (v *. v);
  if v > a.mx then a.mx <- v

let acc_summary a =
  if a.cnt = 0 then { mean = 0.; sd = 0.; max = 0. }
  else begin
    let n = float_of_int a.cnt in
    let mean = a.sum /. n in
    let var = max 0. ((a.sumsq /. n) -. (mean *. mean)) in
    { mean; sd = sqrt var; max = a.mx }
  end

(* Per-shard integer partials of the post-build table sweep.  Integer sums
   are associative, so the combined summary cannot depend on how shards are
   distributed over domains. *)
type shard_partial = {
  s_cnt : int;
  e_sum : int;
  e_sq : int;
  e_max : int;
  b_sum : int;
  b_sq : int;
  b_max : int;
}

let sweep_shards = 64

let sweep_shard net ~lo ~hi =
  let cnt = ref 0 in
  let e_sum = ref 0 and e_sq = ref 0 and e_max = ref 0 in
  let b_sum = ref 0 and b_sq = ref 0 and b_max = ref 0 in
  for h = lo to hi - 1 do
    let node = Network.node_of_handle net h in
    if Node.is_alive node then begin
      incr cnt;
      let e = Routing_table.entry_count_packed node.Node.table in
      let b = Routing_table.backpointer_count node.Node.table in
      e_sum := !e_sum + e;
      e_sq := !e_sq + (e * e);
      if e > !e_max then e_max := e;
      b_sum := !b_sum + b;
      b_sq := !b_sq + (b * b);
      if b > !b_max then b_max := b
    end
  done;
  {
    s_cnt = !cnt;
    e_sum = !e_sum;
    e_sq = !e_sq;
    e_max = !e_max;
    b_sum = !b_sum;
    b_sq = !b_sq;
    b_max = !b_max;
  }

let int_summary ~cnt ~sum ~sq ~mx =
  if cnt = 0 then { mean = 0.; sd = 0.; max = 0. }
  else begin
    let n = float_of_int cnt in
    let mean = float_of_int sum /. n in
    let var = max 0. ((float_of_int sq /. n) -. (mean *. mean)) in
    { mean; sd = sqrt var; max = float_of_int mx }
  end

(* The read-only per-node sweep, sharded over a fixed grid of [sweep_shards]
   contiguous handle ranges.  [domains] only chooses how many domains chew
   on those shards: shard boundaries, per-shard results and the (integer)
   combine are all independent of it, so the output is bit-identical for
   any domain count.  Tables are not mutated during the sweep. *)
let sweep net ~domains =
  let len = net.Network.arena_len in
  let shards = min sweep_shards (max 1 len) in
  let partials =
    Simnet.Parallel.map ~domains shards ~f:(fun s ->
        let lo = len * s / shards and hi = len * (s + 1) / shards in
        sweep_shard net ~lo ~hi)
  in
  let cnt = ref 0 in
  let e_sum = ref 0 and e_sq = ref 0 and e_max = ref 0 in
  let b_sum = ref 0 and b_sq = ref 0 and b_max = ref 0 in
  Array.iter
    (fun p ->
      cnt := !cnt + p.s_cnt;
      e_sum := !e_sum + p.e_sum;
      e_sq := !e_sq + p.e_sq;
      if p.e_max > !e_max then e_max := p.e_max;
      b_sum := !b_sum + p.b_sum;
      b_sq := !b_sq + p.b_sq;
      if p.b_max > !b_max then b_max := p.b_max)
    partials;
  ( int_summary ~cnt:!cnt ~sum:!e_sum ~sq:!e_sq ~mx:!e_max,
    int_summary ~cnt:!cnt ~sum:!b_sum ~sq:!b_sq ~mx:!b_max )

let build_streamed ?seed ?(domains = 1) ?(batch = 4096) ?(addr_of = Fun.id)
    ?progress cfg metric ~n =
  if n < 1 then invalid_arg "Static_build.build_streamed: n must be >= 1";
  (* Declare the population so every directory structure is born at its
     final size (no rehash/doubling storms mid-build). *)
  let cfg =
    if cfg.Config.expected_nodes > 0 then cfg
    else { cfg with Config.expected_nodes = n }
  in
  let net = Network.create ?seed cfg metric in
  (* Bootstrap node: sole participant, trivially consistent — the same
     first step as [Insert.build_incremental]. *)
  let id = Network.fresh_id net in
  let bootstrap = Node.create cfg ~id ~addr:(addr_of 0) in
  bootstrap.Node.status <- Node.Active;
  Network.register net bootstrap;
  let msgs = acc_make () and msgs_late = acc_make () in
  let hops = acc_make () and latency = acc_make () in
  let mcast = acc_make () in
  let transferred = ref 0 in
  let late_from = n / 2 in
  (* The insertion sequence is byte-for-byte the one build_incremental
     runs — same RNG draw order (fresh id inside [Insert.insert], then the
     random gateway), same staged pipeline on the shared Scratch buffers —
     so the resulting mesh is bit-identical to the incremental build.  The
     difference is purely what survives each iteration: report fields are
     folded into the streaming accumulators and the report dies young,
     instead of growing an n-element list. *)
  for i = 1 to n - 1 do
    let gateway = Network.random_alive net in
    let r = Insert.insert net ~gateway ~addr:(addr_of i) in
    let m = float_of_int r.Insert.cost.Simnet.Cost.messages in
    acc_add msgs m;
    if i >= late_from then acc_add msgs_late m;
    acc_add hops (float_of_int r.Insert.cost.Simnet.Cost.hops);
    acc_add latency r.Insert.cost.Simnet.Cost.latency;
    acc_add mcast (float_of_int r.Insert.multicast_reached);
    transferred := !transferred + r.Insert.pointers_transferred;
    match progress with
    | Some f when (i + 1) mod batch = 0 || i = n - 1 ->
        f ~inserted:(i + 1) ~total:n
    | _ -> ()
  done;
  let entries, backpointers = sweep net ~domains in
  let stats =
    {
      n;
      msgs = acc_summary msgs;
      msgs_late = acc_summary msgs_late;
      hops = acc_summary hops;
      latency = acc_summary latency;
      multicast_reached = acc_summary mcast;
      pointers_transferred = !transferred;
      entries;
      backpointers;
      footprint = Network.memory_footprint net;
    }
  in
  (net, stats)

let table_quality net ~oracle =
  let total = ref 0 and matched = ref 0 in
  List.iter
    (fun (onode : Node.t) ->
      match Network.find net onode.Node.id with
      | None -> ()
      | Some node ->
          let levels = Routing_table.levels onode.Node.table in
          let base = Routing_table.base onode.Node.table in
          for level = 0 to levels - 1 do
            for digit = 0 to base - 1 do
              if digit <> Node_id.digit onode.Node.id level then begin
                match Routing_table.primary onode.Node.table ~level ~digit with
                | None -> ()
                | Some oracle_prim ->
                    incr total;
                    (match Routing_table.primary node.Node.table ~level ~digit with
                    | None -> ()
                    | Some prim ->
                        if prim.Routing_table.dist <= oracle_prim.Routing_table.dist +. 1e-9
                        then incr matched)
              end
            done
          done)
    (Network.alive_nodes oracle);
  if !total = 0 then 1.0 else float_of_int !matched /. float_of_int !total
