type entry = { id : Node_id.t; dist : float }

(* Packed representation: the [levels * base] slots live in flat parallel
   arrays of capacity [redundancy] each, sorted in place by distance.  A
   slot (level, digit) occupies cells
   [((level * base) + digit) * redundancy ..+ redundancy); [lens] holds the
   live prefix length per slot.  Entries carry the neighbor's network
   handle next to its ID so the routing hot path resolves nodes through the
   O(1) arena with no hashing and no per-hop list allocation.  Vacant [ids]
   cells are filled with the owner's ID (an arbitrary non-null value, never
   read).  The previous [entry list array array] implementation survives
   verbatim as {!Oracle} for differential testing. *)
type t = {
  owner : Node_id.t;
  mutable owner_handle : int;
  redundancy : int;
  base : int;
  levels : int;
  ids : Node_id.t array;
  handles : int array;
  dists : float array;
  lens : int array;
  filled : int array;
      (* per level, bit [digit] set iff that slot is non-empty: digit scans
         in the routing hot path test one bit instead of reading [lens]
         (base <= 32, so a level's mask fits one immediate int) *)
  backs : int Node_id.Tbl.t array;
      (* backpointers per level: holder id -> its arena handle (-1 when the
         writer had none), so backpointer walks resolve without hashing
         into the directory *)
}

let cell t ~level ~digit = (level * t.base) + digit

let create (cfg : Config.t) ~owner =
  let levels = cfg.id_digits in
  let cells = levels * cfg.base in
  let t =
    {
      owner;
      owner_handle = -1;
      redundancy = cfg.redundancy;
      base = cfg.base;
      levels;
      ids = Array.make (cells * cfg.redundancy) owner;
      handles = Array.make (cells * cfg.redundancy) (-1);
      dists = Array.make (cells * cfg.redundancy) 0.;
      lens = Array.make cells 0;
      filled = Array.make levels 0;
      backs = Array.init levels (fun _ -> Node_id.Tbl.create 8);
    }
  in
  (* The owner fills its own digit slot at every level. *)
  for l = 0 to levels - 1 do
    let digit = Node_id.digit owner l in
    t.lens.(cell t ~level:l ~digit) <- 1;
    t.filled.(l) <- 1 lsl digit
  done;
  t

let set_owner_handle t handle =
  t.owner_handle <- handle;
  for level = 0 to t.levels - 1 do
    let off = cell t ~level ~digit:(Node_id.digit t.owner level) * t.redundancy in
    for k = 0 to t.lens.(cell t ~level ~digit:(Node_id.digit t.owner level)) - 1 do
      if Node_id.equal t.ids.(off + k) t.owner then t.handles.(off + k) <- handle
    done
  done

let owner t = t.owner

let owner_handle t = t.owner_handle

let levels t = t.levels

let base t = t.base

let slot_len t ~level ~digit = t.lens.((level * t.base) + digit)

let filled_mask t ~level = t.filled.(level)

let slot_id t ~level ~digit ~k = t.ids.((((level * t.base) + digit) * t.redundancy) + k)

let slot_handle t ~level ~digit ~k =
  t.handles.((((level * t.base) + digit) * t.redundancy) + k)

let slot_dist t ~level ~digit ~k =
  t.dists.((((level * t.base) + digit) * t.redundancy) + k)

let slot t ~level ~digit =
  let c = cell t ~level ~digit in
  let off = c * t.redundancy in
  let rec build k =
    if k >= t.lens.(c) then []
    else { id = t.ids.(off + k); dist = t.dists.(off + k) } :: build (k + 1)
  in
  build 0

let primary t ~level ~digit =
  let c = cell t ~level ~digit in
  if t.lens.(c) = 0 then None
  else
    let off = c * t.redundancy in
    Some { id = t.ids.(off); dist = t.dists.(off) }

let is_hole t ~level ~digit = t.lens.((level * t.base) + digit) = 0

(* Insertion index matching the oracle's [insert_sorted] (strict [<]):
   the new entry lands after every entry with an equal or smaller
   distance, preserving arrival order among ties. *)
let insertion_pos t ~off ~len dist =
  let rec go k = if k < len && t.dists.(off + k) <= dist then go (k + 1) else k in
  go 0

(* Shift [off+pos .. off+len-1] one cell right (the caller guarantees
   capacity) and write the new entry at [off+pos]. *)
let insert_at t ~off ~len ~pos ~id ~handle ~dist =
  for k = len - 1 downto pos do
    t.ids.(off + k + 1) <- t.ids.(off + k);
    t.handles.(off + k + 1) <- t.handles.(off + k);
    t.dists.(off + k + 1) <- t.dists.(off + k)
  done;
  t.ids.(off + pos) <- id;
  t.handles.(off + pos) <- handle;
  t.dists.(off + pos) <- dist

let remove_at t ~off ~len ~pos =
  for k = pos to len - 2 do
    t.ids.(off + k) <- t.ids.(off + k + 1);
    t.handles.(off + k) <- t.handles.(off + k + 1);
    t.dists.(off + k) <- t.dists.(off + k + 1)
  done;
  t.ids.(off + len - 1) <- t.owner;
  t.handles.(off + len - 1) <- -1

let consider ?(handle = -1) t ~level ~candidate ~dist =
  if Node_id.equal candidate t.owner then `Known
  else begin
    let digit = Node_id.digit candidate level in
    let c = cell t ~level ~digit in
    let off = c * t.redundancy in
    let len = t.lens.(c) in
    let rec find k =
      if k >= len then -1
      else if Node_id.equal t.ids.(off + k) candidate then k
      else find (k + 1)
    in
    let found = find 0 in
    if found >= 0 then begin
      (* Refresh the recorded distance (it may have been estimated),
         keeping the stored handle when the caller has none. *)
      let handle = if handle >= 0 then handle else t.handles.(off + found) in
      remove_at t ~off ~len ~pos:found;
      let pos = insertion_pos t ~off ~len:(len - 1) dist in
      insert_at t ~off ~len:(len - 1) ~pos ~id:candidate ~handle ~dist;
      `Known
    end
    else if len < t.redundancy then begin
      let pos = insertion_pos t ~off ~len dist in
      insert_at t ~off ~len ~pos ~id:candidate ~handle ~dist;
      t.lens.(c) <- len + 1;
      t.filled.(level) <- t.filled.(level) lor (1 lsl digit);
      `Added None
    end
    else begin
      (* Full slot: the farthest entry is dropped; if that would be the
         candidate itself, reject without touching the slot. *)
      let pos = insertion_pos t ~off ~len dist in
      if pos >= t.redundancy then `Rejected
      else begin
        let evicted = t.ids.(off + len - 1) in
        for k = len - 2 downto pos do
          t.ids.(off + k + 1) <- t.ids.(off + k);
          t.handles.(off + k + 1) <- t.handles.(off + k);
          t.dists.(off + k + 1) <- t.dists.(off + k)
        done;
        t.ids.(off + pos) <- candidate;
        t.handles.(off + pos) <- handle;
        t.dists.(off + pos) <- dist;
        `Added (Some evicted)
      end
    end
  end

let update_distances t ~measure =
  let changed = ref 0 in
  for level = 0 to t.levels - 1 do
    for digit = 0 to t.base - 1 do
      let c = cell t ~level ~digit in
      let len = t.lens.(c) in
      if len > 0 then begin
        let off = c * t.redundancy in
        let old_primary = t.ids.(off) in
        (* Re-measure in place, compacting out dropped entries. *)
        let m = ref 0 in
        for k = 0 to len - 1 do
          let id = t.ids.(off + k) in
          let d =
            if Node_id.equal id t.owner then Some 0. else measure id
          in
          match d with
          | Some d ->
              t.ids.(off + !m) <- id;
              t.handles.(off + !m) <- t.handles.(off + k);
              t.dists.(off + !m) <- d;
              incr m
          | None -> ()
        done;
        for k = !m to len - 1 do
          t.ids.(off + k) <- t.owner;
          t.handles.(off + k) <- -1
        done;
        t.lens.(c) <- !m;
        if !m = 0 then
          t.filled.(level) <- t.filled.(level) land lnot (1 lsl digit);
        (* Stable insertion sort by distance (ties keep their order, the
           same result as the oracle's [List.sort Float.compare]). *)
        for k = 1 to !m - 1 do
          let id = t.ids.(off + k)
          and h = t.handles.(off + k)
          and d = t.dists.(off + k) in
          let j = ref (k - 1) in
          while !j >= 0 && t.dists.(off + !j) > d do
            t.ids.(off + !j + 1) <- t.ids.(off + !j);
            t.handles.(off + !j + 1) <- t.handles.(off + !j);
            t.dists.(off + !j + 1) <- t.dists.(off + !j);
            decr j
          done;
          t.ids.(off + !j + 1) <- id;
          t.handles.(off + !j + 1) <- h;
          t.dists.(off + !j + 1) <- d
        done;
        if !m = 0 then incr changed
        else if not (Node_id.equal t.ids.(off) old_primary) then incr changed
      end
    done
  done;
  !changed

let remove t target =
  if Node_id.equal target t.owner then []
  else begin
    let found = ref [] in
    for level = 0 to t.levels - 1 do
      let digit = Node_id.digit target level in
      if digit < t.base then begin
        let c = cell t ~level ~digit in
        let off = c * t.redundancy in
        let len = t.lens.(c) in
        let rec find k =
          if k >= len then -1
          else if Node_id.equal t.ids.(off + k) target then k
          else find (k + 1)
        in
        let pos = find 0 in
        if pos >= 0 then begin
          remove_at t ~off ~len ~pos;
          t.lens.(c) <- len - 1;
          if len = 1 then
            t.filled.(level) <- t.filled.(level) land lnot (1 lsl digit);
          found := level :: !found
        end
      end
    done;
    List.rev !found
  end

let add_backpointer ?(handle = -1) t ~level id =
  if not (Node_id.equal id t.owner) then
    Node_id.Tbl.replace t.backs.(level) id handle

let remove_backpointer t ~level id = Node_id.Tbl.remove t.backs.(level) id

let backpointers t ~level =
  Node_id.Tbl.fold (fun id _ acc -> id :: acc) t.backs.(level) []

let iter_backpointers t ~level f = Node_id.Tbl.iter f t.backs.(level)

let all_backpointers t =
  let acc = ref [] in
  Array.iteri
    (fun l tbl -> Node_id.Tbl.iter (fun id _ -> acc := (l, id) :: !acc) tbl)
    t.backs;
  !acc

let known_at_level t ~level =
  let seen = Node_id.Tbl.create 16 in
  for digit = 0 to t.base - 1 do
    let c = cell t ~level ~digit in
    let off = c * t.redundancy in
    for k = 0 to t.lens.(c) - 1 do
      let id = t.ids.(off + k) in
      if not (Node_id.equal id t.owner) then Node_id.Tbl.replace seen id ()
    done
  done;
  Node_id.Tbl.fold (fun id () acc -> id :: acc) seen []

let iter_entries t f =
  for level = 0 to t.levels - 1 do
    for digit = 0 to t.base - 1 do
      (* snapshot, so [f] may remove entries from the slot it is visiting *)
      List.iter (fun e -> f ~level ~digit e) (slot t ~level ~digit)
    done
  done

let entry_count t =
  let c = ref 0 in
  iter_entries t (fun ~level:_ ~digit:_ e ->
      if not (Node_id.equal e.id t.owner) then incr c);
  !c

(* Packed [entry_count]: read the parallel arrays directly instead of
   materializing per-slot lists — the scale-tier sweep calls this once per
   node over 10^5..10^6 tables. *)
let entry_count_packed t =
  let c = ref 0 in
  for cell = 0 to (t.levels * t.base) - 1 do
    let off = cell * t.redundancy in
    for k = 0 to t.lens.(cell) - 1 do
      if not (Node_id.equal t.ids.(off + k) t.owner) then incr c
    done
  done;
  !c

let backpointer_count t =
  let c = ref 0 in
  for level = 0 to t.levels - 1 do
    c := !c + Node_id.Tbl.length t.backs.(level)
  done;
  !c

let word = 8

(* Resident-size estimate of one table: the packed parallel arrays are
   exact (capacity is fixed at creation); the per-level backpointer tables
   are modeled as stdlib hashtables (5-word record + bucket array + 4-word
   cons per binding).  IDs are shared with the owning nodes and counted
   once, by {!Network.memory_footprint}, not here. *)
let approx_bytes t =
  let arr len = (len + 1) * word in
  let fixed =
    (11 * word)
    + arr (Array.length t.ids)
    + arr (Array.length t.handles)
    + arr (Array.length t.dists)
    + arr (Array.length t.lens)
    + arr (Array.length t.filled)
    + arr (Array.length t.backs)
  in
  let backs =
    Array.fold_left
      (fun acc tbl ->
        let n = Node_id.Tbl.length tbl in
        acc + ((5 + 1 + max 8 n) * word) + (n * 4 * word))
      0 t.backs
  in
  fixed + backs

let holes t =
  let acc = ref [] in
  for level = t.levels - 1 downto 0 do
    for digit = t.base - 1 downto 0 do
      if t.lens.((level * t.base) + digit) = 0 then
        acc := (level, digit) :: !acc
    done
  done;
  !acc

let inject_slot_for_test t ~level ~digit entries =
  if List.length entries > t.redundancy then
    invalid_arg "Routing_table.inject_slot_for_test: beyond slot capacity";
  let c = cell t ~level ~digit in
  let off = c * t.redundancy in
  for k = 0 to t.redundancy - 1 do
    t.ids.(off + k) <- t.owner;
    t.handles.(off + k) <- -1;
    t.dists.(off + k) <- 0.
  done;
  List.iteri
    (fun k e ->
      t.ids.(off + k) <- e.id;
      (* injected entries carry no handle; resolution falls back to the
         directory, preserving the pre-arena behavior for corrupted slots *)
      t.handles.(off + k) <- (if Node_id.equal e.id t.owner then t.owner_handle else -1);
      t.dists.(off + k) <- e.dist)
    entries;
  t.lens.(c) <- List.length entries;
  (match entries with
  | [] -> t.filled.(level) <- t.filled.(level) land lnot (1 lsl digit)
  | _ :: _ -> t.filled.(level) <- t.filled.(level) lor (1 lsl digit))

let pp ppf t =
  Format.fprintf ppf "@[<v>table of %s:@," (Node_id.to_string t.owner);
  for level = 0 to t.levels - 1 do
    let cells =
      List.init t.base (fun digit -> slot t ~level ~digit)
      |> List.concat_map (fun es -> List.map (fun e -> Node_id.to_string e.id) es)
    in
    match cells with
    | [] -> ()
    | _ :: _ ->
        Format.fprintf ppf "  L%d: %s@," (level + 1) (String.concat " " cells)
  done;
  Format.fprintf ppf "@]"

(* --- reference oracle: the original list-based slots --- *)

module Oracle = struct
  type nonrec entry = entry = { id : Node_id.t; dist : float }

  type t = {
    owner : Node_id.t;
    redundancy : int;
    base : int;
    slots : entry list array array; (* slots.(level).(digit), ascending dist *)
  }

  let create (cfg : Config.t) ~owner =
    let slots = Array.init cfg.id_digits (fun _ -> Array.make cfg.base []) in
    for l = 0 to cfg.id_digits - 1 do
      slots.(l).(Node_id.digit owner l) <- [ { id = owner; dist = 0. } ]
    done;
    { owner; redundancy = cfg.redundancy; base = cfg.base; slots }

  let slot t ~level ~digit = t.slots.(level).(digit)

  let primary t ~level ~digit =
    match t.slots.(level).(digit) with [] -> None | e :: _ -> Some e

  (* Single pass: drop any previous occurrence of [e.id] while inserting
     [e] at its stable sorted position (after equal distances). *)
  let refresh_insert e l =
    let rec go inserted l =
      match l with
      | [] -> ((if inserted then [] else [ e ]), false)
      | x :: rest ->
          if Node_id.equal x.id e.id then
            let tail, _ = go inserted rest in
            (tail, true)
          else if (not inserted) && e.dist < x.dist then
            let tail, found = go true l in
            (e :: tail, found)
          else
            let tail, found = go inserted rest in
            (x :: tail, found)
    in
    go false l

  let consider t ~level ~candidate ~dist =
    if Node_id.equal candidate t.owner then `Known
    else begin
      let digit = Node_id.digit candidate level in
      let cur = t.slots.(level).(digit) in
      let updated, was_known = refresh_insert { id = candidate; dist } cur in
      if was_known then begin
        t.slots.(level).(digit) <- updated;
        `Known
      end
      else if List.length updated <= t.redundancy then begin
        t.slots.(level).(digit) <- updated;
        `Added None
      end
      else begin
        (* Drop the farthest; if that is the candidate itself, reject. *)
        let rec split_last acc = function
          | [ last ] -> (List.rev acc, last)
          | x :: rest -> split_last (x :: acc) rest
          | [] -> assert false
        in
        let kept, last = split_last [] updated in
        if Node_id.equal last.id candidate then `Rejected
        else begin
          t.slots.(level).(digit) <- kept;
          `Added (Some last.id)
        end
      end
    end

  let update_distances t ~measure =
    let changed = ref 0 in
    Array.iter
      (fun row ->
        Array.iteri
          (fun digit entries ->
            match entries with
            | [] -> ()
            | old_primary :: _ ->
                let remeasured =
                  List.filter_map
                    (fun e ->
                      if Node_id.equal e.id t.owner then Some { e with dist = 0. }
                      else
                        match measure e.id with
                        | Some d -> Some { e with dist = d }
                        | None -> None)
                    entries
                in
                let sorted =
                  List.sort (fun a b -> Float.compare a.dist b.dist) remeasured
                in
                row.(digit) <- sorted;
                (match sorted with
                | p :: _ when not (Node_id.equal p.id old_primary.id) ->
                    incr changed
                | [] -> incr changed
                | _ -> ()))
          row)
      t.slots;
    !changed

  let remove t target =
    if Node_id.equal target t.owner then []
    else begin
      let found = ref [] in
      Array.iteri
        (fun l row ->
          let digit = Node_id.digit target l in
          if digit < Array.length row then begin
            let cur = row.(digit) in
            if List.exists (fun e -> Node_id.equal e.id target) cur then begin
              row.(digit) <-
                List.filter (fun e -> not (Node_id.equal e.id target)) cur;
              found := l :: !found
            end
          end)
        t.slots;
      List.rev !found
    end
end
