type entry = { id : Node_id.t; dist : float }

type t = {
  owner : Node_id.t;
  redundancy : int;
  base : int;
  slots : entry list array array; (* slots.(level).(digit), ascending dist *)
  backs : unit Node_id.Tbl.t array; (* backpointers per level *)
}

let create (cfg : Config.t) ~owner =
  let slots = Array.init cfg.id_digits (fun _ -> Array.make cfg.base []) in
  let backs = Array.init cfg.id_digits (fun _ -> Node_id.Tbl.create 8) in
  (* The owner fills its own digit slot at every level. *)
  for l = 0 to cfg.id_digits - 1 do
    slots.(l).(Node_id.digit owner l) <- [ { id = owner; dist = 0. } ]
  done;
  { owner; redundancy = cfg.redundancy; base = cfg.base; slots; backs }

let owner t = t.owner

let levels t = Array.length t.slots

let base t = t.base

let slot t ~level ~digit = t.slots.(level).(digit)

let primary t ~level ~digit =
  match t.slots.(level).(digit) with [] -> None | e :: _ -> Some e

let is_hole t ~level ~digit =
  match t.slots.(level).(digit) with [] -> true | _ :: _ -> false

let insert_sorted e l =
  let rec go = function
    | [] -> [ e ]
    | x :: rest -> if e.dist < x.dist then e :: x :: rest else x :: go rest
  in
  go l

let consider t ~level ~candidate ~dist =
  if Node_id.equal candidate t.owner then `Known
  else begin
    let digit = Node_id.digit candidate level in
    let cur = t.slots.(level).(digit) in
    if List.exists (fun e -> Node_id.equal e.id candidate) cur then begin
      (* Refresh the recorded distance (it may have been estimated). *)
      let cur = List.filter (fun e -> not (Node_id.equal e.id candidate)) cur in
      t.slots.(level).(digit) <- insert_sorted { id = candidate; dist } cur;
      `Known
    end
    else begin
      let updated = insert_sorted { id = candidate; dist } cur in
      if List.length updated <= t.redundancy then begin
        t.slots.(level).(digit) <- updated;
        `Added None
      end
      else begin
        (* Drop the farthest; if that is the candidate itself, reject. *)
        let rec split_last acc = function
          | [ last ] -> (List.rev acc, last)
          | x :: rest -> split_last (x :: acc) rest
          | [] -> assert false
        in
        let kept, last = split_last [] updated in
        if Node_id.equal last.id candidate then `Rejected
        else begin
          t.slots.(level).(digit) <- kept;
          `Added (Some last.id)
        end
      end
    end
  end

let update_distances t ~measure =
  let changed = ref 0 in
  Array.iter
    (fun row ->
      Array.iteri
        (fun digit entries ->
          match entries with
          | [] -> ()
          | old_primary :: _ ->
              let remeasured =
                List.filter_map
                  (fun e ->
                    if Node_id.equal e.id t.owner then Some { e with dist = 0. }
                    else
                      match measure e.id with
                      | Some d -> Some { e with dist = d }
                      | None -> None)
                  entries
              in
              let sorted =
                List.sort (fun a b -> Float.compare a.dist b.dist) remeasured
              in
              row.(digit) <- sorted;
              (match sorted with
              | p :: _ when not (Node_id.equal p.id old_primary.id) -> incr changed
              | [] -> incr changed
              | _ -> ()))
        row)
    t.slots;
  !changed

let remove t target =
  if Node_id.equal target t.owner then []
  else begin
    let found = ref [] in
    Array.iteri
      (fun l row ->
        let digit = Node_id.digit target l in
        if digit < Array.length row then begin
          let cur = row.(digit) in
          if List.exists (fun e -> Node_id.equal e.id target) cur then begin
            row.(digit) <- List.filter (fun e -> not (Node_id.equal e.id target)) cur;
            found := l :: !found
          end
        end)
      t.slots;
    List.rev !found
  end

let add_backpointer t ~level id =
  if not (Node_id.equal id t.owner) then
    Node_id.Tbl.replace t.backs.(level) id ()

let remove_backpointer t ~level id = Node_id.Tbl.remove t.backs.(level) id

let backpointers t ~level =
  Node_id.Tbl.fold (fun id () acc -> id :: acc) t.backs.(level) []

let all_backpointers t =
  let acc = ref [] in
  Array.iteri
    (fun l tbl -> Node_id.Tbl.iter (fun id () -> acc := (l, id) :: !acc) tbl)
    t.backs;
  !acc

let known_at_level t ~level =
  let seen = Node_id.Tbl.create 16 in
  Array.iter
    (List.iter (fun e ->
         if not (Node_id.equal e.id t.owner) then Node_id.Tbl.replace seen e.id ()))
    t.slots.(level);
  Node_id.Tbl.fold (fun id () acc -> id :: acc) seen []

let iter_entries t f =
  Array.iteri
    (fun level row ->
      Array.iteri (fun digit es -> List.iter (fun e -> f ~level ~digit e) es) row)
    t.slots

let entry_count t =
  let c = ref 0 in
  iter_entries t (fun ~level:_ ~digit:_ e ->
      if not (Node_id.equal e.id t.owner) then incr c);
  !c

let holes t =
  let acc = ref [] in
  Array.iteri
    (fun level row ->
      Array.iteri
        (fun digit es ->
          match es with [] -> acc := (level, digit) :: !acc | _ :: _ -> ())
        row)
    t.slots;
  List.rev !acc

let inject_slot_for_test t ~level ~digit entries =
  t.slots.(level).(digit) <- entries

let pp ppf t =
  Format.fprintf ppf "@[<v>table of %s:@," (Node_id.to_string t.owner);
  Array.iteri
    (fun level row ->
      let cells =
        Array.to_list row
        |> List.concat_map (fun es ->
               List.map (fun e -> Node_id.to_string e.id) es)
      in
      match cells with
      | [] -> ()
      | _ :: _ ->
          Format.fprintf ppf "  L%d: %s@," (level + 1) (String.concat " " cells))
    t.slots;
  Format.fprintf ppf "@]"
