(** Oracle construction of a perfect Tapestry network.

    Builds, by global brute force, the network that the PRR preprocessing
    step would produce: every slot of every node holds exactly the R closest
    matching nodes (Properties 1 and 2 exactly, not just with high
    probability).  Experiments use it as the ground truth that incremental
    construction is measured against (E11) and as a fast setup path. *)

val build :
  ?seed:int -> Config.t -> Simnet.Metric.t -> addrs:int list -> Network.t
(** One active node per metric point in [addrs], random distinct IDs,
    perfect tables with symmetric backpointers. *)

val populate_links : Network.t -> unit
(** Rebuild perfect tables for every alive node of an existing network
    (idempotent; used to repair or to upgrade a partially built network to
    the oracle state). *)

(** {2 Streamed construction (scale tier)}

    Builds 10^5–10^6-node meshes by dynamic insertion without any per-node
    intermediate list: each {!Insert.report} is folded into streaming
    moment accumulators and dropped, the directory structures are pre-sized
    from [n] ({!Config.expected_nodes}), and the post-build per-node sweep
    is sharded across domains over a fixed 64-shard grid.

    Determinism: the insertion sequence (RNG draw order, staged pipeline,
    Scratch reuse) is exactly {!Insert.build_incremental}'s, so the mesh is
    bit-identical to an incremental build with the same seed and addresses;
    and because shard boundaries and the integer shard combine are
    independent of [domains], the returned stats are bit-identical for any
    domain count. *)

type dist_summary = { mean : float; sd : float; max : float }

type stream_stats = {
  n : int;  (** nodes inserted (bootstrap included) *)
  msgs : dist_summary;  (** per-insertion messages, all joins *)
  msgs_late : dist_summary;
      (** joins into the second half (i >= n/2) — the steady-state
          Θ(log² n) cost the paper's E1 fits *)
  hops : dist_summary;  (** per-insertion critical-path hops *)
  latency : dist_summary;  (** per-insertion latency *)
  multicast_reached : dist_summary;  (** alpha-nodes per insertion *)
  pointers_transferred : int;  (** pointer records re-rooted, total *)
  entries : dist_summary;  (** per-alive-node routing-table entries *)
  backpointers : dist_summary;  (** per-alive-node backpointers *)
  footprint : Network.footprint;  (** resident-size estimate at the end *)
}

val build_streamed :
  ?seed:int ->
  ?domains:int ->
  ?batch:int ->
  ?addr_of:(int -> int) ->
  ?progress:(inserted:int -> total:int -> unit) ->
  Config.t ->
  Simnet.Metric.t ->
  n:int ->
  Network.t * stream_stats
(** [build_streamed cfg metric ~n] inserts nodes at addresses
    [addr_of 0 .. addr_of (n-1)] (default: the identity — metric point [i]
    for node [i]).  [progress] fires every [batch] (default 4096) joins and
    once at the end.  [domains] parallelizes only the read-only post-build
    sweep.  If [cfg.expected_nodes] is 0 it is set to [n]. *)

val table_quality : Network.t -> oracle:Network.t -> float
(** Fraction of non-empty slots of [oracle] whose primary distance is
    matched (or beaten) in the corresponding node of the other network.
    Networks must have the same node IDs and addresses. *)
