(** Per-node routing mesh state: neighbor sets and backpointers.

    A slot [(l, j)] (level l+1, digit j in the paper's numbering) holds the
    neighbor set N_{alpha,j} where alpha is the first [l] digits of the
    owner's ID: up to R nodes whose IDs share alpha and have j as their next
    digit, ordered by network distance (Property 2).  The closest is the
    primary, the rest secondaries.  If fewer than R such nodes are stored,
    the set must contain every (alpha, j) node in the system (Property 1 —
    an empty slot is a "hole" certifying that no such node exists).

    The owner itself appears in its own slot at every level with distance 0,
    which makes routing and multicast uniform.  Backpointers record, per
    level, which nodes hold this node in their table (Section 2.1).

    Slots are packed flat arrays of [(id, handle, dist)] triples sorted in
    place (capacity R), so the routing hot path reads entries by index and
    resolves nodes through the network's O(1) handle arena — no hashing, no
    per-hop allocation.  The original [entry list array array]
    implementation is retained as {!Oracle} for differential testing. *)

type entry = { id : Node_id.t; dist : float }

type t

val create : Config.t -> owner:Node_id.t -> t
(** Fresh table containing only the owner itself. *)

val owner : t -> Node_id.t

val owner_handle : t -> int
(** The owner's arena handle, [-1] until {!set_owner_handle}. *)

val set_owner_handle : t -> int -> unit
(** Record the owner's arena handle (called once by [Network.register])
    and stamp it on the owner's self-entries. *)

val levels : t -> int

val base : t -> int

val slot : t -> level:int -> digit:int -> entry list
(** Ascending by distance.  [level] is the shared-prefix length (0-based).
    Allocates a fresh list view; hot paths should use {!slot_len} /
    {!slot_id} / {!slot_handle} / {!slot_dist} instead. *)

val slot_len : t -> level:int -> digit:int -> int
(** Number of live entries in the slot, O(1). *)

val filled_mask : t -> level:int -> int
(** Bitmask over digits: bit [j] is set iff slot [(level, j)] is non-empty.
    Lets a digit scan skip holes with one bit test per digit instead of a
    [slot_len] read (requires [base <= Sys.int_size - 1], which
    {!Node_id}'s radix-32 alphabet already guarantees). *)

val slot_id : t -> level:int -> digit:int -> k:int -> Node_id.t
(** ID of the [k]-th closest entry ([k < slot_len]), O(1). *)

val slot_handle : t -> level:int -> digit:int -> k:int -> int
(** Arena handle of the [k]-th entry, O(1); [-1] when unknown (entries
    injected by tests), in which case resolution must fall back to the
    directory. *)

val slot_dist : t -> level:int -> digit:int -> k:int -> float
(** Recorded distance of the [k]-th entry, O(1). *)

val primary : t -> level:int -> digit:int -> entry option

val is_hole : t -> level:int -> digit:int -> bool

val consider : ?handle:int -> t -> level:int -> candidate:Node_id.t ->
  dist:float -> [ `Added of Node_id.t option | `Rejected | `Known ]
(** Offer a candidate for the slot its digit selects at [level].  Keeps the
    R closest; on success returns the evicted entry (whose backpointer must
    be dropped), [`Known] if already present (distance refreshed), and
    [`Rejected] if the slot is full of closer nodes.  The caller must verify
    the candidate actually shares [level] digits with the owner.  [handle]
    is the candidate's arena handle; omitted (tests), the entry falls back
    to directory resolution on the hot path. *)

val update_distances : t -> measure:(Node_id.t -> float option) -> int
(** Re-measure every entry ([None] drops it) and re-sort each slot; returns
    the number of slots whose primary changed.  The mechanism behind the
    Section 6.4 primary-rotation heuristic. *)

val remove : t -> Node_id.t -> int list
(** Remove a node everywhere it appears; returns the levels it was found at. *)

val add_backpointer : ?handle:int -> t -> level:int -> Node_id.t -> unit
(** Record that [id] holds the owner in its table at [level].  [handle] is
    the holder's arena handle when the writer knows it (default [-1]:
    walks fall back to directory resolution for that holder). *)

val remove_backpointer : t -> level:int -> Node_id.t -> unit

val backpointers : t -> level:int -> Node_id.t list

val iter_backpointers : t -> level:int -> (Node_id.t -> int -> unit) -> unit
(** Iterate the level's backpointers as [(holder id, holder handle)] with
    no list allocation; the handle is [-1] when it was never recorded. *)

val all_backpointers : t -> (int * Node_id.t) list

val known_at_level : t -> level:int -> Node_id.t list
(** Every distinct node in any slot of [level] — i.e. all forward pointers
    to nodes sharing [level] digits (used by GETNEXTLIST together with
    {!backpointers}).  Excludes the owner. *)

val iter_entries : t -> (level:int -> digit:int -> entry -> unit) -> unit

val entry_count : t -> int
(** Total neighbor entries excluding the owner's self entries (space
    accounting for Table 1). *)

val entry_count_packed : t -> int
(** Same count as {!entry_count}, read straight off the packed arrays with
    no per-slot list build — the scale-tier per-node sweep. *)

val backpointer_count : t -> int
(** Total backpointers registered across all levels, O(levels). *)

val approx_bytes : t -> int
(** Estimated resident bytes of this table (packed arrays + backpointer
    tables; shared IDs excluded).  Feeds {!Network.memory_footprint}. *)

val holes : t -> (int * int) list
(** All empty slots as [(level, digit)] pairs. *)

val inject_slot_for_test : t -> level:int -> digit:int -> entry list -> unit
(** Fault injection for {!Audit} tests only: overwrite a slot verbatim,
    bypassing ordering and backpointer bookkeeping.  Never call this from
    protocol code — it deliberately lets tests corrupt the mesh. *)

val pp : Format.formatter -> t -> unit

(** The pre-packing list-based slot implementation, kept as a reference
    oracle: the differential property suite drives {!t} and {!Oracle.t}
    through identical [consider]/[remove]/[update_distances] churn and
    asserts identical slots and verdicts. *)
module Oracle : sig
  type nonrec entry = entry = { id : Node_id.t; dist : float }

  type t

  val create : Config.t -> owner:Node_id.t -> t

  val slot : t -> level:int -> digit:int -> entry list

  val primary : t -> level:int -> digit:int -> entry option

  val consider : t -> level:int -> candidate:Node_id.t -> dist:float ->
    [ `Added of Node_id.t option | `Rejected | `Known ]

  val update_distances : t -> measure:(Node_id.t -> float option) -> int

  val remove : t -> Node_id.t -> int list
end
