type report = {
  node : Node.t;
  surrogate : Node.t;
  shared_prefix : int;
  multicast_reached : int;
  pointers_transferred : int;
  nn_trace : Nearest_neighbor.trace;
  cost : Simnet.Cost.t;
}

type staged = {
  new_node : Node.t;
  surrogate : Node.t;
  shared : int;
  acc : Simnet.Cost.t;
      (* this insertion's own charges, accumulated stage by stage: each
         stage runs under [Network.measure], so charges from other staged
         insertions interleaved at stage boundaries are never attributed
         here (they were under the old begin/end snapshot diff) *)
  adaptive : bool;
  mutable reached : Node.t list;
  mutable transferred : int;
}

let staged_node s = s.new_node

(* GetPrelimNeighborTable: bulk-copy the surrogate's table entries that share
   a prefix with the new node, so it can route immediately.  The surrogate's
   slots are read directly (level/digit/k ascending — the same entry order
   [iter_entries] produced) and candidates resolve through their stored
   arena handle; nothing here mutates the surrogate's slots, so no snapshot
   is needed. *)
let copy_preliminary_table net ~(new_node : Node.t) ~(surrogate : Node.t) =
  Network.charge net surrogate new_node;
  ignore
    (Network.offer_link_all_levels net ~owner:new_node ~candidate:surrogate);
  let table = surrogate.Node.table in
  for level = 0 to Routing_table.levels table - 1 do
    for digit = 0 to Routing_table.base table - 1 do
      for k = 0 to Routing_table.slot_len table ~level ~digit - 1 do
        let h = Routing_table.slot_handle table ~level ~digit ~k in
        let cand =
          if h >= 0 then Some (Network.node_of_handle net h)
          else Network.find net (Routing_table.slot_id table ~level ~digit ~k)
        in
        match cand with
        | Some cand when Node.is_alive cand ->
            ignore
              (Network.offer_link_all_levels net ~owner:new_node
                 ~candidate:cand)
        | _ -> ()
      done
    done
  done

(* LinkAndXferRoot, run at every alpha-node by the insertion multicast:
   adopt the new node where it improves or fills the local table, then push
   any object pointers whose surrogate path now goes through it. *)
let link_and_xfer_root net ~(new_node : Node.t) ~staged (x : Node.t) =
  if not (Node_id.equal x.Node.id new_node.Node.id) then begin
    ignore (Network.offer_link_all_levels net ~owner:x ~candidate:new_node);
    staged.transferred <-
      staged.transferred
      + Maintenance.optimize_through net ~node:x ~next_hop:new_node.Node.id
  end

(* [@alloc_ok] on the staging pipeline below: an insertion allocates its
   [staged] record, the per-stage measurement thunks, the watch list and
   the final report — all once per join; the traffic they drive runs on
   the allocation-checked route/multicast/nearest-neighbor paths. *)
let[@alloc_ok] stage_surrogate_with ~copy_prelim ?id ?(adaptive = false) net
    ~gateway ~addr =
  let cfg = net.Network.config in
  if not (Node.is_alive gateway) then
    invalid_arg "Insert.stage_surrogate: dead gateway";
  let id = match id with Some id -> id | None -> Network.fresh_id net in
  let new_node = Node.create cfg ~id ~addr in
  Network.register net new_node;
  let (surrogate, shared), cost =
    Network.measure net (fun () ->
        (* 1. AcquirePrimarySurrogate: route from the gateway toward the new
           ID as if it were an object. *)
        Network.charge net new_node gateway;
        let info = Route.route_to_root net ~from:gateway id in
        let surrogate = info.Route.root in
        new_node.Node.surrogate_hint <- Some surrogate.Node.id;
        let shared = Node_id.common_prefix_len id surrogate.Node.id in
        (* 2. Preliminary table. *)
        copy_prelim net ~new_node ~surrogate;
        (surrogate, shared))
  in
  let acc = Simnet.Cost.make () in
  Simnet.Cost.add acc cost;
  { new_node; surrogate; shared; acc; adaptive; reached = []; transferred = 0 }

let[@alloc_ok] stage_multicast_with ~run_multicast net staged =
  let cfg = net.Network.config in
  let { new_node; surrogate; shared; _ } = staged in
  (* 3. Acknowledged multicast over alpha with LinkAndXferRoot and the
     Figure 11 watch list (holes the new node still has at levels the
     multicast recipients can certify). *)
  let watchlist =
    Array.init (shared + 1) (fun level ->
        Array.init cfg.Config.base (fun digit ->
            Routing_table.is_hole new_node.Node.table ~level ~digit))
  in
  let on_watch_hit ~level ~digit:_ (filler : Node.t) =
    ignore (Network.offer_link net ~owner:new_node ~level ~candidate:filler)
  in
  let prefix = Node_id.digits new_node.Node.id in
  let mcast, cost =
    Network.measure net (fun () ->
        run_multicast ~on_watch_hit ~watchlist net ~start:surrogate ~prefix
          ~len:shared
          ~apply:(link_and_xfer_root net ~new_node ~staged))
  in
  Simnet.Cost.add staged.acc cost;
  staged.reached <- mcast.Multicast.reached

let[@alloc_ok] stage_acquire_with ~acquire net staged =
  let { new_node; surrogate; shared; acc; adaptive; reached; _ } = staged in
  (* 4. Optimize the table with the nearest-neighbor descent, seeded by the
     multicast's alpha list. *)
  let nn_trace, cost =
    Network.measure net (fun () ->
        acquire ~adaptive net ~new_node ~surrogate ~initial_list:reached)
  in
  Simnet.Cost.add acc cost;
  Network.activate net new_node;
  {
    node = new_node;
    surrogate;
    shared_prefix = shared;
    multicast_reached = List.length reached;
    pointers_transferred = staged.transferred;
    nn_trace;
    cost = Simnet.Cost.snapshot acc;
  }

let stage_surrogate ?id ?adaptive net ~gateway ~addr =
  stage_surrogate_with ~copy_prelim:copy_preliminary_table ?id ?adaptive net
    ~gateway ~addr

let[@alloc_ok] stage_multicast net staged =
  stage_multicast_with
    ~run_multicast:(fun ~on_watch_hit ~watchlist net ~start ~prefix ~len
                        ~apply ->
      Multicast.run ~on_watch_hit ~watchlist net ~start ~prefix ~len ~apply)
    net staged

let[@alloc_ok] stage_acquire net staged =
  stage_acquire_with
    ~acquire:(fun ~adaptive net ~new_node ~surrogate ~initial_list ->
      Nearest_neighbor.acquire_neighbor_table ~adaptive net ~new_node
        ~surrogate ~initial_list)
    net staged

let insert ?id ?adaptive net ~gateway ~addr =
  let staged = stage_surrogate ?id ?adaptive net ~gateway ~addr in
  stage_multicast net staged;
  stage_acquire net staged

(* [@alloc_ok]: network construction; allocates the report list. *)
let[@alloc_ok] build_incremental ?seed cfg metric ~addrs =
  let net = Network.create ?seed cfg metric in
  match addrs with
  | [] -> (net, [])
  | first :: rest ->
      (* Bootstrap node: sole participant, trivially consistent. *)
      let id = Network.fresh_id net in
      let bootstrap = Node.create cfg ~id ~addr:first in
      bootstrap.Node.status <- Node.Active;
      Network.register net bootstrap;
      let reports =
        List.map
          (fun addr ->
            let gateway = Network.random_alive net in
            insert net ~gateway ~addr)
          rest
      in
      (net, reports)

(* --- reference oracle: the insertion pipeline on the list engines --- *)

module Oracle = struct
  (* The original GetPrelimNeighborTable: resolve every surrogate entry
     through the directory. *)
  let copy_preliminary_table net ~(new_node : Node.t) ~(surrogate : Node.t) =
    Network.charge net surrogate new_node;
    ignore
      (Network.offer_link_all_levels net ~owner:new_node ~candidate:surrogate);
    Routing_table.iter_entries surrogate.Node.table
      (fun ~level:_ ~digit:_ e ->
        match Network.find net e.Routing_table.id with
        | Some cand when Node.is_alive cand ->
            ignore
              (Network.offer_link_all_levels net ~owner:new_node
                 ~candidate:cand)
        | _ -> ())

  let stage_surrogate ?id ?adaptive net ~gateway ~addr =
    stage_surrogate_with ~copy_prelim:copy_preliminary_table ?id ?adaptive net
      ~gateway ~addr

  let stage_multicast net staged =
    stage_multicast_with
      ~run_multicast:(fun ~on_watch_hit ~watchlist net ~start ~prefix ~len
                          ~apply ->
        Multicast.Oracle.run ~on_watch_hit ~watchlist net ~start ~prefix ~len
          ~apply)
      net staged

  let stage_acquire net staged =
    stage_acquire_with
      ~acquire:(fun ~adaptive net ~new_node ~surrogate ~initial_list ->
        Nearest_neighbor.Oracle.acquire_neighbor_table ~adaptive net ~new_node
          ~surrogate ~initial_list)
      net staged

  let insert ?id ?adaptive net ~gateway ~addr =
    let staged = stage_surrogate ?id ?adaptive net ~gateway ~addr in
    stage_multicast net staged;
    stage_acquire net staged
end
