(* Packed per-node object-pointer caches; see the interface and
   DESIGN.md §10 for the invalidation protocol and determinism
   argument.  Node [h]'s line is the slice [h*ways ..] of the parallel
   entry arrays; everything on the probe/insert path is int-array
   arithmetic so the typed hot-path allocation lint covers this module
   (tools/lint/lint_typed.ml). *)

type policy = Clock | Two_random

let policy_of_string = function
  | "clock" -> Some Clock
  | "2random" | "two-random" -> Some Two_random
  | _ -> None

let policy_to_string = function Clock -> "clock" | Two_random -> "2random"

type t = {
  ways : int;
  policy : policy;
  mutable nodes : int;
  mutable e_key : int array;
  mutable e_srv : int array;
  mutable e_gen : int array;
  mutable e_epoch : int array;
  mutable e_stamp : int array;
  mutable e_hits : int array;  (* frequency sketch: per-entry hit count *)
  mutable e_src : Bytes.t;  (* '\001' = imported hint, '\000' = learned *)
  mutable hand : int array;
  mutable dk : Bytes.t;  (* doorkeeper bits: [ways] bytes per node *)
  mutable dk_fill : int array;  (* per node: fill attempts since reset *)
  ep_tbl : (int, int) Hashtbl.t;
  mutable guid_of : Node_id.t array;
  mutable keys : int;
  key_tbl : int Node_id.Tbl.t;
  tally : Simnet.Stats.Tally.t;
  mutable hint_k : int;  (* top-k entries exported per exchange; 0 = coop off *)
  mutable hint_budget : int;  (* max hints one line accepts per exchange event *)
}

(* hit counts saturate: the sketch orders entries by warmth, it is not
   an exact frequency *)
let hit_cap = 255

(* (key, server-handle) packed into one int: handles stay far below
   2^26 (the 1e6-node scale tier uses 2^20) and keys below 2^36. *)
let pack_pair ~key ~srv = (key lsl 26) lor srv

(* [@alloc_ok]: one structure per network / serve run. *)
let[@alloc_ok] create ~ways ~policy ~nodes =
  if ways <= 0 then invalid_arg "Obj_cache.create: ways must be positive";
  if nodes < 0 then invalid_arg "Obj_cache.create: negative nodes";
  let cells = nodes * ways in
  {
    ways;
    policy;
    nodes;
    e_key = Array.make (max 1 cells) (-1);
    e_srv = Array.make (max 1 cells) 0;
    e_gen = Array.make (max 1 cells) 0;
    e_epoch = Array.make (max 1 cells) 0;
    e_stamp = Array.make (max 1 cells) 0;
    e_hits = Array.make (max 1 cells) 0;
    e_src = Bytes.make (max 1 cells) '\000';
    hand = Array.make (max 1 nodes) 0;
    dk = Bytes.make (max 1 cells) '\000';
    dk_fill = Array.make (max 1 nodes) 0;
    ep_tbl = Hashtbl.create 256;
    guid_of = [||];
    keys = 0;
    key_tbl = Node_id.Tbl.create 256;
    tally = Simnet.Stats.Tally.create ();
    hint_k = 0;
    hint_budget = 0;
  }

let set_coop t ~hint_k ~hint_budget =
  if hint_k < 0 || hint_budget < 0 then invalid_arg "Obj_cache.set_coop";
  t.hint_k <- hint_k;
  t.hint_budget <- hint_budget

let coop_on t = t.hint_k > 0

(* [@alloc_ok]: growth doubles, so this runs O(log n) times ever; the
   serve tier only calls it at barriers. *)
let[@alloc_ok] ensure_nodes t n =
  if n > t.nodes then begin
    let nodes = max n (max 16 (2 * t.nodes)) in
    let cells = nodes * t.ways in
    let grow_cells old fill =
      let a = Array.make cells fill in
      Array.blit old 0 a 0 (t.nodes * t.ways);
      a
    in
    t.e_key <- grow_cells t.e_key (-1);
    t.e_srv <- grow_cells t.e_srv 0;
    t.e_gen <- grow_cells t.e_gen 0;
    t.e_epoch <- grow_cells t.e_epoch 0;
    t.e_stamp <- grow_cells t.e_stamp 0;
    t.e_hits <- grow_cells t.e_hits 0;
    let src = Bytes.make cells '\000' in
    Bytes.blit t.e_src 0 src 0 (t.nodes * t.ways);
    t.e_src <- src;
    let dk = Bytes.make cells '\000' in
    Bytes.blit t.dk 0 dk 0 (t.nodes * t.ways);
    t.dk <- dk;
    let hand = Array.make nodes 0 in
    Array.blit t.hand 0 hand 0 t.nodes;
    t.hand <- hand;
    let dk_fill = Array.make nodes 0 in
    Array.blit t.dk_fill 0 dk_fill 0 t.nodes;
    t.dk_fill <- dk_fill;
    t.nodes <- nodes
  end

(* [@alloc_ok]: interning is cold — once per object GUID ever. *)
let[@alloc_ok] intern t guid =
  match Node_id.Tbl.find_opt t.key_tbl guid with
  | Some k -> k
  | None ->
      let k = t.keys in
      if k >= Array.length t.guid_of then begin
        let cap = max 16 (2 * Array.length t.guid_of) in
        let gs = Array.make cap guid in
        Array.blit t.guid_of 0 gs 0 k;
        t.guid_of <- gs
      end;
      t.guid_of.(k) <- guid;
      t.keys <- k + 1;
      Node_id.Tbl.add t.key_tbl guid k;
      k

let find_key t guid =
  match Node_id.Tbl.find_opt t.key_tbl guid with Some k -> k | None -> -1

let guid_of_key t k =
  if k < 0 || k >= t.keys then invalid_arg "Obj_cache.guid_of_key";
  t.guid_of.(k)

(* [Not_found] is a constant exception: the miss path allocates
   nothing, so this is safe on the probe hot path. *)
let epoch_of t ~key ~srv =
  try Hashtbl.find t.ep_tbl (pack_pair ~key ~srv) with Not_found -> 0

(* [@alloc_ok]: unpublish-only (sync inline, serve at barriers). *)
let[@alloc_ok] bump_epoch t ~key ~srv =
  let k = pack_pair ~key ~srv in
  Hashtbl.replace t.ep_tbl k (1 + (try Hashtbl.find t.ep_tbl k with Not_found -> 0))

(* Touch an entry's replacement stamp: clock sets the reference bit,
   2-random records a per-node monotone tick (the [hand] array doubles
   as the tick counter under that policy). *)
let touch t i =
  match t.policy with
  | Clock -> t.e_stamp.(i) <- 1
  | Two_random ->
      let h = i / t.ways in
      let tick = t.hand.(h) in
      t.hand.(h) <- tick + 1;
      t.e_stamp.(i) <- tick

(* Way scans are tail-recursive over int indices: the probe/insert path
   must stay allocation-free (hot-path lint). *)
let rec scan_key t ~base ~key w =
  if w >= t.ways then -1
  else if t.e_key.(base + w) = key then base + w
  else scan_key t ~base ~key (w + 1)

let rec scan_empty t ~base w =
  if w >= t.ways then -1
  else if t.e_key.(base + w) = -1 then base + w
  else scan_empty t ~base (w + 1)

(* Cheap pre-check for hint offers: a full line cannot accept any hint
   (imports never displace resident entries), so the caller can skip a
   whole digest pass with one scan. *)
let has_empty_way t ~h =
  h < t.nodes && scan_empty t ~base:(h * t.ways) 0 >= 0

(* Weakest hint-sourced way of a line (lowest sketch count), or -1.
   Organic fills use it so resident hints can never crowd out local
   learning: see [insert_snap]. *)
let rec scan_weak_hint t ~base w bi bh =
  if w >= t.ways then bi
  else
    let i = base + w in
    if Bytes.unsafe_get t.e_src i = '\001' && (bi < 0 || t.e_hits.(i) < bh)
    then scan_weak_hint t ~base (w + 1) i t.e_hits.(i)
    else scan_weak_hint t ~base (w + 1) bi bh

let probe t ~h ~key =
  if h >= t.nodes then -1
  else begin
    let i = scan_key t ~base:(h * t.ways) ~key 0 in
    if i < 0 then -1
    else if t.e_epoch.(i) = epoch_of t ~key ~srv:t.e_srv.(i) then begin
      touch t i;
      let hv = t.e_hits.(i) in
      if hv < hit_cap then t.e_hits.(i) <- hv + 1;
      i
    end
    else begin
      (* epoch-stale: self-evict so the way frees up immediately *)
      t.e_key.(i) <- -1;
      t.e_hits.(i) <- 0;
      Bytes.unsafe_set t.e_src i '\000';
      -2
    end
  end

let probe_srv t i = t.e_srv.(i)

let probe_gen t i = t.e_gen.(i)

let probe_epoch t i = t.e_epoch.(i)

let probe_is_hint t i = Bytes.unsafe_get t.e_src i = '\001'
let probe_key t i = t.e_key.(i)
let holds t ~h ~key = h < t.nodes && scan_key t ~base:(h * t.ways) ~key 0 >= 0

(* First never-hit hint way of node [h]'s line (imported at [hits = 1]
   and not probe-hit since), or -1.  The barrier's digit-bucket offers
   use it when the line is full: a hint nobody asked for in a whole
   window is the one entry gossip may recycle for a row the bucket
   knows is hot at this aggregation point. *)
let rec scan_idle_hint t ~base w =
  if w >= t.ways then -1
  else
    let i = base + w in
    if Bytes.unsafe_get t.e_src i = '\001' && t.e_hits.(i) <= 1 then i
    else scan_idle_hint t ~base (w + 1)

let idle_hint_way t ~h =
  if h >= t.nodes then -1 else scan_idle_hint t ~base:(h * t.ways) 0

(* Overwrite way [i] with a hint entry: the bucket-offer replacement
   path (see [idle_hint_way]).  The caller has already checked the
   line does not hold [key] and that way [i] is a recyclable hint. *)
let set_hint_at t i ~key ~server ~gen ~epoch =
  t.e_key.(i) <- key;
  t.e_srv.(i) <- server;
  t.e_gen.(i) <- gen;
  t.e_epoch.(i) <- epoch;
  t.e_hits.(i) <- 1;
  Bytes.unsafe_set t.e_src i '\001';
  touch t i

(* Deterministic way hash for the 2-random policy: a multiplicative mix
   of the node handle and its draw counter.  No ambient randomness —
   the sequence is a pure function of the insert order, which the
   barrier discipline already makes domain-invariant. *)
let mix h draw =
  let x = (h * 0x9e3779b1) + (draw * 0x85ebca77) + 0x165667b1 in
  let x = x lxor (x lsr 15) in
  (x * 0x27d4eb2f) land max_int

(* second chance: clear reference bits until one is already clear *)
let rec clock_sweep t ~base pos spins =
  let w = pos mod t.ways in
  if spins >= t.ways || t.e_stamp.(base + w) <> 1 then w
  else begin
    t.e_stamp.(base + w) <- 0;
    clock_sweep t ~base (pos + 1) (spins + 1)
  end

let victim_way t h =
  let base = h * t.ways in
  match t.policy with
  | Clock ->
      let w = clock_sweep t ~base t.hand.(h) 0 in
      t.hand.(h) <- (w + 1) mod t.ways;
      base + w
  | Two_random ->
      let tick = t.hand.(h) in
      t.hand.(h) <- tick + 1;
      let w1 = base + (mix h (2 * tick) mod t.ways) in
      let w2 = base + (mix h ((2 * tick) + 1) mod t.ways) in
      if t.e_stamp.(w2) < t.e_stamp.(w1) then w2 else w1

(* Doorkeeper admission (TinyLFU-style, but a plain deterministic bit
   array): evicting a resident entry for a first-touch key is what lets
   the Zipf tail thrash the hot head out of a line, so a fill that
   would have to evict is only admitted on the key's SECOND touch
   within the line's recent history.  First touch sets a bit (8*ways
   bits per node, multiplicatively hashed) and declines; the slice is
   zeroed every 8*ways declined attempts so the memory stays bounded
   and recent.  Refreshes and empty-way fills bypass the filter — they
   evict nothing. *)
let dk_bit t ~h ~key =
  let x = mix h key land max_int in
  x mod (8 * t.ways)

let dk_admit t ~h ~key =
  let bit = dk_bit t ~h ~key in
  let byte = (h * t.ways) + (bit lsr 3) in
  let mask = 1 lsl (bit land 7) in
  let cur = Char.code (Bytes.unsafe_get t.dk byte) in
  if cur land mask <> 0 then true
  else begin
    Bytes.unsafe_set t.dk byte (Char.unsafe_chr (cur lor mask));
    let fills = t.dk_fill.(h) + 1 in
    if fills >= 8 * t.ways then begin
      Bytes.fill t.dk (h * t.ways) t.ways '\000';
      t.dk_fill.(h) <- 0
    end
    else t.dk_fill.(h) <- fills;
    false
  end

let insert_snap t ~h ~key ~server ~gen ~epoch =
  if h < t.nodes then begin
    let base = h * t.ways in
    (* refresh an existing entry or claim an empty way before evicting *)
    let i =
      let s = scan_key t ~base ~key 0 in
      if s >= 0 then s
      else begin
        let e = scan_empty t ~base 0 in
        if e >= 0 then e
        else begin
          (* resident hints never block local learning: a full line
             replaces its weakest hint before consulting the
             doorkeeper (dropping a hint evicts nothing the node
             earned, so no admission gate applies).  Without this, a
             hint-padded line makes organic fills pay the first-touch
             decline PR 9 never charged them, and coop-on loses
             organic hits it should only ever add to. *)
          let hw =
            if coop_on t then scan_weak_hint t ~base 0 (-1) 0 else -1
          in
          if hw >= 0 then hw
          else if dk_admit t ~h ~key then victim_way t h
          else -1
        end
      end
    in
    if i >= 0 then begin
      (* a learned fill of a new key (re)starts the sketch at 1 and
         clears any hint mark; a refresh keeps the accumulated count *)
      if t.e_key.(i) <> key then t.e_hits.(i) <- 1;
      Bytes.unsafe_set t.e_src i '\000';
      t.e_key.(i) <- key;
      t.e_srv.(i) <- server;
      t.e_gen.(i) <- gen;
      t.e_epoch.(i) <- epoch;
      touch t i
    end
  end

let insert t ~h ~key ~server ~gen =
  insert_snap t ~h ~key ~server ~gen ~epoch:(epoch_of t ~key ~srv:server)

(* Hint import: never clobbers an entry the node already holds for the
   key (the node's own learning wins), otherwise fills like
   [insert_snap] — empty way first, then doorkeeper-gated eviction —
   marking the entry hint-sourced.  Returns whether the hint landed. *)
let import_hint t ~h ~key ~server ~gen ~epoch =
  if h >= t.nodes then false
  else begin
    let base = h * t.ways in
    if scan_key t ~base ~key 0 >= 0 then false
    else begin
      (* a hint may only occupy an empty way — never an entry the node
         earned by fetching, and never another hint.  Imported warmth
         displacing local learning trades organic hits for hinted ones
         instead of adding to them, and hint-for-hint replacement makes
         cold hints cycle endlessly as digests rotate between windows.
         Spare ways sit exactly where hints are worth the most: the
         client-edge path nodes the unwind rarely reaches. *)
      let i = scan_empty t ~base 0 in
      if i < 0 then false
      else begin
        t.e_key.(i) <- key;
        t.e_srv.(i) <- server;
        t.e_gen.(i) <- gen;
        t.e_epoch.(i) <- epoch;
        t.e_hits.(i) <- 1;
        Bytes.unsafe_set t.e_src i '\001';
        touch t i;
        true
      end
    end
  end

(* Top-k hottest epoch-current entries of node [h]'s line, hottest
   first.  Selection is k max-scans over the line with exported entries
   marked by negating their hit count; the unmark pass halves the count
   so an entry's recorded warmth decays as it is re-exported and must be
   re-earned by fresh local hits.  One-hit entries (hits < 2) are never
   exported: a hint should certify repeated demand, not a single touch.
   Allocation-free: the max-scan threads its state through tail-call
   arguments instead of ref cells. *)
let rec hottest_way t ~base w bi bh =
  if w >= t.ways then bi
  else begin
    let i = base + w in
    let hv = t.e_hits.(i) in
    if
      hv > bh && t.e_key.(i) >= 0
      && t.e_epoch.(i) = epoch_of t ~key:t.e_key.(i) ~srv:t.e_srv.(i)
    then hottest_way t ~base (w + 1) i hv
    else hottest_way t ~base (w + 1) bi bh
  end

let rec export_loop t ~base ~f left =
  if left > 0 then begin
    let i = hottest_way t ~base 0 (-1) 1 in
    if i >= 0 then begin
      f ~key:t.e_key.(i) ~server:t.e_srv.(i) ~gen:t.e_gen.(i)
        ~epoch:t.e_epoch.(i);
      t.e_hits.(i) <- -t.e_hits.(i);
      export_loop t ~base ~f (left - 1)
    end
  end

let export_hints t ~h ~k ~f =
  if h < t.nodes && k > 0 then begin
    let base = h * t.ways in
    export_loop t ~base ~f k;
    for w = 0 to t.ways - 1 do
      let i = base + w in
      if t.e_hits.(i) < 0 then t.e_hits.(i) <- max 1 (-t.e_hits.(i) / 2)
    done
  end

let evict_at t i =
  t.e_key.(i) <- -1;
  t.e_hits.(i) <- 0;
  Bytes.unsafe_set t.e_src i '\000'

let evict t ~h ~key ~server =
  if h < t.nodes then begin
    let base = h * t.ways in
    for w = 0 to t.ways - 1 do
      if t.e_key.(base + w) = key && t.e_srv.(base + w) = server then
        evict_at t (base + w)
    done
  end

(* [@alloc_ok]: mesh-reuse replay support, called between runs.  Clears
   every soft entry — lines, sketch, hint marks, doorkeeper, clock
   hands, pair epochs, tally — but keeps the GUID interning (a pure
   identity assignment) and the coop configuration. *)
let[@alloc_ok] reset t =
  Array.fill t.e_key 0 (Array.length t.e_key) (-1);
  Array.fill t.e_srv 0 (Array.length t.e_srv) 0;
  Array.fill t.e_gen 0 (Array.length t.e_gen) 0;
  Array.fill t.e_epoch 0 (Array.length t.e_epoch) 0;
  Array.fill t.e_stamp 0 (Array.length t.e_stamp) 0;
  Array.fill t.e_hits 0 (Array.length t.e_hits) 0;
  Bytes.fill t.e_src 0 (Bytes.length t.e_src) '\000';
  Array.fill t.hand 0 (Array.length t.hand) 0;
  Bytes.fill t.dk 0 (Bytes.length t.dk) '\000';
  Array.fill t.dk_fill 0 (Array.length t.dk_fill) 0;
  Hashtbl.reset t.ep_tbl;
  Simnet.Stats.Tally.reset t.tally

let rec count_filled t i acc =
  if i >= t.nodes * t.ways then acc
  else count_filled t (i + 1) (if t.e_key.(i) >= 0 then acc + 1 else acc)

let entries t = count_filled t 0 0

(* [@alloc_ok]: audit-only sweep. *)
let[@alloc_ok] iter t ~f =
  for i = 0 to (t.nodes * t.ways) - 1 do
    if t.e_key.(i) >= 0 then
      f ~h:(i / t.ways) ~key:t.e_key.(i) ~server:t.e_srv.(i)
        ~gen:t.e_gen.(i) ~epoch:t.e_epoch.(i)
  done

(* [@alloc_ok]: diagnostics only (memory_footprint reports). *)
let[@alloc_ok] approx_bytes t =
  let word = 8 in
  let arr a = (Array.length a + 1) * word in
  arr t.e_key + arr t.e_srv + arr t.e_gen + arr t.e_epoch + arr t.e_stamp
  + arr t.e_hits + Bytes.length t.e_src
  + arr t.hand + arr t.dk_fill + Bytes.length t.dk + word
  + (Array.length t.guid_of + 1) * word
  + (Hashtbl.length t.ep_tbl * 4 * word) (* pair-epoch table, rough *)
  + (t.keys * 3 * word) (* key table entries, rough *)
  + (16 * word)
