(** Tapestry deployment parameters.

    Names follow the paper: digits are drawn from an alphabet of radix
    [base] (b), IDs are [id_digits] long, each routing-table slot keeps the
    [redundancy] (R) closest neighbors (primary + secondaries), and the
    insertion algorithm trims candidate lists to [k_list] (k = O(log n))
    entries per level.  Lemma 1 requires [base > c^2] where c is the metric's
    expansion constant. *)

type t = {
  base : int;  (** digit radix b; must be a power of two >= 2 *)
  id_digits : int;  (** digits per identifier *)
  redundancy : int;  (** R: neighbors kept per slot *)
  k_list : int;  (** k: neighbor-list width during insertion *)
  k_fixed : bool;  (** use [k_list] verbatim instead of scaling with log n (experiments) *)
  root_set_size : int;  (** |R_psi|: surrogate roots per object *)
  pointer_ttl : float;  (** soft-state lifetime of an object pointer *)
  republish_interval : float;  (** how often servers republish *)
  digit_bits : int;
      (** log2 [base], precomputed so the PRR-like first-hole rule never
          recounts it per hop.  Derived: {!Network.create} re-derives it via
          {!normalize}, so [{ default with base }] updates need not (and
          should not) set it by hand. *)
  expected_nodes : int;
      (** Expected final population (0 = unknown).  A capacity hint only:
          directory hashtables, the node arena and the alive array are
          pre-sized from it so bulk construction never pays a rehash/copy
          storm.  Never affects results — only allocation behavior. *)
}

val default : t
(** b = 16, 8-digit IDs, R = 3, k = 16, one root, TTL 300, republish 100. *)

val bits_of_base : int -> int
(** Bit width of one digit: log2 of a power-of-two base. *)

val normalize : t -> t
(** Recompute the derived [digit_bits] field from [base]. *)

val validate : t -> (unit, string) result

val table_capacity : ?floor:int -> t -> int
(** Initial-capacity hint for population-keyed hashtables: [expected_nodes]
    when declared (clamped up to [floor], default 64), else [floor]. *)

val scaled_k : t -> n:int -> int
(** [k] scaled to max(k_list, 4 ceil(log2 n)) — the O(log n) choice the
    theorems require, with [k_list] as a floor.  With [k_fixed] set, exactly
    [k_list] (for the k-sensitivity experiments). *)

val pp : Format.formatter -> t -> unit
