type variant = Native | Prr_like

let equal_variant a b =
  match a with
  | Native -> ( match b with Native -> true | Prr_like -> false)
  | Prr_like -> ( match b with Prr_like -> true | Native -> false)

type info = { root : Node.t; path : Node.t list; surrogate_hops : int }

let default_on_dead net ~owner ~dead = Network.drop_link net ~owner ~target:dead

(* Pick the first alive entry of a slot, lazily purging dead ones (each purge
   costs a probe message: the paper's timeout-based failure detection).
   Entries resolve through the network's handle arena — one array read, no
   hashing, no slot-list allocation; only entries injected without a handle
   (test fault injection) fall back to the directory.  The scan restarts
   after a purge because [on_dead] may rewrite the slot arbitrarily. *)
let rec first_alive net on_dead skip (owner : Node.t) ~level ~digit =
  scan net on_dead skip owner ~level ~digit
    ~len:(Routing_table.slot_len owner.Node.table ~level ~digit)
    ~k:0

and scan net on_dead skip (owner : Node.t) ~level ~digit ~len ~k =
  if k >= len then None
  else begin
    let table = owner.Node.table in
    let id = Routing_table.slot_id table ~level ~digit ~k in
    if skip id then scan net on_dead skip owner ~level ~digit ~len ~k:(k + 1)
    else begin
      let h = Routing_table.slot_handle table ~level ~digit ~k in
      if h >= 0 then begin
        let n = Network.node_of_handle net h in
        if Node.is_alive n then Some n
        else purge net on_dead skip owner ~level ~digit ~dead:id
      end
      else
        match Network.find net id with
        | Some n when Node.is_alive n -> Some n
        | _ -> purge net on_dead skip owner ~level ~digit ~dead:id
    end
  end

and purge net on_dead skip (owner : Node.t) ~level ~digit ~dead =
  Simnet.Cost.message net.Network.cost ~dist:0.;
  on_dead net ~owner ~dead;
  (* ensure progress even if on_dead did not remove the entry *)
  ignore (Routing_table.remove owner.Node.table dead);
  first_alive net on_dead skip owner ~level ~digit

(* Most-significant-bit agreement between two digits, used by the PRR-like
   variant's first-hole rule.  [bits] is the digit width, precomputed in
   [Config.digit_bits]. *)
let rec msb_agree a b i acc =
  if i < 0 then acc
  else if (a lsr i) land 1 = (b lsr i) land 1 then msb_agree a b (i - 1) (acc + 1)
  else acc

let msb_agreement ~bits a b = msb_agree a b (bits - 1) 0

type walk_state = { mutable hole_seen : bool; mutable surrogate_hops : int }

(* Count trailing zeros of a non-zero mask (< 2^32: base <= 32), de Bruijn
   multiply — branch-free, the digit scan's inner step. *)
let ntz_table =
  [|
    0; 1; 28; 2; 29; 14; 24; 3; 30; 22; 20; 15; 25; 17; 4; 8; 31; 27; 13; 23;
    21; 19; 16; 7; 26; 12; 18; 6; 11; 5; 10; 9;
  |]

let ntz x = ntz_table.((((x land -x) * 0x077CB531) land 0xFFFFFFFF) lsr 27)

(* The digit scans below consult {!Routing_table.filled_mask} instead of
   probing every slot: the next filled digit in wrap order comes from one
   rotate + count-trailing-zeros, so holes — most of every level past the
   resolvable prefix — cost nothing.  The mask is re-read after every failed
   probe because [on_dead] repair may rewrite slots mid-scan (skipping
   between probes is pure, so batching the skip is observationally
   identical to the per-digit scan).  These are top-level functions (not
   closures inside [choose_next]) so a walk allocates nothing per level. *)
let rec native_scan net on_dead skip state (node : Node.t) ~level ~want ~base
    tries =
  if tries >= base then None
  else begin
    let m = Routing_table.filled_mask node.Node.table ~level in
    let start = want + tries in
    let start = if start >= base then start - base else start in
    (* rotate so bit 0 is digit [start]; the low [base] bits survive *)
    let m = ((m lsr start) lor (m lsl (base - start))) land ((1 lsl base) - 1) in
    if m = 0 then None
    else begin
      let tries = tries + ntz m in
      if tries >= base then None
      else begin
        let j = want + tries in
        let j = if j >= base then j - base else j in
        match first_alive net on_dead skip node ~level ~digit:j with
        | Some n ->
            if tries > 0 then state.hole_seen <- true;
            Some n
        | None ->
            native_scan net on_dead skip state node ~level ~want ~base (tries + 1)
      end
    end
  end

(* At the first hole (PRR-like): the filled digit with the best
   most-significant-bit agreement with the wanted digit, ties to the
   numerically higher digit.  Int accumulators and an exempt [Some], so
   even this rare branch allocates nothing. *)
let rec first_hole_best net on_dead skip (node : Node.t) ~level ~want ~bits
    ~base j ~best_s ~best_j ~best =
  if j >= base then best
  else
    let cand =
      if Routing_table.filled_mask node.Node.table ~level land (1 lsl j) <> 0
      then first_alive net on_dead skip node ~level ~digit:j
      else None
    in
    match cand with
    | Some _ ->
        let s = msb_agreement ~bits want j in
        if s > best_s || (s = best_s && j > best_j) then
          first_hole_best net on_dead skip node ~level ~want ~bits ~base (j + 1)
            ~best_s:s ~best_j:j ~best:cand
        else
          first_hole_best net on_dead skip node ~level ~want ~bits ~base (j + 1)
            ~best_s ~best_j ~best
    | None ->
        first_hole_best net on_dead skip node ~level ~want ~bits ~base (j + 1)
          ~best_s ~best_j ~best

(* After the first hole (PRR-like): numerically highest filled digit. *)
let rec prr_down net on_dead skip (node : Node.t) ~level j =
  if j < 0 then None
  else if Routing_table.filled_mask node.Node.table ~level land (1 lsl j) = 0
  then prr_down net on_dead skip node ~level (j - 1)
  else
    match first_alive net on_dead skip node ~level ~digit:j with
    | Some n -> Some n
    | None -> prr_down net on_dead skip node ~level (j - 1)

(* Choose the next node at [level]; None means every slot at this level is
   empty of alive nodes (impossible while the owner is alive, since it
   occupies its own slot). *)
let choose_next net on_dead skip variant state (node : Node.t) guid ~level =
  let base = Routing_table.base node.Node.table in
  let want = Node_id.digit guid level in
  match variant with
  | Native -> native_scan net on_dead skip state node ~level ~want ~base 0
  | Prr_like ->
      let hit =
        if state.hole_seen then None
        else if
          Routing_table.filled_mask node.Node.table ~level land (1 lsl want) = 0
        then None
        else first_alive net on_dead skip node ~level ~digit:want
      in
      (match hit with
      | Some n -> Some n
      | None when not state.hole_seen ->
          state.hole_seen <- true;
          let bits = net.Network.config.Config.digit_bits in
          first_hole_best net on_dead skip node ~level ~want ~bits ~base 0
            ~best_s:(-1) ~best_j:(-1) ~best:None
      | None -> prr_down net on_dead skip node ~level (base - 1))

(* [@alloc_ok]: one walk allocates its [walk_state] record, the [walk]
   closure over it and the result tuple — a fixed handful of words per
   routed message.  The per-hop digit scans above allocate nothing. *)
let[@alloc_ok] walk_internal variant on_dead skip net ~from guid ~init ~f =
  let digits = net.Network.config.Config.id_digits in
  let state = { hole_seen = false; surrogate_hops = 0 } in
  let rec walk (node : Node.t) level acc =
    if level >= digits then (node, acc, false, state.surrogate_hops)
    else
      match choose_next net on_dead skip variant state node guid ~level with
      | None -> (node, acc, false, state.surrogate_hops)
      | Some next ->
          if next.Node.handle = node.Node.handle then walk node (level + 1) acc
          else begin
            Network.charge net node next;
            if state.hole_seen then
              state.surrogate_hops <- state.surrogate_hops + 1;
            match f acc next with
            | `Stop acc -> (next, acc, true, state.surrogate_hops)
            | `Continue acc -> walk next (level + 1) acc
          end
  in
  match f init from with
  | `Stop acc -> (from, acc, true, 0)
  | `Continue acc -> walk from 0 acc

(* [@alloc_ok] below: the public entry points build their skip predicate
   and fold callback once per operation, and [route_to_root] /
   [route_to_node] allocate the path list their callers asked for. *)
let[@alloc_ok] resolve_skip exclude skip =
  match (exclude, skip) with
  | Some x, None -> fun id -> Node_id.equal x id
  | None, Some p -> p
  | None, None -> fun _ -> false
  | Some x, Some p -> fun id -> Node_id.equal x id || p id

let[@alloc_ok] fold_path ?(variant = Native) ?(on_dead = default_on_dead)
    ?exclude ?skip net ~from guid ~init ~f =
  let node, acc, stopped, _ =
    walk_internal variant on_dead (resolve_skip exclude skip) net ~from guid ~init ~f
  in
  (node, acc, stopped)

let[@alloc_ok] route_to_root ?(variant = Native) ?(on_dead = default_on_dead)
    ?exclude ?skip net ~from guid =
  let root, rev_path, _, surrogate_hops =
    walk_internal variant on_dead (resolve_skip exclude skip) net ~from guid
      ~init:[] ~f:(fun path node -> `Continue (node :: path))
  in
  { root; path = List.rev rev_path; surrogate_hops }

let[@alloc_ok] route_to_node ?on_dead ?exclude ?skip net ~from target_id =
  let final, rev_path, _ =
    fold_path ?on_dead ?exclude ?skip net ~from target_id ~init:[]
      ~f:(fun path node ->
        let path = node :: path in
        if Node_id.equal node.Node.id target_id then `Stop path else `Continue path)
  in
  let path = List.rev rev_path in
  if Node_id.equal final.Node.id target_id then (Some final, path) else (None, path)

let[@alloc_ok] peek_first_hop ?(variant = Native) ?(on_dead = default_on_dead)
    ?exclude ?skip net (node : Node.t) guid =
  let digits = net.Network.config.Config.id_digits in
  let state = { hole_seen = false; surrogate_hops = 0 } in
  let skip = resolve_skip exclude skip in
  let rec go level =
    if level >= digits then None
    else
      match choose_next net on_dead skip variant state node guid ~level with
      | None -> None
      | Some next ->
          if next.Node.handle = node.Node.handle then go (level + 1) else Some next
  in
  go 0
