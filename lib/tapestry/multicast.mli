(** Acknowledged multicast (Section 4.1, Figures 8 and 11).

    Reaches every node whose ID starts with a given prefix: each recipient
    forwards to one node per one-digit extension of the prefix (one of which
    is itself, at a deeper level), applies the payload function when it can
    forward no further, and acknowledges its parent once all children have
    acknowledged.  In a consistent network (Property 1) the messages form a
    spanning tree of the prefix set (Theorem 5), so reaching [k] nodes costs
    [k - 1] inter-node messages.

    The watch-list variant of Figure 11 additionally carries the inserting
    node's empty-slot bitmap so that concurrent insertions filling different
    holes discover each other (Lemma 6); discovered fillers are reported to
    the [on_watch_hit] callback. *)

type result = {
  reached : Node.t list;  (** every node with the prefix, each exactly once *)
  tree_edges : int;  (** inter-node multicast messages sent *)
}

val run :
  ?on_watch_hit:(level:int -> digit:int -> Node.t -> unit) ->
  ?watchlist:bool array array ->
  Network.t ->
  start:Node.t ->
  prefix:int array ->
  len:int ->
  apply:(Node.t -> unit) ->
  result
(** [run net ~start ~prefix ~len ~apply] multicasts from [start] (which must
    carry the prefix) to all nodes sharing [prefix[0..len)].  [apply] runs
    once per reached node.  When [watchlist] is given ([watchlist.(l).(d)]
    true = slot still empty at the inserting node), every recipient able to
    fill a watched hole triggers [on_watch_hit] and the slot is marked found.

    The descent runs on the network's {!Scratch} buffers: visited marking is
    a generation stamp over arena handles, per-digit target sets are
    snapshotted as segments of one shared handle stack, and the prefix lives
    in a single mutable buffer — no per-edge allocation.  Each tree edge's
    acknowledgment is charged as that edge's subtree completes, so cost
    snapshots taken between interleaved staged insertions attribute every
    ack to the insertion that caused it (totals are unchanged).

    @raise Invalid_argument if [start] does not carry the prefix. *)

(** The pre-packing descent (hashtable visited set, per-edge prefix copies,
    list-built target sets, acks charged in one batch after the walk), kept
    as a reference oracle for the differential insertion suite and the
    paired microbenchmarks.  Observable behavior — reached set and order,
    tree edges, watch hits, total cost — is identical to {!run}. *)
module Oracle : sig
  val run :
    ?on_watch_hit:(level:int -> digit:int -> Node.t -> unit) ->
    ?watchlist:bool array array ->
    Network.t ->
    start:Node.t ->
    prefix:int array ->
    len:int ->
    apply:(Node.t -> unit) ->
    result
end
