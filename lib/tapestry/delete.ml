type stats = {
  notified : int;
  pointers_rerouted : int;
  objects_rerooted : int;
}

let repair_hole net ~(owner : Node.t) ~level ~digit =
  if not (Routing_table.is_hole owner.Node.table ~level ~digit) then true
  else begin
    (* Local search: ask every remaining neighbor that shares [level] digits
       for its own (prefix, digit) entries. *)
    let offered = ref false in
    Routing_table.known_at_level owner.Node.table ~level
    |> List.iter (fun id ->
           match Network.find net id with
           | Some peer when Node.is_alive peer ->
               Network.charge_aside net owner peer;
               Network.charge_aside net peer owner;
               Routing_table.slot peer.Node.table ~level ~digit
               |> List.iter (fun (e : Routing_table.entry) ->
                      match Network.find net e.id with
                      | Some cand when Node.is_alive cand ->
                          if Network.offer_link net ~owner ~level ~candidate:cand
                          then offered := true
                      | _ -> ())
           | _ -> ());
    if !offered then true
    else begin
      (* Routed probe: surrogate-route toward an ID with the wanted prefix;
         the maximal-prefix property of the root answers existence exactly. *)
      let target_digits = Node_id.digits owner.Node.id in
      target_digits.(level) <- digit;
      let target = Node_id.make target_digits in
      let info = Route.route_to_root net ~from:owner target in
      let root = info.Route.root in
      if
        (not (Node_id.equal root.Node.id owner.Node.id))
        && Node_id.common_prefix_len root.Node.id target >= level + 1
      then Network.offer_link net ~owner ~level ~candidate:root
      else false
    end
  end

(* Re-push every pointer record at [owner]; records whose path is unchanged
   converge at the first hop, so this is cheap when nothing moved. *)
let reoptimize_pointers net ~(owner : Node.t) =
  let n = ref 0 in
  Pointer_store.records owner.Node.pointers
  |> List.iter (fun r ->
         incr n;
         Maintenance.optimize_object_ptrs net ~changed:owner r);
  !n

let on_dead_repair net ~owner ~dead =
  let levels = Routing_table.remove owner.Node.table dead in
  (match Network.find net dead with
  | Some d ->
      List.iter
        (fun level -> Routing_table.remove_backpointer d.Node.table ~level owner.Node.id)
        levels
  | None -> ());
  List.iter
    (fun level ->
      let digit =
        match Network.find net dead with
        | Some (d : Node.t) -> Node_id.digit d.Node.id level
        | None -> -1
      in
      if digit >= 0 && Routing_table.is_hole owner.Node.table ~level ~digit then
        ignore (repair_hole net ~owner ~level ~digit))
    levels;
  ignore (reoptimize_pointers net ~owner)

let fail net node = Network.mark_dead net node

let voluntary net (node : Node.t) =
  (match node.Node.status with
  | Node.Active -> ()
  | _ -> invalid_arg "Delete.voluntary: node is not active");
  Network.begin_leaving net node;
  let cfg = net.Network.config in
  (* The data leaves with the node: withdraw its replicas first. *)
  let replicas = Node_id.Tbl.fold (fun g () acc -> g :: acc) node.Node.replicas [] in
  List.iter (fun guid -> Publish.unpublish net ~server:node guid) replicas;
  (* Phase 1: notify backpointer holders with per-level replacements. *)
  let notified = ref 0 in
  let rerouted = ref 0 in
  List.iter
    (fun (level, holder_id) ->
      match Network.find net holder_id with
      | Some holder when Node.is_alive holder ->
          incr notified;
          Network.charge net node holder;
          (* Records at the holder that route through the leaver must move;
             capture them before the link goes away. *)
          let moving =
            Pointer_store.records holder.Node.pointers
            |> List.filter (fun (r : Pointer_store.record) ->
                   let salted =
                     Network.salted net r.Pointer_store.guid
                       r.Pointer_store.root_idx
                   in
                   match Route.peek_first_hop net holder salted with
                   | Some hop -> Node_id.equal hop.Node.id node.Node.id
                   | None -> false)
          in
          (* Replacement candidates: the leaver's own slot for its digit at
             this level holds exactly the nodes that can stand in for it. *)
          let digit = Node_id.digit node.Node.id level in
          Routing_table.slot node.Node.table ~level ~digit
          |> List.iter (fun (e : Routing_table.entry) ->
                 if not (Node_id.equal e.id node.Node.id) then
                   match Network.find net e.id with
                   | Some cand when Node.is_alive cand ->
                       ignore (Network.offer_link net ~owner:holder ~level ~candidate:cand)
                   | _ -> ());
          Network.drop_link net ~owner:holder ~target:node.Node.id;
          if Routing_table.is_hole holder.Node.table ~level ~digit then
            ignore (repair_hole net ~owner:holder ~level ~digit);
          List.iter
            (fun r ->
              incr rerouted;
              Maintenance.optimize_object_ptrs net ~changed:holder r)
            moving
      | _ -> ())
    (Routing_table.all_backpointers node.Node.table);
  (* Phase 2: re-root the objects this node is root for, with itself masked
     out of every lookup. *)
  let rerooted = ref 0 in
  Pointer_store.records node.Node.pointers
  |> List.iter (fun (r : Pointer_store.record) ->
         let salted =
           Network.salted net r.Pointer_store.guid
             r.Pointer_store.root_idx
         in
         let is_root = Option.is_none (Route.peek_first_hop net node salted) in
         if is_root then begin
           incr rerooted;
           let expires = net.Network.clock +. cfg.Config.pointer_ttl in
           let _, _, _ =
             Route.fold_path ~exclude:node.Node.id net ~from:node salted
               ~init:node.Node.id
               ~f:(fun sender hop ->
                 if Node_id.equal hop.Node.id node.Node.id then
                   `Continue hop.Node.id
                 else begin
                   ignore
                     (Pointer_store.store hop.Node.pointers
                        ~guid:r.Pointer_store.guid ~server:r.Pointer_store.server
                        ~root_idx:r.Pointer_store.root_idx ~previous:(Some sender)
                        ~expires);
                   `Continue hop.Node.id
                 end)
           in
           ()
         end);
  (* Final phase: sever remaining forward links and disconnect. *)
  Routing_table.iter_entries node.Node.table (fun ~level ~digit:_ e ->
      match Network.find net e.Routing_table.id with
      | Some peer when not (Node_id.equal peer.Node.id node.Node.id) ->
          Routing_table.remove_backpointer peer.Node.table ~level node.Node.id;
          (* defensive: if the peer still lists us, drop that link too *)
          Network.drop_link net ~owner:peer ~target:node.Node.id
      | _ -> ());
  Network.mark_dead net node;
  { notified = !notified; pointers_rerouted = !rerouted; objects_rerooted = !rerooted }

let repair_all_holes net =
  let filled = ref 0 in
  List.iter
    (fun (owner : Node.t) ->
      (* purge dead entries first so holes are visible *)
      Routing_table.iter_entries owner.Node.table (fun ~level:_ ~digit:_ e ->
          match Network.find net e.Routing_table.id with
          | Some n when Node.is_alive n -> ()
          | _ -> ignore (Routing_table.remove owner.Node.table e.Routing_table.id));
      List.iter
        (fun (level, digit) ->
          if repair_hole net ~owner ~level ~digit then incr filled)
        (Routing_table.holes owner.Node.table))
    (Network.core_nodes net);
  !filled
