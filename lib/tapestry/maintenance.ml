let salted_of net (r : Pointer_store.record) =
  Network.salted net r.guid r.root_idx

let rec delete_backward_from net ~changed ~guid ~server ~root_idx (node : Node.t) =
  match Pointer_store.find node.Node.pointers ~guid ~server ~root_idx with
  | None -> ()
  | Some r ->
      let prev = r.previous in
      ignore (Pointer_store.remove node.Node.pointers ~guid ~server ~root_idx);
      (match prev with
      | Some p when not (Node_id.equal p changed) -> (
          match Network.find net p with
          | Some pnode when Node.is_alive pnode ->
              Network.charge net node pnode;
              delete_backward_from net ~changed ~guid ~server ~root_idx pnode
          | _ -> ())
      | _ -> ())

let delete_pointers_backward net ~changed ~guid ~server ~root_idx ~from =
  match Network.find net from with
  | Some node when Node.is_alive node ->
      delete_backward_from net ~changed ~guid ~server ~root_idx node
  | _ -> ()

let optimize_object_ptrs ?variant net ~(changed : Node.t) (r : Pointer_store.record) =
  let salted = salted_of net r in
  let guid = r.guid and server = r.server and root_idx = r.root_idx in
  let expires = net.Network.clock +. net.Network.config.Config.pointer_ttl in
  (* Walk the new path from the changed node; each visited node refreshes its
     record with the new last hop.  The first node that already held the
     record is the convergence point: the path above it is unchanged, and the
     old branch hanging off its previous pointer is deleted backward. *)
  let _, _, _ =
    Route.fold_path ?variant net ~from:changed salted ~init:changed.Node.id
      ~f:(fun sender node ->
        if Node_id.equal node.Node.id changed.Node.id then `Continue node.Node.id
        else begin
          let previous = Some sender in
          match
            Pointer_store.store node.Node.pointers ~guid ~server ~root_idx
              ~previous ~expires
          with
          | `New -> `Continue node.Node.id
          | `Refreshed old -> (
              match old with
              | Some old_prev
                when (not (Node_id.equal old_prev sender))
                     && not (Node_id.equal old_prev changed.Node.id) ->
                  (match Network.find net old_prev with
                  | Some pnode when Node.is_alive pnode ->
                      Network.charge net node pnode
                  | _ -> ());
                  delete_pointers_backward net ~changed:changed.Node.id ~guid
                    ~server ~root_idx ~from:old_prev;
                  `Stop node.Node.id
              | _ -> `Stop node.Node.id)
        end)
  in
  ()

let optimize_through ?variant net ~(node : Node.t) ~next_hop =
  let moved = ref 0 in
  Pointer_store.records node.Node.pointers
  |> List.iter (fun (r : Pointer_store.record) ->
         let salted = salted_of net r in
         match Route.peek_first_hop ?variant net node salted with
         | Some hop when Node_id.equal hop.Node.id next_hop ->
             incr moved;
             optimize_object_ptrs ?variant net ~changed:node r
         | _ -> ());
  !moved

let expire_all net =
  List.fold_left
    (fun acc (n : Node.t) ->
      acc + Pointer_store.expire n.Node.pointers ~now:net.Network.clock)
    0
    (Network.alive_nodes net)

let republish_all net =
  List.fold_left
    (fun acc (n : Node.t) ->
      let count = ref 0 in
      Node_id.Tbl.iter
        (fun guid () ->
          incr count;
          ignore (Publish.republish net ~server:n guid))
        n.Node.replicas;
      acc + !count)
    0
    (Network.alive_nodes net)

let tick net ~dt =
  let cfg = net.Network.config in
  let before = net.Network.clock in
  net.Network.clock <- before +. dt;
  let interval = cfg.Config.republish_interval in
  let crossed =
    int_of_float (net.Network.clock /. interval) > int_of_float (before /. interval)
  in
  if crossed then ignore (republish_all net);
  ignore (expire_all net)
