type stats = {
  nodes_touched : int;
  primaries_changed : int;
  pointers_moved : int;
  cost : Simnet.Cost.t;
}

(* Re-route the records at [node] whose next hop changed; idempotent and
   cheap when nothing moved (the optimize walk converges at the first hop). *)
let repoint net (node : Node.t) =
  let moved = ref 0 in
  Pointer_store.records node.Node.pointers
  |> List.iter (fun (r : Pointer_store.record) ->
         Maintenance.optimize_object_ptrs net ~changed:node r;
         incr moved);
  !moved

let measure_entry net (owner : Node.t) id =
  match Network.find net id with
  | Some peer when Node.is_alive peer ->
      (* a ping and its echo *)
      Network.charge_aside net owner peer;
      Network.charge_aside net peer owner;
      Some (Network.dist net owner peer)
  | _ -> None

let run_per_node net work =
  let touched = ref 0 and changed = ref 0 and moved = ref 0 in
  let (), cost =
    Network.measure net (fun () ->
        List.iter
          (fun (node : Node.t) ->
            incr touched;
            let c = work node in
            if c > 0 then begin
              changed := !changed + c;
              moved := !moved + repoint net node
            end)
          (Network.core_nodes net))
  in
  {
    nodes_touched = !touched;
    primaries_changed = !changed;
    pointers_moved = !moved;
    cost;
  }

let rotate_primaries net =
  run_per_node net (fun node ->
      Routing_table.update_distances node.Node.table
        ~measure:(measure_entry net node))

let share_tables net =
  run_per_node net (fun node ->
      (* ship each level's entries to the level's known neighbors; the
         receivers re-measure and keep whatever is closer *)
      let improved = ref 0 in
      let levels = Routing_table.levels node.Node.table in
      for level = 0 to levels - 1 do
        match Routing_table.known_at_level node.Node.table ~level with
        | [] -> ()
        | entries ->
          List.iter
            (fun peer_id ->
              match Network.find net peer_id with
              | Some peer when Node.is_alive peer ->
                  Network.charge_aside net node peer;
                  List.iter
                    (fun cand_id ->
                      match Network.find net cand_id with
                      | Some cand when Node.is_alive cand ->
                          if Network.offer_link net ~owner:peer ~level ~candidate:cand
                          then incr improved
                      | _ -> ())
                    entries
              | _ -> ())
            entries
      done;
      (* refresh our own ordering too, so new offers take primary slots *)
      !improved
      + Routing_table.update_distances node.Node.table
          ~measure:(measure_entry net node))

let rebuild_level net ~level =
  run_per_node net (fun node ->
      if level >= Routing_table.levels node.Node.table then 0
      else begin
        (* one GetNextList step: ask the level-(level+1)-ish contacts for
           their level-[level] pointers and merge the k closest *)
        let k = Config.scaled_k net.Network.config ~n:(Network.node_count net) in
        let sources =
          Routing_table.known_at_level node.Node.table ~level
          |> List.filter_map (fun id ->
                 match Network.find net id with
                 | Some m when Node.is_alive m -> Some m
                 | _ -> None)
        in
        let found =
          Nearest_neighbor.get_next_list net ~new_node:node ~level sources ~k
        in
        let before =
          Routing_table.update_distances node.Node.table
            ~measure:(measure_entry net node)
        in
        List.iter
          (fun m -> ignore (Network.offer_link_all_levels net ~owner:node ~candidate:m))
          found;
        before
      end)

let full_rebuild net =
  run_per_node net (fun node ->
      let changed =
        Routing_table.update_distances node.Node.table
          ~measure:(measure_entry net node)
      in
      (* rerun the acquisition exactly as a fresh join would: find the
         current surrogate (self masked out), multicast for the alpha list,
         then the Section 3 descent *)
      let info = Route.route_to_root ~exclude:node.Node.id net ~from:node node.Node.id in
      let surrogate = info.Route.root in
      if Node_id.equal surrogate.Node.id node.Node.id then changed
      else begin
        let shared = Node_id.common_prefix_len node.Node.id surrogate.Node.id in
        let mcast =
          Multicast.run net ~start:surrogate ~prefix:(Node_id.digits node.Node.id)
            ~len:shared ~apply:ignore
        in
        ignore
          (Nearest_neighbor.acquire_neighbor_table net ~new_node:node ~surrogate
             ~initial_list:mcast.Multicast.reached);
        changed
      end)
