(** Full mesh invariant audit (run at quiescent points).

    Extends {!Verify} (which checks Property 4 pointer paths) with the
    structural invariants the paper's correctness argument rests on:

    - {b hole certification} (Property 1 / Definition 1): an empty slot of
      a core node certifies that {e no} core node extends that
      (prefix, digit) — each hole is proved against the full membership;
    - {b slot ordering and primacy} (Property 2): entries in every slot
      ascend by network distance, so the closest candidate is primary;
    - {b backpointer symmetry} (Section 2.1): A holds B at level l iff B
      has a level-l backpointer to A, in both directions;
    - {b owner presence}: every node fills its own digit slot at every
      level (routing and multicast rely on it);
    - {b handle consistency}: every entry carrying an arena handle resolves
      through {!Network.node_of_handle} to the node it names (the packed
      hot path depends on it);
    - {b pointer expiry consistency} (Section 2.2 soft state): no node
      retains an object pointer past its expiry;
    - {b cache coherence} (PR 9): when an {!Obj_cache} is attached, every
      cached entry either names a registered, epoch-current, live server
      that still holds the replica, or is provably redirectable — its
      epoch snapshot is behind (a probe self-evicts it) or its server is
      dead (the probe's liveness check rejects it).  Either way a stale
      hit degrades to the ordinary climb and never yields a wrong
      answer; see DESIGN.md §10.

    All checks walk the network without charging, so audits can be
    interleaved with measured runs.  Consumed by tests and by
    [tapestry_sim build --audit]. *)

type violation =
  | Uncertified_hole of {
      node : Node_id.t;
      level : int;
      digit : int;
      witness : Node_id.t;  (** a core node proving the hole is a lie *)
    }
  | Misordered_slot of { node : Node_id.t; level : int; digit : int }
  | Misplaced_entry of {
      node : Node_id.t;
      level : int;
      digit : int;
      entry : Node_id.t;  (** entry whose ID does not select this slot *)
    }
  | Dangling_entry of {
      node : Node_id.t;
      level : int;
      digit : int;
      entry : Node_id.t;  (** entry pointing at a dead or unknown node *)
    }
  | Stale_handle of {
      node : Node_id.t;
      level : int;
      digit : int;
      entry : Node_id.t;
          (** entry whose cached arena handle resolves to a different node *)
    }
  | Missing_backpointer of {
      holder : Node_id.t;
      level : int;
      target : Node_id.t;  (** held by [holder] but not backpointing it *)
    }
  | Stale_backpointer of {
      node : Node_id.t;
      level : int;
      source : Node_id.t;  (** backpointer source that no longer holds [node] *)
    }
  | Missing_owner of { node : Node_id.t; level : int }
  | Expired_pointer of {
      node : Node_id.t;
      guid : Node_id.t;
      server : Node_id.t;
      root_idx : int;
      expires : float;
    }
  | Footprint_excess of { total_bytes : int; budget_bytes : int }
      (** {!Network.memory_footprint} exceeds the O(n log n) space budget
          (Table 1): per-node fixed table cost plus an O(log n) allowance,
          2x slack.  Trips on superlinear-per-node regressions. *)
  | Cache_incoherent of {
      holder : Node_id.t option;
          (** cache-line owner; [None] = line beyond the arena *)
      guid : Node_id.t;
      reason : string;
    }
      (** An {!Obj_cache} entry that is neither currently valid nor
          provably redirectable (see the coherence bullet above). *)

type report = {
  nodes_audited : int;
  entries_checked : int;  (** non-owner routing entries examined *)
  holes_certified : int;  (** empty slots proved to be genuine holes *)
  violations : violation list;
}

val run : Network.t -> report
(** Audit every alive node (hole certification is restricted to core
    nodes, matching Definition 1).  Charge-free. *)

val is_clean : report -> bool

val violation_code : violation -> string
(** Stable short code per constructor (e.g. ["uncertified-hole"]), used by
    tests to assert exactly which corruption was detected. *)

val pp_violation : Format.formatter -> violation -> unit

val pp_report : Format.formatter -> report -> unit
