(* Salted-GUID cache keys: (identifier, root-set index). *)
module Salt_key = struct
  type t = Node_id.t * int

  let equal (a, i) (b, j) = Int.equal i j && Node_id.equal a b

  let hash (id, i) = (Node_id.hash id * 31) + i
end

module Salt_tbl = Hashtbl.Make (Salt_key)

type t = {
  config : Config.t;
  metric : Simnet.Metric.t;
  nodes : Node.t Node_id.Tbl.t;
  index : Id_index.t;
  core_index : Id_index.t;
  mutable arena : Node.t array;
  mutable arena_len : int;
  mutable alive_arr : Node.t array;
  mutable alive_len : int;
  alive_slot : int Node_id.Tbl.t;
  salts : Node_id.t Salt_tbl.t;
  scratch : Scratch.t;
  mutable rng : Simnet.Rng.t;
  cost : Simnet.Cost.t;
  mutable clock : float;
  mutable obj_cache : Obj_cache.t option;
}

let create ?(seed = 42) config metric =
  (match Config.validate config with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Network.create: " ^ msg));
  (* Directory tables are sized for the declared population up front: at
     10^6 nodes the doubling cascade otherwise rehashes every key ~14
     times and transiently holds three copies of the bucket array. *)
  let cap = Config.table_capacity config in
  {
    config = Config.normalize config;
    metric;
    nodes = Node_id.Tbl.create cap;
    index = Id_index.create ~base:config.base;
    core_index = Id_index.create ~base:config.base;
    arena = [||];
    arena_len = 0;
    alive_arr = [||];
    alive_len = 0;
    alive_slot = Node_id.Tbl.create cap;
    salts = Salt_tbl.create 64;
    scratch = Scratch.create ();
    rng = Simnet.Rng.create seed;
    cost = Simnet.Cost.make ();
    clock = 0.;
    obj_cache = None;
  }

let dist t (a : Node.t) (b : Node.t) = Simnet.Metric.dist t.metric a.addr b.addr

let charge t a b = Simnet.Cost.send t.cost ~dist:(dist t a b)

let charge_aside t a b = Simnet.Cost.message t.cost ~dist:(dist t a b)

let measure t f =
  let before = Simnet.Cost.snapshot t.cost in
  let r = f () in
  (r, Simnet.Cost.diff (Simnet.Cost.snapshot t.cost) before)

let without_charging t f =
  let s = Simnet.Cost.snapshot t.cost in
  Fun.protect
    ~finally:(fun () ->
      t.cost.Simnet.Cost.messages <- s.Simnet.Cost.messages;
      t.cost.Simnet.Cost.hops <- s.Simnet.Cost.hops;
      t.cost.Simnet.Cost.latency <- s.Simnet.Cost.latency)
    f

let find t id = Node_id.Tbl.find_opt t.nodes id

let node_of_handle t h = t.arena.(h)

let salted t id i =
  if i = 0 then id
  else begin
    let key = (id, i) in
    match Salt_tbl.find_opt t.salts key with
    | Some s -> s
    | None ->
        let s = Node_id.salt ~base:t.config.Config.base id i in
        Salt_tbl.replace t.salts key s;
        s
  end

let find_exn t id =
  match find t id with
  | Some n -> n
  | None -> invalid_arg ("Network.find_exn: unknown node " ^ Node_id.to_string id)

(* --- node arena: append-only, one immutable int handle per node --- *)

let push_arena t (node : Node.t) =
  if t.arena_len = Array.length t.arena then begin
    (* First growth jumps straight to the declared capacity (the arrays
       need a witness element, so they cannot be pre-filled in [create]). *)
    let cap =
      max (Config.table_capacity ~floor:8 t.config) (2 * Array.length t.arena)
    in
    let arr = Array.make cap node in
    Array.blit t.arena 0 arr 0 t.arena_len;
    t.arena <- arr
  end;
  t.arena.(t.arena_len) <- node;
  node.handle <- t.arena_len;
  Routing_table.set_owner_handle node.table t.arena_len;
  t.arena_len <- t.arena_len + 1

(* --- alive set: dense array + swap-remove, so sampling is O(1) --- *)

let push_alive t (node : Node.t) =
  if t.alive_len = Array.length t.alive_arr then begin
    let cap =
      max
        (Config.table_capacity ~floor:8 t.config)
        (2 * Array.length t.alive_arr)
    in
    let arr = Array.make cap node in
    Array.blit t.alive_arr 0 arr 0 t.alive_len;
    t.alive_arr <- arr
  end;
  t.alive_arr.(t.alive_len) <- node;
  Node_id.Tbl.replace t.alive_slot node.id t.alive_len;
  t.alive_len <- t.alive_len + 1

let remove_alive t (node : Node.t) =
  match Node_id.Tbl.find_opt t.alive_slot node.id with
  | None -> ()
  | Some i ->
      let last = t.alive_len - 1 in
      if i <> last then begin
        let moved = t.alive_arr.(last) in
        t.alive_arr.(i) <- moved;
        Node_id.Tbl.replace t.alive_slot moved.id i
      end;
      Node_id.Tbl.remove t.alive_slot node.id;
      t.alive_len <- last

let register t (node : Node.t) =
  if Node_id.Tbl.mem t.nodes node.id then
    invalid_arg "Network.register: duplicate node id";
  if node.addr < 0 || node.addr >= Simnet.Metric.size t.metric then
    invalid_arg "Network.register: addr outside the metric space";
  if not (Node.is_alive node) then
    invalid_arg "Network.register: node is already dead";
  Node_id.Tbl.replace t.nodes node.id node;
  Id_index.add t.index node.id;
  push_arena t node;
  push_alive t node;
  if Node.is_core node then Id_index.add t.core_index node.id

let mark_dead t (node : Node.t) =
  if Node.is_alive node then begin
    if Node.is_core node then Id_index.remove t.core_index node.id;
    node.status <- Dead;
    Id_index.remove t.index node.id;
    remove_alive t node
  end

(* --- status transitions (the only writers of the core index) --- *)

let activate t (node : Node.t) =
  match node.status with
  | Node.Inserting ->
      node.status <- Node.Active;
      if Node_id.Tbl.mem t.nodes node.id then Id_index.add t.core_index node.id
  | Node.Active -> ()
  | Node.Leaving | Node.Dead ->
      invalid_arg "Network.activate: node already left the mesh"

let begin_leaving _t (node : Node.t) =
  match node.status with
  | Node.Active ->
      (* Leaving nodes stay core (they serve in-flight traffic, Section
         5.1), so the core index is untouched. *)
      node.status <- Node.Leaving
  | Node.Inserting | Node.Leaving | Node.Dead ->
      invalid_arg "Network.begin_leaving: node is not active"

let alive_nodes t = Array.to_list (Array.sub t.alive_arr 0 t.alive_len)

(* Worklist-free traversals: the scale tier audits and sweeps 10^5..10^6
   nodes, where materializing [alive_nodes] would allocate a cons per
   node per pass. *)
let iter_alive t f =
  for i = 0 to t.alive_len - 1 do
    f t.alive_arr.(i)
  done

let iter_registered t f =
  for h = 0 to t.arena_len - 1 do
    f t.arena.(h)
  done

(* Reset the soft state (pointer stores, replica sets, virtual clock,
   any attached object cache) while keeping the expensively built hard
   state: routing tables, indices, metric, arena.  With [rng] restored
   by the caller to a matching snapshot, a deterministic campaign
   replayed on the cleared mesh is bit-identical to one on a fresh
   build — the serve bench reuses one n=65536 mesh across its rows this
   way instead of re-paying the ~140 s construction per row. *)
let clear_soft_state t =
  iter_registered t (fun (n : Node.t) ->
      Pointer_store.clear n.pointers;
      Node_id.Tbl.reset n.replicas);
  t.clock <- 0.;
  (* an attached cache is soft state too: wipe its lines, frequency
     sketch, hint marks and pair epochs before detaching, so a caller
     that re-attaches the same structure (multi-row --cache-size /
     --coop sweeps on a shared mesh) starts from a clean slate *)
  (match t.obj_cache with Some c -> Obj_cache.reset c | None -> ());
  t.obj_cache <- None

let core_nodes t =
  Id_index.ids_with_prefix t.core_index ~prefix:[||] ~len:0
  |> List.map (find_exn t)

let node_count t = t.alive_len

let random_alive t =
  if t.alive_len = 0 then invalid_arg "Network.random_alive: no alive node"
  else t.alive_arr.(Simnet.Rng.int t.rng t.alive_len)

let fresh_id t =
  let rec go tries =
    if tries > 1000 then
      failwith
        (Printf.sprintf
           "Network.fresh_id: no unused id after %d draws (namespace %d^%d = \
            %.3g ids, %d registered)"
           tries t.config.base t.config.id_digits
           (float_of_int t.config.base ** float_of_int t.config.id_digits)
           (Node_id.Tbl.length t.nodes));
    let id = Node_id.random ~base:t.config.base ~len:t.config.id_digits t.rng in
    if Node_id.Tbl.mem t.nodes id then go (tries + 1) else id
  in
  go 0

(* --- link maintenance --- *)

(* The shared-prefix and liveness gates plus the table update, with the
   metric distance supplied by the caller so a multi-level batch measures
   it once (the simulated round trip is one probe however many levels it
   fills). *)
let offer_link_dist t ~(owner : Node.t) ~level ~(candidate : Node.t) ~d =
  let o = owner and c = candidate in
  if Node_id.equal o.id c.id then false
  else if Node_id.common_prefix_len o.id c.id < level then false
  else if
    (* nodes that announced departure (or died) take no new links: their
       existing entries are marked "leaving" and serve only in-flight
       traffic (Section 5.1) *)
    match c.status with Node.Leaving | Node.Dead -> true | _ -> false
  then false
  else begin
    match
      Routing_table.consider ~handle:c.handle o.table ~level ~candidate:c.id
        ~dist:d
    with
    | `Rejected | `Known -> false
    | `Added evicted ->
        Routing_table.add_backpointer c.table ~level ~handle:o.handle o.id;
        (match evicted with
        | Some old_id -> (
            (* eviction is the rare branch: resolve through the directory,
               the slot no longer holds the evicted handle *)
            match find t old_id with
            | Some old_node ->
                Routing_table.remove_backpointer old_node.Node.table ~level o.id
            | None -> ())
        | None -> ());
        true
  end

let offer_link t ~owner ~level ~candidate =
  offer_link_dist t ~owner ~level ~candidate ~d:(dist t owner candidate)

let offer_link_all_levels t ~owner ~candidate =
  let o = (owner : Node.t) and c = (candidate : Node.t) in
  let shared = Node_id.common_prefix_len o.id c.id in
  if Node_id.equal o.id c.id then 0
  else begin
    let d = dist t o c in
    let added = ref 0 in
    for level = 0 to min shared (t.config.id_digits - 1) do
      if offer_link_dist t ~owner ~level ~candidate ~d then incr added
    done;
    !added
  end

let drop_link t ~owner ~target =
  let o = (owner : Node.t) in
  let levels = Routing_table.remove o.table target in
  match find t target with
  | Some tgt ->
      List.iter
        (fun level -> Routing_table.remove_backpointer tgt.Node.table ~level o.id)
        levels
  | None -> ()

(* --- verification oracles --- *)

let check_property1 t =
  let violations = ref [] in
  List.iter
    (fun (n : Node.t) ->
      let prefix = Node_id.digits n.id in
      for level = 0 to t.config.id_digits - 1 do
        for digit = 0 to t.config.base - 1 do
          if
            Routing_table.is_hole n.table ~level ~digit
            && Id_index.exists_extension t.core_index ~prefix ~len:level ~digit
          then violations := (n, level, digit) :: !violations
        done
      done)
    (core_nodes t);
  !violations

let check_property2 t ~total ~optimal =
  List.iter
    (fun (n : Node.t) ->
      let prefix = Node_id.digits n.id in
      for level = 0 to t.config.id_digits - 1 do
        for digit = 0 to t.config.base - 1 do
          if digit <> Node_id.digit n.id level then begin
            match Routing_table.primary n.table ~level ~digit with
            | None -> ()
            | Some prim ->
                (* True closest (prefix, digit) node by brute force. *)
                let cands = Id_index.ids_with_prefix t.core_index ~prefix ~len:level in
                let cands =
                  List.filter
                    (fun id ->
                      Node_id.digit id level = digit && not (Node_id.equal id n.id))
                    cands
                in
                let best =
                  List.fold_left
                    (fun acc id ->
                      let c = find_exn t id in
                      let d = dist t n c in
                      match acc with
                      | None -> Some (id, d)
                      | Some (_, bd) -> if d < bd then Some (id, d) else acc)
                    None cands
                in
                (match best with
                | None -> ()
                | Some (best_id, best_d) ->
                    incr total;
                    let prim_d =
                      match find t prim.Routing_table.id with
                      | Some p -> dist t n p
                      | None -> infinity
                    in
                    if Node_id.equal prim.Routing_table.id best_id || prim_d <= best_d
                    then incr optimal)
          end
        done
      done)
    (core_nodes t);
  ()

let true_nearest_neighbor t (node : Node.t) =
  let best = ref None in
  let best_d = ref infinity in
  for i = 0 to t.alive_len - 1 do
    let other = t.alive_arr.(i) in
    if not (Node_id.equal other.id node.id) then begin
      let d = dist t node other in
      if d < !best_d then begin
        best := Some other;
        best_d := d
      end
    end
  done;
  !best

(* --- resident-size accounting (estimates; see DESIGN.md §8.8) --- *)

type footprint = {
  node_bytes : int;
  table_bytes : int;
  pointer_bytes : int;
  directory_bytes : int;
  index_bytes : int;
  metric_bytes : int;
  scratch_bytes : int;
  total_bytes : int;
}

let word = 8

let tbl_bytes ~len ~binding_words =
  ((5 + 1 + max 16 len) * word) + (len * (3 + binding_words) * word)

let memory_footprint t =
  let cfg = t.config in
  let id_words = 3 + cfg.Config.id_digits + 1 in
  let node_bytes = ref 0 and table_bytes = ref 0 and pointer_bytes = ref 0 in
  iter_registered t (fun (n : Node.t) ->
      let replicas = Node_id.Tbl.length n.replicas in
      node_bytes :=
        !node_bytes
        + ((9 + id_words) * word)
        + tbl_bytes ~len:replicas ~binding_words:0
        + (match n.surrogate_hint with Some _ -> 2 * word | None -> 0);
      table_bytes := !table_bytes + Routing_table.approx_bytes n.table;
      pointer_bytes := !pointer_bytes + Pointer_store.approx_bytes n.pointers);
  (* the object cache holds pointer replicas: bill it to the pointer
     bucket so the audit's O(n log n) budget covers it too *)
  (match t.obj_cache with
  | Some c -> pointer_bytes := !pointer_bytes + Obj_cache.approx_bytes c
  | None -> ());
  let directory_bytes =
    tbl_bytes ~len:(Node_id.Tbl.length t.nodes) ~binding_words:1
    + tbl_bytes ~len:(Node_id.Tbl.length t.alive_slot) ~binding_words:1
    + ((Array.length t.arena + 1) * word)
    + ((Array.length t.alive_arr + 1) * word)
    + tbl_bytes ~len:(Salt_tbl.length t.salts) ~binding_words:(3 + id_words)
  in
  let index_bytes =
    Id_index.approx_bytes t.index + Id_index.approx_bytes t.core_index
  in
  let metric_bytes = Simnet.Metric.approx_bytes t.metric in
  let scratch_bytes = Scratch.approx_bytes t.scratch in
  let total_bytes =
    !node_bytes + !table_bytes + !pointer_bytes + directory_bytes + index_bytes
    + metric_bytes + scratch_bytes
  in
  {
    node_bytes = !node_bytes;
    table_bytes = !table_bytes;
    pointer_bytes = !pointer_bytes;
    directory_bytes;
    index_bytes;
    metric_bytes;
    scratch_bytes;
    total_bytes;
  }

let surrogate_oracle t guid =
  (* Digit-by-digit refinement with wrap-around among core nodes, answered
     straight from the incrementally maintained core index; by Theorem 2
     this is the unique root surrogate routing must reach. *)
  if Id_index.size t.core_index = 0 then
    invalid_arg "Network.surrogate_oracle: empty network";
  let prefix = Array.make t.config.id_digits 0 in
  let rec refine level =
    if level = t.config.id_digits then
      find_exn t (Node_id.make (Array.copy prefix))
    else begin
      let want = Node_id.digit guid level in
      let rec scan tries =
        if tries = t.config.base then
          invalid_arg "Network.surrogate_oracle: no extension (corrupt index)"
        else begin
          let j = (want + tries) mod t.config.base in
          if Id_index.exists_extension t.core_index ~prefix ~len:level ~digit:j
          then j
          else scan (tries + 1)
        end
      in
      prefix.(level) <- scan 0;
      refine (level + 1)
    end
  in
  refine 0
