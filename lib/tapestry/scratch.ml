(* Per-network insertion scratch: reusable flat buffers for the join hot
   path (the Section 3 nearest-neighbor descent and the Section 4
   acknowledged multicast).  All marking is generation-stamped so reuse
   across insertions costs one integer increment instead of clearing or
   reallocating; every array is indexed by (or holds) arena handles, never
   IDs, so the hot path does no hashing.  Single-threaded by construction:
   one scratch per network, and the simulator never yields inside a descent
   or a multicast (fibers interleave only at insertion stage boundaries). *)

type t = {
  mutable stamp : int array;
      (* per-handle visited mark: [stamp.(h) = visit_gen] means handle [h]
         was seen by the current traversal *)
  mutable visit_gen : int;
  mutable dist : float array; (* per-handle memoized distance to the joiner *)
  mutable dist_stamp : int array; (* validity mark for [dist] *)
  mutable dist_gen : int;
  mutable cand : int array; (* candidate handles of one descent step *)
  mutable cand_len : int;
  mutable sel : int array; (* bounded selection heap (handles) *)
  mutable cur : int array; (* the surviving level list, between steps *)
  mutable cur_len : int;
  mutable stack : int array; (* multicast DFS: per-frame target segments *)
  mutable sp : int;
  mutable reached : int array; (* multicast visit order (handles) *)
  mutable reached_len : int;
}

let create () =
  {
    stamp = [||];
    visit_gen = 0;
    dist = [||];
    dist_stamp = [||];
    dist_gen = 0;
    cand = [||];
    cand_len = 0;
    sel = [||];
    cur = [||];
    cur_len = 0;
    stack = [||];
    sp = 0;
    reached = [||];
    reached_len = 0;
  }

(* Grow the handle-indexed arrays to cover [n] handles.  Fresh cells are
   stamped 0; generations start at 1 (see [bump_*]), so a grown cell is
   never spuriously marked. *)
let ensure_handles t ~n =
  if n > Array.length t.stamp then begin
    let cap = max n (max 64 (2 * Array.length t.stamp)) in
    let grow_int a = let b = Array.make cap 0 in Array.blit a 0 b 0 (Array.length a); b in
    let grow_float a = let b = Array.make cap 0. in Array.blit a 0 b 0 (Array.length a); b in
    t.stamp <- grow_int t.stamp;
    t.dist_stamp <- grow_int t.dist_stamp;
    t.dist <- grow_float t.dist
  end

let ensure_sel t ~k =
  if k > Array.length t.sel then t.sel <- Array.make (max k (max 16 (2 * Array.length t.sel))) 0

let bump_visit t =
  t.visit_gen <- t.visit_gen + 1;
  t.visit_gen

let bump_dist t =
  t.dist_gen <- t.dist_gen + 1;
  t.dist_gen

let push_grow arr len x =
  let a = !arr in
  if !len = Array.length a then begin
    let cap = max 64 (2 * Array.length a) in
    let b = Array.make cap 0 in
    Array.blit a 0 b 0 !len;
    arr := b
  end;
  !arr.(!len) <- x;
  incr len

let push_cand t h =
  let arr = ref t.cand and len = ref t.cand_len in
  push_grow arr len h;
  t.cand <- !arr;
  t.cand_len <- !len

let push_stack t h =
  let arr = ref t.stack and len = ref t.sp in
  push_grow arr len h;
  t.stack <- !arr;
  t.sp <- !len

let push_reached t h =
  let arr = ref t.reached and len = ref t.reached_len in
  push_grow arr len h;
  t.reached <- !arr;
  t.reached_len <- !len

(* Save the selected handles as the current level list. *)
let set_cur t src len =
  if len > Array.length t.cur then t.cur <- Array.make (max len 64) 0;
  Array.blit src 0 t.cur 0 len;
  t.cur_len <- len
