(* Per-network insertion scratch: reusable flat buffers for the join hot
   path (the Section 3 nearest-neighbor descent and the Section 4
   acknowledged multicast).  All marking is generation-stamped so reuse
   across insertions costs one integer increment instead of clearing or
   reallocating; every array is indexed by (or holds) arena handles, never
   IDs, so the hot path does no hashing.  Single-threaded by construction:
   one scratch per network, and the simulator never yields inside a descent
   or a multicast (fibers interleave only at insertion stage boundaries). *)

type t = {
  mutable stamp : int array;
      (* per-handle visited mark: [stamp.(h) = visit_gen] means handle [h]
         was seen by the current traversal *)
  mutable visit_gen : int;
  mutable dist : float array; (* per-handle memoized distance to the joiner *)
  mutable dist_stamp : int array; (* validity mark for [dist] *)
  mutable dist_gen : int;
  mutable cand : int array; (* candidate handles of one descent step *)
  mutable cand_len : int;
  mutable sel : int array; (* bounded selection heap (handles) *)
  mutable cur : int array; (* the surviving level list, between steps *)
  mutable cur_len : int;
  mutable stack : int array; (* multicast DFS: per-frame target segments *)
  mutable sp : int;
  mutable reached : int array; (* multicast visit order (handles) *)
  mutable reached_len : int;
}

(* [@alloc_ok]: one record per network, at network creation. *)
let[@alloc_ok] create () =
  {
    stamp = [||];
    visit_gen = 0;
    dist = [||];
    dist_stamp = [||];
    dist_gen = 0;
    cand = [||];
    cand_len = 0;
    sel = [||];
    cur = [||];
    cur_len = 0;
    stack = [||];
    sp = 0;
    reached = [||];
    reached_len = 0;
  }

(* Grow the handle-indexed arrays to cover [n] handles.  Fresh cells are
   stamped 0; generations start at 1 (see [bump_*]), so a grown cell is
   never spuriously marked. *)
(* [@alloc_ok]: the grow path runs O(log n) times over a network's life;
   the common call is two loads and a comparison. *)
let[@alloc_ok] ensure_handles t ~n =
  if n > Array.length t.stamp then begin
    let cap = max n (max 64 (2 * Array.length t.stamp)) in
    let grow_int a = let b = Array.make cap 0 in Array.blit a 0 b 0 (Array.length a); b in
    let grow_float a = let b = Array.make cap 0. in Array.blit a 0 b 0 (Array.length a); b in
    t.stamp <- grow_int t.stamp;
    t.dist_stamp <- grow_int t.dist_stamp;
    t.dist <- grow_float t.dist
  end

let ensure_sel t ~k =
  if k > Array.length t.sel then t.sel <- Array.make (max k (max 16 (2 * Array.length t.sel))) 0

let bump_visit t =
  t.visit_gen <- t.visit_gen + 1;
  t.visit_gen

let bump_dist t =
  t.dist_gen <- t.dist_gen + 1;
  t.dist_gen

(* Doubled copy of [a], used by the push fast paths below.  The pushes
   themselves are allocation-free (the typed-alloc audit flagged the old
   ref-cell plumbing: two cells per push, in the descent's inner loop);
   growth is amortized and lives here, out of the checked fast path. *)
let grown a len =
  let cap = max 64 (2 * Array.length a) in
  let b = Array.make cap 0 in
  Array.blit a 0 b 0 len;
  b

let push_cand t h =
  if t.cand_len = Array.length t.cand then t.cand <- grown t.cand t.cand_len;
  t.cand.(t.cand_len) <- h;
  t.cand_len <- t.cand_len + 1

let push_stack t h =
  if t.sp = Array.length t.stack then t.stack <- grown t.stack t.sp;
  t.stack.(t.sp) <- h;
  t.sp <- t.sp + 1

let push_reached t h =
  if t.reached_len = Array.length t.reached then
    t.reached <- grown t.reached t.reached_len;
  t.reached.(t.reached_len) <- h;
  t.reached_len <- t.reached_len + 1

(* Save the selected handles as the current level list. *)
let set_cur t src len =
  if len > Array.length t.cur then t.cur <- Array.make (max len 64) 0;
  Array.blit src 0 t.cur 0 len;
  t.cur_len <- len

let word = 8
let arr_bytes a = (Array.length a + 1) * word

let approx_bytes t =
  (15 * word) + arr_bytes t.stamp + arr_bytes t.dist + arr_bytes t.dist_stamp
  + arr_bytes t.cand + arr_bytes t.sel + arr_bytes t.cur + arr_bytes t.stack
  + arr_bytes t.reached
