(** A Tapestry participant: identifier, network location, routing table,
    object pointers and the replicas it serves. *)

type status =
  | Inserting  (** mid-join: reachable by those who learned of it, may bounce queries (Section 4.3) *)
  | Active
  | Leaving  (** announced a voluntary delete; still routes queries (Section 5.1) *)
  | Dead  (** failed or departed *)

type t = {
  id : Node_id.t;
  addr : int;  (** index of this node's point in the metric space *)
  mutable handle : int;
      (** index into the owning {!Network.t}'s node arena, assigned once at
          registration and immutable afterwards ([no_handle] before).
          Routing resolves neighbor entries through it in O(1) with no
          hashing. *)
  table : Routing_table.t;
  pointers : Pointer_store.t;
  replicas : unit Node_id.Tbl.t;  (** GUIDs whose data this node stores *)
  mutable status : status;
  mutable surrogate_hint : Node_id.t option;
      (** while inserting: the pre-insertion surrogate used to keep objects
          available (Figure 10) *)
}

val no_handle : int
(** Sentinel handle ([-1]) of a node not (yet) registered in a network. *)

val create : Config.t -> id:Node_id.t -> addr:int -> t

val is_alive : t -> bool
(** Participates in routing: [Inserting], [Active] or [Leaving]. *)

val is_core : t -> bool
(** Finished inserting (Definition 1 approximation): [Active] or [Leaving]. *)

val stores_replica : t -> Node_id.t -> bool

val add_replica : t -> Node_id.t -> unit

val remove_replica : t -> Node_id.t -> unit

val pp : Format.formatter -> t -> unit
