type t = {
  base : int;
  id_digits : int;
  redundancy : int;
  k_list : int;
  k_fixed : bool;
  root_set_size : int;
  pointer_ttl : float;
  republish_interval : float;
  digit_bits : int;
  expected_nodes : int;
}

let bits_of_base base =
  let rec count v acc = if v <= 1 then acc else count (v lsr 1) (acc + 1) in
  count base 0

let default =
  {
    base = 16;
    id_digits = 8;
    redundancy = 3;
    k_list = 16;
    k_fixed = false;
    root_set_size = 1;
    pointer_ttl = 300.;
    republish_interval = 100.;
    digit_bits = 4;
    expected_nodes = 0;
  }

let normalize t = { t with digit_bits = bits_of_base t.base }

let is_power_of_two x = x > 0 && x land (x - 1) = 0

let validate t =
  if t.base < 2 || not (is_power_of_two t.base) then
    Error "base must be a power of two >= 2"
  else if t.id_digits < 1 then Error "id_digits must be >= 1"
  else if t.redundancy < 1 then Error "redundancy must be >= 1"
  else if t.k_list < 1 then Error "k_list must be >= 1"
  else if t.root_set_size < 1 then Error "root_set_size must be >= 1"
  else if t.pointer_ttl <= 0. then Error "pointer_ttl must be positive"
  else if t.expected_nodes < 0 then Error "expected_nodes must be >= 0"
  else Ok ()

(* Directory-table capacity hint: the expected population when declared,
   otherwise a small default that keeps ad-hoc networks cheap.  Stdlib
   hashtables resize by doubling, so any positive hint only trims the
   rehash cascade — it never changes observable behavior. *)
let table_capacity ?(floor = 64) t =
  if t.expected_nodes > 0 then max floor t.expected_nodes else floor

let scaled_k t ~n =
  if t.k_fixed then t.k_list
  else begin
    let log2n = int_of_float (ceil (log (float_of_int (max 2 n)) /. log 2.)) in
    max t.k_list (4 * log2n)
  end

let pp ppf t =
  Format.fprintf ppf "b=%d digits=%d R=%d k=%d roots=%d ttl=%.0f" t.base
    t.id_digits t.redundancy t.k_list t.root_set_size t.pointer_ttl
