type node = {
  mutable count : int; (* IDs stored in this subtree *)
  mutable terminal : Node_id.t list; (* IDs ending exactly here *)
  children : node option array;
}

type t = { base : int; root : node }

let fresh_node base = { count = 0; terminal = []; children = Array.make base None }

let create ~base = { base; root = fresh_node base }

let add t id =
  (* Walk down, creating nodes and bumping counts. *)
  let rec go n i =
    n.count <- n.count + 1;
    if i = Node_id.length id then n.terminal <- id :: n.terminal
    else begin
      let d = Node_id.digit id i in
      let c =
        match n.children.(d) with
        | Some c -> c
        | None ->
            let c = fresh_node t.base in
            n.children.(d) <- Some c;
            c
      in
      go c (i + 1)
    end
  in
  go t.root 0

let remove t id =
  let rec present n i =
    if i = Node_id.length id then List.exists (Node_id.equal id) n.terminal
    else
      match n.children.(Node_id.digit id i) with
      | Some c -> present c (i + 1)
      | None -> false
  in
  if present t.root 0 then begin
    let rec go n i =
      n.count <- n.count - 1;
      if i = Node_id.length id then
        n.terminal <- List.filter (fun x -> not (Node_id.equal x id)) n.terminal
      else begin
        let d = Node_id.digit id i in
        match n.children.(d) with
        | Some c ->
            go c (i + 1);
            if c.count = 0 then n.children.(d) <- None
        | None -> ()
      end
    in
    go t.root 0
  end

let mem t id =
  let rec go n i =
    if i = Node_id.length id then List.exists (Node_id.equal id) n.terminal
    else
      match n.children.(Node_id.digit id i) with
      | Some c -> go c (i + 1)
      | None -> false
  in
  go t.root 0

let size t = t.root.count

let find_prefix t ~prefix ~len =
  let rec go n i =
    if i = len then Some n
    else
      match n.children.(prefix.(i)) with Some c -> go c (i + 1) | None -> None
  in
  go t.root 0

let digits_after t ~prefix ~len =
  match find_prefix t ~prefix ~len with
  | None -> []
  | Some n ->
      let acc = ref [] in
      for d = t.base - 1 downto 0 do
        if Option.is_some n.children.(d) then acc := d :: !acc
      done;
      !acc

let ids_with_prefix t ~prefix ~len =
  match find_prefix t ~prefix ~len with
  | None -> []
  | Some n ->
      let acc = ref [] in
      let rec collect n =
        List.iter (fun id -> acc := id :: !acc) n.terminal;
        Array.iter (function Some c -> collect c | None -> ()) n.children
      in
      collect n;
      !acc

let count_with_prefix t ~prefix ~len =
  match find_prefix t ~prefix ~len with None -> 0 | Some n -> n.count

let exists_extension t ~prefix ~len ~digit =
  match find_prefix t ~prefix ~len with
  | None -> false
  | Some n -> Option.is_some n.children.(digit)

let word = 8

(* Resident-size estimate: each trie node is a 4-word record plus a
   [base+1]-word children array plus a 3-word cons per terminal id (the ids
   themselves are shared with the node directory and counted there). *)
let approx_bytes t =
  let rec go n acc =
    let acc =
      acc + (4 * word)
      + ((Array.length n.children + 1) * word)
      + (3 * word * List.length n.terminal)
    in
    Array.fold_left
      (fun acc c -> match c with None -> acc | Some c -> go c acc)
      acc n.children
  in
  (3 * word) + go t.root 0
