(** Per-network scratch buffers for the insertion hot path (DESIGN.md
    §8.7).

    One instance lives in {!Network.t} and is reused across every join: the
    nearest-neighbor descent and the acknowledged multicast mark visited
    nodes with generation stamps indexed by arena handle, memoize joiner
    distances per descent, and keep their candidate / selection / worklist
    buffers here instead of allocating per call.  Not reentrant — the
    simulator guarantees a descent or multicast never runs inside another
    one on the same network (fibers yield only at insertion stage
    boundaries). *)

type t = {
  mutable stamp : int array;  (** per-handle visited mark vs [visit_gen] *)
  mutable visit_gen : int;
  mutable dist : float array;  (** per-handle memoized joiner distance *)
  mutable dist_stamp : int array;  (** validity mark for [dist] vs [dist_gen] *)
  mutable dist_gen : int;
  mutable cand : int array;  (** candidate handles of one descent step *)
  mutable cand_len : int;
  mutable sel : int array;  (** bounded selection heap (handles) *)
  mutable cur : int array;  (** surviving level list between descent steps *)
  mutable cur_len : int;
  mutable stack : int array;  (** multicast DFS per-frame target segments *)
  mutable sp : int;
  mutable reached : int array;  (** multicast visit order (handles) *)
  mutable reached_len : int;
}

val create : unit -> t

val ensure_handles : t -> n:int -> unit
(** Grow the handle-indexed arrays to cover at least [n] handles. *)

val ensure_sel : t -> k:int -> unit
(** Grow the selection heap to hold at least [k] handles. *)

val bump_visit : t -> int
(** Start a new traversal; returns the fresh generation. *)

val bump_dist : t -> int
(** Start a new descent's distance memo; returns the fresh generation. *)

val push_cand : t -> int -> unit

val push_stack : t -> int -> unit

val push_reached : t -> int -> unit

val set_cur : t -> int array -> int -> unit
(** [set_cur t src len] copies [src.(0..len)] into the level list. *)

val approx_bytes : t -> int
(** Estimated resident bytes of the scratch buffers (arrays scale with the
    arena).  Feeds {!Network.memory_footprint}. *)
