(** Surrogate routing (Section 2.3).

    Routing resolves one digit of the destination GUID per hop using only
    local routing tables.  When the wanted entry is a hole, the two localized
    variants the paper gives disagree on the detour but both reach a unique
    root (Theorem 2):

    - {!Native}: take the next filled entry at the same level, wrapping
      around digit values;
    - {!Prr_like}: before the first hole route exactly; at the first hole
      take the entry matching the wanted digit in the most significant bits
      (ties to the numerically higher digit); after it always take the
      numerically highest filled digit.

    Dead neighbors are detected lazily: a probe message is charged, the
    stale entry is dropped (with backpointer cleanup), and an optional
    [on_dead] callback lets {!Delete} install richer repair (Section 5.2).

    The [exclude] parameter makes every table lookup skip one node without
    mutating any state: Figure 10's "route as if the new node had not yet
    entered the network".  [skip] generalizes it to a predicate, which the
    Section 6.3 locality optimization uses to confine a walk to one stub
    domain. *)

type variant = Native | Prr_like

val equal_variant : variant -> variant -> bool

type info = {
  root : Node.t;
  path : Node.t list;  (** visited nodes in order, starting at the source *)
  surrogate_hops : int;  (** hops taken at or after the first hole *)
}

val fold_path :
  ?variant:variant ->
  ?on_dead:(Network.t -> owner:Node.t -> dead:Node_id.t -> unit) ->
  ?exclude:Node_id.t ->
  ?skip:(Node_id.t -> bool) ->
  Network.t ->
  from:Node.t ->
  Node_id.t ->
  init:'a ->
  f:('a -> Node.t -> [ `Continue of 'a | `Stop of 'a ]) ->
  Node.t * 'a * bool
(** Drive surrogate routing toward the root of a GUID, calling [f] at every
    visited node (the source first).  Returns the final node, the folded
    value, and whether [f] stopped the walk early. *)

val route_to_root :
  ?variant:variant ->
  ?on_dead:(Network.t -> owner:Node.t -> dead:Node_id.t -> unit) ->
  ?exclude:Node_id.t ->
  ?skip:(Node_id.t -> bool) ->
  Network.t ->
  from:Node.t ->
  Node_id.t ->
  info
(** Full walk to the surrogate root. *)

val route_to_node :
  ?on_dead:(Network.t -> owner:Node.t -> dead:Node_id.t -> unit) ->
  ?exclude:Node_id.t ->
  ?skip:(Node_id.t -> bool) ->
  Network.t ->
  from:Node.t ->
  Node_id.t ->
  Node.t option * Node.t list
(** Mesh-route to an exact node-ID.  Returns [None] if the walk ends
    elsewhere (the node is unknown or unreachable), plus the path. *)

val default_on_dead : Network.t -> owner:Node.t -> dead:Node_id.t -> unit
(** Drop the stale link, nothing more. *)

val peek_first_hop :
  ?variant:variant ->
  ?on_dead:(Network.t -> owner:Node.t -> dead:Node_id.t -> unit) ->
  ?exclude:Node_id.t ->
  ?skip:(Node_id.t -> bool) ->
  Network.t ->
  Node.t ->
  Node_id.t ->
  Node.t option
(** The node the next routing step from here would forward to, without
    charging a message (used by pointer maintenance to detect path changes).
    [None] when this node is the root. *)
