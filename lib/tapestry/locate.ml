type result = {
  server : Node.t option;
  pointer_node : Node.t option;
  walk : Node.t list;
  redirects : int;
}

(* A pointer is usable if unexpired and its server still serves the object. *)
let usable net guid (r : Pointer_store.record) =
  r.expires >= net.Network.clock
  &&
  match Network.find net r.server with
  | Some s -> Node.is_alive s && Node.stores_replica s guid
  | None -> false


(* One pass over the stop node's records: filter for usability and keep the
   closest server, first-seen winning distance ties (the same order the
   filter-then-fold pair produced). *)
(* [@alloc_ok]: one fold closure and a best-so-far pair per stop node —
   this runs once per query, after the walk has stopped. *)
let[@alloc_ok] closest_usable_server net (node : Node.t) guid =
  List.fold_left
    (fun acc (r : Pointer_store.record) ->
      if r.expires < net.Network.clock then acc
      else
        match Network.find net r.server with
        | Some s when Node.is_alive s && Node.stores_replica s guid -> (
            let d = Network.dist net node s in
            match acc with
            | Some (_, bd) when bd <= d -> acc
            | _ -> Some (s, d))
        | _ -> acc)
    None
    (Pointer_store.find_guid node.Node.pointers guid)
  |> Option.map fst

(* The walk only needs to know whether a usable pointer exists at each hop;
   records are examined once, at the stop node.  The usability predicate is
   built once per walk, not per hop.  When the network carries an object
   cache, [stop] (the cache probe, built once per locate) is consulted
   before the pointer store at every hop — a valid cached entry short-cuts
   the rest of the climb. *)
(* [@alloc_ok]: the usability predicate and the fold callback are built
   once per walk (documented above), and the path list is the result. *)
let[@alloc_ok] walk_toward_root ?variant ?exclude ?stop net ~from salted guid =
  let pred = usable net guid in
  Route.fold_path ?variant ?exclude net ~from salted ~init:[]
    ~f:(fun path node ->
      let path = node :: path in
      let cache_hit = match stop with Some p -> p node | None -> false in
      if
        cache_hit
        || Pointer_store.exists_guid_match node.Node.pointers guid ~f:pred
      then `Stop path
      else `Continue path)

(* [@alloc_ok]: a query allocates its result record, the walk/retry
   bookkeeping and the root-set retry list — per locate call; the hop
   work underneath is [Route.fold_path]'s checked path. *)
let[@alloc_ok] rec locate ?variant ?root_idx net ~client guid =
  let cfg = net.Network.config in
  let chosen, retries =
    match root_idx with
    | Some i -> (i, [])
    | None ->
        if cfg.Config.root_set_size = 1 then (0, [])
        else begin
          (* Observation 1: with independent roots, failed queries retry on
             the remaining root-set members *)
          let first = Simnet.Rng.int net.Network.rng cfg.Config.root_set_size in
          let others =
            List.init cfg.Config.root_set_size (fun i -> i)
            |> List.filter (fun i -> i <> first)
          in
          (first, others)
        end
  in
  let root_idx = chosen in
  let retry () =
    let rec go = function
      | [] -> None
      | i :: rest -> (
          let res = locate ?variant ~root_idx:i net ~client guid in
          match res.server with Some _ -> Some res | None -> go rest)
    in
    go retries
  in
  let salted = Network.salted net guid root_idx in
  (* Optional per-node object cache (PR 9).  [probe] is consulted by the
     walk before each hop's pointer store: a valid entry (current epoch,
     alive server still holding the replica) stops the climb and records
     the server handle in [cache_srv]; a stale entry is evicted and the
     climb continues, so a hit can shorten a locate but never change its
     answer's correctness.  With [net.obj_cache = None] (the default)
     every branch below is dead and the walk is byte-identical to the
     uncached code. *)
  let cache = net.Network.obj_cache in
  let cache_key =
    match cache with Some c -> Obj_cache.intern c guid | None -> -1
  in
  let cache_srv = ref (-1) in
  let probe =
    match cache with
    | None -> None
    | Some c ->
        Some
          (fun (node : Node.t) ->
            let t : Simnet.Stats.Tally.t = c.Obj_cache.tally in
            let i = Obj_cache.probe c ~h:node.Node.handle ~key:cache_key in
            if i >= 0 then begin
              let srv_h = Obj_cache.probe_srv c i in
              let s = Network.node_of_handle net srv_h in
              if Node.is_alive s && Node.stores_replica s guid then begin
                t.hits <- t.hits + 1;
                if Obj_cache.probe_is_hint c i then
                  t.hint_hits <- t.hint_hits + 1;
                cache_srv := srv_h;
                true
              end
              else begin
                (* names a dead server or one that dropped the replica:
                   degrade to the ordinary climb *)
                Obj_cache.evict_at c i;
                t.stale <- t.stale + 1;
                t.evicts <- t.evicts + 1;
                false
              end
            end
            else if i = -2 then begin
              t.stale <- t.stale + 1;
              t.evicts <- t.evicts + 1;
              false
            end
            else begin
              t.misses <- t.misses + 1;
              false
            end)
  in
  let fill_path rev_path srv_h =
    match cache with
    | None -> ()
    | Some c ->
        Obj_cache.ensure_nodes c net.Network.arena_len;
        let t : Simnet.Stats.Tally.t = c.Obj_cache.tally in
        (* Cooperative mode bounds the unwind seeding to [hint_budget]
           deposits, preferring the hops nearest the client ([rev_path]
           is stop-node-first): early-hop warmth is what shortens the
           next climb, and the cap keeps one popular fetch from
           stamping its pointer across a 12-deep ancestor chain.  With
           coop off every walked node is seeded, exactly as PR 9. *)
        let skip =
          if Obj_cache.coop_on c then
            ref (List.length rev_path - c.Obj_cache.hint_budget)
          else ref 0
        in
        List.iter
          (fun (n : Node.t) ->
            if !skip > 0 then decr skip
            else begin
              Obj_cache.insert c ~h:n.Node.handle ~key:cache_key ~server:srv_h
                ~gen:0;
              t.fills <- t.fills + 1
            end)
          rev_path
  in
  let finish (found : Node.t) rev_path redirects =
    match closest_usable_server net found guid with
    | None -> (
        match retry () with
        | Some r -> r
        | None ->
            { server = None; pointer_node = None; walk = List.rev rev_path; redirects })
    | Some server ->
        (* Route through the mesh to the chosen replica's server.  The walk
           (and so every hop charge) matches [Route.route_to_node]; only the
           path list, which nobody reads, is not built. *)
        fill_path rev_path server.Node.handle;
        let server =
          if Node_id.equal server.Node.id found.Node.id then Some server
          else begin
            let target = server.Node.id in
            let reached, (), _ =
              Route.fold_path net ~from:found target ~init:() ~f:(fun () node ->
                  if Node_id.equal node.Node.id target then `Stop ()
                  else `Continue ())
            in
            if Node_id.equal reached.Node.id target then Some reached else None
          end
        in
        {
          server;
          pointer_node = Some found;
          walk = List.rev rev_path;
          redirects;
        }
  in
  (* A walk stopped by the cache: redirect straight to the cached server
     (validated alive + holding the replica by [probe]), refreshing the
     caches along the walked path. *)
  let finish_cached (found : Node.t) rev_path redirects srv_h =
    let server = Network.node_of_handle net srv_h in
    fill_path rev_path srv_h;
    let server =
      if Node_id.equal server.Node.id found.Node.id then Some server
      else begin
        let target = server.Node.id in
        let reached, (), _ =
          Route.fold_path net ~from:found target ~init:() ~f:(fun () node ->
              if Node_id.equal node.Node.id target then `Stop ()
              else `Continue ())
        in
        if Node_id.equal reached.Node.id target then Some reached else None
      end
    in
    match server with
    | Some _ ->
        { server; pointer_node = Some found; walk = List.rev rev_path; redirects }
    | None -> (
        match retry () with
        | Some r -> r
        | None ->
            {
              server = None;
              pointer_node = Some found;
              walk = List.rev rev_path;
              redirects;
            })
  in
  let final, rev_path, stopped =
    walk_toward_root ?variant ?stop:probe net ~from:client salted guid
  in
  let fallback res = match retry () with Some r -> r | None -> res in
  if stopped then
    if !cache_srv >= 0 then finish_cached final rev_path 0 !cache_srv
    else finish final rev_path 0
  else begin
    match final.Node.status with
    | Node.Inserting -> (
        (* Figure 10: the inserting node bounces the request to its
           pre-insertion surrogate, which routes as if the new node were
           absent. *)
        match final.Node.surrogate_hint with
        | Some hint_id -> (
            match Network.find net hint_id with
            | Some hint when Node.is_alive hint ->
                Network.charge net final hint;
                cache_srv := -1;
                let final2, rev2, stopped2 =
                  walk_toward_root ?variant ~exclude:final.Node.id ?stop:probe
                    net ~from:hint salted guid
                in
                if stopped2 then
                  if !cache_srv >= 0 then
                    finish_cached final2 (rev2 @ rev_path) 1 !cache_srv
                  else finish final2 (rev2 @ rev_path) 1
                else
                  fallback
                    {
                      server = None;
                      pointer_node = None;
                      walk = List.rev (rev2 @ rev_path);
                      redirects = 1;
                    }
            | _ ->
                fallback
                  { server = None; pointer_node = None; walk = List.rev rev_path; redirects = 0 })
        | None ->
            fallback
              { server = None; pointer_node = None; walk = List.rev rev_path; redirects = 0 })
    | _ ->
        fallback
          { server = None; pointer_node = None; walk = List.rev rev_path; redirects = 0 }
  end

let exists net ~client guid = Option.is_some (locate net ~client guid).server
