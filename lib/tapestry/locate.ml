type result = {
  server : Node.t option;
  pointer_node : Node.t option;
  walk : Node.t list;
  redirects : int;
}

(* A pointer is usable if unexpired and its server still serves the object. *)
let usable_records net (node : Node.t) guid =
  Pointer_store.find_guid node.Node.pointers guid
  |> List.filter (fun (r : Pointer_store.record) ->
         r.expires >= net.Network.clock
         &&
         match Network.find net r.server with
         | Some s -> Node.is_alive s && Node.stores_replica s guid
         | None -> false)

let closest_server net (node : Node.t) records =
  List.fold_left
    (fun acc (r : Pointer_store.record) ->
      match Network.find net r.server with
      | None -> acc
      | Some s -> (
          let d = Network.dist net node s in
          match acc with
          | Some (_, bd) when bd <= d -> acc
          | _ -> Some (s, d)))
    None records
  |> Option.map fst

let walk_toward_root ?variant ?exclude net ~from salted guid =
  Route.fold_path ?variant ?exclude net ~from salted ~init:[]
    ~f:(fun path node ->
      let path = node :: path in
      match usable_records net node guid with
      | _ :: _ -> `Stop path
      | [] -> `Continue path)

let rec locate ?variant ?root_idx net ~client guid =
  let cfg = net.Network.config in
  let chosen, retries =
    match root_idx with
    | Some i -> (i, [])
    | None ->
        if cfg.Config.root_set_size = 1 then (0, [])
        else begin
          (* Observation 1: with independent roots, failed queries retry on
             the remaining root-set members *)
          let first = Simnet.Rng.int net.Network.rng cfg.Config.root_set_size in
          let others =
            List.init cfg.Config.root_set_size (fun i -> i)
            |> List.filter (fun i -> i <> first)
          in
          (first, others)
        end
  in
  let root_idx = chosen in
  let retry () =
    let rec go = function
      | [] -> None
      | i :: rest -> (
          let res = locate ?variant ~root_idx:i net ~client guid in
          match res.server with Some _ -> Some res | None -> go rest)
    in
    go retries
  in
  let salted = Node_id.salt ~base:cfg.Config.base guid root_idx in
  let finish (found : Node.t) rev_path redirects =
    let records = usable_records net found guid in
    match closest_server net found records with
    | None -> (
        match retry () with
        | Some r -> r
        | None ->
            { server = None; pointer_node = None; walk = List.rev rev_path; redirects })
    | Some server ->
        (* Route through the mesh to the chosen replica's server. *)
        let server, _path =
          if Node_id.equal server.Node.id found.Node.id then (Some server, [])
          else begin
            let reached, path = Route.route_to_node net ~from:found server.Node.id in
            (reached, path)
          end
        in
        {
          server;
          pointer_node = Some found;
          walk = List.rev rev_path;
          redirects;
        }
  in
  let final, rev_path, stopped = walk_toward_root ?variant net ~from:client salted guid in
  let fallback res = match retry () with Some r -> r | None -> res in
  if stopped then finish final rev_path 0
  else begin
    match final.Node.status with
    | Node.Inserting -> (
        (* Figure 10: the inserting node bounces the request to its
           pre-insertion surrogate, which routes as if the new node were
           absent. *)
        match final.Node.surrogate_hint with
        | Some hint_id -> (
            match Network.find net hint_id with
            | Some hint when Node.is_alive hint ->
                Network.charge net final hint;
                let final2, rev2, stopped2 =
                  walk_toward_root ?variant ~exclude:final.Node.id net ~from:hint
                    salted guid
                in
                if stopped2 then finish final2 (rev2 @ rev_path) 1
                else
                  fallback
                    {
                      server = None;
                      pointer_node = None;
                      walk = List.rev (rev2 @ rev_path);
                      redirects = 1;
                    }
            | _ ->
                fallback
                  { server = None; pointer_node = None; walk = List.rev rev_path; redirects = 0 })
        | None ->
            fallback
              { server = None; pointer_node = None; walk = List.rev rev_path; redirects = 0 })
    | _ ->
        fallback
          { server = None; pointer_node = None; walk = List.rev rev_path; redirects = 0 }
  end

let exists net ~client guid = (locate net ~client guid).server <> None
