type result = {
  server : Node.t option;
  pointer_node : Node.t option;
  walk : Node.t list;
  redirects : int;
}

(* A pointer is usable if unexpired and its server still serves the object. *)
let usable net guid (r : Pointer_store.record) =
  r.expires >= net.Network.clock
  &&
  match Network.find net r.server with
  | Some s -> Node.is_alive s && Node.stores_replica s guid
  | None -> false


(* One pass over the stop node's records: filter for usability and keep the
   closest server, first-seen winning distance ties (the same order the
   filter-then-fold pair produced). *)
(* [@alloc_ok]: one fold closure and a best-so-far pair per stop node —
   this runs once per query, after the walk has stopped. *)
let[@alloc_ok] closest_usable_server net (node : Node.t) guid =
  List.fold_left
    (fun acc (r : Pointer_store.record) ->
      if r.expires < net.Network.clock then acc
      else
        match Network.find net r.server with
        | Some s when Node.is_alive s && Node.stores_replica s guid -> (
            let d = Network.dist net node s in
            match acc with
            | Some (_, bd) when bd <= d -> acc
            | _ -> Some (s, d))
        | _ -> acc)
    None
    (Pointer_store.find_guid node.Node.pointers guid)
  |> Option.map fst

(* The walk only needs to know whether a usable pointer exists at each hop;
   records are examined once, at the stop node.  The usability predicate is
   built once per walk, not per hop. *)
(* [@alloc_ok]: the usability predicate and the fold callback are built
   once per walk (documented above), and the path list is the result. *)
let[@alloc_ok] walk_toward_root ?variant ?exclude net ~from salted guid =
  let pred = usable net guid in
  Route.fold_path ?variant ?exclude net ~from salted ~init:[]
    ~f:(fun path node ->
      let path = node :: path in
      if Pointer_store.exists_guid_match node.Node.pointers guid ~f:pred then
        `Stop path
      else `Continue path)

(* [@alloc_ok]: a query allocates its result record, the walk/retry
   bookkeeping and the root-set retry list — per locate call; the hop
   work underneath is [Route.fold_path]'s checked path. *)
let[@alloc_ok] rec locate ?variant ?root_idx net ~client guid =
  let cfg = net.Network.config in
  let chosen, retries =
    match root_idx with
    | Some i -> (i, [])
    | None ->
        if cfg.Config.root_set_size = 1 then (0, [])
        else begin
          (* Observation 1: with independent roots, failed queries retry on
             the remaining root-set members *)
          let first = Simnet.Rng.int net.Network.rng cfg.Config.root_set_size in
          let others =
            List.init cfg.Config.root_set_size (fun i -> i)
            |> List.filter (fun i -> i <> first)
          in
          (first, others)
        end
  in
  let root_idx = chosen in
  let retry () =
    let rec go = function
      | [] -> None
      | i :: rest -> (
          let res = locate ?variant ~root_idx:i net ~client guid in
          match res.server with Some _ -> Some res | None -> go rest)
    in
    go retries
  in
  let salted = Network.salted net guid root_idx in
  let finish (found : Node.t) rev_path redirects =
    match closest_usable_server net found guid with
    | None -> (
        match retry () with
        | Some r -> r
        | None ->
            { server = None; pointer_node = None; walk = List.rev rev_path; redirects })
    | Some server ->
        (* Route through the mesh to the chosen replica's server.  The walk
           (and so every hop charge) matches [Route.route_to_node]; only the
           path list, which nobody reads, is not built. *)
        let server =
          if Node_id.equal server.Node.id found.Node.id then Some server
          else begin
            let target = server.Node.id in
            let reached, (), _ =
              Route.fold_path net ~from:found target ~init:() ~f:(fun () node ->
                  if Node_id.equal node.Node.id target then `Stop ()
                  else `Continue ())
            in
            if Node_id.equal reached.Node.id target then Some reached else None
          end
        in
        {
          server;
          pointer_node = Some found;
          walk = List.rev rev_path;
          redirects;
        }
  in
  let final, rev_path, stopped = walk_toward_root ?variant net ~from:client salted guid in
  let fallback res = match retry () with Some r -> r | None -> res in
  if stopped then finish final rev_path 0
  else begin
    match final.Node.status with
    | Node.Inserting -> (
        (* Figure 10: the inserting node bounces the request to its
           pre-insertion surrogate, which routes as if the new node were
           absent. *)
        match final.Node.surrogate_hint with
        | Some hint_id -> (
            match Network.find net hint_id with
            | Some hint when Node.is_alive hint ->
                Network.charge net final hint;
                let final2, rev2, stopped2 =
                  walk_toward_root ?variant ~exclude:final.Node.id net ~from:hint
                    salted guid
                in
                if stopped2 then finish final2 (rev2 @ rev_path) 1
                else
                  fallback
                    {
                      server = None;
                      pointer_node = None;
                      walk = List.rev (rev2 @ rev_path);
                      redirects = 1;
                    }
            | _ ->
                fallback
                  { server = None; pointer_node = None; walk = List.rev rev_path; redirects = 0 })
        | None ->
            fallback
              { server = None; pointer_node = None; walk = List.rev rev_path; redirects = 0 })
    | _ ->
        fallback
          { server = None; pointer_node = None; walk = List.rev rev_path; redirects = 0 }
  end

let exists net ~client guid = Option.is_some (locate net ~client guid).server
