(** The distributed nearest-neighbor algorithm of Section 3 (Figure 4).

    Given the joining node's surrogate, the algorithm walks level lists
    downward: starting from all nodes sharing the longest existing prefix
    alpha (obtained by acknowledged multicast), the level-i list is derived
    from the level-(i+1) list by collecting every level-i node the current
    list knows through forward and backward pointers, then trimming to the
    k closest (Lemma 1).  Each level list fills the corresponding routing
    table level (Lemma 2), every contacted node checks whether the joining
    node improves its own table (Theorem 4), and the final level-0 list's
    closest member is the new node's nearest neighbor.

    [fill_holes] is the deterministic backstop for the with-high-probability
    guarantee of Lemma 2: any slot left empty is resolved by surrogate
    routing, which either finds a matching node or certifies the hole, so
    Property 1 holds unconditionally after a join.

    The descent runs on the network's {!Scratch} buffers (DESIGN.md §8.7):
    candidate sets are deduplicated by generation stamps over arena handles,
    distances to the joiner are memoized per handle across the whole
    descent, and the k-closest trim is an in-place bounded heap — no
    hashtable, no keyed-list sort, no per-level allocation.  The pre-packing
    list implementation is kept as {!Oracle} and drives the differential
    insertion suite. *)

type trace = {
  levels_walked : int;  (** list-descent steps executed *)
  nodes_contacted : int;  (** distinct nodes asked for pointers *)
  tables_updated : int;  (** existing nodes that adopted the new node *)
  holes_backfilled : int;  (** slots the fallback probe had to fill *)
}

val acquire_neighbor_table :
  ?adaptive:bool ->
  Network.t ->
  new_node:Node.t ->
  surrogate:Node.t ->
  initial_list:Node.t list ->
  trace
(** Figure 4's [AcquireNeighborTable].  [initial_list] is the set of
    alpha-prefix nodes the insertion multicast reached (the paper reuses the
    multicast to seed the first list); pass the surrogate alone when driving
    the algorithm standalone.

    [adaptive] enables the dynamic-k variant the paper cites for spaces with
    large expansion constants (Section 6.2): the descent restarts with
    doubled list width until the nearest-neighbor answer stabilizes. *)

val nearest_neighbor : Network.t -> from:Node.t -> Node.t option
(** Answer a nearest-neighbor query for an already-inserted node using the
    mesh (Property 2's static solution: the closest entry among the level-0
    slots after a table acquisition). *)

val get_next_list :
  ?update_tables:bool ->
  Network.t -> new_node:Node.t -> level:int -> Node.t list -> k:int -> Node.t list
(** One descent step ([GetNextList]): from the level-(level+1) list, collect
    forward+backward pointers at [level], let every contacted node consider
    the new node, and keep the [k] closest level-[level] nodes.  Exposed for
    tests and the E3 experiment.  Falls back to {!Oracle.get_next_list} when
    a list element carries no arena handle (unregistered test probes). *)

(** The pre-packing descent (hashtable candidate set, keyed-list sort per
    trim, [Network.find] per pointer), kept as a reference oracle: the
    differential insertion suite and the paired microbenchmarks drive both
    implementations through identical churn and assert identical traces,
    tables and chosen neighbors. *)
module Oracle : sig
  val acquire_neighbor_table :
    ?adaptive:bool ->
    Network.t ->
    new_node:Node.t ->
    surrogate:Node.t ->
    initial_list:Node.t list ->
    trace

  val get_next_list :
    ?update_tables:bool ->
    Network.t -> new_node:Node.t -> level:int -> Node.t list -> k:int ->
    Node.t list
end
