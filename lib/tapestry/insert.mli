(** Dynamic node insertion (Section 4, Figure 7).

    A joining node contacts a gateway, routes to its surrogate (the existing
    node whose ID is closest to its own), copies a preliminary routing table,
    then acknowledged-multicasts over the longest shared prefix so that every
    node whose table gains a mandatory entry — the hole the new node fills —
    learns of it and re-roots the object pointers whose surrogate paths now
    pass through the new node ([LinkAndXferRoot]).  Finally the
    nearest-neighbor algorithm of Section 3 optimizes the whole table.

    After the multicast completes the node satisfies Property 1 (it is a
    {e core node}, Definition 1); the nearest-neighbor pass only improves
    locality (Property 2).  The multicast carries the watch list of
    Figure 11 so simultaneous insertions filling sibling holes discover each
    other (Theorem 6).

    The three stages are exposed separately so concurrency experiments can
    interleave insertions at stage boundaries on the fiber scheduler;
    {!insert} runs them back to back. *)

type report = {
  node : Node.t;
  surrogate : Node.t;
  shared_prefix : int;  (** |alpha|: digits shared with the surrogate *)
  multicast_reached : int;  (** alpha-nodes notified by the multicast *)
  pointers_transferred : int;  (** object pointer records re-rooted *)
  nn_trace : Nearest_neighbor.trace;
  cost : Simnet.Cost.t;  (** total cost charged by this insertion *)
}

type staged
(** An insertion in progress (the node is registered and [Inserting]). *)

val stage_surrogate :
  ?id:Node_id.t -> ?adaptive:bool -> Network.t -> gateway:Node.t -> addr:int -> staged
(** Figure 7 steps 1–3: register the joining node, find its surrogate
    through the gateway, copy the preliminary table. *)

val stage_multicast : Network.t -> staged -> unit
(** Figure 7 step 4: acknowledged multicast over alpha running
    [LinkAndXferRoot] with the Figure 11 watch list.  After this the node is
    a core node in the sense of Definition 1. *)

val stage_acquire : Network.t -> staged -> report
(** Figure 7 step 5: the Section 3 neighbor-table acquisition, the Property-1
    backfill, and activation. *)

val staged_node : staged -> Node.t

val insert :
  ?id:Node_id.t -> ?adaptive:bool -> Network.t -> gateway:Node.t -> addr:int -> report
(** The full insertion, all three stages.
    @raise Invalid_argument if the id collides or the gateway is dead. *)

val build_incremental :
  ?seed:int -> Config.t -> Simnet.Metric.t -> addrs:int list -> Network.t * report list
(** Convenience: create a network and insert a node at each point of
    [addrs] in order, each joining through a random existing node (the first
    becomes the bootstrap).  This is the paper's end-to-end construction:
    the final state should match a statically built network.  Successive
    insertions reuse the network's {!Scratch} buffers, so a bulk build does
    not reallocate per join. *)

(** The insertion pipeline on the pre-packing list engines
    ({!Multicast.Oracle}, {!Nearest_neighbor.Oracle} and the directory-based
    preliminary-table copy).  Identical observable behavior — reports,
    final tables, cost — to the packed pipeline; the differential churn
    suite and the paired microbenchmarks rely on it. *)
module Oracle : sig
  val stage_surrogate :
    ?id:Node_id.t -> ?adaptive:bool -> Network.t -> gateway:Node.t ->
    addr:int -> staged

  val stage_multicast : Network.t -> staged -> unit

  val stage_acquire : Network.t -> staged -> report

  val insert :
    ?id:Node_id.t -> ?adaptive:bool -> Network.t -> gateway:Node.t ->
    addr:int -> report
end
