(* Full mesh invariant audit, extending Verify with the structural
   invariants the paper's correctness argument rests on.  Runs at quiescent
   points (no in-flight operations); all walking is charge-free. *)

type violation =
  | Uncertified_hole of {
      node : Node_id.t;
      level : int;
      digit : int;
      witness : Node_id.t;
    }
  | Misordered_slot of { node : Node_id.t; level : int; digit : int }
  | Misplaced_entry of {
      node : Node_id.t;
      level : int;
      digit : int;
      entry : Node_id.t;
    }
  | Dangling_entry of {
      node : Node_id.t;
      level : int;
      digit : int;
      entry : Node_id.t;
    }
  | Stale_handle of {
      node : Node_id.t;
      level : int;
      digit : int;
      entry : Node_id.t;
    }
  | Missing_backpointer of {
      holder : Node_id.t;
      level : int;
      target : Node_id.t;
    }
  | Stale_backpointer of { node : Node_id.t; level : int; source : Node_id.t }
  | Missing_owner of { node : Node_id.t; level : int }
  | Expired_pointer of {
      node : Node_id.t;
      guid : Node_id.t;
      server : Node_id.t;
      root_idx : int;
      expires : float;
    }
  | Footprint_excess of { total_bytes : int; budget_bytes : int }
  | Cache_incoherent of {
      holder : Node_id.t option;
      guid : Node_id.t;
      reason : string;
    }

type report = {
  nodes_audited : int;
  entries_checked : int;
  holes_certified : int;
  violations : violation list;
}

let violation_code = function
  | Uncertified_hole _ -> "uncertified-hole"
  | Misordered_slot _ -> "misordered-slot"
  | Misplaced_entry _ -> "misplaced-entry"
  | Dangling_entry _ -> "dangling-entry"
  | Stale_handle _ -> "stale-handle"
  | Missing_backpointer _ -> "missing-backpointer"
  | Stale_backpointer _ -> "stale-backpointer"
  | Missing_owner _ -> "missing-owner"
  | Expired_pointer _ -> "expired-pointer"
  | Footprint_excess _ -> "footprint-excess"
  | Cache_incoherent _ -> "cache-incoherent"

let is_clean r = match r.violations with [] -> true | _ :: _ -> false

let pp_violation ppf v =
  let id = Node_id.to_string in
  match v with
  | Uncertified_hole { node; level; digit; witness } ->
      Format.fprintf ppf
        "uncertified-hole: %s slot (L%d, %x) is empty but core node %s \
         matches the prefix (Property 1)"
        (id node) (level + 1) digit (id witness)
  | Misordered_slot { node; level; digit } ->
      Format.fprintf ppf
        "misordered-slot: %s slot (L%d, %x) entries are not in ascending \
         distance order (Property 2)"
        (id node) (level + 1) digit
  | Misplaced_entry { node; level; digit; entry } ->
      Format.fprintf ppf
        "misplaced-entry: %s slot (L%d, %x) holds %s whose ID does not \
         select that slot"
        (id node) (level + 1) digit (id entry)
  | Dangling_entry { node; level; digit; entry } ->
      Format.fprintf ppf
        "dangling-entry: %s slot (L%d, %x) holds %s which is dead or unknown"
        (id node) (level + 1) digit (id entry)
  | Stale_handle { node; level; digit; entry } ->
      Format.fprintf ppf
        "stale-handle: %s slot (L%d, %x) entry %s carries an arena handle \
         that resolves to a different node"
        (id node) (level + 1) digit (id entry)
  | Missing_backpointer { holder; level; target } ->
      Format.fprintf ppf
        "missing-backpointer: %s holds %s at level %d but %s has no \
         level-%d backpointer to it (Section 2.1)"
        (id holder) (id target) (level + 1) (id target) (level + 1)
  | Stale_backpointer { node; level; source } ->
      Format.fprintf ppf
        "stale-backpointer: %s has a level-%d backpointer from %s which no \
         longer holds it (Section 2.1)"
        (id node) (level + 1) (id source)
  | Missing_owner { node; level } ->
      Format.fprintf ppf
        "missing-owner: %s is absent from its own digit slot at level %d"
        (id node) (level + 1)
  | Expired_pointer { node; guid; server; root_idx; expires } ->
      Format.fprintf ppf
        "expired-pointer: %s still stores pointer (%s, %s, root %d) expired \
         at %.2f (soft state, Section 2.2)"
        (id node) (id guid) (id server) root_idx expires
  | Footprint_excess { total_bytes; budget_bytes } ->
      Format.fprintf ppf
        "footprint-excess: estimated resident size %d B exceeds the \
         O(n log n) budget %d B (Table 1 space bound)"
        total_bytes budget_bytes
  | Cache_incoherent { holder; guid; reason } ->
      Format.fprintf ppf
        "cache-incoherent: %s cached entry for object %s is neither valid \
         nor redirectable: %s (DESIGN.md \xc2\xa710)"
        (match holder with Some n -> id n | None -> "<out-of-arena>")
        (id guid) reason

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>audit: %d nodes, %d entries checked, %d holes certified, %d \
     violation(s)@,"
    r.nodes_audited r.entries_checked r.holes_certified
    (List.length r.violations);
  List.iter (fun v -> Format.fprintf ppf "  %a@," pp_violation v) r.violations;
  Format.fprintf ppf "@]"

let contains_id entries target =
  List.exists
    (fun (e : Routing_table.entry) -> Node_id.equal e.Routing_table.id target)
    entries

(* Space sanity: the paper's Table 1 space bound is O(log² n) pointers per
   node, i.e. O(n log n) words beyond the fixed b·R·log_b(N) slot arrays
   every table carries.  The budget charges each node its empty-table cost
   plus a per-node O(log n) allowance for entries/backpointers/trie growth,
   with 2x slack — generous enough never to trip on a healthy mesh at any
   n, tight enough to catch superlinear-per-node regressions (e.g. a
   backpointer leak). *)
let footprint_budget net =
  let cfg = net.Network.config in
  let n = max 2 (Network.node_count net) in
  let word = 8 in
  let cells = cfg.Config.id_digits * cfg.Config.base in
  let empty_table =
    ((cells * cfg.Config.redundancy * 3) + (2 * cells)
    + (20 * cfg.Config.id_digits) + 80)
    * word
  in
  let trie_chain = 2 * cfg.Config.id_digits * (cfg.Config.base + 8) * word in
  let per_node_fixed = empty_table + trie_chain + 1024 in
  let log2n = log (float_of_int n) /. log 2. in
  let per_node_log = 512. *. log2n in
  int_of_float
    (float_of_int n *. (float_of_int per_node_fixed +. per_node_log) *. 2.)
  + Simnet.Metric.approx_bytes net.Network.metric

let run net =
  Network.without_charging net (fun () ->
      let cfg = net.Network.config in
      let violations = ref [] in
      let entries_checked = ref 0 in
      let holes_certified = ref 0 in
      let add v = violations := v :: !violations in
      (* Property 1: every hole of a core node is a certified hole — no
         core node extends (prefix, digit).  Mirrors the insertion-time
         obligation of Definition 1 / Theorem 5. *)
      (* The network maintains the core trie incrementally; auditing reads
         it rather than rebuilding, which also exercises its consistency. *)
      let core_index = net.Network.core_index in
      (* Worklists are handle iterations, not materialized lists: at
         10^5..10^6 nodes the audit passes allocate nothing per node. *)
      Network.iter_alive net (fun (n : Node.t) ->
          if Node.is_core n then begin
            let prefix = Node_id.digits n.Node.id in
            for level = 0 to cfg.Config.id_digits - 1 do
              for digit = 0 to cfg.Config.base - 1 do
                if Routing_table.is_hole n.Node.table ~level ~digit then begin
                  if
                    Id_index.exists_extension core_index ~prefix ~len:level
                      ~digit
                  then begin
                    let witness =
                      Id_index.ids_with_prefix core_index ~prefix ~len:level
                      |> List.find (fun id -> Node_id.digit id level = digit)
                    in
                    add
                      (Uncertified_hole
                         { node = n.Node.id; level; digit; witness })
                  end
                  else incr holes_certified
                end
              done
            done
          end);
      (* Per-slot structure for every alive node: entries belong to the
         slot, are ordered by distance (Property 2: closest is primary),
         point at live nodes, and are backpointed (Section 2.1). *)
      Network.iter_alive net (fun (n : Node.t) ->
          let table = n.Node.table in
          let owner = n.Node.id in
          for level = 0 to Routing_table.levels table - 1 do
            for digit = 0 to Routing_table.base table - 1 do
              let len = Routing_table.slot_len table ~level ~digit in
              let ordered = ref true in
              for k = 0 to len - 2 do
                if
                  Routing_table.slot_dist table ~level ~digit ~k
                  > Routing_table.slot_dist table ~level ~digit ~k:(k + 1)
                then ordered := false
              done;
              if not !ordered then
                add (Misordered_slot { node = owner; level; digit });
              for k = 0 to len - 1 do
                let eid = Routing_table.slot_id table ~level ~digit ~k in
                if not (Node_id.equal eid owner) then begin
                  incr entries_checked;
                  if
                    Node_id.common_prefix_len owner eid < level
                    || Node_id.digit eid level <> digit
                  then
                    add
                      (Misplaced_entry
                         { node = owner; level; digit; entry = eid });
                  (* an entry's arena handle is immutable: resolving it must
                     yield the very node the entry names *)
                  let h = Routing_table.slot_handle table ~level ~digit ~k in
                  if
                    h >= 0
                    && not
                         (h < net.Network.arena_len
                         && Node_id.equal
                              (Network.node_of_handle net h).Node.id eid)
                  then
                    add (Stale_handle { node = owner; level; digit; entry = eid });
                  match Network.find net eid with
                  | Some target when Node.is_alive target ->
                      if
                        not
                          (List.exists (Node_id.equal owner)
                             (Routing_table.backpointers target.Node.table
                                ~level))
                      then
                        add
                          (Missing_backpointer
                             { holder = owner; level; target = eid })
                  | Some _ | None ->
                      add
                        (Dangling_entry
                           { node = owner; level; digit; entry = eid })
                end
              done
            done;
            (* the owner fills its own digit slot at every level (create's
               invariant; routing and multicast rely on it) *)
            let own_digit = Node_id.digit owner level in
            if
              not
                (contains_id
                   (Routing_table.slot table ~level ~digit:own_digit)
                   owner)
            then add (Missing_owner { node = owner; level })
          done);
      (* Backpointer reverse direction: every backpointer's source still
         holds the node. *)
      Network.iter_alive net (fun (b : Node.t) ->
          List.iter
            (fun (level, src) ->
              let holds =
                match Network.find net src with
                | Some a when Node.is_alive a ->
                    contains_id
                      (Routing_table.slot a.Node.table ~level
                         ~digit:(Node_id.digit b.Node.id level))
                      b.Node.id
                | Some _ | None -> false
              in
              if not holds then
                add
                  (Stale_backpointer
                     { node = b.Node.id; level; source = src }))
            (Routing_table.all_backpointers b.Node.table));
      (* Pointer-store expiry consistency: at a quiescent point no node may
         still hold a pointer past its expiry (soft state, Section 2.2). *)
      Network.iter_alive net (fun (n : Node.t) ->
          List.iter
            (fun (r : Pointer_store.record) ->
              if r.Pointer_store.expires < net.Network.clock then
                add
                  (Expired_pointer
                     {
                       node = n.Node.id;
                       guid = r.Pointer_store.guid;
                       server = r.Pointer_store.server;
                       root_idx = r.Pointer_store.root_idx;
                       expires = r.Pointer_store.expires;
                     }))
            (Pointer_store.records n.Node.pointers));
      (* Cache coherence (PR 9): every cached entry is valid — a
         registered, live, epoch-current server still holding the
         replica — or provably redirectable: epoch behind (a probe
         self-evicts it) or server dead (the probe's liveness check
         rejects it; arena handles are never reused, so handle+liveness
         identifies the server).  Only the valid-looking ones can steer
         a request, so only they can be incoherent. *)
      (match net.Network.obj_cache with
      | None -> ()
      | Some c ->
          Obj_cache.iter c ~f:(fun ~h ~key ~server ~gen:_ ~epoch ->
              let guid = Obj_cache.guid_of_key c key in
              if h >= net.Network.arena_len then
                add
                  (Cache_incoherent
                     {
                       holder = None;
                       guid;
                       reason = "cache line beyond the node arena";
                     })
              else if server < 0 || server >= net.Network.arena_len then
                add
                  (Cache_incoherent
                     {
                       holder = Some (Network.node_of_handle net h).Node.id;
                       guid;
                       reason = "entry names an unregistered server handle";
                     })
              else if epoch = Obj_cache.epoch_of c ~key ~srv:server then begin
                let s = Network.node_of_handle net server in
                if Node.is_alive s && not (Node.stores_replica s guid) then
                  add
                    (Cache_incoherent
                       {
                         holder = Some (Network.node_of_handle net h).Node.id;
                         guid;
                         reason =
                           "epoch-current entry names a live server that \
                            does not hold the replica";
                       })
              end);
          (* Hint-sketch structural invariants (PR 10).  Propagated
             hints already pass the replica-coherence check above via
             [iter] — they are ordinary entries once landed; here we
             certify the sketch itself: an empty way carries no hit
             count and no hint mark, an occupied way's count is at
             least 1 (every fill and import starts it there). *)
          for i = 0 to (c.Obj_cache.nodes * c.Obj_cache.ways) - 1 do
            let occupied = c.Obj_cache.e_key.(i) >= 0 in
            let hits = c.Obj_cache.e_hits.(i) in
            let src = Bytes.get c.Obj_cache.e_src i in
            let holder =
              let h = i / c.Obj_cache.ways in
              if h < net.Network.arena_len then
                Some (Network.node_of_handle net h).Node.id
              else None
            in
            if (not occupied) && (hits <> 0 || src <> '\000') then
              add
                (Cache_incoherent
                   {
                     holder;
                     guid =
                       (match holder with
                       | Some id -> id
                       | None ->
                           let cfg = net.Network.config in
                           Node_id.of_int ~base:cfg.Config.base
                             ~len:cfg.Config.id_digits 0);
                     reason = "sketch count or hint mark on an empty way";
                   })
            else if occupied && hits < 1 then
              add
                (Cache_incoherent
                   {
                     holder;
                     guid = Obj_cache.guid_of_key c c.Obj_cache.e_key.(i);
                     reason = "occupied way with a zero sketch count";
                   })
          done);
      (* Space bound: estimated residency within the O(n log n) budget. *)
      let fp = Network.memory_footprint net in
      let budget = footprint_budget net in
      if fp.Network.total_bytes > budget then
        add
          (Footprint_excess
             { total_bytes = fp.Network.total_bytes; budget_bytes = budget });
      {
        nodes_audited = Network.node_count net;
        entries_checked = !entries_checked;
        holes_certified = !holes_certified;
        violations = List.rev !violations;
      })
