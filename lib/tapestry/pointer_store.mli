(** Soft-state object pointers held at a node.

    Unlike PRR, Tapestry keeps a pointer for {e every} copy of an object
    (Section 2.4), so records are keyed by [(guid, server)].  Each record
    carries the last-hop node that forwarded the publish (the "previous"
    pointer Figure 9 requires) and an expiry time; pointers not refreshed by
    a republish disappear (Section 2.2, soft state). *)

type record = {
  guid : Node_id.t;
  server : Node_id.t;
  root_idx : int;  (** which member of the root set this path serves (Observation 2) *)
  mutable previous : Node_id.t option;  (** last hop toward the server; [None] at the server itself *)
  mutable expires : float;
}

type t

val create : unit -> t
(** A fresh, empty store.  Costs a couple of words until the first
    {!store}: the internal tables are allocated lazily, so the 10^6 idle
    stores of a scale-tier mesh stay cheap. *)

val store : t -> guid:Node_id.t -> server:Node_id.t -> root_idx:int ->
  previous:Node_id.t option -> expires:float ->
  [ `New | `Refreshed of Node_id.t option ]
(** Insert or refresh; on refresh returns the old [previous] hop and
    overwrites it with the new one. *)

val find : t -> guid:Node_id.t -> server:Node_id.t -> root_idx:int -> record option

val find_guid : t -> Node_id.t -> record list
(** All live replica pointers for a GUID. *)

val mem_guid : t -> Node_id.t -> bool

val exists_guid_match : t -> Node_id.t -> f:(record -> bool) -> bool
(** Is there a record for this GUID satisfying [f]?  Allocation-free with
    early exit (and O(1) on an empty store) — the locate walk's per-hop
    pointer probe, where {!find_guid}'s list build would dominate. *)

val iter_guid : t -> Node_id.t -> f:(record -> unit) -> unit
(** Visit every record of this GUID without building a list (secondary-
    index order: latest stored first, deterministic for a deterministic
    mutation history).  The serve tier's closest-usable-server scan. *)

val remove : t -> guid:Node_id.t -> server:Node_id.t -> root_idx:int -> bool

val remove_guid : t -> Node_id.t -> int

val guids : t -> Node_id.t list
(** Distinct GUIDs with at least one record. *)

val records : t -> record list

val size : t -> int

val expire : t -> now:float -> int
(** Drop records whose expiry passed; returns how many were dropped. *)

val clear : t -> unit
(** Drop every record (the lazy inner tables revert to the unallocated
    empty state).  Used by {!Network.clear_soft_state} to reuse a built
    mesh across serve-bench rows without rebuilding routing state. *)

val approx_bytes : t -> int
(** Estimated resident bytes of this store (tables, records, index) — an
    arithmetic model, not GC truth.  Feeds {!Network.memory_footprint}. *)
