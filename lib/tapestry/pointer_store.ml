type record = {
  guid : Node_id.t;
  server : Node_id.t;
  root_idx : int;
  mutable previous : Node_id.t option;
  mutable expires : float;
}

module Key = struct
  type t = Node_id.t * Node_id.t * int

  let equal ((g1, s1, r1) : t) ((g2, s2, r2) : t) =
    r1 = r2 && Node_id.equal g1 g2 && Node_id.equal s1 s2

  let hash (g, s, r) = (((Node_id.hash g * 31) + Node_id.hash s) * 31) + r
end

module Tbl = Hashtbl.Make (Key)

(* [by_guid] is a secondary index for the O(1) existence probe on the
   locate hot path.  Its per-guid list order is arbitrary and must never
   leak into record materialization: [find_guid] keeps answering from the
   primary table so distance tie-breaking downstream is unchanged.

   The two tables are allocated lazily, on the first [store]: every node
   owns a pointer store but in a large mesh only the O(objects * log n)
   nodes on publish paths ever hold a record, so the empty representation
   must cost words, not hashtable buckets (at 10^6 nodes the eager pair of
   16-bucket tables was ~350 MB of empty buckets). *)
type tables = { recs : record Tbl.t; by_guid : record list Node_id.Tbl.t }

type t = { mutable tables : tables option }

let create () = { tables = None }

let force t =
  match t.tables with
  | Some tb -> tb
  | None ->
      let tb = { recs = Tbl.create 8; by_guid = Node_id.Tbl.create 8 } in
      t.tables <- Some tb;
      tb

let index_add tb (r : record) =
  let cur =
    match Node_id.Tbl.find_opt tb.by_guid r.guid with Some l -> l | None -> []
  in
  Node_id.Tbl.replace tb.by_guid r.guid (r :: cur)

let index_remove tb ~guid ~server ~root_idx =
  match Node_id.Tbl.find_opt tb.by_guid guid with
  | None -> ()
  | Some l -> (
      let l =
        List.filter
          (fun (r : record) ->
            not (r.root_idx = root_idx && Node_id.equal r.server server))
          l
      in
      match l with
      | [] -> Node_id.Tbl.remove tb.by_guid guid
      | _ :: _ -> Node_id.Tbl.replace tb.by_guid guid l)

let store t ~guid ~server ~root_idx ~previous ~expires =
  let tb = force t in
  match Tbl.find_opt tb.recs (guid, server, root_idx) with
  | Some r ->
      let old = r.previous in
      r.previous <- previous;
      r.expires <- max r.expires expires;
      `Refreshed old
  | None ->
      let r = { guid; server; root_idx; previous; expires } in
      Tbl.replace tb.recs (guid, server, root_idx) r;
      index_add tb r;
      `New

let find t ~guid ~server ~root_idx =
  match t.tables with
  | None -> None
  | Some tb -> Tbl.find_opt tb.recs (guid, server, root_idx)

let find_guid t guid =
  match t.tables with
  | None -> []
  | Some tb ->
      Tbl.fold
        (fun (g, _, _) r acc -> if Node_id.equal g guid then r :: acc else acc)
        tb.recs []

let mem_guid t guid =
  match t.tables with
  | None -> false
  | Some tb -> (
      try
        Tbl.iter
          (fun (g, _, _) _ -> if Node_id.equal g guid then raise Exit)
          tb.recs;
        false
      with Exit -> true)

let exists_guid_match t guid ~f =
  match t.tables with
  | None -> false
  | Some tb -> (
      Tbl.length tb.recs > 0
      &&
      match Node_id.Tbl.find_opt tb.by_guid guid with
      | None -> false
      | Some l -> List.exists f l)

let iter_guid t guid ~f =
  match t.tables with
  | None -> ()
  | Some tb -> (
      match Node_id.Tbl.find_opt tb.by_guid guid with
      | None -> ()
      | Some l -> List.iter f l)

let remove t ~guid ~server ~root_idx =
  match t.tables with
  | None -> false
  | Some tb ->
      if Tbl.mem tb.recs (guid, server, root_idx) then begin
        Tbl.remove tb.recs (guid, server, root_idx);
        index_remove tb ~guid ~server ~root_idx;
        true
      end
      else false

let remove_guid t guid =
  match t.tables with
  | None -> 0
  | Some tb ->
      let victims =
        Tbl.fold
          (fun (g, s, r) _ acc ->
            if Node_id.equal g guid then (g, s, r) :: acc else acc)
          tb.recs []
      in
      List.iter
        (fun (g, s, r) ->
          Tbl.remove tb.recs (g, s, r);
          index_remove tb ~guid:g ~server:s ~root_idx:r)
        victims;
      List.length victims

let guids t =
  match t.tables with
  | None -> []
  | Some tb ->
      let seen = Node_id.Tbl.create 16 in
      Tbl.iter (fun (g, _, _) _ -> Node_id.Tbl.replace seen g ()) tb.recs;
      Node_id.Tbl.fold (fun g () acc -> g :: acc) seen []

let records t =
  match t.tables with
  | None -> []
  | Some tb -> Tbl.fold (fun _ r acc -> r :: acc) tb.recs []

let size t = match t.tables with None -> 0 | Some tb -> Tbl.length tb.recs

let expire t ~now =
  match t.tables with
  | None -> 0
  | Some tb ->
      let victims =
        Tbl.fold
          (fun key r acc -> if r.expires < now then key :: acc else acc)
          tb.recs []
      in
      List.iter
        (fun ((g, s, r) as key) ->
          Tbl.remove tb.recs key;
          index_remove tb ~guid:g ~server:s ~root_idx:r)
        victims;
      List.length victims

let clear t = t.tables <- None

let word = 8

(* Resident-size estimate.  Stdlib hashtables are a 5-word record plus a
   bucket array (at least 16 slots once forced) holding 4-word cons cells
   per binding; record payloads are 7 words (6 fields + header).  The
   by_guid index adds a 3-word cons per record plus one binding per
   distinct guid.  An estimate, not an accounting — used by
   {!Network.memory_footprint} and the scale-tier bytes-per-node gauge. *)
let approx_bytes t =
  match t.tables with
  | None -> 2 * word
  | Some tb ->
      let tbl_overhead len = ((5 + 1 + max 16 len) * word) in
      let n = Tbl.length tb.recs in
      let guids = Node_id.Tbl.length tb.by_guid in
      (2 * word)
      + tbl_overhead n
      + (n * (4 + 7) * word)
      + tbl_overhead guids
      + (guids * 4 * word)
      + (n * 3 * word)
