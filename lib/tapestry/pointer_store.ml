type record = {
  guid : Node_id.t;
  server : Node_id.t;
  root_idx : int;
  mutable previous : Node_id.t option;
  mutable expires : float;
}

module Key = struct
  type t = Node_id.t * Node_id.t * int

  let equal ((g1, s1, r1) : t) ((g2, s2, r2) : t) =
    r1 = r2 && Node_id.equal g1 g2 && Node_id.equal s1 s2

  let hash (g, s, r) = (((Node_id.hash g * 31) + Node_id.hash s) * 31) + r
end

module Tbl = Hashtbl.Make (Key)

(* [by_guid] is a secondary index for the O(1) existence probe on the
   locate hot path.  Its per-guid list order is arbitrary and must never
   leak into record materialization: [find_guid] keeps answering from the
   primary table so distance tie-breaking downstream is unchanged. *)
type t = { recs : record Tbl.t; by_guid : record list Node_id.Tbl.t }

let create () = { recs = Tbl.create 16; by_guid = Node_id.Tbl.create 16 }

let index_add t (r : record) =
  let cur =
    match Node_id.Tbl.find_opt t.by_guid r.guid with Some l -> l | None -> []
  in
  Node_id.Tbl.replace t.by_guid r.guid (r :: cur)

let index_remove t ~guid ~server ~root_idx =
  match Node_id.Tbl.find_opt t.by_guid guid with
  | None -> ()
  | Some l -> (
      let l =
        List.filter
          (fun (r : record) ->
            not (r.root_idx = root_idx && Node_id.equal r.server server))
          l
      in
      match l with
      | [] -> Node_id.Tbl.remove t.by_guid guid
      | _ :: _ -> Node_id.Tbl.replace t.by_guid guid l)

let store t ~guid ~server ~root_idx ~previous ~expires =
  match Tbl.find_opt t.recs (guid, server, root_idx) with
  | Some r ->
      let old = r.previous in
      r.previous <- previous;
      r.expires <- max r.expires expires;
      `Refreshed old
  | None ->
      let r = { guid; server; root_idx; previous; expires } in
      Tbl.replace t.recs (guid, server, root_idx) r;
      index_add t r;
      `New

let find t ~guid ~server ~root_idx = Tbl.find_opt t.recs (guid, server, root_idx)

let find_guid t guid =
  Tbl.fold
    (fun (g, _, _) r acc -> if Node_id.equal g guid then r :: acc else acc)
    t.recs []

let mem_guid t guid =
  try
    Tbl.iter (fun (g, _, _) _ -> if Node_id.equal g guid then raise Exit) t.recs;
    false
  with Exit -> true

let exists_guid_match t guid ~f =
  Tbl.length t.recs > 0
  &&
  match Node_id.Tbl.find_opt t.by_guid guid with
  | None -> false
  | Some l -> List.exists f l

let remove t ~guid ~server ~root_idx =
  if Tbl.mem t.recs (guid, server, root_idx) then begin
    Tbl.remove t.recs (guid, server, root_idx);
    index_remove t ~guid ~server ~root_idx;
    true
  end
  else false

let remove_guid t guid =
  let victims =
    Tbl.fold
      (fun (g, s, r) _ acc -> if Node_id.equal g guid then (g, s, r) :: acc else acc)
      t.recs []
  in
  List.iter
    (fun (g, s, r) ->
      Tbl.remove t.recs (g, s, r);
      index_remove t ~guid:g ~server:s ~root_idx:r)
    victims;
  List.length victims

let guids t =
  let seen = Node_id.Tbl.create 16 in
  Tbl.iter (fun (g, _, _) _ -> Node_id.Tbl.replace seen g ()) t.recs;
  Node_id.Tbl.fold (fun g () acc -> g :: acc) seen []

let records t = Tbl.fold (fun _ r acc -> r :: acc) t.recs []

let size t = Tbl.length t.recs

let expire t ~now =
  let victims =
    Tbl.fold
      (fun key r acc -> if r.expires < now then key :: acc else acc)
      t.recs []
  in
  List.iter
    (fun ((g, s, r) as key) ->
      Tbl.remove t.recs key;
      index_remove t ~guid:g ~server:s ~root_idx:r)
    victims;
  List.length victims
