type status = Inserting | Active | Leaving | Dead

type t = {
  id : Node_id.t;
  addr : int;
  mutable handle : int;
  table : Routing_table.t;
  pointers : Pointer_store.t;
  replicas : unit Node_id.Tbl.t;
  mutable status : status;
  mutable surrogate_hint : Node_id.t option;
}

let no_handle = -1

let create cfg ~id ~addr =
  {
    id;
    addr;
    handle = no_handle;
    table = Routing_table.create cfg ~owner:id;
    pointers = Pointer_store.create ();
    replicas = Node_id.Tbl.create 4;
    status = Inserting;
    surrogate_hint = None;
  }

let is_alive t =
  match t.status with Inserting | Active | Leaving -> true | Dead -> false

let is_core t = match t.status with Active | Leaving -> true | Inserting | Dead -> false

let stores_replica t guid = Node_id.Tbl.mem t.replicas guid

let add_replica t guid = Node_id.Tbl.replace t.replicas guid ()

let remove_replica t guid = Node_id.Tbl.remove t.replicas guid

let pp ppf t =
  let status =
    match t.status with
    | Inserting -> "inserting"
    | Active -> "active"
    | Leaving -> "leaving"
    | Dead -> "dead"
  in
  Format.fprintf ppf "%s@%d[%s]" (Node_id.to_string t.id) t.addr status
