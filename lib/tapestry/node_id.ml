type t = { d : int array; h : int }

(* Digits use the 0-9 then a-v alphabet, covering radices up to 32. *)
let alphabet = "0123456789abcdefghijklmnopqrstuv"

let compute_hash d =
  Array.fold_left (fun acc x -> (acc * 131) + x + 1) 5381 d land max_int

let make d = { d; h = compute_hash d }

let random ~base ~len rng = make (Array.init len (fun _ -> Simnet.Rng.int rng base))

let to_string t =
  String.init (Array.length t.d) (fun i -> alphabet.[t.d.(i)])

let of_string ~base s =
  let parse c =
    let v = String.index_opt alphabet c in
    match v with
    | Some v when v < base -> v
    | _ -> invalid_arg (Printf.sprintf "Node_id.of_string: bad digit %c" c)
  in
  make (Array.init (String.length s) (fun i -> parse s.[i]))

let length t = Array.length t.d

let digit t i = t.d.(i)

let digits t = Array.copy t.d

let equal a b =
  a.h = b.h
  && Array.length a.d = Array.length b.d
  &&
  let rec go i = i < 0 || (a.d.(i) = b.d.(i) && go (i - 1)) in
  go (Array.length a.d - 1)

(* Digit-by-digit, most significant first; shorter IDs order before their
   extensions (same order Stdlib.compare gave on the digit arrays, but
   explicit so no polymorphic comparison touches protocol values). *)
let compare a b =
  let la = Array.length a.d and lb = Array.length b.d in
  let n = min la lb in
  let rec go i =
    if i = n then Int.compare la lb
    else
      match Int.compare a.d.(i) b.d.(i) with 0 -> go (i + 1) | c -> c
  in
  go 0

let hash t = t.h

let common_prefix_len a b =
  let n = min (Array.length a.d) (Array.length b.d) in
  let rec go i = if i < n && a.d.(i) = b.d.(i) then go (i + 1) else i in
  go 0

let has_prefix t ~prefix ~len =
  Array.length t.d >= len
  &&
  let rec go i = i >= len || (t.d.(i) = prefix.(i) && go (i + 1)) in
  go 0

let prefix t n = Array.sub t.d 0 n

let salt ~base t i =
  if i = 0 then t
  else begin
    (* Derive psi_i by mixing the salt index through a splitmix stream seeded
       from the digits; deterministic wherever it is evaluated (Property 3). *)
    let seed = Array.fold_left (fun acc x -> (acc * 8191) + x + i) (i * 7919) t.d in
    let rng = Simnet.Rng.create seed in
    make (Array.init (Array.length t.d) (fun _ -> Simnet.Rng.int rng base))
  end

let to_int ~base t =
  (* Read digits most-significant first. *)
  Array.fold_left (fun acc x -> (acc * base) + x) 0 t.d

let of_int ~base ~len v =
  let d = Array.make len 0 in
  let rec go i v =
    if i >= 0 then begin
      d.(i) <- v mod base;
      go (i - 1) (v / base)
    end
  in
  go (len - 1) v;
  make d

module Key = struct
  type nonrec t = t

  let equal = equal

  let compare = compare

  let hash = hash
end

module Tbl = Hashtbl.Make (Key)
module Set = Stdlib.Set.Make (Key)
module Map = Stdlib.Map.Make (Key)
