type result = { reached : Node.t list; tree_edges : int }

(* Watch-list handling (Figure 11): on arrival at a node, scan the watched
   holes it can certify filled and report the filler.  Fillers resolve
   through the arena handle stored next to the entry; only entries injected
   without one fall back to the directory. *)
(* [@alloc_ok]: the iteration closures here are built per visited node
   but only when a watch list is present (insertions), and the watch
   list itself is O(prefix * base) — join-time, not per-message. *)
let[@alloc_ok] check_watchlist net watchlist on_watch_hit (node : Node.t) =
  match (watchlist, on_watch_hit) with
  | Some wl, Some hit ->
      Array.iteri
        (fun level row ->
          Array.iteri
            (fun digit wanted ->
              if wanted then begin
                match Routing_table.primary node.Node.table ~level ~digit with
                | Some e when not (Node_id.equal e.Routing_table.id node.Node.id)
                  -> (
                    let h =
                      Routing_table.slot_handle node.Node.table ~level ~digit
                        ~k:0
                    in
                    let filler =
                      if h >= 0 then Some (Network.node_of_handle net h)
                      else Network.find net e.Routing_table.id
                    in
                    match filler with
                    | Some filler when Node.is_alive filler ->
                        row.(digit) <- false;
                        hit ~level ~digit filler
                    | _ -> ())
                | Some _ when Node.is_alive node ->
                    (* the recipient itself fills the hole *)
                    row.(digit) <- false;
                    hit ~level ~digit node
                | _ -> ()
              end)
            row)
        wl
  | _ -> ()

let ntz_table =
  [|
    0; 1; 28; 2; 29; 14; 24; 3; 30; 22; 20; 15; 25; 17; 4; 8; 31; 27; 13; 23;
    21; 19; 16; 7; 26; 12; 18; 6; 11; 5; 10; 9;
  |]

let ntz x = ntz_table.((((x land -x) * 0x077CB531) land 0xFFFFFFFF) lsr 27)

(* The recursive descent of Figure 8 on the packed representation: visited
   marking is a generation stamp indexed by arena handle, the per-digit
   "pinned" target sets are snapshotted as segments of one shared handle
   stack (the worklist), and the multicast prefix lives in a single mutable
   buffer — frame [l] owns cell [l], so extending the prefix is one write
   and the unwind needs no undo (deeper frames never touch shallower
   cells).  Digits iterate over {!Routing_table.filled_mask} (read after
   the payload ran at this node, which may fill slots), so holes cost one
   bit test.  The acknowledgment for each tree edge is charged as that
   edge's subtree completes (Theorem 5's accounting, attributed where the
   ack actually flows), so cost snapshots taken between interleaved staged
   insertions see every ack inside the insertion that caused it.

   [@alloc_ok]: one multicast allocates the prefix buffer, the [descend]/
   [edge] closures, per-frame scan cells and the reached list it returns —
   all per multicast invocation (a join-time operation); the per-node
   digit scan itself runs on the shared scratch. *)
let[@alloc_ok] run ?on_watch_hit ?watchlist net ~start ~prefix ~len ~apply =
  if not (Node_id.has_prefix (start : Node.t).Node.id ~prefix ~len) then
    invalid_arg "Multicast.run: start node lacks the prefix";
  let cfg = net.Network.config in
  let s = net.Network.scratch in
  Scratch.ensure_handles s ~n:net.Network.arena_len;
  let gen = Scratch.bump_visit s in
  s.Scratch.reached_len <- 0;
  s.Scratch.sp <- 0;
  let edges = ref 0 in
  let buf = Array.make cfg.Config.id_digits 0 in
  Array.blit prefix 0 buf 0 len;
  let rec descend (node : Node.t) l =
    if s.Scratch.stamp.(node.Node.handle) <> gen then begin
      s.Scratch.stamp.(node.Node.handle) <- gen;
      Scratch.push_reached s node.Node.handle;
      check_watchlist net watchlist on_watch_hit node;
      apply node
    end;
    if l < cfg.Config.id_digits then begin
      let table = node.Node.table in
      let mask = ref (Routing_table.filled_mask table ~level:l) in
      while !mask <> 0 do
        let j = ntz !mask in
        mask := !mask land (!mask - 1);
        (* Snapshot this digit's target set: one settled ("unpinned") entry
           AND every inserting ("pinned") entry (Section 4.4, Lemma 4), in
           slot order — entries for nodes that are still inserting are not
           yet well-connected, so a tree rooted through a half-joined node
           would miss its siblings if they were skipped.  The snapshot
           happens before any recursion because the payload and lazy
           failure repair may rewrite the slot under us; the settled pick
           (first core alive) rides in a local, the pinned in a stack
           segment. *)
        let base_off = s.Scratch.sp in
        let settled = ref (-1) in
        for k = 0 to Routing_table.slot_len table ~level:l ~digit:j - 1 do
          let h = Routing_table.slot_handle table ~level:l ~digit:j ~k in
          let n =
            if h >= 0 then Some (Network.node_of_handle net h)
            else Network.find net (Routing_table.slot_id table ~level:l ~digit:j ~k)
          in
          match n with
          | Some n when Node.is_alive n ->
              if Node.is_core n then begin
                if !settled < 0 then settled := n.Node.handle
              end
              else Scratch.push_stack s n.Node.handle
          | _ -> ()
        done;
        let top = s.Scratch.sp in
        buf.(l) <- j;
        let edge h =
          if h = node.Node.handle then
            (* message to self: no network cost, deeper prefix *)
            descend node (l + 1)
          else if s.Scratch.stamp.(h) <> gen then begin
            incr edges;
            let next = Network.node_of_handle net h in
            Network.charge_aside net node next;
            descend next (l + 1);
            (* acknowledgment back along this tree edge *)
            Simnet.Cost.message net.Network.cost ~dist:0.
          end
        in
        if !settled >= 0 then edge !settled;
        for idx = base_off to top - 1 do
          edge s.Scratch.stack.(idx)
        done;
        s.Scratch.sp <- base_off
      done
    end
  in
  descend start len;
  let reached = ref [] in
  for i = s.Scratch.reached_len - 1 downto 0 do
    reached := Network.node_of_handle net s.Scratch.reached.(i) :: !reached
  done;
  { reached = !reached; tree_edges = !edges }

(* --- reference oracle: the original list-and-hashtable descent --- *)

module Oracle = struct
  let run ?on_watch_hit ?watchlist net ~start ~prefix ~len ~apply =
    if not (Node_id.has_prefix (start : Node.t).Node.id ~prefix ~len) then
      invalid_arg "Multicast.run: start node lacks the prefix";
    let cfg = net.Network.config in
    let visited = Node_id.Tbl.create 32 in
    let reached = ref [] in
    let edges = ref 0 in
    let check_watchlist (node : Node.t) =
      match (watchlist, on_watch_hit) with
      | Some wl, Some hit ->
          Array.iteri
            (fun level row ->
              Array.iteri
                (fun digit wanted ->
                  if wanted then begin
                    match
                      Routing_table.primary node.Node.table ~level ~digit
                    with
                    | Some e
                      when not (Node_id.equal e.Routing_table.id node.Node.id)
                      -> (
                        match Network.find net e.Routing_table.id with
                        | Some filler when Node.is_alive filler ->
                            row.(digit) <- false;
                            hit ~level ~digit filler
                        | _ -> ())
                    | Some _ when Node.is_alive node ->
                        row.(digit) <- false;
                        hit ~level ~digit node
                    | _ -> ()
                  end)
                row)
            wl
      | _ -> ()
    in
    let rec descend (node : Node.t) cur_prefix l =
      if not (Node_id.Tbl.mem visited node.Node.id) then begin
        Node_id.Tbl.replace visited node.Node.id ();
        reached := node :: !reached;
        check_watchlist node;
        apply node
      end;
      if l < cfg.Config.id_digits then
        for j = 0 to cfg.Config.base - 1 do
          List.iter
            (fun (next : Node.t) ->
              if Node_id.equal next.Node.id node.Node.id then begin
                let p = Array.copy cur_prefix in
                p.(l) <- j;
                descend node p (l + 1)
              end
              else if not (Node_id.Tbl.mem visited next.Node.id) then begin
                incr edges;
                Network.charge_aside net node next;
                let p = Array.copy cur_prefix in
                p.(l) <- j;
                descend next p (l + 1)
              end)
            (pick_targets node ~level:l ~digit:j)
        done
    and pick_targets (node : Node.t) ~level ~digit =
      let table = node.Node.table in
      let live = ref [] in
      for k = Routing_table.slot_len table ~level ~digit - 1 downto 0 do
        let h = Routing_table.slot_handle table ~level ~digit ~k in
        let n =
          if h >= 0 then Some (Network.node_of_handle net h)
          else Network.find net (Routing_table.slot_id table ~level ~digit ~k)
        in
        match n with
        | Some n when Node.is_alive n -> live := n :: !live
        | _ -> ()
      done;
      let live = !live in
      let pinned = List.filter (fun (n : Node.t) -> not (Node.is_core n)) live in
      match List.find_opt Node.is_core live with
      | Some settled -> settled :: pinned
      | None -> pinned
    in
    let buf = Array.make cfg.Config.id_digits 0 in
    Array.blit prefix 0 buf 0 len;
    descend start buf len;
    (* Acknowledgments retrace every tree edge (Theorem 5's accounting). *)
    for _ = 1 to !edges do
      Simnet.Cost.message net.Network.cost ~dist:0.
    done;
    { reached = List.rev !reached; tree_edges = !edges }
end
