type result = { reached : Node.t list; tree_edges : int }

let run ?on_watch_hit ?watchlist net ~start ~prefix ~len ~apply =
  if not (Node_id.has_prefix (start : Node.t).Node.id ~prefix ~len) then
    invalid_arg "Multicast.run: start node lacks the prefix";
  let cfg = net.Network.config in
  let visited = Node_id.Tbl.create 32 in
  let reached = ref [] in
  let edges = ref 0 in
  (* Watch-list handling (Figure 11): on arrival at a node, scan the watched
     holes it can certify filled and report the filler. *)
  let check_watchlist (node : Node.t) =
    match (watchlist, on_watch_hit) with
    | Some wl, Some hit ->
        Array.iteri
          (fun level row ->
            Array.iteri
              (fun digit wanted ->
                if wanted then begin
                  match Routing_table.primary node.Node.table ~level ~digit with
                  | Some e when not (Node_id.equal e.Routing_table.id node.Node.id)
                    -> (
                      match Network.find net e.Routing_table.id with
                      | Some filler when Node.is_alive filler ->
                          row.(digit) <- false;
                          hit ~level ~digit filler
                      | _ -> ())
                  | Some _ when Node.is_alive node ->
                      (* the recipient itself fills the hole *)
                      row.(digit) <- false;
                      hit ~level ~digit node
                  | _ -> ()
                end)
              row)
          wl
    | _ -> ()
  in
  (* Recursive descent: at [node] holding the multicast for [prefix] of
     length [l], forward to one node per one-digit extension. *)
  let rec descend (node : Node.t) cur_prefix l =
    if not (Node_id.Tbl.mem visited node.Node.id) then begin
      Node_id.Tbl.replace visited node.Node.id ();
      reached := node :: !reached;
      check_watchlist node;
      apply node
    end;
    if l < cfg.Config.id_digits then begin
      for j = 0 to cfg.Config.base - 1 do
        List.iter
          (fun (next : Node.t) ->
            if Node_id.equal next.Node.id node.Node.id then begin
              (* message to self: no network cost, deeper prefix *)
              let p = Array.copy cur_prefix in
              p.(l) <- j;
              descend node p (l + 1)
            end
            else if not (Node_id.Tbl.mem visited next.Node.id) then begin
              incr edges;
              Network.charge_aside net node next;
              let p = Array.copy cur_prefix in
              p.(l) <- j;
              descend next p (l + 1)
            end)
          (pick_targets node ~level:l ~digit:j)
      done;
      (* acknowledgment back to the parent *)
      ()
    end
  and pick_targets (node : Node.t) ~level ~digit =
    (* Pinned pointers (Section 4.4, Lemma 4): entries for nodes that are
       still inserting are not yet well-connected, so the multicast must be
       sent to one settled ("unpinned") entry AND every inserting ("pinned")
       entry — otherwise a tree rooted through a half-joined node misses its
       siblings. *)
    let table = node.Node.table in
    let live = ref [] in
    for k = Routing_table.slot_len table ~level ~digit - 1 downto 0 do
      let h = Routing_table.slot_handle table ~level ~digit ~k in
      let n =
        if h >= 0 then Some (Network.node_of_handle net h)
        else Network.find net (Routing_table.slot_id table ~level ~digit ~k)
      in
      match n with
      | Some n when Node.is_alive n -> live := n :: !live
      | _ -> ()
    done;
    let live = !live in
    let pinned = List.filter (fun (n : Node.t) -> not (Node.is_core n)) live in
    match List.find_opt Node.is_core live with
    | Some settled -> settled :: pinned
    | None -> pinned
  in
  let buf = Array.make cfg.Config.id_digits 0 in
  Array.blit prefix 0 buf 0 len;
  descend start buf len;
  (* Acknowledgments retrace every tree edge (Theorem 5's accounting). *)
  for _ = 1 to !edges do
    Simnet.Cost.message net.Network.cost ~dist:0.
  done;
  { reached = List.rev !reached; tree_edges = !edges }
