(** Digit trie over identifiers.

    Oracle-side index used by invariant checkers, the static builder and
    experiment setup (never by protocol logic): answers "which digits extend
    prefix alpha among live nodes" and enumerates all IDs under a prefix in
    O(answer). *)

type t

val create : base:int -> t

val add : t -> Node_id.t -> unit

val remove : t -> Node_id.t -> unit

val mem : t -> Node_id.t -> bool

val size : t -> int

val digits_after : t -> prefix:int array -> len:int -> int list
(** Digits [j] such that some stored ID extends [prefix[0..len)] with [j]. *)

val ids_with_prefix : t -> prefix:int array -> len:int -> Node_id.t list

val count_with_prefix : t -> prefix:int array -> len:int -> int

val exists_extension : t -> prefix:int array -> len:int -> digit:int -> bool
(** Is there a stored ID whose first [len] digits are [prefix] and whose
    next digit is [digit]? Exactly the "hole" oracle of Property 1. *)

val approx_bytes : t -> int
(** Estimated resident bytes of the trie (nodes, children arrays, terminal
    conses; shared ids excluded).  O(trie size); feeds
    {!Network.memory_footprint}. *)
