(** The simulated Tapestry network: node directory, metric, cost accounting
    and the link-maintenance primitives shared by all protocol modules.

    Protocol modules ({!Route}, {!Publish}, {!Insert}, ...) act on this
    container but make decisions only from per-node state (routing tables and
    pointer stores), charging every simulated message to the ambient
    {!Simnet.Cost.t}.  Global views (the node directory, the trie indices,
    the dense alive array) are reserved for verification oracles, experiment
    setup and the invariant checkers at the bottom of this interface.

    Hot-path bookkeeping is incremental: the alive set is a dense
    swap-remove array (O(1) sampling, O(alive) listing) and the core trie
    [core_index] is maintained on every status transition, so
    {!surrogate_oracle} and the property checkers never rebuild it. *)

(** @closed *)
module Salt_tbl : Hashtbl.S with type key = Node_id.t * int

type t = {
  config : Config.t;
      (** normalized ({!Config.normalize}) copy of the config passed to
          {!create}: derived fields are always consistent *)
  metric : Simnet.Metric.t;
  nodes : Node.t Node_id.Tbl.t;
  index : Id_index.t;  (** oracle: trie over ids of nodes that are not Dead *)
  core_index : Id_index.t;
      (** oracle: trie over core ([Active]/[Leaving]) ids, maintained
          incrementally by {!register}, {!activate} and {!mark_dead} *)
  mutable arena : Node.t array;
      (** append-only node arena: [arena.(h)] is the node whose immutable
          handle is [h] (assigned at {!register}, kept through death).
          The routing hot path resolves table entries through it in O(1)
          with no hashing. *)
  mutable arena_len : int;  (** number of live entries in [arena] *)
  mutable alive_arr : Node.t array;
      (** dense array of alive nodes; entries beyond [alive_len] are junk *)
  mutable alive_len : int;  (** number of live entries in [alive_arr] *)
  alive_slot : int Node_id.Tbl.t;  (** node id -> its slot in [alive_arr] *)
  salts : Node_id.t Salt_tbl.t;
      (** memo for {!salted}: [Node_id.salt] allocates a fresh RNG and
          digit array per call, so the redundant-roots publish/locate path
          caches psi_i per [(id, i)] *)
  scratch : Scratch.t;
      (** reusable generation-stamped buffers for the insertion hot path
          (nearest-neighbor descent, acknowledged multicast); see
          {!Scratch} and DESIGN.md §8.7 *)
  mutable rng : Simnet.Rng.t;
      (** mutable so a campaign runner can restore a {!Simnet.Rng.copy}
          snapshot when replaying on a reused mesh *)
  cost : Simnet.Cost.t;  (** ambient accumulator charged by protocol code *)
  mutable clock : float;  (** virtual time for soft-state expiry *)
  mutable obj_cache : Obj_cache.t option;
      (** opt-in per-node object-pointer caches (PR 9): [None] (the
          default) leaves every locate path byte-identical to the
          uncached code; attach with {!Obj_cache.create} sized to
          [arena_len] to let {!Locate} probe and fill *)
}

val create : ?seed:int -> Config.t -> Simnet.Metric.t -> t

val clear_soft_state : t -> unit
(** Drop all soft state — pointer stores, replica sets, the virtual
    clock, any attached object cache — while keeping routing tables,
    indices and the metric.  Together with restoring an [rng] snapshot
    this lets a deterministic campaign replay on a reused mesh
    bit-identically to a fresh build (serve bench row reuse). *)

val dist : t -> Node.t -> Node.t -> float

val charge : t -> Node.t -> Node.t -> unit
(** One critical-path message between two nodes. *)

val charge_aside : t -> Node.t -> Node.t -> unit
(** One off-critical-path message (parallel fan-out). *)

val measure : t -> (unit -> 'a) -> 'a * Simnet.Cost.t
(** Run a thunk and return the cost it charged. *)

val without_charging : t -> (unit -> 'a) -> 'a
(** Run a thunk and roll back whatever it charged — for verification walks
    that must not distort experiment accounting. *)

val find : t -> Node_id.t -> Node.t option

val find_exn : t -> Node_id.t -> Node.t

val node_of_handle : t -> int -> Node.t
(** The node registered with arena handle [h], O(1) and allocation-free;
    dead nodes keep their handle (check {!Node.is_alive}).
    @raise Invalid_argument on an out-of-range handle. *)

val salted : t -> Node_id.t -> int -> Node_id.t
(** [salted t id i] is [Node_id.salt ~base id i], memoized per network.
    [i = 0] is the identity and bypasses the cache. *)

val register : t -> Node.t -> unit
(** Add a node to the directory, the oracle indices and the alive array (it
    is not yet linked into anyone's routing table).  If the node is already
    core ([Active]) it also enters [core_index].
    @raise Invalid_argument on duplicate id, bad addr or a dead node. *)

val mark_dead : t -> Node.t -> unit
(** Flip status to [Dead] and drop from the oracle indices and the alive
    array.  Routing-table cleanup is the protocols' business ({!Delete}). *)

val activate : t -> Node.t -> unit
(** [Inserting -> Active]: the node becomes core and (if registered) enters
    [core_index].  No-op on an already-[Active] node.
    @raise Invalid_argument on a [Leaving] or [Dead] node. *)

val begin_leaving : t -> Node.t -> unit
(** [Active -> Leaving]: announce voluntary departure.  Leaving nodes stay
    core (they serve in-flight traffic, Section 5.1), so [core_index] is
    untouched.  @raise Invalid_argument unless the node is [Active]. *)

val alive_nodes : t -> Node.t list
(** All alive nodes, O(alive); order is the dense-array order (insertion
    order perturbed by swap-removes), not id order. *)

val iter_alive : t -> (Node.t -> unit) -> unit
(** Visit every alive node in dense-array order without materializing the
    list — the worklist-free form audits and sweeps use at 10^5+ nodes. *)

val iter_registered : t -> (Node.t -> unit) -> unit
(** Visit every registered node (alive or dead) in arena-handle order. *)

val core_nodes : t -> Node.t list
(** All core ([Active]/[Leaving]) nodes, in id (trie) order. *)

val node_count : t -> int
(** Number of alive nodes, O(1). *)

val random_alive : t -> Node.t
(** Uniform random alive node, O(1). @raise Invalid_argument if none. *)

val fresh_id : t -> Node_id.t
(** Random identifier not colliding with a registered node.  Fails with a
    diagnostic naming the namespace size after 1000 collisions. *)

(** {2 Link maintenance}

    These update both directions of a neighbor link and are the only way
    protocol code mutates routing tables, so backpointers never drift. *)

val offer_link : t -> owner:Node.t -> level:int -> candidate:Node.t -> bool
(** Offer [candidate] for [owner]'s table at [level] (Property 2
    maintenance).  Returns true if it was added.  No-op unless the IDs share
    at least [level] digits; [Leaving] and [Dead] candidates are refused
    (Section 5.1: departing nodes take no new links). *)

val offer_link_all_levels : t -> owner:Node.t -> candidate:Node.t -> int
(** Offer at every level the two IDs share; returns how many levels added. *)

val drop_link : t -> owner:Node.t -> target:Node_id.t -> unit
(** Remove [target] from [owner]'s table and fix backpointers. *)

(** {2 Verification oracles (tests and experiments only)} *)

val check_property1 : t -> (Node.t * int * int) list
(** Violations of Property 1 (consistency): core nodes with an empty slot
    for which a matching core node exists.  Empty list = consistent. *)

val check_property2 : t -> total:int ref -> optimal:int ref -> unit
(** Locality quality: over every non-empty slot of every core node, counts
    slots whose primary is the true closest matching node. *)

val true_nearest_neighbor : t -> Node.t -> Node.t option
(** Brute-force closest other alive node (oracle for E3). *)

(** {2 Resident-size accounting}

    Arithmetic estimates of heap residency by subsystem (word = 8 bytes;
    shared [Node_id.t] values are counted once, with the node that owns
    them).  Not GC truth — a budget gauge for the scale tier and the audit
    footprint check; see DESIGN.md §8.8 for the model. *)

type footprint = {
  node_bytes : int;  (** node records, ids, replica sets *)
  table_bytes : int;  (** packed routing tables + backpointer tables *)
  pointer_bytes : int;  (** per-node pointer stores *)
  directory_bytes : int;  (** directory/alive tables, arena, salt cache *)
  index_bytes : int;  (** the two id tries *)
  metric_bytes : int;  (** coordinates + spatial index (or matrix) *)
  scratch_bytes : int;  (** reusable insertion buffers *)
  total_bytes : int;
}

val memory_footprint : t -> footprint
(** O(n) sweep over the arena plus an O(trie) walk; allocation-light.
    Used by the scale tier's bytes-per-node gauge and {!Audit}'s
    O(n log n) footprint sanity check. *)

val surrogate_oracle : t -> Node_id.t -> Node.t
(** The root {!Route.route_to_root} must find, computed from global
    knowledge: successively refine by digit with wrap-around among core
    nodes.  Answered from the incremental [core_index] — no rebuild.
    Mirrors Tapestry-native surrogate semantics. *)
