type pointer_gap = {
  guid : Node_id.t;
  server : Node_id.t;
  missing_at : Node_id.t;
}

let check_property4 net =
  Network.without_charging net (fun () ->
      let cfg = net.Network.config in
      let gaps = ref [] in
      List.iter
        (fun (server : Node.t) ->
          Node_id.Tbl.iter
            (fun guid () ->
              for root_idx = 0 to cfg.Config.root_set_size - 1 do
                let salted = Network.salted net guid root_idx in
                let _, _, _ =
                  Route.fold_path net ~from:server salted ~init:()
                    ~f:(fun () hop ->
                      (match
                         Pointer_store.find hop.Node.pointers ~guid
                           ~server:server.Node.id ~root_idx
                       with
                      | Some r when r.Pointer_store.expires >= net.Network.clock -> ()
                      | _ ->
                          gaps :=
                            { guid; server = server.Node.id; missing_at = hop.Node.id }
                            :: !gaps);
                      `Continue ())
                in
                ()
              done)
            server.Node.replicas)
        (Network.alive_nodes net);
      !gaps)

let roots_agree net guid ~samples =
  Network.without_charging net (fun () ->
      let oracle = Network.surrogate_oracle net guid in
      let ok = ref true in
      for _ = 1 to samples do
        let from = Network.random_alive net in
        let info = Route.route_to_root net ~from guid in
        if not (Node_id.equal info.Route.root.Node.id oracle.Node.id) then ok := false
      done;
      !ok)

let reachable_everywhere net guid =
  Network.without_charging net (fun () ->
      List.for_all
        (fun client -> Locate.exists net ~client guid)
        (Network.alive_nodes net))

let availability net ~guids ~samples =
  match guids with
  | [] -> 1.0
  | _ :: _ ->
    Network.without_charging net (fun () ->
        let hits = ref 0 in
        for _ = 1 to samples do
          let client = Network.random_alive net in
          let guid = Simnet.Rng.pick_list net.Network.rng guids in
          if Locate.exists net ~client guid then incr hits
        done;
        float_of_int !hits /. float_of_int samples)
