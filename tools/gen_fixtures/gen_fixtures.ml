(* Regenerate the golden experiment-table fixtures under test/fixtures.

   The determinism suite asserts that the E1/E2 tables at seed 42 are
   byte-identical to these fixtures, so any change to routing-table
   representation, routing order or cost accounting that shifts an
   experiment output is caught.  When a table legitimately changes
   (new columns, new semantics), rerun

     dune exec tools/gen_fixtures/gen_fixtures.exe

   from the repo root and commit the refreshed fixture together with the
   change that caused it. *)

let fixture_path = "test/fixtures/e1_e2_seed42.txt"

let render_experiment name =
  let tables =
    Evaluation.Experiment.by_name ~seed:42 ~domains:1 Evaluation.Experiment.Quick
      name
  in
  String.concat "\n" (List.map Simnet.Stats.Table.render tables)

let () =
  let doc =
    String.concat "\n" (List.map render_experiment [ "table1"; "stretch" ])
  in
  let oc = open_out fixture_path in
  output_string oc doc;
  close_out oc;
  Printf.printf "wrote %s (%d bytes)\n" fixture_path (String.length doc)
