(* CLI for the repo lint pass: [lint [--allowlist FILE] PATH...].

   Every .ml under the given paths is parsed and checked against the
   Lint_core rules; every lib/ .ml must additionally have a matching .mli.
   Violations print as "file:line: rule-id message" and the exit status is
   1 if any non-allowlisted violation was found.  Wired up as the
   [@lint] dune alias (see the root dune file and tools/check.sh). *)

let usage = "lint [--allowlist FILE] PATH..."

(* The one module allowed to touch ambient randomness: everything else
   must draw from it so that equal seeds replay equal runs. *)
let determinism_exempt file = Filename.check_suffix file "lib/simnet/rng.ml"

(* The per-message inner loops (DESIGN.md "hot paths"): routing, object
   location, and the insertion pipeline.  These carry the hot-path-alloc
   rule; their [Oracle] submodules are exempt. *)
let hot_path file =
  List.exists
    (fun m -> Filename.check_suffix file ("lib/tapestry/" ^ m ^ ".ml"))
    [ "route"; "locate"; "nearest_neighbor"; "multicast" ]

let rec walk path acc =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort String.compare
    |> List.fold_left
         (fun acc name ->
           match name with
           | "_build" | ".git" | "fixtures" -> acc
           | _ -> walk (Filename.concat path name) acc)
         acc
  else if Filename.check_suffix path ".ml" || Filename.check_suffix path ".mli"
  then path :: acc
  else acc

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let () =
  let allowlist = ref [] in
  let paths = ref [] in
  let args =
    [
      ( "--allowlist",
        Arg.String
          (fun f ->
            match Lint_core.parse_allowlist_checked (read_file f) with
            | Ok entries -> allowlist := !allowlist @ entries
            | Error errors ->
                List.iter (fun e -> Printf.eprintf "%s: %s\n" f e) errors;
                exit 2),
        "FILE intentional-exception list (rule-id path-suffix per line)" );
    ]
  in
  Arg.parse args (fun p -> paths := p :: !paths) usage;
  if !paths = [] then begin
    prerr_endline usage;
    exit 2
  end;
  let files = List.fold_left (fun acc p -> walk p acc) [] (List.rev !paths) in
  let mls = List.filter (fun f -> Filename.check_suffix f ".ml") files in
  let mlis = List.filter (fun f -> Filename.check_suffix f ".mli") files in
  let violations =
    List.concat_map
      (fun file ->
        Lint_core.lint_string ~file
          ~determinism_exempt:(determinism_exempt file)
          ~hot_path:(hot_path file)
          (read_file file))
      mls
  in
  let under_lib f =
    List.exists (String.equal "lib")
      (String.split_on_char '/' (Filename.dirname f))
  in
  let lib_mls = List.filter under_lib mls in
  let violations = violations @ Lint_core.missing_mlis ~mls:lib_mls ~mlis in
  let used = ref [] in
  let reported =
    violations
    |> List.filter (fun v ->
           match Lint_core.allowed_entry !allowlist v with
           | Some entry ->
               if not (List.mem entry !used) then used := entry :: !used;
               false
           | None -> true)
    |> List.sort Lint_core.compare_violations
  in
  List.iter (fun v -> print_endline (Lint_core.to_string v)) reported;
  (* Stale allowlist entries rot silently otherwise: the excused code
     was fixed or moved, and the entry would excuse a future regression. *)
  let stale = Lint_core.unused_entries !allowlist ~used:!used in
  List.iter
    (fun (rule, path) ->
      Printf.printf
        "allowlist: stale entry '%s %s' matched nothing — remove it\n" rule path)
    stale;
  match (reported, stale) with
  | [], [] ->
      Printf.printf "lint: %d files clean\n" (List.length mls);
      exit 0
  | vs, stale ->
      Printf.printf "lint: %d violation%s, %d stale allowlist entr%s in %d files\n"
        (List.length vs)
        (if List.length vs = 1 then "" else "s")
        (List.length stale)
        (if List.length stale = 1 then "y" else "ies")
        (List.length mls);
      exit 1
