(* Rule engine for the repo lint pass.  Parses OCaml sources with
   compiler-libs and walks the parsetree looking for constructs the repo
   bans (see DESIGN.md "Correctness tooling"):

   - poly-compare: unqualified [compare] (or [Stdlib.compare]) is the
     polymorphic comparison; on abstract protocol values (Node_id.t,
     routing-table entries, pointer records) it ignores the module's own
     ordering and can observe representation details.  Use the owning
     module's [compare] (Node_id.compare, Float.compare, Int.compare, ...).
   - poly-eq-fn: [List.mem], [List.assoc] and friends, [Hashtbl.hash] and
     bare [(=)]/[(<>)] passed as function values all bake in polymorphic
     structural equality.  Use [List.exists]/[List.find_opt] with the
     protocol type's own [equal].
   - eq-empty-list: [e = []] / [e <> []] is a structural comparison that
     silently becomes polymorphic equality over the element type if the
     expression ever changes; pattern match instead.
   - ambient-rng / ambient-time: [Stdlib.Random], [Unix.gettimeofday],
     [Unix.time] and [Sys.time] break deterministic replay (Section 4.4,
     Theorem 6 relies on the fiber scheduler seeing identical event orders
     for identical seeds).  All randomness must flow through Simnet.Rng and
     all time through the simulated clock.
   - missing-mli: every lib/ module must have an interface so that its
     abstract types stay abstract (otherwise polymorphic equality on them
     typechecks everywhere).
   - hot-path-alloc: on designated hot-path files (the routing, location
     and insertion inner loops) [List.sort] and [List.map] allocate a
     fresh list per call and [List.sort] boxes a closure per comparison;
     the packed table/scratch primitives exist precisely to avoid that.
     [module Oracle = struct ... end] submodules are exempt — they keep
     the original list-based implementations as differential-test
     references and are never on the hot path.

   The checks are syntactic approximations: a file that defines its own
   top-level [compare]/[equal] may refer to them unqualified, so such
   references are not flagged. *)

type violation = {
  file : string;
  line : int;
  col : int;
  rule : string;
  message : string;
}

let rule_ids =
  [
    "poly-compare";
    "poly-eq-fn";
    "eq-empty-list";
    "ambient-rng";
    "ambient-time";
    "hot-path-alloc";
    "missing-mli";
    "parse-error";
    (* typed tier (cmt-based; see alloc_check.ml, race_check.ml,
       typed_poly.ml) *)
    "typed-alloc";
    "typed-race";
    "typed-poly-eq";
  ]

let to_string v =
  Printf.sprintf "%s:%d: %s %s" v.file v.line v.rule v.message

(* --- allowlist --- *)

(* One entry per line: "<rule-id> <path-suffix>"; '#' starts a comment.
   A violation is allowed when its rule matches and its file path ends
   with the entry's suffix. *)

type allowlist = (string * string) list

let parse_allowlist content =
  String.split_on_char '\n' content
  |> List.filter_map (fun line ->
         let line =
           match String.index_opt line '#' with
           | Some i -> String.sub line 0 i
           | None -> line
         in
         let line = String.trim line in
         if String.length line = 0 then None
         else
           match String.index_opt line ' ' with
           | None -> None
           | Some i ->
               let rule = String.sub line 0 i in
               let path =
                 String.trim (String.sub line i (String.length line - i))
               in
               if String.length path = 0 then None else Some (rule, path))

let suffix_matches ~suffix path =
  let ls = String.length suffix and lp = String.length path in
  ls <= lp && String.sub path (lp - ls) ls = suffix

(* Duplicate and conflicting entries are configuration errors: an exact
   duplicate is dead weight, and an entry whose path ends with another
   entry's path (same rule) can never match anything the shorter one
   does not already cover — both rot silently unless rejected. *)
let allowlist_errors entries =
  let errors = ref [] in
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (rule, path) ->
      (if Hashtbl.mem seen (rule, path) then
         errors :=
           Printf.sprintf "duplicate allowlist entry: %s %s" rule path
           :: !errors
       else
         List.iter
           (fun ((r2, p2) as k2) ->
             if
               Hashtbl.mem seen k2 && String.equal rule r2
               && not (String.equal path p2)
             then
               if suffix_matches ~suffix:p2 path then
                 errors :=
                   Printf.sprintf
                     "conflicting allowlist entries: '%s %s' is shadowed by \
                      broader '%s %s'"
                     rule path r2 p2
                   :: !errors
               else if suffix_matches ~suffix:path p2 then
                 errors :=
                   Printf.sprintf
                     "conflicting allowlist entries: '%s %s' is shadowed by \
                      broader '%s %s'"
                     r2 p2 rule path
                   :: !errors)
           entries);
      Hashtbl.replace seen (rule, path) ())
    entries;
  List.rev !errors

let parse_allowlist_checked content =
  let entries = parse_allowlist content in
  match allowlist_errors entries with
  | [] -> Ok entries
  | errors -> Error errors

let allowed_entry allowlist v =
  List.find_opt
    (fun (rule, path) ->
      String.equal rule v.rule && suffix_matches ~suffix:path v.file)
    allowlist

let allowed allowlist v = Option.is_some (allowed_entry allowlist v)

(* Entries that matched no violation in a run are stale: the code they
   excused has been fixed or moved, and leaving them around silently
   re-excuses future regressions. *)
let unused_entries allowlist ~used =
  List.filter
    (fun (rule, path) ->
      not
        (List.exists
           (fun (r, p) -> String.equal r rule && String.equal p path)
           used))
    allowlist

(* --- expression rules --- *)

let flatten_lid lid =
  let rec go acc = function
    | Longident.Lident s -> s :: acc
    | Longident.Ldot (l, s) -> go (s :: acc) l
    | Longident.Lapply (l, _) -> go acc l
  in
  go [] lid

let normalize = function
  | ("Stdlib" | "Pervasives") :: rest -> rest
  | p -> p

let is_list_assoc_family = function
  | "mem" | "assoc" | "assoc_opt" | "mem_assoc" | "remove_assoc" -> true
  | _ -> false

let is_hashtbl_hash = function
  | "hash" | "seeded_hash" | "hash_param" | "seeded_hash_param" -> true
  | _ -> false

(* Names whose unqualified use is fine when the file defines them itself
   (a module referring to its own [compare]/[equal] is exactly what the
   rule asks for). *)
let self_definable = [ "compare"; "equal" ]

let collect_toplevel_defs structure =
  let defined = Hashtbl.create 8 in
  let open Ast_iterator in
  let value_binding iter (vb : Parsetree.value_binding) =
    (match vb.pvb_pat.ppat_desc with
    | Ppat_var { txt; _ } when List.mem txt self_definable ->
        Hashtbl.replace defined txt ()
    | _ -> ());
    default_iterator.value_binding iter vb
  in
  let iter = { default_iterator with value_binding } in
  iter.structure iter structure;
  defined

let lint_structure ~file ~determinism_exempt ~hot_path structure =
  let violations = ref [] in
  let in_oracle = ref false in
  let defined = collect_toplevel_defs structure in
  let add ~loc rule message =
    let pos = loc.Location.loc_start in
    violations :=
      {
        file;
        line = pos.Lexing.pos_lnum;
        col = pos.Lexing.pos_cnum - pos.Lexing.pos_bol;
        rule;
        message;
      }
      :: !violations
  in
  let check_ident ~loc raw =
    let unqualified = match raw with [ _ ] -> true | _ -> false in
    match normalize raw with
    | [ "compare" ]
      when not (unqualified && Hashtbl.mem defined "compare") ->
        add ~loc "poly-compare"
          "polymorphic compare; use the value's own module compare \
           (Node_id.compare, Float.compare, Int.compare, ...)"
    | [ ("=" | "<>") ] ->
        add ~loc "poly-eq-fn"
          "polymorphic (=)/(<>) passed as a function; pass the protocol \
           type's own equal"
    | [ "List"; f ] when is_list_assoc_family f ->
        add ~loc "poly-eq-fn"
          (Printf.sprintf
             "List.%s uses polymorphic equality; use List.exists/List.find_opt \
              with an explicit equal"
             f)
    | [ "List"; (("sort" | "map") as f) ] when hot_path && not !in_oracle ->
        add ~loc "hot-path-alloc"
          (Printf.sprintf
             "List.%s allocates on a hot-path file; use the packed \
              table/scratch primitives (Oracle submodules are exempt)"
             f)
    | [ "Hashtbl"; f ] when is_hashtbl_hash f ->
        add ~loc "poly-eq-fn"
          (Printf.sprintf
             "Hashtbl.%s is the polymorphic hash; use a keyed functor table \
              (e.g. Node_id.Tbl) with the type's own hash"
             f)
    | "Random" :: _ when not determinism_exempt ->
        add ~loc "ambient-rng"
          "ambient Stdlib.Random breaks deterministic replay; draw from \
           Simnet.Rng"
    | [ "Unix"; ("gettimeofday" | "time") ] | [ "Sys"; "time" ] ->
        if not determinism_exempt then
          add ~loc "ambient-time"
            "wall-clock time breaks deterministic replay; use the simulated \
             clock (Network.clock / Fiber.now)"
    | _ -> ()
  in
  let is_nil (e : Parsetree.expression) =
    match e.pexp_desc with
    | Pexp_construct ({ txt = Longident.Lident "[]"; _ }, None) -> true
    | _ -> false
  in
  let open Ast_iterator in
  let expr iter (e : Parsetree.expression) =
    match e.pexp_desc with
    | Pexp_apply (({ pexp_desc = Pexp_ident { txt; loc = _ }; _ } as fn), args)
      -> (
        let raw = flatten_lid txt in
        (match normalize raw with
        | [ ("=" | "<>") ] ->
            if List.exists (fun (_, a) -> is_nil a) args then
              add ~loc:e.pexp_loc "eq-empty-list"
                "structural comparison with []; pattern match on the list \
                 instead"
            else if List.length args < 2 then
              (* partial application, e.g. [List.filter (( = ) x)] *)
              add ~loc:fn.Parsetree.pexp_loc "poly-eq-fn"
                "polymorphic (=)/(<>) passed as a function; pass the protocol \
                 type's own equal"
            (* a saturated (=) on non-list operands is left to the type
               checker; only the function-value and []-literal forms are
               syntactically detectable *)
        | _ -> check_ident ~loc:fn.Parsetree.pexp_loc raw);
        List.iter (fun (_, a) -> iter.expr iter a) args)
    | Pexp_ident { txt; _ } ->
        check_ident ~loc:e.pexp_loc (flatten_lid txt)
    | _ -> default_iterator.expr iter e
  in
  (* Oracle submodules keep the list-based reference implementations for
     differential tests; only the allocation rule is suspended inside them
     — every other rule still applies. *)
  let module_binding iter (mb : Parsetree.module_binding) =
    match mb.pmb_name.txt with
    | Some "Oracle" when hot_path ->
        let saved = !in_oracle in
        in_oracle := true;
        default_iterator.module_binding iter mb;
        in_oracle := saved
    | _ -> default_iterator.module_binding iter mb
  in
  let iter = { default_iterator with expr; module_binding } in
  iter.structure iter structure;
  List.rev !violations

let lint_string ~file ?(determinism_exempt = false) ?(hot_path = false) content =
  let lexbuf = Lexing.from_string content in
  Lexing.set_filename lexbuf file;
  match Parse.implementation lexbuf with
  | structure -> lint_structure ~file ~determinism_exempt ~hot_path structure
  | exception exn ->
      let line =
        match exn with
        | Syntaxerr.Error e ->
            (Syntaxerr.location_of_error e).Location.loc_start.Lexing.pos_lnum
        | _ -> 1
      in
      [
        {
          file;
          line;
          col = 0;
          rule = "parse-error";
          message = Printexc.to_string exn;
        };
      ]

(* --- interface coverage --- *)

let missing_mlis ~mls ~mlis =
  let mli_set = Hashtbl.create 64 in
  List.iter (fun p -> Hashtbl.replace mli_set p ()) mlis;
  List.filter_map
    (fun ml ->
      let wanted = Filename.remove_extension ml ^ ".mli" in
      if Hashtbl.mem mli_set wanted then None
      else
        Some
          {
            file = ml;
            line = 1;
            col = 0;
            rule = "missing-mli";
            message =
              "library module without an interface; add a .mli so abstract \
               protocol types stay abstract";
          })
    mls

let compare_violations a b =
  match String.compare a.file b.file with
  | 0 -> (
      match Int.compare a.line b.line with
      | 0 -> (
          match Int.compare a.col b.col with
          | 0 -> String.compare a.rule b.rule
          | c -> c)
      | c -> c)
  | c -> c
