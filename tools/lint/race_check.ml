(* Static race guard for Domain-parallel code (DESIGN.md section 7.3).

   Within every binding the call graph proves reachable from a
   [Domain.spawn] site, flag touches of shared mutable state that are
   not mediated by [Atomic]/[Mutex]:

   - mutable record field writes ([Texp_setfield]) and reads
     ([Texp_field] of a mutable label);
   - ref operations: [:=], [!], [incr], [decr] and [ref] cells shared
     through captures;
   - array stores ([Array.set]/[unsafe_set]/[fill]/[blit]) — except
     the chunk-local pattern the deterministic parallel map is built
     on: a store [a.(i) <- v] whose index is the binder of an
     enclosing [for] loop writes a distinct slot per iteration, which
     is exactly how [Simnet.Parallel.map] partitions its result array
     between domains, so it is accepted.

   [Atomic.*]/[Mutex.*]/[Condition.*]/[Semaphore.*] calls are never
   flagged (they are the fix, not the hazard).  [[@race_ok]] on an
   expression or let-binding accepts a subtree after manual review;
   the typed allowlist accepts (rule, path-suffix) pairs.

   This is the static guard the ROADMAP's sharded serving runtime
   needs before it exists: today the only spawn site is
   [Simnet.Parallel], and the check certifies its chunked map stays
   write-disjoint as it evolves. *)

open Typedtree

let rule = "typed-race"
let attr = "race_ok"

let array_store = function
  | "Array", ("set" | "unsafe_set" | "fill" | "blit") -> true
  | _ -> false

let ref_write = function
  | "Stdlib", (":=" | "incr" | "decr") -> true
  | _ -> false

let ref_read = function "Stdlib", "!" -> true | _ -> false

(* indexes bound by enclosing for loops; Ident stamps make membership
   exact without scope tracking *)
let collect_for_indexes body =
  let ids = ref [] in
  let expr sub e =
    (match e.exp_desc with
    | Texp_for (id, _, _, _, _, _) -> ids := id :: !ids
    | _ -> ());
    Tast_iterator.default_iterator.expr sub e
  in
  let it = { Tast_iterator.default_iterator with expr } in
  it.expr it body;
  !ids

let check_def ~file (def : Callgraph.def) =
  let violations = ref [] in
  let add ~loc message =
    violations := Cmt_load.violation ~file ~loc rule message :: !violations
  in
  let suppressed attrs = Cmt_load.has_attr attr attrs in
  let for_indexes = collect_for_indexes def.Callgraph.body in
  let chunk_local_index (arg : expression) =
    match arg.exp_desc with
    | Texp_ident (Path.Pident id, _, _) ->
        List.exists (Ident.same id) for_indexes
    | _ -> false
  in
  let in_spawn ctx = Printf.sprintf "%s (Domain.spawn-reachable)" ctx in
  let rec walk e =
    if suppressed e.exp_attributes then ()
    else
      match e.exp_desc with
      | Texp_let (_, vbs, body) ->
          List.iter
            (fun vb -> if not (suppressed vb.vb_attributes) then walk vb.vb_expr)
            vbs;
          walk body
      | Texp_setfield (obj, _, label, v) ->
          add ~loc:e.exp_loc
            (in_spawn
               (Printf.sprintf
                  "unsynchronized write to mutable field %s; use Atomic, a \
                   Mutex, or keep the record domain-local"
                  label.Types.lbl_name));
          walk obj;
          walk v
      | Texp_field (obj, _, label) when label.Types.lbl_mut = Asttypes.Mutable
        ->
          add ~loc:e.exp_loc
            (in_spawn
               (Printf.sprintf
                  "unsynchronized read of mutable field %s; use Atomic or a \
                   Mutex"
                  label.Types.lbl_name));
          walk obj
      | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, args) ->
          let key = Cmt_load.path_key ~current:def.Callgraph.modname p in
          (if array_store key then
             match key, args with
             | ("Array", ("set" | "unsafe_set")), _ :: (_, Some idx) :: _
               when chunk_local_index idx ->
                 () (* distinct slot per iteration: the chunked-map pattern *)
             | _ ->
                 add ~loc:e.exp_loc
                   (in_spawn
                      "array store not proven chunk-local (index is not an \
                       enclosing for-loop binder); partition writes or \
                       annotate [@race_ok]")
           else if ref_write key then
             add ~loc:e.exp_loc
               (in_spawn
                  "unsynchronized ref write; use Atomic.set/incr or a Mutex")
           else if ref_read key then
             add ~loc:e.exp_loc
               (in_spawn "unsynchronized ref read; use Atomic.get"));
          List.iter (function _, Some a -> walk a | _, None -> ()) args
      | _ ->
          let it =
            { Tast_iterator.default_iterator with expr = (fun _ e -> walk e) }
          in
          Tast_iterator.default_iterator.expr it e
  in
  walk def.Callgraph.body;
  List.rev !violations

let check (graph : Callgraph.t) =
  Callgraph.spawn_reachable graph
  |> List.concat_map (fun key ->
         match Callgraph.find graph key with
         | None -> []
         | Some def -> check_def ~file:def.Callgraph.source def)
