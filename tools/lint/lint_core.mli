(** Rule engine for the repo lint pass (see DESIGN.md "Correctness
    tooling").  Parses OCaml sources with compiler-libs and flags
    constructs that can silently break the mesh invariants:

    - [poly-compare]: unqualified or [Stdlib]-qualified polymorphic
      [compare];
    - [poly-eq-fn]: [List.mem]/[List.assoc] family, [Hashtbl.hash], and
      bare [(=)]/[(<>)] used as function values;
    - [eq-empty-list]: [e = []] / [e <> []] structural comparisons;
    - [ambient-rng] / [ambient-time]: [Stdlib.Random], [Unix.gettimeofday],
      [Unix.time], [Sys.time] outside the sanctioned RNG module
      (deterministic replay, Section 4.4 / Theorem 6);
    - [hot-path-alloc]: [List.sort]/[List.map] on designated hot-path
      files (routing, location and insertion inner loops); [Oracle]
      submodules — the list-based differential-test references — are
      exempt;
    - [missing-mli]: a library module without an interface;
    - [parse-error]: the file does not parse.

    The typed tier (cmt-based; [Alloc_check], [Race_check],
    [Typed_poly]) reuses {!violation}, the allowlist format and the
    rule-id namespace ([typed-alloc], [typed-race], [typed-poly-eq]).

    The expression rules are syntactic approximations; intentional
    exceptions go in the allowlist file. *)

type violation = {
  file : string;
  line : int;
  col : int;
  rule : string;
  message : string;
}

val rule_ids : string list

val to_string : violation -> string
(** ["file:line: rule-id message"], the format the CLI prints. *)

type allowlist = (string * string) list
(** (rule-id, path-suffix) pairs, in file order. *)

val parse_allowlist : string -> allowlist
(** One entry per line: ["<rule-id> <path-suffix>"]; ['#'] comments. *)

val parse_allowlist_checked : string -> (allowlist, string list) result
(** Like {!parse_allowlist}, but rejects duplicate entries and
    conflicting ones (an entry shadowed by a broader suffix under the
    same rule).  The error strings are human-readable diagnostics. *)

val allowed : allowlist -> violation -> bool

val allowed_entry : allowlist -> violation -> (string * string) option
(** The entry that excuses [v], if any — callers use it to track which
    entries were actually exercised in a run. *)

val unused_entries : allowlist -> used:(string * string) list -> allowlist
(** Entries that excused nothing: stale, and reported as failures so
    they cannot rot silently. *)

val lint_string :
  file:string ->
  ?determinism_exempt:bool ->
  ?hot_path:bool ->
  string ->
  violation list
(** Parse [content] as an implementation and run the expression rules.
    [determinism_exempt] disables [ambient-rng]/[ambient-time] (used for
    the sanctioned RNG module); [hot_path] enables [hot-path-alloc]
    (used for the routing/location/insertion inner-loop files). *)

val missing_mlis : mls:string list -> mlis:string list -> violation list
(** [missing-mli] violations for every path in [mls] without a matching
    [.mli] in [mlis]. *)

val compare_violations : violation -> violation -> int
(** Order by file, line, column, rule (for stable output). *)
