(* Typed polymorphic-comparison check (DESIGN.md section 7.3).

   The syntactic tier flags [(=)] passed as a function value and bare
   [compare], but explicitly punts on saturated applications — [a = b]
   is indistinguishable from an innocent int comparison without types
   (lint_core.ml, "a saturated (=) on non-list operands is left to the
   type checker").  This pass closes that hole: with the typedtree in
   hand, flag saturated [(=)] / [(<>)] / [compare] whose operand type
   is not structurally safe.  Physical equality ([==] / [!=]) is left
   alone: at mutable record types it *is* the identity test the code
   means (the baselines compare node records by identity on purpose),
   and flagging it would only breed [Obj.repr] workarounds.

   Structurally safe: the built-in immediates and strings/bytes
   (int, char, bool, unit, string, bytes, float, int32, int64,
   nativeint), plus lists/options/arrays/tuples of safe types.
   Everything else — abstract protocol types like [Node_id.t], records
   with handle fields, type variables (a comparison kept polymorphic by
   inference), arrows — either ignores the module's own ordering, can
   observe representation details (salted-GUID caches, packed-slot
   scratch state), or raises at runtime.  Aliases of safe types that
   the cmt leaves unexpanded are flagged conservatively: spell the
   comparison with the owning module's [equal]/[compare], which is the
   repo convention anyway.

   Escapes: [[@poly_ok]] on the application, or a (typed-poly-eq,
   path-suffix) allowlist entry. *)

open Typedtree

let rule = "typed-poly-eq"
let attr = "poly_ok"

let poly_eq_name = function
  | "Stdlib", ("=" | "<>" | "compare") -> true
  | _ -> false

let rec safe ty =
  match Types.get_desc ty with
  | Types.Tconstr (p, args, _) ->
      let same q = Path.same p q in
      if
        same Predef.path_int || same Predef.path_char || same Predef.path_bool
        || same Predef.path_unit || same Predef.path_string
        || same Predef.path_bytes || same Predef.path_float
        || same Predef.path_int32 || same Predef.path_int64
        || same Predef.path_nativeint
      then true
      else if
        same Predef.path_list || same Predef.path_option
        || same Predef.path_array
      then List.for_all safe args
      else false
  | Types.Ttuple ts -> List.for_all safe ts
  | Types.Tpoly (t, _) -> safe t
  | _ -> false

let describe ty =
  Format.asprintf "%a" Printtyp.type_expr ty

let check ~file structure =
  let violations = ref [] in
  let add ~loc message =
    violations := Cmt_load.violation ~file ~loc rule message :: !violations
  in
  let expr sub e =
    (match e.exp_desc with
    | Texp_apply
        ( { exp_desc = Texp_ident (p, _, _); _ },
          [ (_, Some a); (_, Some _) ] )
      when poly_eq_name (Cmt_load.path_key ~current:"" p)
           && (not (Cmt_load.has_attr attr e.exp_attributes))
           && not (safe a.exp_type) ->
        let _, name = Cmt_load.path_key ~current:"" p in
        add ~loc:e.exp_loc
          (Printf.sprintf
             "polymorphic %s at type %s; use the owning module's \
              equal/compare (it is abstract for a reason)"
             (if String.equal name "compare" then "compare" else "( " ^ name ^ " )")
             (describe a.exp_type))
    | _ -> ());
    Tast_iterator.default_iterator.expr sub e
  in
  let it = { Tast_iterator.default_iterator with expr } in
  it.structure it structure;
  List.rev !violations
