(* Seeded lint fixture: every expression rule must fire on this file.
   The dune rule in ../dune runs the linter over it and requires a
   non-zero exit.  Never "fix" this file. *)

let xs = [ 1; 2; 3 ]

let _mem = List.mem 2 xs (* poly-eq-fn *)

let _assoc = List.assoc 1 [ (1, "a") ] (* poly-eq-fn *)

let _eq_fn = List.filter (( = ) 1) xs (* poly-eq-fn *)

let _cmp = List.sort compare xs (* poly-compare *)

let _cmp_qualified = Stdlib.compare 1 2 (* poly-compare *)

let _hash = Hashtbl.hash xs (* poly-eq-fn *)

let _empty = xs = [] (* eq-empty-list *)

let _nonempty = xs <> [] (* eq-empty-list *)

let _roll = Random.int 6 (* ambient-rng *)

let _cpu = Sys.time () (* ambient-time *)

let _wall = Unix.gettimeofday () (* ambient-time *)
