(* CLI for the typed lint tier: [lint_typed [--allowlist FILE] CMT-ROOT...].

   Walks the given directories (normally the built [lib] tree inside
   [_build/default], which is where the [@lint-typed] dune rule runs)
   for [.cmt] files and runs the three typed passes:

   - [typed-alloc] (alloc_check.ml) on the designated hot-path modules;
   - [typed-poly-eq] (typed_poly.ml) on every module;
   - [typed-race] (race_check.ml) on everything reachable from a
     [Domain.spawn] site, via the defs/uses call graph.

   Violations print as "file:line: rule-id message".  Exit status: 0
   clean, 1 violations or stale allowlist entries, 2 configuration
   errors (bad allowlist, no cmt input — the latter usually means the
   tree was not built). *)

let usage = "lint_typed [--allowlist FILE] CMT-ROOT..."

(* The per-message inner loops plus the non-Oracle parts of the
   insertion pipeline (DESIGN.md "hot paths"); [Oracle] submodules are
   exempted inside Alloc_check itself.  The serve tier's drain/dispatch
   path (mailbox rings + actor loop) is hot too: it executes once per
   delivered message, millions of times per campaign. *)
let hot_path_sources =
  [
    "lib/tapestry/route.ml";
    "lib/tapestry/locate.ml";
    "lib/tapestry/nearest_neighbor.ml";
    "lib/tapestry/multicast.ml";
    "lib/tapestry/insert.ml";
    "lib/tapestry/scratch.ml";
    "lib/serve/mailbox.ml";
    "lib/serve/actor.ml";
    "lib/tapestry/obj_cache.ml";
  ]

let is_hot source =
  List.exists (fun s -> Filename.check_suffix source s) hot_path_sources

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let () =
  let allowlist = ref [] in
  let roots = ref [] in
  let args =
    [
      ( "--allowlist",
        Arg.String
          (fun f ->
            match Lint_core.parse_allowlist_checked (read_file f) with
            | Ok entries -> allowlist := !allowlist @ entries
            | Error errors ->
                List.iter (fun e -> Printf.eprintf "%s: %s\n" f e) errors;
                exit 2),
        "FILE intentional-exception list (rule-id path-suffix per line)" );
    ]
  in
  Arg.parse args (fun p -> roots := p :: !roots) usage;
  if !roots = [] then begin
    prerr_endline usage;
    exit 2
  end;
  let units = Cmt_load.find_units (List.rev !roots) in
  if units = [] then begin
    Printf.eprintf
      "lint_typed: no .cmt files under %s — run a dune build first\n"
      (String.concat " " (List.rev !roots));
    exit 2
  end;
  let alloc =
    List.concat_map
      (fun (u : Cmt_load.unit_info) ->
        if is_hot u.source then Alloc_check.check ~file:u.source u.structure
        else [])
      units
  in
  let poly =
    List.concat_map
      (fun (u : Cmt_load.unit_info) ->
        Typed_poly.check ~file:u.source u.structure)
      units
  in
  let race = Race_check.check (Callgraph.build units) in
  let violations = alloc @ poly @ race in
  let used = ref [] in
  let reported =
    violations
    |> List.filter (fun v ->
           match Lint_core.allowed_entry !allowlist v with
           | Some entry ->
               if not (List.mem entry !used) then used := entry :: !used;
               false
           | None -> true)
    |> List.sort Lint_core.compare_violations
  in
  List.iter (fun v -> print_endline (Lint_core.to_string v)) reported;
  let stale = Lint_core.unused_entries !allowlist ~used:!used in
  List.iter
    (fun (rule, path) ->
      Printf.printf
        "allowlist: stale entry '%s %s' matched nothing — remove it\n" rule
        path)
    stale;
  match (reported, stale) with
  | [], [] ->
      Printf.printf "lint_typed: %d modules clean (%d hot-path)\n"
        (List.length units)
        (List.length (List.filter (fun u -> is_hot u.Cmt_load.source) units));
      exit 0
  | vs, stale ->
      Printf.printf "lint_typed: %d violation%s, %d stale allowlist entr%s in \
                     %d modules\n"
        (List.length vs)
        (if List.length vs = 1 then "" else "s")
        (List.length stale)
        (if List.length stale = 1 then "y" else "ies")
        (List.length units);
      exit 1
