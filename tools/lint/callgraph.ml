(* Defs/uses call graph over the typedtree, for the race checker
   (DESIGN.md section 7.3).

   Nodes are toplevel value bindings, keyed (module, name) with the
   short module name ([Cmt_load.path_key]); bindings inside named
   submodules are keyed by the submodule's name.  Edges are the
   resolved value references ([Texp_ident]) in a binding's body —
   local [let]s are part of the body walk, so a local helper's callees
   are attributed to the enclosing toplevel binding.

   The one consumer query is {!spawn_reachable}: the transitive callee
   closure of every binding whose body contains a [Domain.spawn]
   application.  That overapproximates "code that may run on a spawned
   domain" in two directions we accept: the spawning binding's
   main-domain code is included (it shares state with the spawned thunk
   by construction, so scanning it is wanted anyway), and a closure
   passed *into* a spawning function from outside is missed — the
   boundary is the function parameter, which resolves to no def.  The
   race rules therefore also rely on the repo convention that all
   domain fan-out goes through [Simnet.Parallel]. *)

open Typedtree

type def = {
  source : string;
  modname : string;
  name : string;
  loc : Location.t;
  body : expression;
  uses : (string * string) list;
  spawns : bool;
}

type t = { defs : (string * string, def) Hashtbl.t }

let compare_key (m1, n1) (m2, n2) =
  match String.compare m1 m2 with 0 -> String.compare n1 n2 | c -> c

let is_spawn = function
  | ("Domain" | "Domain_"), "spawn" -> true
  | _ -> false

let collect_body_info ~current body =
  let uses = ref [] in
  let spawns = ref false in
  let expr sub e =
    (match e.exp_desc with
    | Texp_ident (p, _, _) ->
        let key = Cmt_load.path_key ~current p in
        if is_spawn key then spawns := true;
        uses := key :: !uses
    | _ -> ());
    Tast_iterator.default_iterator.expr sub e
  in
  let it = { Tast_iterator.default_iterator with expr } in
  it.expr it body;
  (List.sort_uniq compare_key (List.rev !uses), !spawns)

let build (units : Cmt_load.unit_info list) =
  let defs = Hashtbl.create 256 in
  let register ~source ~modname (vb : value_binding) =
    match vb.vb_pat.pat_desc with
    | Tpat_var (id, _) ->
        let name = Ident.name id in
        let uses, spawns = collect_body_info ~current:modname vb.vb_expr in
        Hashtbl.replace defs (modname, name)
          {
            source;
            modname;
            name;
            loc = vb.vb_loc;
            body = vb.vb_expr;
            uses;
            spawns;
          }
    | _ -> ()
  in
  let rec structure_item ~source ~modname (item : structure_item) =
    match item.str_desc with
    | Tstr_value (_, vbs) -> List.iter (register ~source ~modname) vbs
    | Tstr_module mb -> module_binding ~source ~modname mb
    | Tstr_recmodule mbs -> List.iter (module_binding ~source ~modname) mbs
    | _ -> ()
  and module_binding ~source ~modname (mb : module_binding) =
    let modname =
      match mb.mb_name.txt with Some n -> n | None -> modname
    in
    module_expr ~source ~modname mb.mb_expr
  and module_expr ~source ~modname me =
    match me.mod_desc with
    | Tmod_structure str ->
        List.iter (structure_item ~source ~modname) str.str_items
    | Tmod_constraint (me, _, _, _) -> module_expr ~source ~modname me
    | Tmod_functor (_, me) -> module_expr ~source ~modname me
    | _ -> ()
  in
  List.iter
    (fun (u : Cmt_load.unit_info) ->
      List.iter
        (structure_item ~source:u.source ~modname:u.modname)
        u.structure.str_items)
    units;
  { defs }

let spawn_reachable t =
  let reached = Hashtbl.create 64 in
  let rec visit key =
    if not (Hashtbl.mem reached key) then
      match Hashtbl.find_opt t.defs key with
      | None -> ()
      | Some def ->
          Hashtbl.replace reached key ();
          List.iter visit def.uses
  in
  Hashtbl.iter (fun key def -> if def.spawns then visit key) t.defs;
  Hashtbl.fold (fun key () acc -> key :: acc) reached []
  |> List.sort compare_key

let find t key = Hashtbl.find_opt t.defs key
