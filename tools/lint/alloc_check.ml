(* Typed allocation audit for the designated hot-path modules
   (DESIGN.md section 7.3).  The syntactic tier can only ban names it
   recognizes (List.sort/List.map); this pass reads the typedtree and
   flags the allocating *constructs* themselves:

   - closures built per call (Texp_function outside a binding's static
     currying chain, including named local functions);
   - tuple, record, array and non-constant constructor allocations
     (polymorphic variants with payloads included);
   - partial applications — an application with an omitted argument or
     an arrow result allocates the closure for the remaining arguments,
     which is also how [f @@ x] chains that under-apply show up;
   - [ref] cells;
   - floats passed where the callee's *declared* parameter is a type
     variable: the value is boxed at that call (declared schemes come
     from the value description carried by [Texp_ident], so this works
     on cmt input too).  The compiler-specialized primitives are
     exempt: structural comparisons ([=] [<] [>=] ... [compare]) and
     float-array access compile to unboxed code when the operand type
     is known at the call, so only genuinely polymorphic callees
     ([min], [Option.value], a [('a -> ...)] parameter) box.

   What is deliberately *not* flagged:

   - module-initialization code: the right-hand side of a toplevel
     binding runs once, so its tables/records/closures are free; only
     code inside a function body is per-call.  The optional-argument
     elaboration lets the typechecker inserts ([@#default]) are peeled
     as part of the binding's currying chain.
   - [Some _]: option returns are the repo's pervasive absence idiom
     and boxing them is unavoidable in idiomatic OCaml; the walk-level
     APIs return options by contract.
   - exception constructor payloads: raise paths are cold.
   - string/float literals: static data.

   Escapes: [[@alloc_ok]] on an expression or a let-binding accepts the
   whole subtree (use it for per-operation setup that is provably not
   per-hop), and the typed allowlist accepts (rule, path-suffix) pairs
   like the syntactic one.  [module Oracle = struct ... end] submodules
   are exempt wholesale, as in the syntactic tier. *)

open Typedtree

let rule = "typed-alloc"
let attr = "alloc_ok"

let is_res_path p (cd : Types.constructor_description) =
  match Types.get_desc cd.cstr_res with
  | Types.Tconstr (q, _, _) -> Path.same p q
  | _ -> false

let rec is_arrow ty =
  match Types.get_desc ty with
  | Types.Tarrow _ -> true
  | Types.Tpoly (t, _) -> is_arrow t
  | _ -> false

let is_float ty =
  match Types.get_desc ty with
  | Types.Tconstr (p, _, _) -> Path.same p Predef.path_float
  | _ -> false

(* Callees the native compiler monomorphizes at the call site when the
   operand type is statically float: no boxing happens even though the
   declared scheme is ['a -> ...]. *)
let specialized_primitive = function
  | "Stdlib", ("=" | "<>" | "==" | "!=" | "<" | ">" | "<=" | ">=" | "compare")
    ->
      true
  | "Array", ("get" | "set" | "unsafe_get" | "unsafe_set") -> true
  | _ -> false

let check ~file structure =
  let violations = ref [] in
  let add ~loc message =
    violations := Cmt_load.violation ~file ~loc rule message :: !violations
  in
  let suppressed attrs = Cmt_load.has_attr attr attrs in
  (* [dyn] walks code that runs per call and flags allocations; [peel]
     descends a binding's currying chain (static closure, allocated at
     module init) into the per-call body; [static] walks
     module-initialization values, flagging nothing but diverting any
     function body it meets back through [peel]. *)
  let rec dyn e =
    if suppressed e.exp_attributes then ()
    else
      match e.exp_desc with
      | Texp_function _ ->
          add ~loc:e.exp_loc
            "closure allocated per call; lift it to a top-level function \
             or annotate [@alloc_ok]";
          peel e
      | Texp_let (_, vbs, body) ->
          List.iter
            (fun vb -> if not (suppressed vb.vb_attributes) then dyn vb.vb_expr)
            vbs;
          dyn body
      | Texp_tuple _ ->
          add ~loc:e.exp_loc "tuple allocation on a hot path";
          dyn_children e
      | Texp_record _ ->
          add ~loc:e.exp_loc "record allocation on a hot path";
          dyn_children e
      | Texp_array (_ :: _) ->
          add ~loc:e.exp_loc "array allocation on a hot path";
          dyn_children e
      | Texp_variant (_, Some _) ->
          add ~loc:e.exp_loc
            "polymorphic variant with payload allocates on a hot path";
          dyn_children e
      | Texp_construct (_, cd, _ :: _)
        when not (is_res_path Predef.path_option cd)
             && not (is_res_path Predef.path_exn cd) ->
          add ~loc:e.exp_loc
            (if is_res_path Predef.path_list cd then
               "list cons allocation on a hot path"
             else
               Printf.sprintf "constructor %s allocates on a hot path"
                 cd.cstr_name);
          dyn_children e
      | Texp_lazy _ ->
          add ~loc:e.exp_loc "lazy block allocation on a hot path";
          dyn_children e
      | Texp_apply (fn, args) ->
          let omitted_required =
            List.exists
              (function
                | (Asttypes.Nolabel | Asttypes.Labelled _), None -> true
                | _ -> false)
              args
          in
          if omitted_required || is_arrow e.exp_type then
            add ~loc:e.exp_loc
              "partial application allocates a closure for the remaining \
               arguments";
          (match fn.exp_desc with
          | Texp_ident (p, _, vd) ->
              let key = Cmt_load.path_key ~current:"" p in
              (match key with
              | "Stdlib", "ref" ->
                  add ~loc:e.exp_loc "ref cell allocation on a hot path"
              | _ -> ());
              if not (specialized_primitive key) then
                boxed_float_args ~loc:e.exp_loc vd.Types.val_type args
          | _ -> dyn fn);
          List.iter (function _, Some a -> dyn a | _, None -> ()) args
      | _ -> dyn_children e
  and dyn_children e =
    let it = { Tast_iterator.default_iterator with expr = (fun _ e -> dyn e) } in
    Tast_iterator.default_iterator.expr it e
  and boxed_float_args ~loc scheme args =
    (* pair declared formals with supplied args in order; a float meeting
       a Tvar formal gets boxed at the call *)
    let rec go ty args =
      match (Types.get_desc ty, args) with
      | _, [] -> ()
      | Types.Tarrow (_, formal, rest, _), (_, arg) :: args ->
          (match arg with
          | Some a
            when is_float a.exp_type
                 && (match Types.get_desc formal with
                    | Types.Tvar _ -> true
                    | _ -> false) ->
              add ~loc
                "float boxed at a polymorphic argument position; use a \
                 monomorphic helper"
          | _ -> ());
          go rest args
      | Types.Tpoly (t, _), args -> go t args
      | _ -> ()
    in
    go scheme args
  and peel e =
    match e.exp_desc with
    | Texp_function { cases; _ } ->
        List.iter
          (fun c ->
            Option.iter dyn c.c_guard;
            peel c.c_rhs)
          cases
    | Texp_let (_, vbs, body) when Cmt_load.has_attr "#default" e.exp_attributes
      ->
        (* optional-argument elaboration: walk the default expressions
           (a non-constant default does allocate per call), keep peeling *)
        List.iter (fun vb -> dyn vb.vb_expr) vbs;
        peel body
    | _ -> dyn e
  in
  let static e =
    (* module-init data allocates once: flag nothing, but any function
       body nested inside it still runs per call *)
    let it =
      {
        Tast_iterator.default_iterator with
        expr =
          (fun sub e ->
            match e.exp_desc with
            | Texp_function _ ->
                if not (suppressed e.exp_attributes) then peel e
            | _ -> Tast_iterator.default_iterator.expr sub e);
      }
    in
    it.expr it e
  in
  let rec structure_item (item : structure_item) =
    match item.str_desc with
    | Tstr_value (_, vbs) ->
        List.iter
          (fun vb ->
            if not (suppressed vb.vb_attributes) then
              match vb.vb_expr.exp_desc with
              | Texp_function _ -> peel vb.vb_expr
              | _ -> static vb.vb_expr)
          vbs
    | Tstr_eval (e, attrs) -> if not (suppressed attrs) then static e
    | Tstr_module mb -> module_binding mb
    | Tstr_recmodule mbs -> List.iter module_binding mbs
    | _ -> ()
  and module_binding (mb : module_binding) =
    match mb.mb_name.txt with
    | Some "Oracle" -> () (* differential references are never hot *)
    | _ -> module_expr mb.mb_expr
  and module_expr me =
    match me.mod_desc with
    | Tmod_structure str -> List.iter structure_item str.str_items
    | Tmod_constraint (me, _, _, _) -> module_expr me
    | Tmod_functor (_, me) -> module_expr me
    | _ -> ()
  in
  List.iter structure_item structure.str_items;
  List.rev !violations
