(* Input layer for the typed lint tier (DESIGN.md section 7.3).

   The syntactic tier parses sources; this tier instead consumes the
   [.cmt] files the dune build already produces (bin-annot is on by
   default), so every check below sees the *typedtree*: resolved paths,
   inferred types, constructor descriptions, mutability of record labels.
   Two entry points:

   - {!find_units} walks a build tree (normally [_build/default/lib] or,
     when invoked from a dune rule, just [lib]) for [*.cmt] files under
     the compiler's [.objs] directories and loads every implementation.
   - {!typecheck_string} typechecks a source string in-process against
     the standard library; the test suite uses it to run the typed rules
     on fixture sources without an on-disk build.

   Units are deduplicated by source file (byte and native object
   directories can both carry a cmt) and returned sorted, so the
   downstream passes report deterministically. *)

type unit_info = {
  source : string;  (* path the compiler recorded, e.g. lib/tapestry/route.ml *)
  modname : string; (* short module name: Tapestry__Route -> Route *)
  structure : Typedtree.structure;
}

(* Dune's wrapped libraries name compilation units [Lib__Module]; the
   lint rules and the call graph key on the short, human-facing name. *)
let short_modname s =
  let rec last_sep i acc =
    if i >= String.length s - 1 then acc
    else if s.[i] = '_' && s.[i + 1] = '_' then last_sep (i + 2) (Some (i + 2))
    else last_sep (i + 1) acc
  in
  match last_sep 0 None with
  | Some j when j < String.length s -> String.sub s j (String.length s - j)
  | _ -> s

let modname_of_source file =
  String.capitalize_ascii
    (Filename.remove_extension (Filename.basename file))

(* --- cmt discovery --- *)

let rec find_cmts path acc =
  match Sys.is_directory path with
  | true ->
      Sys.readdir path |> Array.to_list |> List.sort String.compare
      |> List.fold_left
           (fun acc name ->
             if String.equal name ".git" then acc
             else find_cmts (Filename.concat path name) acc)
           acc
  | false -> if Filename.check_suffix path ".cmt" then path :: acc else acc
  | exception Sys_error _ -> acc

let load path =
  match Cmt_format.read_cmt path with
  | { Cmt_format.cmt_annots = Cmt_format.Implementation structure;
      cmt_modname;
      cmt_sourcefile;
      _;
    } ->
      let source = Option.value cmt_sourcefile ~default:path in
      (* dune-generated alias modules (foo.ml-gen) carry no user code *)
      if Filename.check_suffix source ".ml-gen" then None
      else Some { source; modname = short_modname cmt_modname; structure }
  | _ -> None
  | exception _ -> None

let find_units roots =
  let cmts = List.fold_left (fun acc r -> find_cmts r acc) [] roots in
  let seen = Hashtbl.create 64 in
  List.fold_left
    (fun acc cmt ->
      match load cmt with
      | Some u when not (Hashtbl.mem seen u.source) ->
          Hashtbl.replace seen u.source ();
          u :: acc
      | _ -> acc)
    [] (List.sort String.compare cmts)
  |> List.sort (fun a b -> String.compare a.source b.source)

(* --- in-process typechecking (tests / fixtures) --- *)

let initialized = ref false

let typecheck_string ~file src =
  if not !initialized then begin
    Compmisc.init_path ();
    initialized := true
  end;
  let env = Compmisc.initial_env () in
  let lexbuf = Lexing.from_string src in
  Lexing.set_filename lexbuf file;
  let parsed = Parse.implementation lexbuf in
  let structure, _sig, _names, _shape, _env =
    Typemod.type_structure env parsed
  in
  { source = file; modname = modname_of_source file; structure }

(* --- shared path helpers for the typed rules --- *)

(* Normalize a resolved [Path.t] to a (module, name) key: the *last*
   module component plus the value name, so [Stdlib.Domain.spawn],
   [Domain.spawn] and a re-exported alias all map to ("Domain",
   "spawn"), and a reference to a same-unit toplevel value maps to
   (current module, name).  Collisions between same-named modules of
   different libraries are accepted: the call graph only ever gets more
   conservative from them. *)
let path_key ~current path =
  let rec last_mod = function
    | Path.Pident i -> short_modname (Ident.name i)
    | Path.Pdot (_, s) -> s
    | Path.Papply (p, _) -> last_mod p
    | Path.Pextra_ty (p, _) -> last_mod p
  in
  match path with
  | Path.Pident i -> (current, Ident.name i)
  | Path.Pdot (prefix, name) -> (last_mod prefix, name)
  | Path.Papply _ | Path.Pextra_ty _ -> ("", "")

let has_attr name attrs =
  List.exists
    (fun (a : Parsetree.attribute) -> String.equal a.attr_name.txt name)
    attrs

let violation ~file ~(loc : Location.t) rule message =
  let pos = loc.Location.loc_start in
  {
    Lint_core.file;
    line = pos.Lexing.pos_lnum;
    col = pos.Lexing.pos_cnum - pos.Lexing.pos_bol;
    rule;
    message;
  }
