(* Diff two bench JSON files (schema tapestry-bench/1) op by op.

   Usage: bench_compare [--threshold PCT] [--scale-threshold PCT]
   [--advisory] BASELINE.json CURRENT.json

   Prints a per-op table of ns/op before/after and the ratio, flags ops
   whose ns/op regressed by more than the threshold (default 25%), and
   exits 1 if any op regressed past it — tools/check.sh wires this in
   as a gate.

   Files carrying a "scale" array (written by `tapestry_sim scale`) are
   additionally compared point by point (keyed by n) on the
   deterministic resource metrics — bytes_per_node, insert_fit_c — and
   on peak_rss_kb, under the separate --scale-threshold (default 15%).
   A scale-only regression exits 3, so a caller can tell "the hot path
   got slower" (1) from "the mesh got bigger" (3).  Wall-clock fields
   are reported but never gate: they measure the machine, not the code.

   Files carrying a "serve" array (written by `tapestry_sim serve`) are
   compared point by point, keyed by the workload shape
   (n / zipf_s / objects / churn rates / cache_size), under --serve-threshold
   (default 20%).  Three metrics gate: throughput_rps (LOWER is worse),
   p99_virtual (higher is worse) and delivered_per_request (higher is
   worse — the paper's messages-per-request efficiency measure); the
   remaining quantiles and counters are reported as info.  A serve-only
   regression exits 4, so a caller can tell "the hot path got slower"
   (1) from "the mesh got bigger" (3) from "the serving runtime
   degraded" (4).

   Serve points where BOTH sides ran with a cache (cache_size > 0) are
   additionally gated on cache_hit_rate (LOWER is worse) under
   --cache-threshold (default 20%); a cache-only regression exits 5.
   Files predating the cache fields compare exactly as before.

   Cooperative rows (coop = 1) carry " coop" in the point key, so a
   cached row and a cooperative row of the same shape never alias.
   Points where BOTH sides ran cooperatively are further gated on
   delivered_per_request and cache_hit_rate under the tighter
   --coop-threshold (default 10%): hint exchange exists to buy those
   two metrics, so they get less slack than the generic serve gate.  A
   coop-only regression exits 6.

   [--advisory] keeps all reports but always exits 0: the escape hatch
   for noisy shared machines, where a short run's jitter can cross any
   reasonable threshold.  Exit 2 is reserved for configuration errors
   (unreadable/mis-schema'd files), so a gating caller can tell "slow"
   from "broken". *)

let usage =
  "bench_compare [--threshold PCT] [--scale-threshold PCT] \
   [--serve-threshold PCT] [--cache-threshold PCT] [--coop-threshold PCT] \
   [--advisory] BASELINE.json CURRENT.json"

let fail fmt = Printf.ksprintf (fun s -> prerr_endline s; exit 2) fmt

let read_file path =
  try
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  with Sys_error e -> fail "bench_compare: %s" e

let load path =
  match Simnet.Json.parse (read_file path) with
  | Error e -> fail "bench_compare: %s: %s" path e
  | Ok j -> (
      (match Simnet.Json.member "schema" j with
      | Some (Simnet.Json.String "tapestry-bench/1") -> ()
      | _ -> fail "bench_compare: %s: not a tapestry-bench/1 file" path);
      match Simnet.Json.member "micro" j with
      | Some (Simnet.Json.List entries) ->
          ( List.filter_map
              (fun e ->
                match
                  ( Simnet.Json.member "name" e,
                    Simnet.Json.member "ns_per_op" e )
                with
                | Some (Simnet.Json.String name), Some (Simnet.Json.Float v)
                  ->
                    Some (name, v)
                | Some (Simnet.Json.String name), Some (Simnet.Json.Int v) ->
                    Some (name, float_of_int v)
                | _ -> None)
              entries,
            j )
      | _ -> fail "bench_compare: %s: no micro section" path)

(* The "scale" array is optional (plain bench files don't carry it) and
   schema-tolerant: per point only [n] is required, any numeric field
   present in both files under the same name is comparable. *)
let num = function
  | Simnet.Json.Float v -> Some v
  | Simnet.Json.Int v -> Some (float_of_int v)
  | _ -> None

let scale_points j =
  match Simnet.Json.member "scale" j with
  | Some (Simnet.Json.List pts) ->
      List.filter_map
        (fun p ->
          match Option.bind (Simnet.Json.member "n" p) num with
          | Some n -> Some (int_of_float n, p)
          | None -> None)
        pts
  | _ -> []

(* metrics gated per scale point: deterministic mesh-size measures plus the
   process peak RSS; higher is worse for all of them *)
let scale_gated = [ "bytes_per_node"; "insert_fit_c"; "peak_rss_kb" ]
let scale_reported = scale_gated @ [ "locate_hops"; "stretch_mean"; "build_wall_s" ]

let compare_scale ~threshold base cur =
  let bpts = scale_points base and cpts = scale_points cur in
  if bpts = [] || cpts = [] then 0
  else begin
    let regressed = ref 0 in
    Printf.printf "\n%-10s %-20s %12s %12s %8s\n" "scale n" "metric"
      "baseline" "current" "ratio";
    List.iter
      (fun (n, bp) ->
        match List.assoc_opt n cpts with
        | None -> Printf.printf "%-10d %-20s %12s %12s %8s\n" n "-" "-" "-" "gone"
        | Some cp ->
            List.iter
              (fun field ->
                match
                  ( Option.bind (Simnet.Json.member field bp) num,
                    Option.bind (Simnet.Json.member field cp) num )
                with
                | Some b, Some c when b > 0. ->
                    let ratio = c /. b in
                    let gated = List.mem field scale_gated in
                    let flag =
                      if gated && ratio > 1. +. (threshold /. 100.) then begin
                        incr regressed;
                        "  REGRESSED"
                      end
                      else if not gated then "  (info)"
                      else ""
                    in
                    Printf.printf "%-10d %-20s %12.1f %12.1f %7.2fx%s\n" n
                      field b c ratio flag
                | _ -> ())
              scale_reported)
      bpts;
    !regressed
  end

(* Serve points are keyed by workload shape: same n, Zipf exponent,
   churn rates and cache size must describe the same experiment before
   latency or throughput are comparable.  cache_size defaults to 0 when
   the field is absent, so pre-cache files key exactly as before. *)
let serve_points j =
  match Simnet.Json.member "serve" j with
  | Some (Simnet.Json.List pts) ->
      List.filter_map
        (fun p ->
          let get f = Option.bind (Simnet.Json.member f p) num in
          match get "n" with
          | Some n ->
              let cache = Option.value (get "cache_size") ~default:0. in
              let key =
                Printf.sprintf "n=%d s=%g%s churn=%g/%g%s" (int_of_float n)
                  (Option.value (get "zipf_s") ~default:0.)
                  (* the object-universe size is a workload axis (the
                     cache campaign varies it); omit when absent so
                     pre-campaign files key as before *)
                  (match get "objects" with
                  | Some k -> Printf.sprintf " obj=%d" (int_of_float k)
                  | None -> "")
                  (Option.value (get "kill_rate") ~default:0.)
                  (Option.value (get "join_rate") ~default:0.)
                  (if cache > 0. then
                     Printf.sprintf " cache=%d" (int_of_float cache)
                   else "")
              in
              (* cooperative rows get their own key: a cached and a
                 cooperative run of the same shape are different
                 experiments and must never alias *)
              let key =
                if Option.value (get "coop") ~default:0. > 0. then
                  key ^ " coop"
                else key
              in
              Some (key, p)
          | None -> None)
        pts
  | _ -> []

(* gated serve metrics with their "worse" direction: throughput falling,
   tail latency rising and message amplification rising are all
   regressions *)
let serve_gated =
  [
    ("throughput_rps", `Lower_worse);
    ("p99_virtual", `Higher_worse);
    ("delivered_per_request", `Higher_worse);
  ]

let serve_reported =
  [
    "throughput_rps"; "p50_virtual"; "p99_virtual"; "p999_virtual";
    "delivered_per_request"; "wall_s";
  ]

(* hit rate gates only when both sides ran with a cache: comparing a
   cached row against an uncached baseline (or a pre-cache file) is a
   config difference, not a regression *)
let cache_gated = [ ("cache_hit_rate", `Lower_worse) ]

(* cooperative rows gate the two metrics hint exchange exists to buy,
   under the tighter --coop-threshold; applies only when both sides ran
   with coop = 1 *)
let coop_gated =
  [
    ("delivered_per_request", `Higher_worse);
    ("cache_hit_rate", `Lower_worse);
  ]

let compare_serve ~threshold ~cache_threshold ~coop_threshold base cur =
  let bpts = serve_points base and cpts = serve_points cur in
  if bpts = [] || cpts = [] then (0, 0, 0)
  else begin
    let regressed = ref 0
    and cache_regressed = ref 0
    and coop_regressed = ref 0 in
    Printf.printf "\n%-38s %-22s %12s %12s %8s\n" "serve point" "metric"
      "baseline" "current" "ratio";
    List.iter
      (fun (key, bp) ->
        match List.assoc_opt key cpts with
        | None ->
            Printf.printf "%-38s %-22s %12s %12s %8s\n" key "-" "-" "-" "gone"
        | Some cp ->
            let get side f = Option.bind (Simnet.Json.member f side) num in
            let both_cached =
              Option.value (get bp "cache_size") ~default:0. > 0.
              && Option.value (get cp "cache_size") ~default:0. > 0.
            in
            let both_coop =
              Option.value (get bp "coop") ~default:0. > 0.
              && Option.value (get cp "coop") ~default:0. > 0.
            in
            let row (field, dir) ~gate ~threshold ~counter =
              match (get bp field, get cp field) with
              | Some b, Some c when b > 0. && c > 0. ->
                  let ratio = c /. b in
                  let flag =
                    if not gate then "  (info)"
                    else begin
                      let worse =
                        match dir with
                        | `Higher_worse -> ratio
                        | `Lower_worse -> b /. c
                      in
                      if worse > 1. +. (threshold /. 100.) then begin
                        incr counter;
                        "  REGRESSED"
                      end
                      else ""
                    end
                  in
                  Printf.printf "%-38s %-22s %12.1f %12.1f %7.2fx%s\n" key
                    field b c ratio flag
              | _ -> ()
            in
            List.iter
              (fun field ->
                let dir =
                  List.assoc_opt field serve_gated
                  |> Option.value ~default:`Higher_worse
                in
                row (field, dir)
                  ~gate:(List.mem_assoc field serve_gated)
                  ~threshold ~counter:regressed)
              serve_reported;
            if both_cached then
              List.iter
                (fun (field, dir) ->
                  row (field, dir) ~gate:true ~threshold:cache_threshold
                    ~counter:cache_regressed)
                cache_gated;
            if both_coop then
              List.iter
                (fun (field, dir) ->
                  row (field, dir) ~gate:true ~threshold:coop_threshold
                    ~counter:coop_regressed)
                coop_gated)
      bpts;
    (!regressed, !cache_regressed, !coop_regressed)
  end

let () =
  let threshold = ref 25.0 in
  let serve_threshold = ref 20.0 in
  let scale_threshold = ref 15.0 in
  let cache_threshold = ref 20.0 in
  let coop_threshold = ref 10.0 in
  let advisory = ref false in
  let files = ref [] in
  let rec parse_args = function
    | [] -> ()
    | "--threshold" :: v :: rest ->
        (match float_of_string_opt v with
        | Some t when t >= 0. -> threshold := t
        | _ -> fail "bench_compare: bad threshold %S" v);
        parse_args rest
    | "--scale-threshold" :: v :: rest ->
        (match float_of_string_opt v with
        | Some t when t >= 0. -> scale_threshold := t
        | _ -> fail "bench_compare: bad scale threshold %S" v);
        parse_args rest
    | "--serve-threshold" :: v :: rest ->
        (match float_of_string_opt v with
        | Some t when t >= 0. -> serve_threshold := t
        | _ -> fail "bench_compare: bad serve threshold %S" v);
        parse_args rest
    | "--cache-threshold" :: v :: rest ->
        (match float_of_string_opt v with
        | Some t when t >= 0. -> cache_threshold := t
        | _ -> fail "bench_compare: bad cache threshold %S" v);
        parse_args rest
    | "--coop-threshold" :: v :: rest ->
        (match float_of_string_opt v with
        | Some t when t >= 0. -> coop_threshold := t
        | _ -> fail "bench_compare: bad coop threshold %S" v);
        parse_args rest
    | "--advisory" :: rest ->
        advisory := true;
        parse_args rest
    | ("--help" | "-h") :: _ ->
        print_endline usage;
        exit 0
    | a :: rest ->
        files := a :: !files;
        parse_args rest
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  let base_file, cur_file =
    match List.rev !files with
    | [ b; c ] -> (b, c)
    | _ -> fail "usage: %s" usage
  in
  let base, base_doc = load base_file and cur, cur_doc = load cur_file in
  let regressed = ref 0 in
  Printf.printf "%-44s %12s %12s %8s\n" "benchmark" "baseline" "current" "ratio";
  List.iter
    (fun (name, b) ->
      match List.assoc_opt name cur with
      | None -> Printf.printf "%-44s %12.0f %12s %8s\n" name b "-" "gone"
      | Some c ->
          let ratio = c /. b in
          let flag =
            if ratio > 1. +. (!threshold /. 100.) then begin
              incr regressed;
              "  REGRESSED"
            end
            else ""
          in
          Printf.printf "%-44s %12.0f %12.0f %7.2fx%s\n" name b c ratio flag)
    base;
  List.iter
    (fun (name, c) ->
      if not (List.mem_assoc name base) then
        Printf.printf "%-44s %12s %12.0f %8s\n" name "-" c "new")
    cur;
  let scale_regressed =
    compare_scale ~threshold:!scale_threshold base_doc cur_doc
  in
  if !regressed > 0 then begin
    Printf.printf "%d op(s) regressed more than %g%% vs %s\n" !regressed
      !threshold base_file;
    if !advisory then
      print_endline "bench_compare: advisory mode, not failing the check"
    else exit 1
  end
  else Printf.printf "no op regressed more than %g%% vs %s\n" !threshold base_file;
  if scale_regressed > 0 then begin
    Printf.printf
      "%d scale metric(s) regressed more than %g%% vs %s\n" scale_regressed
      !scale_threshold base_file;
    if !advisory then
      print_endline "bench_compare: advisory mode, not failing the check"
    else exit 3
  end;
  let serve_regressed, serve_cache_regressed, serve_coop_regressed =
    compare_serve ~threshold:!serve_threshold
      ~cache_threshold:!cache_threshold ~coop_threshold:!coop_threshold
      base_doc cur_doc
  in
  if serve_regressed > 0 then begin
    Printf.printf "%d serve metric(s) regressed more than %g%% vs %s\n"
      serve_regressed !serve_threshold base_file;
    if !advisory then
      print_endline "bench_compare: advisory mode, not failing the check"
    else exit 4
  end;
  if serve_cache_regressed > 0 then begin
    Printf.printf "%d cache metric(s) regressed more than %g%% vs %s\n"
      serve_cache_regressed !cache_threshold base_file;
    if !advisory then
      print_endline "bench_compare: advisory mode, not failing the check"
    else exit 5
  end;
  if serve_coop_regressed > 0 then begin
    Printf.printf "%d cooperative metric(s) regressed more than %g%% vs %s\n"
      serve_coop_regressed !coop_threshold base_file;
    if !advisory then
      print_endline "bench_compare: advisory mode, not failing the check"
    else exit 6
  end
