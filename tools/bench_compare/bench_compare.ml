(* Diff two bench JSON files (schema tapestry-bench/1) op by op.

   Usage: bench_compare [--threshold PCT] [--advisory] BASELINE.json
   CURRENT.json

   Prints a per-op table of ns/op before/after and the ratio, flags ops
   whose ns/op regressed by more than the threshold (default 25%), and
   exits 1 if any op regressed past it — tools/check.sh wires this in
   as a gate.  [--advisory] keeps the report but always exits 0: the
   escape hatch for noisy shared machines, where a short run's jitter
   can cross any reasonable threshold.  Exit 2 is reserved for
   configuration errors (unreadable/mis-schema'd files), so a gating
   caller can tell "slow" from "broken". *)

let usage =
  "bench_compare [--threshold PCT] [--advisory] BASELINE.json CURRENT.json"

let fail fmt = Printf.ksprintf (fun s -> prerr_endline s; exit 2) fmt

let read_file path =
  try
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  with Sys_error e -> fail "bench_compare: %s" e

let load path =
  match Simnet.Json.parse (read_file path) with
  | Error e -> fail "bench_compare: %s: %s" path e
  | Ok j -> (
      (match Simnet.Json.member "schema" j with
      | Some (Simnet.Json.String "tapestry-bench/1") -> ()
      | _ -> fail "bench_compare: %s: not a tapestry-bench/1 file" path);
      match Simnet.Json.member "micro" j with
      | Some (Simnet.Json.List entries) ->
          List.filter_map
            (fun e ->
              match
                (Simnet.Json.member "name" e, Simnet.Json.member "ns_per_op" e)
              with
              | Some (Simnet.Json.String name), Some (Simnet.Json.Float v) ->
                  Some (name, v)
              | Some (Simnet.Json.String name), Some (Simnet.Json.Int v) ->
                  Some (name, float_of_int v)
              | _ -> None)
            entries
      | _ -> fail "bench_compare: %s: no micro section" path)

let () =
  let threshold = ref 25.0 in
  let advisory = ref false in
  let files = ref [] in
  let rec parse_args = function
    | [] -> ()
    | "--threshold" :: v :: rest ->
        (match float_of_string_opt v with
        | Some t when t >= 0. -> threshold := t
        | _ -> fail "bench_compare: bad threshold %S" v);
        parse_args rest
    | "--advisory" :: rest ->
        advisory := true;
        parse_args rest
    | ("--help" | "-h") :: _ ->
        print_endline usage;
        exit 0
    | a :: rest ->
        files := a :: !files;
        parse_args rest
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  let base_file, cur_file =
    match List.rev !files with
    | [ b; c ] -> (b, c)
    | _ -> fail "usage: %s" usage
  in
  let base = load base_file and cur = load cur_file in
  let regressed = ref 0 in
  Printf.printf "%-44s %12s %12s %8s\n" "benchmark" "baseline" "current" "ratio";
  List.iter
    (fun (name, b) ->
      match List.assoc_opt name cur with
      | None -> Printf.printf "%-44s %12.0f %12s %8s\n" name b "-" "gone"
      | Some c ->
          let ratio = c /. b in
          let flag =
            if ratio > 1. +. (!threshold /. 100.) then begin
              incr regressed;
              "  REGRESSED"
            end
            else ""
          in
          Printf.printf "%-44s %12.0f %12.0f %7.2fx%s\n" name b c ratio flag)
    base;
  List.iter
    (fun (name, c) ->
      if not (List.mem_assoc name base) then
        Printf.printf "%-44s %12s %12.0f %8s\n" name "-" c "new")
    cur;
  if !regressed > 0 then begin
    Printf.printf "%d op(s) regressed more than %g%% vs %s\n" !regressed
      !threshold base_file;
    if !advisory then
      print_endline "bench_compare: advisory mode, not failing the check"
    else exit 1
  end
  else Printf.printf "no op regressed more than %g%% vs %s\n" !threshold base_file
