#!/usr/bin/env bash
# One-command repo health check: build, tests, syntactic lint, typed
# lint, bench smoke, then the thresholded bench gate.
#
# Each stage fails with a distinct exit code so a caller (or CI log)
# can attribute the failure without scraping output:
#   10 build        11 tests          12 syntactic lint
#   13 typed lint   14 bench smoke    15 bench gate
#
# The bench gate compares a short run against the committed
# BENCH_baseline.json and fails if any paired op regressed more than
# 25% (tools/bench_compare).  ./tools/check.sh --advisory keeps the
# comparison report but never fails on it — the escape hatch for noisy
# shared machines.
set -euo pipefail
cd "$(dirname "$0")/.."

advisory=""
for arg in "$@"; do
  case "$arg" in
    --advisory) advisory="--advisory" ;;
    *) echo "usage: tools/check.sh [--advisory]" >&2; exit 2 ;;
  esac
done

dune build || exit 10
dune runtest || exit 11
dune build @lint-syntax || exit 12
dune build @lint-typed || exit 13
# Bench smoke: microbenches under a tiny quota + BENCH_results JSON
# round-trip through the parser.
dune build @bench-smoke || exit 14

if [ -f BENCH_baseline.json ]; then
  tmp_bench=$(mktemp /tmp/bench_current.XXXXXX.json)
  trap 'rm -f "$tmp_bench"' EXIT
  dune exec bench/main.exe -- --no-tables --quota 0.5 --json "$tmp_bench" \
    > /dev/null 2>&1 || exit 14
  dune exec tools/bench_compare/bench_compare.exe -- \
    --threshold 25 $advisory BENCH_baseline.json "$tmp_bench" || exit 15
fi

echo "check: build + tests + lint (syntactic, typed) + bench gate all clean"
