#!/usr/bin/env bash
# One-command repo health check: build, tests, lint, bench smoke.
# Run from the repo root: ./tools/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

dune build
dune runtest
dune build @lint
# Bench smoke: microbenches under a tiny quota + BENCH_results JSON
# round-trip through the parser.
dune build @bench-smoke

# Advisory perf diff vs the committed baseline: a short bench run is far
# too noisy to gate on, so regressions are reported but never fail the
# check.  The baseline covers the routing/location ops and the insertion
# hot path (insert, acquire_neighbor_table, multicast with and without a
# watchlist) next to their list-based oracle pairs, so a slowdown in the
# packed pipeline shows up here as the packed/oracle gap closing.
if [ -f BENCH_baseline.json ]; then
  tmp_bench=$(mktemp /tmp/bench_current.XXXXXX.json)
  dune exec bench/main.exe -- --no-tables --quota 0.25 --json "$tmp_bench" \
    > /dev/null 2>&1 || true
  dune exec tools/bench_compare/bench_compare.exe -- \
    BENCH_baseline.json "$tmp_bench" || true
  rm -f "$tmp_bench"
fi

echo "check: build + tests + lint + bench smoke all clean"
