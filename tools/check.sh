#!/usr/bin/env bash
# One-command repo health check: build, tests, lint.
# Run from the repo root: ./tools/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

dune build
dune runtest
dune build @lint
echo "check: build + tests + lint all clean"
