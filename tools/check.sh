#!/usr/bin/env bash
# One-command repo health check: build, tests, lint, bench smoke.
# Run from the repo root: ./tools/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

dune build
dune runtest
dune build @lint
# Bench smoke: microbenches under a tiny quota + BENCH_results JSON
# round-trip through the parser.
dune build @bench-smoke
echo "check: build + tests + lint + bench smoke all clean"
