#!/usr/bin/env bash
# One-command repo health check: build, tests, syntactic lint, typed
# lint, bench smoke, then the thresholded bench gate.
#
# Each stage fails with a distinct exit code so a caller (or CI log)
# can attribute the failure without scraping output:
#   10 build        11 tests          12 syntactic lint
#   13 typed lint   14 bench smoke    15 bench gate
#   16 scale smoke  17 serve smoke    18 cache smoke
#   19 coop smoke
#
# The bench gate compares a short run against the committed
# BENCH_baseline.json and fails if any paired op regressed more than
# 25% (tools/bench_compare).  ./tools/check.sh --advisory keeps the
# comparison report but never fails on it — the escape hatch for noisy
# shared machines.
#
# ./tools/check.sh --scale-smoke runs ONLY the scale-tier smoke: a
# streamed n=32768 construction through `tapestry_sim scale` (<60s),
# JSON round-tripped through the bench parser and — when a committed
# BENCH_scale.json has a matching size — gated by bench_compare's
# scale thresholds.  Kept out of the default stage list because a
# minute of mesh building is too slow for the inner edit loop.
#
# ./tools/check.sh --serve-smoke runs ONLY the serving-runtime smoke:
# a n=4096 mesh serving 1e5 Zipf requests through `tapestry_sim serve`
# (<60s), JSON round-tripped through the bench parser and — when a
# committed BENCH_serve.json has a matching workload point — gated by
# bench_compare's serve thresholds (throughput down / p99 up).
#
# ./tools/check.sh --cache-smoke runs ONLY the object-cache smoke: the
# same n=4096 serve with a per-node cache attached and --audit, so the
# quiesced mesh passes the full invariant audit INCLUDING the cache
# coherence check, and the JSON must show a positive cache_hit_rate.
#
# ./tools/check.sh --coop-smoke runs ONLY the cooperative-cache smoke:
# the cached n=4096 serve with --coop 1 and --audit, so the quiesced
# mesh passes the audit INCLUDING the hint-sketch coherence extension,
# and the JSON must show positive hint_fills (the exchange actually
# moved hints between nodes, not just compiled).
set -euo pipefail
cd "$(dirname "$0")/.."

advisory=""
scale_smoke=0
serve_smoke=0
cache_smoke=0
coop_smoke=0
for arg in "$@"; do
  case "$arg" in
    --advisory) advisory="--advisory" ;;
    --scale-smoke) scale_smoke=1 ;;
    --serve-smoke) serve_smoke=1 ;;
    --cache-smoke) cache_smoke=1 ;;
    --coop-smoke) coop_smoke=1 ;;
    *) echo "usage: tools/check.sh [--advisory] [--scale-smoke] [--serve-smoke] [--cache-smoke] [--coop-smoke]" >&2; exit 2 ;;
  esac
done

if [ "$coop_smoke" = 1 ]; then
  dune build bin/tapestry_sim.exe bench/main.exe || exit 10
  tmp_coop=$(mktemp /tmp/coop_smoke.XXXXXX.json)
  trap 'rm -f "$tmp_coop"' EXIT
  # --audit makes the run itself fail on any invariant violation,
  # hint-sketch coherence included
  dune exec bin/tapestry_sim.exe -- serve --size 4096 --requests 100000 \
    --cache-size 32 --coop 1 --audit --json "$tmp_coop" || exit 19
  dune exec bench/main.exe -- --check-json "$tmp_coop" || exit 19
  # hints must actually travel: zero hint_fills means the digest/want
  # exchange is dead even though nothing crashed
  hf=$(grep -o '"hint_fills": *[0-9]*' "$tmp_coop" | head -1 | sed 's/.*: *//')
  if [ "${hf:-0}" -le 0 ]; then
    echo "check: coop smoke found no hint_fills (got '${hf:-missing}')" >&2
    exit 19
  fi
  echo "check: coop smoke (n=4096 serve, cache=32 coop, audit incl. hint coherence) clean"
  exit 0
fi

if [ "$cache_smoke" = 1 ]; then
  dune build bin/tapestry_sim.exe bench/main.exe || exit 10
  tmp_cache=$(mktemp /tmp/cache_smoke.XXXXXX.json)
  trap 'rm -f "$tmp_cache"' EXIT
  # --audit makes the run itself fail on any invariant violation,
  # cache coherence included
  dune exec bin/tapestry_sim.exe -- serve --size 4096 --requests 100000 \
    --cache-size 32 --audit --json "$tmp_cache" || exit 18
  dune exec bench/main.exe -- --check-json "$tmp_cache" || exit 18
  # the cache must actually serve traffic: a zero hit rate means the
  # probe/fill plumbing is dead even though nothing crashed
  hr=$(grep -o '"cache_hit_rate": *[0-9.eE+-]*' "$tmp_cache" | head -1 | sed 's/.*: *//')
  awk -v h="${hr:-0}" 'BEGIN { exit (h > 0 ? 0 : 1) }' || {
    echo "check: cache smoke found no positive cache_hit_rate (got '${hr:-missing}')" >&2
    exit 18
  }
  echo "check: cache smoke (n=4096 serve, cache=32, audit incl. coherence) clean"
  exit 0
fi

if [ "$serve_smoke" = 1 ]; then
  dune build bin/tapestry_sim.exe bench/main.exe \
    tools/bench_compare/bench_compare.exe || exit 10
  tmp_serve=$(mktemp /tmp/serve_smoke.XXXXXX.json)
  trap 'rm -f "$tmp_serve"' EXIT
  dune exec bin/tapestry_sim.exe -- serve --size 4096 --requests 100000 \
    --json "$tmp_serve" || exit 17
  dune exec bench/main.exe -- --check-json "$tmp_serve" || exit 17
  if [ -f BENCH_serve.json ]; then
    dune exec tools/bench_compare/bench_compare.exe -- \
      $advisory BENCH_serve.json "$tmp_serve" || exit 17
  fi
  echo "check: serve smoke (n=4096, 1e5 Zipf requests + JSON round-trip) clean"
  exit 0
fi

if [ "$scale_smoke" = 1 ]; then
  dune build bin/tapestry_sim.exe bench/main.exe \
    tools/bench_compare/bench_compare.exe || exit 10
  tmp_scale=$(mktemp /tmp/scale_smoke.XXXXXX.json)
  trap 'rm -f "$tmp_scale"' EXIT
  dune exec bin/tapestry_sim.exe -- scale --sizes 32768 \
    --objects 200 --queries 400 --json "$tmp_scale" || exit 16
  dune exec bench/main.exe -- --check-json "$tmp_scale" || exit 16
  if [ -f BENCH_scale.json ]; then
    dune exec tools/bench_compare/bench_compare.exe -- \
      $advisory BENCH_scale.json "$tmp_scale" || exit 16
  fi
  echo "check: scale smoke (n=32768 streamed build + JSON round-trip) clean"
  exit 0
fi

dune build || exit 10
dune runtest || exit 11
dune build @lint-syntax || exit 12
dune build @lint-typed || exit 13
# Bench smoke: microbenches under a tiny quota + BENCH_results JSON
# round-trip through the parser.
dune build @bench-smoke || exit 14

if [ -f BENCH_baseline.json ]; then
  tmp_bench=$(mktemp /tmp/bench_current.XXXXXX.json)
  trap 'rm -f "$tmp_bench"' EXIT
  dune exec bench/main.exe -- --no-tables --quota 0.5 --json "$tmp_bench" \
    > /dev/null 2>&1 || exit 14
  dune exec tools/bench_compare/bench_compare.exe -- \
    --threshold 25 $advisory BENCH_baseline.json "$tmp_bench" || exit 15
fi

echo "check: build + tests + lint (syntactic, typed) + bench gate all clean"
