(* Benchmark harness.

   Two halves:

   1. The reproduction tables — one per paper table/figure/theorem claim
      (experiment ids E1..E16, see DESIGN.md section 4 and EXPERIMENTS.md).
      These print the same rows/series the paper reports.

   2. Bechamel microbenchmarks of the core operations (route, publish,
      locate, insert, multicast, Chord lookup, alive sampling, the
      surrogate oracle) on a prebuilt network.  The "naive" entries
      re-create the pre-index costs (alive-list rebuild per sample, core
      trie rebuild per oracle call) so the win of the incremental
      structures is visible in one run.

   Run `dune exec bench/main.exe` for the quick profile (CI-sized);
   `dune exec bench/main.exe -- --full` for paper-scale runs;
   `dune exec bench/main.exe -- --only table1,stretch` to select tables;
   `--no-micro` / `--no-tables` skip one half;
   `--domains D` spreads parallelizable tables over D cores (same output);
   `--large` adds the n=4096 routing pair (slow mesh build, opt-in);
   `--json FILE` also writes machine-readable results;
   `--check-json FILE` parses a previously written FILE and exits. *)

open Tapestry

let usage =
  "main.exe [--full] [--large] [--seed N] [--only a,b,c] [--no-micro]\n\
  \        [--no-tables] [--domains D] [--quota SECONDS] [--json FILE]\n\
  \        [--check-json FILE]"

type options = {
  mutable mode : Evaluation.Experiment.mode;
  mutable seed : int;
  mutable only : string list;
  mutable micro : bool;
  mutable large : bool;
  mutable tables : bool;
  mutable domains : int;
  mutable quota : float;
  mutable json : string option;
  mutable check_json : string option;
}

let parse_args () =
  let o =
    {
      mode = Evaluation.Experiment.Quick;
      seed = 42;
      only = [];
      micro = true;
      large = false;
      tables = true;
      domains = 1;
      quota = 0.25;
      json = None;
      check_json = None;
    }
  in
  let rec go = function
    | [] -> ()
    | "--full" :: rest ->
        o.mode <- Evaluation.Experiment.Full;
        go rest
    | "--large" :: rest ->
        o.large <- true;
        go rest
    | "--seed" :: v :: rest ->
        o.seed <- int_of_string v;
        go rest
    | "--only" :: v :: rest ->
        o.only <- String.split_on_char ',' v;
        go rest
    | "--no-micro" :: rest ->
        o.micro <- false;
        go rest
    | "--no-tables" :: rest ->
        o.tables <- false;
        go rest
    | "--domains" :: v :: rest ->
        let d = int_of_string v in
        o.domains <- (if d = 0 then Simnet.Parallel.recommended () else d);
        go rest
    | "--quota" :: v :: rest ->
        o.quota <- float_of_string v;
        go rest
    | "--json" :: v :: rest ->
        o.json <- Some v;
        go rest
    | "--check-json" :: v :: rest ->
        o.check_json <- Some v;
        go rest
    | "--help" :: _ ->
        Printf.printf "usage: %s\nexperiments: %s\n" usage
          (String.concat ", " Evaluation.Experiment.names);
        exit 0
    | other :: _ ->
        Printf.eprintf "unknown argument %s\nusage: %s\n" other usage;
        exit 2
  in
  go (List.tl (Array.to_list Sys.argv));
  o

(* --- Bechamel microbenchmarks --- *)

let micro_tests seed =
  let open Bechamel in
  let n = 256 in
  let rng = Simnet.Rng.create seed in
  let metric = Simnet.Topology.generate Simnet.Topology.Uniform_square ~n ~rng in
  let addrs = List.init n (fun i -> i) in
  let net, _ = Insert.build_incremental ~seed:(seed + 1) Config.default metric ~addrs in
  let cfg = net.Network.config in
  let guids =
    Array.init 64 (fun _ ->
        let server = Network.random_alive net in
        let guid =
          Node_id.random ~base:cfg.Config.base ~len:cfg.Config.id_digits
            net.Network.rng
        in
        ignore (Publish.publish net ~server guid);
        guid)
  in
  let i = ref 0 in
  let next_guid () =
    incr i;
    guids.(!i mod Array.length guids)
  in
  let route_test =
    Test.make ~name:"route_to_root (n=256)"
      (Staged.stage (fun () ->
           let from = Network.random_alive net in
           ignore (Route.route_to_root net ~from (next_guid ()))))
  in
  let locate_test =
    Test.make ~name:"locate (n=256)"
      (Staged.stage (fun () ->
           let client = Network.random_alive net in
           ignore (Locate.locate net ~client (next_guid ()))))
  in
  let publish_test =
    Test.make ~name:"republish (n=256)"
      (Staged.stage (fun () ->
           let server = Network.random_alive net in
           ignore (Publish.republish net ~server (next_guid ()))))
  in
  let multicast_test =
    Test.make ~name:"multicast len-1 prefix (n=256)"
      (Staged.stage (fun () ->
           let anchor = Network.random_alive net in
           let prefix = Node_id.digits anchor.Node.id in
           ignore (Multicast.run net ~start:anchor ~prefix ~len:1 ~apply:ignore)))
  in
  (* The swap-remove alive array vs the old fold-then-pick: both draw a
     uniform alive node, but the naive version pays O(n) per sample. *)
  let random_alive_test =
    Test.make ~name:"random_alive (n=256)"
      (Staged.stage (fun () -> ignore (Network.random_alive net)))
  in
  let random_alive_naive_test =
    Test.make ~name:"random_alive naive rebuild (n=256)"
      (Staged.stage (fun () ->
           let alive =
             Node_id.Tbl.fold
               (fun _ (nd : Node.t) acc -> if Node.is_alive nd then nd :: acc else acc)
               net.Network.nodes []
           in
           ignore (Simnet.Rng.pick_list net.Network.rng alive)))
  in
  (* The incremental core trie vs rebuilding it per oracle call (what the
     oracle had to do before the index became part of the network). *)
  let surrogate_test =
    Test.make ~name:"surrogate_oracle (n=256)"
      (Staged.stage (fun () ->
           ignore (Network.surrogate_oracle net (next_guid ()))))
  in
  let surrogate_rebuild_test =
    Test.make ~name:"surrogate_oracle + index rebuild (n=256)"
      (Staged.stage (fun () ->
           let idx = Id_index.create ~base:cfg.Config.base in
           List.iter
             (fun (nd : Node.t) -> Id_index.add idx nd.Node.id)
             (Network.core_nodes net);
           ignore (Network.surrogate_oracle net (next_guid ()))))
  in
  (* The packed-slot walk vs the pre-arena hot path: list slots plus a
     directory lookup per entry.  The oracle tables mirror [net]'s routing
     tables exactly (consider in slot order reproduces the same slots, since
     packed slots are sorted by distance), so both sides route through the
     same mesh — only the representation differs. *)
  let oracle_tables = Node_id.Tbl.create 256 in
  List.iter
    (fun (nd : Node.t) ->
      let table = nd.Node.table in
      let o = Routing_table.Oracle.create cfg ~owner:nd.Node.id in
      for level = 0 to Routing_table.levels table - 1 do
        for digit = 0 to cfg.Config.base - 1 do
          for k = 0 to Routing_table.slot_len table ~level ~digit - 1 do
            let id = Routing_table.slot_id table ~level ~digit ~k in
            if not (Node_id.equal id nd.Node.id) then
              ignore
                (Routing_table.Oracle.consider o ~level ~candidate:id
                   ~dist:(Routing_table.slot_dist table ~level ~digit ~k))
          done
        done
      done;
      Node_id.Tbl.replace oracle_tables nd.Node.id o)
    (Network.alive_nodes net);
  let oracle_first_alive o ~level ~digit =
    let rec first = function
      | [] -> None
      | (e : Routing_table.Oracle.entry) :: rest -> (
          match Network.find net e.Routing_table.Oracle.id with
          | Some n when Node.is_alive n -> Some n
          | _ -> first rest)
    in
    first (Routing_table.Oracle.slot o ~level ~digit)
  in
  let oracle_walk ~from ~stop guid =
    let digits = cfg.Config.id_digits and base = cfg.Config.base in
    let rec walk (node : Node.t) level =
      if level >= digits || stop node then node
      else begin
        let o = Node_id.Tbl.find oracle_tables node.Node.id in
        let want = Node_id.digit guid level in
        let rec scan tries =
          if tries = base then None
          else
            match oracle_first_alive o ~level ~digit:((want + tries) mod base) with
            | Some n -> Some n
            | None -> scan (tries + 1)
        in
        match scan 0 with
        | None -> node
        | Some next ->
            if Node_id.equal next.Node.id node.Node.id then walk node (level + 1)
            else begin
              Network.charge net node next;
              walk next (level + 1)
            end
      end
    in
    walk from 0
  in
  let route_oracle_test =
    Test.make ~name:"route_to_root list-oracle (n=256)"
      (Staged.stage (fun () ->
           let from = Network.random_alive net in
           ignore (oracle_walk ~from ~stop:(fun _ -> false) (next_guid ()))))
  in
  (* Pre-change locate: oracle walk, filter-then-fold over the full
     [find_guid] record list at every hop, double pass at the stop node. *)
  let usable_records (node : Node.t) guid =
    Pointer_store.find_guid node.Node.pointers guid
    |> List.filter (fun (r : Pointer_store.record) ->
           r.Pointer_store.expires >= net.Network.clock
           &&
           match Network.find net r.Pointer_store.server with
           | Some s -> Node.is_alive s && Node.stores_replica s guid
           | None -> false)
  in
  let locate_oracle_test =
    Test.make ~name:"locate list-oracle (n=256)"
      (Staged.stage (fun () ->
           let client = Network.random_alive net in
           let guid = next_guid () in
           let found =
             oracle_walk ~from:client
               ~stop:(fun node ->
                 match usable_records node guid with
                 | [] -> false
                 | _ :: _ -> true)
               guid
           in
           let records = usable_records found guid in
           let server =
             List.fold_left
               (fun acc (r : Pointer_store.record) ->
                 match Network.find net r.Pointer_store.server with
                 | Some s -> (
                     let d = Network.dist net found s in
                     match acc with
                     | Some (_, bd) when bd <= d -> acc
                     | _ -> Some (s, d))
                 | None -> acc)
               None records
             |> Option.map fst
           in
           match server with
           | Some s when not (Node_id.equal s.Node.id found.Node.id) ->
               ignore
                 (oracle_walk ~from:found
                    ~stop:(fun node -> Node_id.equal node.Node.id s.Node.id)
                    s.Node.id)
           | _ -> ()))
  in
  let multicast_oracle_test =
    Test.make ~name:"multicast list-oracle len-1 prefix (n=256)"
      (Staged.stage (fun () ->
           let anchor = Network.random_alive net in
           let prefix = Node_id.digits anchor.Node.id in
           ignore
             (Multicast.Oracle.run net ~start:anchor ~prefix ~len:1
                ~apply:ignore)))
  in
  (* The Figure 11 watch-list variant: every recipient scans the carried
     hole bitmap.  Rows are refilled per op so both sides do the same
     certification work. *)
  let wl = Array.init 2 (fun _ -> Array.make cfg.Config.base true) in
  let reset_wl () =
    Array.iter (fun row -> Array.fill row 0 (Array.length row) true) wl
  in
  let no_hit ~level:_ ~digit:_ (_ : Node.t) = () in
  let multicast_watch_test =
    Test.make ~name:"multicast watchlist len-1 (n=256)"
      (Staged.stage (fun () ->
           reset_wl ();
           let anchor = Network.random_alive net in
           let prefix = Node_id.digits anchor.Node.id in
           ignore
             (Multicast.run ~on_watch_hit:no_hit ~watchlist:wl net
                ~start:anchor ~prefix ~len:1 ~apply:ignore)))
  in
  let multicast_watch_oracle_test =
    Test.make ~name:"multicast watchlist list-oracle len-1 (n=256)"
      (Staged.stage (fun () ->
           reset_wl ();
           let anchor = Network.random_alive net in
           let prefix = Node_id.digits anchor.Node.id in
           ignore
             (Multicast.Oracle.run ~on_watch_hit:no_hit ~watchlist:wl net
                ~start:anchor ~prefix ~len:1 ~apply:ignore)))
  in
  (* insert+delete cycle on a side network so [net] stays stable *)
  let net2, _ =
    Insert.build_incremental ~seed:(seed + 7) Config.default metric
      ~addrs:(List.init 128 (fun i -> i))
  in
  let insert_test =
    Test.make ~name:"insert+voluntary_delete (n=128)"
      (Staged.stage (fun () ->
           let gw = Network.random_alive net2 in
           let r = Insert.insert net2 ~gateway:gw ~addr:200 in
           ignore (Delete.voluntary net2 r.Insert.node)))
  in
  (* Paired insertion-path benches at n=256, on their own network (metric
     widened so the churn addr is a fresh point).  Each op inserts then
     voluntarily deletes, so the node count is stable across the run; the
     list-oracle twin drives the identical pipeline on the pre-packing
     engines. *)
  let metric3 =
    Simnet.Topology.generate Simnet.Topology.Uniform_square ~n:300 ~rng
  in
  let net3, _ =
    Insert.build_incremental ~seed:(seed + 11) Config.default metric3
      ~addrs:(List.init 256 (fun i -> i))
  in
  let insert256_test =
    Test.make ~name:"insert (n=256)"
      (Staged.stage (fun () ->
           let gw = Network.random_alive net3 in
           let r = Insert.insert net3 ~gateway:gw ~addr:299 in
           ignore (Delete.voluntary net3 r.Insert.node)))
  in
  let insert256_oracle_test =
    Test.make ~name:"insert list-oracle (n=256)"
      (Staged.stage (fun () ->
           let gw = Network.random_alive net3 in
           let r = Insert.Oracle.insert net3 ~gateway:gw ~addr:299 in
           ignore (Delete.voluntary net3 r.Insert.node)))
  in
  (* The descent alone, seeded by the surrogate as in a standalone run. *)
  let acquire_test =
    Test.make ~name:"acquire_neighbor_table (n=256)"
      (Staged.stage (fun () ->
           let id = Network.fresh_id net3 in
           let probe = Node.create cfg ~id ~addr:299 in
           Network.register net3 probe;
           let surrogate = Network.surrogate_oracle net3 id in
           ignore
             (Nearest_neighbor.acquire_neighbor_table net3 ~new_node:probe
                ~surrogate ~initial_list:[ surrogate ]);
           Network.activate net3 probe;
           ignore (Delete.voluntary net3 probe)))
  in
  let acquire_oracle_test =
    Test.make ~name:"acquire_neighbor_table list-oracle (n=256)"
      (Staged.stage (fun () ->
           let id = Network.fresh_id net3 in
           let probe = Node.create cfg ~id ~addr:299 in
           Network.register net3 probe;
           let surrogate = Network.surrogate_oracle net3 id in
           ignore
             (Nearest_neighbor.Oracle.acquire_neighbor_table net3
                ~new_node:probe ~surrogate ~initial_list:[ surrogate ]);
           Network.activate net3 probe;
           ignore (Delete.voluntary net3 probe)))
  in
  let ch = Baselines.Chord.create ~seed:(seed + 3) ~m:24 ~succ_list:4 metric in
  ignore (Baselines.Chord.bootstrap ch ~addr:0);
  for addr = 1 to n - 1 do
    ignore (Baselines.Chord.join ch ~gateway:(Baselines.Chord.random_node ch) ~addr)
  done;
  Baselines.Chord.stabilize_all ch ~rounds:2;
  let chord_test =
    Test.make ~name:"chord lookup (n=256)"
      (Staged.stage (fun () ->
           let from = Baselines.Chord.random_node ch in
           ignore (Baselines.Chord.lookup ch ~from (!i * 7919 land 0xFFFFFF))))
  in
  [
    route_test; route_oracle_test; locate_test; locate_oracle_test;
    publish_test; multicast_test; multicast_oracle_test; multicast_watch_test;
    multicast_watch_oracle_test; random_alive_test; random_alive_naive_test;
    surrogate_test; surrogate_rebuild_test; insert_test; insert256_test;
    insert256_oracle_test; acquire_test; acquire_oracle_test; chord_test;
  ]

(* Larger-n routing pair (`--large`, EXPERIMENTS.md B1): same
   packed-vs-list-oracle comparison as above but on an n=4096 mesh, where
   routing tables are denser and walks are longer — the regime where the
   packed layout's cache behaviour should dominate the list-and-hashtable
   oracle.  Opt-in because building the mesh takes tens of seconds; the
   check.sh bench gate never runs it. *)
let large_route_tests seed =
  let open Bechamel in
  let n = 4096 in
  let rng = Simnet.Rng.create seed in
  let metric = Simnet.Topology.generate Simnet.Topology.Uniform_square ~n ~rng in
  let addrs = List.init n (fun i -> i) in
  let net, _ =
    Insert.build_incremental ~seed:(seed + 1) Config.default metric ~addrs
  in
  let cfg = net.Network.config in
  let guids =
    Array.init 64 (fun _ ->
        let server = Network.random_alive net in
        let guid =
          Node_id.random ~base:cfg.Config.base ~len:cfg.Config.id_digits
            net.Network.rng
        in
        ignore (Publish.publish net ~server guid);
        guid)
  in
  let i = ref 0 in
  let next_guid () =
    incr i;
    guids.(!i mod Array.length guids)
  in
  let oracle_tables = Node_id.Tbl.create n in
  List.iter
    (fun (nd : Node.t) ->
      let table = nd.Node.table in
      let o = Routing_table.Oracle.create cfg ~owner:nd.Node.id in
      for level = 0 to Routing_table.levels table - 1 do
        for digit = 0 to cfg.Config.base - 1 do
          for k = 0 to Routing_table.slot_len table ~level ~digit - 1 do
            let id = Routing_table.slot_id table ~level ~digit ~k in
            if not (Node_id.equal id nd.Node.id) then
              ignore
                (Routing_table.Oracle.consider o ~level ~candidate:id
                   ~dist:(Routing_table.slot_dist table ~level ~digit ~k))
          done
        done
      done;
      Node_id.Tbl.replace oracle_tables nd.Node.id o)
    (Network.alive_nodes net);
  let oracle_first_alive o ~level ~digit =
    let rec first = function
      | [] -> None
      | (e : Routing_table.Oracle.entry) :: rest -> (
          match Network.find net e.Routing_table.Oracle.id with
          | Some nd when Node.is_alive nd -> Some nd
          | _ -> first rest)
    in
    first (Routing_table.Oracle.slot o ~level ~digit)
  in
  let oracle_walk ~from guid =
    let digits = cfg.Config.id_digits and base = cfg.Config.base in
    let rec walk (node : Node.t) level =
      if level >= digits then node
      else begin
        let o = Node_id.Tbl.find oracle_tables node.Node.id in
        let want = Node_id.digit guid level in
        let rec scan tries =
          if tries = base then None
          else
            match
              oracle_first_alive o ~level ~digit:((want + tries) mod base)
            with
            | Some nd -> Some nd
            | None -> scan (tries + 1)
        in
        match scan 0 with
        | None -> node
        | Some next ->
            if Node_id.equal next.Node.id node.Node.id then walk node (level + 1)
            else begin
              Network.charge net node next;
              walk next (level + 1)
            end
      end
    in
    walk from 0
  in
  [
    Test.make ~name:"route_to_root (n=4096)"
      (Staged.stage (fun () ->
           let from = Network.random_alive net in
           ignore (Route.route_to_root net ~from (next_guid ()))));
    Test.make ~name:"route_to_root list-oracle (n=4096)"
      (Staged.stage (fun () ->
           let from = Network.random_alive net in
           ignore (oracle_walk ~from (next_guid ()))));
  ]

let run_micro ~quota ~large seed =
  let open Bechamel in
  let tests =
    micro_tests seed @ (if large then large_route_tests seed else [])
  in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) ~kde:(Some 100) () in
  print_endline "== B1: Bechamel microbenchmarks (ns/op, OLS on monotonic clock) ==";
  List.concat_map
    (fun test ->
      List.map
        (fun elt ->
          let ns =
            try
              let raw = Benchmark.run cfg [ instance ] elt in
              let est = Analyze.one ols instance raw in
              match Analyze.OLS.estimates est with Some (x :: _) -> x | _ -> nan
            with _ -> nan
          in
          Printf.printf "  %-42s %12.0f ns/op\n%!" (Test.Elt.name elt) ns;
          (Test.Elt.name elt, ns))
        (Test.elements test))
    tests

(* --- table half, timed per experiment --- *)

let run_tables o =
  let which =
    match o.only with [] -> Evaluation.Experiment.names | _ :: _ -> o.only
  in
  List.map
    (fun name ->
      let t0 = Sys.time () in
      let tables =
        Evaluation.Experiment.by_name ~seed:o.seed ~domains:o.domains o.mode name
      in
      let dt = Sys.time () -. t0 in
      List.iter Simnet.Stats.Table.print tables;
      print_newline ();
      (name, dt, List.length tables))
    which

(* --- machine-readable results --- *)

let json_schema = "tapestry-bench/1"

let emit_json o ~micro ~tables file =
  let open Simnet.Json in
  let doc =
    Obj
      [
        ("schema", String json_schema);
        ("seed", Int o.seed);
        ( "mode",
          String
            (match o.mode with
            | Evaluation.Experiment.Quick -> "quick"
            | Full -> "full") );
        ("domains", Int o.domains);
        ( "micro",
          List
            (List.map
               (fun (name, ns) ->
                 Obj [ ("name", String name); ("ns_per_op", Float ns) ])
               micro) );
        ( "tables",
          List
            (List.map
               (fun (name, dt, k) ->
                 Obj
                   [
                     ("experiment", String name);
                     ("cpu_seconds", Float dt);
                     ("tables", Int k);
                   ])
               tables) );
      ]
  in
  let oc = open_out file in
  output_string oc (to_string doc);
  close_out oc;
  Printf.printf "wrote %s\n" file

let check_json file =
  let ic = open_in_bin file in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  match Simnet.Json.parse text with
  | Error msg ->
      Printf.eprintf "%s: JSON parse error: %s\n" file msg;
      exit 2
  | Ok doc -> (
      let member = Simnet.Json.member in
      (match member "schema" doc with
      | Some (Simnet.Json.String s) when String.equal s json_schema -> ()
      | _ ->
          Printf.eprintf "%s: missing or unexpected \"schema\"\n" file;
          exit 2);
      match (member "micro" doc, member "tables" doc) with
      | Some (Simnet.Json.List micro), Some (Simnet.Json.List tables) ->
          let named field j =
            match member field j with
            | Some (Simnet.Json.String _) -> true
            | _ -> false
          in
          if not (List.for_all (named "name") micro) then begin
            Printf.eprintf "%s: a micro entry lacks \"name\"\n" file;
            exit 2
          end;
          if not (List.for_all (named "experiment") tables) then begin
            Printf.eprintf "%s: a table entry lacks \"experiment\"\n" file;
            exit 2
          end;
          Printf.printf "%s: ok (%d micro, %d table entries)\n" file
            (List.length micro) (List.length tables)
      | _ ->
          Printf.eprintf "%s: missing \"micro\"/\"tables\" arrays\n" file;
          exit 2)

let () =
  let o = parse_args () in
  match o.check_json with
  | Some file -> check_json file
  | None ->
      let tables = if o.tables then run_tables o else [] in
      let micro =
        if o.micro then run_micro ~quota:o.quota ~large:o.large o.seed else []
      in
      Option.iter (emit_json o ~micro ~tables) o.json
