(** Summary statistics and plain-text table rendering for experiments. *)

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

val summarize : float list -> summary
(** Summary of a non-empty sample; all-zero summary for an empty one. *)

val mean : float list -> float

val percentile : float list -> float -> float
(** [percentile xs p] with [p] in [\[0,1\]], nearest-rank on sorted data. *)

val gini : float list -> float
(** Gini coefficient of a non-negative sample; 0 = perfectly balanced.
    Used for the "Balanced?" column of Table 1. *)

val linear_fit : (float * float) list -> float * float
(** [linear_fit pts] returns [(slope, intercept)] of the least-squares line.
    Used on log-log data to estimate asymptotic exponents. *)

val pp_summary : Format.formatter -> summary -> unit

(** Fixed-width table rendering used by the bench harness and the CLI. *)
module Table : sig
  type t

  val create : title:string -> columns:string list -> t

  val add_row : t -> string list -> unit

  val render : t -> string

  val print : t -> unit

  val title : t -> string

  val to_csv : t -> string
  (** Comma-separated rendering (quoted cells), header row first. *)
end

val fmt_float : float -> string
(** Compact float formatting for table cells. *)
