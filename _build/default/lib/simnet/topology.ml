type kind =
  | Uniform_square
  | Uniform_torus
  | Grid
  | Ring
  | Clustered
  | Star
  | Random_metric

let kind_name = function
  | Uniform_square -> "uniform-square"
  | Uniform_torus -> "uniform-torus"
  | Grid -> "grid"
  | Ring -> "ring"
  | Clustered -> "clustered"
  | Star -> "star"
  | Random_metric -> "random-metric"

let all_kinds =
  [ Uniform_square; Uniform_torus; Grid; Ring; Clustered; Star; Random_metric ]

let uniform_points n rng =
  Array.init n (fun _ ->
      let x = Rng.float rng 1.0 in
      let y = Rng.float rng 1.0 in
      (x, y))

let grid_points n =
  let side = int_of_float (ceil (sqrt (float_of_int n))) in
  let step = 1.0 /. float_of_int side in
  Array.init n (fun i ->
      let r = i / side and c = i mod side in
      (float_of_int c *. step, float_of_int r *. step))

let ring_metric n =
  (* Circumference distance between evenly spaced points: a 1-D
     growth-restricted space with expansion constant 2. *)
  let dist i j =
    let d = abs (i - j) in
    let d = min d (n - d) in
    float_of_int d /. float_of_int n
  in
  Metric.make ~size:n ~desc:"ring" ~dist

let clustered_points n rng =
  (* sqrt(n) clusters of diameter 0.01, centers uniform in the unit square:
     |B(2r)| / |B(r)| blows up when r crosses the intra/inter-cluster gap. *)
  let nclusters = max 2 (int_of_float (sqrt (float_of_int n))) in
  let centers = uniform_points nclusters rng in
  Array.init n (fun i ->
      let cx, cy = centers.(i mod nclusters) in
      (cx +. Rng.float rng 0.01, cy +. Rng.float rng 0.01))

let star_points n rng =
  (* One dense core plus a few distant satellites at a single scale; the ball
     around the hub jumps from O(1) to n when the radius crosses the spoke
     length. *)
  Array.init n (fun i ->
      if i = 0 then (0.5, 0.5)
      else if i mod 16 = 0 then
        let ang = Rng.float rng 6.28318 in
        (0.5 +. (0.45 *. cos ang), 0.5 +. (0.45 *. sin ang))
      else (0.5 +. Rng.float rng 0.001, 0.5 +. Rng.float rng 0.001))

let random_metric n rng =
  (* Uniform random edge weights in [1,2]: any such matrix satisfies the
     triangle inequality (1+1 >= 2) and has essentially no growth structure. *)
  let m = Array.make_matrix n n 0. in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let d = 1.0 +. Rng.float rng 1.0 in
      m.(i).(j) <- d;
      m.(j).(i) <- d
    done
  done;
  Metric.of_matrix m

let generate kind ~n ~rng =
  if n <= 0 then invalid_arg "Topology.generate: n must be positive";
  match kind with
  | Uniform_square -> Metric.of_points (uniform_points n rng)
  | Uniform_torus -> Metric.of_points_torus ~side:1.0 (uniform_points n rng)
  | Grid -> Metric.of_points (grid_points n)
  | Ring -> ring_metric n
  | Clustered -> Metric.of_points (clustered_points n rng)
  | Star -> Metric.of_points (star_points n rng)
  | Random_metric -> random_metric n rng
