(** Weighted undirected graphs and shortest-path metrics.

    Used by the transit-stub generator: the physical topology is a graph and
    the network metric is its shortest-path distance, as in the transit-stub
    model the paper cites (Zegura et al., Section 6.2). *)

type t

val create : int -> t
(** [create n] is an edgeless graph on vertices [0 .. n-1]. *)

val size : t -> int

val add_edge : t -> int -> int -> float -> unit
(** Undirected edge; keeps the minimum weight if the edge already exists. *)

val neighbors : t -> int -> (int * float) list

val dijkstra : t -> int -> float array
(** Single-source shortest distances ([infinity] when unreachable). *)

val all_pairs : t -> float array array
(** Shortest-path distance matrix via repeated Dijkstra. *)

val to_metric : t -> Metric.t
(** Shortest-path metric.  @raise Failure if the graph is disconnected. *)

val connected : t -> bool
