(** Finite metric spaces over points addressed by dense integer indices.

    Every protocol in this reproduction consumes distances only through this
    interface, mirroring the paper's model: a network topology induces a
    metric space satisfying the triangle inequality (Section 3).  The
    expansion property of Equation 1 ([|B(2r)| <= c |B(r)|]) holds or fails
    depending on the generator; {!expansion_estimate} measures it. *)

type t

val make : size:int -> desc:string -> dist:(int -> int -> float) -> t
(** A metric over points [0 .. size-1]. [dist] must be symmetric, and zero
    exactly on the diagonal. *)

val of_points : (float * float) array -> t
(** Euclidean metric over points in the plane. *)

val of_points_torus : side:float -> (float * float) array -> t
(** Euclidean metric with wrap-around on a [side] x [side] torus (the
    cleanest growth-restricted space: expansion constant 4 everywhere). *)

val of_matrix : float array array -> t
(** Explicit distance matrix (used for graph-induced metrics). *)

val size : t -> int

val desc : t -> string

val dist : t -> int -> int -> float

val ball : t -> int -> float -> int list
(** [ball m p r] is every point within distance [r] of [p] (including [p]).
    O(size); for verification and oracles, not protocol logic. *)

val ball_count : t -> int -> float -> int

val k_closest : t -> int -> k:int -> candidates:int list -> int list
(** The [k] candidates closest to the given point, ascending by distance. *)

val nearest_other : t -> int -> int option
(** Closest point distinct from the argument (brute force oracle). *)

val diameter : t -> sample:int -> rng:Rng.t -> float
(** Estimated diameter from [sample] random pairs (exact scan if the space
    is small). *)

val expansion_estimate : t -> samples:int -> rng:Rng.t -> float
(** Empirical expansion constant: max over sampled (point, radius) pairs of
    [|B(2r)|/|B(r)|], ignoring balls that already cover the space. *)
