(** Binary min-heap over ordered keys with attached payloads.

    Used as the discrete-event queue of the simulator and for k-closest
    trimming in the nearest-neighbor algorithm.  Keys are compared with the
    supplied comparison; ties are broken by insertion order so that the heap
    is stable, which keeps simulation runs deterministic. *)

type ('k, 'v) t

val create : cmp:('k -> 'k -> int) -> ('k, 'v) t
(** Empty heap ordered by [cmp]. *)

val length : ('k, 'v) t -> int

val is_empty : ('k, 'v) t -> bool

val push : ('k, 'v) t -> 'k -> 'v -> unit

val peek : ('k, 'v) t -> ('k * 'v) option
(** Smallest element without removing it. *)

val pop : ('k, 'v) t -> ('k * 'v) option
(** Remove and return the smallest element. *)

val pop_exn : ('k, 'v) t -> 'k * 'v
(** @raise Invalid_argument on an empty heap. *)

val clear : ('k, 'v) t -> unit

val to_sorted_list : ('k, 'v) t -> ('k * 'v) list
(** Ascending key order; destroys the heap contents. *)
