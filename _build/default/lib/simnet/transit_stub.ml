type params = {
  transit_domains : int;
  transit_size : int;
  stubs_per_transit : int;
  stub_size : int;
  intra_stub_latency : float;
  transit_latency : float;
}

let default_params =
  {
    transit_domains = 2;
    transit_size = 4;
    stubs_per_transit = 3;
    stub_size = 8;
    intra_stub_latency = 1.0;
    transit_latency = 20.0;
  }

type t = {
  metric : Metric.t;
  stub_id : int option array; (* per node: Some stub | None for transit *)
  nstubs : int;
  host_list : int list;
}

let jitter rng base = base *. (0.75 +. Rng.float rng 0.5)

let generate p ~rng =
  if p.transit_domains < 1 || p.transit_size < 1 || p.stub_size < 1 then
    invalid_arg "Transit_stub.generate";
  let n_transit = p.transit_domains * p.transit_size in
  let n_stub_domains = n_transit * p.stubs_per_transit in
  let n = n_transit + (n_stub_domains * p.stub_size) in
  let g = Graph.create n in
  let stub_id = Array.make n None in
  (* Transit backbone: ring within each domain plus a chord, and a full mesh
     of inter-domain links between domain gateways (node 0 of each). *)
  for d = 0 to p.transit_domains - 1 do
    let base = d * p.transit_size in
    for i = 0 to p.transit_size - 1 do
      let u = base + i and v = base + ((i + 1) mod p.transit_size) in
      if u <> v then Graph.add_edge g u v (jitter rng p.transit_latency)
    done;
    if p.transit_size > 2 then
      Graph.add_edge g base (base + (p.transit_size / 2)) (jitter rng p.transit_latency)
  done;
  for d1 = 0 to p.transit_domains - 1 do
    for d2 = d1 + 1 to p.transit_domains - 1 do
      Graph.add_edge g (d1 * p.transit_size) (d2 * p.transit_size)
        (jitter rng (2.0 *. p.transit_latency))
    done
  done;
  (* Stub domains: each is a star + ring around its own gateway, with an
     uplink to its transit node. *)
  let next = ref n_transit in
  let hosts = ref [] in
  let stub_counter = ref 0 in
  for t_node = 0 to n_transit - 1 do
    for _s = 1 to p.stubs_per_transit do
      let sid = !stub_counter in
      incr stub_counter;
      let members = Array.init p.stub_size (fun i -> !next + i) in
      next := !next + p.stub_size;
      Array.iter
        (fun m ->
          stub_id.(m) <- Some sid;
          hosts := m :: !hosts)
        members;
      let gw = members.(0) in
      Graph.add_edge g gw t_node (jitter rng p.transit_latency);
      for i = 1 to p.stub_size - 1 do
        Graph.add_edge g members.(i) gw (jitter rng p.intra_stub_latency);
        Graph.add_edge g members.(i)
          members.(1 + ((i + 1) mod (p.stub_size - 1)))
          (jitter rng p.intra_stub_latency)
      done
    done
  done;
  let metric = Graph.to_metric g in
  { metric; stub_id; nstubs = !stub_counter; host_list = List.rev !hosts }

let metric t = t.metric

let size t = Metric.size t.metric

let stub_of t i = t.stub_id.(i)

let same_stub t i j =
  match (t.stub_id.(i), t.stub_id.(j)) with
  | Some a, Some b -> a = b
  | _ -> false

let stub_count t = t.nstubs

let hosts t = t.host_list
