(** Cost accounting for protocol operations.

    The paper measures algorithms in network messages, application-level
    hops, and network latency/distance, ignoring local computation
    (Section 3: "Our bounds [are] in terms of network latency or network
    hops and ignore local computation").  A [Cost.t] accumulates exactly
    those three quantities; protocol code charges it on every simulated
    message send. *)

type t = { mutable messages : int; mutable hops : int; mutable latency : float }

val make : unit -> t

val zero : t -> unit
(** Reset all counters. *)

val send : t -> dist:float -> unit
(** Charge one message over a link of the given length.  Counts as one
    message, one hop and [dist] latency. *)

val message : t -> dist:float -> unit
(** Charge one message that is not on the critical path (e.g. parallel
    multicast fan-out): counts messages and latency but not hops. *)

val add : t -> t -> unit
(** [add acc x] accumulates [x] into [acc]. *)

val snapshot : t -> t

val diff : t -> t -> t
(** [diff after before]. *)

val pp : Format.formatter -> t -> unit
