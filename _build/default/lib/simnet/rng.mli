(** Deterministic splittable pseudo-random number generator (splitmix64).

    Every stochastic component of the reproduction (topologies, node IDs,
    workloads, sampling) draws from an explicit [Rng.t] so that experiments
    are reproducible from a single seed and independent streams can be split
    off without correlation. *)

type t

val create : int -> t
(** [create seed] builds a generator from a 63-bit seed. *)

val split : t -> t
(** Independent child stream; the parent advances. *)

val copy : t -> t

val int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val pick_list : t -> 'a list -> 'a
(** Uniform element of a non-empty list. *)

val exponential : t -> mean:float -> float
(** Exponentially distributed arrival gap with the given mean. *)
