(** Transit-stub internetwork model (Zegura, Calvert, Bhattacharjee).

    The topology is a small core of transit domains; each transit node hangs
    a few stub domains off it.  Intra-stub links are cheap, transit links are
    an order of magnitude more expensive, matching the latency separation
    Section 6.3 exploits.  The induced metric is the graph's shortest-path
    distance, and {!stub_of} exposes the stub-membership oracle that the
    local-branch optimization needs ("assume Tapestry nodes can detect
    whether the next hop is within the same stub"). *)

type params = {
  transit_domains : int;  (** number of transit domains *)
  transit_size : int;  (** nodes per transit domain *)
  stubs_per_transit : int;  (** stub domains per transit node *)
  stub_size : int;  (** nodes per stub domain *)
  intra_stub_latency : float;  (** mean stub-internal edge weight *)
  transit_latency : float;  (** mean transit edge / uplink weight *)
}

val default_params : params
(** 2 transit domains x 4 transit nodes, 3 stubs of 8 per transit node
    (~200 hosts), 1ms stub edges vs 20ms transit edges. *)

type t

val generate : params -> rng:Rng.t -> t

val metric : t -> Metric.t
(** Shortest-path metric over all nodes (transit + stub). *)

val size : t -> int

val stub_of : t -> int -> int option
(** Stub-domain id of a node, or [None] for transit nodes. *)

val same_stub : t -> int -> int -> bool

val stub_count : t -> int

val hosts : t -> int list
(** Indices of stub (host) nodes — the ones that participate in the overlay;
    transit nodes are routers only. *)
