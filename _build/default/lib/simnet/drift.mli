(** A time-varying Euclidean metric for the continual-optimization
    experiments (paper Section 6.4: "network distance can change over time,
    potentially thwarting our efforts to provide locally optimal routes").

    Points live on a unit torus and random-walk when {!advance}d; {!metric}
    returns a live view, so distances measured later differ from distances
    cached earlier.  Staying Euclidean keeps the triangle inequality exact
    at every instant. *)

type t

val create : n:int -> rng:Rng.t -> t

val metric : t -> Metric.t
(** Live view: reads current positions on every call. *)

val advance : t -> rng:Rng.t -> magnitude:float -> unit
(** Random-walk every point by up to [magnitude] in each coordinate
    (wrapping).  [magnitude] 0.05–0.2 models route reconfigurations; the
    space stays growth-restricted throughout. *)

val snapshot : t -> Metric.t
(** Frozen copy of the current distances (for oracles). *)
