type t = { mutable messages : int; mutable hops : int; mutable latency : float }

let make () = { messages = 0; hops = 0; latency = 0. }

let zero t =
  t.messages <- 0;
  t.hops <- 0;
  t.latency <- 0.

let send t ~dist =
  t.messages <- t.messages + 1;
  t.hops <- t.hops + 1;
  t.latency <- t.latency +. dist

let message t ~dist =
  t.messages <- t.messages + 1;
  t.latency <- t.latency +. dist

let add acc x =
  acc.messages <- acc.messages + x.messages;
  acc.hops <- acc.hops + x.hops;
  acc.latency <- acc.latency +. x.latency

let snapshot t = { messages = t.messages; hops = t.hops; latency = t.latency }

let diff a b =
  { messages = a.messages - b.messages; hops = a.hops - b.hops; latency = a.latency -. b.latency }

let pp ppf t =
  Format.fprintf ppf "msgs=%d hops=%d latency=%.3f" t.messages t.hops t.latency
