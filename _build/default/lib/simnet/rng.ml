type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix (Int64.of_int seed) }

let int64 t =
  t.state <- Int64.add t.state golden;
  mix t.state

let split t =
  let child_seed = int64 t in
  { state = mix child_seed }

let copy t = { state = t.state }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let r = Int64.to_int (Int64.shift_right_logical (int64 t) 1) land max_int in
  r mod bound

let float t bound =
  (* 53 random bits scaled to [0, 1), as in the stdlib implementation. *)
  let bits = Int64.to_int (Int64.shift_right_logical (int64 t) 11) in
  bound *. (float_of_int bits /. 9007199254740992.0)

let bool t = Int64.logand (int64 t) 1L = 1L

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int t (Array.length a))

let pick_list t l =
  match l with
  | [] -> invalid_arg "Rng.pick_list: empty list"
  | _ -> List.nth l (int t (List.length l))

let exponential t ~mean =
  let u = float t 1.0 in
  let u = if u <= 0.0 then epsilon_float else u in
  -.mean *. log u
