lib/simnet/graph.ml: Array Heap List Metric
