lib/simnet/heap.mli:
