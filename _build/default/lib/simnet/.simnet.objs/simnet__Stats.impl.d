lib/simnet/stats.ml: Array Buffer Float Format List Printf String
