lib/simnet/metric.mli: Rng
