lib/simnet/transit_stub.mli: Metric Rng
