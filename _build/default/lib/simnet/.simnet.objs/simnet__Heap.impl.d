lib/simnet/heap.ml: Array List
