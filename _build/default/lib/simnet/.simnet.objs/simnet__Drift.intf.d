lib/simnet/drift.mli: Metric Rng
