lib/simnet/fiber.mli:
