lib/simnet/graph.mli: Metric
