lib/simnet/cost.mli: Format
