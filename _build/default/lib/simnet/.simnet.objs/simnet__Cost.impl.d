lib/simnet/cost.ml: Format
