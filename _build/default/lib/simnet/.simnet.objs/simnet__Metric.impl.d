lib/simnet/metric.ml: Array Rng
