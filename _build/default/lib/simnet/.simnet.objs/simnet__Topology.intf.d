lib/simnet/topology.mli: Metric Rng
