lib/simnet/transit_stub.ml: Array Graph List Metric Rng
