lib/simnet/rng.mli:
