lib/simnet/topology.ml: Array Metric Rng
