lib/simnet/fiber.ml: Effect Heap List
