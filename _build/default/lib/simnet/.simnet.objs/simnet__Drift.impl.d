lib/simnet/drift.ml: Array Float Metric Rng
