type t = { xs : float array; ys : float array }

let create ~n ~rng =
  {
    xs = Array.init n (fun _ -> Rng.float rng 1.0);
    ys = Array.init n (fun _ -> Rng.float rng 1.0);
  }

let wrap v =
  let v = Float.rem v 1.0 in
  if v < 0. then v +. 1.0 else v

let torus_gap a b =
  let d = abs_float (a -. b) in
  min d (1.0 -. d)

let metric t =
  let dist i j =
    let dx = torus_gap t.xs.(i) t.xs.(j) in
    let dy = torus_gap t.ys.(i) t.ys.(j) in
    sqrt ((dx *. dx) +. (dy *. dy))
  in
  Metric.make ~size:(Array.length t.xs) ~desc:"drifting-torus" ~dist

let advance t ~rng ~magnitude =
  for i = 0 to Array.length t.xs - 1 do
    t.xs.(i) <- wrap (t.xs.(i) +. (Rng.float rng (2. *. magnitude)) -. magnitude);
    t.ys.(i) <- wrap (t.ys.(i) +. (Rng.float rng (2. *. magnitude)) -. magnitude)
  done

let snapshot t =
  let pts = Array.init (Array.length t.xs) (fun i -> (t.xs.(i), t.ys.(i))) in
  Metric.of_points_torus ~side:1.0 pts
