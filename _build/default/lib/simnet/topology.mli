(** Point-set / metric generators for the experiments.

    Growth-restricted generators ({!uniform_square}, {!uniform_torus},
    {!grid}, {!ring}) satisfy the paper's Equation 1 with a small constant;
    {!clustered}, {!star} and {!random_metric} deliberately violate it so the
    general-metric claims (Section 7) and robustness observations
    (Section 6.2) can be exercised. *)

type kind =
  | Uniform_square  (** i.i.d. uniform in a unit square; c ~ 4 away from edges *)
  | Uniform_torus  (** i.i.d. uniform on a unit torus; cleanest expansion *)
  | Grid  (** regular sqrt(n) x sqrt(n) lattice *)
  | Ring  (** n points evenly spaced on a circle (1-D growth) *)
  | Clustered  (** tight clusters far apart: large expansion constant *)
  | Star  (** one hub, all points near it at two scales: pathological *)
  | Random_metric  (** uniform random distances, triangle-closed; general metric *)

val kind_name : kind -> string

val all_kinds : kind list

val generate : kind -> n:int -> rng:Rng.t -> Metric.t
(** A metric over [n] points of the requested kind.  Deterministic given the
    rng state. *)
