(** Pastry (Rowstron & Druschel, Middleware 2001) — the Table 1 row
    "loosely based on the PRR scheme".

    Prefix routing over the same digit identifiers as Tapestry, plus a
    {e leaf set} of the numerically closest nodes that gives deterministic
    convergence.  The overlay construction is proximity-aware (each table
    slot prefers the closest known candidate), but object location is
    DHT-style — the object lives at the numerically closest node to its key
    and queries route all the way there — so, as the paper notes, Pastry
    "does not provide the same stretch as the PRR scheme in object
    location".  That contrast is exactly what E2/E13 measure. *)

type node

type t

val create : ?seed:int -> ?leaf_set:int -> Tapestry.Config.t -> Simnet.Metric.t -> t
(** Digit parameters come from the Tapestry config ([base], [id_digits]);
    [leaf_set] is the total leaf-set size (default 8, half per side). *)

val cost : t -> Simnet.Cost.t

val bootstrap : t -> addr:int -> node

val join : t -> gateway:node -> addr:int -> node
(** Pastry join: route toward the new ID, seed routing-table rows from the
    nodes met on the path, adopt the numerically closest node's leaf set,
    then announce to everyone learned. *)

val nodes : t -> node list

val random_node : t -> node

val node_id : node -> Tapestry.Node_id.t

val node_addr : node -> int

val route : t -> from:node -> Tapestry.Node_id.t -> node * int
(** Route to the live node numerically closest to the key; returns it and
    the hop count, charging costs along the way. *)

val publish : t -> server:node -> Tapestry.Node_id.t -> unit
(** Store an object pointer at the key's numeric root. *)

val locate : t -> from:node -> Tapestry.Node_id.t -> node option
(** Route to the root, follow the pointer to the server (charging the
    forward hop). *)

val table_size : node -> int

val check_routes_converge : t -> samples:int -> bool
(** Every sampled key routes to the same node from every source. *)
