(** PRR v.0 — the static sampling scheme for general metric spaces
    (Section 7, Theorem 7).

    For each level [i] in [1 .. log n] and trial [j] in [0 .. c log n), the
    sample set [S_{i,j}] contains each node independently with probability
    [2^i / n] (with [S_{i,j} \subseteq S_{i+1,j}] enforced by nested coin
    flips, as the theorem's proof requires); [S_{0,0}] is a single random
    node.  Each node stores its closest member of every set; each set member
    stores the objects of the nodes that point to it.

    A query for object Y held at node v probes the querier's representatives
    from the densest level downward and stops at the first that knows Y;
    Theorem 7 bounds the distance of that representative by
    [d(X,Y) log n] w.h.p., giving polylog stretch on {e any} metric. *)

type t

val build : ?seed:int -> ?c:int -> Simnet.Metric.t -> t
(** Sample the sets and build every node's representative table.  [c] is the
    per-level trial multiplier (default 3). *)

val cost : t -> Simnet.Cost.t

val levels : t -> int

val width : t -> int
(** Trials per level, [c log n]. *)

val publish : t -> server_addr:int -> guid_key:int -> unit
(** Register an object held at [server_addr] with all of the server's
    representatives. *)

val locate : t -> client_addr:int -> guid_key:int -> int option
(** Top-down probe; returns the server address if found.  Charges one round
    trip per probed representative plus the final fetch hop. *)

val space_per_node : t -> float
(** Mean representative-table plus inverted-list entries per node — the
    O(log^2 n) space column of Table 1. *)
