(** Thorup-Zwick approximate distance oracles (STOC 2001), adapted to object
    location — the improvement the paper points at for Section 7: "our
    result for general metrics can be improved using results of Thorup and
    Zwick to use only O(n log n) space".

    The classic k-level construction: [A_0 = all nodes], each [A_{i+1}] a
    [n^{-1/k}]-sample of [A_i]; node v keeps its pivots [p_i(v)] (closest
    member of [A_i]) and its {e bunch} [B(v)] — every w in [A_i \ A_{i+1}]
    closer to v than [p_{i+1}(v)].  Expected bunch size is [k n^{1/k}], so
    k = log n gives O(log n) entries per node and O(n log n) total space on
    {e any} metric, with stretch at most 2k-1.

    Object location: a server registers its objects with its pivots and
    bunch; a client probes its own pivots and bunch.  The Thorup-Zwick
    distance-query argument guarantees the two sets intersect at a node w
    with [d(u,w) + d(w,v) <= (2k-1) d(u,v)]. *)

type t

val build : ?seed:int -> ?k:int -> Simnet.Metric.t -> t
(** [k] levels (default [ceil(log2 n)], the paper's regime). *)

val cost : t -> Simnet.Cost.t

val k : t -> int

val space_per_node : t -> float
(** Mean pivots + bunch entries + inverted object registrations per node. *)

val approx_distance : t -> int -> int -> float
(** The classic oracle query; at most [2k-1] times the true distance. *)

val publish : t -> server_addr:int -> guid_key:int -> unit

val locate : t -> client_addr:int -> guid_key:int -> int option
(** Probe the client's pivots and bunch (charging round trips); returns the
    server address and charges the final fetch hop. *)
