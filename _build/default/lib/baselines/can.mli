(** CAN — Content-Addressable Network (Ratnasamy et al., SIGCOMM 2001), the
    Table 1 row with O(d n^{1/d}) routing.

    Nodes own zones of a d-dimensional unit torus; a joining node splits the
    zone owning a random point; objects hash to points and live with the
    zone owner; routing is greedy through zone neighbors.  Like Chord it is
    stretch-oblivious: hops are between random metric-space locations.
    Zone merge on departure is not implemented (not needed for any Table 1
    column we measure); see DESIGN.md. *)

type node

type t

val create : ?seed:int -> ?dims:int -> Simnet.Metric.t -> t
(** [dims] defaults to 2 (the classic deployment). *)

val cost : t -> Simnet.Cost.t

val bootstrap : t -> addr:int -> node
(** First node: owns the whole space. *)

val join : t -> gateway:node -> addr:int -> node
(** Split the zone owning a random point. *)

val nodes : t -> node list

val random_node : t -> node

val node_addr : node -> int

val owner_of : t -> float array -> node
(** Zone owner of a point (oracle scan; test use). *)

val route : t -> from:node -> float array -> node * int
(** Greedy-route to the owner of a point, charging per hop. *)

val point_of_key : t -> int -> float array
(** Deterministic hash of an integer key to a point of the space. *)

val publish : t -> server:node -> guid_key:int -> unit

val locate : t -> from:node -> guid_key:int -> node option

val table_size : node -> int
(** Neighbor count (CAN's O(d) space claim). *)

val check_zones_partition : t -> samples:int -> bool
(** Every sampled point has exactly one owner (zones tile the space). *)
