(** The centralized-directory strawman from the paper's introduction.

    One directory node records every replica; clients query it and are
    forwarded to a replica.  Deterministic and simple, but query latency is
    proportional to the client-directory distance regardless of how close
    the object is — the stretch pathology that motivates Tapestry — and the
    directory is a single point of load and failure. *)

type t

val create : ?seed:int -> directory_addr:int -> Simnet.Metric.t -> t

val cost : t -> Simnet.Cost.t

val directory_addr : t -> int

val publish : t -> server_addr:int -> guid_key:int -> unit

val unpublish : t -> server_addr:int -> guid_key:int -> unit

val locate : t -> client_addr:int -> guid_key:int -> int option
(** Returns the replica address the directory forwards to (the recorded
    replica closest to the client).  Charges client->directory->replica. *)

val directory_entries : t -> int
(** Directory size: all load concentrates here. *)
