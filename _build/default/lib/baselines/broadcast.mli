(** The publish-everywhere strawman from the paper's introduction.

    Every node stores the location of every object, so queries go straight
    to the nearest replica (stretch 1) — at the price of Theta(n) messages
    per publish, Theta(n) state per object, and full membership knowledge. *)

type t

val create : n:int -> Simnet.Metric.t -> t

val cost : t -> Simnet.Cost.t

val publish : t -> server_addr:int -> guid_key:int -> unit
(** Broadcasts the location to all [n] nodes. *)

val locate : t -> client_addr:int -> guid_key:int -> int option
(** Direct hop to the nearest replica. *)

val state_per_node : t -> int
(** Location entries each node must hold. *)
