(** Chord (Stoica et al., SIGCOMM 2001) — the locality-oblivious DHT row of
    Table 1.

    A full implementation: an [2^m]-key ring with successor lists, finger
    tables, recursive lookups, dynamic join (O(log^2 n) messages) and
    periodic stabilization.  Object pointers live at the key's successor.
    Lookup hops are O(log n) but each hop is an arbitrary metric-space jump,
    which is exactly why Chord's stretch grows when the target is nearby —
    the comparison the paper's Table 1 and introduction draw. *)

type node

type t

val create : ?seed:int -> m:int -> succ_list:int -> Simnet.Metric.t -> t
(** Ring modulo [2^m] ([m <= 30]); each node keeps [succ_list] successors. *)

val cost : t -> Simnet.Cost.t

val bootstrap : t -> addr:int -> node
(** First node of the ring. *)

val join : t -> gateway:node -> addr:int -> node
(** Dynamic join through [gateway]: lookup the key's successor, splice into
    the ring, initialize fingers by lookups, then notify. *)

val stabilize_all : t -> rounds:int -> unit
(** Run the periodic stabilization + fix-fingers protocol on every node. *)

val node_key : node -> int

val node_addr : node -> int

val nodes : t -> node list

val random_node : t -> node

val lookup : t -> from:node -> int -> node * int
(** Recursive lookup: route to the successor of a key; returns it and the
    hop count, charging message costs along the way. *)

val publish : t -> server:node -> guid_key:int -> unit
(** Store an object pointer for [guid_key] at its successor. *)

val locate : t -> from:node -> guid_key:int -> node option
(** Route to the key's successor and follow its pointer; returns the server.
    Charges the lookup path plus the successor-to-server forward. *)

val table_size : node -> int
(** Fingers + successors + predecessor entries (space accounting). *)

val check_ring : t -> bool
(** Every node's successor chain covers the whole ring (test oracle). *)
