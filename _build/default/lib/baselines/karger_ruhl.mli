(** Karger-Ruhl-style nearest-neighbor search (STOC 2002), the approach the
    paper's Section 3 compares its own algorithm against.

    Idealized reconstruction of their sampling scheme for growth-restricted
    metrics: every node stores, for each scale level i, a uniform sample of
    the nodes inside its 2^i-ball ("finger lists", here built by an oracle —
    maintaining them dynamically is precisely what KR's permutation
    machinery does).  A query repeatedly halves its distance to the target
    by sampling from the smallest ball that safely contains the target's
    neighborhood.

    The comparison the paper makes (Section 3, "Techniques"): both schemes
    take O(log n) halving hops, but KR's hops sample from balls around the
    {e current} node — jumps of geometrically shrinking but initially large
    diameter — while the paper's level-list descent pays geometrically
    decreasing distances tied to prefix levels, and reuses the object
    -location data structure (no extra space).  E13 measures exactly those
    three columns: hops, network distance, space. *)

type t

val build : ?seed:int -> ?sample_size:int -> Simnet.Metric.t -> t
(** [sample_size] per (node, level); default 3 ceil(log2 n). *)

val space_per_node : t -> float
(** Stored finger entries per node — O(log^2 n). *)

type answer = {
  nearest : int;  (** point index of the reported nearest neighbor *)
  hops : int;  (** nodes visited *)
  messages : int;  (** samples probed *)
  distance : float;  (** network distance traveled by the query *)
}

val query : t -> start:int -> target:int -> answer
(** Find the nearest other node to [target], entering the structure at
    [start] (both are point indices). *)
