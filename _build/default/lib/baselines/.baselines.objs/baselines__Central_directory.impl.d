lib/baselines/central_directory.ml: Hashtbl List Option Simnet
