lib/baselines/can.ml: Array Hashtbl List Option Simnet
