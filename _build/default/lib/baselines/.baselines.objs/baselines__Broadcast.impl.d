lib/baselines/broadcast.ml: Hashtbl List Option Simnet
