lib/baselines/can.mli: Simnet
