lib/baselines/thorup_zwick.ml: Array Hashtbl List Option Simnet
