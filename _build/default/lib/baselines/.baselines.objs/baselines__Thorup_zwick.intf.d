lib/baselines/thorup_zwick.mli: Simnet
