lib/baselines/pastry.mli: Simnet Tapestry
