lib/baselines/chord.mli: Simnet
