lib/baselines/karger_ruhl.ml: Array Simnet
