lib/baselines/prr_v0.ml: Array Hashtbl List Option Simnet
