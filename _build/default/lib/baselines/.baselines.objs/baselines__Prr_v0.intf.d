lib/baselines/prr_v0.mli: Simnet
