lib/baselines/pastry.ml: Array Hashtbl List Option Simnet Tapestry
