lib/baselines/karger_ruhl.mli: Simnet
