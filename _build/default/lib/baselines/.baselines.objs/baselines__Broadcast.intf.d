lib/baselines/broadcast.mli: Simnet
