lib/baselines/central_directory.mli: Simnet
