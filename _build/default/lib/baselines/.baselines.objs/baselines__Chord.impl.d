lib/baselines/chord.ml: Array Hashtbl List Option Simnet
