(** Object location (Section 2.2, Figure 3).

    A query routes from the client toward a root of the GUID along primary
    neighbor links, stopping at the first node holding an object pointer;
    it then routes through the mesh to the replica server closest to that
    node.  If the walk reaches the root without finding a pointer, the
    object does not exist — unless the root is mid-insertion, in which case
    the query is bounced to the pre-insertion surrogate and retried with the
    new node masked out (Figure 10). *)

type result = {
  server : Node.t option;  (** located replica server, if any *)
  pointer_node : Node.t option;  (** node whose pointer satisfied the query *)
  walk : Node.t list;  (** nodes visited on the way toward the root *)
  redirects : int;  (** Figure 10 insertion bounces taken *)
}

val locate :
  ?variant:Route.variant ->
  ?root_idx:int ->
  Network.t ->
  client:Node.t ->
  Node_id.t ->
  result
(** Locate a replica of the GUID starting from [client].  [root_idx] selects
    the root-set member to route toward (default: random, as the paper
    prescribes at query start). *)

val exists : Network.t -> client:Node.t -> Node_id.t -> bool
(** Convenience: does a locate from [client] find a live replica? *)
