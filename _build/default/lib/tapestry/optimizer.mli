(** Continual optimization (Section 6.4).

    When underlying network distances change (BGP reconfiguration, policy
    shifts, router failures), the locally optimal routes cached in routing
    tables go stale.  The paper sketches four escalating heuristics; all are
    implemented here and compared in the ablation experiment E14:

    - {!rotate_primaries}: re-measure each slot's R entries and promote the
      now-closest one (the paper's "adjust which of these neighbors is the
      primary");
    - {!share_tables}: each node ships its level-i table to its level-i
      neighbors, who re-measure and adopt closer entries (the paper's
      "local sharing of information");
    - {!rebuild_level}: rebuild one table level from the level-(i+1)
      neighbors via one GetNextList step (the paper's "optimize one level
      at a time" using the recorded contact sets);
    - {!full_rebuild}: periodic repetition of the complete nearest-neighbor
      algorithm.

    Every heuristic finishes by re-routing the object pointers whose first
    hop changed (Section 4.2), so Property 4 follows the new routes. *)

type stats = {
  nodes_touched : int;
  primaries_changed : int;
  pointers_moved : int;
  cost : Simnet.Cost.t;  (** total maintenance traffic *)
}

val rotate_primaries : Network.t -> stats
(** Cheapest: per slot, ping the existing R entries and re-sort. *)

val share_tables : Network.t -> stats
(** Medium: gossip each level's entries to same-level neighbors. *)

val rebuild_level : Network.t -> level:int -> stats
(** Rebuild one level everywhere from level-(+1) contacts. *)

val full_rebuild : Network.t -> stats
(** Most thorough: re-run the Section 3 acquisition for every node. *)
