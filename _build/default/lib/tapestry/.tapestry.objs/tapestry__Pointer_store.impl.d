lib/tapestry/pointer_store.ml: Hashtbl List Node_id
