lib/tapestry/static_build.mli: Config Network Simnet
