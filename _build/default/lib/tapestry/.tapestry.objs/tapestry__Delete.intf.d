lib/tapestry/delete.mli: Network Node Node_id
