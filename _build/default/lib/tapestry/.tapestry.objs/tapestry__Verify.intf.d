lib/tapestry/verify.mli: Network Node_id
