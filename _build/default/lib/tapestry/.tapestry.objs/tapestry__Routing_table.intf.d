lib/tapestry/routing_table.mli: Config Format Node_id
