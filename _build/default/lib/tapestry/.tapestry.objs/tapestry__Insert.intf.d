lib/tapestry/insert.mli: Config Nearest_neighbor Network Node Node_id Simnet
