lib/tapestry/optimizer.ml: Config List Maintenance Multicast Nearest_neighbor Network Node Node_id Pointer_store Route Routing_table Simnet
