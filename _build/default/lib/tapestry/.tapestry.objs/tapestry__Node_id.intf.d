lib/tapestry/node_id.mli: Hashtbl Map Set Simnet
