lib/tapestry/network.ml: Array Config Fun Id_index List Node Node_id Routing_table Simnet
