lib/tapestry/locate.ml: Config List Network Node Node_id Option Pointer_store Route Simnet
