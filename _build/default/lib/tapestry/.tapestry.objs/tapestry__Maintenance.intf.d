lib/tapestry/maintenance.mli: Network Node Node_id Pointer_store Route
