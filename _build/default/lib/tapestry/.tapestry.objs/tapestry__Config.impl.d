lib/tapestry/config.ml: Format
