lib/tapestry/nearest_neighbor.mli: Network Node
