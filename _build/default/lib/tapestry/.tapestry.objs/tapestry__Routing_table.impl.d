lib/tapestry/routing_table.ml: Array Config Format List Node_id String
