lib/tapestry/verify.ml: Config List Locate Network Node Node_id Pointer_store Route Simnet
