lib/tapestry/maintenance.ml: Config List Network Node Node_id Pointer_store Publish Route
