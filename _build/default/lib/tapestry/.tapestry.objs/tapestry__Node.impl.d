lib/tapestry/node.ml: Format Node_id Pointer_store Routing_table
