lib/tapestry/insert.ml: Array Config List Maintenance Multicast Nearest_neighbor Network Node Node_id Route Routing_table Simnet
