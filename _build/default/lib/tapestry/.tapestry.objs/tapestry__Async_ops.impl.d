lib/tapestry/async_ops.ml: Config Delete List Locate Maintenance Network Node Node_id Pointer_store Publish Route Routing_table Simnet
