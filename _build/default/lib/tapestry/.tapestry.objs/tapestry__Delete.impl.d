lib/tapestry/delete.ml: Array Config List Maintenance Network Node Node_id Pointer_store Publish Route Routing_table
