lib/tapestry/node.mli: Config Format Node_id Pointer_store Routing_table
