lib/tapestry/publish.mli: Network Node Node_id Route
