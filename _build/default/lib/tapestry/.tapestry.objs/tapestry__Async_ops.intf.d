lib/tapestry/async_ops.mli: Locate Network Node Node_id Route Simnet
