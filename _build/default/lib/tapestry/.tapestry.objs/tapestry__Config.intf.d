lib/tapestry/config.mli: Format
