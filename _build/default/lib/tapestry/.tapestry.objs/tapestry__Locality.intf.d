lib/tapestry/locality.mli: Locate Network Node Node_id
