lib/tapestry/locate.mli: Network Node Node_id Route
