lib/tapestry/network.mli: Config Id_index Node Node_id Simnet
