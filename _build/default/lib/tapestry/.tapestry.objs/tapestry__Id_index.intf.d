lib/tapestry/id_index.mli: Node_id
