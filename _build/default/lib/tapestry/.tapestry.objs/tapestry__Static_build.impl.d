lib/tapestry/static_build.ml: Array List Network Node Node_id Routing_table
