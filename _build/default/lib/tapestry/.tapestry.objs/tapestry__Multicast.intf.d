lib/tapestry/multicast.mli: Network Node
