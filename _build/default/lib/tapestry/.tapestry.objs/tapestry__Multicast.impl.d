lib/tapestry/multicast.ml: Array Config List Network Node Node_id Routing_table Simnet
