lib/tapestry/locality.ml: Config List Locate Network Node Node_id Pointer_store Publish Route
