lib/tapestry/pointer_store.mli: Node_id
