lib/tapestry/route.mli: Network Node Node_id
