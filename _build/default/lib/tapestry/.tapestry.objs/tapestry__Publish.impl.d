lib/tapestry/publish.ml: Config List Network Node Node_id Pointer_store Route Routing_table
