lib/tapestry/nearest_neighbor.ml: Array Config List Network Node Node_id Option Route Routing_table
