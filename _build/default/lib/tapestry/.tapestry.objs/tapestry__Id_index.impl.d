lib/tapestry/id_index.ml: Array List Node_id
