lib/tapestry/node_id.ml: Array Hashtbl Printf Simnet Stdlib String
