lib/tapestry/route.ml: Config List Network Node Node_id Option Routing_table Simnet
