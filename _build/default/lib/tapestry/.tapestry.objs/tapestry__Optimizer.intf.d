lib/tapestry/optimizer.mli: Network Simnet
