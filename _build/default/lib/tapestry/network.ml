type t = {
  config : Config.t;
  metric : Simnet.Metric.t;
  nodes : Node.t Node_id.Tbl.t;
  index : Id_index.t;
  rng : Simnet.Rng.t;
  cost : Simnet.Cost.t;
  mutable clock : float;
}

let create ?(seed = 42) config metric =
  (match Config.validate config with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Network.create: " ^ msg));
  {
    config;
    metric;
    nodes = Node_id.Tbl.create 64;
    index = Id_index.create ~base:config.base;
    rng = Simnet.Rng.create seed;
    cost = Simnet.Cost.make ();
    clock = 0.;
  }

let dist t (a : Node.t) (b : Node.t) = Simnet.Metric.dist t.metric a.addr b.addr

let charge t a b = Simnet.Cost.send t.cost ~dist:(dist t a b)

let charge_aside t a b = Simnet.Cost.message t.cost ~dist:(dist t a b)

let measure t f =
  let before = Simnet.Cost.snapshot t.cost in
  let r = f () in
  (r, Simnet.Cost.diff (Simnet.Cost.snapshot t.cost) before)

let without_charging t f =
  let s = Simnet.Cost.snapshot t.cost in
  Fun.protect
    ~finally:(fun () ->
      t.cost.Simnet.Cost.messages <- s.Simnet.Cost.messages;
      t.cost.Simnet.Cost.hops <- s.Simnet.Cost.hops;
      t.cost.Simnet.Cost.latency <- s.Simnet.Cost.latency)
    f

let find t id = Node_id.Tbl.find_opt t.nodes id

let find_exn t id =
  match find t id with
  | Some n -> n
  | None -> invalid_arg ("Network.find_exn: unknown node " ^ Node_id.to_string id)

let register t (node : Node.t) =
  if Node_id.Tbl.mem t.nodes node.id then
    invalid_arg "Network.register: duplicate node id";
  if node.addr < 0 || node.addr >= Simnet.Metric.size t.metric then
    invalid_arg "Network.register: addr outside the metric space";
  Node_id.Tbl.replace t.nodes node.id node;
  Id_index.add t.index node.id

let mark_dead t (node : Node.t) =
  if Node.is_alive node then begin
    node.status <- Dead;
    Id_index.remove t.index node.id
  end

let fold_nodes t f init = Node_id.Tbl.fold (fun _ n acc -> f acc n) t.nodes init

let alive_nodes t =
  fold_nodes t (fun acc n -> if Node.is_alive n then n :: acc else acc) []

let core_nodes t =
  fold_nodes t (fun acc n -> if Node.is_core n then n :: acc else acc) []

let node_count t = Id_index.size t.index

let random_alive t =
  match alive_nodes t with
  | [] -> invalid_arg "Network.random_alive: no alive node"
  | ns -> Simnet.Rng.pick_list t.rng ns

let fresh_id t =
  let rec go tries =
    if tries > 1000 then failwith "Network.fresh_id: namespace exhausted";
    let id = Node_id.random ~base:t.config.base ~len:t.config.id_digits t.rng in
    if Node_id.Tbl.mem t.nodes id then go (tries + 1) else id
  in
  go 0

(* --- link maintenance --- *)

let offer_link t ~owner ~level ~candidate =
  let o = (owner : Node.t) and c = (candidate : Node.t) in
  if Node_id.equal o.id c.id then false
  else if Node_id.common_prefix_len o.id c.id < level then false
  else if
    (* nodes that announced departure (or died) take no new links: their
       existing entries are marked "leaving" and serve only in-flight
       traffic (Section 5.1) *)
    match c.status with Node.Leaving | Node.Dead -> true | _ -> false
  then false
  else begin
    let d = dist t o c in
    match Routing_table.consider o.table ~level ~candidate:c.id ~dist:d with
    | `Rejected | `Known -> false
    | `Added evicted ->
        Routing_table.add_backpointer c.table ~level o.id;
        (match evicted with
        | Some old_id -> (
            match find t old_id with
            | Some old_node ->
                Routing_table.remove_backpointer old_node.Node.table ~level o.id
            | None -> ())
        | None -> ());
        true
  end

let offer_link_all_levels t ~owner ~candidate =
  let o = (owner : Node.t) and c = (candidate : Node.t) in
  let shared = Node_id.common_prefix_len o.id c.id in
  let added = ref 0 in
  for level = 0 to min shared (t.config.id_digits - 1) do
    if level <= shared && offer_link t ~owner ~level ~candidate then incr added
  done;
  !added

let drop_link t ~owner ~target =
  let o = (owner : Node.t) in
  let levels = Routing_table.remove o.table target in
  match find t target with
  | Some tgt ->
      List.iter
        (fun level -> Routing_table.remove_backpointer tgt.Node.table ~level o.id)
        levels
  | None -> ()

(* --- verification oracles --- *)

let check_property1 t =
  let violations = ref [] in
  let core = core_nodes t in
  let core_index = Id_index.create ~base:t.config.base in
  List.iter (fun (n : Node.t) -> Id_index.add core_index n.id) core;
  List.iter
    (fun (n : Node.t) ->
      let prefix = Node_id.digits n.id in
      for level = 0 to t.config.id_digits - 1 do
        for digit = 0 to t.config.base - 1 do
          if
            Routing_table.is_hole n.table ~level ~digit
            && Id_index.exists_extension core_index ~prefix ~len:level ~digit
          then violations := (n, level, digit) :: !violations
        done
      done)
    core;
  !violations

let check_property2 t ~total ~optimal =
  let core = core_nodes t in
  let core_index = Id_index.create ~base:t.config.base in
  List.iter (fun (n : Node.t) -> Id_index.add core_index n.id) core;
  List.iter
    (fun (n : Node.t) ->
      let prefix = Node_id.digits n.id in
      for level = 0 to t.config.id_digits - 1 do
        for digit = 0 to t.config.base - 1 do
          if digit <> Node_id.digit n.id level then begin
            match Routing_table.primary n.table ~level ~digit with
            | None -> ()
            | Some prim ->
                (* True closest (prefix, digit) node by brute force. *)
                let cands = Id_index.ids_with_prefix core_index ~prefix ~len:level in
                let cands =
                  List.filter
                    (fun id ->
                      Node_id.digit id level = digit && not (Node_id.equal id n.id))
                    cands
                in
                let best =
                  List.fold_left
                    (fun acc id ->
                      let c = find_exn t id in
                      let d = dist t n c in
                      match acc with
                      | None -> Some (id, d)
                      | Some (_, bd) -> if d < bd then Some (id, d) else acc)
                    None cands
                in
                (match best with
                | None -> ()
                | Some (best_id, best_d) ->
                    incr total;
                    let prim_d =
                      match find t prim.Routing_table.id with
                      | Some p -> dist t n p
                      | None -> infinity
                    in
                    if Node_id.equal prim.Routing_table.id best_id || prim_d <= best_d
                    then incr optimal)
          end
        done
      done)
    core;
  ()

let true_nearest_neighbor t (node : Node.t) =
  List.fold_left
    (fun acc (other : Node.t) ->
      if Node_id.equal other.id node.id then acc
      else
        match acc with
        | None -> Some other
        | Some best -> if dist t node other < dist t node best then Some other else acc)
    None (alive_nodes t)

let surrogate_oracle t guid =
  (* Digit-by-digit refinement with wrap-around among core nodes; by
     Theorem 2 this is the unique root surrogate routing must reach. *)
  let core_index = Id_index.create ~base:t.config.base in
  List.iter (fun (n : Node.t) -> Id_index.add core_index n.id) (core_nodes t);
  if Id_index.size core_index = 0 then
    invalid_arg "Network.surrogate_oracle: empty network";
  let prefix = Array.make t.config.id_digits 0 in
  let rec refine level =
    if level = t.config.id_digits then
      find_exn t (Node_id.make (Array.copy prefix))
    else begin
      let want = Node_id.digit guid level in
      let rec scan tries =
        if tries = t.config.base then
          invalid_arg "Network.surrogate_oracle: no extension (corrupt index)"
        else begin
          let j = (want + tries) mod t.config.base in
          if Id_index.exists_extension core_index ~prefix ~len:level ~digit:j then j
          else scan (tries + 1)
        end
      in
      prefix.(level) <- scan 0;
      refine (level + 1)
    end
  in
  refine 0
