type variant = Native | Prr_like

type info = { root : Node.t; path : Node.t list; surrogate_hops : int }

let default_on_dead net ~owner ~dead = Network.drop_link net ~owner ~target:dead

(* Pick the first alive entry of a slot, lazily purging dead ones (each purge
   costs a probe message: the paper's timeout-based failure detection). *)
let rec first_alive net on_dead skip (owner : Node.t) ~level ~digit =
  match
    List.find_opt
      (fun (e : Routing_table.entry) -> not (skip e.id))
      (Routing_table.slot owner.Node.table ~level ~digit)
  with
  | None -> None
  | Some e -> (
      match Network.find net e.Routing_table.id with
      | Some n when Node.is_alive n -> Some n
      | _ ->
          Simnet.Cost.message net.Network.cost ~dist:0.;
          on_dead net ~owner ~dead:e.Routing_table.id;
          (* ensure progress even if on_dead did not remove the entry *)
          ignore (Routing_table.remove owner.Node.table e.Routing_table.id);
          first_alive net on_dead skip owner ~level ~digit)

(* Most-significant-bit agreement between two digits, used by the PRR-like
   variant's first-hole rule. *)
let msb_agreement ~base a b =
  let bits =
    let rec count v acc = if v <= 1 then acc else count (v lsr 1) (acc + 1) in
    count base 0
  in
  let rec go i acc =
    if i < 0 then acc
    else if (a lsr i) land 1 = (b lsr i) land 1 then go (i - 1) (acc + 1)
    else acc
  in
  go (bits - 1) 0

type walk_state = { mutable hole_seen : bool; mutable surrogate_hops : int }

(* Choose the next node at [level]; None means every slot at this level is
   empty of alive nodes (impossible while the owner is alive, since it
   occupies its own slot). *)
let choose_next net on_dead skip variant state (node : Node.t) guid ~level =
  let base = Routing_table.base node.Node.table in
  let want = Node_id.digit guid level in
  let alive_at digit = first_alive net on_dead skip node ~level ~digit in
  match variant with
  | Native ->
      let rec scan tries =
        if tries = base then None
        else begin
          let j = (want + tries) mod base in
          match alive_at j with
          | Some n ->
              if tries > 0 then state.hole_seen <- true;
              Some n
          | None -> scan (tries + 1)
        end
      in
      scan 0
  | Prr_like ->
      if not state.hole_seen then begin
        match alive_at want with
        | Some n -> Some n
        | None ->
            (* First hole: best most-significant-bit agreement, ties to the
               numerically higher digit. *)
            state.hole_seen <- true;
            let best = ref None in
            for j = 0 to base - 1 do
              match alive_at j with
              | None -> ()
              | Some n ->
                  let score = (msb_agreement ~base want j, j) in
                  (match !best with
                  | Some (s, _) when s >= score -> ()
                  | _ -> best := Some (score, n))
            done;
            Option.map snd !best
      end
      else begin
        (* After the first hole: numerically highest filled digit. *)
        let rec scan j =
          if j < 0 then None
          else match alive_at j with Some n -> Some n | None -> scan (j - 1)
        in
        scan (base - 1)
      end

let walk_internal variant on_dead skip net ~from guid ~init ~f =
  let digits = net.Network.config.Config.id_digits in
  let state = { hole_seen = false; surrogate_hops = 0 } in
  let rec walk (node : Node.t) level acc =
    if level >= digits then (node, acc, false, state.surrogate_hops)
    else
      match choose_next net on_dead skip variant state node guid ~level with
      | None -> (node, acc, false, state.surrogate_hops)
      | Some next ->
          if Node_id.equal next.Node.id node.Node.id then walk node (level + 1) acc
          else begin
            Network.charge net node next;
            if state.hole_seen then
              state.surrogate_hops <- state.surrogate_hops + 1;
            match f acc next with
            | `Stop acc -> (next, acc, true, state.surrogate_hops)
            | `Continue acc -> walk next (level + 1) acc
          end
  in
  match f init from with
  | `Stop acc -> (from, acc, true, 0)
  | `Continue acc -> walk from 0 acc

let resolve_skip exclude skip =
  match (exclude, skip) with
  | Some x, None -> fun id -> Node_id.equal x id
  | None, Some p -> p
  | None, None -> fun _ -> false
  | Some x, Some p -> fun id -> Node_id.equal x id || p id

let fold_path ?(variant = Native) ?(on_dead = default_on_dead) ?exclude ?skip net
    ~from guid ~init ~f =
  let node, acc, stopped, _ =
    walk_internal variant on_dead (resolve_skip exclude skip) net ~from guid ~init ~f
  in
  (node, acc, stopped)

let route_to_root ?(variant = Native) ?(on_dead = default_on_dead) ?exclude ?skip
    net ~from guid =
  let root, rev_path, _, surrogate_hops =
    walk_internal variant on_dead (resolve_skip exclude skip) net ~from guid
      ~init:[] ~f:(fun path node -> `Continue (node :: path))
  in
  { root; path = List.rev rev_path; surrogate_hops }

let route_to_node ?on_dead ?exclude ?skip net ~from target_id =
  let final, rev_path, _ =
    fold_path ?on_dead ?exclude ?skip net ~from target_id ~init:[]
      ~f:(fun path node ->
        let path = node :: path in
        if Node_id.equal node.Node.id target_id then `Stop path else `Continue path)
  in
  let path = List.rev rev_path in
  if Node_id.equal final.Node.id target_id then (Some final, path) else (None, path)

let peek_first_hop ?(variant = Native) ?(on_dead = default_on_dead) ?exclude ?skip
    net (node : Node.t) guid =
  let digits = net.Network.config.Config.id_digits in
  let state = { hole_seen = false; surrogate_hops = 0 } in
  let skip = resolve_skip exclude skip in
  let rec go level =
    if level >= digits then None
    else
      match choose_next net on_dead skip variant state node guid ~level with
      | None -> None
      | Some next ->
          if Node_id.equal next.Node.id node.Node.id then go (level + 1) else Some next
  in
  go 0
