(** Object pointer maintenance (Section 4.2, Figure 9) and soft state.

    When the routing mesh changes the expected root path of an object —
    a closer primary neighbor appears, a node leaves — the node whose
    forward route changed pushes the pointer up the new path; the node where
    new and old paths converge sends a delete back down the old branch,
    following the last-hop ("previous") pointers each record carries.  This
    keeps Property 4 without the dangling pointers an ordinary republish
    would leave.

    Soft state: {!expire_all} drops stale pointers, {!republish_all}
    refreshes every replica's paths — together they implement the paper's
    timeout/republish safety net that makes all maintenance advisory. *)

val optimize_object_ptrs :
  ?variant:Route.variant -> Network.t -> changed:Node.t -> Pointer_store.record -> unit
(** The forward route for this record changed at [changed]: re-walk the path
    toward the record's root from [changed], depositing/refreshing pointers,
    and prune the superseded branch backward from the convergence node
    (Figure 9's [OptimizeObjectPtrs] + [DeletePointersBackward]). *)

val delete_pointers_backward :
  Network.t ->
  changed:Node_id.t ->
  guid:Node_id.t ->
  server:Node_id.t ->
  root_idx:int ->
  from:Node_id.t ->
  unit
(** Walk last-hop pointers from [from] toward [changed], deleting the record
    at every node strictly before [changed]. *)

val optimize_through :
  ?variant:Route.variant -> Network.t -> node:Node.t -> next_hop:Node_id.t -> int
(** Run {!optimize_object_ptrs} for every record at [node] whose current
    first hop is [next_hop] (used after a slot's primary changes: only paths
    through the changed entry moved).  Returns how many records moved. *)

val expire_all : Network.t -> int
(** Drop expired pointers network-wide; returns the count. *)

val republish_all : Network.t -> int
(** Every alive server republishes every replica it stores; returns the
    number of (server, object) publishes performed. *)

val tick : Network.t -> dt:float -> unit
(** Advance the virtual clock, expiring pointers and republishing when a
    republish interval boundary is crossed. *)
