let local_root_idx = 1_000_000

let in_stub net ~same_stub ~(anchor : Node.t) id =
  match Network.find net id with
  | Some n -> same_stub anchor.Node.addr n.Node.addr
  | None -> false

(* Deposit local-branch pointers from [start] to the stub-local surrogate
   root (routing that never considers out-of-stub entries). *)
let publish_local_branch net ~same_stub ~(server : Node.t) ~(start : Node.t) guid =
  let cfg = net.Network.config in
  let expires = net.Network.clock +. cfg.Config.pointer_ttl in
  let skip id = not (in_stub net ~same_stub ~anchor:start id) in
  let _, _, _ =
    Route.fold_path ~skip net ~from:start guid ~init:None ~f:(fun prev node ->
        ignore
          (Pointer_store.store node.Node.pointers ~guid ~server:server.Node.id
             ~root_idx:local_root_idx ~previous:prev ~expires);
        `Continue (Some node.Node.id))
  in
  ()

let publish net ~same_stub ~server guid =
  (* Ordinary wide-area publish... *)
  ignore (Publish.publish net ~server guid);
  (* ...plus the local branch rooted inside the server's stub. *)
  publish_local_branch net ~same_stub ~server ~start:server guid

let locate net ~same_stub ~(client : Node.t) guid =
  let skip id = not (in_stub net ~same_stub ~anchor:client id) in
  (* Stub-confined walk: stop at the first local pointer whose server is in
     reach; the walk dead-ends at the stub-local root. *)
  let usable node =
    Pointer_store.find_guid (node : Node.t).Node.pointers guid
    |> List.filter (fun (r : Pointer_store.record) ->
           r.Pointer_store.expires >= net.Network.clock
           &&
           match Network.find net r.Pointer_store.server with
           | Some s -> Node.is_alive s && Node.stores_replica s guid
           | None -> false)
  in
  let final, found, stopped =
    Route.fold_path ~skip net ~from:client guid ~init:None ~f:(fun _ node ->
        match usable node with
        | [] -> `Continue None
        | records -> `Stop (Some (node, records)))
  in
  ignore final;
  match (stopped, found) with
  | true, Some (pointer_node, records) -> (
      let best =
        List.fold_left
          (fun acc (r : Pointer_store.record) ->
            match Network.find net r.Pointer_store.server with
            | None -> acc
            | Some s -> (
                let d = Network.dist net pointer_node s in
                match acc with
                | Some (_, bd) when bd <= d -> acc
                | _ -> Some (s, d)))
          None records
      in
      match best with
      | None -> Locate.locate net ~client guid
      | Some (server, _) ->
          let reached, _ =
            if Node_id.equal server.Node.id pointer_node.Node.id then
              (Some server, [])
            else Route.route_to_node net ~from:pointer_node server.Node.id
          in
          {
            Locate.server = reached;
            pointer_node = Some pointer_node;
            walk = [];
            redirects = 0;
          })
  | _ ->
      (* Nothing in the stub: resume ordinary wide-area location. *)
      Locate.locate net ~client guid
