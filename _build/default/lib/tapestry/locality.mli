(** Stub-locality enhancement (Section 6.3).

    On transit-stub topologies, intra-stub latency is an order of magnitude
    below inter-stub latency.  The optimization keeps a locate for an object
    that has a copy inside the client's stub from ever crossing a transit
    link: publication spawns a "local branch" — surrogate routing confined
    to the stub, terminating at a local root — and queries first exhaust the
    local branch before resuming wide-area routing.

    The stub membership oracle is injected (the paper: "assume Tapestry
    nodes can detect whether the next hop is within the same stub"; in
    practice a latency threshold).  Local-branch pointers are ordinary
    pointer-store records under a reserved root index. *)

val local_root_idx : int
(** Reserved [root_idx] marking local-branch pointer records. *)

val publish :
  Network.t ->
  same_stub:(int -> int -> bool) ->
  server:Node.t ->
  Node_id.t ->
  unit
(** Wide-area publish plus a local branch: when the publish path is about to
    leave the server's stub, a second publish message surrogate-routes to a
    local root inside the stub, depositing local pointers on the way. *)

val locate :
  Network.t ->
  same_stub:(int -> int -> bool) ->
  client:Node.t ->
  Node_id.t ->
  Locate.result
(** Stub-confined search first (never leaves the client's stub); falls back
    to ordinary {!Locate.locate} if the local root knows nothing. *)
