(** Cross-module invariant checks (tests and experiments only).

    These walk the live network with charging rolled back, so they can be
    interleaved with measured operations without distorting accounting. *)

type pointer_gap = {
  guid : Node_id.t;
  server : Node_id.t;
  missing_at : Node_id.t;  (** publish-path node lacking the pointer *)
}

val check_property4 : Network.t -> pointer_gap list
(** Property 4: every node on the path from each replica server to the
    object's root holds a pointer for that (object, server) pair.  Paths are
    recomputed with current tables. *)

val roots_agree : Network.t -> Node_id.t -> samples:int -> bool
(** Theorem 2 empirically: routes toward a GUID from [samples] random
    sources all end at the same root (and at the oracle root). *)

val reachable_everywhere : Network.t -> Node_id.t -> bool
(** Does a locate for the GUID succeed from every alive node? *)

val availability : Network.t -> guids:Node_id.t list -> samples:int -> float
(** Fraction of (random client, guid) locate probes that succeed. *)
