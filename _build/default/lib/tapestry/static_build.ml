let populate_links net =
  let nodes = Array.of_list (Network.alive_nodes net) in
  let n = Array.length nodes in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j then
        ignore
          (Network.offer_link_all_levels net ~owner:nodes.(i) ~candidate:nodes.(j))
    done
  done

let build ?seed cfg metric ~addrs =
  let net = Network.create ?seed cfg metric in
  List.iter
    (fun addr ->
      let id = Network.fresh_id net in
      let node = Node.create cfg ~id ~addr in
      node.Node.status <- Node.Active;
      Network.register net node)
    addrs;
  Network.without_charging net (fun () -> populate_links net);
  net

let table_quality net ~oracle =
  let total = ref 0 and matched = ref 0 in
  List.iter
    (fun (onode : Node.t) ->
      match Network.find net onode.Node.id with
      | None -> ()
      | Some node ->
          let levels = Routing_table.levels onode.Node.table in
          let base = Routing_table.base onode.Node.table in
          for level = 0 to levels - 1 do
            for digit = 0 to base - 1 do
              if digit <> Node_id.digit onode.Node.id level then begin
                match Routing_table.primary onode.Node.table ~level ~digit with
                | None -> ()
                | Some oracle_prim ->
                    incr total;
                    (match Routing_table.primary node.Node.table ~level ~digit with
                    | None -> ()
                    | Some prim ->
                        if prim.Routing_table.dist <= oracle_prim.Routing_table.dist +. 1e-9
                        then incr matched)
              end
            done
          done)
    (Network.alive_nodes oracle);
  if !total = 0 then 1.0 else float_of_int !matched /. float_of_int !total
