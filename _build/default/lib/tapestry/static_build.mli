(** Oracle construction of a perfect Tapestry network.

    Builds, by global brute force, the network that the PRR preprocessing
    step would produce: every slot of every node holds exactly the R closest
    matching nodes (Properties 1 and 2 exactly, not just with high
    probability).  Experiments use it as the ground truth that incremental
    construction is measured against (E11) and as a fast setup path. *)

val build :
  ?seed:int -> Config.t -> Simnet.Metric.t -> addrs:int list -> Network.t
(** One active node per metric point in [addrs], random distinct IDs,
    perfect tables with symmetric backpointers. *)

val populate_links : Network.t -> unit
(** Rebuild perfect tables for every alive node of an existing network
    (idempotent; used to repair or to upgrade a partially built network to
    the oracle state). *)

val table_quality : Network.t -> oracle:Network.t -> float
(** Fraction of non-empty slots of [oracle] whose primary distance is
    matched (or beaten) in the corresponding node of the other network.
    Networks must have the same node IDs and addresses. *)
