(** Object publication (Section 2.2, Figure 2).

    A storage server announces a replica by routing a publish message toward
    each root in the object's root set; every node on the way — root
    included — deposits an object pointer [(guid, server)] recording the
    last hop, so later queries walking toward the root intersect the publish
    path (Theorem 1).  Pointers are soft state: they expire [pointer_ttl]
    after the publish unless refreshed by {!republish}. *)

type outcome = {
  roots : Node.t list;  (** surrogate root reached for each root index *)
  path_lengths : int list;  (** hops from server to each root *)
}

val publish :
  ?variant:Route.variant ->
  ?on_secondaries:bool ->
  Network.t ->
  server:Node.t ->
  Node_id.t ->
  outcome
(** Publish a replica of the GUID stored at [server].  The server is
    recorded as holding the replica.  With [on_secondaries] (the PRR-style
    deployment of Section 2.4), each hop also deposits the pointer on the
    secondary neighbors of the slot it traverses, at extra message cost. *)

val republish :
  ?variant:Route.variant -> Network.t -> server:Node.t -> Node_id.t -> outcome
(** Re-walk the publish paths, refreshing expiry and last-hop pointers.
    Identical mechanics to {!publish} minus the replica registration. *)

val unpublish : ?variant:Route.variant -> Network.t -> server:Node.t -> Node_id.t -> unit
(** Delete this server's pointers along its current publish paths and drop
    the replica. *)
