(** Asynchronous protocol execution over the fiber scheduler.

    The synchronous modules run a whole operation atomically; here every
    network hop takes real (virtual) time — the fiber sleeps for the link
    latency before the next node's state is read — so operations genuinely
    race with membership changes, repairs and each other.  This is the
    execution model of the deployed Tapestry the paper describes in
    Sections 5.2 and 6.5: heartbeat beacons detect silent failures,
    republish daemons refresh soft state, and queries in flight observe
    whatever the mesh looks like when they arrive at each hop.

    All functions must be called from inside a fiber of the scheduler. *)

type env = {
  sched : Simnet.Fiber.t;
  net : Network.t;
  latency_scale : float;  (** virtual seconds per unit of metric distance *)
  timeout : float;  (** extra delay charged when probing a dead node *)
}

val make_env :
  ?latency_scale:float -> ?timeout:float -> Simnet.Fiber.t -> Network.t -> env

val sync_clock : env -> unit
(** Copy the fiber scheduler's virtual time into the network clock so that
    soft-state expiry sees asynchronous time. *)

val route_to_root :
  ?variant:Route.variant -> env -> from:Node.t -> Node_id.t -> Route.info
(** Surrogate routing, one fiber sleep per hop; dead hops cost [timeout] and
    trigger lazy repair at the node that noticed. *)

val locate : env -> client:Node.t -> Node_id.t -> Locate.result
(** Asynchronous locate: walks toward the root hop by hop (sleeping per
    link), checks pointers against the state found on arrival, then travels
    to the replica. *)

val publish : env -> server:Node.t -> Node_id.t -> unit
(** Asynchronous publish of one replica: deposits pointers hop by hop. *)

val heartbeat_daemon : env -> period:float -> rounds:int -> unit
(** Section 6.5's soft-state beacons: every [period], each alive node pings
    the neighbors in its table; dead ones are dropped, holes repaired, and
    affected object pointers re-routed.  Runs [rounds] sweeps then exits. *)

val republish_daemon : env -> period:float -> rounds:int -> unit
(** Every [period], all servers republish all replicas (asynchronously) and
    expired pointers are dropped. *)
