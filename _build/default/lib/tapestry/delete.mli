(** Node departure (Section 5).

    Voluntary delete (Figure 12) is the graceful two-phase exit: the leaver
    notifies every backpointer holder with replacement candidates, those
    nodes re-route the object pointers that passed through it, the leaver
    re-roots the objects it was root for, and only then does it disconnect —
    so objects stay available throughout.

    Involuntary delete is the common case: a node just disappears.  Repair
    is lazy (Section 5.2) — a neighbor that notices the failure fixes only
    its own state: drop the link, promote a secondary, search for a
    replacement if a hole opened (neighbor-local search first, then a
    routed probe), and re-push object pointers that travelled through the
    dead node.  Soft-state republish remains the backstop for objects whose
    root died. *)

type stats = {
  notified : int;  (** backpointer holders contacted *)
  pointers_rerouted : int;  (** object pointer records moved *)
  objects_rerooted : int;  (** records whose root was the leaver *)
}

val voluntary : Network.t -> Node.t -> stats
(** Graceful departure.  Replicas stored on the leaving node are
    unpublished (the data leaves with the node).
    @raise Invalid_argument if the node is not active. *)

val fail : Network.t -> Node.t -> unit
(** Involuntary: the node silently dies.  No state elsewhere is touched;
    repair happens lazily via {!on_dead_repair} and republish. *)

val on_dead_repair : Network.t -> owner:Node.t -> dead:Node_id.t -> unit
(** Rich [on_dead] handler for {!Route}: drop the link, repair any hole it
    opened, and re-optimize this node's object pointers. *)

val repair_hole : Network.t -> owner:Node.t -> level:int -> digit:int -> bool
(** Find a replacement for an empty slot: ask the remaining level-[level]
    neighbors for their matching entries, then fall back to a routed
    surrogate probe.  Returns true if the slot is filled afterwards (false
    certifies no matching node exists). *)

val repair_all_holes : Network.t -> int
(** Anti-entropy sweep: run {!repair_hole} on every hole of every core node
    (the paper's optional proactive alternative to purely lazy repair).
    Returns the number of slots filled. *)
