(** Identifiers: strings of digits in radix [b].

    Both node-IDs and object GUIDs are represented this way (Section 2);
    identifiers are uniformly distributed in the namespace.  Digits are
    indexed from 0 (most significant), so [digit id 0] is the first digit
    resolved when routing. *)

type t

val make : int array -> t
(** Takes ownership of the array; digits must already be in range. *)

val random : base:int -> len:int -> Simnet.Rng.t -> t

val of_string : base:int -> string -> t
(** Parse from the {!to_string} representation (digit characters 0-9a-v).
    @raise Invalid_argument on malformed input. *)

val to_string : t -> string

val length : t -> int

val digit : t -> int -> int
(** [digit id i] is the i-th digit, 0-indexed from the most significant. *)

val digits : t -> int array
(** Fresh copy of the digit array. *)

val equal : t -> t -> bool

val compare : t -> t -> int

val hash : t -> int

val common_prefix_len : t -> t -> int
(** Length of the greatest common prefix, in digits. *)

val has_prefix : t -> prefix:int array -> len:int -> bool
(** Do the first [len] digits equal [prefix.(0..len-1)]? *)

val prefix : t -> int -> int array
(** First [n] digits as a fresh array. *)

val salt : base:int -> t -> int -> t
(** [salt ~base id i] deterministically maps [id] to the i-th member of its
    root set (Observation 2: a pseudo-random function from the GUID to
    identifiers psi_0, psi_1, ...).  [salt ~base id 0 = id]. *)

val to_int : base:int -> t -> int
(** The identifier read as a radix-[b] integer (used by the Chord baseline
    to place Tapestry-style IDs on its ring).  Must fit in an OCaml int. *)

val of_int : base:int -> len:int -> int -> t

module Tbl : Hashtbl.S with type key = t

module Set : Set.S with type elt = t

module Map : Map.S with type key = t
