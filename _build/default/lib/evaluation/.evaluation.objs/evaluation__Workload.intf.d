lib/evaluation/workload.mli: Simnet Tapestry
