lib/evaluation/experiment.mli: Simnet
