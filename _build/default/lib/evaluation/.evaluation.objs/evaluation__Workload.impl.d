lib/evaluation/workload.ml: Array Config List Network Node Node_id Publish Simnet Tapestry
