(* A "live" Tapestry deployment on the asynchronous runtime: every message
   takes virtual time, soft-state daemons run in the background (heartbeats
   and republish, Sections 5.2/6.5), application traffic flows continuously,
   and a partition-sized failure hits mid-run.  Watch availability dip and
   heal without any central coordination.

   Run with: dune exec examples/live_network.exe *)

open Tapestry

let () =
  let seed = 77 in
  let n = 150 in
  let rng = Simnet.Rng.create seed in
  let metric = Simnet.Topology.generate Simnet.Topology.Uniform_square ~n ~rng in
  let addrs = List.init n (fun i -> i) in
  let net, _ = Insert.build_incremental ~seed:(seed + 1) Config.default metric ~addrs in
  let sched = Simnet.Fiber.create () in
  let env = Async_ops.make_env ~latency_scale:0.5 sched net in

  (* application data: 30 objects, one replica each, published asynchronously *)
  let guids = ref [] in
  for _ = 1 to 30 do
    let server = Network.random_alive net in
    let guid = Node_id.random ~base:16 ~len:8 net.Network.rng in
    guids := guid :: !guids;
    Simnet.Fiber.spawn sched (fun () -> Async_ops.publish env ~server guid)
  done;
  Simnet.Fiber.run sched;
  Printf.printf "t=%5.1f  %d objects published asynchronously\n%!"
    (Simnet.Fiber.now sched) (List.length !guids);

  (* background daemons for the next 120 virtual seconds *)
  Simnet.Fiber.spawn sched (fun () -> Async_ops.heartbeat_daemon env ~period:10.0 ~rounds:12);
  Simnet.Fiber.spawn sched (fun () -> Async_ops.republish_daemon env ~period:15.0 ~rounds:8);

  (* a sixth of the network silently dies at t=30 *)
  Simnet.Fiber.spawn_at sched 30.0 (fun () ->
      let servers =
        List.concat_map
          (fun g ->
            Network.alive_nodes net
            |> List.filter (fun (s : Node.t) -> Node.stores_replica s g))
          !guids
      in
      let is_server v =
        List.exists (fun (s : Node.t) -> Node_id.equal s.Node.id (v : Node.t).Node.id) servers
      in
      let victims =
        Network.alive_nodes net
        |> List.filter (fun v -> not (is_server v))
        |> List.filteri (fun i _ -> i mod 6 = 0)
      in
      List.iter (fun v -> Delete.fail net v) victims;
      Printf.printf "t=%5.1f  !! %d nodes failed silently\n%!"
        (Simnet.Fiber.now sched) (List.length victims));

  (* continuous application traffic: 4 async locates fired per virtual
     second, each running as its own fiber so the clock keeps ticking *)
  let window_hits = ref 0 and window_total = ref 0 in
  Simnet.Fiber.spawn sched (fun () ->
      for tick = 1 to 120 do
        Simnet.Fiber.sleep sched 1.0;
        for _ = 1 to 4 do
          Simnet.Fiber.spawn sched (fun () ->
              let client = Network.random_alive net in
              let guid = Simnet.Rng.pick_list net.Network.rng !guids in
              let res = Async_ops.locate env ~client guid in
              incr window_total;
              if res.Locate.server <> None then incr window_hits)
        done;
        if tick mod 15 = 0 then begin
          Printf.printf "t=%5.1f  availability %.3f over last %d requests (%d peers)\n%!"
            (Simnet.Fiber.now sched)
            (float_of_int !window_hits /. float_of_int (max 1 !window_total))
            !window_total
            (List.length (Network.alive_nodes net));
          window_hits := 0;
          window_total := 0
        end
      done);
  Simnet.Fiber.run sched;
  Printf.printf "\nrun complete at t=%.1f; Property 1 violations: %d\n"
    (Simnet.Fiber.now sched)
    (List.length (Network.check_property1 net))
