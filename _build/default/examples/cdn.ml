(* Content delivery over a transit-stub internet (Section 6.3).

   A site's pages are replicated into a few stub networks ("edge caches").
   Locality-aware Tapestry keeps a request inside the client's stub whenever
   a cache is present there, so intra-stub requests never pay transit-link
   latency; the same workload on plain wide-area Tapestry escapes the stub
   on most requests.

   Run with: dune exec examples/cdn.exe *)

open Tapestry

let () =
  let seed = 5 in
  let rng = Simnet.Rng.create seed in
  let params =
    { Simnet.Transit_stub.default_params with stubs_per_transit = 3; stub_size = 8 }
  in
  let ts = Simnet.Transit_stub.generate params ~rng in
  let metric = Simnet.Transit_stub.metric ts in
  let hosts = Simnet.Transit_stub.hosts ts in
  let net, _ = Insert.build_incremental ~seed:(seed + 1) Config.default metric ~addrs:hosts in
  let same_stub = Simnet.Transit_stub.same_stub ts in
  Printf.printf "internet: %d hosts in %d stub networks (intra %.0fms, transit %.0fms)\n\n"
    (List.length hosts)
    (Simnet.Transit_stub.stub_count ts)
    params.Simnet.Transit_stub.intra_stub_latency
    params.Simnet.Transit_stub.transit_latency;

  (* One "page" cached at 5 random edge hosts, published locality-aware. *)
  let cfg = net.Network.config in
  let page = Node_id.random ~base:cfg.Config.base ~len:cfg.Config.id_digits net.Network.rng in
  let caches = List.init 5 (fun _ -> Network.random_alive net) in
  List.iter (fun server -> Locality.publish net ~same_stub ~server page) caches;
  Printf.printf "page %s cached at %d edge hosts\n\n" (Node_id.to_string page)
    (List.length caches);

  (* Requests from clients that share a stub with some cache. *)
  let clients_with_local_cache =
    Network.alive_nodes net
    |> List.filter (fun (c : Node.t) ->
           List.exists
             (fun (s : Node.t) ->
               same_stub c.Node.addr s.Node.addr && not (Node_id.equal c.Node.id s.Node.id))
             caches)
  in
  let lat_plain = ref [] and lat_local = ref [] in
  List.iter
    (fun client ->
      let _, c1 = Network.measure net (fun () -> Locate.locate net ~client page) in
      let _, c2 =
        Network.measure net (fun () -> Locality.locate net ~same_stub ~client page)
      in
      lat_plain := c1.Simnet.Cost.latency :: !lat_plain;
      lat_local := c2.Simnet.Cost.latency :: !lat_local)
    clients_with_local_cache;
  let p = Simnet.Stats.summarize !lat_plain in
  let l = Simnet.Stats.summarize !lat_local in
  Printf.printf "%d requests from clients with an in-stub cache:\n"
    (List.length clients_with_local_cache);
  Format.printf "  wide-area Tapestry : %a@." Simnet.Stats.pp_summary p;
  Format.printf "  locality-enhanced  : %a@." Simnet.Stats.pp_summary l;
  if l.Simnet.Stats.mean > 0. then
    Printf.printf "  speedup: %.1fx mean latency\n"
      (p.Simnet.Stats.mean /. l.Simnet.Stats.mean)
