(* Churn: a peer-to-peer file network where peers come and go continuously —
   the scenario Sections 4 and 5 of the paper are about.  Half the events are
   silent failures (the "common case" of Section 5.2); the rest are graceful
   leaves and new joins.  Object availability is probed throughout.

   Run with: dune exec examples/churn.exe *)

open Tapestry

let () =
  let seed = 99 in
  let base_n = 150 in
  let spare = 100 in
  let rng = Simnet.Rng.create seed in
  let metric =
    Simnet.Topology.generate Simnet.Topology.Uniform_square ~n:(base_n + spare) ~rng
  in
  let addrs = List.init base_n (fun i -> i) in
  let net, _ = Insert.build_incremental ~seed:(seed + 1) Config.default metric ~addrs in

  (* Publish a small library of files, two replicas each. *)
  let objects = Evaluation.Workload.place_objects net ~count:40 ~replicas:2 in
  let guids = List.map (fun (o : Evaluation.Workload.placed_object) -> o.guid) objects in
  let server_ids =
    List.concat_map
      (fun (o : Evaluation.Workload.placed_object) ->
        List.map (fun (s : Node.t) -> s.Node.id) o.servers)
      objects
  in
  Printf.printf "start: %d peers, %d files x2 replicas\n\n" base_n (List.length guids);

  let is_server (v : Node.t) = List.exists (Node_id.equal v.Node.id) server_ids in
  let next_addr = ref base_n in
  let events = 60 in
  let probe_batch = 20 in
  let ok = ref 0 and total = ref 0 in
  for step = 1 to events do
    (* one membership event *)
    let u = Simnet.Rng.float net.Network.rng 1.0 in
    (if u < 0.35 && !next_addr < base_n + spare then begin
       let gw = Network.random_alive net in
       ignore (Insert.insert net ~gateway:gw ~addr:!next_addr);
       incr next_addr
     end
     else begin
       (* pick a departing peer that serves no replica *)
       let rec victim tries =
         if tries = 0 then None
         else begin
           let v = Network.random_alive net in
           if Node.is_core v && not (is_server v) then Some v else victim (tries - 1)
         end
       in
       match victim 40 with
       | Some v when u < 0.65 -> ignore (Delete.voluntary net v)
       | Some v -> Delete.fail net v (* silent crash *)
       | None -> ()
     end);
    (* probe availability *)
    for _ = 1 to probe_batch do
      incr total;
      let client = Network.random_alive net in
      let guid = Simnet.Rng.pick_list net.Network.rng guids in
      if (Locate.locate net ~client guid).Locate.server <> None then incr ok
    done;
    (* background soft-state maintenance *)
    Maintenance.tick net ~dt:15.;
    if step mod 15 = 0 then
      Printf.printf "after %3d events: %3d peers alive, availability so far %.4f\n"
        step
        (List.length (Network.alive_nodes net))
        (float_of_int !ok /. float_of_int !total)
  done;

  Printf.printf "\nfinal availability: %.4f over %d probes\n"
    (float_of_int !ok /. float_of_int !total)
    !total;
  let v1 = Network.check_property1 net in
  Printf.printf "Property 1 violations left by lazy repair: %d\n" (List.length v1);
  (* Lazy repair only fixes what routing touches (Section 5.2); an explicit
     anti-entropy sweep closes the rest. *)
  let filled = Delete.repair_all_holes net in
  let v1' = Network.check_property1 net in
  Printf.printf "after anti-entropy sweep (+%d links): %d violations\n" filled
    (List.length v1')
