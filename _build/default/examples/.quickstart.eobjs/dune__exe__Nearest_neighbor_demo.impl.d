examples/nearest_neighbor_demo.ml: Config Format Insert List Nearest_neighbor Network Node Node_id Printf Simnet Tapestry
