examples/cdn.mli:
