examples/nearest_neighbor_demo.mli:
