examples/churn.ml: Config Delete Evaluation Insert List Locate Maintenance Network Node Node_id Printf Simnet Tapestry
