examples/cdn.ml: Config Format Insert List Locality Locate Network Node Node_id Printf Simnet Tapestry
