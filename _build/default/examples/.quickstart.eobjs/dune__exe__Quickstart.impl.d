examples/quickstart.ml: Config Delete Insert List Locate Network Node Node_id Printf Publish Simnet Tapestry Verify
