examples/quickstart.mli:
