examples/live_network.ml: Async_ops Config Delete Insert List Locate Network Node Node_id Printf Simnet Tapestry
