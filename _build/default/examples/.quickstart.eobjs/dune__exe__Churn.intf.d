examples/churn.mli:
