examples/live_network.mli:
