(* Tests for the Section 6.4 continual-optimization machinery: the drifting
   metric, distance re-measurement, the four heuristics, and the
   Observation-1 multi-root retry they interact with. *)

open Tapestry

let build_on_drift ?(n = 100) ?(seed = 91) () =
  let rng = Simnet.Rng.create seed in
  let drift = Simnet.Drift.create ~n ~rng in
  let metric = Simnet.Drift.metric drift in
  let addrs = List.init n (fun i -> i) in
  let net, _ = Insert.build_incremental ~seed:(seed + 1) Config.default metric ~addrs in
  (net, drift, rng)

let p2_quality net =
  let total = ref 0 and optimal = ref 0 in
  Network.check_property2 net ~total ~optimal;
  float_of_int !optimal /. float_of_int (max 1 !total)

(* --- drift --- *)

let test_drift_changes_distances () =
  let rng = Simnet.Rng.create 1 in
  let d = Simnet.Drift.create ~n:50 ~rng in
  let m = Simnet.Drift.metric d in
  let before = Simnet.Metric.dist m 3 17 in
  Simnet.Drift.advance d ~rng ~magnitude:0.1;
  let after = Simnet.Metric.dist m 3 17 in
  Alcotest.(check bool) "distance moved" true (abs_float (before -. after) > 1e-9)

let test_drift_stays_metric () =
  let rng = Simnet.Rng.create 2 in
  let d = Simnet.Drift.create ~n:40 ~rng in
  Simnet.Drift.advance d ~rng ~magnitude:0.3;
  let m = Simnet.Drift.metric d in
  for i = 0 to 39 do
    for j = 0 to 39 do
      for k = 0 to 39 do
        if Simnet.Metric.dist m i j > Simnet.Metric.dist m i k +. Simnet.Metric.dist m k j +. 1e-9
        then Alcotest.fail "drifted space must stay metric"
      done
    done
  done

let test_drift_snapshot_frozen () =
  let rng = Simnet.Rng.create 3 in
  let d = Simnet.Drift.create ~n:30 ~rng in
  let snap = Simnet.Drift.snapshot d in
  let live = Simnet.Drift.metric d in
  let before = Simnet.Metric.dist snap 1 2 in
  Simnet.Drift.advance d ~rng ~magnitude:0.2;
  Alcotest.(check (float 1e-12)) "snapshot unchanged" before (Simnet.Metric.dist snap 1 2);
  Alcotest.(check bool) "live moved" true
    (abs_float (Simnet.Metric.dist live 1 2 -. before) > 1e-9)

(* --- update_distances --- *)

let test_update_distances_resorts () =
  let cfg = { Config.default with Config.id_digits = 4; redundancy = 3 } in
  let owner = Node_id.of_string ~base:16 "a000" in
  let t = Routing_table.create cfg ~owner in
  let c1 = Node_id.of_string ~base:16 "ab11" in
  let c2 = Node_id.of_string ~base:16 "ab22" in
  ignore (Routing_table.consider t ~level:1 ~candidate:c1 ~dist:1.0);
  ignore (Routing_table.consider t ~level:1 ~candidate:c2 ~dist:2.0);
  (* distances flip: c2 is now closer *)
  let measure id = if Node_id.equal id c1 then Some 5.0 else Some 0.5 in
  let changed = Routing_table.update_distances t ~measure in
  Alcotest.(check int) "one primary changed" 1 changed;
  match Routing_table.primary t ~level:1 ~digit:0xb with
  | Some e -> Alcotest.(check bool) "c2 promoted" true (Node_id.equal e.Routing_table.id c2)
  | None -> Alcotest.fail "slot emptied"

let test_update_distances_drops_unmeasurable () =
  let cfg = { Config.default with Config.id_digits = 4; redundancy = 3 } in
  let owner = Node_id.of_string ~base:16 "a000" in
  let t = Routing_table.create cfg ~owner in
  let c1 = Node_id.of_string ~base:16 "ab11" in
  ignore (Routing_table.consider t ~level:1 ~candidate:c1 ~dist:1.0);
  ignore (Routing_table.update_distances t ~measure:(fun _ -> None));
  Alcotest.(check bool) "entry dropped" true (Routing_table.is_hole t ~level:1 ~digit:0xb)

(* --- optimizer heuristics --- *)

let test_drift_degrades_then_rotate_recovers () =
  let net, drift, rng = build_on_drift () in
  let fresh = p2_quality net in
  Alcotest.(check bool) "fresh quality high" true (fresh > 0.85);
  Simnet.Drift.advance drift ~rng ~magnitude:0.25;
  let degraded = p2_quality net in
  Alcotest.(check bool)
    (Printf.sprintf "drift degrades (%.2f -> %.2f)" fresh degraded)
    true
    (degraded < fresh -. 0.15);
  let stats = Optimizer.rotate_primaries net in
  let recovered = p2_quality net in
  Alcotest.(check bool)
    (Printf.sprintf "rotation recovers (%.2f -> %.2f)" degraded recovered)
    true
    (recovered > degraded +. 0.1);
  Alcotest.(check bool) "rotation cost is nonzero" true
    (stats.Optimizer.cost.Simnet.Cost.messages > 0)

let test_share_tables_restores_quality () =
  let net, drift, rng = build_on_drift ~seed:95 () in
  Simnet.Drift.advance drift ~rng ~magnitude:0.25;
  ignore (Optimizer.share_tables net);
  let q = p2_quality net in
  Alcotest.(check bool) (Printf.sprintf "gossip quality %.3f > 0.95" q) true (q > 0.95);
  Alcotest.(check int) "consistency kept" 0 (List.length (Network.check_property1 net))

let test_full_rebuild_restores_quality () =
  let net, drift, rng = build_on_drift ~seed:97 () in
  Simnet.Drift.advance drift ~rng ~magnitude:0.25;
  ignore (Optimizer.full_rebuild net);
  let q = p2_quality net in
  Alcotest.(check bool) (Printf.sprintf "rebuild quality %.3f > 0.9" q) true (q > 0.9);
  Alcotest.(check int) "consistency kept" 0 (List.length (Network.check_property1 net))

let test_rebuild_level_targets_one_level () =
  let net, drift, rng = build_on_drift ~seed:99 () in
  Simnet.Drift.advance drift ~rng ~magnitude:0.25;
  let s = Optimizer.rebuild_level net ~level:0 in
  Alcotest.(check bool) "touches every core node" true
    (s.Optimizer.nodes_touched = List.length (Network.core_nodes net));
  Alcotest.(check int) "consistency kept" 0 (List.length (Network.check_property1 net))

let test_optimizers_preserve_property4 () =
  let net, drift, rng = build_on_drift ~seed:101 () in
  (* publish, drift, rotate: pointer paths must follow the new routes *)
  let guids =
    List.init 15 (fun _ ->
        let server = Network.random_alive net in
        let guid = Node_id.random ~base:16 ~len:8 net.Network.rng in
        ignore (Publish.publish net ~server guid);
        guid)
  in
  Simnet.Drift.advance drift ~rng ~magnitude:0.25;
  ignore (Optimizer.rotate_primaries net);
  Alcotest.(check int) "Property 4 after rotation" 0
    (List.length (Verify.check_property4 net));
  List.iter
    (fun guid ->
      Alcotest.(check bool) "still locatable" true
        (Verify.reachable_everywhere net guid))
    guids

(* --- Observation 1: multi-root retry --- *)

let test_multi_root_retry_survives_root_failure () =
  let cfg = { Config.default with Config.root_set_size = 3 } in
  let rng = Simnet.Rng.create 103 in
  let metric = Simnet.Topology.generate Simnet.Topology.Uniform_square ~n:120 ~rng in
  let addrs = List.init 120 (fun i -> i) in
  let net, _ = Insert.build_incremental ~seed:104 cfg metric ~addrs in
  let server = Network.random_alive net in
  let guid = Node_id.random ~base:16 ~len:8 net.Network.rng in
  ignore (Publish.publish net ~server guid);
  (* kill root 0 and every node holding its pointer records for root 0,
     keeping the server itself *)
  let salted0 = guid in
  let info = Route.route_to_root net ~from:server salted0 in
  List.iter
    (fun (hop : Node.t) ->
      if not (Node_id.equal hop.Node.id server.Node.id) then Delete.fail net hop)
    info.Route.path;
  (* single-root locate at root 0 now fails from some clients, but the
     retried locate over the root set still succeeds everywhere *)
  let ok = ref 0 and total = ref 0 in
  List.iter
    (fun client ->
      incr total;
      if (Locate.locate net ~client guid).Locate.server <> None then incr ok)
    (Network.alive_nodes net);
  Alcotest.(check int)
    (Printf.sprintf "all %d clients succeed via retries" !total)
    !total !ok

let () =
  Alcotest.run "optimizer"
    [
      ( "drift",
        [
          Alcotest.test_case "distances change" `Quick test_drift_changes_distances;
          Alcotest.test_case "stays a metric" `Quick test_drift_stays_metric;
          Alcotest.test_case "snapshot frozen" `Quick test_drift_snapshot_frozen;
        ] );
      ( "update_distances",
        [
          Alcotest.test_case "resorts slots" `Quick test_update_distances_resorts;
          Alcotest.test_case "drops unmeasurable" `Quick test_update_distances_drops_unmeasurable;
        ] );
      ( "heuristics",
        [
          Alcotest.test_case "rotate recovers" `Quick test_drift_degrades_then_rotate_recovers;
          Alcotest.test_case "gossip restores" `Quick test_share_tables_restores_quality;
          Alcotest.test_case "full rebuild restores" `Quick test_full_rebuild_restores_quality;
          Alcotest.test_case "level rebuild" `Quick test_rebuild_level_targets_one_level;
          Alcotest.test_case "property 4 preserved" `Quick test_optimizers_preserve_property4;
        ] );
      ( "multi-root",
        [
          Alcotest.test_case "retry survives root failure" `Quick
            test_multi_root_retry_survives_root_failure;
        ] );
    ]
