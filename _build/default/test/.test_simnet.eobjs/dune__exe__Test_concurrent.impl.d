test/test_concurrent.ml: Alcotest Array Config Id_index Insert List Locate Network Node Node_id Publish Routing_table Simnet Tapestry
