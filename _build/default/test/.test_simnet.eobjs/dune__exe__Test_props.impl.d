test/test_props.ml: Alcotest Array Baselines Config Delete Hashtbl Id_index Insert List Network Node Node_id Publish QCheck QCheck_alcotest Routing_table Simnet Tapestry Verify
