test/test_optimizer.ml: Alcotest Config Delete Insert List Locate Network Node Node_id Optimizer Printf Publish Route Routing_table Simnet Tapestry Verify
