test/test_simnet.ml: Alcotest Array Cost Fiber Graph Heap List Metric Printf Rng Simnet Stats String Topology Transit_stub
