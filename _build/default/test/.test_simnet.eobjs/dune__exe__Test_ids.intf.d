test/test_ids.mli:
