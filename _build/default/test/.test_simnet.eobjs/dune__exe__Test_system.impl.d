test/test_system.ml: Alcotest Config Delete Evaluation Insert List Locality Locate Network Node Node_id Pointer_store Publish Route Routing_table Simnet Static_build String Tapestry Verify
