test/test_ids.ml: Alcotest Config Id_index List Node_id Pointer_store Routing_table Simnet String Tapestry
