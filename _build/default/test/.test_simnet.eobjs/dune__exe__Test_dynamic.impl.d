test/test_dynamic.ml: Alcotest Config Delete Id_index Insert List Locate Maintenance Nearest_neighbor Network Node Node_id Printf Publish Route Routing_table Simnet Tapestry Verify
