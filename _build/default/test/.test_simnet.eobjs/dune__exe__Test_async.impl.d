test/test_async.ml: Alcotest Async_ops Config Delete Insert List Locate Maintenance Network Node Node_id Route Routing_table Simnet Tapestry Verify
