(* Tests for the asynchronous runtime: per-hop virtual latency, racing
   operations, and the Section 5.2/6.5 soft-state daemons. *)

open Tapestry

let build ?(n = 100) ?(seed = 121) () =
  let rng = Simnet.Rng.create seed in
  let metric = Simnet.Topology.generate Simnet.Topology.Uniform_square ~n ~rng in
  let addrs = List.init n (fun i -> i) in
  let net, _ = Insert.build_incremental ~seed:(seed + 1) Config.default metric ~addrs in
  let sched = Simnet.Fiber.create () in
  let env = Async_ops.make_env sched net in
  (net, sched, env)

let random_guid net =
  Node_id.random ~base:16 ~len:8 net.Network.rng

let test_async_route_matches_sync () =
  let net, sched, env = build () in
  (* in a quiescent network the async walk must reach the same root *)
  for _ = 1 to 25 do
    let guid = random_guid net in
    let from = Network.random_alive net in
    let sync_root =
      Network.without_charging net (fun () ->
          (Route.route_to_root net ~from guid).Route.root)
    in
    let got = ref None in
    Simnet.Fiber.spawn sched (fun () ->
        got := Some (Async_ops.route_to_root env ~from guid).Route.root);
    Simnet.Fiber.run sched;
    match !got with
    | Some r ->
        Alcotest.(check bool) "same root" true (Node_id.equal r.Node.id sync_root.Node.id)
    | None -> Alcotest.fail "fiber did not finish"
  done

let test_async_route_takes_time () =
  let net, sched, env = build () in
  let guid = random_guid net in
  let from = Network.random_alive net in
  let before = Simnet.Fiber.now sched in
  Simnet.Fiber.spawn sched (fun () -> ignore (Async_ops.route_to_root env ~from guid));
  Simnet.Fiber.run sched;
  Alcotest.(check bool) "virtual time advanced" true (Simnet.Fiber.now sched > before)

let test_async_publish_locate_roundtrip () =
  let net, sched, env = build () in
  let guids =
    List.init 15 (fun _ ->
        let server = Network.random_alive net in
        let guid = random_guid net in
        Simnet.Fiber.spawn sched (fun () -> Async_ops.publish env ~server guid);
        guid)
  in
  Simnet.Fiber.run sched;
  Alcotest.(check int) "P4 holds after async publishes" 0
    (List.length (Verify.check_property4 net));
  let ok = ref 0 in
  List.iter
    (fun guid ->
      Simnet.Fiber.spawn sched (fun () ->
          let client = Network.random_alive net in
          if (Async_ops.locate env ~client guid).Locate.server <> None then incr ok))
    guids;
  Simnet.Fiber.run sched;
  Alcotest.(check int) "all found asynchronously" 15 !ok

let test_concurrent_async_locates_race_cleanly () =
  let net, sched, env = build () in
  let server = Network.random_alive net in
  let guid = random_guid net in
  Simnet.Fiber.spawn sched (fun () -> Async_ops.publish env ~server guid);
  Simnet.Fiber.run sched;
  (* 50 locates in flight simultaneously *)
  let ok = ref 0 in
  for _ = 1 to 50 do
    Simnet.Fiber.spawn sched (fun () ->
        let client = Network.random_alive net in
        if (Async_ops.locate env ~client guid).Locate.server <> None then incr ok)
  done;
  Simnet.Fiber.run sched;
  Alcotest.(check int) "no interference" 50 !ok;
  Alcotest.(check int) "no stalled fibers" 0 (Simnet.Fiber.stalled_fibers sched)

let test_heartbeat_detects_failures () =
  let net, sched, env = build () in
  (* silent kills, then heartbeat sweeps repair every table *)
  let victims = Network.alive_nodes net |> List.filteri (fun i _ -> i mod 8 = 0) in
  List.iter (fun v -> Delete.fail net v) victims;
  Simnet.Fiber.spawn sched (fun () -> Async_ops.heartbeat_daemon env ~period:5.0 ~rounds:3);
  Simnet.Fiber.run sched;
  (* no alive node still references a dead one *)
  List.iter
    (fun (node : Node.t) ->
      Routing_table.iter_entries node.Node.table (fun ~level:_ ~digit:_ e ->
          match Network.find net e.Routing_table.id with
          | Some peer when Node.is_alive peer -> ()
          | _ -> Alcotest.fail "stale entry survived the heartbeat sweep"))
    (Network.alive_nodes net)

let test_republish_daemon_refreshes_expiry () =
  let net, sched, env = build () in
  let server = Network.random_alive net in
  let guid = random_guid net in
  Simnet.Fiber.spawn sched (fun () -> Async_ops.publish env ~server guid);
  Simnet.Fiber.run sched;
  (* let a lot of virtual time pass with the daemon running: the object must
     stay available even past the original TTL *)
  let ttl = Config.default.Config.pointer_ttl in
  let period = ttl /. 2. in
  Simnet.Fiber.spawn sched (fun () ->
      Async_ops.republish_daemon env ~period ~rounds:5);
  Simnet.Fiber.spawn sched (fun () ->
      for _ = 1 to 5 do
        Simnet.Fiber.sleep sched period;
        let client = Network.random_alive net in
        if (Async_ops.locate env ~client guid).Locate.server = None then
          Alcotest.fail "object lost despite republish daemon"
      done);
  Simnet.Fiber.run sched;
  Alcotest.(check bool) "survived past TTL" true
    (Simnet.Fiber.now sched > ttl)

let test_locate_races_failure_of_pointer_node () =
  (* kill a mid-path pointer holder while locates are in flight: queries must
     either succeed or fail cleanly, never crash or stall *)
  let net, sched, env = build ~seed:131 () in
  let server = Network.random_alive net in
  let guid = random_guid net in
  Simnet.Fiber.spawn sched (fun () -> Async_ops.publish env ~server guid);
  Simnet.Fiber.run sched;
  let info =
    Network.without_charging net (fun () -> Route.route_to_root net ~from:server guid)
  in
  let mid =
    List.filter
      (fun (h : Node.t) -> not (Node_id.equal h.Node.id server.Node.id))
      info.Route.path
  in
  (match mid with
  | victim :: _ ->
      for _ = 1 to 20 do
        Simnet.Fiber.spawn sched (fun () ->
            let client = Network.random_alive net in
            ignore (Async_ops.locate env ~client guid))
      done;
      Simnet.Fiber.spawn_at sched 0.3 (fun () -> Delete.fail net victim);
      Simnet.Fiber.run sched;
      Alcotest.(check int) "no stalls" 0 (Simnet.Fiber.stalled_fibers sched)
  | [] -> ());
  (* after a republish the object is available again from everywhere *)
  ignore (Maintenance.republish_all net);
  Alcotest.(check bool) "recovered" true (Verify.reachable_everywhere net guid)

let () =
  Alcotest.run "async"
    [
      ( "routing",
        [
          Alcotest.test_case "matches sync roots" `Quick test_async_route_matches_sync;
          Alcotest.test_case "takes virtual time" `Quick test_async_route_takes_time;
        ] );
      ( "objects",
        [
          Alcotest.test_case "publish/locate roundtrip" `Quick test_async_publish_locate_roundtrip;
          Alcotest.test_case "50 racing locates" `Quick test_concurrent_async_locates_race_cleanly;
          Alcotest.test_case "locate races pointer-node failure" `Quick
            test_locate_races_failure_of_pointer_node;
        ] );
      ( "daemons",
        [
          Alcotest.test_case "heartbeat repairs tables" `Quick test_heartbeat_detects_failures;
          Alcotest.test_case "republish outlives TTL" `Quick test_republish_daemon_refreshes_expiry;
        ] );
    ]
