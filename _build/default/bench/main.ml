(* Benchmark harness.

   Two halves:

   1. The reproduction tables — one per paper table/figure/theorem claim
      (experiment ids E1..E16, see DESIGN.md section 4 and EXPERIMENTS.md).
      These print the same rows/series the paper reports.

   2. Bechamel microbenchmarks of the core operations (route, publish,
      locate, insert, multicast, Chord lookup) on a prebuilt network.

   Run `dune exec bench/main.exe` for the quick profile (CI-sized);
   `dune exec bench/main.exe -- --full` for paper-scale runs;
   `dune exec bench/main.exe -- --only table1,stretch` to select tables;
   `--no-micro` / `--no-tables` skip one half. *)

open Tapestry

let usage = "main.exe [--full] [--seed N] [--only a,b,c] [--no-micro] [--no-tables]"

type options = {
  mutable mode : Evaluation.Experiment.mode;
  mutable seed : int;
  mutable only : string list;
  mutable micro : bool;
  mutable tables : bool;
}

let parse_args () =
  let o =
    {
      mode = Evaluation.Experiment.Quick;
      seed = 42;
      only = [];
      micro = true;
      tables = true;
    }
  in
  let rec go = function
    | [] -> ()
    | "--full" :: rest ->
        o.mode <- Evaluation.Experiment.Full;
        go rest
    | "--seed" :: v :: rest ->
        o.seed <- int_of_string v;
        go rest
    | "--only" :: v :: rest ->
        o.only <- String.split_on_char ',' v;
        go rest
    | "--no-micro" :: rest ->
        o.micro <- false;
        go rest
    | "--no-tables" :: rest ->
        o.tables <- false;
        go rest
    | "--help" :: _ ->
        Printf.printf "usage: %s\nexperiments: %s\n" usage
          (String.concat ", " Evaluation.Experiment.names);
        exit 0
    | other :: _ ->
        Printf.eprintf "unknown argument %s\nusage: %s\n" other usage;
        exit 2
  in
  go (List.tl (Array.to_list Sys.argv));
  o

(* --- Bechamel microbenchmarks --- *)

let micro_tests seed =
  let open Bechamel in
  let n = 256 in
  let rng = Simnet.Rng.create seed in
  let metric = Simnet.Topology.generate Simnet.Topology.Uniform_square ~n ~rng in
  let addrs = List.init n (fun i -> i) in
  let net, _ = Insert.build_incremental ~seed:(seed + 1) Config.default metric ~addrs in
  let cfg = net.Network.config in
  let guids =
    Array.init 64 (fun _ ->
        let server = Network.random_alive net in
        let guid =
          Node_id.random ~base:cfg.Config.base ~len:cfg.Config.id_digits
            net.Network.rng
        in
        ignore (Publish.publish net ~server guid);
        guid)
  in
  let i = ref 0 in
  let next_guid () =
    incr i;
    guids.(!i mod Array.length guids)
  in
  let route_test =
    Test.make ~name:"route_to_root (n=256)"
      (Staged.stage (fun () ->
           let from = Network.random_alive net in
           ignore (Route.route_to_root net ~from (next_guid ()))))
  in
  let locate_test =
    Test.make ~name:"locate (n=256)"
      (Staged.stage (fun () ->
           let client = Network.random_alive net in
           ignore (Locate.locate net ~client (next_guid ()))))
  in
  let publish_test =
    Test.make ~name:"republish (n=256)"
      (Staged.stage (fun () ->
           let server = Network.random_alive net in
           ignore (Publish.republish net ~server (next_guid ()))))
  in
  let multicast_test =
    Test.make ~name:"multicast len-1 prefix (n=256)"
      (Staged.stage (fun () ->
           let anchor = Network.random_alive net in
           let prefix = Node_id.digits anchor.Node.id in
           ignore (Multicast.run net ~start:anchor ~prefix ~len:1 ~apply:ignore)))
  in
  (* insert+delete cycle on a side network so [net] stays stable *)
  let net2, _ =
    Insert.build_incremental ~seed:(seed + 7) Config.default metric
      ~addrs:(List.init 128 (fun i -> i))
  in
  let insert_test =
    Test.make ~name:"insert+voluntary_delete (n=128)"
      (Staged.stage (fun () ->
           let gw = Network.random_alive net2 in
           let r = Insert.insert net2 ~gateway:gw ~addr:200 in
           ignore (Delete.voluntary net2 r.Insert.node)))
  in
  let ch = Baselines.Chord.create ~seed:(seed + 3) ~m:24 ~succ_list:4 metric in
  ignore (Baselines.Chord.bootstrap ch ~addr:0);
  for addr = 1 to n - 1 do
    ignore (Baselines.Chord.join ch ~gateway:(Baselines.Chord.random_node ch) ~addr)
  done;
  Baselines.Chord.stabilize_all ch ~rounds:2;
  let chord_test =
    Test.make ~name:"chord lookup (n=256)"
      (Staged.stage (fun () ->
           let from = Baselines.Chord.random_node ch in
           ignore (Baselines.Chord.lookup ch ~from (!i * 7919 land 0xFFFFFF))))
  in
  [ route_test; locate_test; publish_test; multicast_test; insert_test; chord_test ]

let run_micro seed =
  let open Bechamel in
  let tests = micro_tests seed in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:(Some 100) () in
  print_endline "== B1: Bechamel microbenchmarks (ns/op, OLS on monotonic clock) ==";
  List.iter
    (fun test ->
      List.iter
        (fun elt ->
          let raw = Benchmark.run cfg [ instance ] elt in
          let est = Analyze.one ols instance raw in
          let ns =
            match Analyze.OLS.estimates est with Some (x :: _) -> x | _ -> nan
          in
          Printf.printf "  %-34s %12.0f ns/op\n%!" (Test.Elt.name elt) ns)
        (Test.elements test))
    tests

let () =
  let o = parse_args () in
  if o.tables then Evaluation.Experiment.run_and_print ~seed:o.seed o.mode o.only;
  if o.micro then run_micro o.seed
