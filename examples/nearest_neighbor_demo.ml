(* The distributed nearest-neighbor algorithm of Section 3 as a standalone
   service: after joining, every node's level-0 neighbor set answers
   "who is my closest peer?" without any global knowledge — this demo checks
   the answers against brute force and shows the per-join cost that the
   algorithm's O(log^2 n) bound is about.

   Run with: dune exec examples/nearest_neighbor_demo.exe *)

open Tapestry

let () =
  let seed = 31 in
  let n = 300 in
  let rng = Simnet.Rng.create seed in
  let metric = Simnet.Topology.generate Simnet.Topology.Uniform_torus ~n ~rng in
  let addrs = List.init n (fun i -> i) in
  let net, reports = Insert.build_incremental ~seed:(seed + 1) Config.default metric ~addrs in
  Printf.printf "built %d nodes on a torus (expansion constant ~4)\n\n" n;

  (* How expensive was the neighbor-table acquisition per join? *)
  let contacts =
    List.map
      (fun (r : Insert.report) ->
        float_of_int r.Insert.nn_trace.Nearest_neighbor.nodes_contacted)
      reports
  in
  Format.printf "nodes contacted per join: %a@." Simnet.Stats.pp_summary
    (Simnet.Stats.summarize contacts);
  let backfills =
    List.map
      (fun (r : Insert.report) ->
        float_of_int r.Insert.nn_trace.Nearest_neighbor.holes_backfilled)
      reports
  in
  Format.printf "Property-1 backfills per join (should be ~0): %a@.@."
    Simnet.Stats.pp_summary
    (Simnet.Stats.summarize backfills);

  (* Every node answers a nearest-neighbor query from its own table;
     brute force is the referee. *)
  let correct = ref 0 and total = ref 0 and off_by = ref [] in
  List.iter
    (fun (node : Node.t) ->
      incr total;
      match
        ( Nearest_neighbor.nearest_neighbor net ~from:node,
          Network.true_nearest_neighbor net node )
      with
      | Some got, Some want ->
          if Node_id.equal got.Node.id want.Node.id then incr correct
          else begin
            let ratio = Network.dist net node got /. Network.dist net node want in
            off_by := ratio :: !off_by
          end
      | _ -> ())
    (Network.alive_nodes net);
  Printf.printf "nearest-neighbor answers: %d/%d exact\n" !correct !total;
  match !off_by with
  | [] -> ()
  | _ :: _ ->
      Format.printf "  misses are near-ties; got/true distance ratio: %a@."
        Simnet.Stats.pp_summary
        (Simnet.Stats.summarize !off_by)
