(* Quickstart: bring up a Tapestry network node by node, publish an object
   from two servers, and locate it from a few clients.

   Run with: dune exec examples/quickstart.exe *)

open Tapestry

let () =
  (* 1. A metric space: 100 hosts placed uniformly in a unit square.  Any
     Simnet.Metric works; the protocols only ever ask for distances. *)
  let rng = Simnet.Rng.create 2024 in
  let n = 100 in
  let metric = Simnet.Topology.generate Simnet.Topology.Uniform_square ~n ~rng in

  (* 2. Grow the network with the paper's dynamic insertion algorithm: every
     node after the first joins through a random gateway. *)
  let addrs = List.init n (fun i -> i) in
  let net, reports = Insert.build_incremental ~seed:7 Config.default metric ~addrs in
  Printf.printf "network up: %d nodes\n" (Network.node_count net);
  let mean_msgs =
    List.fold_left (fun a (r : Insert.report) -> a + r.Insert.cost.Simnet.Cost.messages)
      0 reports
    |> fun total -> float_of_int total /. float_of_int (List.length reports)
  in
  Printf.printf "mean join cost: %.1f messages\n\n" mean_msgs;

  (* 3. Publish one object from two replica servers. *)
  let cfg = net.Network.config in
  let guid = Node_id.random ~base:cfg.Config.base ~len:cfg.Config.id_digits net.Network.rng in
  let server_a = Network.random_alive net in
  let server_b = Network.random_alive net in
  ignore (Publish.publish net ~server:server_a guid);
  ignore (Publish.publish net ~server:server_b guid);
  Printf.printf "object %s stored at %s and %s\n" (Node_id.to_string guid)
    (Node_id.to_string server_a.Node.id)
    (Node_id.to_string server_b.Node.id);

  (* 4. Locate it from three random clients; each should get the replica
     close to it, at low stretch. *)
  for _ = 1 to 3 do
    let client = Network.random_alive net in
    let res, cost = Network.measure net (fun () -> Locate.locate net ~client guid) in
    match res.Locate.server with
    | Some s ->
        let optimal =
          min (Network.dist net client server_a) (Network.dist net client server_b)
        in
        Printf.printf
          "client %s -> replica %s | %d hops, latency %.4f, optimal %.4f, stretch %.2f\n"
          (Node_id.to_string client.Node.id)
          (Node_id.to_string s.Node.id)
          cost.Simnet.Cost.hops cost.Simnet.Cost.latency optimal
          (if optimal > 0. then cost.Simnet.Cost.latency /. optimal else 1.)
    | None -> Printf.printf "object not found (unexpected)\n"
  done;

  (* 5. A server withdraws; the object stays available via the other one. *)
  print_newline ();
  ignore (Delete.voluntary net server_a);
  Printf.printf "server %s left the network (voluntary delete)\n"
    (Node_id.to_string server_a.Node.id);
  let client = Network.random_alive net in
  let res = Locate.locate net ~client guid in
  (match res.Locate.server with
  | Some s ->
      Printf.printf "object still available, now served by %s\n"
        (Node_id.to_string s.Node.id)
  | None -> Printf.printf "object lost (unexpected)\n");

  (* 6. Everything above holds by construction, not luck: check the paper's
     invariants over the final state. *)
  assert (match Network.check_property1 net with [] -> true | _ :: _ -> false);
  assert (match Verify.check_property4 net with [] -> true | _ :: _ -> false);
  print_endline "invariants hold: Property 1 (consistency), Property 4 (pointer paths)"
