(* Audit and Verify coverage: a healthy mesh audits clean, and each
   injected corruption (dropped backpointer, reordered slot, faked hole,
   expired pointer, evicted owner) is reported as exactly that violation.
   Plus a regression that check_property4 finds a deliberately deleted
   pointer. *)

open Tapestry

let build ?(n = 64) ?(seed = 7) () =
  let rng = Simnet.Rng.create seed in
  let metric = Simnet.Topology.generate Simnet.Topology.Uniform_square ~n ~rng in
  let addrs = List.init n (fun i -> i) in
  Insert.build_incremental ~seed:(seed + 1) Config.default metric ~addrs

let codes report = List.map Audit.violation_code report.Audit.violations

let check_clean name report =
  Alcotest.(check (list string)) (name ^ " audits clean") [] (codes report)

(* Find a slot of some core node with at least [min_entries] non-owner
   entries, away from the owner's own digit column.  Core nodes only: hole
   certification (Property 1) is defined over the core membership. *)
let find_victim_slot net ~min_entries =
  let found = ref None in
  List.iter
    (fun (n : Node.t) ->
      if Option.is_none !found then
        Routing_table.iter_entries n.Node.table (fun ~level ~digit _ ->
            if
              Option.is_none !found
              && digit <> Node_id.digit n.Node.id level
              && List.length (Routing_table.slot n.Node.table ~level ~digit)
                 >= min_entries
            then found := Some (n, level, digit)))
    (Network.core_nodes net);
  match !found with
  | Some v -> v
  | None -> Alcotest.fail "no suitable slot found for corruption"

let test_fresh_network_clean () =
  let net, _ = build ~n:256 ~seed:11 () in
  let report = Audit.run net in
  Alcotest.(check int) "all nodes audited" 256 report.Audit.nodes_audited;
  Alcotest.(check bool) "entries were checked" true
    (report.Audit.entries_checked > 0);
  Alcotest.(check bool) "holes were certified" true
    (report.Audit.holes_certified > 0);
  check_clean "fresh 256-node network" report

let test_clean_after_publishes () =
  let net, _ = build () in
  let cfg = net.Network.config in
  for _ = 1 to 10 do
    let server = Network.random_alive net in
    let guid =
      Node_id.random ~base:cfg.Config.base ~len:cfg.Config.id_digits
        net.Network.rng
    in
    ignore (Publish.publish net ~server guid)
  done;
  check_clean "network with published objects" (Audit.run net)

let test_dropped_backpointer_detected () =
  let net, _ = build () in
  let holder, level, digit = find_victim_slot net ~min_entries:1 in
  let entry =
    List.hd (Routing_table.slot holder.Node.table ~level ~digit)
  in
  let target = Network.find_exn net entry.Routing_table.id in
  Routing_table.remove_backpointer target.Node.table ~level holder.Node.id;
  let report = Audit.run net in
  Alcotest.(check (list string)) "exactly one violation"
    [ "missing-backpointer" ] (codes report);
  (match report.Audit.violations with
  | [ Audit.Missing_backpointer { holder = h; level = l; target = t } ] ->
      Alcotest.(check bool) "holder" true (Node_id.equal h holder.Node.id);
      Alcotest.(check int) "level" level l;
      Alcotest.(check bool) "target" true (Node_id.equal t target.Node.id)
  | _ -> Alcotest.fail "unexpected violation payload");
  (* repairing the backpointer makes the audit clean again *)
  Routing_table.add_backpointer target.Node.table ~level holder.Node.id;
  check_clean "after repair" (Audit.run net)

let test_reordered_slot_detected () =
  let net, _ = build () in
  (* need two entries with distinct distances so reversal breaks order *)
  let node, level, digit = find_victim_slot net ~min_entries:2 in
  let entries = Routing_table.slot node.Node.table ~level ~digit in
  let first = List.hd entries and last = List.nth entries (List.length entries - 1) in
  if Float.equal first.Routing_table.dist last.Routing_table.dist then
    Alcotest.fail "victim slot has tied distances; pick another seed";
  Routing_table.inject_slot_for_test node.Node.table ~level ~digit
    (List.rev entries);
  let report = Audit.run net in
  Alcotest.(check (list string)) "exactly one violation" [ "misordered-slot" ]
    (codes report);
  match report.Audit.violations with
  | [ Audit.Misordered_slot { node = n; level = l; digit = d } ] ->
      Alcotest.(check bool) "node" true (Node_id.equal n node.Node.id);
      Alcotest.(check int) "level" level l;
      Alcotest.(check int) "digit" digit d
  | _ -> Alcotest.fail "unexpected violation payload"

let test_fake_hole_detected () =
  let net, _ = build () in
  let node, level, digit = find_victim_slot net ~min_entries:1 in
  let entries = Routing_table.slot node.Node.table ~level ~digit in
  (* detach cleanly (so no stale backpointers remain), then fake the hole *)
  List.iter
    (fun (e : Routing_table.entry) ->
      match Network.find net e.Routing_table.id with
      | Some t ->
          Routing_table.remove_backpointer t.Node.table ~level node.Node.id
      | None -> ())
    entries;
  Routing_table.inject_slot_for_test node.Node.table ~level ~digit [];
  let report = Audit.run net in
  Alcotest.(check (list string)) "exactly one violation"
    [ "uncertified-hole" ] (codes report);
  match report.Audit.violations with
  | [ Audit.Uncertified_hole { node = n; level = l; digit = d; witness } ] ->
      Alcotest.(check bool) "node" true (Node_id.equal n node.Node.id);
      Alcotest.(check int) "level" level l;
      Alcotest.(check int) "digit" digit d;
      (* the witness really does extend (prefix, digit): the hole is a lie *)
      Alcotest.(check int) "witness digit" digit (Node_id.digit witness l);
      Alcotest.(check bool) "witness shares prefix" true
        (Node_id.common_prefix_len witness node.Node.id >= l)
  | _ -> Alcotest.fail "unexpected violation payload"

let test_missing_owner_detected () =
  let net, _ = build () in
  (* a slot in the owner's own digit column that also holds another node,
     so dropping the owner leaves no hole behind *)
  let found = ref None in
  List.iter
    (fun (n : Node.t) ->
      let table = n.Node.table in
      for level = 0 to Routing_table.levels table - 1 do
        let digit = Node_id.digit n.Node.id level in
        let entries = Routing_table.slot table ~level ~digit in
        if Option.is_none !found && List.length entries >= 2 then
          found := Some (n, level, digit, entries)
      done)
    (Network.core_nodes net);
  match !found with
  | None -> Alcotest.fail "no shared owner slot found; pick another seed"
  | Some (node, level, digit, entries) ->
      Routing_table.inject_slot_for_test node.Node.table ~level ~digit
        (List.filter
           (fun (e : Routing_table.entry) ->
             not (Node_id.equal e.Routing_table.id node.Node.id))
           entries);
      let report = Audit.run net in
      Alcotest.(check (list string)) "exactly one violation"
        [ "missing-owner" ] (codes report);
      (match report.Audit.violations with
      | [ Audit.Missing_owner { node = n; level = l } ] ->
          Alcotest.(check bool) "node" true (Node_id.equal n node.Node.id);
          Alcotest.(check int) "level" level l
      | _ -> Alcotest.fail "unexpected violation payload")

let test_expired_pointer_detected () =
  let net, _ = build () in
  let cfg = net.Network.config in
  let server = Network.random_alive net in
  let guid =
    Node_id.random ~base:cfg.Config.base ~len:cfg.Config.id_digits
      net.Network.rng
  in
  ignore (Publish.publish net ~server guid);
  check_clean "before corruption" (Audit.run net);
  let root = Network.surrogate_oracle net guid in
  let record =
    match
      Pointer_store.find root.Node.pointers ~guid ~server:server.Node.id
        ~root_idx:0
    with
    | Some r -> r
    | None -> Alcotest.fail "root lost the pointer it was published"
  in
  record.Pointer_store.expires <- net.Network.clock -. 1.;
  let report = Audit.run net in
  Alcotest.(check (list string)) "exactly one violation"
    [ "expired-pointer" ] (codes report);
  match report.Audit.violations with
  | [ Audit.Expired_pointer { node; guid = g; server = s; _ } ] ->
      Alcotest.(check bool) "at the root" true (Node_id.equal node root.Node.id);
      Alcotest.(check bool) "guid" true (Node_id.equal g guid);
      Alcotest.(check bool) "server" true (Node_id.equal s server.Node.id)
  | _ -> Alcotest.fail "unexpected violation payload"

let test_property4_finds_deleted_pointer () =
  let net, _ = build () in
  let cfg = net.Network.config in
  let server = Network.random_alive net in
  let guid =
    Node_id.random ~base:cfg.Config.base ~len:cfg.Config.id_digits
      net.Network.rng
  in
  ignore (Publish.publish net ~server guid);
  Alcotest.(check int) "publish leaves no gaps" 0
    (List.length (Verify.check_property4 net));
  let root = Network.surrogate_oracle net guid in
  Alcotest.(check bool) "pointer removed" true
    (Pointer_store.remove root.Node.pointers ~guid ~server:server.Node.id
       ~root_idx:0);
  match Verify.check_property4 net with
  | [ gap ] ->
      Alcotest.(check bool) "guid" true (Node_id.equal gap.Verify.guid guid);
      Alcotest.(check bool) "server" true
        (Node_id.equal gap.Verify.server server.Node.id);
      Alcotest.(check bool) "missing at the root" true
        (Node_id.equal gap.Verify.missing_at root.Node.id)
  | gaps ->
      Alcotest.failf "expected exactly one gap, got %d" (List.length gaps)

let () =
  Alcotest.run "audit"
    [
      ( "clean states",
        [
          Alcotest.test_case "fresh 256-node network" `Quick
            test_fresh_network_clean;
          Alcotest.test_case "after publishes" `Quick test_clean_after_publishes;
        ] );
      ( "injected corruptions",
        [
          Alcotest.test_case "dropped backpointer" `Quick
            test_dropped_backpointer_detected;
          Alcotest.test_case "reordered slot" `Quick test_reordered_slot_detected;
          Alcotest.test_case "faked hole" `Quick test_fake_hole_detected;
          Alcotest.test_case "evicted owner" `Quick test_missing_owner_detected;
          Alcotest.test_case "expired pointer" `Quick
            test_expired_pointer_detected;
        ] );
      ( "verify regressions",
        [
          Alcotest.test_case "check_property4 finds deleted pointer" `Quick
            test_property4_finds_deleted_pointer;
        ] );
    ]
