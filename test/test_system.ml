(* System-level tests: non-default configurations (digit radix, ID length,
   redundancy, multi-root), adaptive joins, the full-text experiment harness
   in quick mode, and odds and ends that cross module boundaries. *)

open Tapestry

let build_with cfg ?(n = 80) ?(seed = 201) ?(kind = Simnet.Topology.Uniform_square) () =
  let rng = Simnet.Rng.create seed in
  let metric = Simnet.Topology.generate kind ~n ~rng in
  let addrs = List.init n (fun i -> i) in
  Insert.build_incremental ~seed:(seed + 1) cfg metric ~addrs

let exercise net =
  (* consistency + publish/locate + delete, in one sweep *)
  Alcotest.(check int) "P1" 0 (List.length (Network.check_property1 net));
  let cfg = net.Network.config in
  let guids =
    List.init 10 (fun _ ->
        let server = Network.random_alive net in
        let guid =
          Node_id.random ~base:cfg.Config.base ~len:cfg.Config.id_digits
            net.Network.rng
        in
        ignore (Publish.publish net ~server guid);
        guid)
  in
  List.iter
    (fun guid ->
      Alcotest.(check bool) "locatable" true (Verify.reachable_everywhere net guid))
    guids;
  Alcotest.(check int) "P4" 0 (List.length (Verify.check_property4 net));
  (* one voluntary delete of a non-server *)
  let victim =
    Network.alive_nodes net
    |> List.find (fun (v : Node.t) -> Node_id.Tbl.length v.Node.replicas = 0)
  in
  ignore (Delete.voluntary net victim);
  Alcotest.(check int) "P1 after delete" 0 (List.length (Network.check_property1 net))

let test_base4 () =
  (* base 4: long IDs, deep tables *)
  let cfg = { Config.default with Config.base = 4; id_digits = 16 } in
  let net, _ = build_with cfg () in
  exercise net

let test_base32 () =
  let cfg = { Config.default with Config.base = 32; id_digits = 6 } in
  let net, _ = build_with cfg () in
  exercise net

let test_short_ids () =
  (* 4-digit IDs: collisions in the namespace become plausible; fresh_id must
     avoid them and routing still resolves *)
  let cfg = { Config.default with Config.id_digits = 4 } in
  let net, _ = build_with cfg () in
  exercise net

let test_redundancy_one () =
  (* R = 1: no secondaries anywhere; everything must still hold statically *)
  let cfg = { Config.default with Config.redundancy = 1 } in
  let net, _ = build_with cfg () in
  exercise net

let test_multi_root_config () =
  let cfg = { Config.default with Config.root_set_size = 2 } in
  let net, _ = build_with cfg () in
  exercise net

let test_adaptive_joins () =
  let rng = Simnet.Rng.create 211 in
  let metric = Simnet.Topology.generate Simnet.Topology.Clustered ~n:100 ~rng in
  let addrs = List.init 90 (fun i -> i) in
  let net, _ = Insert.build_incremental ~seed:212 Config.default metric ~addrs in
  for i = 0 to 9 do
    let gw = Network.random_alive net in
    let r = Insert.insert ~adaptive:true net ~gateway:gw ~addr:(90 + i) in
    Alcotest.(check bool) "active" true (r.Insert.node.Node.status = Node.Active)
  done;
  Alcotest.(check int) "P1 after adaptive joins" 0
    (List.length (Network.check_property1 net))

let test_bootstrap_pair () =
  (* the smallest dynamic network: one bootstrap + one join *)
  let cfg = Config.default in
  let rng = Simnet.Rng.create 221 in
  let metric = Simnet.Topology.generate Simnet.Topology.Uniform_square ~n:2 ~rng in
  let net, reports = Insert.build_incremental ~seed:222 cfg metric ~addrs:[ 0; 1 ] in
  Alcotest.(check int) "two nodes" 2 (Network.node_count net);
  Alcotest.(check int) "one report" 1 (List.length reports);
  let a = Network.random_alive net in
  let guid = Node_id.random ~base:16 ~len:8 net.Network.rng in
  ignore (Publish.publish net ~server:a guid);
  Alcotest.(check bool) "locatable from both" true (Verify.reachable_everywhere net guid);
  (* both nodes know each other at level 0 *)
  List.iter
    (fun (x : Node.t) ->
      Alcotest.(check bool) "has a neighbor" true
        (Routing_table.entry_count x.Node.table >= 1))
    (Network.alive_nodes net)

let test_empty_and_singleton () =
  let cfg = Config.default in
  let rng = Simnet.Rng.create 231 in
  let metric = Simnet.Topology.generate Simnet.Topology.Uniform_square ~n:1 ~rng in
  let net, _ = Insert.build_incremental ~seed:232 cfg metric ~addrs:[ 0 ] in
  let solo = Network.random_alive net in
  (* a singleton is its own root for everything *)
  let guid = Node_id.random ~base:16 ~len:8 net.Network.rng in
  let info = Route.route_to_root net ~from:solo guid in
  Alcotest.(check bool) "self root" true (Node_id.equal info.Route.root.Node.id solo.Node.id);
  ignore (Publish.publish net ~server:solo guid);
  Alcotest.(check bool) "self locate" true
    ((Locate.locate net ~client:solo guid).Locate.server <> None)

let test_locality_pointer_namespace () =
  (* local-branch records live under the reserved root index and never
     collide with wide-area records *)
  let rng = Simnet.Rng.create 241 in
  let ts = Simnet.Transit_stub.generate Simnet.Transit_stub.default_params ~rng in
  let metric = Simnet.Transit_stub.metric ts in
  let hosts = Simnet.Transit_stub.hosts ts in
  let net = Static_build.build ~seed:242 Config.default metric ~addrs:hosts in
  let same_stub = Simnet.Transit_stub.same_stub ts in
  let server = Network.random_alive net in
  let guid = Node_id.random ~base:16 ~len:8 net.Network.rng in
  Locality.publish net ~same_stub ~server guid;
  (* server itself holds both the root_idx 0 record and the local one *)
  Alcotest.(check bool) "wide-area record" true
    (Pointer_store.find server.Node.pointers ~guid ~server:server.Node.id ~root_idx:0
    <> None);
  Alcotest.(check bool) "local record" true
    (Pointer_store.find server.Node.pointers ~guid ~server:server.Node.id
       ~root_idx:Locality.local_root_idx
    <> None)

(* --- harness smoke: every experiment runs in quick mode --- *)

let test_experiments_produce_tables () =
  List.iter
    (fun name ->
      match name with
      | "table1" | "stretch" | "insert_scaling" | "availability"
      | "async_recovery" | "nn_vs_kr" | "continual_optimization" | "redundancy" ->
          () (* heavyweight even in quick mode; covered by bench runs *)
      | name ->
          let tables = Evaluation.Experiment.by_name Evaluation.Experiment.Quick name in
          Alcotest.(check bool) (name ^ " yields tables") true
            (match tables with [] -> false | _ :: _ -> true);
          List.iter
            (fun t ->
              Alcotest.(check bool)
                (name ^ " table renders")
                true
                (String.length (Simnet.Stats.Table.render t) > 0))
            tables)
    Evaluation.Experiment.names

let test_experiment_unknown_name () =
  Alcotest.check_raises "unknown experiment"
    (Invalid_argument "Experiment.by_name: unknown experiment nope") (fun () ->
      ignore (Evaluation.Experiment.by_name Evaluation.Experiment.Quick "nope"))

let () =
  Alcotest.run "system"
    [
      ( "config variants",
        [
          Alcotest.test_case "base 4" `Quick test_base4;
          Alcotest.test_case "base 32" `Quick test_base32;
          Alcotest.test_case "short ids" `Quick test_short_ids;
          Alcotest.test_case "R = 1" `Quick test_redundancy_one;
          Alcotest.test_case "two roots" `Quick test_multi_root_config;
        ] );
      ( "degenerate networks",
        [
          Alcotest.test_case "bootstrap pair" `Quick test_bootstrap_pair;
          Alcotest.test_case "singleton" `Quick test_empty_and_singleton;
        ] );
      ( "features",
        [
          Alcotest.test_case "adaptive joins" `Quick test_adaptive_joins;
          Alcotest.test_case "locality namespaces" `Quick test_locality_pointer_namespace;
        ] );
      ( "experiment harness",
        [
          Alcotest.test_case "quick tables render" `Quick test_experiments_produce_tables;
          Alcotest.test_case "unknown name" `Quick test_experiment_unknown_name;
        ] );
    ]
