(* Property-based tests (qcheck): data-structure invariants and the paper's
   network invariants under random operation sequences. *)

open Tapestry

let count = 50

(* --- Node_id --- *)

let id_gen =
  QCheck.Gen.(
    map
      (fun digits -> Node_id.make (Array.of_list digits))
      (list_size (return 8) (int_bound 15)))

let arb_id = QCheck.make ~print:Node_id.to_string id_gen

let prop_id_roundtrip =
  QCheck.Test.make ~count ~name:"node_id to_string/of_string roundtrip" arb_id
    (fun id -> Node_id.equal id (Node_id.of_string ~base:16 (Node_id.to_string id)))

let prop_cpl_symmetric =
  QCheck.Test.make ~count ~name:"common_prefix_len symmetric"
    (QCheck.pair arb_id arb_id) (fun (a, b) ->
      Node_id.common_prefix_len a b = Node_id.common_prefix_len b a)

let prop_cpl_reflexive =
  QCheck.Test.make ~count ~name:"common_prefix_len reflexive = length" arb_id
    (fun a -> Node_id.common_prefix_len a a = Node_id.length a)

let prop_cpl_prefix_consistent =
  QCheck.Test.make ~count ~name:"has_prefix agrees with common_prefix_len"
    (QCheck.pair arb_id arb_id) (fun (a, b) ->
      let l = Node_id.common_prefix_len a b in
      let prefix = Node_id.digits b in
      Node_id.has_prefix a ~prefix ~len:l
      && (l = Node_id.length a || not (Node_id.has_prefix a ~prefix ~len:(l + 1))))

let prop_salt_deterministic =
  QCheck.Test.make ~count ~name:"salt is a function"
    (QCheck.pair arb_id QCheck.small_nat) (fun (id, i) ->
      Node_id.equal (Node_id.salt ~base:16 id i) (Node_id.salt ~base:16 id i))

(* --- Heap --- *)

let prop_heap_sorts =
  QCheck.Test.make ~count ~name:"heap drains in sorted order"
    QCheck.(list int) (fun xs ->
      let h = Simnet.Heap.create ~cmp:Int.compare in
      List.iter (fun x -> Simnet.Heap.push h x x) xs;
      List.map fst (Simnet.Heap.to_sorted_list h) = List.sort Int.compare xs)

(* --- Stats --- *)

let prop_gini_bounded =
  QCheck.Test.make ~count ~name:"gini in [0,1]"
    QCheck.(list_of_size (QCheck.Gen.int_range 1 40) (QCheck.float_bound_inclusive 100.))
    (fun xs ->
      let g = Simnet.Stats.gini xs in
      g >= -1e-9 && g <= 1. +. 1e-9)

let prop_percentile_monotone =
  QCheck.Test.make ~count ~name:"percentiles monotone"
    QCheck.(list_of_size (QCheck.Gen.int_range 1 50) (QCheck.float_bound_inclusive 100.))
    (fun xs ->
      Simnet.Stats.percentile xs 0.25 <= Simnet.Stats.percentile xs 0.75)

(* --- Id_index vs reference model --- *)

let prop_index_models_set =
  QCheck.Test.make ~count ~name:"id_index add/remove models a set"
    QCheck.(list (pair QCheck.bool arb_id))
    (fun ops ->
      let t = Id_index.create ~base:16 in
      let model = ref Node_id.Set.empty in
      List.iter
        (fun (add, id) ->
          if add then begin
            if not (Node_id.Set.mem id !model) then begin
              Id_index.add t id;
              model := Node_id.Set.add id !model
            end
          end
          else begin
            Id_index.remove t id;
            model := Node_id.Set.remove id !model
          end)
        ops;
      Id_index.size t = Node_id.Set.cardinal !model
      && Node_id.Set.for_all (Id_index.mem t) !model)

let prop_index_digits_after =
  QCheck.Test.make ~count ~name:"digits_after matches brute force"
    QCheck.(pair (list arb_id) arb_id)
    (fun (ids, probe) ->
      let ids = List.sort_uniq Node_id.compare ids in
      let t = Id_index.create ~base:16 in
      List.iter (Id_index.add t) ids;
      let prefix = Node_id.digits probe in
      List.for_all
        (fun len ->
          let got = Id_index.digits_after t ~prefix ~len in
          let want =
            List.filter_map
              (fun id ->
                if Node_id.has_prefix id ~prefix ~len then Some (Node_id.digit id len)
                else None)
              ids
            |> List.sort_uniq Int.compare
          in
          got = want)
        [ 0; 1; 2 ])

(* --- Routing table keeps the R closest --- *)

let prop_table_keeps_r_closest =
  let gen =
    QCheck.Gen.(list_size (int_range 1 25) (pair id_gen (float_bound_exclusive 100.)))
  in
  QCheck.Test.make ~count
    ~name:"routing slot retains exactly the R closest candidates"
    (QCheck.make gen)
    (fun candidates ->
      let cfg = { Config.default with Config.id_digits = 4; redundancy = 3 } in
      let owner = Node_id.make [| 0; 0; 0; 0 |] in
      let t = Routing_table.create cfg ~owner in
      (* force every candidate into level 0, digit = its first digit *)
      let seen = Hashtbl.create 16 in
      List.iter
        (fun (id, dist) ->
          let id = Node_id.make (Array.sub (Node_id.digits id) 0 4) in
          if (not (Node_id.equal id owner)) && not (Hashtbl.mem seen (Node_id.to_string id))
          then begin
            Hashtbl.replace seen (Node_id.to_string id) dist;
            ignore (Routing_table.consider t ~level:0 ~candidate:id ~dist)
          end)
        candidates;
      (* per digit, slot = the 3 closest distinct candidates *)
      List.init 16 (fun digit -> digit)
      |> List.for_all (fun digit ->
             let expected =
               Hashtbl.fold
                 (fun ids d acc ->
                   let id = Node_id.of_string ~base:16 ids in
                   if Node_id.digit id 0 = digit then (d, ids) :: acc else acc)
                 seen []
               |> List.sort (fun (d1, i1) (d2, i2) ->
                      match Float.compare d1 d2 with
                      | 0 -> String.compare i1 i2
                      | c -> c)
               |> List.filteri (fun i _ -> i < 3)
               |> List.map snd |> List.sort String.compare
             in
             let expected =
               if digit = 0 then
                 (* owner's own slot also carries the owner itself *)
                 List.sort String.compare (Node_id.to_string owner :: expected)
                 |> List.filteri (fun i _ -> i < 999)
               else expected
             in
             let got =
               Routing_table.slot t ~level:0 ~digit
               |> List.map (fun (e : Routing_table.entry) -> Node_id.to_string e.Routing_table.id)
               |> List.sort String.compare
             in
             (* owner slot may hold self + up to R others; compare as sets on
                the non-owner slots only *)
             if digit = Node_id.digit owner 0 then true else got = expected))

(* --- network-level properties --- *)

let net_seed_gen = QCheck.Gen.int_range 1 10_000

let prop_incremental_p1 =
  QCheck.Test.make ~count:12 ~name:"random joins keep Property 1"
    (QCheck.make QCheck.Gen.(pair net_seed_gen (int_range 8 40)))
    (fun (seed, n) ->
      let rng = Simnet.Rng.create seed in
      let metric = Simnet.Topology.generate Simnet.Topology.Uniform_square ~n ~rng in
      let addrs = List.init n (fun i -> i) in
      let net, _ = Insert.build_incremental ~seed:(seed + 1) Config.default metric ~addrs in
      match Network.check_property1 net with [] -> true | _ :: _ -> false)

let prop_unique_roots_random_nets =
  QCheck.Test.make ~count:12 ~name:"random networks give unique roots"
    (QCheck.make QCheck.Gen.(pair net_seed_gen (int_range 8 40)))
    (fun (seed, n) ->
      let rng = Simnet.Rng.create seed in
      let metric = Simnet.Topology.generate Simnet.Topology.Uniform_square ~n ~rng in
      let addrs = List.init n (fun i -> i) in
      let net, _ = Insert.build_incremental ~seed:(seed + 1) Config.default metric ~addrs in
      let cfg = net.Network.config in
      List.for_all
        (fun _ ->
          let guid =
            Node_id.random ~base:cfg.Config.base ~len:cfg.Config.id_digits net.Network.rng
          in
          Verify.roots_agree net guid ~samples:6)
        [ 1; 2; 3 ])

let prop_join_leave_p1 =
  QCheck.Test.make ~count:10 ~name:"random join/leave sequences keep Property 1"
    (QCheck.make QCheck.Gen.(pair net_seed_gen (list_size (int_range 5 20) bool)))
    (fun (seed, ops) ->
      let n = 20 in
      let spare = 30 in
      let rng = Simnet.Rng.create seed in
      let metric =
        Simnet.Topology.generate Simnet.Topology.Uniform_square ~n:(n + spare) ~rng
      in
      let addrs = List.init n (fun i -> i) in
      let net, _ = Insert.build_incremental ~seed:(seed + 1) Config.default metric ~addrs in
      let next = ref n in
      List.iter
        (fun join ->
          if join && !next < n + spare then begin
            let gw = Network.random_alive net in
            ignore (Insert.insert net ~gateway:gw ~addr:!next);
            incr next
          end
          else if List.length (Network.alive_nodes net) > 3 then begin
            let v = Network.random_alive net in
            if v.Node.status = Node.Active then ignore (Delete.voluntary net v)
          end)
        ops;
      match Network.check_property1 net with [] -> true | _ :: _ -> false)

let prop_publish_locate_total =
  QCheck.Test.make ~count:10 ~name:"published objects are always locatable"
    (QCheck.make QCheck.Gen.(pair net_seed_gen (int_range 10 35)))
    (fun (seed, n) ->
      let rng = Simnet.Rng.create seed in
      let metric = Simnet.Topology.generate Simnet.Topology.Uniform_square ~n ~rng in
      let addrs = List.init n (fun i -> i) in
      let net, _ = Insert.build_incremental ~seed:(seed + 1) Config.default metric ~addrs in
      let cfg = net.Network.config in
      List.for_all
        (fun _ ->
          let server = Network.random_alive net in
          let guid =
            Node_id.random ~base:cfg.Config.base ~len:cfg.Config.id_digits net.Network.rng
          in
          ignore (Publish.publish net ~server guid);
          Verify.reachable_everywhere net guid)
        [ 1; 2; 3 ])

(* --- baseline invariants over random instances --- *)

let prop_pastry_converges =
  QCheck.Test.make ~count:8 ~name:"pastry routes converge on random networks"
    (QCheck.make QCheck.Gen.(pair net_seed_gen (int_range 10 60)))
    (fun (seed, n) ->
      let rng = Simnet.Rng.create seed in
      let metric = Simnet.Topology.generate Simnet.Topology.Uniform_square ~n ~rng in
      let pa = Baselines.Pastry.create ~seed:(seed + 1) Config.default metric in
      ignore (Baselines.Pastry.bootstrap pa ~addr:0);
      for addr = 1 to n - 1 do
        ignore (Baselines.Pastry.join pa ~gateway:(Baselines.Pastry.random_node pa) ~addr)
      done;
      Baselines.Pastry.check_routes_converge pa ~samples:10)

let prop_can_partitions =
  QCheck.Test.make ~count:8 ~name:"CAN zones tile the space on random joins"
    (QCheck.make QCheck.Gen.(triple net_seed_gen (int_range 5 60) (int_range 2 4)))
    (fun (seed, n, dims) ->
      let rng = Simnet.Rng.create seed in
      let metric = Simnet.Topology.generate Simnet.Topology.Uniform_square ~n ~rng in
      let ca = Baselines.Can.create ~seed:(seed + 1) ~dims metric in
      ignore (Baselines.Can.bootstrap ca ~addr:0);
      for addr = 1 to n - 1 do
        ignore (Baselines.Can.join ca ~gateway:(Baselines.Can.random_node ca) ~addr)
      done;
      Baselines.Can.check_zones_partition ca ~samples:300)

let prop_tz_oracle_bound =
  QCheck.Test.make ~count:8 ~name:"Thorup-Zwick oracle within 2k-1 on random metrics"
    (QCheck.make QCheck.Gen.(pair net_seed_gen (int_range 10 60)))
    (fun (seed, n) ->
      let rng = Simnet.Rng.create seed in
      let metric = Simnet.Topology.generate Simnet.Topology.Random_metric ~n ~rng in
      let tz = Baselines.Thorup_zwick.build ~seed:(seed + 1) metric in
      let bound = float_of_int ((2 * Baselines.Thorup_zwick.k tz) - 1) in
      let ok = ref true in
      for _ = 1 to 100 do
        let u = Simnet.Rng.int rng n and v = Simnet.Rng.int rng n in
        let est = Baselines.Thorup_zwick.approx_distance tz u v in
        let true_d = Simnet.Metric.dist metric u v in
        if est < true_d -. 1e-9 then ok := false;
        if u <> v && est > (bound *. true_d) +. 1e-9 then ok := false
      done;
      !ok)

let () =
  let to_alcotest = QCheck_alcotest.to_alcotest in
  Alcotest.run "properties"
    [
      ( "identifiers",
        List.map to_alcotest
          [
            prop_id_roundtrip; prop_cpl_symmetric; prop_cpl_reflexive;
            prop_cpl_prefix_consistent; prop_salt_deterministic;
          ] );
      ( "data structures",
        List.map to_alcotest
          [
            prop_heap_sorts; prop_gini_bounded; prop_percentile_monotone;
            prop_index_models_set; prop_index_digits_after; prop_table_keeps_r_closest;
          ] );
      ( "network invariants",
        List.map to_alcotest
          [
            prop_incremental_p1; prop_unique_roots_random_nets; prop_join_leave_p1;
            prop_publish_locate_total;
          ] );
      ( "baseline invariants",
        List.map to_alcotest
          [ prop_pastry_converges; prop_can_partitions; prop_tz_oracle_bound ] );
    ]
