(* Tests for dynamic membership: the nearest-neighbor join (Section 3),
   insertion (Section 4) and deletion (Section 5). *)

open Tapestry

let build_dynamic ?(n = 120) ?(seed = 21) ?(cfg = Config.default)
    ?(kind = Simnet.Topology.Uniform_square) ?(extra = 0) () =
  let rng = Simnet.Rng.create seed in
  let metric = Simnet.Topology.generate kind ~n:(n + extra) ~rng in
  let addrs = List.init n (fun i -> i) in
  Insert.build_incremental ~seed:(seed + 1) cfg metric ~addrs

let random_guid net =
  let cfg = net.Network.config in
  Node_id.random ~base:cfg.Config.base ~len:cfg.Config.id_digits net.Network.rng

(* --- incremental construction --- *)

let test_incremental_property1 () =
  let net, _ = build_dynamic ~n:150 () in
  Alcotest.(check int) "P1 after 150 joins" 0
    (List.length (Network.check_property1 net))

let test_incremental_property2_quality () =
  let net, _ = build_dynamic ~n:150 () in
  let total = ref 0 and optimal = ref 0 in
  Network.check_property2 net ~total ~optimal;
  let ratio = float_of_int !optimal /. float_of_int (max 1 !total) in
  Alcotest.(check bool)
    (Printf.sprintf "locality quality %.3f > 0.85" ratio)
    true (ratio > 0.85)

let test_incremental_nearest_neighbors () =
  let net, _ = build_dynamic ~n:150 () in
  let ok = ref 0 and total = ref 0 in
  List.iter
    (fun (node : Node.t) ->
      incr total;
      match
        ( Nearest_neighbor.nearest_neighbor net ~from:node,
          Network.true_nearest_neighbor net node )
      with
      | Some a, Some b when Node_id.equal a.Node.id b.Node.id -> incr ok
      | _ -> ())
    (Network.alive_nodes net);
  Alcotest.(check bool)
    (Printf.sprintf "NN exact for %d/%d" !ok !total)
    true
    (float_of_int !ok /. float_of_int !total > 0.95)

let test_incremental_all_active () =
  let net, reports = build_dynamic ~n:80 () in
  Alcotest.(check int) "all nodes alive" 80 (List.length (Network.alive_nodes net));
  List.iter
    (fun (r : Insert.report) ->
      Alcotest.(check bool) "active after join" true (r.Insert.node.Node.status = Node.Active))
    reports

let test_insert_cost_reasonable () =
  let net, reports = build_dynamic ~n:200 () in
  ignore net;
  let late =
    List.filteri (fun i _ -> i >= 100) reports
    |> List.map (fun (r : Insert.report) -> float_of_int r.Insert.cost.Simnet.Cost.messages)
  in
  let mean = Simnet.Stats.mean late in
  (* O(k log n) messages; with k=28 and 8 digit levels this stays well under
     the naive O(n) flood *)
  Alcotest.(check bool) (Printf.sprintf "mean %.0f < 150" mean) true (mean < 150.)

let test_insert_duplicate_id_rejected () =
  let net, _ = build_dynamic ~n:20 ~extra:1 () in
  let existing = Network.random_alive net in
  let gw = Network.random_alive net in
  Alcotest.check_raises "duplicate id"
    (Invalid_argument "Network.register: duplicate node id") (fun () ->
      ignore (Insert.insert ~id:existing.Node.id net ~gateway:gw ~addr:20))

let test_insert_transfers_root_pointers () =
  (* After a join, the surrogate roots must still answer for objects whose
     root moved to the new node: availability from everywhere. *)
  let net, _ = build_dynamic ~n:100 ~extra:30 () in
  let guids =
    List.init 25 (fun _ ->
        let server = Network.random_alive net in
        let guid = random_guid net in
        ignore (Publish.publish net ~server guid);
        guid)
  in
  for i = 0 to 29 do
    let gw = Network.random_alive net in
    ignore (Insert.insert net ~gateway:gw ~addr:(100 + i))
  done;
  List.iter
    (fun guid ->
      Alcotest.(check bool) "available after joins" true
        (Verify.reachable_everywhere net guid))
    guids;
  Alcotest.(check bool) "roots still unique" true
    (List.for_all (fun g -> Verify.roots_agree net g ~samples:10) guids)

let test_join_via_any_gateway_same_root () =
  (* the surrogate is a function of the ID set, not of the gateway *)
  let net, _ = build_dynamic ~n:100 ~extra:2 () in
  let id = Network.fresh_id net in
  let surrogate_oracle = Network.surrogate_oracle net id in
  let gw = Network.random_alive net in
  let r = Insert.insert ~id net ~gateway:gw ~addr:100 in
  Alcotest.(check bool) "surrogate is the oracle root" true
    (Node_id.equal r.Insert.surrogate.Node.id surrogate_oracle.Node.id)

(* --- Lemma 1 descent --- *)

let test_get_next_list_matches_oracle () =
  let net, _ = build_dynamic ~n:200 ~extra:1 () in
  let cfg = net.Network.config in
  let probe = Node.create cfg ~id:(Network.fresh_id net) ~addr:200 in
  let alive = Network.alive_nodes net in
  let k = 24 in
  let oracle_list level =
    alive
    |> List.filter (fun (m : Node.t) ->
           Node_id.common_prefix_len m.Node.id probe.Node.id >= level)
    |> List.map (fun m -> (Network.dist net probe m, m))
    |> List.sort (fun (d1, _) (d2, _) -> Float.compare d1 d2)
    |> List.filteri (fun i _ -> i < k)
    |> List.map snd
  in
  let surrogate = Network.surrogate_oracle net probe.Node.id in
  let max_level = Node_id.common_prefix_len probe.Node.id surrogate.Node.id in
  let current = ref (oracle_list max_level) in
  for level = max_level - 1 downto 0 do
    let next =
      Nearest_neighbor.get_next_list ~update_tables:false net ~new_node:probe
        ~level !current ~k
    in
    let oracle = oracle_list level in
    Alcotest.(check int)
      (Printf.sprintf "list size at level %d" level)
      (List.length oracle) (List.length next);
    List.iter2
      (fun (a : Node.t) (b : Node.t) ->
        if not (Node_id.equal a.Node.id b.Node.id) then
          Alcotest.failf "level %d list diverges from the k closest" level)
      next oracle;
    current := next
  done

(* --- deletion --- *)

let test_voluntary_delete_keeps_invariants () =
  let net, _ = build_dynamic ~n:120 () in
  let guids =
    List.init 20 (fun _ ->
        let server = Network.random_alive net in
        let guid = random_guid net in
        ignore (Publish.publish net ~server guid);
        guid)
  in
  (* delete a third of the nodes, never a server *)
  let servers =
    List.fold_left
      (fun acc g ->
        List.fold_left
          (fun acc (n : Node.t) -> Node_id.Set.add n.Node.id acc)
          acc
          (List.filter_map
             (fun (n : Node.t) -> if Node.stores_replica n g then Some n else None)
             (Network.alive_nodes net)))
      Node_id.Set.empty guids
  in
  let victims =
    Network.alive_nodes net
    |> List.filter (fun (v : Node.t) -> not (Node_id.Set.mem v.Node.id servers))
    |> List.filteri (fun i _ -> i < 40)
  in
  List.iter (fun v -> ignore (Delete.voluntary net v)) victims;
  Alcotest.(check int) "P1 after deletes" 0 (List.length (Network.check_property1 net));
  List.iter
    (fun guid ->
      Alcotest.(check bool) "objects survive deletes" true
        (Verify.reachable_everywhere net guid))
    guids

let test_voluntary_delete_cleans_links () =
  let net, _ = build_dynamic ~n:80 () in
  let victim = Network.random_alive net in
  ignore (Delete.voluntary net victim);
  (* no alive node still points at the departed one *)
  List.iter
    (fun (n : Node.t) ->
      Routing_table.iter_entries n.Node.table (fun ~level:_ ~digit:_ e ->
          if Node_id.equal e.Routing_table.id victim.Node.id then
            Alcotest.failf "%s still links to departed node" (Node_id.to_string n.Node.id)))
    (Network.alive_nodes net)

let test_voluntary_delete_reroots_objects () =
  let net, _ = build_dynamic ~n:100 () in
  (* find an object whose root is NOT its server, then delete the root *)
  let rec attempt tries =
    if tries = 0 then Alcotest.fail "could not find a removable root"
    else begin
      let server = Network.random_alive net in
      let guid = random_guid net in
      let outcome = Publish.publish net ~server guid in
      let root = List.hd outcome.Publish.roots in
      if Node_id.equal root.Node.id server.Node.id then attempt (tries - 1)
      else (server, guid, root)
    end
  in
  let _, guid, root = attempt 20 in
  ignore (Delete.voluntary net root);
  Alcotest.(check bool) "available after root departure" true
    (Verify.reachable_everywhere net guid)

let test_involuntary_lazy_repair () =
  let net, _ = build_dynamic ~n:120 () in
  let server = Network.random_alive net in
  let guid = random_guid net in
  ignore (Publish.publish net ~server guid);
  (* kill a handful of non-server nodes silently *)
  let victims =
    Network.alive_nodes net
    |> List.filter (fun (v : Node.t) -> not (Node_id.equal v.Node.id server.Node.id))
    |> List.filteri (fun i _ -> i < 12)
  in
  List.iter (fun v -> Delete.fail net v) victims;
  (* routes with the repairing handler keep working *)
  for _ = 1 to 60 do
    let from = Network.random_alive net in
    let info =
      Route.route_to_root ~on_dead:Delete.on_dead_repair net ~from guid
    in
    Alcotest.(check bool) "route ends at an alive node" true
      (Node.is_alive info.Route.root)
  done;
  (* republish restores full availability *)
  ignore (Maintenance.republish_all net);
  Alcotest.(check bool) "available after repair + republish" true
    (Verify.reachable_everywhere net guid)

let test_repair_hole_certifies_absence () =
  let net, _ = build_dynamic ~n:40 () in
  let node = Network.random_alive net in
  (* find a genuine hole (a digit with no matching node anywhere) *)
  let holes = Routing_table.holes node.Node.table in
  match
    List.find_opt
      (fun (level, digit) ->
        let prefix = Node_id.digits node.Node.id in
        not (Id_index.exists_extension net.Network.index ~prefix ~len:level ~digit))
      holes
  with
  | Some (level, digit) ->
      Alcotest.(check bool) "repair returns false on a genuine hole" false
        (Delete.repair_hole net ~owner:node ~level ~digit)
  | None -> () (* dense table: nothing to certify *)

let test_repair_all_holes_after_failures () =
  let net, _ = build_dynamic ~n:120 () in
  let victims =
    Network.alive_nodes net |> List.filteri (fun i _ -> i mod 7 = 0)
  in
  List.iter (fun v -> Delete.fail net v) victims;
  ignore (Delete.repair_all_holes net);
  Alcotest.(check int) "P1 restored by anti-entropy" 0
    (List.length (Network.check_property1 net))

let test_delete_last_but_one_node () =
  (* shrink a tiny network down to one node *)
  let net, _ = build_dynamic ~n:4 () in
  let rec shrink () =
    match Network.alive_nodes net with
    | [ _ ] | [] -> ()
    | v :: _ ->
        ignore (Delete.voluntary net v);
        shrink ()
  in
  shrink ();
  Alcotest.(check int) "one survivor" 1 (List.length (Network.alive_nodes net));
  let survivor = Network.random_alive net in
  (* the survivor is its own root for everything *)
  let info = Route.route_to_root net ~from:survivor (random_guid net) in
  Alcotest.(check bool) "self root" true
    (Node_id.equal info.Route.root.Node.id survivor.Node.id)

(* --- maintenance tick --- *)

let test_tick_republishes_on_interval () =
  let net, _ = build_dynamic ~n:60 () in
  let server = Network.random_alive net in
  let guid = random_guid net in
  ignore (Publish.publish net ~server guid);
  (* run many small ticks across several republish intervals: the object
     must stay continuously available despite TTL expiry *)
  for _ = 1 to 50 do
    Maintenance.tick net ~dt:(Config.default.Config.republish_interval /. 4.);
    let client = Network.random_alive net in
    Alcotest.(check bool) "continuously available" true
      ((Locate.locate net ~client guid).Locate.server <> None)
  done

let () =
  Alcotest.run "dynamic"
    [
      ( "incremental build",
        [
          Alcotest.test_case "property 1" `Quick test_incremental_property1;
          Alcotest.test_case "property 2 quality" `Quick test_incremental_property2_quality;
          Alcotest.test_case "nearest neighbors" `Quick test_incremental_nearest_neighbors;
          Alcotest.test_case "all active" `Quick test_incremental_all_active;
          Alcotest.test_case "insert cost" `Quick test_insert_cost_reasonable;
          Alcotest.test_case "duplicate id" `Quick test_insert_duplicate_id_rejected;
        ] );
      ( "insertion semantics",
        [
          Alcotest.test_case "root pointer transfer" `Quick test_insert_transfers_root_pointers;
          Alcotest.test_case "gateway independence" `Quick test_join_via_any_gateway_same_root;
          Alcotest.test_case "Lemma 1 descent" `Quick test_get_next_list_matches_oracle;
        ] );
      ( "deletion",
        [
          Alcotest.test_case "voluntary keeps invariants" `Quick test_voluntary_delete_keeps_invariants;
          Alcotest.test_case "voluntary cleans links" `Quick test_voluntary_delete_cleans_links;
          Alcotest.test_case "voluntary re-roots objects" `Quick test_voluntary_delete_reroots_objects;
          Alcotest.test_case "involuntary lazy repair" `Quick test_involuntary_lazy_repair;
          Alcotest.test_case "hole absence certified" `Quick test_repair_hole_certifies_absence;
          Alcotest.test_case "anti-entropy sweep" `Quick test_repair_all_holes_after_failures;
          Alcotest.test_case "shrink to one node" `Quick test_delete_last_but_one_node;
        ] );
      ( "maintenance",
        [ Alcotest.test_case "tick republish" `Quick test_tick_republishes_on_interval ] );
    ]
