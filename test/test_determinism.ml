(* Deterministic replay: the same simultaneous-insertion scenario run twice
   with equal seeds through Simnet.Fiber must produce identical event
   traces, identical final meshes, and zero stalled fibers.  This is the
   property that makes the Theorem 6 concurrency tests reproducible at
   all — any ambient randomness or time source would break it, which is
   exactly what the lint pass bans outside lib/simnet/rng.ml. *)

open Tapestry

type event = { at : float; stage : string; addr : int }

let event_testable =
  let pp ppf e = Format.fprintf ppf "%.6f %s addr=%d" e.at e.stage e.addr in
  let equal a b =
    (* exact float equality on purpose: replay must reproduce the schedule
       bit-for-bit, not merely approximately *)
    Float.equal a.at b.at && String.equal a.stage b.stage && Int.equal a.addr b.addr
  in
  Alcotest.testable pp equal

(* One full scenario: build a 64-node mesh, then insert 8 more nodes
   concurrently with randomized stage delays, tracing every stage.
   Everything is derived from [seed]. *)
let run_scenario seed =
  let rng = Simnet.Rng.create seed in
  let metric =
    Simnet.Topology.generate Simnet.Topology.Uniform_square ~n:72 ~rng
  in
  let addrs = List.init 64 (fun i -> i) in
  let net, _ =
    Insert.build_incremental ~seed:(seed + 1) Config.default metric ~addrs
  in
  let sched = Simnet.Fiber.create () in
  let trace = ref [] in
  let record stage addr =
    trace := { at = Simnet.Fiber.now sched; stage; addr } :: !trace
  in
  let delays = Simnet.Rng.create (seed + 2) in
  for i = 0 to 7 do
    let addr = 64 + i in
    let d0 = Simnet.Rng.float delays 1. in
    let d1 = 0.05 +. Simnet.Rng.float delays 0.5 in
    let d2 = 0.05 +. Simnet.Rng.float delays 0.5 in
    Simnet.Fiber.spawn sched (fun () ->
        Simnet.Fiber.sleep sched d0;
        let gw = Network.random_alive net in
        record "surrogate" addr;
        let staged = Insert.stage_surrogate net ~gateway:gw ~addr in
        Simnet.Fiber.sleep sched d1;
        record "multicast" addr;
        Insert.stage_multicast net staged;
        Simnet.Fiber.sleep sched d2;
        record "acquire" addr;
        ignore (Insert.stage_acquire net staged))
  done;
  Simnet.Fiber.run sched;
  (* a content signature of the final mesh: per node, its table size and
     pointer count, sorted by ID *)
  let signature =
    Network.alive_nodes net
    |> List.map (fun (n : Node.t) ->
           ( Node_id.to_string n.Node.id,
             Routing_table.entry_count n.Node.table,
             Pointer_store.size n.Node.pointers ))
    |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b)
  in
  (List.rev !trace, Simnet.Fiber.stalled_fibers sched, signature)

let test_equal_seeds_replay () =
  let trace1, stalled1, sig1 = run_scenario 2024 in
  let trace2, stalled2, sig2 = run_scenario 2024 in
  Alcotest.(check int) "run 1 has no stalled fibers" 0 stalled1;
  Alcotest.(check int) "run 2 has no stalled fibers" 0 stalled2;
  Alcotest.(check int) "all 24 stage events traced" 24 (List.length trace1);
  Alcotest.(check (list event_testable)) "identical event traces" trace1 trace2;
  Alcotest.(check (list (triple string int int)))
    "identical final meshes" sig1 sig2

let test_traces_are_time_ordered () =
  (* sanity on the harness itself: the scheduler delivers events in
     non-decreasing virtual time, so the trace is a real schedule *)
  let trace, _, _ = run_scenario 7 in
  let rec ordered = function
    | a :: (b :: _ as rest) -> a.at <= b.at && ordered rest
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool) "virtual time never goes backwards" true
    (ordered trace)

let () =
  Alcotest.run "determinism"
    [
      ( "replay",
        [
          Alcotest.test_case "equal seeds, identical traces" `Quick
            test_equal_seeds_replay;
          Alcotest.test_case "traces are time-ordered" `Quick
            test_traces_are_time_ordered;
        ] );
    ]
