(* Differential tests for the packed routing table.

   The packed flat-array implementation (Routing_table.t) and the original
   list-based one (Routing_table.Oracle.t) are driven through identical
   randomized churn — consider / remove / update_distances — and must agree
   on every verdict and on every slot's exact contents and order.  A second
   suite pins the E1/E2 experiment tables at seed 42 to a committed golden
   fixture, so any representation change that shifts routing order, cost
   accounting or tie-breaking is caught as a byte diff. *)

open Tapestry

let config = Config.default

(* --- packed vs list-oracle differential churn --- *)

let random_id rng =
  Node_id.random ~base:config.Config.base ~len:config.Config.id_digits rng

let entry_str (e : Routing_table.entry) =
  Printf.sprintf "%s@%h" (Node_id.to_string e.Routing_table.id)
    e.Routing_table.dist

let slot_str entries = String.concat "," (List.map entry_str entries)

(* Compare every slot of both tables: same ids, same order, same recorded
   distances. *)
let check_tables_agree ~round packed oracle =
  let levels = Routing_table.levels packed in
  for level = 0 to levels - 1 do
    for digit = 0 to config.Config.base - 1 do
      let p = Routing_table.slot packed ~level ~digit in
      let o = Routing_table.Oracle.slot oracle ~level ~digit in
      Alcotest.(check string)
        (Printf.sprintf "round %d slot (%d,%d)" round level digit)
        (slot_str o) (slot_str p);
      let prim_str = function None -> "-" | Some e -> entry_str e in
      Alcotest.(check string)
        (Printf.sprintf "round %d primary (%d,%d)" round level digit)
        (prim_str (Routing_table.Oracle.primary oracle ~level ~digit))
        (prim_str (Routing_table.primary packed ~level ~digit))
    done
  done

let verdict_str = function
  | `Added None -> "added"
  | `Added (Some id) -> "added evicting " ^ Node_id.to_string id
  | `Rejected -> "rejected"
  | `Known -> "known"

let churn_rounds = 400

let test_differential_churn () =
  let rng = Simnet.Rng.create 4242 in
  let owner = random_id rng in
  let packed = Routing_table.create config ~owner in
  let oracle = Routing_table.Oracle.create config ~owner in
  (* a small id pool so removes and re-considers actually hit known nodes *)
  let pool = Array.init 48 (fun _ -> random_id rng) in
  for round = 1 to churn_rounds do
    (match Simnet.Rng.int rng 10 with
    | 0 | 1 | 2 | 3 | 4 | 5 -> begin
        (* consider: a pool id (often already known) at every level it
           shares with the owner, like neighbor insertion does *)
        let candidate = Simnet.Rng.pick rng pool in
        if not (Node_id.equal candidate owner) then begin
          let cpl = Node_id.common_prefix_len owner candidate in
          let dist = Simnet.Rng.float rng 100. in
          for level = 0 to min cpl (Routing_table.levels packed - 1) do
            let vp =
              Routing_table.consider packed ~level ~candidate ~dist
                ~handle:(Simnet.Rng.int rng 1000)
            in
            let vo = Routing_table.Oracle.consider oracle ~level ~candidate ~dist in
            Alcotest.(check string)
              (Printf.sprintf "round %d consider verdict" round)
              (verdict_str vo) (verdict_str vp)
          done
        end
      end
    | 6 | 7 -> begin
        let victim = Simnet.Rng.pick rng pool in
        let lp = Routing_table.remove packed victim in
        let lo = Routing_table.Oracle.remove oracle victim in
        Alcotest.(check (list int))
          (Printf.sprintf "round %d remove levels" round)
          lo lp
      end
    | _ -> begin
        (* re-measure: deterministic per (round, id) — some entries move,
           some drop *)
        let measure id =
          let h = (Node_id.hash id + (round * 7919)) land 0xFFFF in
          if h mod 13 = 0 then None else Some (float_of_int h /. 100.)
        in
        let cp = Routing_table.update_distances packed ~measure in
        let co = Routing_table.Oracle.update_distances oracle ~measure in
        Alcotest.(check int)
          (Printf.sprintf "round %d update_distances changed" round)
          co cp
      end);
    if round mod 25 = 0 then check_tables_agree ~round packed oracle
  done;
  check_tables_agree ~round:churn_rounds packed oracle

(* --- experiment-table determinism vs the committed fixture --- *)

(* dune runtest runs with cwd [_build/default/test]; [dune exec] from the
   repo root needs the prefixed path *)
let fixture =
  if Sys.file_exists "fixtures/e1_e2_seed42.txt" then
    "fixtures/e1_e2_seed42.txt"
  else "test/fixtures/e1_e2_seed42.txt"

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let render_experiment name =
  let tables =
    Evaluation.Experiment.by_name ~seed:42 ~domains:1 Evaluation.Experiment.Quick
      name
  in
  String.concat "\n" (List.map Simnet.Stats.Table.render tables)

let test_experiment_fixture () =
  let expected = read_file fixture in
  let actual =
    String.concat "\n" (List.map render_experiment [ "table1"; "stretch" ])
  in
  Alcotest.(check string) "E1/E2 tables at seed 42 match committed fixture"
    expected actual

let () =
  Alcotest.run "table_packed"
    [
      ( "differential",
        [ Alcotest.test_case "packed vs list-oracle churn" `Quick
            test_differential_churn ] );
      ( "determinism",
        [ Alcotest.test_case "E1/E2 fixture byte-identical" `Slow
            test_experiment_fixture ] );
    ]
