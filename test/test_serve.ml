(* Serving-runtime tier tests (DESIGN.md section 9):

   - the Zipf sampler's empirical rank frequencies match the harmonic
     weights at 1e5 draws;
   - mailbox ring semantics: bounded overflow, FIFO order through
     msg_index/advance, generation reuse after kill, growth;
   - the serve engine is bit-identical for every domain count (the
     fixed-64-shard argument, mirroring test_scale_build);
   - a churned run quiesces to an audit-clean mesh. *)

open Tapestry
module Rng = Simnet.Rng
module Workload = Evaluation.Workload
module Mailbox = Serve.Mailbox
module Driver = Serve.Driver

(* ---- Zipf sampler ---- *)

let test_zipf_range () =
  let n = 37 in
  let z = Workload.zipf ~s:1.1 ~n in
  let rng = Rng.create 5 in
  for _ = 1 to 10_000 do
    let r = Workload.zipf_sample z rng in
    if r < 0 || r >= n then
      Alcotest.failf "zipf_sample out of range: %d (n=%d)" r n
  done

let test_zipf_frequencies () =
  let n = 50 and s = 0.9 and draws = 100_000 in
  let z = Workload.zipf ~s ~n in
  let rng = Rng.create 42 in
  let counts = Array.make n 0 in
  for _ = 1 to draws do
    let r = Workload.zipf_sample z rng in
    counts.(r) <- counts.(r) + 1
  done;
  (* expected weights: (i+1)^-s / H *)
  let w = Array.init n (fun i -> (float_of_int (i + 1)) ** -.s) in
  let h = Array.fold_left ( +. ) 0. w in
  let fd = float_of_int draws in
  Array.iteri
    (fun i wi ->
      let expected = wi /. h *. fd in
      let got = float_of_int counts.(i) in
      (* 5-sigma binomial band, plus a floor for the sparse tail *)
      let sigma = sqrt (expected *. (1. -. (wi /. h))) in
      let band = Float.max (5. *. sigma) 25. in
      if Float.abs (got -. expected) > band then
        Alcotest.failf "rank %d: got %.0f draws, expected %.1f +/- %.1f" i
          got expected band)
    w;
  (* and the rank-frequency slope really is Zipf-ish: the head must
     dominate the tail by about (n)^s *)
  let ratio = float_of_int counts.(0) /. float_of_int (max 1 counts.(n - 1)) in
  let ideal = float_of_int n ** s in
  Alcotest.(check bool)
    (Printf.sprintf "head/tail ratio %.1f within 2x of %.1f" ratio ideal)
    true
    (ratio > ideal /. 2. && ratio < ideal *. 2.)

let test_zipf_deterministic () =
  let draw seed =
    let z = Workload.zipf ~s:0.9 ~n:100 in
    let rng = Rng.create seed in
    List.init 1000 (fun _ -> Workload.zipf_sample z rng)
  in
  Alcotest.(check (list int)) "same seed, same stream" (draw 9) (draw 9)

(* ---- mailbox rings ---- *)

let push_req mb h req =
  Mailbox.push mb h ~kind:0 ~req ~oi:0 ~level:0 ~prev:(-1) ~src:0

let test_mailbox_bounded_fifo () =
  let cap = 4 in
  let mb = Mailbox.create ~cap ~handles:2 in
  for r = 0 to cap - 1 do
    Alcotest.(check bool) "push accepted" true (push_req mb 1 (100 + r))
  done;
  Alcotest.(check bool) "overflow rejected" false (push_req mb 1 999);
  Alcotest.(check int) "full" cap (Mailbox.length mb 1);
  (* FIFO order through msg_index/advance, wrapping across the ring *)
  for r = 0 to cap - 1 do
    let i = Mailbox.msg_index mb 1 in
    Alcotest.(check int) "fifo order" (100 + r) mb.Mailbox.r_req.(i);
    Mailbox.advance mb 1;
    (* interleave a push so head wraps past the ring boundary *)
    if r < 2 then
      Alcotest.(check bool) "refill accepted" true (push_req mb 1 (200 + r))
  done;
  Alcotest.(check int) "wrapped refills" 200 mb.Mailbox.r_req.(Mailbox.msg_index mb 1);
  Mailbox.advance mb 1;
  Alcotest.(check int) "wrapped refills" 201 mb.Mailbox.r_req.(Mailbox.msg_index mb 1);
  Mailbox.advance mb 1;
  Alcotest.(check int) "drained" 0 (Mailbox.length mb 1);
  (* handle 0 was never touched *)
  Alcotest.(check int) "other ring untouched" 0 (Mailbox.length mb 0)

let test_mailbox_generation () =
  let mb = Mailbox.create ~cap:4 ~handles:3 in
  let g0 = Mailbox.generation mb 2 in
  ignore (push_req mb 2 7 : bool);
  Mailbox.set_busy mb 2 true;
  Alcotest.(check bool) "busy" true (Mailbox.is_busy mb 2);
  Mailbox.kill mb 2;
  Alcotest.(check int) "ring cleared" 0 (Mailbox.length mb 2);
  Alcotest.(check bool) "busy reset" false (Mailbox.is_busy mb 2);
  Alcotest.(check bool) "generation bumped" true (Mailbox.generation mb 2 > g0);
  (* the slot is reusable by a churn join under the new generation *)
  Alcotest.(check bool) "reuse accepted" true (push_req mb 2 8);
  Alcotest.(check int) "reused head" 8 mb.Mailbox.r_req.(Mailbox.msg_index mb 2)

let test_mailbox_growth () =
  let mb = Mailbox.create ~cap:4 ~handles:2 in
  ignore (push_req mb 0 1 : bool);
  ignore (push_req mb 1 2 : bool);
  let g1 = Mailbox.generation mb 1 in
  Mailbox.ensure mb ~handles:50;
  Alcotest.(check bool) "grew" true (mb.Mailbox.handles >= 50);
  Alcotest.(check int) "contents preserved (h0)" 1
    mb.Mailbox.r_req.(Mailbox.msg_index mb 0);
  Alcotest.(check int) "contents preserved (h1)" 2
    mb.Mailbox.r_req.(Mailbox.msg_index mb 1);
  Alcotest.(check int) "generation preserved" g1 (Mailbox.generation mb 1);
  Alcotest.(check int) "new ring empty" 0 (Mailbox.length mb 49);
  Alcotest.(check bool) "new ring usable" true (push_req mb 49 3)

(* ---- serve engine ---- *)

(* Driver.run mutates the mesh (pointers, replicas, churn), so every run
   gets a freshly built, identically seeded network. *)
let build_net n seed =
  let rng = Rng.create seed in
  let metric = Simnet.Topology.generate Simnet.Topology.Uniform_square ~n ~rng in
  let net, _stats = Static_build.build_streamed ~seed:(seed + 1) Config.default metric ~n in
  net

let fake_clock () =
  let c = ref 0. in
  fun () ->
    c := !c +. 1.;
    !c

let serve_params =
  {
    Driver.default with
    Driver.requests = 4_000;
    rate = 40_000.;
    objects = 200;
    window = 0.02;
  }

let run_serve ?(params = serve_params) ~domains () =
  let net = build_net 256 42 in
  let r = Driver.run ~net { params with Driver.domains } ~now:(fake_clock ()) in
  (net, r)

let test_serve_determinism () =
  let _, r1 = run_serve ~domains:1 () in
  let _, r3 = run_serve ~domains:3 () in
  let _, r4 = run_serve ~domains:4 () in
  let _, r0 = run_serve ~domains:0 () in
  Alcotest.(check bool) "requests completed" true (r1.Driver.completed > 0);
  let s1 = Driver.signature r1 in
  Alcotest.(check string) "1 domain = 3 domains" s1 (Driver.signature r3);
  Alcotest.(check string) "1 domain = 4 domains" s1 (Driver.signature r4);
  Alcotest.(check string) "1 domain = auto domains" s1 (Driver.signature r0)

let test_serve_accounting () =
  let _, r = run_serve ~domains:2 () in
  Alcotest.(check int) "every request injected" serve_params.Driver.requests
    r.Driver.injected;
  (* [failed] is the terminal counter: it already covers requests that
     ended by drop or dead letter (those message counters may also tick
     for fire-and-forget chains), so completion + failure is exhaustive *)
  Alcotest.(check int) "every request resolved"
    r.Driver.injected
    (r.Driver.completed + r.Driver.failed);
  Alcotest.(check bool) "messages flowed" true
    (r.Driver.delivered >= r.Driver.injected)

let test_serve_streamed_build_signature () =
  (* the serve CLI builds its mesh with [Static_build.build_streamed]
     (a ~4x cheaper setup at n=65536 than the incremental path it
     replaced); the driver is a pure function of the mesh, and
     test_scale_build proves the two builders emit bit-identical
     meshes — assert the end-to-end consequence here: the serve run
     signature is unchanged by the builder swap *)
  let n = 256 and seed = 42 in
  let streamed_net = build_net n seed in
  let incremental_net =
    let rng = Rng.create seed in
    let metric =
      Simnet.Topology.generate Simnet.Topology.Uniform_square ~n ~rng
    in
    let net, _reports =
      Insert.build_incremental ~seed:(seed + 1) Config.default metric
        ~addrs:(List.init n Fun.id)
    in
    net
  in
  let run net =
    Driver.run ~net { serve_params with Driver.domains = 2 }
      ~now:(fake_clock ())
  in
  Alcotest.(check string) "signature unchanged by streamed build"
    (Driver.signature (run incremental_net))
    (Driver.signature (run streamed_net))

let test_serve_churn_audit_clean () =
  let params =
    { serve_params with Driver.kill_rate = 8.; join_rate = 4. }
  in
  let net, r = run_serve ~params ~domains:3 () in
  Alcotest.(check bool) "churn actually fired" true (r.Driver.kills > 0);
  Serve.Shard.quiesce r.Driver.engine ~clock:(r.Driver.duration_v +. 1.);
  let report = Audit.run net in
  if not (Audit.is_clean report) then
    Alcotest.failf "churned serve mesh not audit-clean: %s"
      (Format.asprintf "%a" Audit.pp_report report)

let test_serve_churn_determinism () =
  let params =
    { serve_params with Driver.kill_rate = 8.; join_rate = 4. }
  in
  let _, r1 = run_serve ~params ~domains:1 () in
  let _, r5 = run_serve ~params ~domains:5 () in
  Alcotest.(check string) "churned run domain-invariant"
    (Driver.signature r1) (Driver.signature r5)

(* ---- serve engine + object cache (PR 9) ---- *)

let cached_params = { serve_params with Driver.cache_size = 8 }

let test_serve_cache_determinism () =
  (* the shard-confinement argument must hold with the cache attached:
     probes/fills/evicts/epoch bumps are all either owner-shard or
     barrier-sequential, so signatures stay domain-invariant — also
     under churn, which adds generation bumps and dead-server entries *)
  let _, r1 = run_serve ~params:cached_params ~domains:1 () in
  let _, r4 = run_serve ~params:cached_params ~domains:4 () in
  Alcotest.(check string) "cache-on run domain-invariant"
    (Driver.signature r1) (Driver.signature r4);
  let churned =
    { cached_params with Driver.kill_rate = 8.; join_rate = 4. }
  in
  let _, c1 = run_serve ~params:churned ~domains:1 () in
  let _, c5 = run_serve ~params:churned ~domains:5 () in
  Alcotest.(check bool) "churn actually fired" true (c1.Driver.kills > 0);
  Alcotest.(check string) "churned cache-on run domain-invariant"
    (Driver.signature c1) (Driver.signature c5)

let test_serve_cache_off_identical () =
  (* cache_size = 0 must reproduce the uncached engine bit-exactly: no
     cache suffix in the signature, identical counters *)
  let _, r_off = run_serve ~params:serve_params ~domains:2 () in
  let _, r_zero =
    run_serve ~params:{ serve_params with Driver.cache_size = 0 } ~domains:2 ()
  in
  Alcotest.(check string) "cache 0 = uncached signature"
    (Driver.signature r_off) (Driver.signature r_zero);
  let s = Driver.signature r_off in
  let rec has_cache_field i =
    i + 3 <= String.length s
    && (String.sub s i 3 = "ch=" || has_cache_field (i + 1))
  in
  Alcotest.(check bool) "no cache fields leak into the signature" false
    (has_cache_field 0)

let test_serve_cache_helps () =
  (* the cache must not make service worse: fewer failures (redirect
     recovery re-climbs past unpublish races the uncached walk loses)
     and a strictly smaller delivered-message volume.  mailbox_cap is
     raised because at this tiny scale the cache's direct FETCHes
     concentrate on the few hot servers and a 64-deep ring drops the
     overflow, which would conflate backpressure with correctness *)
  let params = { serve_params with Driver.mailbox_cap = 1024 } in
  let _, r_off = run_serve ~params ~domains:3 () in
  let _, r_on =
    run_serve ~params:{ params with Driver.cache_size = 8 } ~domains:3 ()
  in
  Alcotest.(check int) "all requests injected" r_off.Driver.injected
    r_on.Driver.injected;
  Alcotest.(check bool) "cache never adds failures" true
    (r_on.Driver.failed <= r_off.Driver.failed);
  Alcotest.(check bool) "recovery actually fired" true
    (r_on.Driver.tally.Simnet.Stats.Tally.recoveries > 0);
  Alcotest.(check bool) "cache cuts delivered messages" true
    (r_on.Driver.delivered < r_off.Driver.delivered)

let test_serve_cache_churn_audit_clean () =
  let params =
    { cached_params with Driver.kill_rate = 8.; join_rate = 4. }
  in
  let net, r = run_serve ~params ~domains:3 () in
  Alcotest.(check bool) "churn actually fired" true (r.Driver.kills > 0);
  Serve.Shard.quiesce r.Driver.engine ~clock:(r.Driver.duration_v +. 1.);
  let report = Audit.run net in
  if not (Audit.is_clean report) then
    Alcotest.failf
      "churned cache-on serve mesh not audit-clean (incl. coherence): %s"
      (Format.asprintf "%a" Audit.pp_report report)

(* ---- serve engine + cooperative hint exchange (PR 10) ---- *)

let coop_params = { cached_params with Driver.coop = true }

let test_serve_coop_determinism () =
  (* hint logging is shard-confined (digests, deduped wants) and hint
     application is barrier-sequential in shard order, so cooperative
     signatures must stay domain-invariant — also under churn *)
  let _, r1 = run_serve ~params:coop_params ~domains:1 () in
  let _, r4 = run_serve ~params:coop_params ~domains:4 () in
  Alcotest.(check string) "coop run domain-invariant" (Driver.signature r1)
    (Driver.signature r4);
  let churned =
    { coop_params with Driver.kill_rate = 8.; join_rate = 4. }
  in
  let _, c1 = run_serve ~params:churned ~domains:1 () in
  let _, c5 = run_serve ~params:churned ~domains:5 () in
  Alcotest.(check bool) "churn actually fired" true (c1.Driver.kills > 0);
  Alcotest.(check string) "churned coop run domain-invariant"
    (Driver.signature c1) (Driver.signature c5)

let test_serve_coop_off_identical () =
  (* --coop off must reproduce the plain cached engine byte-exactly:
     same signature regardless of the (inert) hint parameters, and no
     hint fields in it *)
  let _, r_cached = run_serve ~params:cached_params ~domains:2 () in
  let _, r_off =
    run_serve
      ~params:{ cached_params with Driver.hint_k = 3; hint_budget = 1 }
      ~domains:2 ()
  in
  Alcotest.(check string) "coop off ignores hint parameters"
    (Driver.signature r_cached) (Driver.signature r_off);
  let s = Driver.signature r_cached in
  let rec has_sub sub i =
    i + String.length sub <= String.length s
    && (String.sub s i (String.length sub) = sub || has_sub sub (i + 1))
  in
  Alcotest.(check bool) "no hint fields leak into the signature" false
    (has_sub "hf=" 0);
  (* sanity: the flag is not dead — coop on diverges *)
  let _, r_on = run_serve ~params:coop_params ~domains:2 () in
  Alcotest.(check bool) "coop on actually changes the run" true
    (Driver.signature r_on <> s)

let test_serve_coop_helps () =
  let base = { serve_params with Driver.mailbox_cap = 1024 } in
  let cached = { base with Driver.cache_size = 8 } in
  let coop = { cached with Driver.coop = true } in
  let _, r_cached = run_serve ~params:cached ~domains:3 () in
  let _, r_coop = run_serve ~params:coop ~domains:3 () in
  let tl = r_coop.Driver.tally in
  Alcotest.(check bool) "hints travelled" true
    (tl.Simnet.Stats.Tally.hint_fills > 0);
  Alcotest.(check bool) "hints served traffic" true
    (tl.Simnet.Stats.Tally.hint_hits > 0);
  Alcotest.(check bool) "cooperation never adds failures" true
    (r_coop.Driver.failed <= r_cached.Driver.failed);
  Alcotest.(check bool) "cooperation cuts delivered messages" true
    (r_coop.Driver.delivered <= r_cached.Driver.delivered)

let test_serve_coop_retry_regression () =
  (* the FETCH-vs-unpublish race recovery retries through the surrogate
     climb once before a request counts failed; pin the counters so a
     regression in the retry path is loud.  The workload leans on
     unpublish to provoke the race *)
  let params =
    {
      coop_params with
      Driver.requests = 6_000;
      p_publish = 0.10;
      p_unpublish = 0.06;
      mailbox_cap = 1024;
    }
  in
  let _, r_coop = run_serve ~params ~domains:2 () in
  let _, r_cached =
    run_serve ~params:{ params with Driver.coop = false } ~domains:2 ()
  in
  Alcotest.(check bool) "retry never fails more than the cached engine"
    true
    (r_coop.Driver.failed <= r_cached.Driver.failed);
  Alcotest.(check int) "cached failures pinned" 40 r_cached.Driver.failed;
  Alcotest.(check int) "cooperative failures pinned" 18 r_coop.Driver.failed

let test_serve_coop_churn_audit_clean () =
  let params =
    { coop_params with Driver.kill_rate = 8.; join_rate = 4. }
  in
  let net, r = run_serve ~params ~domains:3 () in
  Alcotest.(check bool) "churn actually fired" true (r.Driver.kills > 0);
  Serve.Shard.quiesce r.Driver.engine ~clock:(r.Driver.duration_v +. 1.);
  let report = Audit.run net in
  if not (Audit.is_clean report) then
    Alcotest.failf
      "churned coop serve mesh not audit-clean (incl. hint coherence): %s"
      (Format.asprintf "%a" Audit.pp_report report)

let () =
  Alcotest.run "serve"
    [
      ( "zipf",
        [
          Alcotest.test_case "samples in range" `Quick test_zipf_range;
          Alcotest.test_case "rank frequencies match harmonic weights"
            `Quick test_zipf_frequencies;
          Alcotest.test_case "seeded and deterministic" `Quick
            test_zipf_deterministic;
        ] );
      ( "mailbox",
        [
          Alcotest.test_case "bounded overflow + FIFO via msg_index/advance"
            `Quick test_mailbox_bounded_fifo;
          Alcotest.test_case "kill bumps generation, slot reusable" `Quick
            test_mailbox_generation;
          Alcotest.test_case "ensure-growth preserves contents" `Quick
            test_mailbox_growth;
        ] );
      ( "engine",
        [
          Alcotest.test_case "bit-identical for any domain count" `Quick
            test_serve_determinism;
          Alcotest.test_case "request accounting balances" `Quick
            test_serve_accounting;
          Alcotest.test_case "streamed build leaves run signature unchanged"
            `Quick test_serve_streamed_build_signature;
          Alcotest.test_case "churned run quiesces audit-clean" `Quick
            test_serve_churn_audit_clean;
          Alcotest.test_case "churned run domain-invariant" `Quick
            test_serve_churn_determinism;
        ] );
      ( "cache",
        [
          Alcotest.test_case "cache-on runs domain-invariant (incl. churn)"
            `Quick test_serve_cache_determinism;
          Alcotest.test_case "cache 0 bit-identical to uncached" `Quick
            test_serve_cache_off_identical;
          Alcotest.test_case "cache cuts messages, never adds failures"
            `Quick test_serve_cache_helps;
          Alcotest.test_case
            "churned cache-on run quiesces audit-clean (incl. coherence)"
            `Quick test_serve_cache_churn_audit_clean;
        ] );
      ( "coop",
        [
          Alcotest.test_case "coop runs domain-invariant (incl. churn)"
            `Quick test_serve_coop_determinism;
          Alcotest.test_case "coop off byte-identical to the cached engine"
            `Quick test_serve_coop_off_identical;
          Alcotest.test_case "hints travel, serve traffic, never hurt"
            `Quick test_serve_coop_helps;
          Alcotest.test_case "fetch retry failure counts pinned" `Quick
            test_serve_coop_retry_regression;
          Alcotest.test_case
            "churned coop run quiesces audit-clean (incl. hint coherence)"
            `Quick test_serve_coop_churn_audit_clean;
        ] );
    ]
