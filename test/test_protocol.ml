(* Integration tests for the static protocol layer: routing, surrogates,
   multicast, publish/locate, pointer maintenance and stub locality. *)

open Tapestry

let build ?(n = 120) ?(seed = 11) ?(cfg = Config.default) ?(kind = Simnet.Topology.Uniform_square) () =
  let rng = Simnet.Rng.create seed in
  let metric = Simnet.Topology.generate kind ~n ~rng in
  let addrs = List.init n (fun i -> i) in
  Static_build.build ~seed:(seed + 1) cfg metric ~addrs

let random_guid net =
  let cfg = net.Network.config in
  Node_id.random ~base:cfg.Config.base ~len:cfg.Config.id_digits net.Network.rng

(* --- static build sanity --- *)

let test_static_build_properties () =
  let net = build () in
  Alcotest.(check int) "P1 clean" 0 (List.length (Network.check_property1 net));
  let total = ref 0 and optimal = ref 0 in
  Network.check_property2 net ~total ~optimal;
  Alcotest.(check int) "P2 exact (oracle build)" !total !optimal

let test_static_build_backpointer_symmetry () =
  let net = build ~n:60 () in
  (* every forward entry has a matching backpointer *)
  List.iter
    (fun (a : Node.t) ->
      Routing_table.iter_entries a.Node.table (fun ~level ~digit:_ e ->
          if not (Node_id.equal e.Routing_table.id a.Node.id) then begin
            let b = Network.find_exn net e.Routing_table.id in
            let bps = Routing_table.backpointers b.Node.table ~level in
            if not (List.exists (Node_id.equal a.Node.id) bps) then
              Alcotest.failf "missing backpointer %s -> %s at level %d"
                (Node_id.to_string b.Node.id) (Node_id.to_string a.Node.id) level
          end))
    (Network.alive_nodes net)

(* --- routing --- *)

let test_route_to_node_exact () =
  let net = build () in
  for _ = 1 to 50 do
    let from = Network.random_alive net in
    let target = Network.random_alive net in
    match Route.route_to_node net ~from target.Node.id with
    | Some reached, path ->
        Alcotest.(check bool) "reached target" true
          (Node_id.equal reached.Node.id target.Node.id);
        Alcotest.(check bool) "path starts at source" true
          (Node_id.equal (List.hd path).Node.id from.Node.id)
    | None, _ -> Alcotest.fail "exact-ID mesh routing must terminate at the target"
  done

let test_route_hop_bound () =
  let net = build ~n:200 () in
  let digits = net.Network.config.Config.id_digits in
  for _ = 1 to 50 do
    let from = Network.random_alive net in
    let info = Route.route_to_root net ~from (random_guid net) in
    Alcotest.(check bool) "path bounded by digit count" true
      (List.length info.Route.path <= digits + 1)
  done

let test_unique_root_native_and_prr () =
  let net = build ~n:150 () in
  List.iter
    (fun variant ->
      for _ = 1 to 30 do
        let guid = random_guid net in
        let roots =
          List.init 12 (fun _ ->
              let from = Network.random_alive net in
              (Route.route_to_root ~variant net ~from guid).Route.root.Node.id)
        in
        let first = List.hd roots in
        if not (List.for_all (Node_id.equal first) roots) then
          Alcotest.fail "surrogate routing produced two roots (Theorem 2)"
      done)
    [ Route.Native; Route.Prr_like ]

let test_native_root_matches_oracle () =
  let net = build ~n:150 () in
  for _ = 1 to 60 do
    let guid = random_guid net in
    let from = Network.random_alive net in
    let root = (Route.route_to_root net ~from guid).Route.root in
    let oracle = Network.surrogate_oracle net guid in
    Alcotest.(check bool) "matches digit-refinement oracle" true
      (Node_id.equal root.Node.id oracle.Node.id)
  done

let test_route_skip_excluded () =
  let net = build ~n:80 () in
  let guid = random_guid net in
  let from = Network.random_alive net in
  let root = (Route.route_to_root net ~from guid).Route.root in
  let info2 = Route.route_to_root ~exclude:root.Node.id net ~from guid in
  if Node_id.equal from.Node.id root.Node.id then ()
  else
    Alcotest.(check bool) "excluded node never visited" false
      (List.exists
         (fun (h : Node.t) -> Node_id.equal h.Node.id root.Node.id)
         info2.Route.path)

let test_route_charges_cost () =
  let net = build ~n:80 () in
  let from = Network.random_alive net in
  let guid = random_guid net in
  let info, cost = Network.measure net (fun () -> Route.route_to_root net ~from guid) in
  Alcotest.(check int) "one message per inter-node hop"
    (List.length info.Route.path - 1)
    cost.Simnet.Cost.hops

(* --- multicast --- *)

let test_multicast_reaches_all_prefix_nodes () =
  let net = build ~n:150 () in
  for len = 1 to 3 do
    for _ = 1 to 20 do
      let anchor = Network.random_alive net in
      let prefix = Node_id.digits anchor.Node.id in
      let res = Multicast.run net ~start:anchor ~prefix ~len ~apply:ignore in
      let oracle =
        Network.alive_nodes net
        |> List.filter (fun (m : Node.t) -> Node_id.has_prefix m.Node.id ~prefix ~len)
      in
      Alcotest.(check int)
        (Printf.sprintf "coverage at len %d" len)
        (List.length oracle)
        (List.length res.Multicast.reached);
      Alcotest.(check int) "spanning tree edges"
        (List.length res.Multicast.reached - 1)
        res.Multicast.tree_edges
    done
  done

let test_multicast_applies_once () =
  let net = build ~n:150 () in
  let anchor = Network.random_alive net in
  let prefix = Node_id.digits anchor.Node.id in
  let seen = Node_id.Tbl.create 16 in
  let res =
    Multicast.run net ~start:anchor ~prefix ~len:1 ~apply:(fun n ->
        if Node_id.Tbl.mem seen n.Node.id then Alcotest.fail "applied twice";
        Node_id.Tbl.replace seen n.Node.id ())
  in
  Alcotest.(check int) "apply count" (List.length res.Multicast.reached)
    (Node_id.Tbl.length seen)

let test_multicast_rejects_bad_start () =
  let net = build ~n:40 () in
  let a = Network.random_alive net in
  let prefix = Node_id.digits a.Node.id in
  prefix.(0) <- (prefix.(0) + 1) mod 16;
  Alcotest.check_raises "prefix mismatch"
    (Invalid_argument "Multicast.run: start node lacks the prefix") (fun () ->
      ignore (Multicast.run net ~start:a ~prefix ~len:1 ~apply:ignore))

let test_multicast_watchlist_reports_fillers () =
  let net = build ~n:150 () in
  let anchor = Network.random_alive net in
  let prefix = Node_id.digits anchor.Node.id in
  (* watch every digit at level 1: recipients must report one filler per
     digit that actually has nodes, and none for genuine holes *)
  let index = net.Network.index in
  let hits = Array.make 16 0 in
  let wl = [| Array.make 16 true |] in
  (* only level-0 row watched here: level-1 certification needs prefix len 1;
     watch rows are indexed from level 0 *)
  ignore
    (Multicast.run
       ~on_watch_hit:(fun ~level ~digit (filler : Node.t) ->
         Alcotest.(check int) "level" 0 level;
         Alcotest.(check bool) "filler alive" true (Node.is_alive filler);
         hits.(digit) <- hits.(digit) + 1)
       ~watchlist:wl net ~start:anchor ~prefix ~len:1 ~apply:ignore);
  for d = 0 to 15 do
    let exists = Id_index.exists_extension index ~prefix ~len:0 ~digit:d in
    if exists then
      Alcotest.(check bool) (Printf.sprintf "digit %x reported" d) true (hits.(d) > 0)
    else Alcotest.(check int) (Printf.sprintf "digit %x silent" d) 0 hits.(d)
  done

let test_publish_on_secondaries_widens_coverage () =
  let net = build ~n:150 () in
  let server = Network.random_alive net in
  let g1 = random_guid net and g2 = random_guid net in
  let count_pointers guid =
    List.fold_left
      (fun acc (n : Node.t) ->
        if Pointer_store.mem_guid n.Node.pointers guid then acc + 1 else acc)
      0 (Network.alive_nodes net)
  in
  ignore (Publish.publish net ~server g1);
  ignore (Publish.publish ~on_secondaries:true net ~server g2);
  let plain = count_pointers g1 and wide = count_pointers g2 in
  Alcotest.(check bool)
    (Printf.sprintf "secondaries widen coverage (%d > %d)" wide plain)
    true (wide > plain)

let test_optimize_through_moves_only_affected () =
  let net = build ~n:150 () in
  let server = Network.random_alive net in
  let guid = random_guid net in
  ignore (Publish.publish net ~server guid);
  let info = Route.route_to_root net ~from:server guid in
  match info.Route.path with
  | _ :: (second : Node.t) :: _ ->
      (* records at the server whose first hop is NOT [second] never move *)
      let unrelated = random_guid net in
      let moved =
        Maintenance.optimize_through net ~node:server ~next_hop:unrelated
      in
      Alcotest.(check int) "unrelated next hop moves nothing" 0 moved;
      let moved2 =
        Maintenance.optimize_through net ~node:server ~next_hop:second.Node.id
      in
      Alcotest.(check bool) "real next hop moves the record" true (moved2 >= 1);
      Alcotest.(check int) "property 4 intact" 0 (List.length (Verify.check_property4 net))
  | _ -> ()

let test_measure_nesting () =
  let net = build ~n:40 () in
  let a = Network.random_alive net in
  let b = Network.random_alive net in
  let (), outer =
    Network.measure net (fun () ->
        Network.charge net a b;
        let (), inner = Network.measure net (fun () -> Network.charge net a b) in
        Alcotest.(check int) "inner sees one" 1 inner.Simnet.Cost.messages)
  in
  Alcotest.(check int) "outer sees both" 2 outer.Simnet.Cost.messages;
  Network.without_charging net (fun () -> Network.charge net a b);
  let (), after = Network.measure net (fun () -> ()) in
  Alcotest.(check int) "rolled back" 0 after.Simnet.Cost.messages

(* --- publish / locate --- *)

let test_publish_deposits_along_path () =
  let net = build () in
  let server = Network.random_alive net in
  let guid = random_guid net in
  let outcome = Publish.publish net ~server guid in
  let root = List.hd outcome.Publish.roots in
  let info = Route.route_to_root net ~from:server guid in
  Alcotest.(check bool) "same root" true
    (Node_id.equal root.Node.id info.Route.root.Node.id);
  List.iter
    (fun (hop : Node.t) ->
      match Pointer_store.find hop.Node.pointers ~guid ~server:server.Node.id ~root_idx:0 with
      | Some _ -> ()
      | None -> Alcotest.fail "missing pointer on publish path")
    info.Route.path;
  Alcotest.(check int) "no property-4 gaps" 0 (List.length (Verify.check_property4 net))

let test_locate_finds_everywhere () =
  let net = build () in
  let server = Network.random_alive net in
  let guid = random_guid net in
  ignore (Publish.publish net ~server guid);
  Alcotest.(check bool) "reachable from every node" true
    (Verify.reachable_everywhere net guid)

let test_locate_missing_object () =
  let net = build () in
  let client = Network.random_alive net in
  let res = Locate.locate net ~client (random_guid net) in
  Alcotest.(check bool) "not found" true (res.Locate.server = None)

let test_locate_prefers_close_replica () =
  let net = build ~n:200 () in
  let guid = random_guid net in
  let s1 = Network.random_alive net in
  let s2 = Network.random_alive net in
  ignore (Publish.publish net ~server:s1 guid);
  ignore (Publish.publish net ~server:s2 guid);
  let total_stretch = ref 0. and count = ref 0 in
  for _ = 1 to 60 do
    let client = Network.random_alive net in
    let opt = min (Network.dist net client s1) (Network.dist net client s2) in
    let res, cost = Network.measure net (fun () -> Locate.locate net ~client guid) in
    match res.Locate.server with
    | Some _ when opt > 1e-9 ->
        total_stretch := !total_stretch +. (cost.Simnet.Cost.latency /. opt);
        incr count
    | Some _ -> ()
    | None -> Alcotest.fail "published object must be found"
  done;
  let mean = !total_stretch /. float_of_int !count in
  Alcotest.(check bool) (Printf.sprintf "mean stretch %.2f < 8" mean) true (mean < 8.)

let test_unpublish_removes () =
  let net = build () in
  let server = Network.random_alive net in
  let guid = random_guid net in
  ignore (Publish.publish net ~server guid);
  Publish.unpublish net ~server guid;
  let client = Network.random_alive net in
  Alcotest.(check bool) "gone" true ((Locate.locate net ~client guid).Locate.server = None);
  List.iter
    (fun (n : Node.t) ->
      if Pointer_store.mem_guid n.Node.pointers guid then
        Alcotest.fail "stale pointer after unpublish")
    (Network.alive_nodes net)

let test_multi_replica_all_pointers_kept () =
  (* Tapestry difference #1 vs PRR: the root keeps a pointer per copy. *)
  let net = build () in
  let guid = random_guid net in
  let servers = List.init 3 (fun _ -> Network.random_alive net) in
  List.iter (fun s -> ignore (Publish.publish net ~server:s guid)) servers;
  let root = (Route.route_to_root net ~from:(List.hd servers) guid).Route.root in
  let recs = Pointer_store.find_guid root.Node.pointers guid in
  let distinct =
    List.sort_uniq String.compare
      (List.map (fun (r : Pointer_store.record) -> Node_id.to_string r.Pointer_store.server) recs)
  in
  Alcotest.(check int) "root holds all copies"
    (List.length
       (List.sort_uniq String.compare
          (List.map (fun (s : Node.t) -> Node_id.to_string s.Node.id) servers)))
    (List.length distinct)

let test_multi_root_publication () =
  let cfg = { Config.default with Config.root_set_size = 3 } in
  let net = build ~cfg () in
  let server = Network.random_alive net in
  let guid = random_guid net in
  let outcome = Publish.publish net ~server guid in
  Alcotest.(check int) "three roots" 3 (List.length outcome.Publish.roots);
  for root_idx = 0 to 2 do
    let client = Network.random_alive net in
    let res = Locate.locate ~root_idx net ~client guid in
    Alcotest.(check bool)
      (Printf.sprintf "found via root %d" root_idx)
      true (res.Locate.server <> None)
  done

let test_soft_state_expiry_and_republish () =
  let net = build () in
  let server = Network.random_alive net in
  let guid = random_guid net in
  ignore (Publish.publish net ~server guid);
  net.Network.clock <- net.Network.clock +. Config.default.Config.pointer_ttl +. 1.;
  ignore (Maintenance.expire_all net);
  let client = Network.random_alive net in
  Alcotest.(check bool) "expired" true ((Locate.locate net ~client guid).Locate.server = None);
  ignore (Publish.republish net ~server guid);
  Alcotest.(check bool) "back" true ((Locate.locate net ~client guid).Locate.server <> None)

(* --- Figure 9 pointer optimization --- *)

let test_optimize_object_ptrs_converges () =
  let net = build ~n:150 () in
  let server = Network.random_alive net in
  let guid = random_guid net in
  ignore (Publish.publish net ~server guid);
  List.iter
    (fun (r : Pointer_store.record) ->
      Maintenance.optimize_object_ptrs net ~changed:server r)
    (Pointer_store.records server.Node.pointers);
  Alcotest.(check int) "P4 intact" 0 (List.length (Verify.check_property4 net))

let test_delete_pointers_backward () =
  let net = build ~n:150 () in
  let server = Network.random_alive net in
  let guid = random_guid net in
  ignore (Publish.publish net ~server guid);
  let info = Route.route_to_root net ~from:server guid in
  match List.rev info.Route.path with
  | root :: _ when List.length info.Route.path >= 3 -> (
      match Pointer_store.find root.Node.pointers ~guid ~server:server.Node.id ~root_idx:0 with
      | Some r ->
          let from = Option.get r.Pointer_store.previous in
          Maintenance.delete_pointers_backward net ~changed:server.Node.id ~guid
            ~server:server.Node.id ~root_idx:0 ~from;
          List.iter
            (fun (hop : Node.t) ->
              if
                (not (Node_id.equal hop.Node.id server.Node.id))
                && not (Node_id.equal hop.Node.id root.Node.id)
              then
                Alcotest.(check bool) "intermediate pointer deleted" true
                  (Pointer_store.find hop.Node.pointers ~guid ~server:server.Node.id
                     ~root_idx:0
                  = None))
            info.Route.path
      | None -> Alcotest.fail "root pointer missing")
  | _ -> ()

(* --- locality (Section 6.3) --- *)

let test_stub_locality_never_escapes () =
  let rng = Simnet.Rng.create 3 in
  let ts = Simnet.Transit_stub.generate Simnet.Transit_stub.default_params ~rng in
  let metric = Simnet.Transit_stub.metric ts in
  let hosts = Simnet.Transit_stub.hosts ts in
  let net = Static_build.build ~seed:4 Config.default metric ~addrs:hosts in
  let same_stub = Simnet.Transit_stub.same_stub ts in
  let server = Network.random_alive net in
  let guid = random_guid net in
  Locality.publish net ~same_stub ~server guid;
  let clients =
    Network.alive_nodes net
    |> List.filter (fun (c : Node.t) -> same_stub c.Node.addr server.Node.addr)
  in
  List.iter
    (fun client ->
      let res, cost =
        Network.measure net (fun () -> Locality.locate net ~same_stub ~client guid)
      in
      Alcotest.(check bool) "found in stub" true (res.Locate.server <> None);
      (* intra-stub edges are ~1ms; any transit crossing costs >= 15 *)
      Alcotest.(check bool)
        (Printf.sprintf "latency %.1f stays intra-stub" cost.Simnet.Cost.latency)
        true
        (cost.Simnet.Cost.latency < 15.))
    clients

let test_stub_locality_falls_back () =
  let rng = Simnet.Rng.create 5 in
  let ts = Simnet.Transit_stub.generate Simnet.Transit_stub.default_params ~rng in
  let metric = Simnet.Transit_stub.metric ts in
  let hosts = Simnet.Transit_stub.hosts ts in
  let net = Static_build.build ~seed:6 Config.default metric ~addrs:hosts in
  let same_stub = Simnet.Transit_stub.same_stub ts in
  let server = Network.random_alive net in
  let guid = random_guid net in
  Locality.publish net ~same_stub ~server guid;
  let client =
    Network.alive_nodes net
    |> List.find (fun (c : Node.t) -> not (same_stub c.Node.addr server.Node.addr))
  in
  let res = Locality.locate net ~same_stub ~client guid in
  Alcotest.(check bool) "wide-area fallback" true (res.Locate.server <> None)

let () =
  Alcotest.run "protocol"
    [
      ( "static build",
        [
          Alcotest.test_case "properties 1 & 2" `Quick test_static_build_properties;
          Alcotest.test_case "backpointer symmetry" `Quick test_static_build_backpointer_symmetry;
        ] );
      ( "routing",
        [
          Alcotest.test_case "exact mesh routing" `Quick test_route_to_node_exact;
          Alcotest.test_case "hop bound" `Quick test_route_hop_bound;
          Alcotest.test_case "unique root, both variants" `Quick test_unique_root_native_and_prr;
          Alcotest.test_case "matches oracle" `Quick test_native_root_matches_oracle;
          Alcotest.test_case "exclusion" `Quick test_route_skip_excluded;
          Alcotest.test_case "cost charging" `Quick test_route_charges_cost;
        ] );
      ( "multicast",
        [
          Alcotest.test_case "full coverage + spanning tree" `Quick
            test_multicast_reaches_all_prefix_nodes;
          Alcotest.test_case "applies once" `Quick test_multicast_applies_once;
          Alcotest.test_case "rejects bad start" `Quick test_multicast_rejects_bad_start;
          Alcotest.test_case "watchlist reports fillers" `Quick
            test_multicast_watchlist_reports_fillers;
        ] );
      ( "publish/locate",
        [
          Alcotest.test_case "pointers along path" `Quick test_publish_deposits_along_path;
          Alcotest.test_case "locate everywhere" `Quick test_locate_finds_everywhere;
          Alcotest.test_case "missing object" `Quick test_locate_missing_object;
          Alcotest.test_case "close replica wins" `Quick test_locate_prefers_close_replica;
          Alcotest.test_case "unpublish" `Quick test_unpublish_removes;
          Alcotest.test_case "all copies kept" `Quick test_multi_replica_all_pointers_kept;
          Alcotest.test_case "multi-root" `Quick test_multi_root_publication;
          Alcotest.test_case "soft state" `Quick test_soft_state_expiry_and_republish;
        ] );
      ( "pointer maintenance",
        [
          Alcotest.test_case "optimize converges" `Quick test_optimize_object_ptrs_converges;
          Alcotest.test_case "delete backward" `Quick test_delete_pointers_backward;
          Alcotest.test_case "optimize_through selectivity" `Quick
            test_optimize_through_moves_only_affected;
        ] );
      ( "accounting",
        [
          Alcotest.test_case "secondaries publication" `Quick
            test_publish_on_secondaries_widens_coverage;
          Alcotest.test_case "measure nesting + rollback" `Quick test_measure_nesting;
        ] );
      ( "stub locality",
        [
          Alcotest.test_case "never escapes stub" `Quick test_stub_locality_never_escapes;
          Alcotest.test_case "wide-area fallback" `Quick test_stub_locality_falls_back;
        ] );
    ]
