(* Tests for the Table-1 comparators: Chord, the centralized directory, the
   broadcast strawman and the PRR v.0 general-metric sampler. *)

module Rng = Simnet.Rng
module Metric = Simnet.Metric
module Topology = Simnet.Topology
module Cost = Simnet.Cost

let metric_of ?(n = 120) seed =
  let rng = Rng.create seed in
  Topology.generate Topology.Uniform_square ~n ~rng

(* --- Chord --- *)

let build_chord ?(n = 120) ?(seed = 1) () =
  let metric = metric_of ~n seed in
  let ch = Baselines.Chord.create ~seed:(seed + 1) ~m:20 ~succ_list:4 metric in
  ignore (Baselines.Chord.bootstrap ch ~addr:0);
  for addr = 1 to n - 1 do
    ignore (Baselines.Chord.join ch ~gateway:(Baselines.Chord.random_node ch) ~addr)
  done;
  Baselines.Chord.stabilize_all ch ~rounds:3;
  (ch, metric)

let test_chord_ring_complete () =
  let ch, _ = build_chord () in
  Alcotest.(check bool) "ring closed over all nodes" true (Baselines.Chord.check_ring ch)

let test_chord_lookup_owner () =
  let ch, _ = build_chord () in
  (* the lookup answer must be the key's true successor on the ring *)
  let keys =
    List.sort Int.compare
      (List.map Baselines.Chord.node_key (Baselines.Chord.nodes ch))
  in
  let true_successor k =
    match List.find_opt (fun nk -> nk >= k) keys with
    | Some nk -> nk
    | None -> List.hd keys
  in
  let rng = Rng.create 9 in
  for _ = 1 to 100 do
    let key = Rng.int rng (1 lsl 20) in
    let from = Baselines.Chord.random_node ch in
    let owner, _ = Baselines.Chord.lookup ch ~from key in
    Alcotest.(check int) "successor" (true_successor key) (Baselines.Chord.node_key owner)
  done

let test_chord_lookup_hops_logarithmic () =
  let ch, _ = build_chord ~n:200 () in
  let rng = Rng.create 10 in
  let hops =
    List.init 200 (fun _ ->
        let from = Baselines.Chord.random_node ch in
        let _, h = Baselines.Chord.lookup ch ~from (Rng.int rng (1 lsl 20)) in
        float_of_int h)
  in
  let mean = Simnet.Stats.mean hops in
  (* ~ (1/2) log2 200 ~ 3.8; anything near-linear would blow past this *)
  Alcotest.(check bool) (Printf.sprintf "mean hops %.1f < 12" mean) true (mean < 12.)

let test_chord_publish_locate () =
  let ch, _ = build_chord () in
  let rng = Rng.create 11 in
  for i = 1 to 50 do
    let server = Baselines.Chord.random_node ch in
    let key = Rng.int rng (1 lsl 20) in
    Baselines.Chord.publish ch ~server ~guid_key:key;
    let from = Baselines.Chord.random_node ch in
    match Baselines.Chord.locate ch ~from ~guid_key:key with
    | Some s ->
        Alcotest.(check int)
          (Printf.sprintf "locate %d returns the server" i)
          (Baselines.Chord.node_addr server)
          (Baselines.Chord.node_addr s)
    | None -> Alcotest.fail "published key not found"
  done

let test_chord_locate_missing () =
  let ch, _ = build_chord ~n:40 () in
  let from = Baselines.Chord.random_node ch in
  Alcotest.(check bool) "missing key" true
    (Baselines.Chord.locate ch ~from ~guid_key:12345 = None)

let test_chord_join_moves_keys () =
  (* pointers must follow ring ownership across joins *)
  let metric = metric_of ~n:60 77 in
  let ch = Baselines.Chord.create ~seed:78 ~m:20 ~succ_list:4 metric in
  ignore (Baselines.Chord.bootstrap ch ~addr:0);
  for addr = 1 to 29 do
    ignore (Baselines.Chord.join ch ~gateway:(Baselines.Chord.random_node ch) ~addr)
  done;
  Baselines.Chord.stabilize_all ch ~rounds:2;
  let rng = Rng.create 79 in
  let keys = List.init 40 (fun _ -> Rng.int rng (1 lsl 20)) in
  List.iter
    (fun k ->
      Baselines.Chord.publish ch ~server:(Baselines.Chord.random_node ch) ~guid_key:k)
    keys;
  for addr = 30 to 59 do
    ignore (Baselines.Chord.join ch ~gateway:(Baselines.Chord.random_node ch) ~addr)
  done;
  Baselines.Chord.stabilize_all ch ~rounds:3;
  List.iter
    (fun k ->
      let from = Baselines.Chord.random_node ch in
      Alcotest.(check bool)
        (Printf.sprintf "key %d survives 30 joins" k)
        true
        (Baselines.Chord.locate ch ~from ~guid_key:k <> None))
    keys

(* --- Central directory --- *)

let test_central_directory () =
  let metric = metric_of 20 in
  let dir = Baselines.Central_directory.create ~directory_addr:0 metric in
  Baselines.Central_directory.publish dir ~server_addr:5 ~guid_key:1;
  Baselines.Central_directory.publish dir ~server_addr:9 ~guid_key:1;
  Alcotest.(check int) "entries" 2 (Baselines.Central_directory.directory_entries dir);
  (match Baselines.Central_directory.locate dir ~client_addr:3 ~guid_key:1 with
  | Some addr -> Alcotest.(check bool) "a replica" true (addr = 5 || addr = 9)
  | None -> Alcotest.fail "should find");
  Alcotest.(check (option int)) "missing" None
    (Baselines.Central_directory.locate dir ~client_addr:3 ~guid_key:2);
  Baselines.Central_directory.unpublish dir ~server_addr:5 ~guid_key:1;
  Baselines.Central_directory.unpublish dir ~server_addr:9 ~guid_key:1;
  Alcotest.(check (option int)) "after unpublish" None
    (Baselines.Central_directory.locate dir ~client_addr:3 ~guid_key:1)

let test_central_directory_latency_floor () =
  (* the intro's pathology: cost ~ distance to the directory even when the
     object is next door *)
  let metric = Metric.of_points [| (0., 0.); (1., 0.); (1.0001, 0.) |] in
  let dir = Baselines.Central_directory.create ~directory_addr:0 metric in
  Baselines.Central_directory.publish dir ~server_addr:2 ~guid_key:7;
  let before = Cost.snapshot (Baselines.Central_directory.cost dir) in
  ignore (Baselines.Central_directory.locate dir ~client_addr:1 ~guid_key:7);
  let d = Cost.diff (Cost.snapshot (Baselines.Central_directory.cost dir)) before in
  (* optimal is 0.0001; the directory forces ~2.0 of travel *)
  Alcotest.(check bool) "pays the diameter" true (d.Cost.latency > 1.5)

(* --- Broadcast --- *)

let test_broadcast () =
  let n = 50 in
  let metric = metric_of ~n 30 in
  let bc = Baselines.Broadcast.create ~n metric in
  let before = Cost.snapshot (Baselines.Broadcast.cost bc) in
  Baselines.Broadcast.publish bc ~server_addr:7 ~guid_key:3;
  let d = Cost.diff (Cost.snapshot (Baselines.Broadcast.cost bc)) before in
  Alcotest.(check int) "publish floods n-1 messages" (n - 1) d.Cost.messages;
  (match Baselines.Broadcast.locate bc ~client_addr:12 ~guid_key:3 with
  | Some addr -> Alcotest.(check int) "server" 7 addr
  | None -> Alcotest.fail "must find");
  Alcotest.(check (option int)) "missing" None
    (Baselines.Broadcast.locate bc ~client_addr:12 ~guid_key:99)

let test_broadcast_stretch_one () =
  let n = 60 in
  let metric = metric_of ~n 31 in
  let bc = Baselines.Broadcast.create ~n metric in
  Baselines.Broadcast.publish bc ~server_addr:3 ~guid_key:1;
  Baselines.Broadcast.publish bc ~server_addr:40 ~guid_key:1;
  for client = 0 to n - 1 do
    let before = Cost.snapshot (Baselines.Broadcast.cost bc) in
    (match Baselines.Broadcast.locate bc ~client_addr:client ~guid_key:1 with
    | Some _ -> ()
    | None -> Alcotest.fail "must find");
    let d = Cost.diff (Cost.snapshot (Baselines.Broadcast.cost bc)) before in
    let opt = min (Metric.dist metric client 3) (Metric.dist metric client 40) in
    Alcotest.(check (float 1e-9)) "exactly the optimal distance" opt d.Cost.latency
  done

(* --- PRR v.0 --- *)

let test_prr_v0_finds_everything () =
  let metric = metric_of ~n:100 40 in
  let p = Baselines.Prr_v0.build ~seed:41 metric in
  let rng = Rng.create 42 in
  let misses = ref 0 in
  for k = 1 to 150 do
    let server = Rng.int rng 100 in
    Baselines.Prr_v0.publish p ~server_addr:server ~guid_key:k;
    let client = Rng.int rng 100 in
    match Baselines.Prr_v0.locate p ~client_addr:client ~guid_key:k with
    | Some s when s = server -> ()
    | Some _ -> Alcotest.fail "wrong server"
    | None -> incr misses
  done;
  (* the scheme is randomized; S_{0,0}'s singleton root makes a full miss
     possible only if the root's pointer list lost a coin flip on every
     level, which the theorem bounds away — allow a tiny residue *)
  Alcotest.(check bool) (Printf.sprintf "misses %d <= 8" !misses) true (!misses <= 8)

let test_prr_v0_space_polylog () =
  let n = 256 in
  let metric = metric_of ~n 43 in
  let p = Baselines.Prr_v0.build ~seed:44 metric in
  let per_node = Baselines.Prr_v0.space_per_node p in
  let log2n = log (float_of_int n) /. log 2. in
  (* representative tables are <= levels*width = 3 log^2 n entries *)
  Alcotest.(check bool)
    (Printf.sprintf "space %.0f within 4 log^2 n = %.0f" per_node (4. *. log2n ** 2.))
    true
    (per_node <= 4. *. (log2n ** 2.))

let test_prr_v0_levels_and_width () =
  let metric = metric_of ~n:128 45 in
  let p = Baselines.Prr_v0.build ~seed:46 ~c:2 metric in
  Alcotest.(check int) "levels = log2 n" 7 (Baselines.Prr_v0.levels p);
  Alcotest.(check int) "width = c log2 n" 14 (Baselines.Prr_v0.width p)

let test_prr_v0_stretch_polylog_general_metric () =
  (* Theorem 7's claim on a metric with no growth structure at all *)
  let n = 128 in
  let rng = Rng.create 47 in
  let metric = Topology.generate Topology.Random_metric ~n ~rng in
  let p = Baselines.Prr_v0.build ~seed:48 metric in
  let stretches = ref [] in
  for k = 1 to 200 do
    let server = Rng.int rng n in
    Baselines.Prr_v0.publish p ~server_addr:server ~guid_key:k;
    let client = Rng.int rng n in
    if client <> server then begin
      let before = Cost.snapshot (Baselines.Prr_v0.cost p) in
      match Baselines.Prr_v0.locate p ~client_addr:client ~guid_key:k with
      | Some _ ->
          let d = Cost.diff (Cost.snapshot (Baselines.Prr_v0.cost p)) before in
          stretches := (d.Cost.latency /. Metric.dist metric client server) :: !stretches
      | None -> ()
    end
  done;
  let s = Simnet.Stats.summarize !stretches in
  let log2n = log (float_of_int n) /. log 2. in
  (* total latency is bounded by ~ d log^2 n in the theorem; mean should sit
     far below that bound on random instances *)
  Alcotest.(check bool)
    (Printf.sprintf "mean stretch %.1f < log^2 n = %.1f" s.Simnet.Stats.mean (log2n ** 2.))
    true
    (s.Simnet.Stats.mean < log2n ** 2.)


(* --- Pastry --- *)

let build_pastry ?(n = 120) ?(seed = 50) () =
  let metric = metric_of ~n seed in
  let pa = Baselines.Pastry.create ~seed:(seed + 1) Tapestry.Config.default metric in
  ignore (Baselines.Pastry.bootstrap pa ~addr:0);
  for addr = 1 to n - 1 do
    ignore (Baselines.Pastry.join pa ~gateway:(Baselines.Pastry.random_node pa) ~addr)
  done;
  (pa, metric)

let test_pastry_routes_converge () =
  let pa, _ = build_pastry () in
  Alcotest.(check bool) "all sources agree with the numeric oracle" true
    (Baselines.Pastry.check_routes_converge pa ~samples:40)

let test_pastry_publish_locate () =
  let pa, _ = build_pastry () in
  let rng = Rng.create 51 in
  for _ = 1 to 60 do
    let server = Baselines.Pastry.random_node pa in
    let guid = Tapestry.Node_id.random ~base:16 ~len:8 rng in
    Baselines.Pastry.publish pa ~server guid;
    let from = Baselines.Pastry.random_node pa in
    match Baselines.Pastry.locate pa ~from guid with
    | Some s ->
        Alcotest.(check int) "server found"
          (Baselines.Pastry.node_addr server)
          (Baselines.Pastry.node_addr s)
    | None -> Alcotest.fail "published object must be found"
  done

let test_pastry_hops_logarithmic () =
  let pa, _ = build_pastry ~n:200 () in
  let rng = Rng.create 52 in
  let hops =
    List.init 150 (fun _ ->
        let from = Baselines.Pastry.random_node pa in
        let guid = Tapestry.Node_id.random ~base:16 ~len:8 rng in
        let _, h = Baselines.Pastry.route pa ~from guid in
        float_of_int h)
    |> Simnet.Stats.mean
  in
  Alcotest.(check bool) (Printf.sprintf "mean hops %.1f < 8" hops) true (hops < 8.)

let test_pastry_missing () =
  let pa, _ = build_pastry ~n:40 () in
  let rng = Rng.create 53 in
  let from = Baselines.Pastry.random_node pa in
  Alcotest.(check bool) "missing object" true
    (Baselines.Pastry.locate pa ~from (Tapestry.Node_id.random ~base:16 ~len:8 rng) = None)

(* --- CAN --- *)

let build_can ?(n = 120) ?(seed = 60) ?(dims = 2) () =
  let metric = metric_of ~n seed in
  let ca = Baselines.Can.create ~seed:(seed + 1) ~dims metric in
  ignore (Baselines.Can.bootstrap ca ~addr:0);
  for addr = 1 to n - 1 do
    ignore (Baselines.Can.join ca ~gateway:(Baselines.Can.random_node ca) ~addr)
  done;
  ca

let test_can_zones_partition () =
  let ca = build_can () in
  Alcotest.(check bool) "zones tile the space" true
    (Baselines.Can.check_zones_partition ca ~samples:1000)

let test_can_routing_reaches_owner () =
  let ca = build_can () in
  for k = 1 to 100 do
    let p = Baselines.Can.point_of_key ca k in
    let from = Baselines.Can.random_node ca in
    let reached, _ = Baselines.Can.route ca ~from p in
    let oracle = Baselines.Can.owner_of ca p in
    Alcotest.(check int) "greedy routing reaches the owner"
      (Baselines.Can.node_addr oracle)
      (Baselines.Can.node_addr reached)
  done

let test_can_publish_locate () =
  let ca = build_can () in
  for k = 1 to 60 do
    let server = Baselines.Can.random_node ca in
    Baselines.Can.publish ca ~server ~guid_key:k;
    let from = Baselines.Can.random_node ca in
    match Baselines.Can.locate ca ~from ~guid_key:k with
    | Some s ->
        Alcotest.(check int) "server" (Baselines.Can.node_addr server)
          (Baselines.Can.node_addr s)
    | None -> Alcotest.fail "published key not found"
  done

let test_can_dimension_tradeoff () =
  (* higher d: more neighbors, fewer hops (the O(d n^{1/d}) trade-off) *)
  let hops_of dims =
    let ca = build_can ~n:150 ~seed:61 ~dims () in
    let total = ref 0 in
    for k = 1 to 80 do
      let from = Baselines.Can.random_node ca in
      let _, h = Baselines.Can.route ca ~from (Baselines.Can.point_of_key ca k) in
      total := !total + h
    done;
    float_of_int !total /. 80.
  in
  let h2 = hops_of 2 and h4 = hops_of 4 in
  Alcotest.(check bool)
    (Printf.sprintf "d=4 (%.1f) routes in fewer hops than d=2 (%.1f)" h4 h2)
    true (h4 < h2)

(* --- Karger-Ruhl --- *)

let test_kr_exactness_scales_with_sample () =
  let metric =
    let rng = Rng.create 70 in
    Topology.generate Topology.Uniform_torus ~n:150 ~rng
  in
  let exact s =
    let kr = Baselines.Karger_ruhl.build ~seed:71 ~sample_size:s metric in
    let rng = Rng.create 72 in
    let ok = ref 0 in
    for _ = 1 to 100 do
      let target = Rng.int rng 150 and start = Rng.int rng 150 in
      let a = Baselines.Karger_ruhl.query kr ~start ~target in
      match Metric.nearest_other metric target with
      | Some truth
        when Metric.dist metric target a.Baselines.Karger_ruhl.nearest
             <= Metric.dist metric target truth +. 1e-12 ->
          incr ok
      | _ -> ()
    done;
    !ok
  in
  let small = exact 8 and large = exact 96 in
  Alcotest.(check bool)
    (Printf.sprintf "s=96 (%d) beats s=8 (%d)" large small)
    true (large > small);
  Alcotest.(check bool) (Printf.sprintf "s=96 nearly exact (%d/100)" large) true (large >= 85)

let test_kr_space_grows_with_sample () =
  let metric = metric_of ~n:128 73 in
  let s24 = Baselines.Karger_ruhl.build ~sample_size:24 metric in
  let s96 = Baselines.Karger_ruhl.build ~sample_size:96 metric in
  Alcotest.(check bool) "space ordering" true
    (Baselines.Karger_ruhl.space_per_node s96 > Baselines.Karger_ruhl.space_per_node s24)

let test_kr_query_terminates_from_anywhere () =
  let metric = metric_of ~n:100 74 in
  let kr = Baselines.Karger_ruhl.build metric in
  for start = 0 to 99 do
    let a = Baselines.Karger_ruhl.query kr ~start ~target:((start + 37) mod 100) in
    Alcotest.(check bool) "answer differs from target" true
      (a.Baselines.Karger_ruhl.nearest <> (start + 37) mod 100)
  done

(* --- Thorup-Zwick --- *)

let test_tz_distance_never_underestimates () =
  let rng = Rng.create 80 in
  let metric = Topology.generate Topology.Random_metric ~n:100 ~rng in
  let tz = Baselines.Thorup_zwick.build ~seed:81 metric in
  let bound = float_of_int ((2 * Baselines.Thorup_zwick.k tz) - 1) in
  for _ = 1 to 400 do
    let u = Rng.int rng 100 and v = Rng.int rng 100 in
    let est = Baselines.Thorup_zwick.approx_distance tz u v in
    let true_d = Metric.dist metric u v in
    if est < true_d -. 1e-9 then Alcotest.fail "oracle underestimated";
    if u <> v && est > (bound *. true_d) +. 1e-9 then
      Alcotest.failf "stretch bound violated: %f > %f" (est /. true_d) bound
  done

let test_tz_locates_everything () =
  let rng = Rng.create 82 in
  let metric = Topology.generate Topology.Star ~n:120 ~rng in
  let tz = Baselines.Thorup_zwick.build ~seed:83 metric in
  for kk = 1 to 150 do
    let server = Rng.int rng 120 in
    Baselines.Thorup_zwick.publish tz ~server_addr:server ~guid_key:kk;
    let client = Rng.int rng 120 in
    match Baselines.Thorup_zwick.locate tz ~client_addr:client ~guid_key:kk with
    | Some s -> Alcotest.(check int) "server" server s
    | None -> Alcotest.fail "registration/probe sets must intersect"
  done

let test_tz_space_beats_prr_v0 () =
  (* the whole point of the citation: an O(k n^{1/k}) bunch per node instead
     of O(log^2 n) samples *)
  let metric = metric_of ~n:200 84 in
  let tz = Baselines.Thorup_zwick.build ~seed:85 metric in
  let p = Baselines.Prr_v0.build ~seed:86 metric in
  Alcotest.(check bool) "TZ is much smaller" true
    (Baselines.Thorup_zwick.space_per_node tz
    < Baselines.Prr_v0.space_per_node p /. 4.)

let test_tz_small_k () =
  let metric = metric_of ~n:60 87 in
  let tz = Baselines.Thorup_zwick.build ~seed:88 ~k:2 metric in
  Alcotest.(check int) "k" 2 (Baselines.Thorup_zwick.k tz);
  let rng = Rng.create 89 in
  for _ = 1 to 200 do
    let u = Rng.int rng 60 and v = Rng.int rng 60 in
    let est = Baselines.Thorup_zwick.approx_distance tz u v in
    if u <> v && est > (3. *. Metric.dist metric u v) +. 1e-9 then
      Alcotest.fail "k=2 stretch must be <= 3"
  done

let () =
  Alcotest.run "baselines"
    [
      ( "chord",
        [
          Alcotest.test_case "ring complete" `Quick test_chord_ring_complete;
          Alcotest.test_case "lookup = true successor" `Quick test_chord_lookup_owner;
          Alcotest.test_case "hops logarithmic" `Quick test_chord_lookup_hops_logarithmic;
          Alcotest.test_case "publish/locate" `Quick test_chord_publish_locate;
          Alcotest.test_case "missing key" `Quick test_chord_locate_missing;
          Alcotest.test_case "joins move keys" `Quick test_chord_join_moves_keys;
        ] );
      ( "central directory",
        [
          Alcotest.test_case "basic" `Quick test_central_directory;
          Alcotest.test_case "latency floor" `Quick test_central_directory_latency_floor;
        ] );
      ( "broadcast",
        [
          Alcotest.test_case "flood + locate" `Quick test_broadcast;
          Alcotest.test_case "stretch one" `Quick test_broadcast_stretch_one;
        ] );
      ( "pastry",
        [
          Alcotest.test_case "routes converge" `Quick test_pastry_routes_converge;
          Alcotest.test_case "publish/locate" `Quick test_pastry_publish_locate;
          Alcotest.test_case "hops logarithmic" `Quick test_pastry_hops_logarithmic;
          Alcotest.test_case "missing object" `Quick test_pastry_missing;
        ] );
      ( "can",
        [
          Alcotest.test_case "zones partition" `Quick test_can_zones_partition;
          Alcotest.test_case "routing reaches owner" `Quick test_can_routing_reaches_owner;
          Alcotest.test_case "publish/locate" `Quick test_can_publish_locate;
          Alcotest.test_case "dimension trade-off" `Quick test_can_dimension_tradeoff;
        ] );
      ( "karger-ruhl",
        [
          Alcotest.test_case "exactness vs sample size" `Quick test_kr_exactness_scales_with_sample;
          Alcotest.test_case "space vs sample size" `Quick test_kr_space_grows_with_sample;
          Alcotest.test_case "terminates from anywhere" `Quick test_kr_query_terminates_from_anywhere;
        ] );
      ( "thorup-zwick",
        [
          Alcotest.test_case "oracle bounds" `Quick test_tz_distance_never_underestimates;
          Alcotest.test_case "locates everything" `Quick test_tz_locates_everything;
          Alcotest.test_case "space beats prr_v0" `Quick test_tz_space_beats_prr_v0;
          Alcotest.test_case "k=2 stretch <= 3" `Quick test_tz_small_k;
        ] );
      ( "prr v0",
        [
          Alcotest.test_case "finds everything" `Quick test_prr_v0_finds_everything;
          Alcotest.test_case "space polylog" `Quick test_prr_v0_space_polylog;
          Alcotest.test_case "levels/width" `Quick test_prr_v0_levels_and_width;
          Alcotest.test_case "general-metric stretch" `Quick
            test_prr_v0_stretch_polylog_general_metric;
        ] );
    ]
