(* Object-pointer cache tests (PR 9, DESIGN.md section 10):

   - Obj_cache unit behavior: interning, clock second-chance and
     2-random eviction, conditional evict, per-(object, server) epoch
     staleness;
   - the synchronous locate path: warm hits shorten later locates
     without changing answers, a partial unpublish (one replica of two)
     leaves shortcuts to the surviving replica valid, and the audit's
     cache-coherence check accepts the quiescent state;
   - a hand-corrupted entry (live server that never held the replica)
     is flagged Cache_incoherent by the audit;
   - driver mesh reuse: clearing soft state and restoring the RNG
     replays a serve run bit-identically (the bench row fast path). *)

open Tapestry
module Rng = Simnet.Rng
module Driver = Serve.Driver

let build ?(n = 120) ?(seed = 11) () =
  let rng = Rng.create seed in
  let metric =
    Simnet.Topology.generate Simnet.Topology.Uniform_square ~n ~rng
  in
  let addrs = List.init n (fun i -> i) in
  Static_build.build ~seed:(seed + 1) Config.default metric ~addrs

let random_guid net =
  let cfg = net.Network.config in
  Node_id.random ~base:cfg.Config.base ~len:cfg.Config.id_digits
    net.Network.rng

(* ---- Obj_cache units ---- *)

let mk ?(ways = 2) ?(policy = Obj_cache.Clock) ?(nodes = 4) () =
  Obj_cache.create ~ways ~policy ~nodes

let test_intern_roundtrip () =
  let c = mk () in
  let net = build ~n:8 () in
  let g1 = random_guid net and g2 = random_guid net in
  let k1 = Obj_cache.intern c g1 in
  let k2 = Obj_cache.intern c g2 in
  Alcotest.(check bool) "distinct keys" true (k1 <> k2);
  Alcotest.(check int) "intern idempotent" k1 (Obj_cache.intern c g1);
  Alcotest.(check int) "find_key finds" k2 (Obj_cache.find_key c g2);
  Alcotest.(check bool) "guid_of_key inverts" true
    (Node_id.equal g1 (Obj_cache.guid_of_key c k1));
  Alcotest.(check int) "find_key misses cleanly" (-1)
    (Obj_cache.find_key c (random_guid net))

let test_insert_probe_evict () =
  let c = mk ~ways:2 () in
  Obj_cache.insert c ~h:1 ~key:0 ~server:7 ~gen:0;
  let i = Obj_cache.probe c ~h:1 ~key:0 in
  Alcotest.(check bool) "hit" true (i >= 0);
  Alcotest.(check int) "server" 7 (Obj_cache.probe_srv c i);
  Alcotest.(check int) "other line misses" (-1) (Obj_cache.probe c ~h:2 ~key:0);
  (* refresh in place: same key re-inserted names the new server *)
  Obj_cache.insert c ~h:1 ~key:0 ~server:9 ~gen:0;
  Alcotest.(check int) "refreshed" 9
    (Obj_cache.probe_srv c (Obj_cache.probe c ~h:1 ~key:0));
  Alcotest.(check int) "one entry, not two" 1 (Obj_cache.entries c);
  (* conditional evict: wrong server is a no-op, right server clears *)
  Obj_cache.evict c ~h:1 ~key:0 ~server:7;
  Alcotest.(check bool) "evict checks server" true
    (Obj_cache.probe c ~h:1 ~key:0 >= 0);
  Obj_cache.evict c ~h:1 ~key:0 ~server:9;
  Alcotest.(check int) "evicted" (-1) (Obj_cache.probe c ~h:1 ~key:0)

let test_doorkeeper_admission () =
  let c = mk ~ways:2 () in
  Obj_cache.insert c ~h:0 ~key:1 ~server:1 ~gen:0;
  Obj_cache.insert c ~h:0 ~key:2 ~server:2 ~gen:0;
  (* a full line declines a first-touch key instead of evicting ... *)
  Obj_cache.insert c ~h:0 ~key:3 ~server:3 ~gen:0;
  Alcotest.(check int) "first touch declined" (-1)
    (Obj_cache.probe c ~h:0 ~key:3);
  Alcotest.(check bool) "residents untouched" true
    (Obj_cache.probe c ~h:0 ~key:1 >= 0
    && Obj_cache.probe c ~h:0 ~key:2 >= 0);
  (* ... and admits the second touch (now a proven repeater) *)
  Obj_cache.insert c ~h:0 ~key:3 ~server:3 ~gen:0;
  Alcotest.(check bool) "second touch admitted" true
    (Obj_cache.probe c ~h:0 ~key:3 >= 0);
  Alcotest.(check int) "line stays bounded" 2 (Obj_cache.entries c)

let test_clock_second_chance () =
  let c = mk ~ways:2 ~policy:Obj_cache.Clock () in
  Obj_cache.insert c ~h:0 ~key:1 ~server:1 ~gen:0;
  Obj_cache.insert c ~h:0 ~key:2 ~server:2 ~gen:0;
  (* double-insert key 3 to pass the doorkeeper; both residents'
     reference bits are set at fill, so the overflow sweeps them clear
     and evicts at the hand (key 1) *)
  Obj_cache.insert c ~h:0 ~key:3 ~server:3 ~gen:0;
  Obj_cache.insert c ~h:0 ~key:3 ~server:3 ~gen:0;
  Alcotest.(check int) "hand victim evicted" (-1)
    (Obj_cache.probe c ~h:0 ~key:1);
  (* now key 3's bit is set (fill + probe), key 2's is clear: the next
     admitted overflow must spare the referenced entry and victimize
     key 2 *)
  ignore (Obj_cache.probe c ~h:0 ~key:3 : int);
  Obj_cache.insert c ~h:0 ~key:4 ~server:4 ~gen:0;
  Obj_cache.insert c ~h:0 ~key:4 ~server:4 ~gen:0;
  Alcotest.(check bool) "referenced entry survives" true
    (Obj_cache.probe c ~h:0 ~key:3 >= 0);
  Alcotest.(check int) "unreferenced entry victimized" (-1)
    (Obj_cache.probe c ~h:0 ~key:2);
  Alcotest.(check bool) "new entry resident" true
    (Obj_cache.probe c ~h:0 ~key:4 >= 0);
  Alcotest.(check int) "line stays bounded" 2 (Obj_cache.entries c)

let test_two_random_deterministic () =
  let fill () =
    let c = mk ~ways:4 ~policy:Obj_cache.Two_random ~nodes:2 () in
    for k = 0 to 15 do
      (* double-insert so overflow fills pass the doorkeeper *)
      Obj_cache.insert c ~h:1 ~key:k ~server:(100 + k) ~gen:0;
      Obj_cache.insert c ~h:1 ~key:k ~server:(100 + k) ~gen:0
    done;
    List.init 16 (fun k -> Obj_cache.probe c ~h:1 ~key:k >= 0)
  in
  Alcotest.(check (list bool)) "same insert order, same victims" (fill ())
    (fill ());
  Alcotest.(check int) "line stays bounded" 4
    (List.length (List.filter Fun.id (fill ())))

let test_pair_epoch_staleness () =
  let c = mk ~ways:2 () in
  Obj_cache.insert c ~h:0 ~key:5 ~server:3 ~gen:0;
  (* retracting the SAME object from a DIFFERENT server must not touch
     this entry — that is the point of pair granularity *)
  Obj_cache.bump_epoch c ~key:5 ~srv:8;
  Alcotest.(check bool) "other server's retraction ignored" true
    (Obj_cache.probe c ~h:0 ~key:5 >= 0);
  Obj_cache.bump_epoch c ~key:5 ~srv:3;
  Alcotest.(check int) "named server's retraction stales" (-2)
    (Obj_cache.probe c ~h:0 ~key:5);
  Alcotest.(check int) "stale probe self-evicted" (-1)
    (Obj_cache.probe c ~h:0 ~key:5);
  (* a refill snapshots the bumped epoch and is valid again *)
  Obj_cache.insert c ~h:0 ~key:5 ~server:3 ~gen:0;
  Alcotest.(check bool) "refill current again" true
    (Obj_cache.probe c ~h:0 ~key:5 >= 0)

(* ---- cooperative hint sketch (PR 10) ---- *)

let test_hint_export_import () =
  let c = mk ~ways:4 ~nodes:4 () in
  Obj_cache.set_coop c ~hint_k:4 ~hint_budget:4;
  Alcotest.(check bool) "coop on" true (Obj_cache.coop_on c);
  Obj_cache.insert c ~h:0 ~key:1 ~server:11 ~gen:0;
  Obj_cache.insert c ~h:0 ~key:2 ~server:12 ~gen:0;
  Obj_cache.insert c ~h:0 ~key:3 ~server:13 ~gen:0;
  (* key 1 earns two extra hits, key 2 one, key 3 none: export must
     visit hottest-first and never export a one-touch entry *)
  ignore (Obj_cache.probe c ~h:0 ~key:1 : int);
  ignore (Obj_cache.probe c ~h:0 ~key:1 : int);
  ignore (Obj_cache.probe c ~h:0 ~key:2 : int);
  let order = ref [] in
  Obj_cache.export_hints c ~h:0 ~k:4
    ~f:(fun ~key ~server:_ ~gen:_ ~epoch:_ -> order := key :: !order);
  Alcotest.(check (list int)) "hottest first, one-touch entries withheld"
    [ 1; 2 ]
    (List.rev !order);
  (* export halves the recorded warmth: a second export finds nothing
     until fresh local hits re-earn it *)
  let again = ref 0 in
  Obj_cache.export_hints c ~h:0 ~k:4
    ~f:(fun ~key:_ ~server:_ ~gen:_ ~epoch:_ -> incr again);
  Alcotest.(check int) "propagated warmth decays" 0 !again;
  ignore (Obj_cache.probe c ~h:0 ~key:1 : int);
  let re = ref 0 in
  Obj_cache.export_hints c ~h:0 ~k:4
    ~f:(fun ~key:_ ~server:_ ~gen:_ ~epoch:_ -> incr re);
  Alcotest.(check int) "fresh hits re-earn exportability" 1 !re;
  (* import into another node: lands cold, hint-marked, serves hits *)
  let epoch = Obj_cache.epoch_of c ~key:1 ~srv:11 in
  Alcotest.(check bool) "import lands in an empty way" true
    (Obj_cache.import_hint c ~h:1 ~key:1 ~server:11 ~gen:0 ~epoch);
  let i = Obj_cache.probe c ~h:1 ~key:1 in
  Alcotest.(check bool) "hint probes as a hit" true (i >= 0);
  Alcotest.(check bool) "entry is hint-sourced" true
    (Obj_cache.probe_is_hint c i);
  Alcotest.(check int) "hint names the exporter's server" 11
    (Obj_cache.probe_srv c i);
  Alcotest.(check bool) "own learning wins: held key declines re-import"
    false
    (Obj_cache.import_hint c ~h:1 ~key:1 ~server:99 ~gen:0 ~epoch)

let test_hint_import_never_displaces () =
  let c = mk ~ways:2 ~nodes:2 () in
  Obj_cache.set_coop c ~hint_k:2 ~hint_budget:2;
  Obj_cache.insert c ~h:0 ~key:1 ~server:1 ~gen:0;
  Obj_cache.insert c ~h:0 ~key:2 ~server:2 ~gen:0;
  let ep3 = Obj_cache.epoch_of c ~key:3 ~srv:3 in
  Alcotest.(check bool) "full line declines a hint" false
    (Obj_cache.import_hint c ~h:0 ~key:3 ~server:3 ~gen:0 ~epoch:ep3);
  Alcotest.(check bool) "residents untouched" true
    (Obj_cache.probe c ~h:0 ~key:1 >= 0 && Obj_cache.probe c ~h:0 ~key:2 >= 0);
  (* an epoch-stale probe frees the way, and then the hint can land *)
  Obj_cache.bump_epoch c ~key:1 ~srv:1;
  Alcotest.(check int) "stale probe self-evicts" (-2)
    (Obj_cache.probe c ~h:0 ~key:1);
  Alcotest.(check bool) "freed way accepts the hint" true
    (Obj_cache.import_hint c ~h:0 ~key:3 ~server:3 ~gen:0 ~epoch:ep3)

let test_hint_staleness_self_evicts () =
  let c = mk ~ways:2 ~nodes:2 () in
  Obj_cache.set_coop c ~hint_k:2 ~hint_budget:2;
  let ep = Obj_cache.epoch_of c ~key:7 ~srv:4 in
  Alcotest.(check bool) "hint lands" true
    (Obj_cache.import_hint c ~h:1 ~key:7 ~server:4 ~gen:0 ~epoch:ep);
  (* the retraction machinery is shared with organic entries: an epoch
     bump stales the hint, the next probe self-evicts it *)
  Obj_cache.bump_epoch c ~key:7 ~srv:4;
  Alcotest.(check int) "stale hint-hit self-evicts" (-2)
    (Obj_cache.probe c ~h:1 ~key:7);
  Alcotest.(check int) "way is free again" (-1)
    (Obj_cache.probe c ~h:1 ~key:7)

let test_reset_clears_soft_state () =
  let c = mk ~ways:2 ~nodes:2 () in
  let net = build ~n:8 () in
  Obj_cache.set_coop c ~hint_k:2 ~hint_budget:2;
  let g = random_guid net in
  let key = Obj_cache.intern c g in
  Obj_cache.insert c ~h:0 ~key ~server:1 ~gen:0;
  ignore (Obj_cache.probe c ~h:0 ~key : int);
  ignore
    (Obj_cache.import_hint c ~h:1 ~key:5 ~server:2 ~gen:0
       ~epoch:(Obj_cache.epoch_of c ~key:5 ~srv:2)
      : bool);
  Obj_cache.bump_epoch c ~key ~srv:9;
  Obj_cache.reset c;
  Alcotest.(check int) "no entries survive reset" 0 (Obj_cache.entries c);
  Alcotest.(check int) "probe misses" (-1) (Obj_cache.probe c ~h:0 ~key);
  Alcotest.(check int) "hint gone" (-1) (Obj_cache.probe c ~h:1 ~key:5);
  Alcotest.(check int) "tally cleared" 0
    (Simnet.Stats.Tally.lookups c.Obj_cache.tally);
  Alcotest.(check int) "pair epochs cleared" 0
    (Obj_cache.epoch_of c ~key ~srv:9);
  Alcotest.(check bool) "coop config survives" true (Obj_cache.coop_on c);
  Alcotest.(check int) "interning survives" key (Obj_cache.find_key c g)

(* ---- synchronous locate path ---- *)

let attach_cache ?(ways = 4) net =
  let c =
    Obj_cache.create ~ways ~policy:Obj_cache.Clock
      ~nodes:net.Network.arena_len
  in
  net.Network.obj_cache <- Some c;
  c

let test_sync_warm_hits () =
  let net = build () in
  let c = attach_cache net in
  let server = Network.random_alive net in
  let guid = random_guid net in
  ignore (Publish.publish net ~server guid);
  let client = Network.random_alive net in
  let r1 = Locate.locate net ~client guid in
  Alcotest.(check bool) "cold locate finds" true (r1.Locate.server <> None);
  Alcotest.(check bool) "unwind filled the path" true
    (c.Obj_cache.tally.Simnet.Stats.Tally.fills > 0);
  let hits0 = c.Obj_cache.tally.Simnet.Stats.Tally.hits in
  let r2 = Locate.locate net ~client guid in
  Alcotest.(check bool) "warm locate finds" true (r2.Locate.server <> None);
  Alcotest.(check bool) "warm locate hit the cache" true
    (c.Obj_cache.tally.Simnet.Stats.Tally.hits > hits0);
  Alcotest.(check bool) "warm walk no longer than cold" true
    (List.length r2.Locate.walk <= List.length r1.Locate.walk);
  (match (r1.Locate.server, r2.Locate.server) with
  | Some a, Some b ->
      Alcotest.(check bool) "same answer" true
        (Node_id.equal a.Node.id b.Node.id)
  | _ -> ());
  let report = Audit.run net in
  if not (Audit.is_clean report) then
    Alcotest.failf "warm mesh not audit-clean: %s"
      (Format.asprintf "%a" Audit.pp_report report)

let test_sync_partial_unpublish () =
  let net = build ~n:150 ~seed:23 () in
  ignore (attach_cache net);
  let s1 = Network.random_alive net in
  let s2 = Network.random_alive net in
  if Node_id.equal s1.Node.id s2.Node.id then
    Alcotest.fail "test needs two distinct servers (reseed)";
  let guid = random_guid net in
  ignore (Publish.publish net ~server:s1 guid);
  ignore (Publish.publish net ~server:s2 guid);
  (* warm caches from several clients, then retract ONE replica *)
  for _ = 1 to 10 do
    let client = Network.random_alive net in
    ignore (Locate.locate net ~client guid)
  done;
  Publish.unpublish net ~server:s1 guid;
  (* every locate must still resolve — a shortcut naming s1 is now
     epoch-stale (degrades to the climb), one naming s2 is still valid *)
  for _ = 1 to 20 do
    let client = Network.random_alive net in
    match (Locate.locate net ~client guid).Locate.server with
    | None -> Alcotest.fail "locate lost the surviving replica"
    | Some s ->
        Alcotest.(check bool) "answers the surviving server" true
          (Node_id.equal s.Node.id s2.Node.id)
  done;
  let report = Audit.run net in
  if not (Audit.is_clean report) then
    Alcotest.failf "post-unpublish mesh not audit-clean: %s"
      (Format.asprintf "%a" Audit.pp_report report)

(* Hints must travel on existing traffic: publishes and republishes
   export each hop's hottest entries to the next hop.  Warm a mesh with
   locate traffic over many objects, republish everything, and some
   node must now hold — and later serve — an entry it never fetched. *)
let test_sync_hint_propagation () =
  let net = build ~n:150 ~seed:31 () in
  let c = attach_cache ~ways:8 net in
  Obj_cache.set_coop c ~hint_k:4 ~hint_budget:4;
  let objects =
    List.init 12 (fun _ ->
        let server = Network.random_alive net in
        let guid = random_guid net in
        ignore (Publish.publish net ~server guid : Publish.outcome);
        guid)
  in
  (* warm: repeated locates from many clients earn export-worthy hit
     counts along the climb paths *)
  for _ = 1 to 3 do
    List.iter
      (fun guid ->
        for _ = 1 to 6 do
          let client = Network.random_alive net in
          ignore (Locate.locate net ~client guid : Locate.result)
        done)
      objects
  done;
  let tl = c.Obj_cache.tally in
  Alcotest.(check int) "no hints before any republish" 0
    tl.Simnet.Stats.Tally.hint_fills;
  ignore (Maintenance.republish_all net : int);
  Alcotest.(check bool) "republish traffic carried hints" true
    (tl.Simnet.Stats.Tally.hint_fills > 0);
  (* and the landed hints actually answer queries *)
  for _ = 1 to 3 do
    List.iter
      (fun guid ->
        for _ = 1 to 6 do
          let client = Network.random_alive net in
          match (Locate.locate net ~client guid).Locate.server with
          | None -> Alcotest.fail "locate lost a published object"
          | Some _ -> ()
        done)
      objects
  done;
  Alcotest.(check bool) "a node served a hint it never fetched" true
    (tl.Simnet.Stats.Tally.hint_hits > 0);
  let report = Audit.run net in
  if not (Audit.is_clean report) then
    Alcotest.failf "hinted mesh not audit-clean: %s"
      (Format.asprintf "%a" Audit.pp_report report)

(* Unpublish must retract propagated hints everywhere at once: the
   epoch bump stales every copy, a later hint-hit self-evicts and the
   climb resumes — no client may be answered with the retracted
   replica. *)
let test_sync_hint_staleness () =
  let net = build ~n:150 ~seed:23 () in
  let c = attach_cache ~ways:8 net in
  Obj_cache.set_coop c ~hint_k:4 ~hint_budget:4;
  let s1 = Network.random_alive net in
  let s2 = Network.random_alive net in
  if Node_id.equal s1.Node.id s2.Node.id then
    Alcotest.fail "test needs two distinct servers (reseed)";
  let guid = random_guid net in
  ignore (Publish.publish net ~server:s1 guid : Publish.outcome);
  ignore (Publish.publish net ~server:s2 guid : Publish.outcome);
  for _ = 1 to 20 do
    let client = Network.random_alive net in
    ignore (Locate.locate net ~client guid : Locate.result)
  done;
  ignore (Maintenance.republish_all net : int);
  Publish.unpublish net ~server:s1 guid;
  for _ = 1 to 30 do
    let client = Network.random_alive net in
    match (Locate.locate net ~client guid).Locate.server with
    | None -> Alcotest.fail "locate lost the surviving replica"
    | Some s ->
        Alcotest.(check bool) "never answers the retracted replica" true
          (Node_id.equal s.Node.id s2.Node.id)
  done;
  let report = Audit.run net in
  if not (Audit.is_clean report) then
    Alcotest.failf "post-unpublish hinted mesh not audit-clean: %s"
      (Format.asprintf "%a" Audit.pp_report report)

let test_audit_flags_corruption () =
  let net = build () in
  let c = attach_cache net in
  let server = Network.random_alive net in
  let guid = random_guid net in
  ignore (Publish.publish net ~server guid);
  (* plant an epoch-current entry claiming a live non-server holds the
     replica: exactly the lie the coherence check exists to catch *)
  let impostor =
    let rec pick () =
      let n = Network.random_alive net in
      if Node.stores_replica n guid then pick () else n
    in
    pick ()
  in
  let key = Obj_cache.intern c guid in
  Obj_cache.ensure_nodes c net.Network.arena_len;
  Obj_cache.insert c ~h:0 ~key ~server:impostor.Node.handle ~gen:0;
  let report = Audit.run net in
  let flagged =
    List.exists
      (function Audit.Cache_incoherent _ -> true | _ -> false)
      report.Audit.violations
  in
  Alcotest.(check bool) "audit flags the corrupt entry" true flagged

(* ---- serve driver: cache accounting and mesh reuse ---- *)

let build_streamed n seed =
  let rng = Rng.create seed in
  let metric =
    Simnet.Topology.generate Simnet.Topology.Uniform_square ~n ~rng
  in
  let net, _stats =
    Static_build.build_streamed ~seed:(seed + 1) Config.default metric ~n
  in
  net

let fake_clock () =
  let c = ref 0. in
  fun () ->
    c := !c +. 1.;
    !c

let cached_params =
  {
    Driver.default with
    Driver.requests = 4_000;
    rate = 40_000.;
    objects = 200;
    window = 0.02;
    cache_size = 8;
  }

let test_driver_cache_counters () =
  let net = build_streamed 256 42 in
  let r = Driver.run ~net cached_params ~now:(fake_clock ()) in
  let tl = r.Driver.tally in
  let open Simnet.Stats in
  Alcotest.(check bool) "cache consulted" true (Tally.lookups tl > 0);
  Alcotest.(check bool) "cache hit" true (tl.Tally.hits > 0);
  Alcotest.(check bool) "cache filled" true (tl.Tally.fills > 0);
  Alcotest.(check int) "requests all resolved" r.Driver.injected
    (r.Driver.completed + r.Driver.failed)

let test_mesh_reuse_replay () =
  let net = build_streamed 256 42 in
  let snap = Rng.copy net.Network.rng in
  let r1 = Driver.run ~net cached_params ~now:(fake_clock ()) in
  Network.clear_soft_state net;
  net.Network.rng <- Rng.copy snap;
  let r2 = Driver.run ~net cached_params ~now:(fake_clock ()) in
  Alcotest.(check string) "soft-state reset replays bit-identically"
    (Driver.signature r1) (Driver.signature r2)

let test_mesh_reuse_replay_coop () =
  (* the replay guarantee must survive cooperation: leftover sketch
     counts, hint marks or digest state from row one would perturb row
     two's exchange and change its signature *)
  let params = { cached_params with Driver.coop = true } in
  let net = build_streamed 256 42 in
  let snap = Rng.copy net.Network.rng in
  let r1 = Driver.run ~net params ~now:(fake_clock ()) in
  Network.clear_soft_state net;
  net.Network.rng <- Rng.copy snap;
  let r2 = Driver.run ~net params ~now:(fake_clock ()) in
  Alcotest.(check string) "cooperative rows replay bit-identically"
    (Driver.signature r1) (Driver.signature r2);
  (* and a cooperative row must not leak into a later plain-cache row *)
  Network.clear_soft_state net;
  net.Network.rng <- Rng.copy snap;
  let r3 = Driver.run ~net cached_params ~now:(fake_clock ()) in
  let net2 = build_streamed 256 42 in
  let r4 = Driver.run ~net:net2 cached_params ~now:(fake_clock ()) in
  Alcotest.(check string) "coop row leaves no residue for the next row"
    (Driver.signature r4) (Driver.signature r3)

let () =
  Alcotest.run "cache"
    [
      ( "obj_cache",
        [
          Alcotest.test_case "intern/find_key/guid_of_key round-trip" `Quick
            test_intern_roundtrip;
          Alcotest.test_case "insert, probe, refresh, conditional evict"
            `Quick test_insert_probe_evict;
          Alcotest.test_case "doorkeeper declines first touch, admits second"
            `Quick test_doorkeeper_admission;
          Alcotest.test_case "clock second-chance spares recent hits" `Quick
            test_clock_second_chance;
          Alcotest.test_case "2-random eviction is deterministic" `Quick
            test_two_random_deterministic;
          Alcotest.test_case "epochs invalidate per (object, server) pair"
            `Quick test_pair_epoch_staleness;
        ] );
      ( "hints",
        [
          Alcotest.test_case
            "export is hottest-first, thresholded, and decays" `Quick
            test_hint_export_import;
          Alcotest.test_case "imports never displace resident entries"
            `Quick test_hint_import_never_displaces;
          Alcotest.test_case "stale hint-hit self-evicts" `Quick
            test_hint_staleness_self_evicts;
          Alcotest.test_case "reset clears sketch, keeps interning + config"
            `Quick test_reset_clears_soft_state;
        ] );
      ( "sync",
        [
          Alcotest.test_case "warm hits shorten locates, same answers"
            `Quick test_sync_warm_hits;
          Alcotest.test_case
            "partial unpublish keeps surviving-replica shortcuts" `Quick
            test_sync_partial_unpublish;
          Alcotest.test_case "republish traffic propagates serving hints"
            `Quick test_sync_hint_propagation;
          Alcotest.test_case "unpublish retracts propagated hints" `Quick
            test_sync_hint_staleness;
          Alcotest.test_case "audit flags a corrupt entry" `Quick
            test_audit_flags_corruption;
        ] );
      ( "driver",
        [
          Alcotest.test_case "cache counters populated, accounting balances"
            `Quick test_driver_cache_counters;
          Alcotest.test_case "mesh reuse replays bit-identically" `Quick
            test_mesh_reuse_replay;
          Alcotest.test_case "cooperative rows replay bit-identically"
            `Quick test_mesh_reuse_replay_coop;
        ] );
    ]
