(* Concurrency tests on the fiber scheduler: simultaneous insertions
   (Section 4.4, Theorem 6) including engineered same-hole collisions, and
   availability across interleaved joins (Section 4.3, Figure 10). *)

open Tapestry

let build ?(n = 100) ?(seed = 51) ?(extra = 16) () =
  let rng = Simnet.Rng.create seed in
  let metric = Simnet.Topology.generate Simnet.Topology.Uniform_square ~n:(n + extra) ~rng in
  let addrs = List.init n (fun i -> i) in
  Insert.build_incremental ~seed:(seed + 1) Config.default metric ~addrs

let staged_insert sched net ~addr ?id ~delays () =
  let d0, d1, d2 = delays in
  Simnet.Fiber.spawn sched (fun () ->
      Simnet.Fiber.sleep sched d0;
      let gw = Network.random_alive net in
      let staged = Insert.stage_surrogate ?id net ~gateway:gw ~addr in
      Simnet.Fiber.sleep sched d1;
      Insert.stage_multicast net staged;
      Simnet.Fiber.sleep sched d2;
      ignore (Insert.stage_acquire net staged))

let test_concurrent_batch_keeps_p1 () =
  let net, _ = build () in
  let sched = Simnet.Fiber.create () in
  let rng = Simnet.Rng.create 99 in
  for i = 0 to 9 do
    let delays =
      (Simnet.Rng.float rng 1., Simnet.Rng.float rng 1., Simnet.Rng.float rng 1.)
    in
    staged_insert sched net ~addr:(100 + i) ~delays ()
  done;
  Simnet.Fiber.run sched;
  Alcotest.(check int) "no stalls" 0 (Simnet.Fiber.stalled_fibers sched);
  Alcotest.(check int) "all joined" 110 (List.length (Network.alive_nodes net));
  Alcotest.(check int) "P1 after concurrent batch" 0
    (List.length (Network.check_property1 net))

let test_same_hole_collision () =
  (* Engineer the Theorem 6 case 3 collision: two joiners that fill the very
     same hole of the same prefix, inserted simultaneously. *)
  let net, _ = build ~n:80 ~seed:61 () in
  let cfg = net.Network.config in
  (* find a prefix alpha of length 1 with nodes, and a digit j such that no
     (alpha, j) node exists; both new IDs start alpha . j *)
  let index = net.Network.index in
  let rec find_hole tries =
    if tries = 0 then Alcotest.fail "no engineered hole found"
    else begin
      let anchor = Network.random_alive net in
      let prefix = Node_id.digits anchor.Node.id in
      let missing =
        List.filter
          (fun j -> not (Id_index.exists_extension index ~prefix ~len:1 ~digit:j))
          (List.init cfg.Config.base (fun j -> j))
      in
      match missing with
      | j :: _ -> (prefix, j)
      | [] -> find_hole (tries - 1)
    end
  in
  let prefix, j = find_hole 50 in
  let make_id suffix_seed =
    let rng = Simnet.Rng.create suffix_seed in
    let d = Array.init cfg.Config.id_digits (fun _ -> Simnet.Rng.int rng cfg.Config.base) in
    d.(0) <- prefix.(0);
    d.(1) <- j;
    Node_id.make d
  in
  let id_a = make_id 1001 and id_b = make_id 2002 in
  Alcotest.(check bool) "distinct ids" false (Node_id.equal id_a id_b);
  let sched = Simnet.Fiber.create () in
  (* interleave tightly: A's multicast runs between B's surrogate step and
     B's multicast, and vice versa on a second schedule *)
  staged_insert sched net ~addr:80 ~id:id_a ~delays:(0.0, 0.2, 0.5) ();
  staged_insert sched net ~addr:81 ~id:id_b ~delays:(0.1, 0.3, 0.4) ();
  Simnet.Fiber.run sched;
  Alcotest.(check int) "no stalls" 0 (Simnet.Fiber.stalled_fibers sched);
  Alcotest.(check int) "P1 holds after same-hole collision" 0
    (List.length (Network.check_property1 net));
  (* in particular, A and B must know each other (they share prefix.(0), j) *)
  let a = Network.find_exn net id_a and b = Network.find_exn net id_b in
  let knows (x : Node.t) (y : Node.t) =
    let shared = Node_id.common_prefix_len x.Node.id y.Node.id in
    let rec probe level =
      level < shared + 1
      && (List.exists
            (fun (e : Routing_table.entry) -> Node_id.equal e.Routing_table.id y.Node.id)
            (Routing_table.slot x.Node.table ~level ~digit:(Node_id.digit y.Node.id level))
         || probe (level + 1))
    in
    probe 0
  in
  Alcotest.(check bool) "A knows B" true (knows a b);
  Alcotest.(check bool) "B knows A" true (knows b a)

let test_objects_available_during_churny_joins () =
  let net, _ = build ~n:100 ~seed:71 () in
  let cfg = net.Network.config in
  let guids =
    List.init 15 (fun _ ->
        let server = Network.random_alive net in
        let guid =
          Node_id.random ~base:cfg.Config.base ~len:cfg.Config.id_digits net.Network.rng
        in
        ignore (Publish.publish net ~server guid);
        guid)
  in
  let sched = Simnet.Fiber.create () in
  let failures = ref 0 and probes = ref 0 in
  (* a probing fiber runs between every insertion stage *)
  Simnet.Fiber.spawn sched (fun () ->
      for _ = 1 to 40 do
        Simnet.Fiber.sleep sched 0.1;
        incr probes;
        let client = Network.random_alive net in
        let guid = Simnet.Rng.pick_list net.Network.rng guids in
        if (Locate.locate net ~client guid).Locate.server = None then incr failures
      done);
  let rng = Simnet.Rng.create 72 in
  for i = 0 to 11 do
    let delays =
      ( Simnet.Rng.float rng 3.,
        0.05 +. Simnet.Rng.float rng 0.3,
        0.05 +. Simnet.Rng.float rng 0.3 )
    in
    staged_insert sched net ~addr:(100 + i) ~delays ()
  done;
  Simnet.Fiber.run sched;
  Alcotest.(check int) "40 probes ran" 40 !probes;
  Alcotest.(check int) "objects never unavailable during joins" 0 !failures

let test_sequentialized_equals_concurrent_p1 () =
  (* the same batch inserted one at a time ends in a state that satisfies
     the same invariants as the interleaved run *)
  let net_seq, _ = build ~n:60 ~seed:81 () in
  for i = 0 to 7 do
    let gw = Network.random_alive net_seq in
    ignore (Insert.insert net_seq ~gateway:gw ~addr:(60 + i))
  done;
  let net_con, _ = build ~n:60 ~seed:81 () in
  let sched = Simnet.Fiber.create () in
  let rng = Simnet.Rng.create 82 in
  for i = 0 to 7 do
    let delays =
      (Simnet.Rng.float rng 1., Simnet.Rng.float rng 1., Simnet.Rng.float rng 1.)
    in
    staged_insert sched net_con ~addr:(60 + i) ~delays ()
  done;
  Simnet.Fiber.run sched;
  Alcotest.(check int) "seq P1" 0 (List.length (Network.check_property1 net_seq));
  Alcotest.(check int) "con P1" 0 (List.length (Network.check_property1 net_con));
  Alcotest.(check int) "same population" (Network.node_count net_seq)
    (Network.node_count net_con)

let test_interleaved_cost_attribution () =
  (* Each stage of a staged insertion accumulates only its own charges
     (Insert runs every stage under Network.measure), so two inserts whose
     stages interleave on the scheduler must report costs that partition the
     network's total exactly — in particular, the multicast acknowledgments
     charged as each tree edge unwinds land in the insertion that sent them,
     not in whichever insertion happened to snapshot last.  Messages and
     hops are pinned: they are deterministic at this seed, and under the old
     begin/end snapshot accounting the first report absorbed the second
     insertion's interleaved charges and these numbers shifted. *)
  let net, _ = build ~n:60 ~seed:81 () in
  let sched = Simnet.Fiber.create () in
  let reports = ref [] in
  let spawn ~addr ~delays =
    let d0, d1, d2 = delays in
    Simnet.Fiber.spawn sched (fun () ->
        Simnet.Fiber.sleep sched d0;
        let gw = Network.random_alive net in
        let staged = Insert.stage_surrogate net ~gateway:gw ~addr in
        Simnet.Fiber.sleep sched d1;
        Insert.stage_multicast net staged;
        Simnet.Fiber.sleep sched d2;
        reports := Insert.stage_acquire net staged :: !reports)
  in
  let before = Simnet.Cost.snapshot net.Network.cost in
  spawn ~addr:60 ~delays:(0.0, 0.2, 0.5);
  spawn ~addr:61 ~delays:(0.1, 0.3, 0.4);
  Simnet.Fiber.run sched;
  Alcotest.(check int) "no stalls" 0 (Simnet.Fiber.stalled_fibers sched);
  let total = Simnet.Cost.diff (Simnet.Cost.snapshot net.Network.cost) before in
  match List.rev !reports with
  | [ r1; r2 ] ->
      let c1 = r1.Insert.cost and c2 = r2.Insert.cost in
      Alcotest.(check int)
        "reports partition total messages" total.Simnet.Cost.messages
        (c1.Simnet.Cost.messages + c2.Simnet.Cost.messages);
      Alcotest.(check int)
        "reports partition total hops" total.Simnet.Cost.hops
        (c1.Simnet.Cost.hops + c2.Simnet.Cost.hops);
      let lat_sum = c1.Simnet.Cost.latency +. c2.Simnet.Cost.latency in
      Alcotest.(check bool)
        "reports partition total latency" true
        (Float.abs (lat_sum -. total.Simnet.Cost.latency)
        <= 1e-9 *. Float.max 1. total.Simnet.Cost.latency);
      Alcotest.(check (pair int int))
        "first insertion cost pinned" (52, 30)
        (c1.Simnet.Cost.messages, c1.Simnet.Cost.hops);
      Alcotest.(check (pair int int))
        "second insertion cost pinned" (25, 13)
        (c2.Simnet.Cost.messages, c2.Simnet.Cost.hops)
  | rs -> Alcotest.failf "expected 2 reports, got %d" (List.length rs)

let () =
  Alcotest.run "concurrent"
    [
      ( "simultaneous insertion",
        [
          Alcotest.test_case "batch keeps Property 1" `Quick test_concurrent_batch_keeps_p1;
          Alcotest.test_case "same-hole collision (Thm 6 case 3)" `Quick test_same_hole_collision;
          Alcotest.test_case "seq vs concurrent invariants" `Quick
            test_sequentialized_equals_concurrent_p1;
          Alcotest.test_case "interleaved cost attribution" `Quick
            test_interleaved_cost_attribution;
        ] );
      ( "availability",
        [
          Alcotest.test_case "objects available during joins" `Quick
            test_objects_available_during_churny_joins;
        ] );
    ]
