(* Unit tests for the lint rule engine (tools/lint/lint_core.ml): each rule
   fires on a minimal trigger, the self-defined-compare suppression works,
   the determinism exemption works, and the allowlist matches by rule and
   path suffix.  The seeded fixture is also linted from here, so the rule
   set and the fixture cannot drift apart silently. *)

let rules_of ?determinism_exempt src =
  Lint_core.lint_string ~file:"lib/tapestry/sample.ml" ?determinism_exempt src
  |> List.map (fun v -> v.Lint_core.rule)

let check_rules name expected src =
  Alcotest.(check (list string)) name expected (rules_of src)

let test_poly_compare () =
  check_rules "bare compare" [ "poly-compare" ] "let f xs = List.sort compare xs";
  check_rules "Stdlib.compare" [ "poly-compare" ]
    "let f xs = List.sort Stdlib.compare xs";
  check_rules "qualified is fine" [] "let f xs = List.sort Int.compare xs"

let test_local_compare_suppression () =
  check_rules "self-defined compare is suppressed" []
    "let compare a b = Int.compare a b\nlet f xs = List.sort compare xs";
  (* ... but a Stdlib-qualified use is still polymorphic and still flagged *)
  check_rules "Stdlib.compare not suppressed by a local compare"
    [ "poly-compare" ]
    "let compare a b = Int.compare a b\nlet f xs = List.sort Stdlib.compare xs"

let test_poly_eq_functions () =
  check_rules "List.mem" [ "poly-eq-fn" ] "let f x xs = List.mem x xs";
  check_rules "List.assoc" [ "poly-eq-fn" ] "let f k xs = List.assoc k xs";
  check_rules "List.mem_assoc" [ "poly-eq-fn" ] "let f k xs = List.mem_assoc k xs";
  check_rules "Hashtbl.hash" [ "poly-eq-fn" ] "let f x = Hashtbl.hash x";
  check_rules "bare = as function value" [ "poly-eq-fn" ]
    "let f xs = List.exists (( = ) 1) xs";
  (* a saturated [=] on non-list operands is the type checker's business *)
  check_rules "saturated int equality not flagged" [] "let f a b = a = b"

let test_eq_empty_list () =
  check_rules "xs = []" [ "eq-empty-list" ] "let f xs = xs = []";
  check_rules "xs <> []" [ "eq-empty-list" ] "let f xs = xs <> []";
  check_rules "[] on the left" [ "eq-empty-list" ] "let f xs = [] = xs";
  check_rules "match is the fix, not a violation" []
    "let f xs = match xs with [] -> true | _ :: _ -> false"

let test_ambient_sources () =
  check_rules "Random.int" [ "ambient-rng" ] "let f () = Random.int 10";
  check_rules "Stdlib.Random" [ "ambient-rng" ] "let f () = Stdlib.Random.bool ()";
  check_rules "Sys.time" [ "ambient-time" ] "let f () = Sys.time ()";
  check_rules "Unix.gettimeofday" [ "ambient-time" ]
    "let f () = Unix.gettimeofday ()";
  Alcotest.(check (list string)) "exempt module may use ambient sources" []
    (rules_of ~determinism_exempt:true "let f () = Random.int 10 + int_of_float (Sys.time ())")

let test_hot_path_alloc () =
  let rules_hot src =
    Lint_core.lint_string ~file:"lib/tapestry/route.ml" ~hot_path:true src
    |> List.map (fun v -> v.Lint_core.rule)
  in
  Alcotest.(check (list string)) "List.sort on a hot-path file"
    [ "hot-path-alloc" ]
    (rules_hot "let f xs = List.sort Int.compare xs");
  Alcotest.(check (list string)) "List.map on a hot-path file"
    [ "hot-path-alloc" ]
    (rules_hot "let f xs = List.map succ xs");
  Alcotest.(check (list string)) "List.iter stays fine" []
    (rules_hot "let f xs = List.iter ignore xs");
  check_rules "off-hot-path file unaffected" []
    "let f xs = List.sort Int.compare xs |> List.map succ";
  Alcotest.(check (list string)) "Oracle submodule exempt" []
    (rules_hot
       "module Oracle = struct\n  let f xs = List.sort Int.compare xs\nend");
  (* only the allocation rule is suspended inside Oracle *)
  Alcotest.(check (list string)) "other rules still fire inside Oracle"
    [ "poly-compare" ]
    (rules_hot "module Oracle = struct\n  let f xs = List.sort compare xs\nend");
  Alcotest.(check (list string)) "rule resumes after the Oracle ends"
    [ "hot-path-alloc" ]
    (rules_hot
       "module Oracle = struct\n  let f xs = List.map succ xs\nend\n\
        let g xs = List.map succ xs")

let test_parse_error () =
  check_rules "unparsable file" [ "parse-error" ] "let f = ("

let test_allowlist () =
  let al =
    Lint_core.parse_allowlist
      "# comment line\n\nambient-time bin/tapestry_sim.ml\npoly-compare lib/foo.ml\n"
  in
  let v ~file ~rule =
    { Lint_core.file; line = 1; col = 0; rule; message = "m" }
  in
  Alcotest.(check bool) "match by rule and path suffix" true
    (Lint_core.allowed al (v ~file:"/root/repo/bin/tapestry_sim.ml" ~rule:"ambient-time"));
  Alcotest.(check bool) "same file, different rule" false
    (Lint_core.allowed al (v ~file:"/root/repo/bin/tapestry_sim.ml" ~rule:"ambient-rng"));
  Alcotest.(check bool) "same rule, different file" false
    (Lint_core.allowed al (v ~file:"lib/bar.ml" ~rule:"poly-compare"))

let test_missing_mlis () =
  let vs =
    Lint_core.missing_mlis
      ~mls:[ "lib/a.ml"; "lib/b.ml" ]
      ~mlis:[ "lib/a.mli" ]
  in
  Alcotest.(check (list string)) "only the uncovered module"
    [ "missing-mli" ]
    (List.map (fun v -> v.Lint_core.rule) vs);
  Alcotest.(check (list string)) "names the .ml" [ "lib/b.ml" ]
    (List.map (fun v -> v.Lint_core.file) vs)

let test_violation_format () =
  match Lint_core.lint_string ~file:"lib/x.ml" "let f xs = xs = []" with
  | [ v ] ->
      let s = Lint_core.to_string v in
      let prefix = "lib/x.ml:1: eq-empty-list" in
      Alcotest.(check string) "file:line: rule-id prefix" prefix
        (String.sub s 0 (String.length prefix))
  | _ -> Alcotest.fail "expected one violation"

let test_seeded_fixture () =
  (* the dune @runtest rule asserts the CLI exits 1 on this fixture; here we
     assert the engine sees every rule the fixture seeds *)
  let ic = open_in "../tools/lint/fixtures/seeded.ml" in
  let len = in_channel_length ic in
  let src = really_input_string ic len in
  close_in ic;
  let vs = Lint_core.lint_string ~file:"tools/lint/fixtures/seeded.ml" src in
  let fired = List.sort_uniq String.compare (List.map (fun v -> v.Lint_core.rule) vs) in
  Alcotest.(check (list string)) "fixture covers every expression rule"
    [ "ambient-rng"; "ambient-time"; "eq-empty-list"; "poly-compare"; "poly-eq-fn" ]
    fired;
  Alcotest.(check bool) "fixture seeds many violations" true (List.length vs >= 10)

(* --- typed tier: fixtures are typechecked in-process (no on-disk
   build), so the rules run on the same Typedtree the cmt path sees --- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let fixture name =
  Cmt_load.typecheck_string
    ~file:("test/fixtures/lint/" ^ name)
    (read_file ("fixtures/lint/" ^ name))

let messages vs = List.map (fun v -> v.Lint_core.message) vs

let assert_mentions name vs needles =
  let msgs = messages vs in
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "%s mentions %S" name needle)
        true
        (List.exists
           (fun m ->
             (* substring search *)
             let lm = String.length m and ln = String.length needle in
             let rec at i = i + ln <= lm && (String.sub m i ln = needle || at (i + 1)) in
             at 0)
           msgs))
    needles

let test_typed_alloc_fixture () =
  let u = fixture "alloc_violation.ml" in
  let vs = Alloc_check.check ~file:u.Cmt_load.source u.Cmt_load.structure in
  Alcotest.(check (list string))
    "every finding is typed-alloc"
    (List.map (fun _ -> "typed-alloc") vs)
    (List.map (fun v -> v.Lint_core.rule) vs);
  assert_mentions "alloc fixture" vs
    [
      "closure allocated per call";
      "tuple allocation";
      "record allocation";
      "ref cell allocation";
      "partial application";
      "float boxed at a polymorphic argument position";
      "list cons allocation";
      "polymorphic variant with payload";
      "lazy block allocation";
    ]

let test_typed_alloc_clean () =
  let u = fixture "alloc_clean.ml" in
  Alcotest.(check (list string))
    "clean fixture has no findings" []
    (messages (Alloc_check.check ~file:u.Cmt_load.source u.Cmt_load.structure))

let test_typed_poly_fixture () =
  let u = fixture "poly_violation.ml" in
  let vs = Typed_poly.check ~file:u.Cmt_load.source u.Cmt_load.structure in
  Alcotest.(check int) "three seeded comparisons" 3 (List.length vs);
  assert_mentions "poly fixture" vs [ "( = )"; "( <> )"; "compare"; "Guid.t" ]

let test_typed_poly_clean () =
  let u = fixture "poly_clean.ml" in
  Alcotest.(check (list string))
    "safe types, == and [@poly_ok] all pass" []
    (messages (Typed_poly.check ~file:u.Cmt_load.source u.Cmt_load.structure))

let race_of unit_ =
  Race_check.check (Callgraph.build [ unit_ ])

let test_typed_race_fixture () =
  let u = fixture "race_violation.ml" in
  let graph = Callgraph.build [ u ] in
  Alcotest.(check bool) "spawn makes bindings reachable" true
    (match Callgraph.spawn_reachable graph with [] -> false | _ :: _ -> true);
  let vs = Race_check.check graph in
  assert_mentions "race fixture" vs
    [
      "unsynchronized ref write";
      "unsynchronized ref read";
      "unsynchronized write to mutable field count";
      "unsynchronized read of mutable field count";
      "array store not proven chunk-local";
    ]

let test_typed_race_clean () =
  let u = fixture "race_clean.ml" in
  Alcotest.(check (list string))
    "chunked map, Atomic and [@race_ok] all pass" []
    (messages (race_of u))

(* The live regression the ISSUE pins down: [Simnet.Parallel.map]'s
   chunked result writes must stay accepted *as written*, from the real
   cmt the build produced (not a re-typed copy). *)
let test_race_accepts_parallel_map () =
  let cmt = "../lib/simnet/.simnet.objs/byte/simnet__Parallel.cmt" in
  match Cmt_load.load cmt with
  | None -> Alcotest.fail ("could not load " ^ cmt)
  | Some u ->
      Alcotest.(check string) "short module name" "Parallel" u.Cmt_load.modname;
      let graph = Callgraph.build [ u ] in
      Alcotest.(check bool) "Parallel.map's spawn site is seen" true
        (match Callgraph.spawn_reachable graph with
        | [] -> false
        | _ :: _ -> true);
      Alcotest.(check (list string))
        "chunked map accepted as written" []
        (messages (Race_check.check graph))

(* --- allowlist hardening: duplicates and shadowed entries rejected,
   stale entries reported --- *)

let test_allowlist_checked () =
  (match Lint_core.parse_allowlist_checked "typed-alloc lib/a.ml\n" with
  | Ok [ ("typed-alloc", "lib/a.ml") ] -> ()
  | _ -> Alcotest.fail "single entry should parse");
  (match
     Lint_core.parse_allowlist_checked
       "typed-alloc lib/a.ml\n# note\ntyped-alloc lib/a.ml\n"
   with
  | Error [ e ] ->
      Alcotest.(check bool) "duplicate named" true
        (String.length e > 0 && Option.is_some (String.index_opt e 'd'))
  | _ -> Alcotest.fail "exact duplicate must be rejected");
  (match
     Lint_core.parse_allowlist_checked
       "typed-race lib/simnet/parallel.ml\ntyped-race parallel.ml\n"
   with
  | Error (_ :: _) -> ()
  | _ -> Alcotest.fail "shadowed entry must be rejected");
  (* same path under different rules is fine *)
  (match
     Lint_core.parse_allowlist_checked
       "typed-alloc lib/a.ml\ntyped-race lib/a.ml\n"
   with
  | Ok [ _; _ ] -> ()
  | _ -> Alcotest.fail "same path under two rules is not a conflict");
  let al = [ ("typed-alloc", "lib/a.ml"); ("typed-race", "lib/b.ml") ] in
  Alcotest.(check (list (pair string string)))
    "unused entries are reported stale"
    [ ("typed-race", "lib/b.ml") ]
    (Lint_core.unused_entries al ~used:[ ("typed-alloc", "lib/a.ml") ])

let () =
  Alcotest.run "lint"
    [
      ( "rules",
        [
          Alcotest.test_case "poly-compare" `Quick test_poly_compare;
          Alcotest.test_case "local compare suppression" `Quick
            test_local_compare_suppression;
          Alcotest.test_case "poly-eq functions" `Quick test_poly_eq_functions;
          Alcotest.test_case "eq-empty-list" `Quick test_eq_empty_list;
          Alcotest.test_case "ambient rng/time" `Quick test_ambient_sources;
          Alcotest.test_case "hot-path alloc" `Quick test_hot_path_alloc;
          Alcotest.test_case "parse error" `Quick test_parse_error;
        ] );
      ( "infrastructure",
        [
          Alcotest.test_case "allowlist" `Quick test_allowlist;
          Alcotest.test_case "allowlist hardening" `Quick test_allowlist_checked;
          Alcotest.test_case "missing mlis" `Quick test_missing_mlis;
          Alcotest.test_case "violation format" `Quick test_violation_format;
          Alcotest.test_case "seeded fixture" `Quick test_seeded_fixture;
        ] );
      ( "typed",
        [
          Alcotest.test_case "alloc fixture fires" `Quick
            test_typed_alloc_fixture;
          Alcotest.test_case "alloc escapes pass" `Quick test_typed_alloc_clean;
          Alcotest.test_case "poly-eq fixture fires" `Quick
            test_typed_poly_fixture;
          Alcotest.test_case "poly-eq escapes pass" `Quick
            test_typed_poly_clean;
          Alcotest.test_case "race fixture fires" `Quick
            test_typed_race_fixture;
          Alcotest.test_case "race escapes pass" `Quick test_typed_race_clean;
          Alcotest.test_case "race accepts Parallel.map" `Quick
            test_race_accepts_parallel_map;
        ] );
    ]
