(* Unit tests for the lint rule engine (tools/lint/lint_core.ml): each rule
   fires on a minimal trigger, the self-defined-compare suppression works,
   the determinism exemption works, and the allowlist matches by rule and
   path suffix.  The seeded fixture is also linted from here, so the rule
   set and the fixture cannot drift apart silently. *)

let rules_of ?determinism_exempt src =
  Lint_core.lint_string ~file:"lib/tapestry/sample.ml" ?determinism_exempt src
  |> List.map (fun v -> v.Lint_core.rule)

let check_rules name expected src =
  Alcotest.(check (list string)) name expected (rules_of src)

let test_poly_compare () =
  check_rules "bare compare" [ "poly-compare" ] "let f xs = List.sort compare xs";
  check_rules "Stdlib.compare" [ "poly-compare" ]
    "let f xs = List.sort Stdlib.compare xs";
  check_rules "qualified is fine" [] "let f xs = List.sort Int.compare xs"

let test_local_compare_suppression () =
  check_rules "self-defined compare is suppressed" []
    "let compare a b = Int.compare a b\nlet f xs = List.sort compare xs";
  (* ... but a Stdlib-qualified use is still polymorphic and still flagged *)
  check_rules "Stdlib.compare not suppressed by a local compare"
    [ "poly-compare" ]
    "let compare a b = Int.compare a b\nlet f xs = List.sort Stdlib.compare xs"

let test_poly_eq_functions () =
  check_rules "List.mem" [ "poly-eq-fn" ] "let f x xs = List.mem x xs";
  check_rules "List.assoc" [ "poly-eq-fn" ] "let f k xs = List.assoc k xs";
  check_rules "List.mem_assoc" [ "poly-eq-fn" ] "let f k xs = List.mem_assoc k xs";
  check_rules "Hashtbl.hash" [ "poly-eq-fn" ] "let f x = Hashtbl.hash x";
  check_rules "bare = as function value" [ "poly-eq-fn" ]
    "let f xs = List.exists (( = ) 1) xs";
  (* a saturated [=] on non-list operands is the type checker's business *)
  check_rules "saturated int equality not flagged" [] "let f a b = a = b"

let test_eq_empty_list () =
  check_rules "xs = []" [ "eq-empty-list" ] "let f xs = xs = []";
  check_rules "xs <> []" [ "eq-empty-list" ] "let f xs = xs <> []";
  check_rules "[] on the left" [ "eq-empty-list" ] "let f xs = [] = xs";
  check_rules "match is the fix, not a violation" []
    "let f xs = match xs with [] -> true | _ :: _ -> false"

let test_ambient_sources () =
  check_rules "Random.int" [ "ambient-rng" ] "let f () = Random.int 10";
  check_rules "Stdlib.Random" [ "ambient-rng" ] "let f () = Stdlib.Random.bool ()";
  check_rules "Sys.time" [ "ambient-time" ] "let f () = Sys.time ()";
  check_rules "Unix.gettimeofday" [ "ambient-time" ]
    "let f () = Unix.gettimeofday ()";
  Alcotest.(check (list string)) "exempt module may use ambient sources" []
    (rules_of ~determinism_exempt:true "let f () = Random.int 10 + int_of_float (Sys.time ())")

let test_hot_path_alloc () =
  let rules_hot src =
    Lint_core.lint_string ~file:"lib/tapestry/route.ml" ~hot_path:true src
    |> List.map (fun v -> v.Lint_core.rule)
  in
  Alcotest.(check (list string)) "List.sort on a hot-path file"
    [ "hot-path-alloc" ]
    (rules_hot "let f xs = List.sort Int.compare xs");
  Alcotest.(check (list string)) "List.map on a hot-path file"
    [ "hot-path-alloc" ]
    (rules_hot "let f xs = List.map succ xs");
  Alcotest.(check (list string)) "List.iter stays fine" []
    (rules_hot "let f xs = List.iter ignore xs");
  check_rules "off-hot-path file unaffected" []
    "let f xs = List.sort Int.compare xs |> List.map succ";
  Alcotest.(check (list string)) "Oracle submodule exempt" []
    (rules_hot
       "module Oracle = struct\n  let f xs = List.sort Int.compare xs\nend");
  (* only the allocation rule is suspended inside Oracle *)
  Alcotest.(check (list string)) "other rules still fire inside Oracle"
    [ "poly-compare" ]
    (rules_hot "module Oracle = struct\n  let f xs = List.sort compare xs\nend");
  Alcotest.(check (list string)) "rule resumes after the Oracle ends"
    [ "hot-path-alloc" ]
    (rules_hot
       "module Oracle = struct\n  let f xs = List.map succ xs\nend\n\
        let g xs = List.map succ xs")

let test_parse_error () =
  check_rules "unparsable file" [ "parse-error" ] "let f = ("

let test_allowlist () =
  let al =
    Lint_core.parse_allowlist
      "# comment line\n\nambient-time bin/tapestry_sim.ml\npoly-compare lib/foo.ml\n"
  in
  let v ~file ~rule =
    { Lint_core.file; line = 1; col = 0; rule; message = "m" }
  in
  Alcotest.(check bool) "match by rule and path suffix" true
    (Lint_core.allowed al (v ~file:"/root/repo/bin/tapestry_sim.ml" ~rule:"ambient-time"));
  Alcotest.(check bool) "same file, different rule" false
    (Lint_core.allowed al (v ~file:"/root/repo/bin/tapestry_sim.ml" ~rule:"ambient-rng"));
  Alcotest.(check bool) "same rule, different file" false
    (Lint_core.allowed al (v ~file:"lib/bar.ml" ~rule:"poly-compare"))

let test_missing_mlis () =
  let vs =
    Lint_core.missing_mlis
      ~mls:[ "lib/a.ml"; "lib/b.ml" ]
      ~mlis:[ "lib/a.mli" ]
  in
  Alcotest.(check (list string)) "only the uncovered module"
    [ "missing-mli" ]
    (List.map (fun v -> v.Lint_core.rule) vs);
  Alcotest.(check (list string)) "names the .ml" [ "lib/b.ml" ]
    (List.map (fun v -> v.Lint_core.file) vs)

let test_violation_format () =
  match Lint_core.lint_string ~file:"lib/x.ml" "let f xs = xs = []" with
  | [ v ] ->
      let s = Lint_core.to_string v in
      let prefix = "lib/x.ml:1: eq-empty-list" in
      Alcotest.(check string) "file:line: rule-id prefix" prefix
        (String.sub s 0 (String.length prefix))
  | _ -> Alcotest.fail "expected one violation"

let test_seeded_fixture () =
  (* the dune @runtest rule asserts the CLI exits 1 on this fixture; here we
     assert the engine sees every rule the fixture seeds *)
  let ic = open_in "../tools/lint/fixtures/seeded.ml" in
  let len = in_channel_length ic in
  let src = really_input_string ic len in
  close_in ic;
  let vs = Lint_core.lint_string ~file:"tools/lint/fixtures/seeded.ml" src in
  let fired = List.sort_uniq String.compare (List.map (fun v -> v.Lint_core.rule) vs) in
  Alcotest.(check (list string)) "fixture covers every expression rule"
    [ "ambient-rng"; "ambient-time"; "eq-empty-list"; "poly-compare"; "poly-eq-fn" ]
    fired;
  Alcotest.(check bool) "fixture seeds many violations" true (List.length vs >= 10)

let () =
  Alcotest.run "lint"
    [
      ( "rules",
        [
          Alcotest.test_case "poly-compare" `Quick test_poly_compare;
          Alcotest.test_case "local compare suppression" `Quick
            test_local_compare_suppression;
          Alcotest.test_case "poly-eq functions" `Quick test_poly_eq_functions;
          Alcotest.test_case "eq-empty-list" `Quick test_eq_empty_list;
          Alcotest.test_case "ambient rng/time" `Quick test_ambient_sources;
          Alcotest.test_case "hot-path alloc" `Quick test_hot_path_alloc;
          Alcotest.test_case "parse error" `Quick test_parse_error;
        ] );
      ( "infrastructure",
        [
          Alcotest.test_case "allowlist" `Quick test_allowlist;
          Alcotest.test_case "missing mlis" `Quick test_missing_mlis;
          Alcotest.test_case "violation format" `Quick test_violation_format;
          Alcotest.test_case "seeded fixture" `Quick test_seeded_fixture;
        ] );
    ]
